#include <cmath>
#include <map>

#include <gtest/gtest.h>

#include "apps/walk_app.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "lightrw/functional_engine.h"
#include "lightrw/step_sampler.h"

namespace lightrw::core {
namespace {

using apps::MetaPathApp;
using apps::Node2VecApp;
using apps::StaticWalkApp;
using apps::WalkQuery;
using graph::CsrGraph;
using graph::VertexId;

AcceleratorConfig TestConfig(uint32_t k = 16, uint64_t seed = 42) {
  AcceleratorConfig config;
  config.sampler_parallelism = k;
  config.seed = seed;
  return config;
}

TEST(FunctionalEngineTest, ProducesValidWalks) {
  const CsrGraph g = graph::MakeDatasetStandIn(graph::Dataset::kYoutube,
                                               /*scale_shift=*/10, 5);
  StaticWalkApp app;
  FunctionalEngine engine(&g, &app, TestConfig());
  const auto queries = apps::MakeVertexQueries(g, 10, 3, 200);
  baseline::WalkOutput output;
  const auto stats = engine.Run(queries, &output);
  EXPECT_EQ(stats.queries, queries.size());
  ASSERT_EQ(output.num_paths(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    const auto path = output.Path(i);
    ASSERT_GE(path.size(), 1u);
    EXPECT_EQ(path[0], queries[i].start);
    for (size_t s = 1; s < path.size(); ++s) {
      EXPECT_TRUE(g.HasEdge(path[s - 1], path[s]));
    }
  }
}

TEST(FunctionalEngineTest, DeterministicPerSeed) {
  const CsrGraph g = graph::MakeDatasetStandIn(graph::Dataset::kYoutube,
                                               /*scale_shift=*/11, 5);
  StaticWalkApp app;
  const auto queries = apps::MakeVertexQueries(g, 8, 3, 100);
  baseline::WalkOutput a, b, c;
  FunctionalEngine(&g, &app, TestConfig(16, 7)).Run(queries, &a);
  FunctionalEngine(&g, &app, TestConfig(16, 7)).Run(queries, &b);
  FunctionalEngine(&g, &app, TestConfig(16, 8)).Run(queries, &c);
  EXPECT_EQ(a.vertices, b.vertices);
  EXPECT_NE(a.vertices, c.vertices);
}

// First-order sanity: from a fixed vertex the one-step distribution must
// match the static edge weights.
TEST(FunctionalEngineTest, StaticWalkTransitionDistribution) {
  graph::GraphBuilder builder(4, false);
  builder.AddEdge(0, 1, 1);
  builder.AddEdge(0, 2, 2);
  builder.AddEdge(0, 3, 7);
  builder.AddEdge(1, 0, 1);
  builder.AddEdge(2, 0, 1);
  builder.AddEdge(3, 0, 1);
  const CsrGraph g = std::move(builder).Build();
  StaticWalkApp app;
  FunctionalEngine engine(&g, &app, TestConfig(4));

  constexpr int kTrials = 60000;
  const std::vector<WalkQuery> queries(kTrials, WalkQuery{0, 1});
  baseline::WalkOutput output;
  engine.Run(queries, &output);
  std::map<VertexId, int> counts;
  for (size_t i = 0; i < output.num_paths(); ++i) {
    ASSERT_EQ(output.Path(i).size(), 2u);
    ++counts[output.Path(i)[1]];
  }
  EXPECT_NEAR(counts[1], kTrials * 0.1, 5 * std::sqrt(kTrials * 0.1));
  EXPECT_NEAR(counts[2], kTrials * 0.2, 5 * std::sqrt(kTrials * 0.2));
  EXPECT_NEAR(counts[3], kTrials * 0.7, 5 * std::sqrt(kTrials * 0.7));
}

// Second-order correctness against Eq. (2): build a graph where the three
// Node2Vec cases (return / common neighbor / distant) are distinguishable
// and verify the empirical two-step distribution.
TEST(FunctionalEngineTest, Node2VecSecondOrderDistribution) {
  // 0 -> 1; from 1: back to 0 (return), to 2 (0->2 exists: common), to 3
  // (distant). Unit static weights.
  graph::GraphBuilder builder(4, false);
  builder.AddEdge(0, 1, 1);
  builder.AddEdge(0, 2, 1);
  builder.AddEdge(1, 0, 1);
  builder.AddEdge(1, 2, 1);
  builder.AddEdge(1, 3, 1);
  builder.AddEdge(2, 1, 1);
  builder.AddEdge(3, 1, 1);
  const CsrGraph g = std::move(builder).Build();

  const double p = 2.0, q = 0.5;
  Node2VecApp app(p, q);
  FunctionalEngine engine(&g, &app, TestConfig(4));

  // Walks of length 2 from 0. Step 1 (0 -> 1) is forced because at step 0
  // vertex 0's neighbors are {1, 2}; not forced actually -- filter on
  // paths that went through 1.
  constexpr int kTrials = 120000;
  const std::vector<WalkQuery> queries(kTrials, WalkQuery{0, 2});
  baseline::WalkOutput output;
  engine.Run(queries, &output);

  // Expected second-step distribution given prev=0, curr=1 (Eq. 2):
  // w(1->0)=1/p=0.5, w(1->2)=1 (0->2 in E), w(1->3)=1/q=2. Total 3.5.
  std::map<VertexId, int> counts;
  int through_one = 0;
  for (size_t i = 0; i < output.num_paths(); ++i) {
    const auto path = output.Path(i);
    if (path.size() == 3 && path[1] == 1) {
      ++through_one;
      ++counts[path[2]];
    }
  }
  ASSERT_GT(through_one, 10000);
  const double total = 0.5 + 1.0 + 2.0;
  const auto expect_share = [&](VertexId v, double w) {
    const double expected = through_one * w / total;
    EXPECT_NEAR(counts[v], expected, 5 * std::sqrt(expected)) << "v=" << v;
  };
  expect_share(0, 0.5);
  expect_share(2, 1.0);
  expect_share(3, 2.0);
}

// MetaPath walks must follow the relation path and die when no edge
// matches.
TEST(FunctionalEngineTest, MetaPathTerminatesOnRelationMismatch) {
  graph::GraphBuilder builder(3, false);
  builder.AddEdge(0, 1, 1, /*relation=*/1);
  builder.AddEdge(1, 2, 1, /*relation=*/2);
  const CsrGraph g = std::move(builder).Build();
  MetaPathApp app({1, 3});  // no relation-3 edge exists from 1
  FunctionalEngine engine(&g, &app, TestConfig(2));
  const std::vector<WalkQuery> queries = {{0, 2}};
  baseline::WalkOutput output;
  const auto stats = engine.Run(queries, &output);
  EXPECT_EQ(stats.steps, 1u);
  ASSERT_EQ(output.num_paths(), 1u);
  EXPECT_EQ(output.Path(0).size(), 2u);  // 0 -> 1, then stuck
}

// The sampling distribution must not depend on the lane count k
// (Algorithm 4.1's correctness claim), checked end to end.
class FunctionalParallelismTest : public ::testing::TestWithParam<uint32_t> {
};

TEST_P(FunctionalParallelismTest, DistributionIndependentOfK) {
  graph::GraphBuilder builder(5, false);
  builder.AddEdge(0, 1, 1);
  builder.AddEdge(0, 2, 2);
  builder.AddEdge(0, 3, 3);
  builder.AddEdge(0, 4, 4);
  const CsrGraph g = std::move(builder).Build();
  StaticWalkApp app;
  FunctionalEngine engine(&g, &app, TestConfig(GetParam(), 1234));
  constexpr int kTrials = 40000;
  const std::vector<WalkQuery> queries(kTrials, WalkQuery{0, 1});
  baseline::WalkOutput output;
  engine.Run(queries, &output);
  std::map<VertexId, int> counts;
  for (size_t i = 0; i < output.num_paths(); ++i) {
    ++counts[output.Path(i)[1]];
  }
  for (VertexId v = 1; v <= 4; ++v) {
    const double expected = kTrials * v / 10.0;
    EXPECT_NEAR(counts[v], expected, 5 * std::sqrt(expected))
        << "k=" << GetParam() << " v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Lanes, FunctionalParallelismTest,
                         ::testing::Values(1, 2, 3, 4, 8, 16, 32));

TEST(StepSamplerTest, DeadEndReturnsInvalid) {
  graph::GraphBuilder builder(2, false);
  builder.AddEdge(0, 1);
  const CsrGraph g = std::move(builder).Build();
  StaticWalkApp app;
  rng::ThunderingRng rng(4, 1);
  StepSampler sampler(4, &rng);
  apps::WalkState state;
  state.curr = 1;  // no outgoing edges
  EXPECT_EQ(sampler.SampleNext(g, app, state), graph::kInvalidVertex);
}

TEST(StepSamplerTest, SingleNeighborAlwaysTaken) {
  graph::GraphBuilder builder(2, false);
  builder.AddEdge(0, 1);
  const CsrGraph g = std::move(builder).Build();
  StaticWalkApp app;
  rng::ThunderingRng rng(4, 1);
  StepSampler sampler(4, &rng);
  apps::WalkState state;
  state.curr = 0;
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(sampler.SampleNext(g, app, state), 1u);
  }
}

}  // namespace
}  // namespace lightrw::core
