#include <gtest/gtest.h>

#include "graph/generators.h"
#include "lightrw/config_validation.h"
#include "lightrw/platform_models.h"

namespace lightrw::core {
namespace {

TEST(PowerModelTest, FpgaWithinPaperRange) {
  PowerModel model;
  for (const graph::Dataset d : graph::kAllDatasets) {
    const auto& info = graph::GetDatasetInfo(d);
    const double metapath =
        model.FpgaWatts(4, info.num_edges, /*memory_heavy=*/false);
    const double node2vec =
        model.FpgaWatts(4, info.num_edges, /*memory_heavy=*/true);
    EXPECT_GE(metapath, 41.0 - 1.0) << info.name;
    EXPECT_LE(metapath, 45.0 + 1.0) << info.name;
    EXPECT_GE(node2vec, 39.0 - 1.0) << info.name;
    EXPECT_LE(node2vec, 42.0 + 1.5) << info.name;
  }
}

TEST(PowerModelTest, CpuWithinPaperRange) {
  PowerModel model;
  for (const graph::Dataset d : graph::kAllDatasets) {
    const auto& info = graph::GetDatasetInfo(d);
    const double metapath = model.CpuWatts(info.num_edges, false);
    const double node2vec = model.CpuWatts(info.num_edges, true);
    EXPECT_GE(metapath, 103.0 - 1.0) << info.name;
    EXPECT_LE(metapath, 124.0 + 1.0) << info.name;
    EXPECT_GE(node2vec, 110.0 - 1.0) << info.name;
    EXPECT_LE(node2vec, 126.0 + 1.0) << info.name;
  }
}

TEST(PowerModelTest, LargerGraphsDrawMorePower) {
  PowerModel model;
  const uint64_t small =
      graph::GetDatasetInfo(graph::Dataset::kYoutube).num_edges;
  const uint64_t large =
      graph::GetDatasetInfo(graph::Dataset::kUk2002).num_edges;
  EXPECT_LT(model.CpuWatts(small, false), model.CpuWatts(large, false));
  EXPECT_LT(model.FpgaWatts(4, small, false),
            model.FpgaWatts(4, large, false));
}

TEST(PcieModelTest, TransferSecondsScaleWithBytes) {
  PcieModel model;
  EXPECT_LT(model.TransferSeconds(1 << 10), model.TransferSeconds(1 << 30));
  // Latency floor for tiny transfers.
  EXPECT_GE(model.TransferSeconds(1), model.per_transfer_latency_sec);
  // 12 GB at 12 GB/s is about one second.
  EXPECT_NEAR(model.TransferSeconds(12e9), 1.0, 0.01);
}

TEST(PcieModelTest, RunBytesComposition) {
  const graph::CsrGraph g =
      graph::MakeDatasetStandIn(graph::Dataset::kYoutube, 10, 3);
  PcieModel model;
  const uint64_t one_instance = model.RunBytes(g, 1, 1000, 80);
  const uint64_t four_instances = model.RunBytes(g, 4, 1000, 80);
  // Each instance holds a private graph copy.
  EXPECT_EQ(four_instances - one_instance, 3 * g.ModeledByteSize());
  // Longer walks return more result data.
  EXPECT_GT(model.RunBytes(g, 1, 1000, 80), model.RunBytes(g, 1, 1000, 5));
}

TEST(ResourceUsageTest, Arithmetic) {
  ResourceUsage a{10, 20, 3, 4};
  const ResourceUsage b = a * 2;
  EXPECT_EQ(b.luts, 20u);
  EXPECT_EQ(b.dsps, 8u);
  a += b;
  EXPECT_EQ(a.luts, 30u);
  EXPECT_EQ(a.regs, 60u);
  EXPECT_EQ(a.brams, 9u);
}

AcceleratorConfig MetaPathConfig() {
  AcceleratorConfig config;
  config.sampler_parallelism = 16;
  config.num_instances = 4;
  return config;
}

AcceleratorConfig Node2VecConfig() {
  AcceleratorConfig config;
  config.sampler_parallelism = 8;
  config.num_instances = 4;
  config.prev_neighbor_buffer_edges = 65536;
  return config;
}

TEST(ResourceModelTest, FitsOnDevice) {
  ResourceModel model;
  for (const bool needs_prev : {false, true}) {
    const AcceleratorConfig config =
        needs_prev ? Node2VecConfig() : MetaPathConfig();
    const ResourceUsage total = model.TotalUsage(config, needs_prev);
    EXPECT_LT(model.LutPercent(total), 100.0);
    EXPECT_LT(model.BramPercent(total), 100.0);
    EXPECT_LT(model.DspPercent(total), 100.0);
    EXPECT_LT(model.RegPercent(total), 100.0);
  }
}

TEST(ResourceModelTest, Table5Shapes) {
  // The relative shape of the paper's Table 5: MetaPath is LUT/DSP-heavier
  // (wide relation matchers); Node2Vec is BRAM-heavier (previous-adjacency
  // buffer); both leave most of the U250 free.
  ResourceModel model;
  const ResourceUsage metapath = model.TotalUsage(MetaPathConfig(), false);
  const ResourceUsage node2vec = model.TotalUsage(Node2VecConfig(), true);
  EXPECT_GT(model.LutPercent(metapath), model.LutPercent(node2vec));
  EXPECT_GT(model.BramPercent(node2vec), model.BramPercent(metapath));
  EXPECT_GT(model.DspPercent(metapath), model.DspPercent(node2vec));
  EXPECT_LT(model.LutPercent(metapath), 50.0);
  EXPECT_LT(model.BramPercent(node2vec), 50.0);
  EXPECT_LT(model.DspPercent(metapath), 10.0);
}

TEST(ResourceModelTest, ScalesWithParallelism) {
  ResourceModel model;
  AcceleratorConfig small = MetaPathConfig();
  small.sampler_parallelism = 4;
  AcceleratorConfig big = MetaPathConfig();
  big.sampler_parallelism = 32;
  const auto u_small = model.InstanceUsage(small, false);
  const auto u_big = model.InstanceUsage(big, false);
  EXPECT_GT(u_big.luts, u_small.luts);
  EXPECT_GT(u_big.dsps, u_small.dsps);
}

TEST(ResourceModelTest, CacheContributesBram) {
  ResourceModel model;
  AcceleratorConfig with_cache = MetaPathConfig();
  AcceleratorConfig no_cache = MetaPathConfig();
  no_cache.cache_kind = CacheKind::kNone;
  EXPECT_GT(model.InstanceUsage(with_cache, false).brams,
            model.InstanceUsage(no_cache, false).brams);
}

TEST(ConfigValidationTest, DefaultConfigsValid) {
  EXPECT_TRUE(ValidateConfig(MetaPathConfig(), false).ok());
  EXPECT_TRUE(ValidateConfig(Node2VecConfig(), true).ok());
  EXPECT_TRUE(ValidateConfig(AcceleratorConfig{}, false).ok());
}

TEST(ConfigValidationTest, RejectsNonPowerOfTwoLanes) {
  AcceleratorConfig config;
  config.sampler_parallelism = 12;
  const Status status = ValidateConfig(config, false);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(ConfigValidationTest, RejectsTooManyLanes) {
  AcceleratorConfig config;
  config.sampler_parallelism = 128;
  EXPECT_FALSE(ValidateConfig(config, false).ok());
}

TEST(ConfigValidationTest, RejectsBadCacheSize) {
  AcceleratorConfig config;
  config.cache_entries = 1000;  // not a power of two
  EXPECT_FALSE(ValidateConfig(config, false).ok());
  config.cache_kind = CacheKind::kNone;  // no cache: size ignored
  EXPECT_TRUE(ValidateConfig(config, false).ok());
}

TEST(ConfigValidationTest, RejectsDegenerateBurstStrategy) {
  AcceleratorConfig config;
  config.burst = BurstStrategy{0, 32};
  EXPECT_FALSE(ValidateConfig(config, false).ok());
  config.burst = BurstStrategy{4, 2};  // long <= short
  EXPECT_FALSE(ValidateConfig(config, false).ok());
  config.burst = BurstStrategy{4, 0};  // long disabled is fine
  EXPECT_TRUE(ValidateConfig(config, false).ok());
}

TEST(ConfigValidationTest, RejectsTooManyInstances) {
  AcceleratorConfig config;
  config.num_instances = 8;
  EXPECT_FALSE(ValidateConfig(config, false).ok());
}

TEST(ConfigValidationTest, RejectsOversizedOnChipStructures) {
  // A previous-adjacency buffer of 2^24 edges needs far more BRAM than
  // the U250 has.
  AcceleratorConfig config;
  config.prev_neighbor_buffer_edges = 1u << 24;
  const Status status = ValidateConfig(config, /*needs_prev=*/true);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace lightrw::core
