#include <gtest/gtest.h>

#include "common/flags.h"

namespace lightrw {
namespace {

TEST(FlagParserTest, DefaultsApply) {
  FlagParser flags;
  flags.Define("length", "walk length", "80");
  flags.Define("rate", "a rate", "0.5");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.Parse(1, argv).ok());
  EXPECT_EQ(flags.GetInt("length"), 80);
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate"), 0.5);
}

TEST(FlagParserTest, EqualsForm) {
  FlagParser flags;
  flags.Define("name", "", "x");
  const char* argv[] = {"prog", "--name=value"};
  ASSERT_TRUE(flags.Parse(2, argv).ok());
  EXPECT_EQ(flags.GetString("name"), "value");
}

TEST(FlagParserTest, SpaceForm) {
  FlagParser flags;
  flags.Define("count", "", "1");
  const char* argv[] = {"prog", "--count", "42"};
  ASSERT_TRUE(flags.Parse(3, argv).ok());
  EXPECT_EQ(flags.GetInt("count"), 42);
}

TEST(FlagParserTest, BareBoolean) {
  FlagParser flags;
  flags.Define("verbose", "", "false");
  const char* argv[] = {"prog", "--verbose"};
  ASSERT_TRUE(flags.Parse(2, argv).ok());
  EXPECT_TRUE(flags.GetBool("verbose"));
}

TEST(FlagParserTest, BooleanVariants) {
  FlagParser flags;
  flags.Define("a", "", "false");
  flags.Define("b", "", "true");
  const char* argv[] = {"prog", "--a=yes", "--b=0"};
  ASSERT_TRUE(flags.Parse(3, argv).ok());
  EXPECT_TRUE(flags.GetBool("a"));
  EXPECT_FALSE(flags.GetBool("b"));
}

TEST(FlagParserTest, UnknownFlagRejected) {
  FlagParser flags;
  flags.Define("known", "", "1");
  const char* argv[] = {"prog", "--unknown=3"};
  const Status status = flags.Parse(2, argv);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(FlagParserTest, PositionalArguments) {
  FlagParser flags;
  flags.Define("k", "", "1");
  const char* argv[] = {"prog", "input.txt", "--k=2", "output.txt"};
  ASSERT_TRUE(flags.Parse(4, argv).ok());
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "input.txt");
  EXPECT_EQ(flags.positional()[1], "output.txt");
  EXPECT_EQ(flags.GetInt("k"), 2);
}

TEST(FlagParserTest, NegativeNumbers) {
  FlagParser flags;
  flags.Define("delta", "", "0");
  const char* argv[] = {"prog", "--delta=-5"};
  ASSERT_TRUE(flags.Parse(2, argv).ok());
  EXPECT_EQ(flags.GetInt("delta"), -5);
}

TEST(FlagParserTest, TypedIntRejectsMalformedValueAtParse) {
  FlagParser flags;
  flags.DefineInt("length", "walk length", 80);
  const char* argv[] = {"prog", "--length=abc"};
  const Status status = flags.Parse(2, argv);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("--length"), std::string::npos);
  // The default is untouched after a failed parse.
  EXPECT_EQ(flags.GetInt("length"), 80);
}

TEST(FlagParserTest, TypedIntRejectsTrailingGarbageAndOverflow) {
  FlagParser flags;
  flags.DefineInt("n", "", 0);
  const char* bad_suffix[] = {"prog", "--n=12x"};
  EXPECT_FALSE(flags.Parse(2, bad_suffix).ok());
  const char* overflow[] = {"prog", "--n=99999999999999999999"};
  EXPECT_FALSE(flags.Parse(2, overflow).ok());
  const char* empty[] = {"prog", "--n="};
  EXPECT_FALSE(flags.Parse(2, empty).ok());
}

TEST(FlagParserTest, TypedDoubleRejectsMalformedValueAtParse) {
  FlagParser flags;
  flags.DefineDouble("rate", "", 0.5);
  const char* argv[] = {"prog", "--rate=fast"};
  EXPECT_FALSE(flags.Parse(2, argv).ok());
  const char* good[] = {"prog", "--rate=0.25"};
  ASSERT_TRUE(flags.Parse(2, good).ok());
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate"), 0.25);
}

TEST(FlagParserTest, TypedBoolRejectsMalformedValueAtParse) {
  FlagParser flags;
  flags.DefineBool("verbose", "", false);
  const char* argv[] = {"prog", "--verbose=maybe"};
  EXPECT_FALSE(flags.Parse(2, argv).ok());
}

TEST(FlagParserTest, TypedBoolBareFormNeverConsumesNextArg) {
  FlagParser flags;
  flags.DefineBool("verbose", "", false);
  const char* argv[] = {"prog", "--verbose", "input.txt"};
  ASSERT_TRUE(flags.Parse(3, argv).ok());
  EXPECT_TRUE(flags.GetBool("verbose"));
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "input.txt");
}

TEST(FlagParserTest, TypedDefaultsRoundTrip) {
  FlagParser flags;
  flags.DefineInt("count", "", -3);
  flags.DefineDouble("ratio", "", 0.125);
  flags.DefineBool("on", "", true);
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.Parse(1, argv).ok());
  EXPECT_EQ(flags.GetInt("count"), -3);
  EXPECT_DOUBLE_EQ(flags.GetDouble("ratio"), 0.125);
  EXPECT_TRUE(flags.GetBool("on"));
}

TEST(FlagParserTest, HelpTextMentionsFlags) {
  FlagParser flags;
  flags.Define("alpha", "stop probability", "0.15");
  const std::string help = flags.HelpText();
  EXPECT_NE(help.find("--alpha"), std::string::npos);
  EXPECT_NE(help.find("stop probability"), std::string::npos);
  EXPECT_NE(help.find("0.15"), std::string::npos);
}

}  // namespace
}  // namespace lightrw
