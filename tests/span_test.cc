// Per-query span tracing (obs/span.h), the critical-path analyzer and
// burn-rate monitor (obs/critical_path.h), and the determinism contract:
// span output is a pure function of the configuration — byte-identical
// for every host thread count, including under injected faults, because
// span ids derive from walker tickets and the export sorts canonically.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "apps/walk_app.h"
#include "distributed/dist_engine.h"
#include "distributed/partition.h"
#include "graph/generators.h"
#include "obs/critical_path.h"
#include "obs/span.h"
#include "service/walk_service.h"

namespace lightrw {
namespace {

using distributed::MakePartition;
using distributed::Partition;
using distributed::PartitionStrategy;
using graph::CsrGraph;
using obs::AnalyzeCriticalPaths;
using obs::AttributionReport;
using obs::BurnAlert;
using obs::BurnRateConfig;
using obs::ComputeBurnAlerts;
using obs::DeriveSpanId;
using obs::Span;
using obs::SpanConfig;
using obs::SpanMode;
using obs::SpanRecorder;
using obs::TraceSummary;
using service::QueryOutcome;
using service::ServiceConfig;
using service::WalkService;

CsrGraph TestGraph() {
  return graph::MakeDatasetStandIn(graph::Dataset::kLiveJournal,
                                   /*scale_shift=*/11, /*seed=*/9);
}

// --- span id derivation ----------------------------------------------------

TEST(DeriveSpanIdTest, DeterministicNonzeroAndDistinct) {
  EXPECT_EQ(DeriveSpanId(3, 7), DeriveSpanId(3, 7));
  std::vector<uint64_t> seen;
  for (uint64_t trace = 0; trace < 32; ++trace) {
    for (uint64_t seq = 0; seq < 32; ++seq) {
      const uint64_t id = DeriveSpanId(trace, seq);
      EXPECT_NE(id, 0u);
      seen.push_back(id);
    }
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end())
      << "span ids must be distinct across (trace, seq) pairs";
}

// --- recorder basics -------------------------------------------------------

TEST(SpanRecorderTest, RecordsParentChildTree) {
  SpanRecorder rec;
  const uint64_t root = rec.Begin(5, 0, "query", "service", -1, 100);
  const uint64_t child = rec.Begin(5, root, "queue", "service", 2, 100);
  ASSERT_NE(root, 0u);
  ASSERT_NE(child, 0u);
  rec.Attr(5, child, "depth", 3);
  rec.Event(5, child, "note", 120);
  rec.End(5, child, 150);
  rec.End(5, root, 200);
  rec.CloseTrace(5, 100, 200, /*breached=*/false, "completed");

  const std::vector<Span> spans = rec.Spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].id, root);
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_EQ(spans[0].seq, 0u);
  EXPECT_FALSE(spans[0].open);
  EXPECT_EQ(spans[1].id, child);
  EXPECT_EQ(spans[1].parent, root);
  EXPECT_EQ(spans[1].seq, 1u);
  EXPECT_EQ(spans[1].start, 100u);
  EXPECT_EQ(spans[1].end, 150u);
  ASSERT_EQ(spans[1].attrs.size(), 1u);
  EXPECT_EQ(spans[1].attrs[0].second, 3u);
  ASSERT_EQ(spans[1].events.size(), 1u);
  EXPECT_EQ(spans[1].events[0].at, 120u);

  const std::vector<TraceSummary> summaries = rec.Summaries();
  ASSERT_EQ(summaries.size(), 1u);
  EXPECT_EQ(summaries[0].trace, 5u);
  EXPECT_FALSE(summaries[0].breached);
  EXPECT_STREQ(summaries[0].outcome, "completed");
}

TEST(SpanRecorderTest, BreachedModeIsAFlightRecorder) {
  SpanConfig config;
  config.mode = SpanMode::kBreached;
  SpanRecorder rec(config);
  for (uint64_t trace = 0; trace < 10; ++trace) {
    const uint64_t s = rec.Begin(trace, 0, "query", "service", -1, trace);
    rec.End(trace, s, trace + 10);
    // Traces 3 and 7 breach; only their spans survive.
    const bool breached = trace == 3 || trace == 7;
    rec.CloseTrace(trace, trace, trace + 10, breached,
                   breached ? "deadline_missed" : "completed");
  }
  const std::vector<Span> spans = rec.Spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].trace, 3u);
  EXPECT_EQ(spans[1].trace, 7u);
  // Summaries are kept for every closed trace regardless of mode (the
  // burn-rate monitor needs the full terminal stream).
  EXPECT_EQ(rec.Summaries().size(), 10u);
  EXPECT_EQ(rec.traces_closed(), 10u);
  EXPECT_EQ(rec.num_retained_traces(), 2u);
}

TEST(SpanRecorderTest, RetainedRingEvictsOldestAndCounts) {
  SpanConfig config;
  config.max_traces = 3;
  SpanRecorder rec(config);
  for (uint64_t trace = 0; trace < 5; ++trace) {
    rec.Begin(trace, 0, "query", "service", -1, trace);
    rec.CloseTrace(trace, trace, trace + 1, /*breached=*/true, "x");
  }
  EXPECT_EQ(rec.num_retained_traces(), 3u);
  EXPECT_EQ(rec.traces_evicted(), 2u);
  const std::vector<Span> spans = rec.Spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans.front().trace, 2u);  // 0 and 1 evicted
}

TEST(SpanRecorderTest, PerTraceSpanCapDropsAndCounts) {
  SpanConfig config;
  config.max_spans_per_trace = 2;
  SpanRecorder rec(config);
  EXPECT_NE(rec.Begin(1, 0, "a", "t", -1, 0), 0u);
  EXPECT_NE(rec.Begin(1, 0, "b", "t", -1, 0), 0u);
  EXPECT_EQ(rec.Begin(1, 0, "c", "t", -1, 0), 0u);  // dropped
  EXPECT_EQ(rec.spans_dropped(), 1u);
  // Id 0 is ignored everywhere: these must not crash or misattribute.
  rec.Attr(1, 0, "k", 1);
  rec.Event(1, 0, "e", 1);
  rec.End(1, 0, 9);
  EXPECT_EQ(rec.Spans().size(), 2u);
}

TEST(SpanRecorderTest, MergeOrderIsInvisibleInExport) {
  // Two shards with disjoint traces, merged in both orders: the exported
  // documents must be identical (canonical (trace, seq) sort).
  auto fill = [](SpanRecorder* rec, uint64_t trace) {
    const uint64_t root =
        rec->Begin(trace, 0, "query", "service", -1, trace * 10);
    rec->End(trace, root, trace * 10 + 5);
    rec->CloseTrace(trace, trace * 10, trace * 10 + 5, trace % 2 == 1,
                    "done");
  };
  SpanRecorder a1, a2, b1, b2;
  fill(&a1, 0);
  fill(&a1, 2);
  fill(&a2, 1);
  fill(&b1, 0);
  fill(&b1, 2);
  fill(&b2, 1);
  SpanRecorder merged_ab, merged_ba;
  merged_ab.MergeFrom(&a1);
  merged_ab.MergeFrom(&a2);
  merged_ba.MergeFrom(&b2);
  merged_ba.MergeFrom(&b1);
  EXPECT_EQ(merged_ab.ToJsonString(), merged_ba.ToJsonString());
  EXPECT_EQ(merged_ab.traces_closed(), 3u);
}

// --- critical-path analyzer ------------------------------------------------

TEST(CriticalPathTest, AttributesComponentsAndNamesDominant) {
  SpanRecorder rec;
  const uint64_t root = rec.Begin(0, 0, "query", "service", -1, 0);
  const uint64_t queue = rec.Begin(0, root, "queue", "service", 1, 0);
  rec.End(0, queue, 40);
  const uint64_t walk = rec.Begin(0, root, "walk", "exec", 1, 40);
  rec.Attr(0, walk, "dram_info", 10);
  rec.Attr(0, walk, "dram_fetch", 100);
  rec.Attr(0, walk, "sampler", 5);
  rec.Attr(0, walk, "pipeline", 20);
  rec.Attr(0, walk, "network", 0);
  rec.Attr(0, walk, "recovery", 0);
  rec.End(0, walk, 200);
  rec.End(0, root, 200);
  rec.CloseTrace(0, 0, 200, /*breached=*/true, "deadline_missed");

  const AttributionReport report = AnalyzeCriticalPaths(rec);
  EXPECT_EQ(report.queries_analyzed, 1u);
  EXPECT_EQ(report.breached_count, 1u);
  ASSERT_EQ(report.breached.size(), 1u);
  const auto& qa = report.breached[0];
  EXPECT_EQ(qa.total_cycles, 200u);
  EXPECT_EQ(qa.cycles[obs::kCompQueue], 40u);
  EXPECT_EQ(qa.cycles[obs::kCompDramInfo], 10u);
  EXPECT_EQ(qa.cycles[obs::kCompDramFetch], 100u);
  EXPECT_EQ(qa.cycles[obs::kCompSampler], 5u);
  EXPECT_EQ(qa.cycles[obs::kCompPipeline], 20u);
  // other = 200 - (40 + 10 + 100 + 5 + 20) = 25.
  EXPECT_EQ(qa.cycles[obs::kCompOther], 25u);
  EXPECT_STREQ(qa.DominantName(), "dram_fetch");
  EXPECT_EQ(report.dominant_counts[obs::kCompDramFetch], 1u);
}

TEST(CriticalPathTest, TiesBreakTowardEarlierLifecycleStage) {
  SpanRecorder rec;
  const uint64_t root = rec.Begin(0, 0, "query", "service", -1, 0);
  const uint64_t queue = rec.Begin(0, root, "queue", "service", 1, 0);
  rec.End(0, queue, 50);
  const uint64_t backoff = rec.Begin(0, root, "backoff", "service", 1, 50);
  rec.End(0, backoff, 100);
  rec.End(0, root, 100);
  rec.CloseTrace(0, 0, 100, /*breached=*/true, "queue_full");
  const AttributionReport report = AnalyzeCriticalPaths(rec);
  ASSERT_EQ(report.breached.size(), 1u);
  // queue_wait == backoff == 50: queue_wait wins (earlier stage).
  EXPECT_STREQ(report.breached[0].DominantName(), "queue_wait");
}

TEST(CriticalPathTest, EveryBreachedQueryNamesADominantComponent) {
  // Even a degenerate breached trace (zero-duration, no cycles anywhere)
  // must name a component: the all-zero argmax resolves to the earliest
  // lifecycle stage via the documented tie-break.
  SpanRecorder rec;
  const uint64_t root = rec.Begin(9, 0, "query", "service", -1, 7);
  rec.End(9, root, 7);
  rec.CloseTrace(9, 7, 7, /*breached=*/true, "queue_full");
  const AttributionReport report = AnalyzeCriticalPaths(rec);
  ASSERT_EQ(report.breached.size(), 1u);
  EXPECT_LT(report.breached[0].dominant, obs::kNumComponents);
  EXPECT_STREQ(report.breached[0].DominantName(), "queue_wait");
}

// --- burn-rate monitor -----------------------------------------------------

TEST(BurnRateTest, ValidatesConfig) {
  BurnRateConfig config;
  EXPECT_TRUE(obs::ValidateBurnRateConfig(config).ok());
  config.budget = 0.0;
  EXPECT_FALSE(obs::ValidateBurnRateConfig(config).ok());
  config.budget = 0.01;
  config.threshold = 0.0;
  EXPECT_FALSE(obs::ValidateBurnRateConfig(config).ok());
  config.threshold = 2.0;
  config.fast_window_cycles = 1 << 20;  // fast > slow
  EXPECT_FALSE(obs::ValidateBurnRateConfig(config).ok());
}

std::vector<TraceSummary> MakeSummaries(
    const std::vector<std::pair<uint64_t, bool>>& events) {
  std::vector<TraceSummary> out;
  for (size_t i = 0; i < events.size(); ++i) {
    TraceSummary s;
    s.trace = i;
    s.start = events[i].first;
    s.end = events[i].first;
    s.breached = events[i].second;
    s.outcome = events[i].second ? "deadline_missed" : "completed";
    out.push_back(s);
  }
  return out;
}

TEST(BurnRateTest, QuietStreamNeverFires) {
  BurnRateConfig config;
  config.budget = 0.5;  // very forgiving
  std::vector<std::pair<uint64_t, bool>> events;
  for (uint64_t t = 0; t < 100; ++t) {
    events.emplace_back(t * 100, t % 10 == 0);  // 10% breach, 20% budget
  }
  EXPECT_TRUE(ComputeBurnAlerts(MakeSummaries(events), config).empty());
}

TEST(BurnRateTest, BreachBurstFiresThenClears) {
  BurnRateConfig config;
  config.budget = 0.1;
  config.threshold = 2.0;
  config.fast_window_cycles = 1000;
  config.slow_window_cycles = 4000;
  std::vector<std::pair<uint64_t, bool>> events;
  // A clean lead-in, a dense breach burst, then a long clean tail that
  // flushes both windows.
  for (uint64_t t = 0; t < 20; ++t) {
    events.emplace_back(t * 50, false);
  }
  for (uint64_t t = 0; t < 30; ++t) {
    events.emplace_back(1000 + t * 10, true);
  }
  for (uint64_t t = 0; t < 200; ++t) {
    events.emplace_back(1300 + t * 50, false);
  }
  const std::vector<BurnAlert> alerts =
      ComputeBurnAlerts(MakeSummaries(events), config);
  ASSERT_GE(alerts.size(), 2u);
  EXPECT_TRUE(alerts.front().firing);
  EXPECT_GT(alerts.front().fast_burn, config.threshold);
  EXPECT_GT(alerts.front().slow_burn, config.threshold);
  EXPECT_FALSE(alerts.back().firing);
  // Transitions alternate fire/clear.
  for (size_t i = 1; i < alerts.size(); ++i) {
    EXPECT_NE(alerts[i].firing, alerts[i - 1].firing);
    EXPECT_GE(alerts[i].cycle, alerts[i - 1].cycle);
  }
}

TEST(BurnRateTest, InputOrderDoesNotMatter) {
  BurnRateConfig config;
  config.budget = 0.05;
  std::vector<std::pair<uint64_t, bool>> events;
  for (uint64_t t = 0; t < 50; ++t) {
    events.emplace_back(t * 37, t % 3 == 0);
  }
  std::vector<TraceSummary> forward = MakeSummaries(events);
  std::vector<TraceSummary> reversed(forward.rbegin(), forward.rend());
  const auto a = ComputeBurnAlerts(forward, config);
  const auto b = ComputeBurnAlerts(reversed, config);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].cycle, b[i].cycle);
    EXPECT_EQ(a[i].firing, b[i].firing);
  }
}

TEST(FormatLatencyAttributionTest, EmptyWhenNothingAnalyzed) {
  EXPECT_EQ(obs::FormatLatencyAttributionSection({}, {}), "");
}

// --- end-to-end determinism ------------------------------------------------

struct SpanRun {
  std::string json;
  AttributionReport report;
  std::vector<QueryOutcome> outcomes;
  uint64_t traces_closed = 0;
};

// Service run with spans attached; `shards` > 1 exercises the sharded
// merge (requires no faults), fault injection exercises retry/failure
// spans (requires shards == 1).
SpanRun RunServiceWithSpans(const CsrGraph& g, const apps::WalkApp& app,
                            const Partition& partition, uint32_t shards,
                            uint32_t threads, SpanMode mode,
                            const reliability::FaultConfig& faults) {
  ServiceConfig config;
  config.cluster.board.num_instances = 1;
  config.cluster.board.seed = 13;
  config.cluster.board.faults = faults;
  config.cluster.replicate_graph = true;
  config.cluster.num_threads = threads;
  config.cluster.inflight_walkers_per_board = 2;
  config.admission_shards = shards;
  config.arrivals.seed = 7;
  config.arrivals.num_queries = 384;
  config.arrivals.walk_length = 16;
  config.arrivals.rate_per_kcycle = 32.0;
  config.arrivals.deadline_cycles = 1 << 12;
  config.queue_capacity = 4;
  config.retry_budget = 1;
  config.retry_backoff_cycles = 256;

  SpanConfig span_config;
  span_config.mode = mode;
  SpanRecorder spans(span_config);
  config.cluster.board.spans = &spans;

  WalkService walk_service(&g, &app, &partition, config);
  SpanRun run;
  EXPECT_TRUE(walk_service.Run().ok());
  run.json = spans.ToJsonString();
  run.report = AnalyzeCriticalPaths(spans);
  run.outcomes = walk_service.outcomes();
  run.traces_closed = spans.traces_closed();
  return run;
}

TEST(SpanDeterminismTest, ShardedServiceByteIdenticalAcrossThreads) {
  const CsrGraph g = TestGraph();
  const apps::StaticWalkApp app;
  const Partition partition = MakePartition(g, 4, PartitionStrategy::kHash);
  const SpanRun serial = RunServiceWithSpans(
      g, app, partition, /*shards=*/4, /*threads=*/1, SpanMode::kAll, {});
  EXPECT_EQ(serial.traces_closed, 384u);
  EXPECT_GT(serial.report.breached_count, 0u);
  const SpanRun parallel = RunServiceWithSpans(
      g, app, partition, /*shards=*/4, /*threads=*/4, SpanMode::kAll, {});
  EXPECT_EQ(serial.json, parallel.json);
}

TEST(SpanDeterminismTest, FaultInjectedServiceByteIdenticalAcrossThreads) {
  const CsrGraph g = TestGraph();
  const apps::StaticWalkApp app;
  const Partition partition = MakePartition(g, 4, PartitionStrategy::kHash);
  reliability::FaultConfig faults;
  faults.enabled = true;
  faults.seed = 77;
  faults.dram_uncorrectable_rate = 1e-2;
  faults.max_dram_retries = 0;  // first uncorrectable hit fails the access
  // Faults require a single admission shard; the thread count must still
  // be invisible in the span output.
  const SpanRun serial = RunServiceWithSpans(
      g, app, partition, /*shards=*/1, /*threads=*/1, SpanMode::kAll,
      faults);
  const SpanRun parallel = RunServiceWithSpans(
      g, app, partition, /*shards=*/1, /*threads=*/4, SpanMode::kAll,
      faults);
  EXPECT_EQ(serial.json, parallel.json);
  // The fault schedule must actually have reached the span stream:
  // uncorrectable ECC hits annotate walk spans, and the surfaced walk
  // failures re-admit through retry backoff spans.
  EXPECT_NE(serial.json.find("dram_uncorrectable"), std::string::npos)
      << "fault rate too low to exercise fault-event spans";
  EXPECT_NE(serial.json.find("\"backoff\""), std::string::npos)
      << "no retry backoff span recorded under injected walk failures";
}

TEST(SpanDeterminismTest, BreachReportNamesDominantForEveryBreach) {
  const CsrGraph g = TestGraph();
  const apps::StaticWalkApp app;
  const Partition partition = MakePartition(g, 4, PartitionStrategy::kHash);
  reliability::FaultConfig faults;
  faults.enabled = true;
  faults.seed = 77;
  faults.dram_uncorrectable_rate = 1e-2;
  faults.max_dram_retries = 0;  // first uncorrectable hit fails the access
  const SpanRun run = RunServiceWithSpans(
      g, app, partition, /*shards=*/1, /*threads=*/1, SpanMode::kAll,
      faults);
  EXPECT_GT(run.report.breached_count, 0u);
  EXPECT_EQ(run.report.breached.size(), run.report.breached_count);
  for (const auto& qa : run.report.breached) {
    EXPECT_TRUE(qa.breached);
    EXPECT_LT(qa.dominant, obs::kNumComponents);
    EXPECT_STRNE(qa.DominantName(), "unknown");
    EXPECT_STRNE(qa.outcome.c_str(), "");
  }
}

TEST(SpanDeterminismTest, FlightRecorderKeepsOnlyBreachedTraces) {
  const CsrGraph g = TestGraph();
  const apps::StaticWalkApp app;
  const Partition partition = MakePartition(g, 4, PartitionStrategy::kHash);
  const SpanRun all = RunServiceWithSpans(
      g, app, partition, /*shards=*/4, /*threads=*/1, SpanMode::kAll, {});
  const SpanRun breached = RunServiceWithSpans(
      g, app, partition, /*shards=*/4, /*threads=*/1, SpanMode::kBreached,
      {});
  // Same run, same breach set — but the flight recorder analyzed only
  // the breached traces.
  EXPECT_EQ(all.report.breached_count, breached.report.breached_count);
  EXPECT_EQ(breached.report.queries_analyzed,
            breached.report.breached_count);
  EXPECT_GT(all.report.queries_analyzed, breached.report.queries_analyzed);
  // And the per-breach attribution is identical in both modes.
  ASSERT_EQ(all.report.breached.size(), breached.report.breached.size());
  for (size_t i = 0; i < all.report.breached.size(); ++i) {
    EXPECT_EQ(all.report.breached[i].trace, breached.report.breached[i].trace);
    EXPECT_EQ(all.report.breached[i].dominant,
              breached.report.breached[i].dominant);
  }
}

TEST(SpanDeterminismTest, BatchDistributedByteIdenticalAcrossThreads) {
  const CsrGraph g = TestGraph();
  const apps::StaticWalkApp app;
  const Partition partition = MakePartition(g, 4, PartitionStrategy::kHash);
  auto run = [&](uint32_t threads) {
    distributed::DistributedConfig config;
    config.board.num_instances = 1;
    config.board.seed = 17;
    config.replicate_graph = true;
    config.num_threads = threads;
    SpanRecorder spans;
    config.board.spans = &spans;
    const auto queries = apps::MakeVertexQueries(g, /*length=*/16,
                                                 /*seed=*/5, /*limit=*/600);
    distributed::DistributedEngine engine(&g, &app, &partition, config);
    EXPECT_TRUE(engine.Run(queries).ok());
    return spans.ToJsonString();
  };
  const std::string serial = run(1);
  const std::string parallel = run(4);
  EXPECT_EQ(serial, parallel);
  EXPECT_NE(serial.find("\"walk\""), std::string::npos);
}

}  // namespace
}  // namespace lightrw
