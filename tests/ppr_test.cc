#include <gtest/gtest.h>

#include "analytics/ppr.h"
#include "apps/ppr.h"
#include "baseline/engine.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "lightrw/cycle_engine.h"
#include "lightrw/functional_engine.h"

namespace lightrw {
namespace {

using analytics::EstimatePprFromWalks;
using analytics::ExactPpr;
using analytics::L1Distance;
using analytics::TopKIndices;
using apps::PprApp;
using apps::WalkQuery;
using graph::CsrGraph;
using graph::VertexId;

TEST(PprAppTest, StopProbabilityExposed) {
  PprApp app(0.15);
  EXPECT_DOUBLE_EQ(app.stop_probability(), 0.15);
  EXPECT_DOUBLE_EQ(app.alpha(), 0.15);
  EXPECT_EQ(app.name(), "PPR");
  EXPECT_FALSE(app.needs_prev_neighbors());
}

TEST(PprAppTest, WeightIsStatic) {
  graph::GraphBuilder builder(2, false);
  builder.AddEdge(0, 1, 7);
  const CsrGraph g = std::move(builder).Build();
  PprApp app(0.2);
  apps::WalkState state;
  EXPECT_EQ(app.DynamicWeight(g, state, 1, 7, 0), 7u);
}

TEST(ExactPprTest, SumsToOne) {
  const CsrGraph g = graph::MakeDatasetStandIn(graph::Dataset::kYoutube,
                                               /*scale_shift=*/11, 3);
  const auto ppr = ExactPpr(g, 0, 0.15);
  double total = 0.0;
  for (const double x : ppr) {
    EXPECT_GE(x, 0.0);
    total += x;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ExactPprTest, IsolatedSourceKeepsAllMass) {
  graph::GraphBuilder builder(3, false);
  builder.AddEdge(1, 2);
  const CsrGraph g = std::move(builder).Build();
  const auto ppr = ExactPpr(g, /*source=*/0, 0.15);
  EXPECT_DOUBLE_EQ(ppr[0], 1.0);
}

TEST(ExactPprTest, TwoCycleSplitsMass) {
  // 0 <-> 1: after an odd number of steps the walker is at 1, after an
  // even number (>0) at 0. P(stop after t steps) = a(1-a)^(t-1).
  graph::GraphBuilder builder(2, false);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 0);
  const CsrGraph g = std::move(builder).Build();
  const double a = 0.3;
  const auto ppr = ExactPpr(g, 0, a, 1e-14, 2000);
  // P(end at 1) = sum over odd t of a(1-a)^{t-1} = a / (1 - (1-a)^2)...
  const double q = 1.0 - a;
  const double at1 = a / (1.0 - q * q);
  EXPECT_NEAR(ppr[1], at1, 1e-9);
  EXPECT_NEAR(ppr[0], 1.0 - at1, 1e-9);
}

TEST(PprMonteCarloTest, FunctionalEngineMatchesExact) {
  const CsrGraph g = graph::MakeDatasetStandIn(graph::Dataset::kYoutube,
                                               /*scale_shift=*/11, 7);
  const double alpha = 0.2;
  PprApp app(alpha);
  VertexId source = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.Degree(v) > g.Degree(source)) {
      source = v;
    }
  }
  const std::vector<WalkQuery> queries(60000, WalkQuery{source, 128});
  core::AcceleratorConfig config;
  config.seed = 5;
  core::FunctionalEngine engine(&g, &app, config);
  baseline::WalkOutput walks;
  engine.Run(queries, &walks);
  const auto estimate = EstimatePprFromWalks(walks, g.num_vertices());
  const auto exact = ExactPpr(g, source, alpha);
  EXPECT_LT(L1Distance(estimate, exact), 0.12);
}

TEST(PprMonteCarloTest, BaselineEngineMatchesExact) {
  const CsrGraph g = graph::MakeDatasetStandIn(graph::Dataset::kYoutube,
                                               /*scale_shift=*/11, 7);
  const double alpha = 0.2;
  PprApp app(alpha);
  const std::vector<WalkQuery> queries(60000, WalkQuery{0, 128});
  baseline::BaselineEngine engine(&g, &app, baseline::BaselineConfig{});
  baseline::WalkOutput walks;
  engine.Run(queries, &walks);
  const auto estimate = EstimatePprFromWalks(walks, g.num_vertices());
  const auto exact = ExactPpr(g, 0, alpha);
  EXPECT_LT(L1Distance(estimate, exact), 0.12);
}

TEST(PprMonteCarloTest, CycleEngineAverageWalkLengthGeometric) {
  const CsrGraph g = graph::MakeDatasetStandIn(graph::Dataset::kYoutube,
                                               /*scale_shift=*/11, 7);
  const double alpha = 0.25;
  PprApp app(alpha);
  // Use high-degree starts so dead ends are rare and the expected walk
  // length approaches the geometric mean 1/alpha.
  VertexId source = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.Degree(v) > g.Degree(source)) {
      source = v;
    }
  }
  const std::vector<WalkQuery> queries(20000, WalkQuery{source, 256});
  core::AcceleratorConfig config;
  config.num_instances = 1;
  core::CycleEngine engine(&g, &app, config);
  const auto stats = engine.Run(queries);
  const double avg_steps =
      static_cast<double>(stats.steps) / static_cast<double>(stats.queries);
  EXPECT_NEAR(avg_steps, 1.0 / alpha, 0.6);
}

TEST(PprMonteCarloTest, ShorterWalksWithHigherAlpha) {
  const CsrGraph g = graph::MakeDatasetStandIn(graph::Dataset::kYoutube,
                                               /*scale_shift=*/11, 7);
  const std::vector<WalkQuery> queries(5000, WalkQuery{0, 256});
  core::AcceleratorConfig config;
  PprApp fast_stop(0.5);
  PprApp slow_stop(0.05);
  const auto fast =
      core::FunctionalEngine(&g, &fast_stop, config).Run(queries);
  const auto slow =
      core::FunctionalEngine(&g, &slow_stop, config).Run(queries);
  EXPECT_LT(fast.steps, slow.steps);
}

TEST(TopKIndicesTest, OrdersByScore) {
  const std::vector<double> scores = {0.1, 0.5, 0.3, 0.5, 0.0};
  const auto top = TopKIndices(scores, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 1u);  // ties broken by index
  EXPECT_EQ(top[1], 3u);
  EXPECT_EQ(top[2], 2u);
}

TEST(L1DistanceTest, Basics) {
  EXPECT_DOUBLE_EQ(L1Distance({0.5, 0.5}, {0.5, 0.5}), 0.0);
  EXPECT_DOUBLE_EQ(L1Distance({1.0, 0.0}, {0.0, 1.0}), 2.0);
}

}  // namespace
}  // namespace lightrw
