// The chaos-campaign harness is itself a deterministic artifact: scenario
// configurations are a pure function of (seed, index), campaigns pass
// their own invariants on a healthy stack, and a report documents every
// verdict. These tests pin that contract on a small graph so the full
// 16-scenario CI campaign has a fast local counterpart.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "apps/walk_app.h"
#include "graph/generators.h"
#include "obs/json.h"
#include "reliability/chaos.h"
#include "reliability/fault_injector.h"

namespace lightrw {
namespace {

using apps::StaticWalkApp;
using graph::CsrGraph;
using reliability::ChaosConfig;
using reliability::MakeChaosScenario;
using reliability::RunChaosCampaign;

CsrGraph TestGraph() {
  return graph::MakeDatasetStandIn(graph::Dataset::kLiveJournal,
                                   /*scale_shift=*/11, /*seed=*/4);
}

ChaosConfig SmallCampaign() {
  ChaosConfig config;
  config.seed = 11;
  config.num_scenarios = 6;  // one of each archetype
  config.num_boards = 4;
  config.num_queries = 96;
  config.walk_length = 10;
  return config;
}

TEST(ChaosConfigTest, ValidationRejectsDegenerateCampaigns) {
  ChaosConfig config = SmallCampaign();
  config.num_scenarios = 0;
  EXPECT_FALSE(reliability::ValidateChaosConfig(config).ok());
  config = SmallCampaign();
  config.num_boards = 1;  // no survivor possible
  EXPECT_FALSE(reliability::ValidateChaosConfig(config).ok());
  config = SmallCampaign();
  config.thread_counts.clear();
  EXPECT_FALSE(reliability::ValidateChaosConfig(config).ok());
  EXPECT_TRUE(reliability::ValidateChaosConfig(SmallCampaign()).ok());
}

TEST(ChaosScenarioTest, PureFunctionOfSeedAndIndex) {
  const ChaosConfig config = SmallCampaign();
  std::string name_a, name_b;
  const auto a = MakeChaosScenario(config, 3, &name_a);
  const auto b = MakeChaosScenario(config, 3, &name_b);
  EXPECT_EQ(name_a, name_b);
  EXPECT_EQ(a.board.seed, b.board.seed);
  EXPECT_EQ(a.board.faults.seed, b.board.faults.seed);
  EXPECT_EQ(a.num_spare_boards, b.num_spare_boards);
  ASSERT_EQ(a.board.faults.board_deaths.size(),
            b.board.faults.board_deaths.size());
  for (size_t i = 0; i < a.board.faults.board_deaths.size(); ++i) {
    EXPECT_EQ(a.board.faults.board_deaths[i].cycle,
              b.board.faults.board_deaths[i].cycle);
    EXPECT_EQ(a.board.faults.board_deaths[i].board,
              b.board.faults.board_deaths[i].board);
  }
  // A different campaign seed perturbs the scenario.
  ChaosConfig other = config;
  other.seed = 12;
  std::string name_c;
  const auto c = MakeChaosScenario(other, 3, &name_c);
  EXPECT_NE(a.board.faults.seed, c.board.faults.seed);
}

TEST(ChaosScenarioTest, SixConsecutiveIndicesCoverEveryArchetype) {
  const ChaosConfig config = SmallCampaign();
  std::set<std::string> archetypes;
  for (uint32_t i = 0; i < 6; ++i) {
    std::string name;
    MakeChaosScenario(config, i, &name);
    // Names look like "s03-spare-exhaustion-part-spares1"; the archetype
    // is the middle segment.
    const size_t start = name.find('-') + 1;
    const size_t end = name.find("-repl");
    archetypes.insert(name.substr(
        start, (end == std::string::npos ? name.find("-part") : end) - start));
  }
  EXPECT_EQ(archetypes.size(), 6u);
}

TEST(ChaosScenarioTest, EveryScenarioPassesValidation) {
  const ChaosConfig config = SmallCampaign();
  for (uint32_t i = 0; i < 12; ++i) {
    const auto scenario = MakeChaosScenario(config, i, nullptr);
    EXPECT_TRUE(
        reliability::ValidateFaultConfig(scenario.board.faults).ok())
        << "scenario " << i;
    EXPECT_LE(scenario.num_spare_boards, config.max_spare_boards);
  }
}

TEST(ChaosCampaignTest, HealthyStackPassesAllInvariants) {
  const CsrGraph g = TestGraph();
  StaticWalkApp app;
  const auto campaign = RunChaosCampaign(g, app, SmallCampaign());
  ASSERT_TRUE(campaign.ok());
  for (const auto& scenario : campaign->scenarios) {
    EXPECT_TRUE(scenario.passed)
        << scenario.name << ": "
        << (scenario.violations.empty() ? "?" : scenario.violations[0]);
  }
  EXPECT_TRUE(campaign->Passed());
  EXPECT_EQ(campaign->failures, 0u);
  // The sampled span document parses and carries the membership section.
  const auto doc = obs::Json::Parse(campaign->sampled_span_json);
  ASSERT_TRUE(doc.ok());
  EXPECT_NE(doc->Find("membership"), nullptr);
  // The report round-trips through JSON with one row per scenario.
  const auto report = obs::Json::Parse(campaign->ToJson().Dump());
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->Find("scenarios"), nullptr);
}

TEST(ChaosCampaignTest, CampaignReportIsDeterministic) {
  const CsrGraph g = TestGraph();
  StaticWalkApp app;
  ChaosConfig config = SmallCampaign();
  config.num_scenarios = 2;
  const auto a = RunChaosCampaign(g, app, config);
  const auto b = RunChaosCampaign(g, app, config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->ToJson().Dump(), b->ToJson().Dump());
  EXPECT_EQ(a->sampled_span_json, b->sampled_span_json);
}

}  // namespace
}  // namespace lightrw
