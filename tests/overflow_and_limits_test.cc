// Numeric-limit and overflow behaviour: large weights, long streams, and
// accumulator widths in the samplers and engines.

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "rng/rng.h"
#include "sampling/inverse_transform.h"
#include "sampling/parallel_wrs.h"
#include "sampling/reservoir.h"
#include "sampling/sampler.h"

namespace lightrw::sampling {
namespace {

TEST(OverflowTest, WrsSelectAtMaxWeight) {
  // w = 2^32-1 as the sole item: always selected.
  EXPECT_TRUE(WrsSelect(UINT32_MAX, UINT32_MAX, 0));
  EXPECT_TRUE(WrsSelect(UINT32_MAX, UINT32_MAX, UINT32_MAX - 2));
}

TEST(OverflowTest, WrsSelectHugeAccumulatedSum) {
  // Accumulated sums near 2^63 must not wrap the 128-bit product.
  const uint64_t huge = (1ull << 62) + 99;
  EXPECT_FALSE(WrsSelect(1, huge, 2));
  // A max-weight item against a huge sum still has ~w/S probability; with
  // r = 0 it is always selected.
  EXPECT_TRUE(WrsSelect(UINT32_MAX, huge, 0));
}

TEST(OverflowTest, ReservoirAccumulatesMaxWeights) {
  rng::ThunderingRng rng(1, 1);
  ReservoirSampler sampler(&rng, 0);
  for (size_t i = 0; i < 1000; ++i) {
    sampler.Offer(i, UINT32_MAX);
  }
  EXPECT_EQ(sampler.weight_sum(), 1000ull * UINT32_MAX);
  EXPECT_LT(sampler.selected(), 1000u);
}

TEST(OverflowTest, ParallelWrsAccumulatesMaxWeights) {
  rng::ThunderingRng rng(8, 1);
  ParallelWrsSampler sampler(8, &rng);
  const std::vector<graph::Weight> weights(100, UINT32_MAX);
  const size_t picked = sampler.SampleAll({weights.data(), weights.size()});
  EXPECT_LT(picked, 100u);
  EXPECT_EQ(sampler.weight_sum(), 100ull * UINT32_MAX);
}

TEST(OverflowTest, InverseTransformMaxWeights) {
  const std::vector<graph::Weight> weights(64, UINT32_MAX);
  InverseTransformTable table;
  table.Build({weights.data(), weights.size()});
  EXPECT_EQ(table.total_weight(), 64ull * UINT32_MAX);
  rng::Xoshiro256StarStar gen(3);
  for (int t = 0; t < 1000; ++t) {
    EXPECT_LT(table.Sample(gen.Next()), 64u);
  }
}

TEST(OverflowTest, SkewedMaxVsMinWeights) {
  // One max-weight item among minimal ones: the heavy item dominates.
  std::vector<graph::Weight> weights(10, 1);
  weights[7] = UINT32_MAX;
  rng::ThunderingRng rng(4, 9);
  ParallelWrsSampler sampler(4, &rng);
  int heavy = 0;
  constexpr int kTrials = 2000;
  for (int t = 0; t < kTrials; ++t) {
    heavy += sampler.SampleAll({weights.data(), weights.size()}) == 7;
  }
  EXPECT_GT(heavy, kTrials - 10);  // expected miss rate ~ 9/2^32
}

TEST(OverflowTest, LongStreamSelectionStaysInRange) {
  rng::ThunderingRng rng(16, 4);
  ParallelWrsSampler sampler(16, &rng);
  const std::vector<graph::Weight> weights(100000, 3);
  for (int repeat = 0; repeat < 3; ++repeat) {
    const size_t picked =
        sampler.SampleAll({weights.data(), weights.size()});
    EXPECT_LT(picked, weights.size());
  }
}

TEST(OverflowTest, LateItemsStillSelectable) {
  // In chain WRS the last item of an n-item uniform stream has selection
  // probability 1/n: with 20000 trials over n=100, expect ~200 wins.
  rng::ThunderingRng rng(1, 77);
  ReservoirSampler sampler(&rng, 0);
  constexpr size_t kN = 100;
  constexpr int kTrials = 20000;
  int last_wins = 0;
  for (int t = 0; t < kTrials; ++t) {
    sampler.Reset();
    for (size_t i = 0; i < kN; ++i) {
      sampler.Offer(i, 1);
    }
    last_wins += sampler.selected() == kN - 1;
  }
  EXPECT_NEAR(last_wins, kTrials / kN, 5 * std::sqrt(kTrials / kN));
}

}  // namespace
}  // namespace lightrw::sampling
