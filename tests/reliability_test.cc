// Properties of the fault-injection subsystem: schedules are a pure
// function of (seed, component id), disabled/zero-rate configurations
// change nothing anywhere in the stack, and every recovery path
// (ECC retry, retransmission, board failover) accounts exactly.

#include <gtest/gtest.h>

#include "apps/walk_app.h"
#include "distributed/config_validation.h"
#include "distributed/dist_engine.h"
#include "distributed/partition.h"
#include "graph/generators.h"
#include "hwsim/dram.h"
#include "hwsim/link.h"
#include "hwsim/validation.h"
#include "lightrw/cycle_engine.h"
#include "obs/metrics.h"
#include "reliability/fault_injector.h"
#include "reliability/membership.h"

namespace lightrw {
namespace {

using apps::StaticWalkApp;
using graph::CsrGraph;
using reliability::FaultConfig;
using reliability::FaultStream;
using reliability::ReliabilityStats;

CsrGraph TestGraph() {
  return graph::MakeDatasetStandIn(graph::Dataset::kLiveJournal,
                                   /*scale_shift=*/11, /*seed=*/4);
}

FaultConfig EnabledConfig() {
  FaultConfig faults;
  faults.enabled = true;
  return faults;
}

TEST(FaultStreamTest, SameSeedAndComponentBitIdentical) {
  FaultConfig faults = EnabledConfig();
  faults.dram_correctable_rate = 0.2;
  faults.dram_uncorrectable_rate = 0.05;
  FaultStream a(faults, 7);
  FaultStream b(faults, 7);
  for (int i = 0; i < 4096; ++i) {
    EXPECT_EQ(a.NextDramFault(), b.NextDramFault()) << "draw " << i;
  }
}

TEST(FaultStreamTest, ComponentsDrawIndependentSchedules) {
  FaultConfig faults = EnabledConfig();
  faults.link_drop_rate = 0.5;
  FaultStream a(faults, 0);
  FaultStream b(faults, 1);
  int differing = 0;
  for (int i = 0; i < 1024; ++i) {
    differing += a.NextLinkFault() != b.NextLinkFault();
  }
  EXPECT_GT(differing, 0);
}

TEST(FaultStreamTest, ZeroRatesConsumeNoRandomness) {
  FaultStream stream(EnabledConfig(), 3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(stream.NextDramFault(), reliability::DramFault::kNone);
    EXPECT_EQ(stream.NextLinkFault(), reliability::LinkFault::kNone);
  }
  EXPECT_EQ(stream.draws(), 0u);
}

TEST(FaultStreamTest, RatesApproximatelyRespected) {
  FaultConfig faults = EnabledConfig();
  faults.dram_correctable_rate = 0.25;
  FaultStream stream(faults, 11);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    hits += stream.NextDramFault() == reliability::DramFault::kCorrectable;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(FaultConfigTest, ValidationRejectsBadRates) {
  FaultConfig faults = EnabledConfig();
  faults.dram_correctable_rate = -0.1;
  EXPECT_FALSE(reliability::ValidateFaultConfig(faults).ok());
  faults = EnabledConfig();
  faults.link_drop_rate = 1.5;
  EXPECT_FALSE(reliability::ValidateFaultConfig(faults).ok());
  faults = EnabledConfig();
  faults.dram_correctable_rate = 0.7;
  faults.dram_uncorrectable_rate = 0.7;  // sum > 1
  EXPECT_FALSE(reliability::ValidateFaultConfig(faults).ok());
  EXPECT_TRUE(reliability::ValidateFaultConfig(EnabledConfig()).ok());
  EXPECT_TRUE(reliability::ValidateFaultConfig(FaultConfig{}).ok());
}

TEST(HwsimValidationTest, RejectsDegenerateConfigs) {
  hwsim::DramConfig dram;
  dram.clock_hz = 0;
  EXPECT_FALSE(hwsim::ValidateDramConfig(dram).ok());
  EXPECT_TRUE(hwsim::ValidateDramConfig(hwsim::DramConfig{}).ok());
  hwsim::LinkConfig link;
  link.bytes_per_cycle = 0.0;
  EXPECT_FALSE(hwsim::ValidateLinkConfig(link).ok());
  EXPECT_TRUE(hwsim::ValidateLinkConfig(hwsim::LinkConfig{}).ok());
}

TEST(DramEccTest, CorrectableErrorDelaysButCompletes) {
  hwsim::DramConfig config;
  hwsim::DramChannel clean(config);
  hwsim::DramChannel faulty(config);
  FaultConfig faults = EnabledConfig();
  // Every access takes one correctable hit: ECC fixes it at the cost of
  // one burst re-issue, so the access always completes.
  faults.dram_correctable_rate = 1.0;
  FaultStream stream(faults, 0);
  ReliabilityStats rel;
  faulty.AttachFaults(&stream, &rel);
  hwsim::Cycle clean_done = 0, faulty_done = 0;
  for (int i = 0; i < 200; ++i) {
    clean_done = clean.Access(clean_done, 1);
    faulty_done = faulty.Access(faulty_done, 1);
  }
  EXPECT_GT(rel.dram_correctable, 0u);
  EXPECT_EQ(rel.dram_retries, rel.dram_correctable);
  EXPECT_EQ(rel.dram_failed_accesses, 0u);
  EXPECT_FALSE(faulty.TakeAccessFailure());
  // Retries re-occupy the channel, so the faulty channel finishes later.
  EXPECT_GT(faulty_done, clean_done);
}

TEST(DramEccTest, UncorrectablePastBudgetFailsAccess) {
  hwsim::DramChannel channel{hwsim::DramConfig{}};
  FaultConfig faults = EnabledConfig();
  faults.dram_uncorrectable_rate = 1.0;  // every issue fails
  faults.max_dram_retries = 2;
  FaultStream stream(faults, 0);
  ReliabilityStats rel;
  channel.AttachFaults(&stream, &rel);
  channel.Access(0, 4);
  EXPECT_TRUE(channel.TakeAccessFailure());
  EXPECT_FALSE(channel.TakeAccessFailure());  // sticky flag clears on read
  EXPECT_EQ(rel.dram_failed_accesses, 1u);
  EXPECT_EQ(rel.dram_uncorrectable, 3u);  // initial issue + 2 retries
  EXPECT_EQ(rel.dram_retries, 2u);
}

TEST(LinkRetransmitTest, NoFaultsMatchesPlainSend) {
  hwsim::LinkConfig config;
  hwsim::NetworkLink plain(config);
  hwsim::NetworkLink reliable(config);
  const auto arrival = plain.Send(0, 64);
  const auto delivery = reliable.SendReliable(0, 64);
  EXPECT_TRUE(delivery.delivered);
  EXPECT_EQ(delivery.arrival, arrival);
  EXPECT_EQ(delivery.attempts, 1u);
}

TEST(LinkRetransmitTest, DropsRetryWithBackoffUntilBudget) {
  hwsim::LinkConfig config;
  hwsim::NetworkLink link(config);
  FaultConfig faults = EnabledConfig();
  faults.link_drop_rate = 1.0;  // nothing ever gets through
  faults.max_retransmissions = 3;
  faults.retransmit_timeout_cycles = 100;
  FaultStream stream(faults, 0);
  ReliabilityStats rel;
  link.AttachFaults(&stream, &rel);
  const auto delivery = link.SendReliable(0, 64);
  EXPECT_FALSE(delivery.delivered);
  EXPECT_EQ(delivery.attempts, 4u);  // initial + 3 retransmissions
  EXPECT_EQ(rel.link_dropped, 4u);
  EXPECT_EQ(rel.retransmissions, 3u);
  EXPECT_EQ(rel.link_failed_sends, 1u);
  EXPECT_EQ(link.stats().messages, 4u);
}

core::AcceleratorConfig AccelConfig() {
  core::AcceleratorConfig config;
  config.num_instances = 2;
  config.seed = 9;
  return config;
}

struct RunResult {
  baseline::WalkOutput output;
  core::AccelRunStats stats;
  std::string metrics_json;
};

RunResult RunAccel(const core::AcceleratorConfig& base) {
  const CsrGraph g = TestGraph();
  StaticWalkApp app;
  obs::MetricsRegistry metrics;
  core::AcceleratorConfig config = base;
  config.metrics = &metrics;
  core::CycleEngine engine(&g, &app, config);
  const auto queries = apps::MakeVertexQueries(g, 12, 3, 400);
  RunResult result;
  result.stats = engine.Run(queries, &result.output);
  result.metrics_json = metrics.ToJsonString();
  return result;
}

// The central no-regression property: enabling the subsystem with all
// rates at zero must change no walk, no cycle count, and no metric.
TEST(FaultDeterminismTest, EnabledZeroRatesBitIdenticalToDisabled) {
  core::AcceleratorConfig off = AccelConfig();
  core::AcceleratorConfig on = AccelConfig();
  on.faults = EnabledConfig();
  const RunResult a = RunAccel(off);
  const RunResult b = RunAccel(on);
  EXPECT_EQ(a.output.vertices, b.output.vertices);
  EXPECT_EQ(a.output.offsets, b.output.offsets);
  EXPECT_EQ(a.stats.cycles, b.stats.cycles);
  EXPECT_EQ(a.stats.steps, b.stats.steps);
  EXPECT_EQ(a.stats.dram.requests, b.stats.dram.requests);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_FALSE(b.stats.reliability.Any());
}

TEST(FaultDeterminismTest, SameFaultSeedBitIdenticalRuns) {
  core::AcceleratorConfig config = AccelConfig();
  config.faults = EnabledConfig();
  config.faults.dram_correctable_rate = 0.01;
  config.faults.dram_uncorrectable_rate = 0.001;
  const RunResult a = RunAccel(config);
  const RunResult b = RunAccel(config);
  EXPECT_GT(a.stats.reliability.FaultsInjected(), 0u);
  EXPECT_EQ(a.output.vertices, b.output.vertices);
  EXPECT_EQ(a.output.offsets, b.output.offsets);
  EXPECT_EQ(a.stats.cycles, b.stats.cycles);
  EXPECT_EQ(a.stats.reliability.dram_correctable,
            b.stats.reliability.dram_correctable);
  EXPECT_EQ(a.stats.reliability.walks_failed,
            b.stats.reliability.walks_failed);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
}

TEST(FaultDeterminismTest, DifferentFaultSeedsDifferentSchedules) {
  core::AcceleratorConfig config = AccelConfig();
  config.faults = EnabledConfig();
  config.faults.dram_correctable_rate = 0.01;
  const RunResult a = RunAccel(config);
  config.faults.seed = 2;
  const RunResult b = RunAccel(config);
  // Same walk RNG seed, different fault schedule: fault counts differ
  // (overwhelmingly likely over thousands of draws).
  EXPECT_NE(a.stats.cycles, b.stats.cycles);
}

TEST(FaultDeterminismTest, CorrectableFaultsSlowButPreserveWalks) {
  core::AcceleratorConfig clean = AccelConfig();
  core::AcceleratorConfig noisy = AccelConfig();
  noisy.faults = EnabledConfig();
  noisy.faults.dram_correctable_rate = 0.05;
  const RunResult a = RunAccel(clean);
  const RunResult b = RunAccel(noisy);
  // ECC corrections cost retries (time). The changed timing reshuffles
  // which in-flight walk samples next (the walk RNG draws in event
  // order), but no walk is corrupted or lost: every query retires with a
  // valid path.
  EXPECT_GT(b.stats.cycles, a.stats.cycles);
  EXPECT_GT(b.stats.reliability.dram_correctable, 0u);
  EXPECT_EQ(b.stats.reliability.walks_failed, 0u);
  EXPECT_EQ(b.stats.queries, a.stats.queries);
  EXPECT_EQ(b.output.offsets.size(), a.output.offsets.size());
}

TEST(FaultDeterminismTest, UncorrectableFaultsFailWalks) {
  core::AcceleratorConfig config = AccelConfig();
  config.faults = EnabledConfig();
  config.faults.dram_uncorrectable_rate = 0.02;
  config.faults.max_dram_retries = 1;
  const RunResult r = RunAccel(config);
  EXPECT_GT(r.stats.reliability.dram_failed_accesses, 0u);
  EXPECT_GT(r.stats.reliability.walks_failed, 0u);
  // Every query still retires (failed walks retire truncated).
  EXPECT_EQ(r.stats.queries, 400u);
  EXPECT_FALSE(
      reliability::ReliabilityStatus(r.stats.reliability).ok());
}

distributed::DistributedConfig DistConfig() {
  distributed::DistributedConfig config;
  config.board.num_instances = 1;
  config.board.seed = 13;
  return config;
}

TEST(DistributedFaultTest, RunRejectsInvalidConfig) {
  const CsrGraph g = TestGraph();
  StaticWalkApp app;
  const auto p =
      distributed::MakePartition(g, 4, distributed::PartitionStrategy::kHash);
  auto config = DistConfig();
  config.walker_message_bytes = 0;
  distributed::DistributedEngine engine(&g, &app, &p, config);
  const auto queries = apps::MakeVertexQueries(g, 8, 3, 50);
  EXPECT_FALSE(engine.Run(queries).ok());
}

TEST(DistributedFaultTest, RunRejectsUnsatisfiableFailover) {
  const CsrGraph g = TestGraph();
  StaticWalkApp app;
  const auto queries = apps::MakeVertexQueries(g, 8, 3, 50);
  auto config = DistConfig();
  config.board.faults = EnabledConfig();
  config.board.faults.fail_cycle = 1000;
  config.board.faults.fail_board = 7;  // out of range for 4 boards
  const auto four =
      distributed::MakePartition(g, 4, distributed::PartitionStrategy::kHash);
  EXPECT_FALSE(distributed::DistributedEngine(&g, &app, &four, config)
                   .Run(queries)
                   .ok());
  config.board.faults.fail_board = 0;  // no survivor on 1 board
  const auto one =
      distributed::MakePartition(g, 1, distributed::PartitionStrategy::kHash);
  EXPECT_FALSE(distributed::DistributedEngine(&g, &app, &one, config)
                   .Run(queries)
                   .ok());
}

// The headline failover guarantee: killing a board mid-run in
// replicate_graph mode loses zero walks — every query retires, recovered
// walkers are counted, and the run exits clean.
TEST(DistributedFaultTest, BoardFailureRecoversAllWalksWhenReplicated) {
  const CsrGraph g = TestGraph();
  StaticWalkApp app;
  const auto p =
      distributed::MakePartition(g, 4, distributed::PartitionStrategy::kHash);
  auto config = DistConfig();
  config.replicate_graph = true;
  config.board.faults = EnabledConfig();
  config.board.faults.fail_cycle = 30000;
  config.board.faults.fail_board = 1;
  config.board.faults.checkpoint_interval_cycles = 4096;
  distributed::DistributedEngine engine(&g, &app, &p, config);
  const auto queries = apps::MakeVertexQueries(g, 20, 3, 800);
  baseline::WalkOutput output;
  const auto result = engine.Run(queries, &output);
  ASSERT_TRUE(result.ok());
  const auto& stats = *result;
  EXPECT_EQ(stats.queries, queries.size());
  EXPECT_EQ(output.num_paths(), queries.size());
  EXPECT_EQ(stats.reliability.board_failures, 1u);
  EXPECT_GT(stats.reliability.walkers_recovered, 0u);
  EXPECT_GT(stats.reliability.checkpoints, 0u);
  EXPECT_EQ(stats.reliability.walkers_lost, 0u);
  EXPECT_EQ(stats.reliability.walks_failed, 0u);
  EXPECT_TRUE(reliability::ReliabilityStatus(stats.reliability).ok());
  // Recovered paths are still valid walks.
  for (size_t i = 0; i < output.num_paths(); ++i) {
    const auto path = output.Path(i);
    EXPECT_EQ(path[0], queries[i].start);
    for (size_t s = 1; s < path.size(); ++s) {
      EXPECT_TRUE(g.HasEdge(path[s - 1], path[s]));
    }
  }
}

TEST(DistributedFaultTest, BoardFailureRecoversInPartitionedMode) {
  const CsrGraph g = TestGraph();
  StaticWalkApp app;
  const auto p =
      distributed::MakePartition(g, 4, distributed::PartitionStrategy::kHash);
  auto config = DistConfig();
  config.board.faults = EnabledConfig();
  config.board.faults.fail_cycle = 30000;
  config.board.faults.fail_board = 2;
  config.board.faults.checkpoint_interval_cycles = 4096;
  distributed::DistributedEngine engine(&g, &app, &p, config);
  const auto queries = apps::MakeVertexQueries(g, 20, 3, 800);
  baseline::WalkOutput output;
  const auto result = engine.Run(queries, &output);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->queries, queries.size());
  EXPECT_EQ(result->reliability.walkers_lost, 0u);
  EXPECT_GT(result->reliability.walkers_recovered, 0u);
  // Paths remain valid even across the partition re-assignment.
  for (size_t i = 0; i < output.num_paths(); ++i) {
    const auto path = output.Path(i);
    for (size_t s = 1; s < path.size(); ++s) {
      EXPECT_TRUE(g.HasEdge(path[s - 1], path[s]));
    }
  }
}

TEST(DistributedFaultTest, NoCheckpointsLosesWalks) {
  const CsrGraph g = TestGraph();
  StaticWalkApp app;
  const auto p =
      distributed::MakePartition(g, 4, distributed::PartitionStrategy::kHash);
  auto config = DistConfig();
  config.replicate_graph = true;
  config.board.faults = EnabledConfig();
  config.board.faults.fail_cycle = 30000;
  config.board.faults.fail_board = 1;
  config.board.faults.checkpoint_interval_cycles = 0;  // no checkpoints
  config.board.faults.allow_walker_loss = true;        // explicit opt-in
  distributed::DistributedEngine engine(&g, &app, &p, config);
  const auto queries = apps::MakeVertexQueries(g, 20, 3, 800);
  const auto result = engine.Run(queries);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->reliability.walkers_lost, 0u);
  EXPECT_EQ(result->reliability.walkers_recovered, 0u);
  EXPECT_FALSE(reliability::ReliabilityStatus(result->reliability).ok());
}

TEST(DistributedFaultTest, LinkFaultsRetransmitDeterministically) {
  const CsrGraph g = TestGraph();
  StaticWalkApp app;
  const auto p =
      distributed::MakePartition(g, 4, distributed::PartitionStrategy::kHash);
  auto config = DistConfig();
  config.board.faults = EnabledConfig();
  config.board.faults.link_drop_rate = 0.02;
  config.board.faults.link_corrupt_rate = 0.01;
  const auto queries = apps::MakeVertexQueries(g, 10, 3, 500);
  const auto a =
      distributed::DistributedEngine(&g, &app, &p, config).Run(queries);
  const auto b =
      distributed::DistributedEngine(&g, &app, &p, config).Run(queries);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GT(a->reliability.retransmissions, 0u);
  EXPECT_EQ(a->cycles, b->cycles);
  EXPECT_EQ(a->reliability.retransmissions, b->reliability.retransmissions);
  EXPECT_EQ(a->reliability.link_dropped, b->reliability.link_dropped);
  // Retransmissions cost wire time but lose no messages below the budget.
  EXPECT_EQ(a->queries, queries.size());
}

TEST(DistributedFaultTest, ZeroRatesMatchDisabledRun) {
  const CsrGraph g = TestGraph();
  StaticWalkApp app;
  const auto p =
      distributed::MakePartition(g, 4, distributed::PartitionStrategy::kHash);
  const auto queries = apps::MakeVertexQueries(g, 10, 3, 300);
  auto off = DistConfig();
  auto on = DistConfig();
  on.board.faults = EnabledConfig();
  baseline::WalkOutput out_off, out_on;
  const auto a = distributed::DistributedEngine(&g, &app, &p, off)
                     .Run(queries, &out_off);
  const auto b = distributed::DistributedEngine(&g, &app, &p, on)
                     .Run(queries, &out_on);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->cycles, b->cycles);
  EXPECT_EQ(out_off.vertices, out_on.vertices);
  EXPECT_EQ(out_off.offsets, out_on.offsets);
  EXPECT_FALSE(b->reliability.Any());
}

// --- Membership epochs, hot spares, and partition rebuild -----------------

using reliability::BoardState;
using reliability::MembershipTransition;

TEST(MembershipLogTest, AcceptsLegalMonotoneLog) {
  const std::vector<MembershipTransition> log = {
      {1, 100, 1, BoardState::kAlive, BoardState::kDead},
      {2, 100, 4, BoardState::kSpare, BoardState::kRebuilding},
      {3, 900, 4, BoardState::kRebuilding, BoardState::kAlive},
  };
  EXPECT_TRUE(reliability::CheckMembershipLog(log).ok());
  EXPECT_TRUE(reliability::CheckMembershipLog({}).ok());
}

TEST(MembershipLogTest, RejectsEpochGapsCycleRegressionsAndIllegalEdges) {
  // Epoch must bump by exactly one per transition.
  EXPECT_FALSE(reliability::CheckMembershipLog(
                   {{2, 100, 1, BoardState::kAlive, BoardState::kDead}})
                   .ok());
  // Cycles are nondecreasing.
  EXPECT_FALSE(reliability::CheckMembershipLog(
                   {{1, 500, 1, BoardState::kAlive, BoardState::kDead},
                    {2, 100, 4, BoardState::kSpare, BoardState::kRebuilding}})
                   .ok());
  // Dead is terminal; alive boards never become spares.
  EXPECT_FALSE(reliability::CheckMembershipLog(
                   {{1, 100, 1, BoardState::kDead, BoardState::kAlive}})
                   .ok());
  EXPECT_FALSE(reliability::CheckMembershipLog(
                   {{1, 100, 1, BoardState::kAlive, BoardState::kSpare}})
                   .ok());
}

TEST(FaultConfigTest, EffectiveBoardDeathsFoldsSortsAndDedups) {
  FaultConfig faults = EnabledConfig();
  faults.fail_cycle = 5000;  // legacy single-death fields fold in
  faults.fail_board = 2;
  faults.board_deaths = {{3000, 1}, {3000, 0}, {7000, 1}};  // dup board 1
  const auto deaths = reliability::EffectiveBoardDeaths(faults);
  ASSERT_EQ(deaths.size(), 3u);
  EXPECT_EQ(deaths[0].cycle, 3000u);
  EXPECT_EQ(deaths[0].board, 0u);
  EXPECT_EQ(deaths[1].cycle, 3000u);
  EXPECT_EQ(deaths[1].board, 1u);  // first death per board wins
  EXPECT_EQ(deaths[2].cycle, 5000u);
  EXPECT_EQ(deaths[2].board, 2u);
}

TEST(DistributedConfigTest, RejectsCheckpointFreeDeathWithoutOptIn) {
  auto config = DistConfig();
  config.board.faults = EnabledConfig();
  config.board.faults.board_deaths = {{30000, 1}};
  config.board.faults.checkpoint_interval_cycles = 0;
  EXPECT_FALSE(distributed::ValidateDistributedConfig(config).ok());
  config.board.faults.allow_walker_loss = true;
  EXPECT_TRUE(distributed::ValidateDistributedConfig(config).ok());
  config.board.faults.allow_walker_loss = false;
  config.board.faults.checkpoint_interval_cycles = 4096;
  EXPECT_TRUE(distributed::ValidateDistributedConfig(config).ok());
}

TEST(DistributedConfigTest, RejectsDegenerateSpareKnobs) {
  auto config = DistConfig();
  config.num_spare_boards = 300;  // > 256
  EXPECT_FALSE(distributed::ValidateDistributedConfig(config).ok());
  config.num_spare_boards = 1;
  config.rebuild_bytes_per_cycle = 0.0;
  EXPECT_FALSE(distributed::ValidateDistributedConfig(config).ok());
  config.rebuild_bytes_per_cycle = 32.0;
  EXPECT_TRUE(distributed::ValidateDistributedConfig(config).ok());
}

distributed::DistributedConfig SelfHealConfig(bool replicate,
                                              uint32_t spares) {
  auto config = DistConfig();
  config.replicate_graph = replicate;
  config.num_spare_boards = spares;
  config.rebuild_bytes_per_cycle = 256.0;
  config.board.faults = EnabledConfig();
  config.board.faults.checkpoint_interval_cycles = 4096;
  return config;
}

// One death absorbed by one spare: the spare rebuilds the dead board's
// partition share, takes over its ownership, and the membership log
// records exactly dead -> rebuilding -> alive with epochs 1..3.
TEST(SelfHealingTest, SpareRebuildTransfersOwnership) {
  const CsrGraph g = TestGraph();
  StaticWalkApp app;
  const auto p =
      distributed::MakePartition(g, 4, distributed::PartitionStrategy::kHash);
  auto config = SelfHealConfig(/*replicate=*/false, /*spares=*/1);
  config.board.faults.board_deaths = {{30000, 2}};
  distributed::DistributedEngine engine(&g, &app, &p, config);
  const auto queries = apps::MakeVertexQueries(g, 20, 3, 800);
  baseline::WalkOutput output;
  const auto result = engine.Run(queries, &output);
  ASSERT_TRUE(result.ok());
  const auto& stats = *result;
  EXPECT_EQ(stats.queries, queries.size());
  EXPECT_EQ(output.num_paths(), queries.size());
  EXPECT_EQ(stats.reliability.board_failures, 1u);
  EXPECT_EQ(stats.reliability.spares_activated, 1u);
  EXPECT_EQ(stats.reliability.rebuilds_completed, 1u);
  EXPECT_EQ(stats.reliability.spare_exhaustions, 0u);
  EXPECT_EQ(stats.reliability.walkers_lost, 0u);
  EXPECT_EQ(stats.reliability.walks_failed, 0u);
  EXPECT_GT(stats.reliability.rebuild_cycles, 0u);
  ASSERT_EQ(stats.membership.size(), 3u);
  EXPECT_TRUE(reliability::CheckMembershipLog(stats.membership).ok());
  EXPECT_EQ(stats.membership[0].board, 2u);
  EXPECT_EQ(stats.membership[0].to, BoardState::kDead);
  EXPECT_EQ(stats.membership[1].board, 4u);  // spare sits past the owners
  EXPECT_EQ(stats.membership[1].to, BoardState::kRebuilding);
  EXPECT_EQ(stats.membership[2].board, 4u);
  EXPECT_EQ(stats.membership[2].to, BoardState::kAlive);
  // Paths survive the ownership transfer intact.
  for (size_t i = 0; i < output.num_paths(); ++i) {
    const auto path = output.Path(i);
    for (size_t s = 1; s < path.size(); ++s) {
      EXPECT_TRUE(g.HasEdge(path[s - 1], path[s]));
    }
  }
}

// Killing the spare while it is still rebuilding aborts the rebuild; the
// share falls back to the survivors and no walk is lost.
TEST(SelfHealingTest, DeathDuringRebuildFallsBackToSurvivors) {
  const CsrGraph g = TestGraph();
  StaticWalkApp app;
  const auto p =
      distributed::MakePartition(g, 4, distributed::PartitionStrategy::kHash);
  auto config = SelfHealConfig(/*replicate=*/true, /*spares=*/1);
  // Replicated share is the full graph (~1 MB): at 8 B/cycle the rebuild
  // runs for >100k cycles, so the second death lands mid-rebuild.
  config.rebuild_bytes_per_cycle = 8.0;
  config.board.faults.board_deaths = {{30000, 1}, {40000, 4}};
  distributed::DistributedEngine engine(&g, &app, &p, config);
  const auto queries = apps::MakeVertexQueries(g, 20, 3, 800);
  const auto result = engine.Run(queries);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->queries, queries.size());
  EXPECT_EQ(result->reliability.board_failures, 2u);
  EXPECT_EQ(result->reliability.spares_activated, 1u);
  EXPECT_EQ(result->reliability.rebuilds_aborted, 1u);
  EXPECT_EQ(result->reliability.rebuilds_completed, 0u);
  EXPECT_EQ(result->reliability.spare_exhaustions, 1u);
  EXPECT_EQ(result->reliability.walkers_lost, 0u);
  EXPECT_TRUE(reliability::CheckMembershipLog(result->membership).ok());
}

// More deaths than spares: the pool drains, the cluster degrades to the
// survivors, and checkpointed recovery still conserves every walk.
TEST(SelfHealingTest, SpareExhaustionDegradesGracefully) {
  const CsrGraph g = TestGraph();
  StaticWalkApp app;
  const auto p =
      distributed::MakePartition(g, 4, distributed::PartitionStrategy::kHash);
  auto config = SelfHealConfig(/*replicate=*/true, /*spares=*/1);
  config.board.faults.board_deaths = {{20000, 1}, {35000, 2}};
  distributed::DistributedEngine engine(&g, &app, &p, config);
  const auto queries = apps::MakeVertexQueries(g, 20, 3, 800);
  const auto result = engine.Run(queries);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->queries, queries.size());
  EXPECT_EQ(result->reliability.board_failures, 2u);
  EXPECT_EQ(result->reliability.spares_activated, 1u);
  EXPECT_EQ(result->reliability.spare_exhaustions, 1u);
  EXPECT_EQ(result->reliability.walkers_lost, 0u);
  EXPECT_EQ(result->reliability.walks_failed, 0u);
  EXPECT_TRUE(reliability::CheckMembershipLog(result->membership).ok());
}

// Triple death across a 4-board cluster with two spares: two absorbed,
// the third exhausts the pool — and every query still retires.
TEST(SelfHealingTest, TripleDeathConservesWalkers) {
  const CsrGraph g = TestGraph();
  StaticWalkApp app;
  const auto p =
      distributed::MakePartition(g, 4, distributed::PartitionStrategy::kHash);
  auto config = SelfHealConfig(/*replicate=*/false, /*spares=*/2);
  config.board.faults.board_deaths = {{20000, 1}, {35000, 2}, {50000, 3}};
  distributed::DistributedEngine engine(&g, &app, &p, config);
  const auto queries = apps::MakeVertexQueries(g, 20, 3, 800);
  baseline::WalkOutput output;
  const auto result = engine.Run(queries, &output);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->queries, queries.size());
  EXPECT_EQ(output.num_paths(), queries.size());
  EXPECT_EQ(result->reliability.board_failures, 3u);
  EXPECT_EQ(result->reliability.spares_activated, 2u);
  EXPECT_EQ(result->reliability.spare_exhaustions, 1u);
  EXPECT_EQ(result->reliability.walkers_lost, 0u);
  EXPECT_TRUE(reliability::CheckMembershipLog(result->membership).ok());
}

// The rebuild duration is the modeled copy cost: a quarter of the
// bandwidth must cost roughly four times the rebuild cycles.
TEST(SelfHealingTest, RebuildBandwidthScalesRebuildCost) {
  const CsrGraph g = TestGraph();
  StaticWalkApp app;
  const auto p =
      distributed::MakePartition(g, 4, distributed::PartitionStrategy::kHash);
  const auto queries = apps::MakeVertexQueries(g, 20, 3, 800);
  auto run_at = [&](double bw) {
    auto config = SelfHealConfig(/*replicate=*/false, /*spares=*/1);
    config.rebuild_bytes_per_cycle = bw;
    config.board.faults.board_deaths = {{30000, 2}};
    distributed::DistributedEngine engine(&g, &app, &p, config);
    const auto result = engine.Run(queries);
    EXPECT_TRUE(result.ok());
    EXPECT_EQ(result->reliability.rebuilds_completed, 1u);
    return result->reliability.rebuild_cycles;
  };
  const uint64_t fast = run_at(256.0);
  const uint64_t slow = run_at(64.0);
  EXPECT_GT(slow, fast);
}

// Death schedules that would kill every partition owner are rejected up
// front — spares do not relax the bound, because a rebuild needs a live
// source to copy from.
TEST(SelfHealingTest, AllOwnersDeadRejectedEvenWithSpares) {
  const CsrGraph g = TestGraph();
  StaticWalkApp app;
  const auto p =
      distributed::MakePartition(g, 2, distributed::PartitionStrategy::kHash);
  auto config = SelfHealConfig(/*replicate=*/false, /*spares=*/2);
  config.board.faults.board_deaths = {{20000, 0}, {40000, 1}};
  const auto queries = apps::MakeVertexQueries(g, 8, 3, 50);
  const auto result =
      distributed::DistributedEngine(&g, &app, &p, config).Run(queries);
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace lightrw
