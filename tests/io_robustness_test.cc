// Robustness of all file readers against corrupted inputs: random bytes,
// truncations at every prefix length, and hostile headers must produce
// error Statuses, never crashes or invalid graphs.

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analytics/corpus_io.h"
#include "analytics/embedding.h"
#include "graph/builder.h"
#include "graph/io.h"
#include "rng/rng.h"

namespace lightrw {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/lightrw_fuzz_" + name;
}

void WriteBytes(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  if (!bytes.empty()) {
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  }
  std::fclose(f);
}

std::vector<uint8_t> RandomBytes(size_t n, uint64_t seed) {
  rng::Xoshiro256StarStar gen(seed);
  std::vector<uint8_t> bytes(n);
  for (auto& b : bytes) {
    b = static_cast<uint8_t>(gen.NextBounded(256));
  }
  return bytes;
}

class IoFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IoFuzzTest, BinaryGraphReaderSurvivesRandomBytes) {
  const std::string path = TempPath("graph_rand.bin");
  WriteBytes(path, RandomBytes(512, GetParam()));
  const auto result = graph::ReadBinary(path);
  EXPECT_FALSE(result.ok());
}

TEST_P(IoFuzzTest, CorpusReaderSurvivesRandomBytes) {
  const std::string path = TempPath("corpus_rand.bin");
  WriteBytes(path, RandomBytes(512, GetParam() ^ 0xff));
  EXPECT_FALSE(analytics::ReadCorpusBinary(path).ok());
}

TEST_P(IoFuzzTest, EmbeddingReaderSurvivesRandomBytes) {
  const std::string path = TempPath("embed_rand.bin");
  WriteBytes(path, RandomBytes(512, GetParam() ^ 0xabc));
  EXPECT_FALSE(analytics::ReadEmbedding(path).ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, IoFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(IoTruncationTest, BinaryGraphEveryPrefixRejected) {
  // Write a small valid graph, then try loading every strict prefix.
  graph::GraphBuilder builder(4, false);
  builder.AddEdge(0, 1, 2, 1);
  builder.AddEdge(1, 2, 3, 0);
  builder.AddEdge(2, 3, 1, 2);
  const graph::CsrGraph g = std::move(builder).Build();
  const std::string full_path = TempPath("graph_full.bin");
  ASSERT_TRUE(graph::WriteBinary(g, full_path).ok());

  std::FILE* f = std::fopen(full_path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::vector<uint8_t> bytes(1 << 12);
  const size_t total = std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  bytes.resize(total);

  const std::string trunc_path = TempPath("graph_trunc.bin");
  for (size_t cut = 0; cut < total; cut += 3) {
    WriteBytes(trunc_path,
               std::vector<uint8_t>(bytes.begin(), bytes.begin() + cut));
    EXPECT_FALSE(graph::ReadBinary(trunc_path).ok()) << "cut=" << cut;
  }
  // The full file still loads.
  EXPECT_TRUE(graph::ReadBinary(full_path).ok());
}

TEST(IoTruncationTest, CorpusEveryPrefixRejected) {
  baseline::WalkOutput corpus;
  corpus.vertices = {1, 2, 3, 4, 5};
  corpus.offsets = {0, 2, 5};
  const std::string full_path = TempPath("corpus_full.bin");
  ASSERT_TRUE(analytics::WriteCorpusBinary(corpus, full_path).ok());

  std::FILE* f = std::fopen(full_path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::vector<uint8_t> bytes(1 << 10);
  const size_t total = std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  bytes.resize(total);

  const std::string trunc_path = TempPath("corpus_trunc.bin");
  for (size_t cut = 0; cut < total; ++cut) {
    WriteBytes(trunc_path,
               std::vector<uint8_t>(bytes.begin(), bytes.begin() + cut));
    EXPECT_FALSE(analytics::ReadCorpusBinary(trunc_path).ok())
        << "cut=" << cut;
  }
  EXPECT_TRUE(analytics::ReadCorpusBinary(full_path).ok());
}

std::vector<uint8_t> ReadAllBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::vector<uint8_t> bytes(1 << 12);
  const size_t total = std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  bytes.resize(total);
  return bytes;
}

// Cut a valid binary graph in the middle of an edge record (not at a
// field boundary like the every-prefix sweep's coarser strides hit).
TEST(IoTruncationTest, BinaryGraphTruncatedMidRecordRejected) {
  graph::GraphBuilder builder(4, false);
  builder.AddEdge(0, 1, 2, 1);
  builder.AddEdge(1, 2, 3, 0);
  builder.AddEdge(2, 3, 1, 2);
  const graph::CsrGraph g = std::move(builder).Build();
  const std::string full_path = TempPath("graph_midrec.bin");
  ASSERT_TRUE(graph::WriteBinary(g, full_path).ok());
  const std::vector<uint8_t> bytes = ReadAllBytes(full_path);
  ASSERT_GT(bytes.size(), 10u);

  const std::string trunc_path = TempPath("graph_midrec_trunc.bin");
  for (const size_t back : {2u, 3u, 5u, 7u}) {
    WriteBytes(trunc_path, std::vector<uint8_t>(
                               bytes.begin(), bytes.end() - back));
    EXPECT_FALSE(graph::ReadBinary(trunc_path).ok()) << "back=" << back;
  }
}

TEST(IoTruncationTest, CorpusTruncatedMidRecordRejected) {
  baseline::WalkOutput corpus;
  corpus.vertices = {1, 2, 3, 4, 5};
  corpus.offsets = {0, 2, 5};
  const std::string full_path = TempPath("corpus_midrec.bin");
  ASSERT_TRUE(analytics::WriteCorpusBinary(corpus, full_path).ok());
  const std::vector<uint8_t> bytes = ReadAllBytes(full_path);
  ASSERT_GT(bytes.size(), 10u);

  const std::string trunc_path = TempPath("corpus_midrec_trunc.bin");
  for (const size_t back : {1u, 2u, 3u}) {
    WriteBytes(trunc_path, std::vector<uint8_t>(
                               bytes.begin(), bytes.end() - back));
    EXPECT_FALSE(analytics::ReadCorpusBinary(trunc_path).ok())
        << "back=" << back;
  }
}

// Single-bit corruption in the header region. Magic flips must be
// rejected; flips in the length prefixes must never crash and anything
// the reader does accept must have passed its structural validation.
TEST(IoBitFlipTest, BinaryGraphHeaderBitFlips) {
  graph::GraphBuilder builder(4, false);
  builder.AddEdge(0, 1, 2, 1);
  builder.AddEdge(1, 2, 3, 0);
  builder.AddEdge(2, 3, 1, 2);
  const graph::CsrGraph g = std::move(builder).Build();
  const std::string full_path = TempPath("graph_flip.bin");
  ASSERT_TRUE(graph::WriteBinary(g, full_path).ok());
  const std::vector<uint8_t> bytes = ReadAllBytes(full_path);
  ASSERT_GT(bytes.size(), 24u);

  const std::string flip_path = TempPath("graph_flip_mut.bin");
  for (size_t byte = 0; byte < 24; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> mutated = bytes;
      mutated[byte] ^= static_cast<uint8_t>(1u << bit);
      WriteBytes(flip_path, mutated);
      const auto result = graph::ReadBinary(flip_path);
      if (byte < 8) {
        // Magic corruption must always be caught.
        EXPECT_FALSE(result.ok()) << "byte=" << byte << " bit=" << bit;
      } else if (result.ok()) {
        // A length-prefix flip the reader accepted must still have
        // produced a structurally valid graph.
        EXPECT_LE(result->num_edges(),
                  static_cast<graph::EdgeIndex>(bytes.size()));
      }
    }
  }
}

TEST(IoBitFlipTest, CorpusHeaderBitFlipsRejected) {
  baseline::WalkOutput corpus;
  corpus.vertices = {1, 2, 3, 4, 5};
  corpus.offsets = {0, 2, 5};
  const std::string full_path = TempPath("corpus_flip.bin");
  ASSERT_TRUE(analytics::WriteCorpusBinary(corpus, full_path).ok());
  const std::vector<uint8_t> bytes = ReadAllBytes(full_path);
  // Header: 8-byte magic + two 8-byte counts, all validated against the
  // exact file size, so every single-bit flip in it must be rejected.
  ASSERT_GT(bytes.size(), 24u);

  const std::string flip_path = TempPath("corpus_flip_mut.bin");
  for (size_t byte = 0; byte < 24; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> mutated = bytes;
      mutated[byte] ^= static_cast<uint8_t>(1u << bit);
      WriteBytes(flip_path, mutated);
      EXPECT_FALSE(analytics::ReadCorpusBinary(flip_path).ok())
          << "byte=" << byte << " bit=" << bit;
    }
  }
}

// Valid magic followed by a length prefix declaring ~2^60 elements. The
// reader must reject the header against the actual file size instead of
// attempting an exabyte allocation.
TEST(IoHostileTest, BinaryGraphHugeLengthPrefixRejected) {
  const std::string path = TempPath("graph_huge_len.bin");
  std::vector<uint8_t> bytes = {'L', 'R', 'W', 'G', 'R', 'P', 'H', '1'};
  const uint64_t absurd = uint64_t{1} << 60;
  for (size_t i = 0; i < sizeof(absurd); ++i) {
    bytes.push_back(static_cast<uint8_t>(absurd >> (8 * i)));
  }
  // A little trailing data so the claim is clearly larger than the file.
  bytes.resize(bytes.size() + 64, 0);
  WriteBytes(path, bytes);
  EXPECT_FALSE(graph::ReadBinary(path).ok());
}

TEST(IoHostileTest, CorpusHugeCountsRejected) {
  const std::string path = TempPath("corpus_huge_len.bin");
  std::vector<uint8_t> bytes = {'L', 'R', 'W', 'W', 'A', 'L', 'K', '1'};
  const uint64_t counts[2] = {uint64_t{1} << 60, uint64_t{1} << 60};
  for (const uint64_t c : counts) {
    for (size_t i = 0; i < sizeof(c); ++i) {
      bytes.push_back(static_cast<uint8_t>(c >> (8 * i)));
    }
  }
  bytes.resize(bytes.size() + 64, 0);
  WriteBytes(path, bytes);
  EXPECT_FALSE(analytics::ReadCorpusBinary(path).ok());
}

// Counts that individually fit the remaining bytes but whose sum does
// not must also be rejected (and must not overflow the size check).
TEST(IoHostileTest, CorpusOverlappingCountsRejected) {
  const std::string path = TempPath("corpus_sum_len.bin");
  std::vector<uint8_t> bytes = {'L', 'R', 'W', 'W', 'A', 'L', 'K', '1'};
  // 64 trailing bytes; claim 16 offsets (64B) + 16 vertices (64B).
  const uint64_t counts[2] = {16, 16};
  for (const uint64_t c : counts) {
    for (size_t i = 0; i < sizeof(c); ++i) {
      bytes.push_back(static_cast<uint8_t>(c >> (8 * i)));
    }
  }
  bytes.resize(bytes.size() + 64, 0);
  WriteBytes(path, bytes);
  EXPECT_FALSE(analytics::ReadCorpusBinary(path).ok());
}

TEST(IoHostileTest, EdgeListWithHugeNumbers) {
  const std::string path = TempPath("huge.txt");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("99999999999999999999 1\n", f);
  std::fclose(f);
  EXPECT_FALSE(graph::ReadEdgeList(path, false).ok());
}

TEST(IoHostileTest, MatrixMarketHeaderOnly) {
  const std::string path = TempPath("header_only.mtx");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("%%MatrixMarket matrix coordinate pattern general\n", f);
  std::fclose(f);
  EXPECT_FALSE(graph::ReadMatrixMarket(path).ok());
}

}  // namespace
}  // namespace lightrw
