#include <gtest/gtest.h>

#include "apps/walk_app.h"
#include "graph/builder.h"
#include "graph/components.h"
#include "graph/generators.h"
#include "lightrw/functional_engine.h"

namespace lightrw::graph {
namespace {

TEST(ConnectedComponentsTest, TwoIslands) {
  GraphBuilder builder(6, /*undirected=*/true);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(3, 4);
  const CsrGraph g = std::move(builder).Build();  // vertex 5 isolated
  const ConnectedComponents cc(g);
  EXPECT_EQ(cc.num_components(), 3u);
  EXPECT_TRUE(cc.SameComponent(0, 2));
  EXPECT_TRUE(cc.SameComponent(3, 4));
  EXPECT_FALSE(cc.SameComponent(0, 3));
  EXPECT_FALSE(cc.SameComponent(5, 0));
  EXPECT_EQ(cc.sizes()[cc.ComponentOf(0)], 3u);
  EXPECT_EQ(cc.sizes()[cc.ComponentOf(5)], 1u);
}

TEST(ConnectedComponentsTest, DirectedEdgesCountAsUndirected) {
  GraphBuilder builder(3, /*undirected=*/false);
  builder.AddEdge(0, 1);  // only one direction
  builder.AddEdge(2, 1);
  const CsrGraph g = std::move(builder).Build();
  const ConnectedComponents cc(g);
  EXPECT_EQ(cc.num_components(), 1u);  // weakly connected
}

TEST(ConnectedComponentsTest, LargestComponentShare) {
  GraphBuilder builder(10, true);
  for (VertexId v = 0; v < 7; ++v) {
    builder.AddEdge(v, (v + 1) % 8);
  }
  const CsrGraph g = std::move(builder).Build();  // 8-cycle + 2 isolated
  const ConnectedComponents cc(g);
  EXPECT_EQ(cc.num_components(), 3u);
  EXPECT_DOUBLE_EQ(cc.LargestComponentShare(), 0.8);
  EXPECT_EQ(cc.sizes()[cc.LargestComponent()], 8u);
}

TEST(ConnectedComponentsTest, SizesSumToVertexCount) {
  RmatOptions options;
  options.scale = 10;
  options.seed = 21;
  const CsrGraph g = GenerateRmat(options);
  const ConnectedComponents cc(g);
  uint64_t total = 0;
  for (const uint32_t size : cc.sizes()) {
    total += size;
  }
  EXPECT_EQ(total, g.num_vertices());
}

// Walks never escape their start vertex's component — the property that
// makes components useful for coverage diagnostics.
TEST(ConnectedComponentsTest, WalksStayInComponent) {
  GraphBuilder builder(8, true);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 0);
  builder.AddEdge(4, 5);
  builder.AddEdge(5, 6);
  const CsrGraph g = std::move(builder).Build();
  const ConnectedComponents cc(g);

  apps::StaticWalkApp app;
  core::AcceleratorConfig config;
  core::FunctionalEngine engine(&g, &app, config);
  std::vector<apps::WalkQuery> queries;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    queries.push_back({v, 20});
  }
  baseline::WalkOutput output;
  engine.Run(queries, &output);
  for (size_t i = 0; i < output.num_paths(); ++i) {
    const auto path = output.Path(i);
    for (const VertexId v : path) {
      EXPECT_TRUE(cc.SameComponent(path[0], v));
    }
  }
}

}  // namespace
}  // namespace lightrw::graph
