#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/transforms.h"

namespace lightrw::graph {
namespace {

CsrGraph MakeChain() {
  // 0 -> 1 -> 2 -> 3 with distinct weights/relations and labels.
  GraphBuilder builder(4, false);
  builder.AddEdge(0, 1, 10, 1);
  builder.AddEdge(1, 2, 20, 2);
  builder.AddEdge(2, 3, 30, 3);
  builder.SetVertexLabel(0, 1);
  builder.SetVertexLabel(1, 1);
  builder.SetVertexLabel(2, 2);
  builder.SetVertexLabel(3, 2);
  return std::move(builder).Build();
}

TEST(ReverseGraphTest, FlipsEdgesKeepsAttributes) {
  const CsrGraph g = MakeChain();
  const CsrGraph r = ReverseGraph(g);
  EXPECT_EQ(r.num_edges(), g.num_edges());
  EXPECT_TRUE(r.HasEdge(1, 0));
  EXPECT_TRUE(r.HasEdge(3, 2));
  EXPECT_FALSE(r.HasEdge(0, 1));
  EXPECT_EQ(r.NeighborWeights(1)[0], 10u);
  EXPECT_EQ(r.NeighborRelations(3)[0], 3);
  EXPECT_EQ(r.VertexLabel(2), 2);
}

TEST(ReverseGraphTest, DoubleReverseIsIdentity) {
  RmatOptions options;
  options.scale = 8;
  options.seed = 6;
  const CsrGraph g = GenerateRmat(options);
  const CsrGraph rr = ReverseGraph(ReverseGraph(g));
  ASSERT_EQ(rr.num_edges(), g.num_edges());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(rr.Degree(v), g.Degree(v));
    const auto a = g.Neighbors(v);
    const auto b = rr.Neighbors(v);
    for (size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i], b[i]);
      ASSERT_EQ(g.NeighborWeights(v)[i], rr.NeighborWeights(v)[i]);
    }
  }
}

TEST(SortByDegreeTest, DescendingDegreeIds) {
  RmatOptions options;
  options.scale = 10;
  options.seed = 9;
  const CsrGraph g = GenerateRmat(options);
  const RelabeledGraph sorted = SortByDegree(g);
  ASSERT_EQ(sorted.graph.num_vertices(), g.num_vertices());
  ASSERT_EQ(sorted.graph.num_edges(), g.num_edges());
  for (VertexId v = 1; v < sorted.graph.num_vertices(); ++v) {
    EXPECT_GE(sorted.graph.Degree(v - 1), sorted.graph.Degree(v));
  }
}

TEST(SortByDegreeTest, MappingsAreInverse) {
  const CsrGraph g = MakeChain();
  const RelabeledGraph sorted = SortByDegree(g);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(sorted.old_id[sorted.new_id[v]], v);
  }
}

TEST(SortByDegreeTest, EdgesTranslated) {
  const CsrGraph g = MakeChain();
  const RelabeledGraph sorted = SortByDegree(g);
  // Every original edge must exist under the new ids with its weight.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto neighbors = g.Neighbors(v);
    for (size_t i = 0; i < neighbors.size(); ++i) {
      EXPECT_TRUE(sorted.graph.HasEdge(sorted.new_id[v],
                                       sorted.new_id[neighbors[i]]));
    }
    EXPECT_EQ(sorted.graph.VertexLabel(sorted.new_id[v]),
              g.VertexLabel(v));
  }
}

TEST(InducedSubgraphTest, KeepsOnlyMatchingLabels) {
  const CsrGraph g = MakeChain();
  const Label keep[] = {1};
  const RelabeledGraph sub = InducedSubgraphByLabels(g, keep);
  // Vertices 0 and 1 have label 1; the only surviving edge is 0 -> 1.
  EXPECT_EQ(sub.graph.num_vertices(), 2u);
  EXPECT_EQ(sub.graph.num_edges(), 1u);
  EXPECT_TRUE(sub.graph.HasEdge(sub.new_id[0], sub.new_id[1]));
  EXPECT_EQ(sub.old_id.size(), 2u);
}

TEST(InducedSubgraphTest, AllLabelsKeepsEverything) {
  const CsrGraph g = MakeChain();
  const Label keep[] = {1, 2};
  const RelabeledGraph sub = InducedSubgraphByLabels(g, keep);
  EXPECT_EQ(sub.graph.num_vertices(), g.num_vertices());
  EXPECT_EQ(sub.graph.num_edges(), g.num_edges());
}

TEST(InducedSubgraphTest, NoMatchingLabelsYieldsEmpty) {
  const CsrGraph g = MakeChain();
  const Label keep[] = {7};
  const RelabeledGraph sub = InducedSubgraphByLabels(g, keep);
  EXPECT_EQ(sub.graph.num_vertices(), 0u);
  EXPECT_EQ(sub.graph.num_edges(), 0u);
}

}  // namespace
}  // namespace lightrw::graph
