#include <gtest/gtest.h>

#include "apps/walk_app.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "lightrw/cycle_engine.h"
#include "lightrw/functional_engine.h"

namespace lightrw::core {
namespace {

using apps::MetaPathApp;
using apps::Node2VecApp;
using apps::StaticWalkApp;
using apps::WalkQuery;
using graph::CsrGraph;

AcceleratorConfig TestConfig() {
  AcceleratorConfig config;
  config.num_instances = 1;
  config.seed = 11;
  return config;
}

CsrGraph TestGraph(uint32_t scale_shift = 10) {
  return graph::MakeDatasetStandIn(graph::Dataset::kYoutube, scale_shift, 5);
}

TEST(CycleEngineTest, RunsAllQueriesAndCountsCycles) {
  const CsrGraph g = TestGraph();
  StaticWalkApp app;
  CycleEngine engine(&g, &app, TestConfig());
  const auto queries = apps::MakeVertexQueries(g, 8, 3, 400);
  const auto stats = engine.Run(queries);
  EXPECT_EQ(stats.queries, queries.size());
  EXPECT_GT(stats.steps, 0u);
  EXPECT_GT(stats.cycles, 0u);
  EXPECT_GT(stats.seconds, 0.0);
  EXPECT_GT(stats.dram.bytes, 0u);
  EXPECT_GE(stats.dram.bytes, stats.dram.useful_bytes);
  EXPECT_GT(stats.StepsPerSecond(), 0.0);
}

TEST(CycleEngineTest, WalksAreValid) {
  const CsrGraph g = TestGraph(11);
  StaticWalkApp app;
  CycleEngine engine(&g, &app, TestConfig());
  const auto queries = apps::MakeVertexQueries(g, 6, 3, 150);
  baseline::WalkOutput output;
  engine.Run(queries, &output);
  ASSERT_EQ(output.num_paths(), queries.size());
  for (size_t i = 0; i < output.num_paths(); ++i) {
    const auto path = output.Path(i);
    for (size_t s = 1; s < path.size(); ++s) {
      EXPECT_TRUE(g.HasEdge(path[s - 1], path[s]));
    }
  }
}

TEST(CycleEngineTest, Deterministic) {
  const CsrGraph g = TestGraph(11);
  StaticWalkApp app;
  const auto queries = apps::MakeVertexQueries(g, 6, 3, 200);
  CycleEngine a(&g, &app, TestConfig());
  CycleEngine b(&g, &app, TestConfig());
  const auto sa = a.Run(queries);
  const auto sb = b.Run(queries);
  EXPECT_EQ(sa.cycles, sb.cycles);
  EXPECT_EQ(sa.steps, sb.steps);
  EXPECT_EQ(sa.dram.bytes, sb.dram.bytes);
}

TEST(CycleEngineTest, DisablingWrsPipelineSlowsDown) {
  const CsrGraph g = TestGraph();
  StaticWalkApp app;
  const auto queries = apps::MakeVertexQueries(g, 8, 3, 300);
  AcceleratorConfig on = TestConfig();
  AcceleratorConfig off = TestConfig();
  off.enable_wrs_pipeline = false;
  const auto stats_on = CycleEngine(&g, &app, on).Run(queries);
  const auto stats_off = CycleEngine(&g, &app, off).Run(queries);
  EXPECT_GT(stats_off.cycles, stats_on.cycles);
  // The staged flow writes weights and tables through DRAM.
  EXPECT_GT(stats_off.dram.bytes, stats_on.dram.bytes);
}

TEST(CycleEngineTest, DegreeAwareCacheReducesDramRequests) {
  const CsrGraph g = TestGraph();
  StaticWalkApp app;
  const auto queries = apps::MakeVertexQueries(g, 8, 3, 300);
  AcceleratorConfig with_cache = TestConfig();
  AcceleratorConfig no_cache = TestConfig();
  no_cache.cache_kind = CacheKind::kNone;
  const auto stats_cache = CycleEngine(&g, &app, with_cache).Run(queries);
  const auto stats_none = CycleEngine(&g, &app, no_cache).Run(queries);
  EXPECT_LT(stats_cache.dram.requests, stats_none.dram.requests);
  EXPECT_GT(stats_cache.cache.hits, 0u);
  EXPECT_EQ(stats_none.cache.accesses(), 0u);
}

TEST(CycleEngineTest, BurstStrategyChangesTiming) {
  const CsrGraph g = graph::MakeDatasetStandIn(graph::Dataset::kOrkut,
                                               /*scale_shift=*/10, 5);
  StaticWalkApp app;
  const auto queries = apps::MakeVertexQueries(g, 8, 3, 300);
  AcceleratorConfig dynamic = TestConfig();
  dynamic.burst = BurstStrategy{1, 32};
  AcceleratorConfig short_only = TestConfig();
  short_only.burst = BurstStrategy{1, 0};
  const auto stats_dyn = CycleEngine(&g, &app, dynamic).Run(queries);
  const auto stats_short = CycleEngine(&g, &app, short_only).Run(queries);
  // Orkut's average degree (~38) makes long bursts pay off.
  EXPECT_LT(stats_dyn.cycles, stats_short.cycles);
  EXPECT_GT(stats_dyn.burst.long_bursts, 0u);
  EXPECT_EQ(stats_short.burst.long_bursts, 0u);
}

TEST(CycleEngineTest, MoreInstancesReduceMakespan) {
  const CsrGraph g = TestGraph();
  StaticWalkApp app;
  const auto queries = apps::MakeVertexQueries(g, 8, 3, 512);
  AcceleratorConfig one = TestConfig();
  AcceleratorConfig four = TestConfig();
  four.num_instances = 4;
  const auto stats_one = CycleEngine(&g, &app, one).Run(queries);
  const auto stats_four = CycleEngine(&g, &app, four).Run(queries);
  EXPECT_LT(stats_four.cycles, stats_one.cycles);
  EXPECT_GT(stats_four.cycles, stats_one.cycles / 8);  // sane scaling
}

TEST(CycleEngineTest, Node2VecPrevRefetchTriggersWithTinyBuffer) {
  const CsrGraph g = graph::MakeDatasetStandIn(graph::Dataset::kOrkut,
                                               /*scale_shift=*/10, 5);
  Node2VecApp app(2.0, 0.5);
  const auto queries = apps::MakeVertexQueries(g, 8, 3, 200);
  AcceleratorConfig big_buffer = TestConfig();
  big_buffer.prev_neighbor_buffer_edges = 1u << 20;
  AcceleratorConfig tiny_buffer = TestConfig();
  tiny_buffer.prev_neighbor_buffer_edges = 4;
  const auto stats_big = CycleEngine(&g, &app, big_buffer).Run(queries);
  const auto stats_tiny = CycleEngine(&g, &app, tiny_buffer).Run(queries);
  EXPECT_EQ(stats_big.prev_refetches, 0u);
  EXPECT_GT(stats_tiny.prev_refetches, 0u);
  EXPECT_GT(stats_tiny.dram.bytes, stats_big.dram.bytes);
}

TEST(CycleEngineTest, LatencyCollection) {
  const CsrGraph g = TestGraph(11);
  StaticWalkApp app;
  AcceleratorConfig config = TestConfig();
  config.collect_latency = true;
  CycleEngine engine(&g, &app, config);
  const auto queries = apps::MakeVertexQueries(g, 5, 3, 100);
  const auto stats = engine.Run(queries);
  EXPECT_EQ(stats.query_latency_cycles.count(), queries.size());
  EXPECT_GT(stats.query_latency_cycles.Min(), 0.0);
}

TEST(CycleEngineTest, ZeroLengthQueriesRetireImmediately) {
  const CsrGraph g = TestGraph(12);
  StaticWalkApp app;
  CycleEngine engine(&g, &app, TestConfig());
  const std::vector<WalkQuery> queries(10, WalkQuery{0, 0});
  const auto stats = engine.Run(queries);
  EXPECT_EQ(stats.queries, 10u);
  EXPECT_EQ(stats.steps, 0u);
}

TEST(CycleEngineTest, ValidDataRatioWithinBounds) {
  const CsrGraph g = TestGraph();
  StaticWalkApp app;
  CycleEngine engine(&g, &app, TestConfig());
  const auto queries = apps::MakeVertexQueries(g, 8, 3, 200);
  const auto stats = engine.Run(queries);
  EXPECT_GT(stats.burst.ValidDataRatio(), 0.0);
  EXPECT_LE(stats.burst.ValidDataRatio(), 1.0);
}

// The number of walk steps must match the functional engine's when fed the
// same queries and seeds (both engines share the sampling semantics; the
// per-step RNG consumption order differs, so paths differ, but the
// workload counts stay in the same ballpark).
TEST(CycleEngineTest, StepCountsComparableToFunctional) {
  const CsrGraph g = TestGraph();
  StaticWalkApp app;
  const auto queries = apps::MakeVertexQueries(g, 8, 3, 400);
  CycleEngine cycle(&g, &app, TestConfig());
  const auto cycle_stats = cycle.Run(queries);
  FunctionalEngine functional(&g, &app, TestConfig());
  const auto functional_stats = functional.Run(queries);
  EXPECT_EQ(cycle_stats.queries, functional_stats.queries);
  const double ratio = static_cast<double>(cycle_stats.steps) /
                       static_cast<double>(functional_stats.steps);
  EXPECT_GT(ratio, 0.9);
  EXPECT_LT(ratio, 1.1);
}

}  // namespace
}  // namespace lightrw::core
