#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/io.h"

namespace lightrw::graph {
namespace {

class GraphIoTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return testing::TempDir() + "/lightrw_io_" + name;
  }

  void WriteFile(const std::string& path, const std::string& content) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs(content.c_str(), f);
    std::fclose(f);
  }
};

void ExpectGraphsEqual(const CsrGraph& a, const CsrGraph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    ASSERT_EQ(a.Degree(v), b.Degree(v)) << "vertex " << v;
    ASSERT_EQ(a.VertexLabel(v), b.VertexLabel(v)) << "vertex " << v;
    const auto an = a.Neighbors(v);
    const auto bn = b.Neighbors(v);
    for (size_t i = 0; i < an.size(); ++i) {
      ASSERT_EQ(an[i], bn[i]);
      ASSERT_EQ(a.NeighborWeights(v)[i], b.NeighborWeights(v)[i]);
      ASSERT_EQ(a.NeighborRelations(v)[i], b.NeighborRelations(v)[i]);
    }
  }
}

TEST_F(GraphIoTest, ReadsSimpleEdgeList) {
  const std::string path = TempPath("simple.txt");
  WriteFile(path,
            "# comment line\n"
            "0 1 5 1\n"
            "1 2\n"
            "% another comment\n"
            "2 0 3\n");
  auto result = ReadEdgeList(path, /*undirected=*/false);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const CsrGraph& g = *result;
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.NeighborWeights(0)[0], 5u);
  EXPECT_EQ(g.NeighborRelations(0)[0], 1);
  EXPECT_EQ(g.NeighborWeights(1)[0], 1u);  // default weight
  EXPECT_EQ(g.NeighborWeights(2)[0], 3u);
}

TEST_F(GraphIoTest, ReadsUndirected) {
  const std::string path = TempPath("undirected.txt");
  WriteFile(path, "0 1\n");
  auto result = ReadEdgeList(path, /*undirected=*/true);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_edges(), 2u);
  EXPECT_TRUE(result->HasEdge(1, 0));
}

TEST_F(GraphIoTest, MissingFileIsIoError) {
  auto result = ReadEdgeList(TempPath("does_not_exist.txt"), false);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST_F(GraphIoTest, MalformedLineIsInvalidArgument) {
  const std::string path = TempPath("bad.txt");
  WriteFile(path, "0 1\nnot numbers\n");
  auto result = ReadEdgeList(path, false);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(GraphIoTest, OverflowingRelationRejected) {
  const std::string path = TempPath("badrel.txt");
  WriteFile(path, "0 1 1 300\n");
  auto result = ReadEdgeList(path, false);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

TEST_F(GraphIoTest, ZeroWeightRejected) {
  const std::string path = TempPath("badweight.txt");
  WriteFile(path, "0 1 0\n");
  auto result = ReadEdgeList(path, false);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

TEST_F(GraphIoTest, EmptyFileRejected) {
  const std::string path = TempPath("empty.txt");
  WriteFile(path, "# only comments\n");
  auto result = ReadEdgeList(path, false);
  ASSERT_FALSE(result.ok());
}

TEST_F(GraphIoTest, EdgeListRoundTrip) {
  RmatOptions options;
  options.scale = 8;
  options.seed = 21;
  const CsrGraph original = GenerateRmat(options);
  const std::string path = TempPath("roundtrip.txt");
  ASSERT_TRUE(WriteEdgeList(original, path).ok());
  auto reloaded = ReadEdgeList(path, /*undirected=*/false);
  ASSERT_TRUE(reloaded.ok());
  // Labels are not part of the text format; compare topology + attributes.
  ASSERT_EQ(reloaded->num_edges(), original.num_edges());
  for (VertexId v = 0; v < original.num_vertices(); ++v) {
    if (original.Degree(v) == 0) {
      continue;  // trailing isolated vertices may be trimmed by max-id
    }
    ASSERT_EQ(reloaded->Degree(v), original.Degree(v));
    for (size_t i = 0; i < original.Neighbors(v).size(); ++i) {
      ASSERT_EQ(reloaded->Neighbors(v)[i], original.Neighbors(v)[i]);
      ASSERT_EQ(reloaded->NeighborWeights(v)[i],
                original.NeighborWeights(v)[i]);
    }
  }
}

TEST_F(GraphIoTest, BinaryRoundTripPreservesEverything) {
  RmatOptions options;
  options.scale = 9;
  options.seed = 33;
  const CsrGraph original = GenerateRmat(options);
  const std::string path = TempPath("roundtrip.bin");
  ASSERT_TRUE(WriteBinary(original, path).ok());
  auto reloaded = ReadBinary(path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  ExpectGraphsEqual(original, *reloaded);
}

TEST_F(GraphIoTest, BinaryRejectsWrongMagic) {
  const std::string path = TempPath("notgraph.bin");
  WriteFile(path, "garbage contents");
  auto result = ReadBinary(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(GraphIoTest, BinaryRejectsTruncation) {
  GraphBuilder builder(3, false);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  const CsrGraph g = std::move(builder).Build();
  const std::string path = TempPath("trunc.bin");
  ASSERT_TRUE(WriteBinary(g, path).ok());
  // Truncate the file.
  std::FILE* f = std::fopen(path.c_str(), "r+");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(ftruncate(fileno(f), 24), 0);
  std::fclose(f);
  auto result = ReadBinary(path);
  ASSERT_FALSE(result.ok());
}

TEST_F(GraphIoTest, MatrixMarketGeneralInteger) {
  const std::string path = TempPath("general.mtx");
  WriteFile(path,
            "%%MatrixMarket matrix coordinate integer general\n"
            "% a comment\n"
            "3 3 3\n"
            "1 2 5\n"
            "2 3 7\n"
            "3 1 2\n");
  auto result = ReadMatrixMarket(path);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_vertices(), 3u);
  EXPECT_EQ(result->num_edges(), 3u);
  EXPECT_TRUE(result->HasEdge(0, 1));
  EXPECT_EQ(result->NeighborWeights(0)[0], 5u);
  EXPECT_TRUE(result->HasEdge(2, 0));
}

TEST_F(GraphIoTest, MatrixMarketSymmetricPattern) {
  const std::string path = TempPath("symmetric.mtx");
  WriteFile(path,
            "%%MatrixMarket matrix coordinate pattern symmetric\n"
            "4 4 2\n"
            "2 1\n"
            "4 3\n");
  auto result = ReadMatrixMarket(path);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_edges(), 4u);  // mirrored
  EXPECT_TRUE(result->HasEdge(0, 1));
  EXPECT_TRUE(result->HasEdge(1, 0));
  EXPECT_TRUE(result->HasEdge(2, 3));
  EXPECT_EQ(result->NeighborWeights(1)[0], 1u);  // pattern weight
}

TEST_F(GraphIoTest, MatrixMarketRealWeightsClamped) {
  const std::string path = TempPath("real.mtx");
  WriteFile(path,
            "%%MatrixMarket matrix coordinate real general\n"
            "2 2 2\n"
            "1 2 0.25\n"
            "2 1 3.9\n");
  auto result = ReadMatrixMarket(path);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->NeighborWeights(0)[0], 1u);  // clamped up to 1
  EXPECT_EQ(result->NeighborWeights(1)[0], 3u);  // truncated
}

TEST_F(GraphIoTest, MatrixMarketRejectsBadHeader) {
  const std::string path = TempPath("badheader.mtx");
  WriteFile(path, "not a matrix market file\n1 1 0\n");
  EXPECT_FALSE(ReadMatrixMarket(path).ok());
}

TEST_F(GraphIoTest, MatrixMarketRejectsUnsupportedSymmetry) {
  const std::string path = TempPath("skew.mtx");
  WriteFile(path,
            "%%MatrixMarket matrix coordinate real skew-symmetric\n"
            "2 2 1\n"
            "1 2 1.0\n");
  auto result = ReadMatrixMarket(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnimplemented);
}

TEST_F(GraphIoTest, MatrixMarketRejectsTruncatedEntries) {
  const std::string path = TempPath("short.mtx");
  WriteFile(path,
            "%%MatrixMarket matrix coordinate pattern general\n"
            "3 3 5\n"
            "1 2\n");
  EXPECT_FALSE(ReadMatrixMarket(path).ok());
}

TEST_F(GraphIoTest, MatrixMarketRejectsOutOfRangeIndex) {
  const std::string path = TempPath("range.mtx");
  WriteFile(path,
            "%%MatrixMarket matrix coordinate pattern general\n"
            "2 2 1\n"
            "3 1\n");
  auto result = ReadMatrixMarket(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace lightrw::graph
