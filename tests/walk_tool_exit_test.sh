#!/bin/sh
# Exit-code contract of walk_tool:
#   0  success (including --help)
#   1  usage, configuration, or I/O error; also a failed chaos campaign
#   2  service run finished but breached an --slo-max-* threshold
#   3  run finished but produced partial data (lost or failed walks)
# Every non-zero path must print a one-line reason on stderr.
#
# Usage: walk_tool_exit_test.sh <path-to-walk_tool>
set -u

TOOL="${1:?usage: $0 <path-to-walk_tool>}"
fails=0

expect() {
  desc="$1"
  want="$2"
  shift 2
  err=$("$@" 2>&1 >/dev/null)
  got=$?
  if [ "$got" -ne "$want" ]; then
    echo "FAIL: $desc: want exit $want, got $got" >&2
    fails=$((fails + 1))
  elif [ "$want" -ne 0 ] && [ -z "$err" ]; then
    echo "FAIL: $desc: exit $got but no stderr reason" >&2
    fails=$((fails + 1))
  else
    echo "ok: $desc (exit $got)"
  fi
}

# Small deterministic base invocation shared by the success cases.
BASE="--rmat_scale 8 --app deepwalk --length 8 --queries 64 --seed 42"

expect "help" 0 "$TOOL" --help
expect "cpu run succeeds" 0 "$TOOL" --engine cpu $BASE
expect "service run succeeds" 0 "$TOOL" --engine service $BASE \
  --boards 2 --partition hash --service-rate 0.2
expect "unknown flag" 1 "$TOOL" --bogus-flag
expect "malformed flag value" 1 "$TOOL" --length abc
expect "unknown engine" 1 "$TOOL" --engine bogus $BASE
expect "unknown app" 1 "$TOOL" --app bogus --rmat_scale 8
expect "bad walk length" 1 "$TOOL" --length 0 --rmat_scale 8
expect "bad rmat scale" 1 "$TOOL" --rmat_scale 99
expect "missing graph file" 1 "$TOOL" --graph /nonexistent/edges.txt
expect "bad board count" 1 "$TOOL" --engine distributed --boards 0 \
  --rmat_scale 8
expect "unknown partition strategy" 1 "$TOOL" --engine distributed \
  --partition bogus $BASE
expect "invalid service config" 1 "$TOOL" --engine service $BASE \
  --service-queue-cap 0
expect "unwritable corpus path" 1 "$TOOL" --engine cpu $BASE \
  --out /nonexistent-dir/corpus.txt
expect "unwritable metrics path" 1 "$TOOL" --engine cpu $BASE \
  --metrics-out /nonexistent-dir/metrics.json
# Checkpoint-free death schedules are rejected at validation time unless
# the caller explicitly opts into walker loss...
expect "checkpoint-free death rejected" 1 "$TOOL" --engine distributed \
  --boards 2 --partition hash --rmat_scale 8 --app deepwalk --length 16 \
  --queries 128 --seed 42 --faults --fault-fail-cycle 2000 \
  --fault-fail-board 1 --fault-checkpoint-interval 0
# ...and with the opt-in, the run completes but reports partial data.
expect "fault run losing walk data" 3 "$TOOL" --engine distributed \
  --boards 2 --partition hash --rmat_scale 8 --app deepwalk --length 16 \
  --queries 128 --seed 42 --faults --fault-fail-cycle 2000 \
  --fault-fail-board 1 --fault-checkpoint-interval 0 \
  --fault-allow-walker-loss
expect "mismatched death schedule lists" 1 "$TOOL" --engine distributed \
  --boards 4 --partition hash $BASE --faults \
  --fault-fail-cycles 2000,4000 --fault-fail-boards 1
expect "death schedule killing every owner" 1 "$TOOL" --engine distributed \
  --boards 2 --partition hash $BASE --faults \
  --fault-fail-cycles 2000,4000 --fault-fail-boards 0,1 \
  --fault-checkpoint-interval 4096
expect "cascade with spare survives" 0 "$TOOL" --engine distributed \
  --boards 4 --partition hash --rmat_scale 8 --app deepwalk --length 16 \
  --queries 128 --seed 42 --faults --fault-fail-cycles 2000,6000 \
  --fault-fail-boards 1,2 --fault-checkpoint-interval 4096 \
  --spare-boards 1
expect "bad span mode" 1 "$TOOL" --engine service $BASE \
  --spans-out /tmp/walk_tool_spans_$$.json --span-mode bogus
expect "bad metrics format" 1 "$TOOL" --engine cpu $BASE \
  --metrics-out /tmp/walk_tool_metrics_$$.json --metrics-format bogus
expect "bad burn-alert budget" 1 "$TOOL" --engine service $BASE \
  --spans-out /tmp/walk_tool_spans_$$.json --burn-alert-budget 0
expect "bad burn-alert windows" 1 "$TOOL" --engine service $BASE \
  --spans-out /tmp/walk_tool_spans_$$.json --burn-alert-fast-window 100000 \
  --burn-alert-slow-window 1000
expect "unwritable spans path" 1 "$TOOL" --engine service $BASE \
  --boards 2 --partition hash --service-rate 0.2 \
  --spans-out /nonexistent-dir/spans.json

# Span output: a service run with --spans-out must write a JSON document
# covering every offered query.
SPANS="/tmp/walk_tool_spans_$$.json"
expect "service run writes spans" 0 "$TOOL" --engine service $BASE \
  --boards 2 --partition hash --service-rate 0.2 --spans-out "$SPANS" \
  --span-mode breached
if [ ! -s "$SPANS" ]; then
  echo "FAIL: --spans-out did not write $SPANS" >&2
  fails=$((fails + 1))
elif ! grep -q '"summaries"' "$SPANS" || ! grep -q '"attribution"' "$SPANS"
then
  echo "FAIL: spans JSON missing summaries/attribution sections" >&2
  fails=$((fails + 1))
else
  echo "ok: spans JSON has summaries + attribution"
fi
rm -f "$SPANS"

# Metrics format: --metrics-format overrides the extension heuristic.
PROM="/tmp/walk_tool_metrics_$$.json"
expect "prometheus metrics format" 0 "$TOOL" --engine cpu $BASE \
  --metrics-out "$PROM" --metrics-format prometheus
if ! grep -q '^# TYPE' "$PROM"; then
  echo "FAIL: --metrics-format prometheus did not write exposition text" >&2
  fails=$((fails + 1))
else
  echo "ok: prometheus metrics format honored"
fi
rm -f "$PROM"

# Chaos campaign: a small seeded campaign must pass and write its report.
CHAOS="/tmp/walk_tool_chaos_$$.json"
expect "chaos campaign passes" 0 "$TOOL" --chaos-scenarios 3 \
  --chaos-seed 5 --boards 4 --rmat_scale 8 --length 8 --queries 64 \
  --chaos-out "$CHAOS"
if ! grep -q '"passed": true' "$CHAOS"; then
  echo "FAIL: chaos report missing passed:true" >&2
  fails=$((fails + 1))
else
  echo "ok: chaos report records a passing campaign"
fi
rm -f "$CHAOS"
expect "chaos bad board count" 1 "$TOOL" --chaos-scenarios 4 --boards 1 \
  --rmat_scale 8

expect "service slo breach" 2 "$TOOL" --engine service --rmat_scale 10 \
  --app deepwalk --length 24 --queries 256 --seed 42 --boards 2 \
  --partition hash --service-rate 50.0 --service-deadline 15000 \
  --service-queue-cap 4 --service-retries 0 --slo-max-shed 0.1

if [ "$fails" -ne 0 ]; then
  echo "$fails case(s) failed" >&2
  exit 1
fi
echo "all exit-code cases passed"
