#include <gtest/gtest.h>

#include "apps/ppr.h"
#include "apps/walk_app.h"
#include "distributed/config_validation.h"
#include "distributed/dist_engine.h"
#include "distributed/partition.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "lightrw/cycle_engine.h"

namespace lightrw::distributed {
namespace {

using apps::StaticWalkApp;
using apps::WalkQuery;
using graph::CsrGraph;
using graph::VertexId;

CsrGraph TestGraph() {
  return graph::MakeDatasetStandIn(graph::Dataset::kLiveJournal,
                                   /*scale_shift=*/11, /*seed=*/4);
}

class PartitionStrategyTest
    : public ::testing::TestWithParam<PartitionStrategy> {};

TEST_P(PartitionStrategyTest, CoversAllVerticesWithValidOwners) {
  const CsrGraph g = TestGraph();
  const Partition p = MakePartition(g, 4, GetParam());
  EXPECT_EQ(p.num_boards(), 4);
  EXPECT_EQ(p.owners().size(), g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_LT(p.OwnerOf(v), 4);
  }
}

TEST_P(PartitionStrategyTest, ReasonableEdgeBalance) {
  const CsrGraph g = TestGraph();
  const Partition p = MakePartition(g, 4, GetParam());
  // No board should hold more than 2x its fair share of edges.
  EXPECT_LT(p.EdgeImbalance(g), 2.0);
}

TEST_P(PartitionStrategyTest, CutRatioInUnitInterval) {
  const CsrGraph g = TestGraph();
  const Partition p = MakePartition(g, 4, GetParam());
  const double cut = p.CutRatio(g);
  EXPECT_GE(cut, 0.0);
  EXPECT_LE(cut, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Strategies, PartitionStrategyTest,
                         ::testing::Values(PartitionStrategy::kHash,
                                           PartitionStrategy::kRange,
                                           PartitionStrategy::kGreedy),
                         [](const auto& info) {
                           switch (info.param) {
                             case PartitionStrategy::kHash:
                               return "hash";
                             case PartitionStrategy::kRange:
                               return "range";
                             case PartitionStrategy::kGreedy:
                               return "greedy";
                           }
                           return "unknown";
                         });

TEST(PartitionTest, SingleBoardHasNoCut) {
  const CsrGraph g = TestGraph();
  const Partition p = MakePartition(g, 1, PartitionStrategy::kHash);
  EXPECT_DOUBLE_EQ(p.CutRatio(g), 0.0);
  EXPECT_DOUBLE_EQ(p.EdgeImbalance(g), 1.0);
}

TEST(PartitionTest, GreedyCutsLessThanHash) {
  // The whole point of the greedy partitioner: exploiting structure cuts
  // fewer edges than an oblivious hash.
  const CsrGraph g = TestGraph();
  const Partition hash = MakePartition(g, 4, PartitionStrategy::kHash);
  const Partition greedy = MakePartition(g, 4, PartitionStrategy::kGreedy);
  EXPECT_LT(greedy.CutRatio(g), hash.CutRatio(g));
}

TEST(PartitionTest, EdgeCountsSumToTotal) {
  const CsrGraph g = TestGraph();
  const Partition p = MakePartition(g, 8, PartitionStrategy::kRange);
  const auto counts = p.EdgeCounts(g);
  uint64_t total = 0;
  for (const uint64_t c : counts) {
    total += c;
  }
  EXPECT_EQ(total, g.num_edges());
}

DistributedConfig TestConfig() {
  DistributedConfig config;
  config.board.num_instances = 1;
  config.board.seed = 13;
  return config;
}

// One test per rejected field: the validator must name the offending
// field so CLI users can fix their flags.
TEST(DistributedConfigValidationTest, AcceptsDefaults) {
  EXPECT_TRUE(ValidateDistributedConfig(DistributedConfig()).ok());
}

TEST(DistributedConfigValidationTest, RejectsZeroWalkerMessageBytes) {
  DistributedConfig config;
  config.walker_message_bytes = 0;
  const Status status = ValidateDistributedConfig(config);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("walker_message_bytes"),
            std::string::npos);
}

TEST(DistributedConfigValidationTest, RejectsZeroInflightWalkersPerBoard) {
  DistributedConfig config;
  config.inflight_walkers_per_board = 0;
  const Status status = ValidateDistributedConfig(config);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("inflight_walkers_per_board"),
            std::string::npos);
}

TEST(DistributedConfigValidationTest, RejectsZeroSamplerParallelism) {
  DistributedConfig config;
  config.board.sampler_parallelism = 0;
  const Status status = ValidateDistributedConfig(config);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("sampler_parallelism"), std::string::npos);
}

TEST(DistributedConfigValidationTest, RejectsZeroBoardInstances) {
  DistributedConfig config;
  config.board.num_instances = 0;
  const Status status = ValidateDistributedConfig(config);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("num_instances"), std::string::npos);
}

TEST(DistributedConfigValidationTest, RejectsBadNestedDramConfig) {
  DistributedConfig config;
  config.board.dram.bus_bytes = 0;
  const Status status = ValidateDistributedConfig(config);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("bus_bytes"), std::string::npos);
}

TEST(DistributedConfigValidationTest, RejectsBadNestedLinkConfig) {
  DistributedConfig config;
  config.link.bytes_per_cycle = 0.0;
  const Status status = ValidateDistributedConfig(config);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("bytes_per_cycle"), std::string::npos);
}

TEST(DistributedEngineTest, RunsAllQueriesWithValidWalks) {
  const CsrGraph g = TestGraph();
  StaticWalkApp app;
  const Partition p = MakePartition(g, 4, PartitionStrategy::kHash);
  DistributedEngine engine(&g, &app, &p, TestConfig());
  const auto queries = apps::MakeVertexQueries(g, 8, 3, 300);
  baseline::WalkOutput output;
  const auto stats = engine.Run(queries, &output).value();
  EXPECT_EQ(stats.queries, queries.size());
  EXPECT_GT(stats.steps, 0u);
  EXPECT_GT(stats.cycles, 0u);
  ASSERT_EQ(output.num_paths(), queries.size());
  for (size_t i = 0; i < output.num_paths(); ++i) {
    const auto path = output.Path(i);
    EXPECT_EQ(path[0], queries[i].start);
    for (size_t s = 1; s < path.size(); ++s) {
      EXPECT_TRUE(g.HasEdge(path[s - 1], path[s]));
    }
  }
}

TEST(DistributedEngineTest, MigrationsTrackCutRatio) {
  const CsrGraph g = TestGraph();
  StaticWalkApp app;
  const Partition p = MakePartition(g, 4, PartitionStrategy::kHash);
  DistributedEngine engine(&g, &app, &p, TestConfig());
  const auto queries = apps::MakeVertexQueries(g, 10, 3, 500);
  const auto stats = engine.Run(queries).value();
  EXPECT_GT(stats.migrations, 0u);
  // Migration ratio should be in the neighborhood of the edge cut ratio
  // (walks sample edges roughly like the cut measures them).
  EXPECT_NEAR(stats.MigrationRatio(), p.CutRatio(g), 0.25);
  EXPECT_EQ(stats.network.messages, stats.migrations);
}

TEST(DistributedEngineTest, SingleBoardNeverMigrates) {
  const CsrGraph g = TestGraph();
  StaticWalkApp app;
  const Partition p = MakePartition(g, 1, PartitionStrategy::kHash);
  DistributedEngine engine(&g, &app, &p, TestConfig());
  const auto queries = apps::MakeVertexQueries(g, 10, 3, 200);
  const auto stats = engine.Run(queries).value();
  EXPECT_EQ(stats.migrations, 0u);
  EXPECT_EQ(stats.network.messages, 0u);
}

TEST(DistributedEngineTest, MoreBoardsIncreaseThroughput) {
  const CsrGraph g = TestGraph();
  StaticWalkApp app;
  const auto queries = apps::MakeVertexQueries(g, 10, 3, 2000);
  const Partition one = MakePartition(g, 1, PartitionStrategy::kGreedy);
  const Partition four = MakePartition(g, 4, PartitionStrategy::kGreedy);
  const auto stats_one =
      DistributedEngine(&g, &app, &one, TestConfig()).Run(queries).value();
  const auto stats_four =
      DistributedEngine(&g, &app, &four, TestConfig()).Run(queries).value();
  EXPECT_GT(stats_four.StepsPerSecond(), stats_one.StepsPerSecond());
}

TEST(DistributedEngineTest, GreedyPartitionBeatsHashOnTime) {
  const CsrGraph g = TestGraph();
  StaticWalkApp app;
  const auto queries = apps::MakeVertexQueries(g, 10, 3, 2000);
  const Partition hash = MakePartition(g, 8, PartitionStrategy::kHash);
  const Partition greedy = MakePartition(g, 8, PartitionStrategy::kGreedy);
  const auto stats_hash =
      DistributedEngine(&g, &app, &hash, TestConfig()).Run(queries).value();
  const auto stats_greedy =
      DistributedEngine(&g, &app, &greedy, TestConfig()).Run(queries).value();
  EXPECT_LT(stats_greedy.migrations, stats_hash.migrations);
}

TEST(DistributedEngineTest, DeterministicPerSeed) {
  const CsrGraph g = TestGraph();
  StaticWalkApp app;
  const Partition p = MakePartition(g, 2, PartitionStrategy::kRange);
  const auto queries = apps::MakeVertexQueries(g, 6, 3, 200);
  const auto a =
      DistributedEngine(&g, &app, &p, TestConfig()).Run(queries).value();
  const auto b =
      DistributedEngine(&g, &app, &p, TestConfig()).Run(queries).value();
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.migrations, b.migrations);
}

TEST(DistributedEngineTest, PprStopsEarly) {
  const CsrGraph g = TestGraph();
  apps::PprApp app(0.3);
  const Partition p = MakePartition(g, 2, PartitionStrategy::kHash);
  DistributedEngine engine(&g, &app, &p, TestConfig());
  const std::vector<WalkQuery> queries(2000, WalkQuery{0, 200});
  const auto stats = engine.Run(queries).value();
  const double avg_steps =
      static_cast<double>(stats.steps) / static_cast<double>(stats.queries);
  EXPECT_LT(avg_steps, 10.0);  // geometric with alpha=0.3 -> ~3.3
}

TEST(DistributedEngineTest, ReplicatedModeNeverMigrates) {
  const CsrGraph g = TestGraph();
  StaticWalkApp app;
  const Partition p = MakePartition(g, 4, PartitionStrategy::kHash);
  DistributedConfig config = TestConfig();
  config.replicate_graph = true;
  DistributedEngine engine(&g, &app, &p, config);
  const auto queries = apps::MakeVertexQueries(g, 10, 3, 500);
  const auto stats = engine.Run(queries).value();
  EXPECT_EQ(stats.migrations, 0u);
  EXPECT_EQ(stats.per_board_graph_bytes, g.ModeledByteSize());
}

TEST(DistributedEngineTest, PartitionedModeNeedsLessMemoryPerBoard) {
  const CsrGraph g = TestGraph();
  StaticWalkApp app;
  const Partition p = MakePartition(g, 4, PartitionStrategy::kGreedy);
  DistributedConfig partitioned = TestConfig();
  DistributedConfig replicated = TestConfig();
  replicated.replicate_graph = true;
  const auto queries = apps::MakeVertexQueries(g, 8, 3, 300);
  const auto part_stats =
      DistributedEngine(&g, &app, &p, partitioned).Run(queries).value();
  const auto repl_stats =
      DistributedEngine(&g, &app, &p, replicated).Run(queries).value();
  EXPECT_LT(part_stats.per_board_graph_bytes,
            repl_stats.per_board_graph_bytes);
  // Replication avoids the network, so it is at least as fast.
  EXPECT_LE(repl_stats.cycles, part_stats.cycles * 11 / 10);
}

TEST(NetworkLinkTest, SerializesAndDelays) {
  hwsim::LinkConfig config;
  config.bytes_per_cycle = 32.0;
  config.latency_cycles = 100;
  config.header_bytes = 32;
  hwsim::NetworkLink link(config);
  // 32B payload + 32B header at 32 B/cycle = 2 cycles wire time.
  const auto first = link.Send(0, 32);
  EXPECT_EQ(first, 2u + 100);
  const auto second = link.Send(0, 32);  // queues behind the first
  EXPECT_EQ(second, 4u + 100);
  EXPECT_EQ(link.stats().messages, 2u);
  EXPECT_EQ(link.stats().payload_bytes, 64u);
}

}  // namespace
}  // namespace lightrw::distributed
