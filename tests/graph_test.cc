#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/csr.h"
#include "graph/types.h"

namespace lightrw::graph {
namespace {

CsrGraph MakeDiamond() {
  // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3 (directed diamond).
  GraphBuilder builder(4, /*undirected=*/false);
  builder.AddEdge(0, 1, /*weight=*/3, /*relation=*/1);
  builder.AddEdge(0, 2, /*weight=*/1, /*relation=*/2);
  builder.AddEdge(1, 3, /*weight=*/4, /*relation=*/1);
  builder.AddEdge(2, 3, /*weight=*/1, /*relation=*/2);
  return std::move(builder).Build();
}

TEST(GraphBuilderTest, BuildsCsrShape) {
  const CsrGraph g = MakeDiamond();
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.Degree(0), 2u);
  EXPECT_EQ(g.Degree(1), 1u);
  EXPECT_EQ(g.Degree(2), 1u);
  EXPECT_EQ(g.Degree(3), 0u);
  EXPECT_EQ(g.max_degree(), 2u);
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 1.0);
}

TEST(GraphBuilderTest, AdjacencySortedByDestination) {
  GraphBuilder builder(5, false);
  builder.AddEdge(0, 4);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 3);
  builder.AddEdge(0, 2);
  const CsrGraph g = std::move(builder).Build();
  const auto neighbors = g.Neighbors(0);
  ASSERT_EQ(neighbors.size(), 4u);
  for (size_t i = 1; i < neighbors.size(); ++i) {
    EXPECT_LT(neighbors[i - 1], neighbors[i]);
  }
}

TEST(GraphBuilderTest, AttributesTravelWithEdges) {
  const CsrGraph g = MakeDiamond();
  const auto neighbors = g.Neighbors(0);
  const auto weights = g.NeighborWeights(0);
  const auto relations = g.NeighborRelations(0);
  ASSERT_EQ(neighbors.size(), 2u);
  EXPECT_EQ(neighbors[0], 1u);
  EXPECT_EQ(weights[0], 3u);
  EXPECT_EQ(relations[0], 1);
  EXPECT_EQ(neighbors[1], 2u);
  EXPECT_EQ(weights[1], 1u);
  EXPECT_EQ(relations[1], 2);
}

TEST(GraphBuilderTest, UndirectedMaterializesBothDirections) {
  GraphBuilder builder(3, /*undirected=*/true);
  builder.AddEdge(0, 1, 7, 3);
  builder.AddEdge(1, 2, 9, 1);
  const CsrGraph g = std::move(builder).Build();
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_TRUE(g.HasEdge(2, 1));
  // Reverse edges carry the same attributes.
  EXPECT_EQ(g.NeighborWeights(1)[0], 7u);  // 1 -> 0
  EXPECT_EQ(g.NeighborRelations(1)[0], 3);
}

TEST(GraphBuilderTest, DuplicateEdgesKeepFirst) {
  GraphBuilder builder(2, false);
  builder.AddEdge(0, 1, 5, 0);
  builder.AddEdge(0, 1, 9, 1);  // dropped
  const CsrGraph g = std::move(builder).Build();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.NeighborWeights(0)[0], 5u);
}

TEST(GraphBuilderTest, SelfLoopsKeptInDirectedMode) {
  GraphBuilder builder(2, false);
  builder.AddEdge(0, 0);
  builder.AddEdge(0, 1);
  const CsrGraph g = std::move(builder).Build();
  EXPECT_EQ(g.Degree(0), 2u);
  EXPECT_TRUE(g.HasEdge(0, 0));
}

TEST(GraphBuilderTest, VertexLabels) {
  GraphBuilder builder(3, false);
  builder.SetVertexLabel(0, 2);
  builder.SetVertexLabel(2, 1);
  builder.AddEdge(0, 1);
  const CsrGraph g = std::move(builder).Build();
  EXPECT_EQ(g.VertexLabel(0), 2);
  EXPECT_EQ(g.VertexLabel(1), 0);
  EXPECT_EQ(g.VertexLabel(2), 1);
}

TEST(GraphBuilderTest, RandomizeAttributesRespectsRanges) {
  GraphBuilder builder(100, false);
  for (VertexId v = 0; v < 99; ++v) {
    builder.AddEdge(v, v + 1);
  }
  builder.RandomizeAttributes(/*num_labels=*/3, /*num_relations=*/2,
                              /*max_weight=*/8, /*seed=*/5);
  const CsrGraph g = std::move(builder).Build();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_LT(g.VertexLabel(v), 3);
  }
  for (const Relation r : g.col_relation()) {
    EXPECT_LT(r, 2);
  }
  for (const Weight w : g.col_weight()) {
    EXPECT_GE(w, 1u);
    EXPECT_LE(w, 8u);
  }
}

TEST(CsrGraphTest, HasEdge) {
  const CsrGraph g = MakeDiamond();
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(2, 3));
  EXPECT_FALSE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(3, 0));
  EXPECT_FALSE(g.HasEdge(0, 3));
}

TEST(CsrGraphTest, CountNonIsolatedVertices) {
  const CsrGraph g = MakeDiamond();
  EXPECT_EQ(g.CountNonIsolatedVertices(), 3u);  // vertex 3 has out-degree 0
}

TEST(CsrGraphTest, ModeledByteSize) {
  const CsrGraph g = MakeDiamond();
  // (|V|+1) * 8 row bytes + |E| * 8 edge bytes + |V| label bytes.
  EXPECT_EQ(g.ModeledByteSize(), 5 * 8 + 4 * 8 + 4u);
}

TEST(CsrGraphTest, RowIndexConsistency) {
  const CsrGraph g = MakeDiamond();
  const auto row = g.row_index();
  ASSERT_EQ(row.size(), 5u);
  EXPECT_EQ(row[0], 0u);
  EXPECT_EQ(row[4], g.num_edges());
  for (size_t i = 1; i < row.size(); ++i) {
    EXPECT_LE(row[i - 1], row[i]);
  }
}

TEST(CsrGraphTest, SummaryMentionsCounts) {
  const CsrGraph g = MakeDiamond();
  const std::string s = g.Summary();
  EXPECT_NE(s.find("|V|=4"), std::string::npos);
  EXPECT_NE(s.find("|E|=4"), std::string::npos);
}

TEST(CsrGraphTest, EmptyAdjacency) {
  GraphBuilder builder(2, false);
  builder.AddEdge(0, 1);
  const CsrGraph g = std::move(builder).Build();
  EXPECT_TRUE(g.Neighbors(1).empty());
  EXPECT_TRUE(g.NeighborWeights(1).empty());
}

}  // namespace
}  // namespace lightrw::graph
