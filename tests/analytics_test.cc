#include <gtest/gtest.h>

#include "analytics/embedding.h"
#include "analytics/link_prediction.h"
#include "apps/walk_app.h"
#include "graph/builder.h"
#include "lightrw/functional_engine.h"
#include "rng/rng.h"

namespace lightrw::analytics {
namespace {

using graph::CsrGraph;
using graph::VertexId;

// Two 8-cliques joined by a single bridge edge: walks stay inside their
// clique, so embeddings should separate the communities.
CsrGraph MakeTwoCliques() {
  constexpr VertexId kSize = 8;
  graph::GraphBuilder builder(2 * kSize, /*undirected=*/true);
  for (VertexId c = 0; c < 2; ++c) {
    const VertexId base = c * kSize;
    for (VertexId i = 0; i < kSize; ++i) {
      for (VertexId j = i + 1; j < kSize; ++j) {
        builder.AddEdge(base + i, base + j);
      }
    }
  }
  builder.AddEdge(0, kSize);  // bridge
  return std::move(builder).Build();
}

WalkOutput MakeCorpus(const CsrGraph& g) {
  apps::StaticWalkApp app;
  core::AcceleratorConfig config;
  config.seed = 3;
  core::FunctionalEngine engine(&g, &app, config);
  std::vector<apps::WalkQuery> queries;
  for (int round = 0; round < 30; ++round) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      queries.push_back({v, 20});
    }
  }
  WalkOutput corpus;
  engine.Run(queries, &corpus);
  return corpus;
}

TEST(EmbeddingTest, ShapeAndAccess) {
  Embedding e(10, 16);
  EXPECT_EQ(e.num_vertices(), 10u);
  EXPECT_EQ(e.dimensions(), 16u);
  EXPECT_EQ(e.Vector(3).size(), 16u);
  auto v = e.MutableVector(3);
  v[0] = 1.0f;
  EXPECT_EQ(e.Vector(3)[0], 1.0f);
}

TEST(EmbeddingTest, CosineSimilarityBasics) {
  Embedding e(3, 2);
  auto a = e.MutableVector(0);
  a[0] = 1.0f;
  a[1] = 0.0f;
  auto b = e.MutableVector(1);
  b[0] = 0.0f;
  b[1] = 2.0f;
  auto c = e.MutableVector(2);
  c[0] = 3.0f;
  c[1] = 0.0f;
  EXPECT_NEAR(e.CosineSimilarity(0, 1), 0.0, 1e-9);
  EXPECT_NEAR(e.CosineSimilarity(0, 2), 1.0, 1e-9);
}

TEST(EmbeddingTest, ZeroVectorSimilarityIsZero) {
  Embedding e(2, 4);
  EXPECT_EQ(e.CosineSimilarity(0, 1), 0.0);
}

TEST(EmbeddingTest, TrainingSeparatesCommunities) {
  const CsrGraph g = MakeTwoCliques();
  const WalkOutput corpus = MakeCorpus(g);
  EmbeddingConfig config;
  config.epochs = 3;
  const Embedding embedding = TrainEmbedding(corpus, g.num_vertices(), config);

  // Average intra-clique similarity must exceed inter-clique similarity.
  double intra = 0.0, inter = 0.0;
  int intra_n = 0, inter_n = 0;
  for (VertexId u = 1; u < 8; ++u) {
    intra += embedding.CosineSimilarity(1, u == 1 ? 2 : u);
    ++intra_n;
    inter += embedding.CosineSimilarity(1, 8 + u);
    ++inter_n;
  }
  EXPECT_GT(intra / intra_n, inter / inter_n + 0.1);
}

TEST(EmbeddingTest, DeterministicPerSeed) {
  const CsrGraph g = MakeTwoCliques();
  const WalkOutput corpus = MakeCorpus(g);
  EmbeddingConfig config;
  config.epochs = 1;
  const Embedding a = TrainEmbedding(corpus, g.num_vertices(), config);
  const Embedding b = TrainEmbedding(corpus, g.num_vertices(), config);
  for (uint32_t d = 0; d < a.dimensions(); ++d) {
    EXPECT_EQ(a.Vector(0)[d], b.Vector(0)[d]);
  }
}

TEST(EmbeddingIoTest, RoundTrip) {
  Embedding original(5, 4);
  rng::Xoshiro256StarStar gen(2);
  for (VertexId v = 0; v < 5; ++v) {
    for (auto& x : original.MutableVector(v)) {
      x = static_cast<float>(gen.NextUnit());
    }
  }
  const std::string path = testing::TempDir() + "/lightrw_embed.bin";
  ASSERT_TRUE(WriteEmbedding(original, path).ok());
  auto loaded = ReadEmbedding(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->num_vertices(), 5u);
  ASSERT_EQ(loaded->dimensions(), 4u);
  for (VertexId v = 0; v < 5; ++v) {
    for (uint32_t d = 0; d < 4; ++d) {
      EXPECT_EQ(loaded->Vector(v)[d], original.Vector(v)[d]);
    }
  }
}

TEST(EmbeddingIoTest, RejectsGarbage) {
  const std::string path = testing::TempDir() + "/lightrw_embed_bad.bin";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("definitely not an embedding", f);
  std::fclose(f);
  EXPECT_FALSE(ReadEmbedding(path).ok());
}

TEST(EmbeddingIoTest, MissingFileIsIoError) {
  auto result = ReadEmbedding(testing::TempDir() + "/lightrw_embed_nope");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(LinkPredictionTest, AucAboveChanceOnStructuredGraph) {
  const CsrGraph g = MakeTwoCliques();
  const WalkOutput corpus = MakeCorpus(g);
  EmbeddingConfig config;
  config.epochs = 3;
  const Embedding embedding = TrainEmbedding(corpus, g.num_vertices(), config);
  const auto result = EvaluateLinkPrediction(g, embedding, 200, 9);
  EXPECT_GT(result.auc, 0.6);
  EXPECT_LE(result.auc, 1.0);
  EXPECT_EQ(result.positive_pairs, 200u);
  EXPECT_EQ(result.negative_pairs, 200u);
}

TEST(LinkPredictionTest, RandomEmbeddingNearChance) {
  const CsrGraph g = MakeTwoCliques();
  Embedding random(g.num_vertices(), 8);
  rng::Xoshiro256StarStar gen(4);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (auto& x : random.MutableVector(v)) {
      x = static_cast<float>(gen.NextUnit()) - 0.5f;
    }
  }
  const auto result = EvaluateLinkPrediction(g, random, 300, 9);
  EXPECT_GT(result.auc, 0.25);
  EXPECT_LT(result.auc, 0.75);
}

TEST(LinkPredictionTest, TopLinksExcludeExistingEdges) {
  const CsrGraph g = MakeTwoCliques();
  const WalkOutput corpus = MakeCorpus(g);
  const Embedding embedding =
      TrainEmbedding(corpus, g.num_vertices(), EmbeddingConfig{});
  std::vector<std::pair<VertexId, VertexId>> candidates;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (u != v) {
        candidates.emplace_back(u, v);
      }
    }
  }
  const auto top = PredictTopLinks(
      g, embedding, {candidates.data(), candidates.size()}, 10);
  EXPECT_EQ(top.size(), 10u);
  for (const auto& [u, v] : top) {
    EXPECT_FALSE(g.HasEdge(u, v));
  }
}

}  // namespace
}  // namespace lightrw::analytics
