#include <gtest/gtest.h>

#include "analytics/walk_stats.h"
#include "apps/walk_app.h"
#include "apps/weighted_metapath.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "lightrw/functional_engine.h"

namespace lightrw::analytics {
namespace {

using baseline::WalkOutput;

WalkOutput MakeCorpus() {
  WalkOutput corpus;
  corpus.vertices = {0, 1, 2,   // 2 hops
                     3,         // 0 hops
                     0, 1};     // 1 hop
  corpus.offsets = {0, 3, 4, 6};
  return corpus;
}

TEST(WalkStatsTest, BasicStats) {
  const CorpusStats stats = ComputeCorpusStats(MakeCorpus(), 5);
  EXPECT_EQ(stats.num_walks, 3u);
  EXPECT_EQ(stats.total_vertices, 6u);
  EXPECT_DOUBLE_EQ(stats.mean_length, 1.0);
  EXPECT_EQ(stats.max_length, 2u);
  EXPECT_EQ(stats.min_length, 0u);
  EXPECT_DOUBLE_EQ(stats.coverage, 4.0 / 5.0);  // vertex 4 never visited
}

TEST(WalkStatsTest, VisitCounts) {
  const auto counts = VisitCounts(MakeCorpus(), 5);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(counts[4], 0u);
}

TEST(WalkStatsTest, LengthHistogram) {
  const auto histogram = LengthHistogram(MakeCorpus(), 2);
  ASSERT_EQ(histogram.size(), 3u);
  EXPECT_EQ(histogram[0], 1u);  // the 0-hop walk
  EXPECT_EQ(histogram[1], 1u);
  EXPECT_EQ(histogram[2], 1u);
}

TEST(WalkStatsTest, OverflowBucketCollectsLongWalks) {
  const auto histogram = LengthHistogram(MakeCorpus(), 1);
  ASSERT_EQ(histogram.size(), 2u);
  EXPECT_EQ(histogram[0], 1u);
  EXPECT_EQ(histogram[1], 2u);  // 1-hop and 2-hop walks overflow
}

TEST(WalkStatsTest, EmptyCorpus) {
  const CorpusStats stats = ComputeCorpusStats(WalkOutput{}, 10);
  EXPECT_EQ(stats.num_walks, 0u);
  EXPECT_DOUBLE_EQ(stats.coverage, 0.0);
}

TEST(WalkStatsTest, SkewTrackedOnRealCorpus) {
  const graph::CsrGraph g = graph::MakeDatasetStandIn(
      graph::Dataset::kLiveJournal, /*scale_shift=*/11, 3);
  apps::StaticWalkApp app;
  core::AcceleratorConfig config;
  core::FunctionalEngine engine(&g, &app, config);
  const auto queries = apps::MakeVertexQueries(g, 20, 1);
  WalkOutput corpus;
  engine.Run(queries, &corpus);
  const CorpusStats stats = ComputeCorpusStats(corpus, g.num_vertices());
  EXPECT_GT(stats.coverage, 0.5);
  // Power-law visit concentration: the hot 1% get far more than 1%.
  EXPECT_GT(stats.top1pct_visit_share, 0.05);
  EXPECT_LE(stats.top1pct_visit_share, 1.0);
}

}  // namespace
}  // namespace lightrw::analytics

namespace lightrw::apps {
namespace {

graph::CsrGraph MakeRelationGraph() {
  graph::GraphBuilder builder(3, false);
  builder.AddEdge(0, 1, /*weight=*/2, /*relation=*/1);
  builder.AddEdge(0, 2, /*weight=*/2, /*relation=*/2);
  return std::move(builder).Build();
}

TEST(WeightedMetaPathTest, BinaryTablesMatchPlainMetaPath) {
  const graph::CsrGraph g = MakeRelationGraph();
  const std::vector<graph::Relation> path = {1, 2};
  const MetaPathApp plain(path);
  const auto weighted = WeightedMetaPathApp::FromRelationPath(path);
  WalkState state;
  state.curr = 0;
  for (uint32_t step = 0; step < 3; ++step) {
    state.step = step;
    for (graph::VertexId dst : {1u, 2u}) {
      for (graph::Relation r : {1, 2}) {
        EXPECT_EQ(plain.DynamicWeight(g, state, dst, 2, r),
                  weighted.DynamicWeight(g, state, dst, 2, r))
            << "step " << step << " rel " << int(r);
      }
    }
  }
}

TEST(WeightedMetaPathTest, GradedRelationWeights) {
  const graph::CsrGraph g = MakeRelationGraph();
  WeightedMetaPathApp::RelationTable table{};
  table[1] = 3;  // prefer relation 1 3:1 over relation 2
  table[2] = 1;
  WeightedMetaPathApp app({table});
  WalkState state;
  state.step = 0;
  EXPECT_EQ(app.DynamicWeight(g, state, 1, 2, 1), 6u);
  EXPECT_EQ(app.DynamicWeight(g, state, 2, 2, 2), 2u);
  EXPECT_EQ(app.DynamicWeight(g, state, 2, 2, 0), 0u);
  state.step = 1;  // beyond the path
  EXPECT_EQ(app.DynamicWeight(g, state, 1, 2, 1), 0u);
}

TEST(WeightedMetaPathTest, PathLength) {
  const auto app = WeightedMetaPathApp::FromRelationPath({1, 2, 1});
  EXPECT_EQ(app.path_length(), 3u);
  EXPECT_EQ(app.name(), "WeightedMetaPath");
}

}  // namespace
}  // namespace lightrw::apps
