#include <gtest/gtest.h>

#include <vector>

#include "apps/ppr.h"
#include "apps/walk_app.h"
#include "distributed/config_validation.h"
#include "distributed/dist_engine.h"
#include "distributed/partition.h"
#include "graph/generators.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/arrival.h"
#include "service/walk_service.h"

namespace lightrw::service {
namespace {

using apps::StaticWalkApp;
using apps::WalkQuery;
using distributed::DistributedEngine;
using distributed::MakePartition;
using distributed::Partition;
using distributed::PartitionStrategy;
using graph::CsrGraph;

CsrGraph TestGraph() {
  return graph::MakeDatasetStandIn(graph::Dataset::kLiveJournal,
                                   /*scale_shift=*/11, /*seed=*/4);
}

ServiceConfig BaseConfig() {
  ServiceConfig config;
  config.cluster.board.num_instances = 1;
  config.cluster.board.seed = 13;
  config.arrivals.seed = 7;
  config.arrivals.num_queries = 128;
  config.arrivals.walk_length = 16;
  config.arrivals.rate_per_kcycle = 0.05;  // leisurely: no queue buildup
  return config;
}

// Offered load beyond what the boards can sustain, with deadlines
// tight enough that queueing delay pushes completions past them.
ServiceConfig OverloadConfig() {
  ServiceConfig config = BaseConfig();
  config.arrivals.num_queries = 512;
  config.arrivals.walk_length = 32;
  config.arrivals.rate_per_kcycle = 2.0;
  config.arrivals.deadline_cycles = 1 << 14;
  config.queue_capacity = 8;
  config.retry_budget = 1;
  config.retry_backoff_cycles = 256;
  config.cluster.inflight_walkers_per_board = 8;
  return config;
}

// --- config validation: one test per rejected field -----------------------

TEST(ServiceValidationTest, AcceptsDefaults) {
  EXPECT_TRUE(ValidateServiceConfig(BaseConfig()).ok());
}

TEST(ServiceValidationTest, RejectsZeroQueueCapacity) {
  ServiceConfig config = BaseConfig();
  config.queue_capacity = 0;
  EXPECT_FALSE(ValidateServiceConfig(config).ok());
}

TEST(ServiceValidationTest, RejectsZeroBackoffWithRetriesEnabled) {
  ServiceConfig config = BaseConfig();
  config.retry_budget = 1;
  config.retry_backoff_cycles = 0;
  EXPECT_FALSE(ValidateServiceConfig(config).ok());
}

TEST(ServiceValidationTest, AcceptsZeroBackoffWithRetriesDisabled) {
  ServiceConfig config = BaseConfig();
  config.retry_budget = 0;
  config.retry_backoff_cycles = 0;
  EXPECT_TRUE(ValidateServiceConfig(config).ok());
}

TEST(ServiceValidationTest, RejectsZeroBreakerThreshold) {
  ServiceConfig config = BaseConfig();
  config.breaker_failure_threshold = 0;
  EXPECT_FALSE(ValidateServiceConfig(config).ok());
}

TEST(ServiceValidationTest, RejectsZeroBreakerCooldown) {
  ServiceConfig config = BaseConfig();
  config.breaker_cooldown_cycles = 0;
  EXPECT_FALSE(ValidateServiceConfig(config).ok());
}

TEST(ServiceValidationTest, RejectsOutOfRangeShortenOccupancy) {
  ServiceConfig config = BaseConfig();
  config.degrade_shorten_occupancy = 0.0;
  EXPECT_FALSE(ValidateServiceConfig(config).ok());
  config.degrade_shorten_occupancy = 1.5;
  EXPECT_FALSE(ValidateServiceConfig(config).ok());
}

TEST(ServiceValidationTest, RejectsOutOfRangeUniformOccupancy) {
  ServiceConfig config = BaseConfig();
  config.degrade_uniform_occupancy = 0.0;
  EXPECT_FALSE(ValidateServiceConfig(config).ok());
  config.degrade_uniform_occupancy = 1.5;
  EXPECT_FALSE(ValidateServiceConfig(config).ok());
}

TEST(ServiceValidationTest, RejectsUniformTierBelowShortenTier) {
  ServiceConfig config = BaseConfig();
  config.degrade_shorten_occupancy = 0.8;
  config.degrade_uniform_occupancy = 0.5;
  EXPECT_FALSE(ValidateServiceConfig(config).ok());
}

TEST(ServiceValidationTest, RejectsOutOfRangeShortenFactor) {
  ServiceConfig config = BaseConfig();
  config.degrade_shorten_factor = 0.0;
  EXPECT_FALSE(ValidateServiceConfig(config).ok());
  config.degrade_shorten_factor = 2.0;
  EXPECT_FALSE(ValidateServiceConfig(config).ok());
}

TEST(ServiceValidationTest, RejectsInvalidNestedClusterConfig) {
  ServiceConfig config = BaseConfig();
  config.cluster.walker_message_bytes = 0;
  EXPECT_FALSE(ValidateServiceConfig(config).ok());
}

TEST(ArrivalValidationTest, RejectsZeroQueries) {
  ArrivalConfig config;
  config.num_queries = 0;
  EXPECT_FALSE(ValidateArrivalConfig(config).ok());
}

TEST(ArrivalValidationTest, RejectsZeroWalkLength) {
  ArrivalConfig config;
  config.walk_length = 0;
  EXPECT_FALSE(ValidateArrivalConfig(config).ok());
}

TEST(ArrivalValidationTest, RejectsNonPositiveRate) {
  ArrivalConfig config;
  config.rate_per_kcycle = 0.0;
  EXPECT_FALSE(ValidateArrivalConfig(config).ok());
  config.rate_per_kcycle = -1.0;
  EXPECT_FALSE(ValidateArrivalConfig(config).ok());
}

TEST(ArrivalValidationTest, RejectsNonPositiveBurstFactor) {
  ArrivalConfig config;
  config.burst_factor = 0.0;
  EXPECT_FALSE(ValidateArrivalConfig(config).ok());
}

TEST(ArrivalValidationTest, RejectsBurstOffWithoutBurstOn) {
  ArrivalConfig config;
  config.burst_off_cycles = 100;
  EXPECT_FALSE(ValidateArrivalConfig(config).ok());
}

TEST(ArrivalValidationTest, RejectsOutOfRangeBestEffortFraction) {
  ArrivalConfig config;
  config.best_effort_fraction = -0.1;
  EXPECT_FALSE(ValidateArrivalConfig(config).ok());
  config.best_effort_fraction = 1.1;
  EXPECT_FALSE(ValidateArrivalConfig(config).ok());
}

// --- arrival generation ---------------------------------------------------

TEST(ArrivalTest, DeterministicAndSortedWithDeadlines) {
  const CsrGraph g = TestGraph();
  ArrivalConfig config;
  config.num_queries = 200;
  config.deadline_cycles = 5000;
  const auto a = GenerateArrivals(config, g).value();
  const auto b = GenerateArrivals(config, g).value();
  ASSERT_EQ(a.size(), 200u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].query.start, b[i].query.start);
    EXPECT_EQ(a[i].best_effort, b[i].best_effort);
    EXPECT_EQ(a[i].deadline, a[i].arrival + 5000);
    EXPECT_GT(g.Degree(a[i].query.start), 0u);
    if (i > 0) {
      EXPECT_GE(a[i].arrival, a[i - 1].arrival);
    }
  }
}

TEST(ArrivalTest, RateControlsDensity) {
  const CsrGraph g = TestGraph();
  ArrivalConfig slow;
  slow.num_queries = 256;
  slow.rate_per_kcycle = 1.0;
  ArrivalConfig fast = slow;
  fast.rate_per_kcycle = 10.0;
  const auto a = GenerateArrivals(slow, g).value();
  const auto b = GenerateArrivals(fast, g).value();
  // 10x the rate compresses the span by roughly 10x.
  EXPECT_GT(a.back().arrival, b.back().arrival * 5);
}

TEST(ArrivalTest, BurstsCompressArrivals) {
  const CsrGraph g = TestGraph();
  ArrivalConfig steady;
  steady.num_queries = 512;
  steady.rate_per_kcycle = 1.0;
  ArrivalConfig bursty = steady;
  bursty.burst_factor = 8.0;
  bursty.burst_on_cycles = 1 << 14;
  bursty.burst_off_cycles = 1 << 14;
  const auto a = GenerateArrivals(steady, g).value();
  const auto b = GenerateArrivals(bursty, g).value();
  // The burst phases serve queries faster, shortening the total span.
  EXPECT_LT(b.back().arrival, a.back().arrival);
}

TEST(ArrivalTest, FailsOnGraphWithNoEdges) {
  const CsrGraph g;  // empty
  ArrivalConfig config;
  EXPECT_FALSE(GenerateArrivals(config, g).ok());
}

// --- service behaviour ----------------------------------------------------

TEST(WalkServiceTest, LowLoadCompletesEverythingUnshedAndUndegraded) {
  const CsrGraph g = TestGraph();
  StaticWalkApp app;
  const Partition p = MakePartition(g, 4, PartitionStrategy::kHash);
  WalkService service(&g, &app, &p, BaseConfig());
  const auto stats = service.Run().value();
  EXPECT_EQ(stats.offered, 128u);
  EXPECT_EQ(stats.completed, 128u);
  EXPECT_EQ(stats.Shed(), 0u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.degraded, 0u);
  EXPECT_EQ(stats.deadline_violations, 0u);
  EXPECT_EQ(stats.breaker_trips, 0u);
}

// The golden equivalence the per-ticket RNG design buys: at low load the
// service delivers byte-identical walks to a direct batch run over the
// same query list.
TEST(WalkServiceTest, LowLoadMatchesBatchEngineWalks) {
  const CsrGraph g = TestGraph();
  StaticWalkApp app;
  const Partition p = MakePartition(g, 4, PartitionStrategy::kHash);
  const ServiceConfig config = BaseConfig();

  WalkService service(&g, &app, &p, config);
  baseline::WalkOutput service_out;
  const auto service_stats = service.Run(&service_out).value();
  ASSERT_EQ(service_stats.completed, service_stats.offered);

  const auto arrivals = GenerateArrivals(config.arrivals, g).value();
  std::vector<WalkQuery> queries;
  queries.reserve(arrivals.size());
  for (const ServiceQuery& sq : arrivals) {
    queries.push_back(sq.query);
  }
  DistributedEngine engine(&g, &app, &p, config.cluster);
  baseline::WalkOutput batch_out;
  engine.Run(queries, &batch_out).value();

  EXPECT_EQ(service_out.offsets, batch_out.offsets);
  EXPECT_EQ(service_out.vertices, batch_out.vertices);
}

TEST(WalkServiceTest, LowLoadMatchesBatchEngineWalksWithEarlyStopping) {
  const CsrGraph g = TestGraph();
  apps::PprApp app(0.2);  // geometric stopping exercises the aux stream
  const Partition p = MakePartition(g, 2, PartitionStrategy::kRange);
  ServiceConfig config = BaseConfig();
  config.arrivals.walk_length = 64;

  WalkService service(&g, &app, &p, config);
  baseline::WalkOutput service_out;
  service.Run(&service_out).value();

  const auto arrivals = GenerateArrivals(config.arrivals, g).value();
  std::vector<WalkQuery> queries;
  for (const ServiceQuery& sq : arrivals) {
    queries.push_back(sq.query);
  }
  DistributedEngine engine(&g, &app, &p, config.cluster);
  baseline::WalkOutput batch_out;
  engine.Run(queries, &batch_out).value();

  EXPECT_EQ(service_out.offsets, batch_out.offsets);
  EXPECT_EQ(service_out.vertices, batch_out.vertices);
}

TEST(WalkServiceTest, SameSeedSameDecisions) {
  const CsrGraph g = TestGraph();
  StaticWalkApp app;
  const Partition p = MakePartition(g, 2, PartitionStrategy::kHash);
  const ServiceConfig config = OverloadConfig();
  WalkService a(&g, &app, &p, config);
  WalkService b(&g, &app, &p, config);
  baseline::WalkOutput out_a;
  baseline::WalkOutput out_b;
  const auto sa = a.Run(&out_a).value();
  const auto sb = b.Run(&out_b).value();
  EXPECT_EQ(sa.completed, sb.completed);
  EXPECT_EQ(sa.shed_queue_full, sb.shed_queue_full);
  EXPECT_EQ(sa.shed_breaker, sb.shed_breaker);
  EXPECT_EQ(sa.shed_deadline, sb.shed_deadline);
  EXPECT_EQ(sa.failed, sb.failed);
  EXPECT_EQ(sa.retries, sb.retries);
  EXPECT_EQ(sa.degraded, sb.degraded);
  EXPECT_EQ(sa.degraded_shortened, sb.degraded_shortened);
  EXPECT_EQ(sa.degraded_uniform, sb.degraded_uniform);
  EXPECT_EQ(sa.cycles, sb.cycles);
  EXPECT_EQ(a.outcomes(), b.outcomes());
  EXPECT_EQ(out_a.offsets, out_b.offsets);
  EXPECT_EQ(out_a.vertices, out_b.vertices);
}

TEST(WalkServiceTest, OverloadShedsAndAccountsEveryQueryOnce) {
  const CsrGraph g = TestGraph();
  StaticWalkApp app;
  const Partition p = MakePartition(g, 2, PartitionStrategy::kHash);
  WalkService service(&g, &app, &p, OverloadConfig());
  const auto stats = service.Run().value();
  EXPECT_GT(stats.Shed(), 0u);
  EXPECT_GT(stats.completed, 0u);
  // The core accounting invariant: one terminal outcome per query.
  EXPECT_EQ(stats.completed + stats.Shed() + stats.failed, stats.offered);
  EXPECT_EQ(service.outcomes().size(), stats.offered);
  EXPECT_GT(stats.queue_delay_cycles.count(), 0u);
}

TEST(WalkServiceTest, DegradationProducesValidShortenedWalks) {
  const CsrGraph g = TestGraph();
  StaticWalkApp app;
  const Partition p = MakePartition(g, 2, PartitionStrategy::kHash);
  const ServiceConfig config = OverloadConfig();
  WalkService service(&g, &app, &p, config);
  baseline::WalkOutput out;
  const auto stats = service.Run(&out).value();
  EXPECT_GT(stats.degraded, 0u);
  EXPECT_GE(stats.degraded_shortened, stats.degraded_uniform);
  ASSERT_EQ(out.num_paths(), stats.offered);
  for (size_t i = 0; i < out.num_paths(); ++i) {
    const auto path = out.Path(i);
    // Shed queries deliver nothing; completed ones deliver a valid walk
    // no longer than requested.
    EXPECT_LE(path.size(), config.arrivals.walk_length + 1u);
    for (size_t s = 1; s < path.size(); ++s) {
      EXPECT_TRUE(g.HasEdge(path[s - 1], path[s]));
    }
  }
}

TEST(WalkServiceTest, DegradationLowersDeadlineViolations) {
  const CsrGraph g = TestGraph();
  StaticWalkApp app;
  const Partition p = MakePartition(g, 2, PartitionStrategy::kHash);
  ServiceConfig degraded = OverloadConfig();
  degraded.degrade_enabled = true;
  ServiceConfig rigid = OverloadConfig();
  rigid.degrade_enabled = false;
  const auto with =
      WalkService(&g, &app, &p, degraded).Run().value();
  const auto without =
      WalkService(&g, &app, &p, rigid).Run().value();
  EXPECT_GT(with.degraded, 0u);
  EXPECT_EQ(without.degraded, 0u);
  // Shorter, cheaper walks drain the backlog faster: strictly fewer
  // completions land past their deadline.
  EXPECT_LT(with.deadline_violations, without.deadline_violations);
}

TEST(WalkServiceTest, BoardDeathTripsBreakerAndReroutes) {
  const CsrGraph g = TestGraph();
  StaticWalkApp app;
  const Partition p = MakePartition(g, 4, PartitionStrategy::kHash);
  ServiceConfig config = BaseConfig();
  config.arrivals.num_queries = 256;
  config.arrivals.rate_per_kcycle = 2.0;
  config.retry_budget = 3;
  config.cluster.board.faults.enabled = true;
  config.cluster.board.faults.fail_board = 1;
  config.cluster.board.faults.fail_cycle = 1 << 14;
  WalkService service(&g, &app, &p, config);
  const auto stats = service.Run().value();
  EXPECT_EQ(stats.cluster.reliability.board_failures, 1u);
  EXPECT_GE(stats.breaker_trips, 1u);
  EXPECT_GT(stats.retries, 0u);
  // Queries re-route onto survivors: the vast majority still completes,
  // and every query has exactly one outcome (never shed AND completed).
  EXPECT_EQ(stats.completed + stats.Shed() + stats.failed, stats.offered);
  EXPECT_GT(stats.completed, stats.offered * 3 / 4);
  size_t terminal = 0;
  for (const QueryOutcome outcome : service.outcomes()) {
    EXPECT_NE(outcome, QueryOutcome::kPending);
    ++terminal;
  }
  EXPECT_EQ(terminal, stats.offered);
}

TEST(WalkServiceTest, FailoverUnsatisfiableOnSingleBoard) {
  const CsrGraph g = TestGraph();
  StaticWalkApp app;
  const Partition p = MakePartition(g, 1, PartitionStrategy::kHash);
  ServiceConfig config = BaseConfig();
  config.cluster.board.faults.enabled = true;
  config.cluster.board.faults.fail_board = 0;
  config.cluster.board.faults.fail_cycle = 1000;
  WalkService service(&g, &app, &p, config);
  EXPECT_FALSE(service.Run().ok());
}

TEST(WalkServiceTest, RunRejectsInvalidConfig) {
  const CsrGraph g = TestGraph();
  StaticWalkApp app;
  const Partition p = MakePartition(g, 2, PartitionStrategy::kHash);
  ServiceConfig config = BaseConfig();
  config.queue_capacity = 0;
  WalkService service(&g, &app, &p, config);
  const auto result = service.Run();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(WalkServiceTest, SloSummaryMatchesStats) {
  const CsrGraph g = TestGraph();
  StaticWalkApp app;
  const Partition p = MakePartition(g, 2, PartitionStrategy::kHash);
  WalkService service(&g, &app, &p, OverloadConfig());
  const auto stats = service.Run().value();
  const core::SloSummary slo = stats.Slo();
  EXPECT_TRUE(slo.Any());
  EXPECT_EQ(slo.offered, stats.offered);
  EXPECT_EQ(slo.completed, stats.completed);
  EXPECT_EQ(slo.shed, stats.Shed());
  EXPECT_DOUBLE_EQ(slo.shed_rate, stats.ShedRate());
  EXPECT_DOUBLE_EQ(slo.violation_rate, stats.ViolationRate());
  EXPECT_GT(slo.queue_delay_p99 + 1.0, slo.queue_delay_p50);
  const std::string section = core::FormatSloSection(slo);
  EXPECT_NE(section.find("goodput"), std::string::npos);
  EXPECT_NE(section.find("shed rate"), std::string::npos);
}

// Overload instrumentation: the shared metrics registry picks up the
// queue histograms and overload counters, and the trace records instant
// events for every shed and degrade decision.
TEST(WalkServiceTest, OverloadPublishesMetricsAndTraceInstants) {
  const CsrGraph g = TestGraph();
  StaticWalkApp app;
  const Partition p = MakePartition(g, 2, PartitionStrategy::kHash);
  ServiceConfig config = OverloadConfig();
  obs::MetricsRegistry metrics;
  obs::TraceRecorder trace;
  config.cluster.board.metrics = &metrics;
  config.cluster.board.trace = &trace;
  WalkService service(&g, &app, &p, config);
  const auto stats = service.Run().value();
  ASSERT_GT(stats.Shed(), 0u);
  ASSERT_GT(stats.degraded, 0u);

  const SampleStats delays =
      metrics.GetHistogram("service.queue_delay_cycles")->Snapshot();
  EXPECT_EQ(delays.count(), stats.queue_delay_cycles.count());
  EXPECT_GT(metrics.GetHistogram("service.queue_depth", {{"board", "0"}})
                ->Snapshot()
                .count(),
            0u);
  EXPECT_EQ(metrics.GetHistogram("service.latency_cycles")
                ->Snapshot()
                .count(),
            stats.completed);
  uint64_t shed_counted = 0;
  for (const char* reason : {"queue_full", "breaker_open", "deadline"}) {
    shed_counted +=
        metrics.GetCounter("service.shed", {{"reason", reason}})->value();
  }
  EXPECT_EQ(shed_counted, stats.Shed());
  uint64_t degrade_counted = 0;
  for (const char* tier : {"shorten", "uniform"}) {
    degrade_counted +=
        metrics.GetCounter("service.degraded", {{"tier", tier}})->value();
  }
  EXPECT_GT(degrade_counted, 0u);
  EXPECT_EQ(metrics.GetCounter("service.retries")->value(), stats.retries);

  const std::string trace_json = trace.ToJsonString();
  EXPECT_NE(trace_json.find("\"shed\""), std::string::npos);
  EXPECT_NE(trace_json.find("\"degrade\""), std::string::npos);
}

}  // namespace
}  // namespace lightrw::service
