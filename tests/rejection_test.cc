#include <cmath>
#include <map>

#include <gtest/gtest.h>

#include "baseline/rejection.h"
#include "graph/builder.h"
#include "graph/generators.h"

namespace lightrw::baseline {
namespace {

using graph::CsrGraph;
using graph::VertexId;

TEST(RejectionWalkerTest, DeadEndReturnsInvalid) {
  graph::GraphBuilder builder(2, false);
  builder.AddEdge(0, 1);
  const CsrGraph g = std::move(builder).Build();
  Node2VecRejectionWalker walker(&g, 2.0, 0.5, 1);
  EXPECT_EQ(walker.SampleNext(1, 0), graph::kInvalidVertex);
}

TEST(RejectionWalkerTest, FirstStepMatchesStaticWeights) {
  graph::GraphBuilder builder(4, false);
  builder.AddEdge(0, 1, 1);
  builder.AddEdge(0, 2, 2);
  builder.AddEdge(0, 3, 7);
  const CsrGraph g = std::move(builder).Build();
  Node2VecRejectionWalker walker(&g, 2.0, 0.5, 3);
  std::map<VertexId, int> counts;
  constexpr int kTrials = 50000;
  for (int t = 0; t < kTrials; ++t) {
    ++counts[walker.SampleNext(0, graph::kInvalidVertex)];
  }
  EXPECT_NEAR(counts[1], kTrials * 0.1, 5 * std::sqrt(kTrials * 0.1));
  EXPECT_NEAR(counts[2], kTrials * 0.2, 5 * std::sqrt(kTrials * 0.2));
  EXPECT_NEAR(counts[3], kTrials * 0.7, 5 * std::sqrt(kTrials * 0.7));
  EXPECT_DOUBLE_EQ(walker.TrialsPerSample(), 1.0);
}

TEST(RejectionWalkerTest, SecondOrderMatchesEquationTwo) {
  // Same topology as the functional-engine second-order test: from 1 with
  // prev 0, the Eq. (2) weights of {0, 2, 3} are {1/p, 1, 1/q}.
  graph::GraphBuilder builder(4, false);
  builder.AddEdge(0, 1, 1);
  builder.AddEdge(0, 2, 1);
  builder.AddEdge(1, 0, 1);
  builder.AddEdge(1, 2, 1);
  builder.AddEdge(1, 3, 1);
  builder.AddEdge(2, 1, 1);
  builder.AddEdge(3, 1, 1);
  const CsrGraph g = std::move(builder).Build();

  const double p = 2.0, q = 0.5;
  Node2VecRejectionWalker walker(&g, p, q, 7);
  std::map<VertexId, int> counts;
  constexpr int kTrials = 90000;
  for (int t = 0; t < kTrials; ++t) {
    const VertexId next = walker.SampleNext(1, 0);
    ASSERT_NE(next, graph::kInvalidVertex);
    ++counts[next];
  }
  const double total = 0.5 + 1.0 + 2.0;
  const auto expect_share = [&](VertexId v, double w) {
    const double expected = kTrials * w / total;
    EXPECT_NEAR(counts[v], expected, 5 * std::sqrt(expected)) << "v=" << v;
  };
  expect_share(0, 0.5);
  expect_share(2, 1.0);
  expect_share(3, 2.0);
  // With scales {0.5, 1, 2} and s_max=2, the mean acceptance is
  // (0.5/2 + 1/2 + 2/2)/3 = 7/12, so ~12/7 trials per sample.
  EXPECT_NEAR(walker.TrialsPerSample(), 12.0 / 7.0, 0.05);
}

TEST(RejectionWalkerTest, UniformPandQNeverRejects) {
  const CsrGraph g = graph::MakeDatasetStandIn(graph::Dataset::kYoutube,
                                               /*scale_shift=*/11, 9);
  Node2VecRejectionWalker walker(&g, 1.0, 1.0, 5);
  VertexId curr = 0, prev = graph::kInvalidVertex;
  for (int i = 0; i < 5000; ++i) {
    const VertexId next = walker.SampleNext(curr, prev);
    if (next == graph::kInvalidVertex) {
      curr = static_cast<VertexId>(i % g.num_vertices());
      prev = graph::kInvalidVertex;
      continue;
    }
    prev = curr;
    curr = next;
  }
  EXPECT_DOUBLE_EQ(walker.TrialsPerSample(), 1.0);
}

TEST(RejectionWalkerTest, WalksValidOnRealisticGraph) {
  const CsrGraph g = graph::MakeDatasetStandIn(graph::Dataset::kLiveJournal,
                                               /*scale_shift=*/11, 4);
  Node2VecRejectionWalker walker(&g, 2.0, 0.5, 11);
  VertexId curr = 0, prev = graph::kInvalidVertex;
  int steps = 0;
  for (int i = 0; i < 3000; ++i) {
    const VertexId next = walker.SampleNext(curr, prev);
    if (next == graph::kInvalidVertex) {
      curr = static_cast<VertexId>((i * 7) % g.num_vertices());
      prev = graph::kInvalidVertex;
      continue;
    }
    ASSERT_TRUE(g.HasEdge(curr, next));
    prev = curr;
    curr = next;
    ++steps;
  }
  EXPECT_GT(steps, 1000);
  // p=2, q=0.5: s_max = 2, acceptance >= 0.25 -> at most 4 expected trials.
  EXPECT_LT(walker.TrialsPerSample(), 4.0);
}

}  // namespace
}  // namespace lightrw::baseline
