#include <gtest/gtest.h>

#include "apps/walk_app.h"
#include "baseline/engine.h"
#include "baseline/llc_model.h"
#include "graph/builder.h"
#include "graph/generators.h"

namespace lightrw::baseline {
namespace {

using apps::MetaPathApp;
using apps::Node2VecApp;
using apps::StaticWalkApp;
using apps::WalkQuery;
using graph::CsrGraph;
using graph::VertexId;

// Checks every produced path: starts at the query vertex and every hop is
// a real edge.
void ExpectValidWalks(const CsrGraph& g,
                      std::span<const WalkQuery> queries,
                      const WalkOutput& output, uint32_t max_length) {
  ASSERT_EQ(output.num_paths(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    const auto path = output.Path(i);
    ASSERT_GE(path.size(), 1u);
    ASSERT_LE(path.size(), static_cast<size_t>(max_length) + 1);
    EXPECT_EQ(path[0], queries[i].start);
    for (size_t s = 1; s < path.size(); ++s) {
      EXPECT_TRUE(g.HasEdge(path[s - 1], path[s]))
          << "query " << i << " hop " << s;
    }
  }
}

class BaselineSamplerTest
    : public ::testing::TestWithParam<sampling::SamplerKind> {};

TEST_P(BaselineSamplerTest, ProducesValidWalks) {
  graph::RmatOptions options;
  options.scale = 9;
  options.seed = 17;
  const CsrGraph g = GenerateRmat(options);
  StaticWalkApp app;
  BaselineConfig config;
  config.sampler = GetParam();
  BaselineEngine engine(&g, &app, config);
  const auto queries = apps::MakeVertexQueries(g, /*length=*/10, /*seed=*/3,
                                               /*max_queries=*/200);
  WalkOutput output;
  const auto stats = engine.Run(queries, &output);
  EXPECT_EQ(stats.queries, queries.size());
  EXPECT_GT(stats.steps, 0u);
  EXPECT_GT(stats.edges_examined, stats.steps);
  ExpectValidWalks(g, queries, output, 10);
}

INSTANTIATE_TEST_SUITE_P(
    Samplers, BaselineSamplerTest,
    ::testing::Values(sampling::SamplerKind::kInverseTransform,
                      sampling::SamplerKind::kAlias,
                      sampling::SamplerKind::kReservoir,
                      sampling::SamplerKind::kParallelWrs),
    [](const auto& info) {
      return std::string(sampling::SamplerKindName(info.param));
    });

TEST(BaselineEngineTest, MetaPathRespectsRelationPath) {
  const CsrGraph g = graph::MakeDatasetStandIn(graph::Dataset::kYoutube,
                                               /*scale_shift=*/10, 5);
  const auto relation_path = apps::MakeRandomRelationPath(g, 5, 2);
  MetaPathApp app(relation_path);
  BaselineEngine engine(&g, &app, BaselineConfig{});
  const auto queries = apps::MakeVertexQueries(g, 5, 4, 300);
  WalkOutput output;
  engine.Run(queries, &output);
  for (size_t i = 0; i < output.num_paths(); ++i) {
    const auto path = output.Path(i);
    for (size_t s = 1; s < path.size(); ++s) {
      // The edge taken at step s-1 must carry relation_path[s-1].
      const VertexId u = path[s - 1];
      const auto neighbors = g.Neighbors(u);
      const auto relations = g.NeighborRelations(u);
      bool found = false;
      for (size_t j = 0; j < neighbors.size(); ++j) {
        if (neighbors[j] == path[s] &&
            relations[j] == relation_path[s - 1]) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << "step " << s << " violates relation path";
    }
  }
}

TEST(BaselineEngineTest, WalkStopsAtDeadEnd) {
  graph::GraphBuilder builder(3, false);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);  // 2 has no outgoing edges
  const CsrGraph g = std::move(builder).Build();
  StaticWalkApp app;
  BaselineEngine engine(&g, &app, BaselineConfig{});
  const std::vector<WalkQuery> queries = {{0, 10}};
  WalkOutput output;
  const auto stats = engine.Run(queries, &output);
  EXPECT_EQ(stats.steps, 2u);
  ASSERT_EQ(output.num_paths(), 1u);
  EXPECT_EQ(output.Path(0).size(), 3u);
}

TEST(BaselineEngineTest, ZeroLengthQuery) {
  graph::GraphBuilder builder(2, false);
  builder.AddEdge(0, 1);
  const CsrGraph g = std::move(builder).Build();
  StaticWalkApp app;
  BaselineEngine engine(&g, &app, BaselineConfig{});
  const std::vector<WalkQuery> queries = {{0, 0}};
  WalkOutput output;
  const auto stats = engine.Run(queries, &output);
  EXPECT_EQ(stats.queries, 1u);
  EXPECT_EQ(stats.steps, 0u);
  ASSERT_EQ(output.num_paths(), 1u);
  EXPECT_EQ(output.Path(0).size(), 1u);
}

TEST(BaselineEngineTest, DeterministicPerSeed) {
  graph::RmatOptions options;
  options.scale = 8;
  options.seed = 9;
  const CsrGraph g = GenerateRmat(options);
  StaticWalkApp app;
  BaselineConfig config;
  config.seed = 123;
  const auto queries = apps::MakeVertexQueries(g, 8, 6, 100);
  WalkOutput a, b;
  BaselineEngine(&g, &app, config).Run(queries, &a);
  BaselineEngine(&g, &app, config).Run(queries, &b);
  EXPECT_EQ(a.vertices, b.vertices);
  EXPECT_EQ(a.offsets, b.offsets);
}

TEST(BaselineEngineTest, ProfileCountersPopulated) {
  const CsrGraph g = graph::MakeDatasetStandIn(graph::Dataset::kYoutube,
                                               /*scale_shift=*/10, 5);
  StaticWalkApp app;
  BaselineConfig config;
  config.collect_profile = true;
  BaselineEngine engine(&g, &app, config);
  const auto queries = apps::MakeVertexQueries(g, 5, 4, 500);
  const auto stats = engine.Run(queries);
  const ProfileCounters& prof = stats.profile;
  EXPECT_GT(prof.neighbor_bytes, 0u);
  EXPECT_GT(prof.intermediate_bytes_written, 0u);
  EXPECT_EQ(prof.intermediate_bytes_written, prof.intermediate_bytes_read);
  // One row lookup per attempted step: every completed step plus at most
  // one failed attempt per query (dead end / all-zero weights).
  EXPECT_GE(prof.row_lookups, stats.steps);
  EXPECT_LE(prof.row_lookups, stats.steps + stats.queries);
  EXPECT_GT(prof.llc_hits + prof.llc_misses, 0u);
  EXPECT_GT(prof.memory_bound, 0.0);
  EXPECT_LT(prof.memory_bound, 1.0);
  EXPECT_GT(prof.retiring_ratio, 0.0);
  EXPECT_LT(prof.retiring_ratio, 1.0);
}

TEST(BaselineEngineTest, LatencyCollection) {
  const CsrGraph g = graph::MakeDatasetStandIn(graph::Dataset::kYoutube,
                                               /*scale_shift=*/11, 5);
  StaticWalkApp app;
  BaselineConfig config;
  config.collect_latency = true;
  BaselineEngine engine(&g, &app, config);
  const auto queries = apps::MakeVertexQueries(g, 5, 4, 64);
  const auto stats = engine.Run(queries);
  EXPECT_EQ(stats.query_latency_seconds.count(), queries.size());
  EXPECT_GT(stats.query_latency_seconds.Max(), 0.0);
}

TEST(BaselineEngineTest, MultithreadedRunCoversAllQueries) {
  graph::RmatOptions options;
  options.scale = 9;
  options.seed = 31;
  const CsrGraph g = GenerateRmat(options);
  StaticWalkApp app;
  BaselineConfig config;
  config.num_threads = 4;
  BaselineEngine engine(&g, &app, config);
  const auto queries = apps::MakeVertexQueries(g, 6, 8, 333);
  WalkOutput output;
  const auto stats = engine.Run(queries, &output);
  EXPECT_EQ(stats.queries, queries.size());
  EXPECT_EQ(output.num_paths(), queries.size());
}

TEST(BaselineEngineTest, Node2VecWalksValid) {
  const CsrGraph g = graph::MakeDatasetStandIn(graph::Dataset::kYoutube,
                                               /*scale_shift=*/11, 5);
  Node2VecApp app(2.0, 0.5);
  BaselineEngine engine(&g, &app, BaselineConfig{});
  const auto queries = apps::MakeVertexQueries(g, 12, 4, 100);
  WalkOutput output;
  const auto stats = engine.Run(queries, &output);
  EXPECT_EQ(stats.queries, queries.size());
  ExpectValidWalks(g, queries, output, 12);
}

TEST(LlcModelTest, HitsAfterFill) {
  LlcModel llc(/*capacity_bytes=*/1024, /*line_bytes=*/64);
  EXPECT_FALSE(llc.Probe(0));
  EXPECT_TRUE(llc.Probe(0));
  EXPECT_TRUE(llc.Probe(63));   // same line
  EXPECT_FALSE(llc.Probe(64));  // next line
  EXPECT_EQ(llc.hits(), 2u);
  EXPECT_EQ(llc.misses(), 2u);
}

TEST(LlcModelTest, ConflictEviction) {
  LlcModel llc(128, 64);  // two lines
  EXPECT_FALSE(llc.Probe(0));
  EXPECT_FALSE(llc.Probe(128));  // maps to the same set as 0 -> evicts
  EXPECT_FALSE(llc.Probe(0));    // miss again
}

TEST(LlcModelTest, ProbeRangeTouchesEachLineOnce) {
  LlcModel llc(4096, 64);
  llc.ProbeRange(10, 120);  // bytes 10..129 span lines 0, 1, 2
  EXPECT_EQ(llc.accesses(), 3u);
  llc.ProbeRange(0, 1);
  EXPECT_EQ(llc.hits(), 1u);
  llc.ProbeRange(64, 64);  // exactly line 1
  EXPECT_EQ(llc.hits(), 2u);
}

TEST(LlcModelTest, MissRatio) {
  LlcModel llc(4096, 64);
  EXPECT_EQ(llc.MissRatio(), 0.0);
  llc.Probe(0);
  llc.Probe(0);
  EXPECT_DOUBLE_EQ(llc.MissRatio(), 0.5);
}

}  // namespace
}  // namespace lightrw::baseline
