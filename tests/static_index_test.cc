#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/static_index.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "rng/rng.h"
#include "sampling/sampler.h"

namespace lightrw::baseline {
namespace {

using graph::CsrGraph;
using graph::VertexId;

TEST(StaticWalkIndexTest, MatchesWeightDistributionPerVertex) {
  graph::GraphBuilder builder(4, false);
  builder.AddEdge(0, 1, 1);
  builder.AddEdge(0, 2, 3);
  builder.AddEdge(0, 3, 6);
  builder.AddEdge(1, 0, 5);
  const CsrGraph g = std::move(builder).Build();
  StaticWalkIndex index(g);

  rng::Xoshiro256StarStar gen(3);
  constexpr int kTrials = 60000;
  std::vector<int> counts(3, 0);
  for (int t = 0; t < kTrials; ++t) {
    const size_t slot = index.Sample(0, gen.Next(), gen.Next32());
    ASSERT_LT(slot, 3u);
    ++counts[slot];
  }
  EXPECT_NEAR(counts[0], kTrials * 0.1, 5 * std::sqrt(kTrials * 0.1));
  EXPECT_NEAR(counts[1], kTrials * 0.3, 5 * std::sqrt(kTrials * 0.3));
  EXPECT_NEAR(counts[2], kTrials * 0.6, 5 * std::sqrt(kTrials * 0.6));
}

TEST(StaticWalkIndexTest, IsolatedVertexHasNoSample) {
  graph::GraphBuilder builder(2, false);
  builder.AddEdge(0, 1);
  const CsrGraph g = std::move(builder).Build();
  StaticWalkIndex index(g);
  EXPECT_EQ(index.Sample(1, 123, 456), sampling::kNoSample);
  EXPECT_EQ(index.Sample(0, 123, 456), 0u);
}

TEST(StaticWalkIndexTest, SingleNeighborAlwaysSelected) {
  graph::GraphBuilder builder(2, false);
  builder.AddEdge(0, 1, 9);
  const CsrGraph g = std::move(builder).Build();
  StaticWalkIndex index(g);
  rng::Xoshiro256StarStar gen(7);
  for (int t = 0; t < 1000; ++t) {
    EXPECT_EQ(index.Sample(0, gen.Next(), gen.Next32()), 0u);
  }
}

TEST(StaticWalkIndexTest, MemoryProportionalToEdges) {
  const CsrGraph g = graph::MakeDatasetStandIn(graph::Dataset::kYoutube,
                                               /*scale_shift=*/11, 2);
  StaticWalkIndex index(g);
  EXPECT_EQ(index.num_vertices(), g.num_vertices());
  // offsets (8B per vertex) + prob/alias (8B per edge).
  const uint64_t expected = (g.num_vertices() + 1) * 8 + g.num_edges() * 8;
  EXPECT_EQ(index.MemoryBytes(), expected);
}

TEST(StaticWalkIndexTest, AgreesWithPerStepAliasOnRandomGraph) {
  // The flattened per-vertex tables must produce the same distribution as
  // building sampling::AliasTable per step (cross-validated statistically
  // on a nontrivial vertex).
  graph::RmatOptions options;
  options.scale = 8;
  options.seed = 19;
  const CsrGraph g = graph::GenerateRmat(options);
  StaticWalkIndex index(g);

  VertexId v = 0;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    if (g.Degree(u) > g.Degree(v)) {
      v = u;
    }
  }
  const auto weights = g.NeighborWeights(v);
  uint64_t total = 0;
  for (const auto w : weights) {
    total += w;
  }
  rng::Xoshiro256StarStar gen(5);
  constexpr int kTrials = 50000;
  std::vector<int> counts(weights.size(), 0);
  for (int t = 0; t < kTrials; ++t) {
    const size_t slot = index.Sample(v, gen.Next(), gen.Next32());
    ASSERT_LT(slot, weights.size());
    ++counts[slot];
  }
  for (size_t i = 0; i < weights.size(); ++i) {
    const double expected =
        static_cast<double>(kTrials) * weights[i] / total;
    EXPECT_NEAR(counts[i], expected, 5 * std::sqrt(expected) + 1)
        << "slot " << i;
  }
}

TEST(StaticWalkIndexTest, WalkLoopFasterThanDynamicEngineWork) {
  // Not a wall-clock benchmark, just the structural property: sampling a
  // step touches O(1) slots instead of streaming the whole adjacency.
  const CsrGraph g = graph::MakeDatasetStandIn(graph::Dataset::kLiveJournal,
                                               /*scale_shift=*/11, 2);
  StaticWalkIndex index(g);
  rng::Xoshiro256StarStar gen(11);
  VertexId curr = 0;
  uint64_t steps = 0;
  for (int i = 0; i < 10000; ++i) {
    const size_t slot = index.Sample(curr, gen.Next(), gen.Next32());
    if (slot == sampling::kNoSample) {
      curr = static_cast<VertexId>(gen.NextBounded(g.num_vertices()));
      continue;
    }
    curr = g.Neighbors(curr)[slot];
    ++steps;
  }
  EXPECT_GT(steps, 5000u);
}

}  // namespace
}  // namespace lightrw::baseline
