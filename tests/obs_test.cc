// Unit tests for the observability library: the Json document type, the
// metrics registry and its expositions, and the trace recorder.

#include <cstdio>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace lightrw::obs {
namespace {

// ---------------------------------------------------------------------------
// Json

TEST(JsonTest, ScalarDump) {
  EXPECT_EQ(Json().Dump(), "null");
  EXPECT_EQ(Json(true).Dump(), "true");
  EXPECT_EQ(Json(false).Dump(), "false");
  EXPECT_EQ(Json(int64_t{-42}).Dump(), "-42");
  EXPECT_EQ(Json(uint64_t{18446744073709551615ull}).Dump(),
            "18446744073709551615");
  EXPECT_EQ(Json("hi").Dump(), "\"hi\"");
  EXPECT_EQ(Json(0.5).Dump(), "0.5");
}

TEST(JsonTest, NonFiniteDoublesBecomeNull) {
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).Dump(), "null");
  EXPECT_EQ(Json(std::numeric_limits<double>::quiet_NaN()).Dump(), "null");
}

TEST(JsonTest, StringEscaping) {
  EXPECT_EQ(Json("a\"b\\c\n\t\x01").Dump(),
            "\"a\\\"b\\\\c\\n\\t\\u0001\"");
}

TEST(JsonTest, ObjectPreservesInsertionOrderAndSetReplaces) {
  Json obj = Json::MakeObject();
  obj.Set("zebra", 1);
  obj.Set("apple", 2);
  obj.Set("zebra", 3);  // replaces in place, keeps position
  EXPECT_EQ(obj.Dump(), "{\"zebra\":3,\"apple\":2}");
  ASSERT_NE(obj.Find("apple"), nullptr);
  EXPECT_EQ(obj.Find("apple")->int_value(), 2);
  EXPECT_EQ(obj.Find("missing"), nullptr);
}

TEST(JsonTest, ArrayAppendAndSize) {
  Json arr = Json::MakeArray();
  arr.Append(1);
  arr.Append("two");
  arr.Append(Json::MakeObject());
  EXPECT_EQ(arr.size(), 3u);
  EXPECT_EQ(arr.Dump(), "[1,\"two\",{}]");
}

TEST(JsonTest, PrettyPrint) {
  Json obj = Json::MakeObject();
  obj.Set("a", 1);
  EXPECT_EQ(obj.Dump(2), "{\n  \"a\": 1\n}");
}

TEST(JsonTest, ParseRoundTrip) {
  const std::string text =
      "{\"a\":[1,2.5,true,null,\"x\\n\"],\"b\":{\"c\":-7}}";
  const auto parsed = Json::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().Dump(), text);
}

TEST(JsonTest, ParseRejectsMalformed) {
  EXPECT_FALSE(Json::Parse("").ok());
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("[1,]").ok());
  EXPECT_FALSE(Json::Parse("{\"a\":1} trailing").ok());
  EXPECT_FALSE(Json::Parse("'single'").ok());
  EXPECT_FALSE(Json::Parse("nul").ok());
}

TEST(JsonTest, ParseRejectsExcessiveNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(Json::Parse(deep).ok());
}

TEST(JsonTest, NumericKindsRoundTripExactly) {
  const auto parsed = Json::Parse("[9007199254740993,-4,1.25]");
  ASSERT_TRUE(parsed.ok());
  // 2^53+1 is not representable as a double; it must survive as an
  // integer kind.
  EXPECT_EQ(parsed.value().array()[0].uint_value(), 9007199254740993ull);
  EXPECT_EQ(parsed.value().array()[1].int_value(), -4);
  EXPECT_DOUBLE_EQ(parsed.value().array()[2].double_value(), 1.25);
}

// ---------------------------------------------------------------------------
// MetricsRegistry

TEST(MetricsTest, CountersAccumulateAcrossCallSites) {
  MetricsRegistry registry;
  registry.GetCounter("a.b.c")->Increment(3);
  registry.GetCounter("a.b.c")->Increment(4);
  EXPECT_EQ(registry.GetCounter("a.b.c")->value(), 7u);
  EXPECT_EQ(registry.NumMetrics(), 1u);
}

TEST(MetricsTest, LabelsDistinguishInstances) {
  MetricsRegistry registry;
  registry.GetCounter("accel.steps", {{"instance", "0"}})->Increment(1);
  registry.GetCounter("accel.steps", {{"instance", "1"}})->Increment(2);
  EXPECT_EQ(registry.NumMetrics(), 2u);
  EXPECT_EQ(
      registry.GetCounter("accel.steps", {{"instance", "1"}})->value(), 2u);
}

TEST(MetricsTest, JsonSnapshotIsSortedAndParses) {
  MetricsRegistry registry;
  registry.GetCounter("z.last")->Increment();
  registry.GetGauge("a.first")->Set(1.5);
  registry.GetHistogram("m.mid")->Observe(2.0);

  const std::string text = registry.ToJsonString();
  const auto parsed = Json::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Json* metrics = parsed.value().Find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_EQ(metrics->size(), 3u);
  EXPECT_EQ(metrics->array()[0].Find("name")->string_value(), "a.first");
  EXPECT_EQ(metrics->array()[1].Find("name")->string_value(), "m.mid");
  EXPECT_EQ(metrics->array()[2].Find("name")->string_value(), "z.last");
}

TEST(MetricsTest, SnapshotIsDeterministicAcrossInsertionOrder) {
  MetricsRegistry forward;
  forward.GetCounter("a")->Increment(1);
  forward.GetGauge("b")->Set(2.0);
  MetricsRegistry backward;
  backward.GetGauge("b")->Set(2.0);
  backward.GetCounter("a")->Increment(1);
  EXPECT_EQ(forward.ToJsonString(), backward.ToJsonString());
  EXPECT_EQ(forward.ToPrometheusText(), backward.ToPrometheusText());
}

TEST(MetricsTest, EmptyHistogramExposesZeros) {
  MetricsRegistry registry;
  registry.GetHistogram("h");  // registered, never observed
  const auto parsed = Json::Parse(registry.ToJsonString());
  ASSERT_TRUE(parsed.ok());
  const Json& metric = parsed.value().Find("metrics")->array()[0];
  EXPECT_EQ(metric.Find("count")->uint_value(), 0u);
  EXPECT_DOUBLE_EQ(metric.Find("min")->double_value(), 0.0);
}

TEST(MetricsTest, PrometheusTextFormat) {
  MetricsRegistry registry;
  registry.GetCounter("accel.dram.bytes", {{"instance", "0"}})
      ->Increment(512);
  const std::string text = registry.ToPrometheusText();
  EXPECT_NE(text.find("# TYPE accel_dram_bytes counter"),
            std::string::npos);
  EXPECT_NE(text.find("accel_dram_bytes{instance=\"0\"} 512"),
            std::string::npos);
}

TEST(MetricsTest, ConcurrentIncrementsAreLossless) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      Counter* counter = registry.GetCounter("concurrent");
      for (int i = 0; i < kIncrements; ++i) {
        counter->Increment();
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(registry.GetCounter("concurrent")->value(),
            static_cast<uint64_t>(kThreads) * kIncrements);
}

// ---------------------------------------------------------------------------
// TraceRecorder

TEST(TraceTest, RecordsAndExportsEvents) {
  TraceRecorder trace;
  trace.NameProcess(0, "instance 0");
  trace.NameTrack(0, 1, "fetch");
  trace.Complete("burst", "dram", 0, 1, 10, 25);
  trace.Instant("hit", "cache", 0, 0, 12);
  trace.Value("inflight", 0, 14, 3.0);
  EXPECT_EQ(trace.num_events(), 3u);

  const auto parsed = Json::Parse(trace.ToJsonString());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Json* events = parsed.value().Find("traceEvents");
  ASSERT_NE(events, nullptr);
  // 2 metadata records + 3 events.
  ASSERT_EQ(events->size(), 5u);
  // Metadata first, then events sorted by ts.
  EXPECT_EQ(events->array()[0].Find("ph")->string_value(), "M");
  EXPECT_EQ(events->array()[1].Find("ph")->string_value(), "M");
  EXPECT_EQ(events->array()[2].Find("name")->string_value(), "burst");
  EXPECT_EQ(events->array()[2].Find("ts")->uint_value(), 10u);
  EXPECT_EQ(events->array()[2].Find("dur")->uint_value(), 15u);
  EXPECT_EQ(events->array()[3].Find("name")->string_value(), "hit");
  EXPECT_EQ(events->array()[4].Find("name")->string_value(), "inflight");
}

TEST(TraceTest, EventCapIsHonored) {
  TraceConfig config;
  config.max_events = 5;
  TraceRecorder trace(config);
  for (uint64_t i = 0; i < 20; ++i) {
    trace.Instant("e", "c", 0, 0, i);
  }
  EXPECT_EQ(trace.num_events(), 5u);
  EXPECT_EQ(trace.dropped_events(), 15u);
  EXPECT_FALSE(trace.accepting());

  const auto parsed = Json::Parse(trace.ToJsonString());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().Find("traceEvents")->size(), 5u);
  EXPECT_EQ(
      parsed.value().Find("metadata")->Find("dropped_events")->uint_value(),
      15u);
}

TEST(TraceTest, ZeroCapDisablesRecording) {
  TraceConfig config;
  config.max_events = 0;
  TraceRecorder trace(config);
  EXPECT_FALSE(trace.accepting());
  trace.Instant("e", "c", 0, 0, 1);
  EXPECT_EQ(trace.num_events(), 0u);
}

TEST(TraceTest, ExportIsSortedByTimestamp) {
  TraceRecorder trace;
  trace.Instant("late", "c", 0, 0, 100);
  trace.Instant("early", "c", 0, 0, 1);
  trace.Instant("mid", "c", 0, 0, 50);
  const auto parsed = Json::Parse(trace.ToJsonString());
  ASSERT_TRUE(parsed.ok());
  const auto& events = parsed.value().Find("traceEvents")->array();
  uint64_t last_ts = 0;
  for (const Json& event : events) {
    if (event.Find("ph")->string_value() == "M") {
      continue;
    }
    const uint64_t ts = event.Find("ts")->uint_value();
    EXPECT_GE(ts, last_ts);
    last_ts = ts;
  }
  EXPECT_EQ(last_ts, 100u);
}

TEST(TraceTest, WriteTextFileRoundTrip) {
  const std::string path =
      testing::TempDir() + "/lightrw_obs_test_write.json";
  ASSERT_TRUE(WriteTextFile("{\"ok\":true}\n", path).ok());
  std::FILE* file = std::fopen(path.c_str(), "r");
  ASSERT_NE(file, nullptr);
  char buf[64] = {};
  const size_t read = std::fread(buf, 1, sizeof(buf) - 1, file);
  std::fclose(file);
  EXPECT_EQ(std::string(buf, read), "{\"ok\":true}\n");
  std::remove(path.c_str());
}

TEST(TraceTest, WriteToUnwritablePathFails) {
  TraceRecorder trace;
  EXPECT_FALSE(
      trace.WriteChromeTrace("/nonexistent-dir/trace.json").ok());
}

}  // namespace
}  // namespace lightrw::obs
