#include <gtest/gtest.h>

#include "lightrw/wrs_sampler_sim.h"

namespace lightrw::core {
namespace {

hwsim::DramConfig PaperDram() { return hwsim::DramConfig{}; }

TEST(WrsSamplerSimTest, ThroughputLinearInSmallK) {
  // Below memory saturation, doubling k doubles throughput (Fig. 10a's
  // linear region).
  const WrsSamplerSimResult k1 =
      WrsSamplerSim(1, PaperDram(), 3).RunStream(1 << 16);
  const WrsSamplerSimResult k2 =
      WrsSamplerSim(2, PaperDram(), 3).RunStream(1 << 16);
  const WrsSamplerSimResult k4 =
      WrsSamplerSim(4, PaperDram(), 3).RunStream(1 << 16);
  EXPECT_NEAR(k2.items_per_second / k1.items_per_second, 2.0, 0.05);
  EXPECT_NEAR(k4.items_per_second / k1.items_per_second, 4.0, 0.1);
}

TEST(WrsSamplerSimTest, SaturatesAtMemoryBandwidth) {
  // At k=16 the sampler hits the DRAM line rate (~17.57 GB/s of 4-byte
  // weights); k=32 gains nothing (Fig. 10a's plateau).
  const WrsSamplerSimResult k16 =
      WrsSamplerSim(16, PaperDram(), 3).RunStream(1 << 18);
  const WrsSamplerSimResult k32 =
      WrsSamplerSim(32, PaperDram(), 3).RunStream(1 << 18);
  EXPECT_NEAR(k16.bytes_per_second / 1e9, 17.57, 0.5);
  EXPECT_NEAR(k32.items_per_second / k16.items_per_second, 1.0, 0.02);
}

TEST(WrsSamplerSimTest, MatchesTheoreticalBelowSaturation) {
  for (uint32_t k : {1u, 2u, 4u, 8u}) {
    WrsSamplerSim sim(k, PaperDram(), 3);
    const auto result = sim.RunStream(1 << 18);
    EXPECT_NEAR(result.items_per_second / sim.TheoreticalItemsPerSecond(),
                1.0, 0.02)
        << "k=" << k;
  }
}

TEST(WrsSamplerSimTest, ShortStreamsPayPipelineFill) {
  // Fig. 10b: small workloads fall below line rate because of the pipeline
  // initialization; the gap shrinks monotonically with stream length and
  // becomes negligible for large streams.
  WrsSamplerSim sim(16, PaperDram(), 3);
  double prev = 0.0;
  for (uint64_t n = 1 << 6; n <= 1 << 16; n <<= 2) {
    const auto result = sim.RunStream(n);
    EXPECT_GT(result.items_per_second, prev) << "n=" << n;
    prev = result.items_per_second;
  }
  // At 2^16 items the throughput is within 5% of the memory line rate.
  const double line_rate = sim.MemoryItemsPerCycle() * 300e6;
  EXPECT_GT(prev, 0.95 * line_rate);
}

TEST(WrsSamplerSimTest, SelectsAnItem) {
  WrsSamplerSim sim(8, PaperDram(), 9);
  const auto result = sim.RunStream(1000);
  EXPECT_LT(result.selected, 1000u);
  EXPECT_EQ(result.items, 1000u);
  EXPECT_GT(result.cycles, 0u);
}

TEST(WrsSamplerSimTest, DeterministicPerSeed) {
  const auto a = WrsSamplerSim(8, PaperDram(), 5).RunStream(5000);
  const auto b = WrsSamplerSim(8, PaperDram(), 5).RunStream(5000);
  EXPECT_EQ(a.selected, b.selected);
  EXPECT_EQ(a.cycles, b.cycles);
}

TEST(WrsSamplerSimTest, MemoryItemsPerCycle) {
  WrsSamplerSim sim(16, PaperDram(), 1);
  // 64 B * 0.915 / 4 B = 14.64 items per cycle.
  EXPECT_NEAR(sim.MemoryItemsPerCycle(), 14.64, 0.01);
}

}  // namespace
}  // namespace lightrw::core
