// Randomized property sweeps across modules: CSR structural invariants
// over random generator configurations, cross-sampler distribution
// agreement over random weight vectors, and burst-plan conservation over
// random strategies. Parameterized by seed so each instantiation explores
// a different random instance deterministically.

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "lightrw/burst_engine.h"
#include "rng/rng.h"
#include "rng/stat_tests.h"
#include "sampling/alias.h"
#include "sampling/inverse_transform.h"
#include "sampling/parallel_wrs.h"

namespace lightrw {
namespace {

class SeededProperty : public ::testing::TestWithParam<uint64_t> {};

// --- CSR structural invariants over random RMAT instances ------------------

TEST_P(SeededProperty, CsrInvariantsHold) {
  const uint64_t seed = GetParam();
  rng::Xoshiro256StarStar gen(seed);
  graph::RmatOptions options;
  options.scale = 6 + static_cast<uint32_t>(gen.NextBounded(6));
  options.edge_factor = 2 + static_cast<uint32_t>(gen.NextBounded(14));
  options.undirected = gen.NextBounded(2) == 0;
  options.seed = seed;
  const graph::CsrGraph g = graph::GenerateRmat(options);

  // row_index is monotone, covers col arrays exactly, degrees match.
  const auto row = g.row_index();
  ASSERT_EQ(row.size(), g.num_vertices() + 1u);
  EXPECT_EQ(row.front(), 0u);
  EXPECT_EQ(row.back(), g.num_edges());
  uint64_t total_degree = 0;
  uint32_t max_degree = 0;
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_LE(row[v], row[v + 1]);
    const auto neighbors = g.Neighbors(v);
    total_degree += neighbors.size();
    max_degree = std::max(max_degree,
                          static_cast<uint32_t>(neighbors.size()));
    // Sorted, unique, in range.
    for (size_t i = 0; i < neighbors.size(); ++i) {
      ASSERT_LT(neighbors[i], g.num_vertices());
      if (i > 0) {
        ASSERT_LT(neighbors[i - 1], neighbors[i]);
      }
    }
  }
  EXPECT_EQ(total_degree, g.num_edges());
  EXPECT_EQ(max_degree, g.max_degree());

  if (options.undirected) {
    // Every edge has its reverse.
    for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
      for (const graph::VertexId u : g.Neighbors(v)) {
        ASSERT_TRUE(g.HasEdge(u, v)) << v << "->" << u;
      }
    }
  }
}

// --- Cross-sampler agreement over random weight vectors --------------------

TEST_P(SeededProperty, SamplersAgreeOnRandomWeights) {
  const uint64_t seed = GetParam();
  rng::Xoshiro256StarStar gen(seed);
  const size_t n = 2 + gen.NextBounded(30);
  std::vector<graph::Weight> weights(n);
  size_t positive = 0;
  for (auto& w : weights) {
    // ~25% zero weights, rest in [1, 64].
    w = gen.NextBounded(4) == 0
            ? 0
            : static_cast<graph::Weight>(1 + gen.NextBounded(64));
    positive += w > 0 ? 1 : 0;
  }
  if (positive < 2) {
    weights[0] = 3;
    weights[n - 1] = 5;
  }
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);

  sampling::InverseTransformTable its;
  its.Build(weights);
  sampling::AliasTable alias;
  alias.Build(weights);
  rng::ThunderingRng trng(8, seed ^ 0xabcdULL);
  sampling::ParallelWrsSampler pwrs(8, &trng);

  constexpr int kTrials = 12000;
  std::vector<uint64_t> its_counts(n, 0), alias_counts(n, 0),
      pwrs_counts(n, 0);
  for (int t = 0; t < kTrials; ++t) {
    ++its_counts[its.Sample(gen.Next())];
    ++alias_counts[alias.Sample(gen.Next(), gen.Next32())];
    ++pwrs_counts[pwrs.SampleAll({weights.data(), weights.size()})];
  }

  auto check = [&](const std::vector<uint64_t>& counts, const char* name) {
    std::vector<uint64_t> observed;
    std::vector<double> expected;
    for (size_t i = 0; i < n; ++i) {
      if (weights[i] == 0) {
        ASSERT_EQ(counts[i], 0u) << name << " sampled zero-weight item";
      } else {
        observed.push_back(counts[i]);
        expected.push_back(kTrials * weights[i] / total);
      }
    }
    if (observed.size() >= 2) {
      const auto result = rng::ChiSquareTest(observed, expected);
      EXPECT_GT(result.p_value, 1e-5)
          << name << " deviates (chi2=" << result.statistic << ")";
    }
  };
  check(its_counts, "its");
  check(alias_counts, "alias");
  check(pwrs_counts, "pwrs");
}

// --- Burst plan conservation over random strategies ------------------------

TEST_P(SeededProperty, BurstPlansConserveBytes) {
  const uint64_t seed = GetParam();
  rng::Xoshiro256StarStar gen(seed);
  constexpr uint32_t kBus = 64;
  for (int i = 0; i < 200; ++i) {
    core::BurstStrategy strategy;
    strategy.short_beats = 1u << gen.NextBounded(3);       // 1, 2, 4
    strategy.long_beats = gen.NextBounded(2) == 0
                              ? 0
                              : (1u << (2 + gen.NextBounded(5)));  // 4..64
    const uint64_t bytes = 1 + gen.NextBounded(100000);
    const core::BurstPlan plan =
        core::PlanBursts(bytes, strategy, kBus);
    ASSERT_GE(plan.loaded_bytes, bytes);
    ASSERT_LT(plan.loaded_bytes - bytes,
              static_cast<uint64_t>(strategy.short_beats) * kBus);
    const uint64_t reconstructed =
        static_cast<uint64_t>(plan.long_bursts) * strategy.long_beats *
            kBus +
        static_cast<uint64_t>(plan.short_bursts) * strategy.short_beats *
            kBus;
    ASSERT_EQ(reconstructed, plan.loaded_bytes);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace lightrw
