// End-to-end integration: generators -> apps -> all three engines ->
// analytics, on shared workloads. Verifies cross-engine consistency that
// the per-module tests cannot see.

#include <gtest/gtest.h>

#include "analytics/embedding.h"
#include "analytics/link_prediction.h"
#include "apps/walk_app.h"
#include "baseline/engine.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "lightrw/cycle_engine.h"
#include "lightrw/functional_engine.h"
#include "lightrw/platform_models.h"

namespace lightrw {
namespace {

using apps::MetaPathApp;
using apps::Node2VecApp;
using apps::WalkQuery;
using graph::CsrGraph;
using graph::VertexId;

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = graph::MakeDatasetStandIn(graph::Dataset::kLiveJournal,
                                       /*scale_shift=*/11, /*seed=*/77);
  }

  CsrGraph graph_;
};

TEST_F(IntegrationTest, AllEnginesCompleteMetaPathWorkload) {
  const auto relation_path = apps::MakeRandomRelationPath(graph_, 5, 1);
  MetaPathApp app(relation_path);
  const auto queries = apps::MakeVertexQueries(graph_, 5, 2, 300);

  baseline::BaselineEngine cpu(&graph_, &app, baseline::BaselineConfig{});
  const auto cpu_stats = cpu.Run(queries);

  core::AcceleratorConfig accel_config;
  accel_config.num_instances = 2;
  core::FunctionalEngine functional(&graph_, &app, accel_config);
  const auto func_stats = functional.Run(queries);

  core::CycleEngine cycle(&graph_, &app, accel_config);
  const auto cycle_stats = cycle.Run(queries);

  EXPECT_EQ(cpu_stats.queries, queries.size());
  EXPECT_EQ(func_stats.queries, queries.size());
  EXPECT_EQ(cycle_stats.queries, queries.size());

  // MetaPath kills many walks early (relation mismatches), but all three
  // engines sample from identical distributions, so their completed step
  // counts agree within a few percent.
  const double cpu_steps = static_cast<double>(cpu_stats.steps);
  EXPECT_NEAR(static_cast<double>(func_stats.steps), cpu_steps,
              0.15 * cpu_steps + 50);
  EXPECT_NEAR(static_cast<double>(cycle_stats.steps), cpu_steps,
              0.15 * cpu_steps + 50);
}

TEST_F(IntegrationTest, Node2VecStepParityAcrossEngines) {
  Node2VecApp app(2.0, 0.5);
  const auto queries = apps::MakeVertexQueries(graph_, 20, 3, 150);

  baseline::BaselineConfig cpu_config;
  cpu_config.sampler = sampling::SamplerKind::kInverseTransform;
  baseline::BaselineEngine cpu(&graph_, &app, cpu_config);
  const auto cpu_stats = cpu.Run(queries);

  core::AcceleratorConfig accel_config;
  core::CycleEngine accel(&graph_, &app, accel_config);
  const auto accel_stats = accel.Run(queries);

  // Node2Vec never zero-weights every neighbor, so both engines should
  // complete (almost) every requested step.
  EXPECT_EQ(cpu_stats.steps, accel_stats.steps);
  EXPECT_EQ(cpu_stats.steps, 20u * queries.size());
}

TEST_F(IntegrationTest, SimulatedAcceleratorOutpacesCpuBaseline) {
  // The headline claim in miniature: simulated LightRW kernel time beats
  // the measured CPU baseline on the same workload.
  Node2VecApp app(2.0, 0.5);
  const auto queries = apps::MakeVertexQueries(graph_, 20, 4, 400);

  baseline::BaselineEngine cpu(&graph_, &app, baseline::BaselineConfig{});
  const auto cpu_stats = cpu.Run(queries);

  core::AcceleratorConfig accel_config;  // 4 instances, k=16, b1+b32, DAC
  core::CycleEngine accel(&graph_, &app, accel_config);
  const auto accel_stats = accel.Run(queries);

  EXPECT_GT(accel_stats.StepsPerSecond(), cpu_stats.StepsPerSecond());
}

TEST_F(IntegrationTest, GraphRoundTripPreservesWalkSemantics) {
  const std::string path = testing::TempDir() + "/integration_graph.bin";
  ASSERT_TRUE(graph::WriteBinary(graph_, path).ok());
  auto reloaded = graph::ReadBinary(path);
  ASSERT_TRUE(reloaded.ok());

  apps::StaticWalkApp app;
  core::AcceleratorConfig config;
  const auto queries = apps::MakeVertexQueries(graph_, 10, 5, 100);
  baseline::WalkOutput original_walks, reloaded_walks;
  core::FunctionalEngine(&graph_, &app, config)
      .Run(queries, &original_walks);
  core::FunctionalEngine(&*reloaded, &app, config)
      .Run(queries, &reloaded_walks);
  EXPECT_EQ(original_walks.vertices, reloaded_walks.vertices);
}

TEST_F(IntegrationTest, WalksToEmbeddingsToLinkPrediction) {
  Node2VecApp app(2.0, 0.5);
  core::AcceleratorConfig config;
  core::FunctionalEngine engine(&graph_, &app, config);
  const auto queries = apps::MakeVertexQueries(graph_, 20, 6, 400);
  baseline::WalkOutput corpus;
  engine.Run(queries, &corpus);
  ASSERT_GT(corpus.vertices.size(), queries.size());

  analytics::EmbeddingConfig embed_config;
  embed_config.epochs = 1;
  embed_config.dimensions = 16;
  const auto embedding =
      analytics::TrainEmbedding(corpus, graph_.num_vertices(), embed_config);
  const auto result =
      analytics::EvaluateLinkPrediction(graph_, embedding, 200, 5);
  // Real-graph stand-in with one epoch: must beat chance clearly.
  EXPECT_GT(result.auc, 0.55);
}

TEST_F(IntegrationTest, PlatformModelsComposeWithEngines) {
  MetaPathApp app(apps::MakeRandomRelationPath(graph_, 5, 1));
  const auto queries = apps::MakeVertexQueries(graph_, 5, 2, 200);
  core::AcceleratorConfig config;
  core::CycleEngine accel(&graph_, &app, config);
  const auto stats = accel.Run(queries);

  core::PcieModel pcie;
  const uint64_t bytes =
      pcie.RunBytes(graph_, config.num_instances, queries.size(), 5);
  const double transfer = pcie.TransferSeconds(bytes);
  EXPECT_GT(transfer, 0.0);

  core::PowerModel power;
  const double watts = power.FpgaWatts(config.num_instances,
                                       graph_.num_edges(), false);
  const double energy = watts * (stats.seconds + transfer);
  EXPECT_GT(energy, 0.0);

  core::ResourceModel resources;
  const auto usage = resources.TotalUsage(config, app.needs_prev_neighbors());
  EXPECT_GT(usage.luts, 0u);
}

}  // namespace
}  // namespace lightrw
