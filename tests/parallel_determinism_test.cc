// The deterministic-parallelism contract (common/sim_thread_pool.h):
// every engine must produce bit-identical results for every host thread
// count, because work is decomposed into config-defined shards whose
// private state merges in fixed shard order. These tests pin that
// contract for each engine — walk corpora, run stats, and service
// outcomes at threads 1 vs 2, 4, and 7 (a non-divisor of every shard
// count used, so claiming is intentionally ragged) — including under
// fault injection and early-stopping apps.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "apps/ppr.h"
#include "apps/walk_app.h"
#include "baseline/engine.h"
#include "common/sim_thread_pool.h"
#include "distributed/config_validation.h"
#include "distributed/dist_engine.h"
#include "distributed/partition.h"
#include "graph/generators.h"
#include "lightrw/config_validation.h"
#include "lightrw/cycle_engine.h"
#include "obs/span.h"
#include "reliability/membership.h"
#include "service/walk_service.h"

namespace lightrw {
namespace {

using apps::PprApp;
using apps::StaticWalkApp;
using apps::WalkQuery;
using baseline::WalkOutput;
using distributed::DistributedConfig;
using distributed::DistributedEngine;
using distributed::DistributedRunStats;
using distributed::MakePartition;
using distributed::Partition;
using distributed::PartitionStrategy;
using graph::CsrGraph;
using service::ServiceConfig;
using service::ServiceRunStats;
using service::WalkService;

constexpr uint32_t kThreadSweep[] = {2, 4, 7};

CsrGraph TestGraph() {
  return graph::MakeDatasetStandIn(graph::Dataset::kLiveJournal,
                                   /*scale_shift=*/11, /*seed=*/9);
}

void ExpectSameCorpus(const WalkOutput& a, const WalkOutput& b) {
  EXPECT_EQ(a.vertices, b.vertices);
  EXPECT_EQ(a.offsets, b.offsets);
}

void ExpectSameReliability(const reliability::ReliabilityStats& a,
                           const reliability::ReliabilityStats& b) {
  EXPECT_EQ(a.dram_correctable, b.dram_correctable);
  EXPECT_EQ(a.dram_uncorrectable, b.dram_uncorrectable);
  EXPECT_EQ(a.dram_retries, b.dram_retries);
  EXPECT_EQ(a.dram_failed_accesses, b.dram_failed_accesses);
  EXPECT_EQ(a.link_dropped, b.link_dropped);
  EXPECT_EQ(a.retransmissions, b.retransmissions);
  EXPECT_EQ(a.board_failures, b.board_failures);
  EXPECT_EQ(a.checkpoints, b.checkpoints);
  EXPECT_EQ(a.walkers_recovered, b.walkers_recovered);
  EXPECT_EQ(a.walkers_lost, b.walkers_lost);
  EXPECT_EQ(a.walks_failed, b.walks_failed);
  EXPECT_EQ(a.spares_activated, b.spares_activated);
  EXPECT_EQ(a.rebuilds_completed, b.rebuilds_completed);
  EXPECT_EQ(a.rebuilds_aborted, b.rebuilds_aborted);
  EXPECT_EQ(a.spare_exhaustions, b.spare_exhaustions);
  EXPECT_EQ(a.rebuild_cycles, b.rebuild_cycles);
}

// --- SimThreadPool itself -------------------------------------------------

TEST(SimThreadPoolTest, ParallelForVisitsEveryShardExactlyOnce) {
  for (const uint32_t threads : {1u, 2u, 4u, 7u}) {
    std::vector<std::atomic<int>> visits(23);
    SimThreadPool::ParallelFor(threads, visits.size(), [&](size_t i) {
      visits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < visits.size(); ++i) {
      EXPECT_EQ(visits[i].load(), 1) << "shard " << i;
    }
  }
}

TEST(SimThreadPoolTest, ParallelForHandlesZeroShards) {
  bool ran = false;
  SimThreadPool::ParallelFor(4, 0, [&](size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(SimThreadPoolTest, ResolveThreadsClampsAndDefaults) {
  EXPECT_EQ(SimThreadPool::ResolveThreads(3), 3u);
  EXPECT_EQ(SimThreadPool::ResolveThreads(0),
            SimThreadPool::DefaultThreads());
  const uint32_t prev = SimThreadPool::DefaultThreads();
  SimThreadPool::SetDefaultThreads(5);
  EXPECT_EQ(SimThreadPool::DefaultThreads(), 5u);
  EXPECT_EQ(SimThreadPool::ResolveThreads(0), 5u);
  SimThreadPool::SetDefaultThreads(prev);
}

// --- CycleEngine: one shard per accelerator instance ----------------------

struct CycleRun {
  WalkOutput corpus;
  core::AccelRunStats stats;
};

CycleRun RunCycle(const CsrGraph& g, const apps::WalkApp& app,
                  uint32_t threads, const reliability::FaultConfig& faults) {
  core::AcceleratorConfig config;
  config.num_instances = 4;
  config.seed = 31;
  config.num_threads = threads;
  config.collect_latency = true;
  config.faults = faults;
  const auto queries = apps::MakeVertexQueries(g, /*length=*/16,
                                               /*seed=*/5, /*limit=*/600);
  core::CycleEngine engine(&g, &app, config);
  CycleRun run;
  run.stats = engine.Run(queries, &run.corpus);
  return run;
}

void ExpectSameCycleStats(const core::AccelRunStats& a,
                          const core::AccelRunStats& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.edges_examined, b.edges_examined);
  EXPECT_EQ(a.dram.requests, b.dram.requests);
  EXPECT_EQ(a.dram.bytes, b.dram.bytes);
  EXPECT_EQ(a.dram.busy_cycles, b.dram.busy_cycles);
  EXPECT_EQ(a.cache.hits, b.cache.hits);
  EXPECT_EQ(a.cache.misses, b.cache.misses);
  EXPECT_EQ(a.burst.requests, b.burst.requests);
  EXPECT_EQ(a.burst.loaded_bytes, b.burst.loaded_bytes);
  EXPECT_EQ(a.prev_refetches, b.prev_refetches);
  ExpectSameReliability(a.reliability, b.reliability);
  ASSERT_EQ(a.query_latency_cycles.count(), b.query_latency_cycles.count());
  EXPECT_EQ(a.query_latency_cycles.sorted_samples(),
            b.query_latency_cycles.sorted_samples());
}

TEST(ParallelCycleEngineTest, ThreadCountDoesNotChangeResults) {
  const CsrGraph g = TestGraph();
  const StaticWalkApp app;
  const CycleRun serial = RunCycle(g, app, 1, {});
  EXPECT_GT(serial.stats.steps, 0u);
  for (const uint32_t threads : kThreadSweep) {
    const CycleRun parallel = RunCycle(g, app, threads, {});
    ExpectSameCorpus(serial.corpus, parallel.corpus);
    ExpectSameCycleStats(serial.stats, parallel.stats);
  }
}

TEST(ParallelCycleEngineTest, HoldsUnderFaultInjection) {
  const CsrGraph g = TestGraph();
  const StaticWalkApp app;
  reliability::FaultConfig faults;
  faults.enabled = true;
  faults.seed = 77;
  faults.dram_correctable_rate = 1e-3;
  faults.dram_uncorrectable_rate = 1e-4;
  const CycleRun serial = RunCycle(g, app, 1, faults);
  EXPECT_TRUE(serial.stats.reliability.Any());
  for (const uint32_t threads : kThreadSweep) {
    const CycleRun parallel = RunCycle(g, app, threads, faults);
    ExpectSameCorpus(serial.corpus, parallel.corpus);
    ExpectSameCycleStats(serial.stats, parallel.stats);
  }
}

TEST(ParallelCycleEngineTest, HoldsWithEarlyStoppingApp) {
  const CsrGraph g = TestGraph();
  const PprApp app(/*stop_probability=*/0.2);
  const CycleRun serial = RunCycle(g, app, 1, {});
  for (const uint32_t threads : kThreadSweep) {
    const CycleRun parallel = RunCycle(g, app, threads, {});
    ExpectSameCorpus(serial.corpus, parallel.corpus);
    ExpectSameCycleStats(serial.stats, parallel.stats);
  }
}

// --- DistributedEngine: one shard per board (replicated mode) -------------

struct DistRun {
  WalkOutput corpus;
  DistributedRunStats stats;
};

DistRun RunDistributed(const CsrGraph& g, const apps::WalkApp& app,
                       const Partition& partition, uint32_t threads,
                       bool replicate,
                       const reliability::FaultConfig& faults) {
  DistributedConfig config;
  config.board.num_instances = 1;
  config.board.seed = 17;
  config.board.faults = faults;
  config.replicate_graph = replicate;
  config.num_threads = threads;
  const auto queries = apps::MakeVertexQueries(g, /*length=*/16,
                                               /*seed=*/5, /*limit=*/600);
  DistributedEngine engine(&g, &app, &partition, config);
  DistRun run;
  run.stats = engine.Run(queries, &run.corpus).value();
  return run;
}

void ExpectSameDistStats(const DistributedRunStats& a,
                         const DistributedRunStats& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.dram.requests, b.dram.requests);
  EXPECT_EQ(a.dram.bytes, b.dram.bytes);
  EXPECT_EQ(a.network.messages, b.network.messages);
  EXPECT_EQ(a.network.payload_bytes, b.network.payload_bytes);
  EXPECT_EQ(a.per_board_graph_bytes, b.per_board_graph_bytes);
  ExpectSameReliability(a.reliability, b.reliability);
}

TEST(ParallelDistributedTest, ReplicatedThreadCountDoesNotChangeResults) {
  const CsrGraph g = TestGraph();
  const StaticWalkApp app;
  const Partition partition = MakePartition(g, 4, PartitionStrategy::kHash);
  const DistRun serial =
      RunDistributed(g, app, partition, 1, /*replicate=*/true, {});
  EXPECT_GT(serial.stats.steps, 0u);
  for (const uint32_t threads : kThreadSweep) {
    const DistRun parallel =
        RunDistributed(g, app, partition, threads, /*replicate=*/true, {});
    ExpectSameCorpus(serial.corpus, parallel.corpus);
    ExpectSameDistStats(serial.stats, parallel.stats);
  }
}

TEST(ParallelDistributedTest, ReplicatedHoldsWithEarlyStoppingApp) {
  const CsrGraph g = TestGraph();
  const PprApp app(/*stop_probability=*/0.2);
  const Partition partition = MakePartition(g, 4, PartitionStrategy::kHash);
  const DistRun serial =
      RunDistributed(g, app, partition, 1, /*replicate=*/true, {});
  for (const uint32_t threads : kThreadSweep) {
    const DistRun parallel =
        RunDistributed(g, app, partition, threads, /*replicate=*/true, {});
    ExpectSameCorpus(serial.corpus, parallel.corpus);
    ExpectSameDistStats(serial.stats, parallel.stats);
  }
}

// Fault injection couples boards through failover, so the engine must
// fall back to the single coupled event loop — and still be invariant
// to the configured thread count.
TEST(ParallelDistributedTest, FaultInjectionFallsBackDeterministically) {
  const CsrGraph g = TestGraph();
  const StaticWalkApp app;
  const Partition partition = MakePartition(g, 4, PartitionStrategy::kHash);
  reliability::FaultConfig faults;
  faults.enabled = true;
  faults.seed = 3;
  faults.fail_cycle = 1 << 14;
  faults.fail_board = 1;
  faults.checkpoint_interval_cycles = 1 << 12;
  const DistRun serial =
      RunDistributed(g, app, partition, 1, /*replicate=*/true, faults);
  EXPECT_EQ(serial.stats.reliability.board_failures, 1u);
  for (const uint32_t threads : kThreadSweep) {
    const DistRun parallel =
        RunDistributed(g, app, partition, threads, /*replicate=*/true,
                       faults);
    ExpectSameCorpus(serial.corpus, parallel.corpus);
    ExpectSameDistStats(serial.stats, parallel.stats);
  }
}

// Self-healing runs — a cascade of deaths absorbed by hot spares — add
// membership events and rebuild completions to the coupled event loop;
// corpus, stats, the membership log, and the span JSON document must all
// stay byte-identical across thread counts.
TEST(ParallelDistributedTest, SpareRebuildCascadeDeterministicAcrossThreads) {
  const CsrGraph g = TestGraph();
  const StaticWalkApp app;
  const Partition partition = MakePartition(g, 4, PartitionStrategy::kHash);
  const auto queries = apps::MakeVertexQueries(g, /*length=*/16,
                                               /*seed=*/5, /*limit=*/600);
  struct Run {
    WalkOutput corpus;
    DistributedRunStats stats;
    std::string span_json;
    std::string membership_json;
  };
  auto run_with = [&](uint32_t threads) {
    DistributedConfig config;
    config.board.num_instances = 1;
    config.board.seed = 17;
    config.replicate_graph = true;
    config.num_threads = threads;
    config.num_spare_boards = 1;
    config.rebuild_bytes_per_cycle = 256.0;
    config.board.faults.enabled = true;
    config.board.faults.seed = 3;
    config.board.faults.checkpoint_interval_cycles = 1 << 12;
    config.board.faults.board_deaths = {{1 << 14, 1}, {1 << 15, 2}};
    obs::SpanRecorder spans;
    config.board.spans = &spans;
    DistributedEngine engine(&g, &app, &partition, config);
    Run run;
    run.stats = engine.Run(queries, &run.corpus).value();
    run.span_json = spans.ToJsonString();
    run.membership_json =
        reliability::MembershipToJson(run.stats.membership).Dump();
    return run;
  };
  const Run serial = run_with(1);
  EXPECT_EQ(serial.stats.reliability.board_failures, 2u);
  EXPECT_EQ(serial.stats.reliability.spares_activated, 1u);
  EXPECT_EQ(serial.stats.reliability.walkers_lost, 0u);
  EXPECT_TRUE(
      reliability::CheckMembershipLog(serial.stats.membership).ok());
  for (const uint32_t threads : kThreadSweep) {
    const Run parallel = run_with(threads);
    ExpectSameCorpus(serial.corpus, parallel.corpus);
    ExpectSameDistStats(serial.stats, parallel.stats);
    EXPECT_EQ(serial.membership_json, parallel.membership_json);
    EXPECT_EQ(serial.span_json, parallel.span_json) << "threads " << threads;
  }
}

TEST(ParallelDistributedTest, PartitionedModeUnaffectedByThreads) {
  const CsrGraph g = TestGraph();
  const StaticWalkApp app;
  const Partition partition = MakePartition(g, 4, PartitionStrategy::kHash);
  const DistRun serial =
      RunDistributed(g, app, partition, 1, /*replicate=*/false, {});
  EXPECT_GT(serial.stats.migrations, 0u);
  for (const uint32_t threads : kThreadSweep) {
    const DistRun parallel =
        RunDistributed(g, app, partition, threads, /*replicate=*/false, {});
    ExpectSameCorpus(serial.corpus, parallel.corpus);
    ExpectSameDistStats(serial.stats, parallel.stats);
  }
}

// --- WalkService: one shard per admission board group ---------------------

struct ServiceRun {
  WalkOutput corpus;
  ServiceRunStats stats;
  std::vector<service::QueryOutcome> outcomes;
};

ServiceRun RunService(const CsrGraph& g, const apps::WalkApp& app,
                      const Partition& partition, uint32_t shards,
                      uint32_t threads, bool overload) {
  ServiceConfig config;
  config.cluster.board.num_instances = 1;
  config.cluster.board.seed = 13;
  config.cluster.replicate_graph = true;
  config.cluster.num_threads = threads;
  config.admission_shards = shards;
  config.arrivals.seed = 7;
  config.arrivals.num_queries = 384;
  config.arrivals.walk_length = 16;
  if (overload) {
    config.arrivals.rate_per_kcycle = 32.0;
    config.arrivals.deadline_cycles = 1 << 12;
    config.queue_capacity = 4;
    config.retry_budget = 1;
    config.retry_backoff_cycles = 256;
    config.cluster.inflight_walkers_per_board = 2;
  } else {
    config.arrivals.rate_per_kcycle = 0.05;
  }
  WalkService walk_service(&g, &app, &partition, config);
  ServiceRun run;
  run.stats = walk_service.Run(&run.corpus).value();
  run.outcomes = walk_service.outcomes();
  return run;
}

void ExpectSameServiceStats(const ServiceRunStats& a,
                            const ServiceRunStats& b) {
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.shed_queue_full, b.shed_queue_full);
  EXPECT_EQ(a.shed_breaker, b.shed_breaker);
  EXPECT_EQ(a.shed_deadline, b.shed_deadline);
  EXPECT_EQ(a.deadline_violations, b.deadline_violations);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.degraded, b.degraded);
  EXPECT_EQ(a.breaker_trips, b.breaker_trips);
  EXPECT_EQ(a.cycles, b.cycles);
  ASSERT_EQ(a.queue_delay_cycles.count(), b.queue_delay_cycles.count());
  EXPECT_EQ(a.queue_delay_cycles.sorted_samples(),
            b.queue_delay_cycles.sorted_samples());
  ASSERT_EQ(a.latency_cycles.count(), b.latency_cycles.count());
  EXPECT_EQ(a.latency_cycles.sorted_samples(),
            b.latency_cycles.sorted_samples());
  EXPECT_EQ(a.cluster.steps, b.cluster.steps);
  EXPECT_EQ(a.cluster.dram.bytes, b.cluster.dram.bytes);
}

TEST(ParallelServiceTest, ShardedThreadCountDoesNotChangeResults) {
  const CsrGraph g = TestGraph();
  const StaticWalkApp app;
  const Partition partition = MakePartition(g, 4, PartitionStrategy::kHash);
  const ServiceRun serial = RunService(g, app, partition, /*shards=*/4, 1,
                                       /*overload=*/false);
  EXPECT_GT(serial.stats.completed, 0u);
  for (const uint32_t threads : kThreadSweep) {
    const ServiceRun parallel = RunService(g, app, partition, /*shards=*/4,
                                           threads, /*overload=*/false);
    ExpectSameCorpus(serial.corpus, parallel.corpus);
    ExpectSameServiceStats(serial.stats, parallel.stats);
    EXPECT_EQ(serial.outcomes, parallel.outcomes);
  }
}

TEST(ParallelServiceTest, HoldsUnderOverload) {
  const CsrGraph g = TestGraph();
  const StaticWalkApp app;
  const Partition partition = MakePartition(g, 4, PartitionStrategy::kHash);
  const ServiceRun serial = RunService(g, app, partition, /*shards=*/4, 1,
                                       /*overload=*/true);
  EXPECT_GT(serial.stats.Shed() + serial.stats.retries, 0u);
  for (const uint32_t threads : kThreadSweep) {
    const ServiceRun parallel = RunService(g, app, partition, /*shards=*/4,
                                           threads, /*overload=*/true);
    ExpectSameCorpus(serial.corpus, parallel.corpus);
    ExpectSameServiceStats(serial.stats, parallel.stats);
    EXPECT_EQ(serial.outcomes, parallel.outcomes);
  }
}

TEST(ParallelServiceTest, SingleShardUnaffectedByThreads) {
  const CsrGraph g = TestGraph();
  const StaticWalkApp app;
  const Partition partition = MakePartition(g, 4, PartitionStrategy::kHash);
  const ServiceRun serial = RunService(g, app, partition, /*shards=*/1, 1,
                                       /*overload=*/false);
  for (const uint32_t threads : kThreadSweep) {
    const ServiceRun parallel = RunService(g, app, partition, /*shards=*/1,
                                           threads, /*overload=*/false);
    ExpectSameCorpus(serial.corpus, parallel.corpus);
    ExpectSameServiceStats(serial.stats, parallel.stats);
    EXPECT_EQ(serial.outcomes, parallel.outcomes);
  }
}

// --- configuration validation ---------------------------------------------

TEST(ParallelConfigTest, RejectsOversizedThreadCounts) {
  core::AcceleratorConfig accel;
  accel.num_threads = SimThreadPool::kMaxThreads + 1;
  EXPECT_FALSE(core::ValidateConfig(accel, false).ok());

  DistributedConfig dist;
  dist.num_threads = SimThreadPool::kMaxThreads + 1;
  EXPECT_FALSE(distributed::ValidateDistributedConfig(dist).ok());
}

TEST(ParallelConfigTest, RejectsBadAdmissionShards) {
  ServiceConfig config;
  config.admission_shards = 0;
  EXPECT_FALSE(service::ValidateServiceConfig(config).ok());

  config.admission_shards = 2;
  config.cluster.replicate_graph = false;
  EXPECT_FALSE(service::ValidateServiceConfig(config).ok());

  config.cluster.replicate_graph = true;
  config.cluster.board.faults.enabled = true;
  EXPECT_FALSE(service::ValidateServiceConfig(config).ok());
  config.cluster.board.faults.enabled = false;
  EXPECT_TRUE(service::ValidateServiceConfig(config).ok());
}

TEST(ParallelConfigTest, ShardsMustDivideBoards) {
  const CsrGraph g = TestGraph();
  const StaticWalkApp app;
  const Partition partition = MakePartition(g, 4, PartitionStrategy::kHash);
  ServiceConfig config;
  config.cluster.replicate_graph = true;
  config.admission_shards = 3;  // 4 boards: does not divide
  WalkService walk_service(&g, &app, &partition, config);
  EXPECT_FALSE(walk_service.Run().ok());
}

}  // namespace
}  // namespace lightrw
