#include <cmath>
#include <map>

#include <gtest/gtest.h>

#include "apps/walk_app.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "lightrw/cycle_engine.h"
#include "lightrw/uniform_engine.h"

namespace lightrw::core {
namespace {

using apps::WalkQuery;
using graph::CsrGraph;
using graph::VertexId;

AcceleratorConfig TestConfig() {
  AcceleratorConfig config;
  config.num_instances = 1;
  config.seed = 3;
  return config;
}

TEST(UniformCycleEngineTest, ProducesValidWalks) {
  const CsrGraph g = graph::MakeDatasetStandIn(graph::Dataset::kYoutube,
                                               /*scale_shift=*/11, 5);
  UniformCycleEngine engine(&g, TestConfig());
  const auto queries = apps::MakeVertexQueries(g, 8, 3, 200);
  baseline::WalkOutput output;
  const auto stats = engine.Run(queries, &output);
  EXPECT_EQ(stats.queries, queries.size());
  ASSERT_EQ(output.num_paths(), queries.size());
  for (size_t i = 0; i < output.num_paths(); ++i) {
    const auto path = output.Path(i);
    EXPECT_EQ(path[0], queries[i].start);
    for (size_t s = 1; s < path.size(); ++s) {
      EXPECT_TRUE(g.HasEdge(path[s - 1], path[s]));
    }
  }
}

TEST(UniformCycleEngineTest, SamplesUniformly) {
  graph::GraphBuilder builder(4, false);
  builder.AddEdge(0, 1, /*weight=*/100);  // weights must be ignored
  builder.AddEdge(0, 2, 1);
  builder.AddEdge(0, 3, 1);
  const CsrGraph g = std::move(builder).Build();
  UniformCycleEngine engine(&g, TestConfig());
  constexpr int kTrials = 30000;
  const std::vector<WalkQuery> queries(kTrials, WalkQuery{0, 1});
  baseline::WalkOutput output;
  engine.Run(queries, &output);
  std::map<VertexId, int> counts;
  for (size_t i = 0; i < output.num_paths(); ++i) {
    ++counts[output.Path(i)[1]];
  }
  const double expected = kTrials / 3.0;
  for (VertexId v = 1; v <= 3; ++v) {
    EXPECT_NEAR(counts[v], expected, 5 * std::sqrt(expected)) << v;
  }
}

TEST(UniformCycleEngineTest, TouchesOneRecordPerStep) {
  const CsrGraph g = graph::MakeDatasetStandIn(graph::Dataset::kOrkut,
                                               /*scale_shift=*/10, 5);
  UniformCycleEngine engine(&g, TestConfig());
  const auto queries = apps::MakeVertexQueries(g, 10, 3, 300);
  const auto stats = engine.Run(queries);
  // Uniform sampling reads exactly one edge record per step.
  EXPECT_EQ(stats.edges_examined, stats.steps);
  // LightRW streams whole adjacency lists: far more bytes per step on a
  // dense graph.
  apps::StaticWalkApp app;
  CycleEngine lightrw(&g, &app, TestConfig());
  const auto lightrw_stats = lightrw.Run(queries);
  EXPECT_GT(
      lightrw_stats.dram.bytes / std::max<uint64_t>(1, lightrw_stats.steps),
      stats.dram.bytes / std::max<uint64_t>(1, stats.steps));
}

TEST(UniformCycleEngineTest, FasterThanGeneralEngineOnUniformWalks) {
  const CsrGraph g = graph::MakeDatasetStandIn(graph::Dataset::kOrkut,
                                               /*scale_shift=*/10, 5);
  const auto queries = apps::MakeVertexQueries(g, 10, 3, 500);
  UniformCycleEngine uniform(&g, TestConfig());
  apps::StaticWalkApp app;
  CycleEngine general(&g, &app, TestConfig());
  const auto uniform_stats = uniform.Run(queries);
  const auto general_stats = general.Run(queries);
  EXPECT_LT(uniform_stats.cycles, general_stats.cycles);
}

TEST(UniformCycleEngineTest, Deterministic) {
  const CsrGraph g = graph::MakeDatasetStandIn(graph::Dataset::kYoutube,
                                               /*scale_shift=*/12, 5);
  const auto queries = apps::MakeVertexQueries(g, 5, 3, 100);
  const auto a = UniformCycleEngine(&g, TestConfig()).Run(queries);
  const auto b = UniformCycleEngine(&g, TestConfig()).Run(queries);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.steps, b.steps);
}

}  // namespace
}  // namespace lightrw::core
