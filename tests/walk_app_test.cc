#include <gtest/gtest.h>

#include "apps/walk_app.h"
#include "graph/builder.h"

namespace lightrw::apps {
namespace {

using graph::GraphBuilder;

CsrGraph MakeLabeledTriangle() {
  // 0 -> 1 (rel 1), 1 -> 2 (rel 2), 2 -> 0 (rel 1), plus 0 -> 2 (rel 2).
  GraphBuilder builder(3, false);
  builder.AddEdge(0, 1, /*weight=*/5, /*relation=*/1);
  builder.AddEdge(1, 2, /*weight=*/7, /*relation=*/2);
  builder.AddEdge(2, 0, /*weight=*/2, /*relation=*/1);
  builder.AddEdge(0, 2, /*weight=*/3, /*relation=*/2);
  return std::move(builder).Build();
}

TEST(MetaPathAppTest, MatchingRelationKeepsWeight) {
  const CsrGraph g = MakeLabeledTriangle();
  MetaPathApp app({1, 2});
  WalkState state;
  state.step = 0;
  state.curr = 0;
  EXPECT_EQ(app.DynamicWeight(g, state, 1, 5, 1), 5u);  // rel 1 at step 0
  EXPECT_EQ(app.DynamicWeight(g, state, 2, 3, 2), 0u);  // rel 2 mismatched
  state.step = 1;
  EXPECT_EQ(app.DynamicWeight(g, state, 2, 7, 2), 7u);
  EXPECT_EQ(app.DynamicWeight(g, state, 1, 5, 1), 0u);
}

TEST(MetaPathAppTest, BeyondPathNothingSampleable) {
  const CsrGraph g = MakeLabeledTriangle();
  MetaPathApp app({1});
  WalkState state;
  state.step = 1;  // path length is 1
  EXPECT_EQ(app.DynamicWeight(g, state, 1, 5, 1), 0u);
}

TEST(MetaPathAppTest, DoesNotNeedPrevNeighbors) {
  MetaPathApp app({1});
  EXPECT_FALSE(app.needs_prev_neighbors());
  EXPECT_EQ(app.name(), "MetaPath");
}

TEST(Node2VecAppTest, FirstStepIsStatic) {
  const CsrGraph g = MakeLabeledTriangle();
  Node2VecApp app(/*p=*/2.0, /*q=*/0.5);
  WalkState state;
  state.curr = 0;
  state.prev = graph::kInvalidVertex;
  EXPECT_EQ(app.DynamicWeight(g, state, 1, 5, 1),
            5u * Node2VecApp::kWeightScale);
}

TEST(Node2VecAppTest, SecondOrderCases) {
  // Graph: 1 -> {0, 2, 3}; 0 -> 2 exists; 0 -> 3 does not.
  GraphBuilder builder(4, false);
  builder.AddEdge(1, 0, 1, 0);
  builder.AddEdge(1, 2, 1, 0);
  builder.AddEdge(1, 3, 1, 0);
  builder.AddEdge(0, 2, 1, 0);
  builder.AddEdge(0, 1, 1, 0);
  const CsrGraph g = std::move(builder).Build();

  Node2VecApp app(/*p=*/2.0, /*q=*/0.5);
  WalkState state;
  state.curr = 1;
  state.prev = 0;
  const Weight scale = Node2VecApp::kWeightScale;
  // Return edge (dst == prev): w/p.
  EXPECT_EQ(app.DynamicWeight(g, state, 0, 4, 0), 4u * scale / 2);
  // dst adjacent to prev: w.
  EXPECT_EQ(app.DynamicWeight(g, state, 2, 4, 0), 4u * scale);
  // dst not adjacent to prev: w/q = 2w.
  EXPECT_EQ(app.DynamicWeight(g, state, 3, 4, 0), 4u * scale * 2);
}

TEST(Node2VecAppTest, NeedsPrevNeighbors) {
  Node2VecApp app(2.0, 0.5);
  EXPECT_TRUE(app.needs_prev_neighbors());
  EXPECT_DOUBLE_EQ(app.p(), 2.0);
  EXPECT_DOUBLE_EQ(app.q(), 0.5);
}

TEST(Node2VecAppTest, FractionalScalesRound) {
  Node2VecApp app(/*p=*/3.0, /*q=*/7.0);
  const CsrGraph g = MakeLabeledTriangle();
  WalkState state;
  state.curr = 0;
  state.prev = 1;
  // 1/p = 85.33/256, rounds to 85.
  EXPECT_EQ(app.DynamicWeight(g, state, 1, 1, 0), 85u);
}

TEST(StaticWalkAppTest, PassesWeightThrough) {
  const CsrGraph g = MakeLabeledTriangle();
  StaticWalkApp app;
  WalkState state;
  EXPECT_EQ(app.DynamicWeight(g, state, 1, 9, 3), 9u);
  EXPECT_FALSE(app.needs_prev_neighbors());
}

TEST(RelationPathTest, OnlyUsesPresentRelations) {
  const CsrGraph g = MakeLabeledTriangle();  // relations 1 and 2 only
  const auto path = MakeRandomRelationPath(g, 64, 5);
  ASSERT_EQ(path.size(), 64u);
  for (const Relation r : path) {
    EXPECT_TRUE(r == 1 || r == 2);
  }
}

TEST(RelationPathTest, DeterministicPerSeed) {
  const CsrGraph g = MakeLabeledTriangle();
  EXPECT_EQ(MakeRandomRelationPath(g, 16, 9), MakeRandomRelationPath(g, 16, 9));
}

TEST(VertexQueriesTest, OnePerNonIsolatedVertex) {
  GraphBuilder builder(5, false);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(3, 0);
  // Vertex 2 and 4 have out-degree zero.
  const CsrGraph g = std::move(builder).Build();
  const auto queries = MakeVertexQueries(g, /*length=*/5, /*seed=*/1);
  EXPECT_EQ(queries.size(), 3u);
  for (const auto& q : queries) {
    EXPECT_GT(g.Degree(q.start), 0u);
    EXPECT_EQ(q.length, 5u);
  }
}

TEST(VertexQueriesTest, ShuffledAndTruncated) {
  GraphBuilder builder(100, false);
  for (graph::VertexId v = 0; v < 100; ++v) {
    builder.AddEdge(v, (v + 1) % 100);
  }
  const CsrGraph g = std::move(builder).Build();
  const auto all = MakeVertexQueries(g, 3, 42);
  EXPECT_EQ(all.size(), 100u);
  bool shuffled = false;
  for (size_t i = 0; i < all.size(); ++i) {
    shuffled |= all[i].start != i;
  }
  EXPECT_TRUE(shuffled);
  const auto capped = MakeVertexQueries(g, 3, 42, /*max_queries=*/10);
  EXPECT_EQ(capped.size(), 10u);
}

}  // namespace
}  // namespace lightrw::apps
