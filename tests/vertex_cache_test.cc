#include <gtest/gtest.h>

#include "graph/generators.h"
#include "lightrw/vertex_cache.h"
#include "rng/rng.h"

namespace lightrw::core {
namespace {

TEST(DirectMappedCacheTest, ColdMissThenHit) {
  DirectMappedCache cache(16);
  EXPECT_FALSE(cache.Probe(3));
  cache.Install(3, 10);
  EXPECT_TRUE(cache.Probe(3));
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(DirectMappedCacheTest, ConflictAlwaysReplaces) {
  DirectMappedCache cache(16);
  cache.Install(1, 100);
  cache.Install(17, 1);  // same set (1 mod 16), lower degree: still replaces
  EXPECT_FALSE(cache.Probe(1));
  EXPECT_TRUE(cache.Probe(17));
}

TEST(DegreeAwareCacheTest, HigherDegreeEvictsLower) {
  DegreeAwareCache cache(16);
  cache.Install(1, 5);
  cache.Install(17, 50);  // higher degree wins the set
  EXPECT_TRUE(cache.Probe(17));
  EXPECT_FALSE(cache.Probe(1));
}

TEST(DegreeAwareCacheTest, LowerDegreeDoesNotEvict) {
  DegreeAwareCache cache(16);
  cache.Install(1, 50);
  cache.Install(17, 5);  // lower degree: resident vertex retained
  EXPECT_TRUE(cache.Probe(1));
  EXPECT_FALSE(cache.Probe(17));
}

TEST(DegreeAwareCacheTest, EqualDegreeRetainsResident) {
  DegreeAwareCache cache(16);
  cache.Install(1, 5);
  cache.Install(17, 5);
  EXPECT_TRUE(cache.Probe(1));
}

TEST(DegreeAwareCacheTest, ReinstallSameVertexUpdates) {
  DegreeAwareCache cache(16);
  cache.Install(1, 5);
  cache.Install(1, 3);  // same vertex may refresh its own line
  EXPECT_TRUE(cache.Probe(1));
}

TEST(MakeVertexCacheTest, Factory) {
  EXPECT_EQ(MakeVertexCache(CacheKind::kNone, 16), nullptr);
  auto dmc = MakeVertexCache(CacheKind::kDirectMapped, 16);
  ASSERT_NE(dmc, nullptr);
  EXPECT_EQ(dmc->capacity(), 16u);
  auto dac = MakeVertexCache(CacheKind::kDegreeAware, 32);
  ASSERT_NE(dac, nullptr);
  EXPECT_EQ(dac->capacity(), 32u);
}

TEST(CacheStatsTest, MissRatio) {
  CacheStats stats;
  EXPECT_EQ(stats.MissRatio(), 0.0);
  stats.hits = 3;
  stats.misses = 1;
  EXPECT_DOUBLE_EQ(stats.MissRatio(), 0.25);
}

TEST(SetAssociativeCacheTest, LruKeepsRecentlyUsed) {
  SetAssociativeCache cache(8, 4, SetAssociativeCache::Replacement::kLru);
  // All of these map to set 0 (multiples of num_sets = 2).
  cache.Install(0, 1);
  cache.Install(2, 1);
  cache.Install(4, 1);
  cache.Install(6, 1);
  EXPECT_TRUE(cache.Probe(0));  // refresh 0's recency
  cache.Install(8, 1);          // evicts LRU = 2
  EXPECT_TRUE(cache.Probe(0));
  EXPECT_FALSE(cache.Probe(2));
  EXPECT_TRUE(cache.Probe(8));
}

TEST(SetAssociativeCacheTest, FifoIgnoresRecency) {
  SetAssociativeCache cache(8, 4, SetAssociativeCache::Replacement::kFifo);
  cache.Install(0, 1);
  cache.Install(2, 1);
  cache.Install(4, 1);
  cache.Install(6, 1);
  EXPECT_TRUE(cache.Probe(0));  // does not refresh under FIFO
  cache.Install(8, 1);          // evicts first-in = 0
  EXPECT_FALSE(cache.Probe(0));
  EXPECT_TRUE(cache.Probe(2));
}

TEST(SetAssociativeCacheTest, FillsInvalidWaysFirst) {
  SetAssociativeCache cache(8, 4, SetAssociativeCache::Replacement::kLru);
  cache.Install(0, 1);
  cache.Install(2, 1);
  EXPECT_TRUE(cache.Probe(0));
  EXPECT_TRUE(cache.Probe(2));
}

TEST(SetAssociativeCacheTest, SetsAreIndependent) {
  SetAssociativeCache cache(8, 4, SetAssociativeCache::Replacement::kLru);
  cache.Install(0, 1);  // set 0
  cache.Install(1, 1);  // set 1
  EXPECT_TRUE(cache.Probe(0));
  EXPECT_TRUE(cache.Probe(1));
}

TEST(MakeVertexCacheTest, SetAssociativeKinds) {
  auto lru = MakeVertexCache(CacheKind::kLru, 64);
  ASSERT_NE(lru, nullptr);
  EXPECT_EQ(lru->capacity(), 64u);
  auto fifo = MakeVertexCache(CacheKind::kFifo, 64);
  ASSERT_NE(fifo, nullptr);
}

// The paper's Fig. 11 claim in miniature: under a degree-proportional
// access stream (the stationary distribution of random walks), DAC's miss
// ratio is well below DMC's once the vertex set exceeds the cache.
TEST(DegreeAwareCacheTest, BeatsDirectMappedOnSkewedAccess) {
  graph::RmatOptions options;
  options.scale = 14;  // 16K vertices, 4x the cache capacity
  options.edge_factor = 8;
  options.seed = 77;
  const graph::CsrGraph g = graph::GenerateRmat(options);

  // Degree-proportional access stream: pick a uniform edge slot and access
  // its destination, matching Pr[v] ~ degree(v).
  rng::Xoshiro256StarStar gen(5);
  DegreeAwareCache dac(4096);
  DirectMappedCache dmc(4096);
  for (int i = 0; i < 200000; ++i) {
    const uint64_t slot = gen.NextBounded(g.num_edges());
    const graph::VertexId v = g.col_dst()[slot];
    if (!dac.Probe(v)) {
      dac.Install(v, g.Degree(v));
    }
    if (!dmc.Probe(v)) {
      dmc.Install(v, g.Degree(v));
    }
  }
  EXPECT_LT(dac.stats().MissRatio(), 0.8 * dmc.stats().MissRatio())
      << "DAC " << dac.stats().MissRatio() << " vs DMC "
      << dmc.stats().MissRatio();
}

// Conventional recency policies cannot exploit the degree skew: under the
// same degree-proportional stream DAC beats LRU too (paper §5.1's claim
// that LRU/FIFO are ineffective for GDRW's reuse distances).
TEST(DegreeAwareCacheTest, BeatsLruOnSkewedAccess) {
  graph::RmatOptions options;
  options.scale = 14;
  options.edge_factor = 8;
  options.seed = 77;
  const graph::CsrGraph g = graph::GenerateRmat(options);
  rng::Xoshiro256StarStar gen(5);
  DegreeAwareCache dac(4096);
  SetAssociativeCache lru(4096, 4, SetAssociativeCache::Replacement::kLru);
  for (int i = 0; i < 200000; ++i) {
    const uint64_t slot = gen.NextBounded(g.num_edges());
    const graph::VertexId v = g.col_dst()[slot];
    if (!dac.Probe(v)) {
      dac.Install(v, g.Degree(v));
    }
    if (!lru.Probe(v)) {
      lru.Install(v, g.Degree(v));
    }
  }
  EXPECT_LT(dac.stats().MissRatio(), lru.stats().MissRatio());
}

// With the whole vertex set fitting in the cache, both policies converge
// to near-zero miss ratios (Fig. 11, left side).
TEST(DegreeAwareCacheTest, SmallGraphFitsEntirely) {
  DegreeAwareCache cache(4096);
  rng::Xoshiro256StarStar gen(2);
  constexpr uint32_t kVertices = 1024;
  uint64_t misses_after_warmup = 0;
  for (int i = 0; i < 50000; ++i) {
    const graph::VertexId v =
        static_cast<graph::VertexId>(gen.NextBounded(kVertices));
    if (!cache.Probe(v)) {
      cache.Install(v, 1 + v % 7);
      if (i > 10000) {
        ++misses_after_warmup;
      }
    }
  }
  EXPECT_EQ(misses_after_warmup, 0u);
}

}  // namespace
}  // namespace lightrw::core
