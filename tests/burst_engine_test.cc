#include <tuple>

#include <gtest/gtest.h>

#include "hwsim/dram.h"
#include "lightrw/burst_engine.h"

namespace lightrw::core {
namespace {

constexpr uint32_t kBus = 64;

TEST(PlanBurstsTest, ZeroBytes) {
  const BurstPlan plan = PlanBursts(0, BurstStrategy{1, 16}, kBus);
  EXPECT_EQ(plan.long_bursts, 0u);
  EXPECT_EQ(plan.short_bursts, 0u);
  EXPECT_EQ(plan.loaded_bytes, 0u);
}

TEST(PlanBurstsTest, PaperExampleSplit) {
  // Paper Fig. 7 (expressed in bus words here): a request of 33 units with
  // S1=16, S2=1 becomes 2 long + 1 short; a request of 2 units becomes
  // 0 long + 2 short.
  const BurstStrategy strategy{1, 16};
  const BurstPlan a = PlanBursts(33ull * kBus, strategy, kBus);
  EXPECT_EQ(a.long_bursts, 2u);
  EXPECT_EQ(a.short_bursts, 1u);
  const BurstPlan b = PlanBursts(2ull * kBus, strategy, kBus);
  EXPECT_EQ(b.long_bursts, 0u);
  EXPECT_EQ(b.short_bursts, 2u);
}

TEST(PlanBurstsTest, ShortOnlyStrategy) {
  const BurstStrategy strategy{1, 0};  // b1+b0 baseline
  const BurstPlan plan = PlanBursts(1000, strategy, kBus);
  EXPECT_EQ(plan.long_bursts, 0u);
  EXPECT_EQ(plan.short_bursts, 16u);  // ceil(1000/64)
  EXPECT_EQ(plan.loaded_bytes, 1024u);
}

TEST(PlanBurstsTest, ExactLongMultiple) {
  const BurstStrategy strategy{1, 8};
  const BurstPlan plan = PlanBursts(8ull * kBus * 3, strategy, kBus);
  EXPECT_EQ(plan.long_bursts, 3u);
  EXPECT_EQ(plan.short_bursts, 0u);
  EXPECT_EQ(plan.loaded_bytes, 8ull * kBus * 3);
}

// Property sweep: over many request sizes and strategies, the loaded bytes
// cover the request and overshoot by less than one short burst — the
// paper's bound "the loaded unused data is no larger than S2".
class PlanBurstsProperty
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t>> {};

TEST_P(PlanBurstsProperty, OvershootBoundedByShortBurst) {
  const auto [short_beats, long_beats] = GetParam();
  const BurstStrategy strategy{short_beats, long_beats};
  for (uint64_t bytes = 1; bytes < 5000; bytes += 7) {
    const BurstPlan plan = PlanBursts(bytes, strategy, kBus);
    EXPECT_GE(plan.loaded_bytes, bytes);
    EXPECT_LT(plan.loaded_bytes - bytes,
              static_cast<uint64_t>(short_beats) * kBus)
        << "bytes=" << bytes;
    // Consistency: counts match the loaded bytes.
    const uint64_t reconstructed =
        static_cast<uint64_t>(plan.long_bursts) * long_beats * kBus +
        static_cast<uint64_t>(plan.short_bursts) * short_beats * kBus;
    EXPECT_EQ(reconstructed, plan.loaded_bytes);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, PlanBurstsProperty,
    ::testing::Values(std::make_tuple(1u, 0u), std::make_tuple(1u, 2u),
                      std::make_tuple(1u, 4u), std::make_tuple(1u, 8u),
                      std::make_tuple(1u, 16u), std::make_tuple(1u, 32u),
                      std::make_tuple(2u, 16u), std::make_tuple(1u, 64u)));

hwsim::DramConfig TestDram() {
  hwsim::DramConfig config;
  config.efficiency = 1.0;
  return config;
}

TEST(DynamicBurstEngineTest, FetchAccountsTraffic) {
  hwsim::DramChannel channel(TestDram());
  DynamicBurstEngine engine(&channel, BurstStrategy{1, 16});
  const hwsim::Cycle done = engine.Fetch(0, 33ull * kBus);
  EXPECT_GT(done, 0u);
  const BurstStats& stats = engine.stats();
  EXPECT_EQ(stats.requests, 1u);
  EXPECT_EQ(stats.long_bursts, 2u);
  EXPECT_EQ(stats.short_bursts, 1u);
  EXPECT_EQ(stats.requested_bytes, 33ull * kBus);
  EXPECT_EQ(stats.loaded_bytes, 33ull * kBus);
  EXPECT_EQ(channel.stats().useful_bytes, 33ull * kBus);
}

TEST(DynamicBurstEngineTest, ZeroByteFetchIsFree) {
  hwsim::DramChannel channel(TestDram());
  DynamicBurstEngine engine(&channel, BurstStrategy{1, 16});
  EXPECT_EQ(engine.Fetch(42, 0), 42u);
  EXPECT_EQ(engine.stats().requests, 0u);
}

TEST(DynamicBurstEngineTest, ValidDataRatio) {
  hwsim::DramChannel channel(TestDram());
  DynamicBurstEngine engine(&channel, BurstStrategy{1, 16});
  engine.Fetch(0, 32);  // one short burst loads 64 bytes for 32 requested
  EXPECT_DOUBLE_EQ(engine.stats().ValidDataRatio(), 0.5);
}

TEST(DynamicBurstEngineTest, LongStrategyFasterForBigFetch) {
  hwsim::DramChannel long_channel(TestDram());
  hwsim::DramChannel short_channel(TestDram());
  DynamicBurstEngine long_engine(&long_channel, BurstStrategy{1, 32});
  DynamicBurstEngine short_engine(&short_channel, BurstStrategy{1, 0});
  const uint64_t bytes = 64ull * kBus;  // 64-beat fetch
  const hwsim::Cycle long_done = long_engine.Fetch(0, bytes);
  const hwsim::Cycle short_done = short_engine.Fetch(0, bytes);
  EXPECT_LT(long_done, short_done);
}

TEST(DynamicBurstEngineTest, ShortStrategyWastesLessForTinyFetch) {
  hwsim::DramChannel a(TestDram());
  hwsim::DramChannel b(TestDram());
  DynamicBurstEngine fixed_long(&a, BurstStrategy{32, 0});  // 32-beat bursts
  DynamicBurstEngine dynamic(&b, BurstStrategy{1, 32});
  fixed_long.Fetch(0, 8);  // loads 2048 bytes for 8 requested
  dynamic.Fetch(0, 8);     // loads 64 bytes
  EXPECT_LT(dynamic.stats().loaded_bytes, fixed_long.stats().loaded_bytes);
  EXPECT_GT(dynamic.stats().ValidDataRatio(),
            fixed_long.stats().ValidDataRatio());
}

}  // namespace
}  // namespace lightrw::core
