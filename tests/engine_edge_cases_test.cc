// Cross-cutting edge cases and ablation-interplay tests for the three
// engines that the per-module suites do not cover.

#include <gtest/gtest.h>

#include "apps/ppr.h"
#include "apps/walk_app.h"
#include "baseline/engine.h"
#include "common/histogram.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "lightrw/cycle_engine.h"
#include "lightrw/functional_engine.h"
#include "lightrw/report.h"

namespace lightrw {
namespace {

using apps::StaticWalkApp;
using apps::WalkQuery;
using graph::CsrGraph;
using graph::VertexId;

TEST(SampleStatsMergeTest, CombinesSamples) {
  SampleStats a, b;
  a.Add(1.0);
  a.Add(3.0);
  b.Add(2.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.Median(), 2.0);
  EXPECT_DOUBLE_EQ(a.sum(), 6.0);
}

TEST(BaselineEngineTest, MultithreadedLatencyMerged) {
  const CsrGraph g = graph::MakeDatasetStandIn(graph::Dataset::kYoutube,
                                               /*scale_shift=*/11, 5);
  StaticWalkApp app;
  baseline::BaselineConfig config;
  config.num_threads = 3;
  config.collect_latency = true;
  baseline::BaselineEngine engine(&g, &app, config);
  const auto queries = apps::MakeVertexQueries(g, 5, 4, 90);
  const auto stats = engine.Run(queries);
  EXPECT_EQ(stats.query_latency_seconds.count(), queries.size());
}

TEST(CycleEngineTest, StagedModeStillProducesValidWalks) {
  const CsrGraph g = graph::MakeDatasetStandIn(graph::Dataset::kYoutube,
                                               /*scale_shift=*/11, 5);
  StaticWalkApp app;
  core::AcceleratorConfig config;
  config.num_instances = 1;
  config.enable_wrs_pipeline = false;  // staged ablation path
  core::CycleEngine engine(&g, &app, config);
  const auto queries = apps::MakeVertexQueries(g, 6, 3, 100);
  baseline::WalkOutput output;
  const auto stats = engine.Run(queries, &output);
  EXPECT_EQ(stats.queries, queries.size());
  for (size_t i = 0; i < output.num_paths(); ++i) {
    const auto path = output.Path(i);
    for (size_t s = 1; s < path.size(); ++s) {
      EXPECT_TRUE(g.HasEdge(path[s - 1], path[s]));
    }
  }
}

TEST(CycleEngineTest, AllAblationsComposable) {
  // WRS off + DAC off + short-only bursts must still run and be the
  // slowest configuration of all.
  const CsrGraph g = graph::MakeDatasetStandIn(graph::Dataset::kYoutube,
                                               /*scale_shift=*/11, 5);
  StaticWalkApp app;
  const auto queries = apps::MakeVertexQueries(g, 6, 3, 150);

  core::AcceleratorConfig best;
  best.num_instances = 1;
  core::AcceleratorConfig worst = best;
  worst.enable_wrs_pipeline = false;
  worst.cache_kind = core::CacheKind::kNone;
  worst.burst = core::BurstStrategy{1, 0};

  const auto fast = core::CycleEngine(&g, &app, best).Run(queries);
  const auto slow = core::CycleEngine(&g, &app, worst).Run(queries);
  EXPECT_GT(slow.cycles, fast.cycles);
}

TEST(CycleEngineTest, LruAndFifoCachesRunEndToEnd) {
  const CsrGraph g = graph::MakeDatasetStandIn(graph::Dataset::kYoutube,
                                               /*scale_shift=*/11, 5);
  StaticWalkApp app;
  const auto queries = apps::MakeVertexQueries(g, 6, 3, 150);
  for (const auto kind : {core::CacheKind::kLru, core::CacheKind::kFifo}) {
    core::AcceleratorConfig config;
    config.num_instances = 1;
    config.cache_kind = kind;
    const auto stats = core::CycleEngine(&g, &app, config).Run(queries);
    EXPECT_EQ(stats.queries, queries.size());
    EXPECT_GT(stats.cache.accesses(), 0u);
  }
}

TEST(CycleEngineTest, EffectiveBandwidthBelowAggregatePeak) {
  const CsrGraph g = graph::MakeDatasetStandIn(graph::Dataset::kOrkut,
                                               /*scale_shift=*/10, 5);
  StaticWalkApp app;
  core::AcceleratorConfig config;
  config.num_instances = 4;
  const auto stats = core::CycleEngine(&g, &app, config).Run(
      apps::MakeVertexQueries(g, 8, 3, 400));
  const double aggregate_peak =
      4.0 * 64.0 * config.dram.clock_hz * config.dram.efficiency;
  EXPECT_GT(stats.EffectiveBandwidth(), 0.0);
  EXPECT_LT(stats.EffectiveBandwidth(), aggregate_peak);
}

TEST(CycleEngineTest, MoreQueriesThanSlotsAllComplete) {
  const CsrGraph g = graph::MakeDatasetStandIn(graph::Dataset::kYoutube,
                                               /*scale_shift=*/12, 5);
  StaticWalkApp app;
  core::AcceleratorConfig config;
  config.num_instances = 2;
  config.inflight_queries = 4;  // tiny pipeline, many waves of queries
  core::CycleEngine engine(&g, &app, config);
  const auto queries = apps::MakeVertexQueries(g, 4, 3, 500);
  const auto stats = engine.Run(queries);
  EXPECT_EQ(stats.queries, queries.size());
}

TEST(FunctionalEngineTest, IsolatedStartVertexRetiresImmediately) {
  graph::GraphBuilder builder(3, false);
  builder.AddEdge(1, 2);
  const CsrGraph g = std::move(builder).Build();
  StaticWalkApp app;
  core::AcceleratorConfig config;
  core::FunctionalEngine engine(&g, &app, config);
  const std::vector<WalkQuery> queries = {{0, 5}};
  baseline::WalkOutput output;
  const auto stats = engine.Run(queries, &output);
  EXPECT_EQ(stats.steps, 0u);
  ASSERT_EQ(output.num_paths(), 1u);
  EXPECT_EQ(output.Path(0).size(), 1u);
}

TEST(WalkOutputTest, PathAccessors) {
  baseline::WalkOutput output;
  output.vertices = {7, 8, 9, 3};
  output.offsets = {0, 3, 4};
  ASSERT_EQ(output.num_paths(), 2u);
  EXPECT_EQ(output.Path(0).size(), 3u);
  EXPECT_EQ(output.Path(0)[2], 9u);
  EXPECT_EQ(output.Path(1)[0], 3u);
}

TEST(UndirectedBuilderTest, SelfLoopStoredOnce) {
  graph::GraphBuilder builder(2, /*undirected=*/true);
  builder.AddEdge(0, 0);
  builder.AddEdge(0, 1);
  const CsrGraph g = std::move(builder).Build();
  // The self loop must not be duplicated by the reverse pass.
  EXPECT_EQ(g.Degree(0), 2u);  // {0, 1}
  EXPECT_EQ(g.Degree(1), 1u);
  EXPECT_TRUE(g.HasEdge(0, 0));
}

TEST(PprOnCycleEngineTest, StopsRespectQueryCap) {
  const CsrGraph g = graph::MakeDatasetStandIn(graph::Dataset::kYoutube,
                                               /*scale_shift=*/11, 5);
  apps::PprApp app(0.01);  // very low stop prob: length cap dominates
  core::AcceleratorConfig config;
  config.num_instances = 1;
  core::CycleEngine engine(&g, &app, config);
  const std::vector<WalkQuery> queries(500, WalkQuery{0, 5});
  baseline::WalkOutput output;
  engine.Run(queries, &output);
  for (size_t i = 0; i < output.num_paths(); ++i) {
    EXPECT_LE(output.Path(i).size(), 6u);
  }
}

TEST(HbmConfigTest, MoreNarrowChannelsTradeOff) {
  // HBM deployment study: 8 pseudo-channels of half-width HBM vs 4 DDR4
  // channels. More instances win on parallelism even though each channel
  // is narrower.
  const CsrGraph g = graph::MakeDatasetStandIn(graph::Dataset::kLiveJournal,
                                               /*scale_shift=*/11, 5);
  StaticWalkApp app;
  const auto queries = apps::MakeVertexQueries(g, 8, 3, 1024);

  core::AcceleratorConfig ddr;
  ddr.num_instances = 4;
  core::AcceleratorConfig hbm = ddr;
  hbm.dram = core::HbmPseudoChannelDram();
  hbm.num_instances = 4;  // per-channel comparison first

  const auto ddr_stats = core::CycleEngine(&g, &app, ddr).Run(queries);
  const auto hbm_stats = core::CycleEngine(&g, &app, hbm).Run(queries);
  // Same instance count: the narrower HBM channels are no faster.
  EXPECT_GE(hbm_stats.cycles, ddr_stats.cycles * 9 / 10);
  // Peak bandwidth per channel is halved.
  hwsim::DramChannel hbm_channel(core::HbmPseudoChannelDram());
  hwsim::DramChannel ddr_channel{hwsim::DramConfig{}};
  EXPECT_NEAR(hbm_channel.PeakBandwidth() / ddr_channel.PeakBandwidth(),
              0.5, 1e-9);
}

TEST(RunReportTest, MentionsAllSections) {
  const CsrGraph g = graph::MakeDatasetStandIn(graph::Dataset::kYoutube,
                                               /*scale_shift=*/12, 5);
  apps::Node2VecApp app(2.0, 0.5);
  core::AcceleratorConfig config;
  config.num_instances = 2;
  core::CycleEngine engine(&g, &app, config);
  const auto queries = apps::MakeVertexQueries(g, 5, 3, 50);
  const auto stats = engine.Run(queries);

  core::RunReportInputs inputs;
  inputs.graph = &g;
  inputs.config = &config;
  inputs.stats = &stats;
  inputs.app_name = app.name();
  inputs.needs_prev_neighbors = true;
  inputs.num_queries = queries.size();
  inputs.query_length = 5;
  const std::string report = core::FormatRunReport(inputs);
  for (const char* expected :
       {"Node2Vec", "kernel:", "memory:", "row cache:", "burst engine:",
        "pcie:", "power:", "resources:"}) {
    EXPECT_NE(report.find(expected), std::string::npos) << expected;
  }
}

}  // namespace
}  // namespace lightrw
