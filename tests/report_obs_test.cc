// Integration tests for the observability wiring: FormatRunReport's
// stage-attribution section, the CycleEngine trace export, and metric
// snapshot determinism under a fixed seed.

#include <map>
#include <set>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "apps/walk_app.h"
#include "graph/generators.h"
#include "lightrw/cycle_engine.h"
#include "lightrw/report.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace lightrw {
namespace {

graph::CsrGraph TestGraph() {
  graph::RmatOptions options;
  options.scale = 9;
  options.seed = 7;
  return graph::GenerateRmat(options);
}

core::AccelRunStats RunInstrumented(const graph::CsrGraph& g,
                                    obs::MetricsRegistry* metrics,
                                    obs::TraceRecorder* trace) {
  apps::Node2VecApp app(2.0, 0.5);
  core::AcceleratorConfig config;
  config.seed = 99;
  config.metrics = metrics;
  config.trace = trace;
  core::CycleEngine engine(&g, &app, config);
  const auto queries = apps::MakeVertexQueries(g, /*length=*/8,
                                               /*seed=*/99, /*count=*/128);
  return engine.Run(queries);
}

TEST(ReportObsTest, RunReportNamesStageAttribution) {
  const graph::CsrGraph g = TestGraph();
  const core::AccelRunStats stats = RunInstrumented(g, nullptr, nullptr);
  ASSERT_GT(stats.stage.Total(), 0u);

  apps::Node2VecApp app(2.0, 0.5);
  core::AcceleratorConfig config;
  core::RunReportInputs inputs;
  inputs.graph = &g;
  inputs.config = &config;
  inputs.stats = &stats;
  inputs.app_name = app.name();
  inputs.num_queries = 128;
  inputs.query_length = 8;
  const std::string report = core::FormatRunReport(inputs);

  EXPECT_NE(report.find("stage attribution"), std::string::npos);
  EXPECT_NE(report.find("row lookup"), std::string::npos);
  EXPECT_NE(report.find("adjacency fetch"), std::string::npos);
  EXPECT_NE(report.find("sampler tail"), std::string::npos);
  EXPECT_NE(report.find("pipeline latency"), std::string::npos);
  // Shares are percentages of the stage total, so each is <= 100.
  EXPECT_LE(stats.stage.Share(stats.stage.info_cycles), 1.0);
  EXPECT_LE(stats.stage.Share(stats.stage.fetch_cycles), 1.0);
}

TEST(ReportObsTest, TraceCoversEveryPipelineStage) {
  const graph::CsrGraph g = TestGraph();
  obs::TraceRecorder trace;
  RunInstrumented(g, nullptr, &trace);
  ASSERT_GT(trace.num_events(), 0u);

  const auto parsed = obs::Json::Parse(trace.ToJsonString());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const obs::Json* events = parsed.value().Find("traceEvents");
  ASSERT_NE(events, nullptr);

  std::set<std::string> names;
  std::map<std::pair<uint64_t, uint64_t>, uint64_t> last_ts_per_track;
  for (const obs::Json& event : events->array()) {
    const std::string& phase = event.Find("ph")->string_value();
    if (phase == "M") {
      continue;
    }
    names.insert(event.Find("name")->string_value());
    // Timestamps must be monotone within each (pid, tid) track.
    const auto track = std::make_pair(event.Find("pid")->uint_value(),
                                      event.Find("tid")->uint_value());
    const uint64_t ts = event.Find("ts")->uint_value();
    const auto it = last_ts_per_track.find(track);
    if (it != last_ts_per_track.end()) {
      EXPECT_GE(ts, it->second);
    }
    last_ts_per_track[track] = ts;
  }

  // At least one event from every pipeline stage.
  EXPECT_TRUE(names.count("row_lookup"));
  EXPECT_TRUE(names.count("adjacency_fetch"));
  EXPECT_TRUE(names.count("wrs_consume"));
  EXPECT_TRUE(names.count("dram_request"));
  EXPECT_TRUE(names.count("query_retire"));
  // The cache is on by default, so probes show up too.
  EXPECT_TRUE(names.count("cache_hit") || names.count("cache_miss"));
}

TEST(ReportObsTest, MetricsSnapshotIsDeterministicUnderFixedSeed) {
  const graph::CsrGraph g = TestGraph();
  obs::MetricsRegistry first;
  obs::MetricsRegistry second;
  RunInstrumented(g, &first, nullptr);
  RunInstrumented(g, &second, nullptr);
  EXPECT_EQ(first.ToJsonString(), second.ToJsonString());
  EXPECT_GT(first.NumMetrics(), 0u);

  const auto parsed = obs::Json::Parse(first.ToJsonString());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  // The per-instance step counters must sum to the run's step total.
  const core::AccelRunStats stats = RunInstrumented(g, nullptr, nullptr);
  uint64_t steps = 0;
  for (const obs::Json& metric :
       parsed.value().Find("metrics")->array()) {
    if (metric.Find("name")->string_value() == "accel.instance.steps") {
      steps += metric.Find("value")->uint_value();
    }
  }
  EXPECT_EQ(steps, stats.steps);
}

TEST(ReportObsTest, TraceCapBoundsEngineRun) {
  const graph::CsrGraph g = TestGraph();
  obs::TraceConfig config;
  config.max_events = 100;
  obs::TraceRecorder trace(config);
  RunInstrumented(g, nullptr, &trace);
  // The engine checks accepting() before emitting, so the run stops at
  // exactly the cap instead of counting drops in the recorder.
  EXPECT_EQ(trace.num_events(), 100u);
  EXPECT_FALSE(trace.accepting());
  // The export must still be valid JSON.
  EXPECT_TRUE(obs::Json::Parse(trace.ToJsonString()).ok());
}

}  // namespace
}  // namespace lightrw
