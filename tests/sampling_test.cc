#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "rng/rng.h"
#include "rng/stat_tests.h"
#include "sampling/alias.h"
#include "sampling/inverse_transform.h"
#include "sampling/parallel_wrs.h"
#include "sampling/reservoir.h"
#include "sampling/sampler.h"

namespace lightrw::sampling {
namespace {

using graph::Weight;

// Runs `trials` draws with `draw` and chi-square-tests the empirical
// distribution against weights (zero-weight items must never appear).
template <typename DrawFn>
void ExpectMatchesWeights(const std::vector<Weight>& weights, int trials,
                          DrawFn draw) {
  std::vector<uint64_t> counts(weights.size(), 0);
  for (int t = 0; t < trials; ++t) {
    const size_t idx = draw();
    ASSERT_LT(idx, weights.size());
    ASSERT_GT(weights[idx], 0u) << "zero-weight item sampled";
    ++counts[idx];
  }
  const double total =
      std::accumulate(weights.begin(), weights.end(), 0.0);
  // Chi-square over the positive-weight support.
  std::vector<uint64_t> observed;
  std::vector<double> expected;
  for (size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] > 0) {
      observed.push_back(counts[i]);
      expected.push_back(trials * weights[i] / total);
    } else {
      EXPECT_EQ(counts[i], 0u);
    }
  }
  ASSERT_GE(observed.size(), 2u);
  const auto result = rng::ChiSquareTest(observed, expected);
  EXPECT_GT(result.p_value, 1e-4)
      << "chi2=" << result.statistic << " df=" << result.degrees_of_freedom;
}

TEST(WrsSelectTest, ZeroWeightNeverSelected) {
  for (uint32_t r : {0u, 1u, 1u << 31, UINT32_MAX}) {
    EXPECT_FALSE(WrsSelect(0, 100, r));
  }
}

TEST(WrsSelectTest, SoleItemAlmostAlwaysSelected) {
  // First positive item: inclusive sum equals its weight, so selection
  // probability is ~1 (up to the 2^-32 integer rounding).
  EXPECT_TRUE(WrsSelect(5, 5, 0));
  EXPECT_TRUE(WrsSelect(5, 5, UINT32_MAX - 2));
}

TEST(WrsSelectTest, HalfWeightMatchesCoinFlip) {
  // w=1, S=2: selection iff 2^32 > r*2 + 1, i.e. r < 2^31.
  EXPECT_TRUE(WrsSelect(1, 2, 0));
  EXPECT_TRUE(WrsSelect(1, 2, (1u << 31) - 1));
  EXPECT_FALSE(WrsSelect(1, 2, 1u << 31));
}

TEST(WrsSelectTest, LargeSumsDoNotOverflow) {
  // Inclusive sums beyond 2^32 exercise the 128-bit path.
  const uint64_t huge = (1ull << 40) + 12345;
  EXPECT_FALSE(WrsSelect(1, huge, UINT32_MAX));
  EXPECT_TRUE(WrsSelect(UINT32_MAX, huge, 0));
}

TEST(ReservoirSamplerTest, EmptyStreamYieldsNoSample) {
  rng::ThunderingRng rng(1, 1);
  ReservoirSampler sampler(&rng, 0);
  EXPECT_EQ(sampler.selected(), kNoSample);
}

TEST(ReservoirSamplerTest, AllZeroWeightsYieldNoSample) {
  rng::ThunderingRng rng(1, 1);
  ReservoirSampler sampler(&rng, 0);
  for (size_t i = 0; i < 10; ++i) {
    sampler.Offer(i, 0);
  }
  EXPECT_EQ(sampler.selected(), kNoSample);
  EXPECT_EQ(sampler.weight_sum(), 0u);
}

TEST(ReservoirSamplerTest, SinglePositiveItemAlwaysWins) {
  rng::ThunderingRng rng(1, 2);
  for (int trial = 0; trial < 100; ++trial) {
    ReservoirSampler sampler(&rng, 0);
    sampler.Offer(0, 0);
    sampler.Offer(1, 7);
    sampler.Offer(2, 0);
    EXPECT_EQ(sampler.selected(), 1u);
  }
}

TEST(ReservoirSamplerTest, MatchesWeightDistribution) {
  const std::vector<Weight> weights = {4, 9, 1, 0, 6};
  rng::ThunderingRng rng(1, 42);
  ReservoirSampler sampler(&rng, 0);
  ExpectMatchesWeights(weights, 40000, [&] {
    sampler.Reset();
    for (size_t i = 0; i < weights.size(); ++i) {
      sampler.Offer(i, weights[i]);
    }
    return sampler.selected();
  });
}

TEST(ReservoirSamplerTest, HeavySkewDistribution) {
  const std::vector<Weight> weights = {1, 1000};
  rng::ThunderingRng rng(1, 7);
  ReservoirSampler sampler(&rng, 0);
  uint64_t rare = 0;
  constexpr int kTrials = 200000;
  for (int t = 0; t < kTrials; ++t) {
    sampler.Reset();
    sampler.Offer(0, weights[0]);
    sampler.Offer(1, weights[1]);
    rare += sampler.selected() == 0 ? 1 : 0;
  }
  const double expected = kTrials / 1001.0;
  EXPECT_NEAR(static_cast<double>(rare), expected, 5 * std::sqrt(expected));
}

// --- Parallel WRS -----------------------------------------------------------

class ParallelWrsDistributionTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ParallelWrsDistributionTest, MatchesWeightDistribution) {
  const size_t k = GetParam();
  const std::vector<Weight> weights = {3, 1, 4, 1, 5, 9, 2, 6, 0, 5, 3, 5};
  rng::ThunderingRng rng(k, 99);
  ParallelWrsSampler sampler(k, &rng);
  ExpectMatchesWeights(weights, 40000, [&] {
    return sampler.SampleAll({weights.data(), weights.size()});
  });
}

TEST_P(ParallelWrsDistributionTest, StreamShorterThanBatch) {
  const size_t k = GetParam();
  const std::vector<Weight> weights = {2, 3};
  rng::ThunderingRng rng(k, 5);
  ParallelWrsSampler sampler(k, &rng);
  ExpectMatchesWeights(weights, 30000, [&] {
    return sampler.SampleAll({weights.data(), weights.size()});
  });
}

INSTANTIATE_TEST_SUITE_P(Parallelism, ParallelWrsDistributionTest,
                         ::testing::Values(1, 2, 3, 4, 8, 16, 32));

TEST(ParallelWrsTest, AllZeroYieldsNoSample) {
  rng::ThunderingRng rng(4, 1);
  ParallelWrsSampler sampler(4, &rng);
  const std::vector<Weight> weights(10, 0);
  EXPECT_EQ(sampler.SampleAll({weights.data(), weights.size()}), kNoSample);
}

TEST(ParallelWrsTest, WeightSumAccumulatesAcrossBatches) {
  rng::ThunderingRng rng(4, 1);
  ParallelWrsSampler sampler(4, &rng);
  const std::vector<Weight> weights = {1, 2, 3, 4, 5, 6};
  sampler.SampleAll({weights.data(), weights.size()});
  EXPECT_EQ(sampler.weight_sum(), 21u);
  EXPECT_EQ(sampler.batches_consumed(), 2u);
}

TEST(ParallelWrsTest, BaseIndexOffsetsSelection) {
  rng::ThunderingRng rng(2, 3);
  ParallelWrsSampler sampler(2, &rng);
  sampler.Reset();
  const std::vector<Weight> batch = {0, 8};
  sampler.OfferBatch({batch.data(), 2}, /*base_index=*/10);
  EXPECT_EQ(sampler.selected(), 11u);
}

TEST(ParallelWrsTest, LaterBatchWithoutCandidateKeepsEarlierSelection) {
  rng::ThunderingRng rng(2, 3);
  ParallelWrsSampler sampler(2, &rng);
  sampler.Reset();
  const std::vector<Weight> first = {5, 5};
  const std::vector<Weight> zeros = {0, 0};
  sampler.OfferBatch({first.data(), 2}, 0);
  const size_t selected = sampler.selected();
  ASSERT_NE(selected, kNoSample);
  sampler.OfferBatch({zeros.data(), 2}, 2);
  EXPECT_EQ(sampler.selected(), selected);
}

// Sequential and parallel WRS must agree in distribution (they are the
// same chain process); compare empirical distributions coarsely.
TEST(ParallelWrsTest, AgreesWithSequentialReservoir) {
  const std::vector<Weight> weights = {7, 2, 2, 9, 1, 4, 4, 1};
  const double total = 30.0;
  constexpr int kTrials = 60000;

  rng::ThunderingRng rng_seq(1, 1001);
  ReservoirSampler seq(&rng_seq, 0);
  rng::ThunderingRng rng_par(4, 2002);
  ParallelWrsSampler par(4, &rng_par);

  std::vector<double> freq_seq(weights.size(), 0.0);
  std::vector<double> freq_par(weights.size(), 0.0);
  for (int t = 0; t < kTrials; ++t) {
    seq.Reset();
    for (size_t i = 0; i < weights.size(); ++i) {
      seq.Offer(i, weights[i]);
    }
    freq_seq[seq.selected()] += 1.0;
    freq_par[par.SampleAll({weights.data(), weights.size()})] += 1.0;
  }
  for (size_t i = 0; i < weights.size(); ++i) {
    const double expected = kTrials * weights[i] / total;
    EXPECT_NEAR(freq_seq[i], expected, 5 * std::sqrt(expected)) << i;
    EXPECT_NEAR(freq_par[i], expected, 5 * std::sqrt(expected)) << i;
  }
}

// --- Inverse transform ------------------------------------------------------

TEST(InverseTransformTest, EmptyAndZeroTotal) {
  InverseTransformTable table;
  table.Build({});
  EXPECT_EQ(table.Sample(123), kNoSample);
  const std::vector<Weight> zeros = {0, 0, 0};
  table.Build({zeros.data(), zeros.size()});
  EXPECT_EQ(table.total_weight(), 0u);
  EXPECT_EQ(table.Sample(9), kNoSample);
}

TEST(InverseTransformTest, DeterministicBoundaries) {
  const std::vector<Weight> weights = {2, 3, 5};  // prefixes 2, 5, 10
  InverseTransformTable table;
  table.Build({weights.data(), weights.size()});
  EXPECT_EQ(table.total_weight(), 10u);
  EXPECT_EQ(table.Sample(0), 0u);
  EXPECT_EQ(table.Sample(1), 0u);
  EXPECT_EQ(table.Sample(2), 1u);
  EXPECT_EQ(table.Sample(4), 1u);
  EXPECT_EQ(table.Sample(5), 2u);
  EXPECT_EQ(table.Sample(9), 2u);
  EXPECT_EQ(table.Sample(10), 0u);  // wraps modulo total
}

TEST(InverseTransformTest, SkipsZeroWeightItems) {
  const std::vector<Weight> weights = {0, 4, 0, 6, 0};
  InverseTransformTable table;
  table.Build({weights.data(), weights.size()});
  for (uint64_t r = 0; r < 10; ++r) {
    const size_t idx = table.Sample(r);
    EXPECT_TRUE(idx == 1 || idx == 3) << "r=" << r;
  }
}

TEST(InverseTransformTest, MatchesWeightDistribution) {
  const std::vector<Weight> weights = {1, 2, 3, 4};
  InverseTransformTable table;
  table.Build({weights.data(), weights.size()});
  rng::Xoshiro256StarStar gen(5);
  ExpectMatchesWeights(weights, 40000,
                       [&] { return table.Sample(gen.Next()); });
}

TEST(InverseTransformTest, TableBytesTracksSize) {
  InverseTransformTable table;
  const std::vector<Weight> weights(17, 1);
  table.Build({weights.data(), weights.size()});
  EXPECT_EQ(table.table_bytes(), 17u * 8);
}

// --- Alias ------------------------------------------------------------------

TEST(AliasTest, ZeroTotalYieldsNoSample) {
  AliasTable table;
  const std::vector<Weight> zeros = {0, 0};
  table.Build({zeros.data(), zeros.size()});
  EXPECT_EQ(table.Sample(0, 0), kNoSample);
}

TEST(AliasTest, UniformWeights) {
  const std::vector<Weight> weights = {5, 5, 5, 5};
  AliasTable table;
  table.Build({weights.data(), weights.size()});
  rng::Xoshiro256StarStar gen(3);
  ExpectMatchesWeights(weights, 40000, [&] {
    return table.Sample(gen.Next(), gen.Next32());
  });
}

TEST(AliasTest, SkewedWeights) {
  const std::vector<Weight> weights = {1, 2, 3, 4, 90};
  AliasTable table;
  table.Build({weights.data(), weights.size()});
  rng::Xoshiro256StarStar gen(13);
  ExpectMatchesWeights(weights, 60000, [&] {
    return table.Sample(gen.Next(), gen.Next32());
  });
}

TEST(AliasTest, ZeroWeightItemsNeverSampled) {
  const std::vector<Weight> weights = {0, 10, 0, 10};
  AliasTable table;
  table.Build({weights.data(), weights.size()});
  rng::Xoshiro256StarStar gen(17);
  for (int t = 0; t < 10000; ++t) {
    const size_t idx = table.Sample(gen.Next(), gen.Next32());
    EXPECT_TRUE(idx == 1 || idx == 3);
  }
}

TEST(AliasTest, RebuildReusesTable) {
  AliasTable table;
  const std::vector<Weight> a = {1, 1};
  const std::vector<Weight> b = {0, 1, 1};
  table.Build({a.data(), a.size()});
  EXPECT_EQ(table.size(), 2u);
  table.Build({b.data(), b.size()});
  EXPECT_EQ(table.size(), 3u);
  rng::Xoshiro256StarStar gen(1);
  for (int t = 0; t < 1000; ++t) {
    EXPECT_NE(table.Sample(gen.Next(), gen.Next32()), 0u);
  }
}

// Cross-sampler agreement: all four samplers draw from the same weight
// vector and must produce statistically equal distributions.
TEST(CrossSamplerTest, AllSamplersAgree) {
  const std::vector<Weight> weights = {10, 0, 5, 25, 60};
  const double total = 100.0;
  constexpr int kTrials = 50000;

  rng::Xoshiro256StarStar gen(111);
  rng::ThunderingRng trng(8, 222);
  InverseTransformTable its;
  its.Build({weights.data(), weights.size()});
  AliasTable alias;
  alias.Build({weights.data(), weights.size()});
  ReservoirSampler wrs(&trng, 0);
  ParallelWrsSampler pwrs(8, &trng, 0);

  std::vector<std::vector<uint64_t>> counts(4,
                                            std::vector<uint64_t>(5, 0));
  for (int t = 0; t < kTrials; ++t) {
    ++counts[0][its.Sample(gen.Next())];
    ++counts[1][alias.Sample(gen.Next(), gen.Next32())];
    wrs.Reset();
    for (size_t i = 0; i < weights.size(); ++i) {
      wrs.Offer(i, weights[i]);
    }
    ++counts[2][wrs.selected()];
    ++counts[3][pwrs.SampleAll({weights.data(), weights.size()})];
  }
  for (int s = 0; s < 4; ++s) {
    for (size_t i = 0; i < weights.size(); ++i) {
      const double expected = kTrials * weights[i] / total;
      if (weights[i] == 0) {
        EXPECT_EQ(counts[s][i], 0u) << "sampler " << s;
      } else {
        EXPECT_NEAR(static_cast<double>(counts[s][i]), expected,
                    5 * std::sqrt(expected))
            << "sampler " << s << " item " << i;
      }
    }
  }
}

}  // namespace
}  // namespace lightrw::sampling
