#include <cmath>

#include <gtest/gtest.h>

#include "common/bits.h"
#include "common/histogram.h"
#include "common/status.h"

namespace lightrw {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = InvalidArgumentError("bad weight");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad weight");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad weight");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_EQ(StatusCodeName(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_EQ(StatusCodeName(StatusCode::kOutOfRange), "OUT_OF_RANGE");
  EXPECT_EQ(StatusCodeName(StatusCode::kIoError), "IO_ERROR");
  EXPECT_EQ(StatusCodeName(StatusCode::kInternal), "INTERNAL");
  EXPECT_EQ(StatusCodeName(StatusCode::kUnimplemented), "UNIMPLEMENTED");
  EXPECT_EQ(StatusCodeName(StatusCode::kFailedPrecondition),
            "FAILED_PRECONDITION");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = NotFoundError("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("hello");
  ASSERT_TRUE(v.ok());
  const std::string s = std::move(v).value();
  EXPECT_EQ(s, "hello");
}

TEST(BitsTest, CeilDiv) {
  EXPECT_EQ(CeilDiv(0, 4), 0u);
  EXPECT_EQ(CeilDiv(1, 4), 1u);
  EXPECT_EQ(CeilDiv(4, 4), 1u);
  EXPECT_EQ(CeilDiv(5, 4), 2u);
  EXPECT_EQ(CeilDiv(33, 16), 3u);
}

TEST(BitsTest, RoundUp) {
  EXPECT_EQ(RoundUp(0, 8), 0u);
  EXPECT_EQ(RoundUp(1, 8), 8u);
  EXPECT_EQ(RoundUp(8, 8), 8u);
  EXPECT_EQ(RoundUp(9, 8), 16u);
}

TEST(BitsTest, PowersOfTwo) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(4096));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(6));
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(5), 8u);
  EXPECT_EQ(NextPowerOfTwo(1024), 1024u);
}

TEST(BitsTest, Logs) {
  EXPECT_EQ(FloorLog2(1), 0u);
  EXPECT_EQ(FloorLog2(2), 1u);
  EXPECT_EQ(FloorLog2(3), 1u);
  EXPECT_EQ(FloorLog2(1024), 10u);
  EXPECT_EQ(CeilLog2(1), 0u);
  EXPECT_EQ(CeilLog2(2), 1u);
  EXPECT_EQ(CeilLog2(3), 2u);
  EXPECT_EQ(CeilLog2(1025), 11u);
}

TEST(SampleStatsTest, BasicMoments) {
  SampleStats stats;
  for (const double x : {1.0, 2.0, 3.0, 4.0, 5.0}) {
    stats.Add(x);
  }
  EXPECT_EQ(stats.count(), 5u);
  EXPECT_DOUBLE_EQ(stats.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(stats.Min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.Max(), 5.0);
  EXPECT_DOUBLE_EQ(stats.Median(), 3.0);
  EXPECT_NEAR(stats.StdDev(), std::sqrt(2.0), 1e-12);
}

TEST(SampleStatsTest, QuantileInterpolation) {
  SampleStats stats;
  stats.Add(0.0);
  stats.Add(10.0);
  EXPECT_DOUBLE_EQ(stats.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(stats.Quantile(0.25), 2.5);
  EXPECT_DOUBLE_EQ(stats.Quantile(1.0), 10.0);
}

TEST(SampleStatsTest, EmptyAccumulatorIsDefined) {
  SampleStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.Min(), 0.0);
  EXPECT_DOUBLE_EQ(stats.Max(), 0.0);
  EXPECT_DOUBLE_EQ(stats.Median(), 0.0);
  EXPECT_DOUBLE_EQ(stats.Quantile(0.99), 0.0);
  EXPECT_DOUBLE_EQ(stats.StdDev(), 0.0);
  EXPECT_TRUE(stats.sorted_samples().empty());
}

TEST(SampleStatsTest, SingleSample) {
  SampleStats stats;
  stats.Add(7.5);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_DOUBLE_EQ(stats.Mean(), 7.5);
  EXPECT_DOUBLE_EQ(stats.Min(), 7.5);
  EXPECT_DOUBLE_EQ(stats.Max(), 7.5);
  EXPECT_DOUBLE_EQ(stats.Quantile(0.0), 7.5);
  EXPECT_DOUBLE_EQ(stats.Quantile(0.5), 7.5);
  EXPECT_DOUBLE_EQ(stats.Quantile(1.0), 7.5);
  EXPECT_DOUBLE_EQ(stats.StdDev(), 0.0);
}

TEST(SampleStatsTest, SortedSamplesAccessor) {
  SampleStats stats;
  stats.Add(3.0);
  stats.Add(1.0);
  stats.Add(2.0);
  const std::vector<double> expected = {1.0, 2.0, 3.0};
  EXPECT_EQ(stats.sorted_samples(), expected);
}

TEST(SampleStatsTest, ExactQuantileBoundariesArePinned) {
  // 101 samples 0..100: under Hyndman-Fan type 7 the rank of quantile q
  // is q*100, so p50/p99 land exactly on stored order statistics. The
  // boundary pinning must return those samples bit-for-bit even though
  // e.g. 0.99 * 100 is not exactly 99.0 in binary floating point.
  SampleStats stats;
  for (int i = 100; i >= 0; --i) {
    stats.Add(static_cast<double>(i));
  }
  EXPECT_EQ(stats.Quantile(0.5), 50.0);
  EXPECT_EQ(stats.Quantile(0.99), 99.0);
  EXPECT_EQ(stats.Quantile(0.01), 1.0);
  EXPECT_EQ(stats.Quantile(0.0), stats.Min());
  EXPECT_EQ(stats.Quantile(1.0), stats.Max());
}

TEST(SampleStatsTest, MilliQuantileBoundaryOverThousandAndOneSamples) {
  // 1001 samples: p999 rank is 0.999 * 1000 = 999 exactly — the
  // second-largest sample, not an interpolation toward the maximum.
  SampleStats stats;
  for (int i = 0; i <= 1000; ++i) {
    stats.Add(static_cast<double>(i));
  }
  EXPECT_EQ(stats.Quantile(0.999), 999.0);
  EXPECT_EQ(stats.Quantile(0.5), 500.0);
  EXPECT_EQ(stats.Quantile(0.99), 990.0);
}

TEST(SampleStatsTest, InteriorQuantilesInterpolateLinearly) {
  // 4 samples: rank h = q*3. q=0.5 -> h=1.5 -> midpoint of x[1], x[2];
  // q=0.9 -> h=2.7 -> 0.3*x[2] + 0.7*x[3].
  SampleStats stats;
  for (const double x : {10.0, 20.0, 30.0, 40.0}) {
    stats.Add(x);
  }
  EXPECT_DOUBLE_EQ(stats.Quantile(0.5), 25.0);
  EXPECT_DOUBLE_EQ(stats.Quantile(0.9), 37.0);
}

TEST(SampleStatsTest, QuantileAfterInterleavedAdds) {
  SampleStats stats;
  stats.Add(5.0);
  EXPECT_DOUBLE_EQ(stats.Median(), 5.0);
  stats.Add(1.0);  // must resort lazily
  stats.Add(9.0);
  EXPECT_DOUBLE_EQ(stats.Median(), 5.0);
  EXPECT_DOUBLE_EQ(stats.Min(), 1.0);
}

TEST(CountHistogramTest, BucketsAndOverflow) {
  CountHistogram hist(4);
  hist.Add(0);
  hist.Add(1);
  hist.Add(1);
  hist.Add(3);
  hist.Add(4);   // overflow
  hist.Add(99);  // overflow
  EXPECT_EQ(hist.total(), 6u);
  EXPECT_EQ(hist.bucket(0), 1u);
  EXPECT_EQ(hist.bucket(1), 2u);
  EXPECT_EQ(hist.bucket(2), 0u);
  EXPECT_EQ(hist.bucket(3), 1u);
  EXPECT_EQ(hist.overflow(), 2u);
}

}  // namespace
}  // namespace lightrw
