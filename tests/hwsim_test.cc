#include <algorithm>

#include <gtest/gtest.h>

#include "hwsim/dram.h"
#include "hwsim/fifo.h"

namespace lightrw::hwsim {
namespace {

TEST(FifoTest, PushPopOrder) {
  Fifo<int> fifo(4);
  fifo.Push(1);
  fifo.Push(2);
  fifo.Push(3);
  EXPECT_EQ(fifo.size(), 3u);
  EXPECT_EQ(fifo.Pop(), 1);
  EXPECT_EQ(fifo.Pop(), 2);
  EXPECT_EQ(fifo.Front(), 3);
  EXPECT_EQ(fifo.Pop(), 3);
  EXPECT_TRUE(fifo.empty());
}

TEST(FifoTest, CapacityLimits) {
  Fifo<int> fifo(2);
  EXPECT_TRUE(fifo.CanPush());
  fifo.Push(1);
  fifo.Push(2);
  EXPECT_FALSE(fifo.CanPush());
  EXPECT_TRUE(fifo.full());
  fifo.Pop();
  EXPECT_TRUE(fifo.CanPush());
}

TEST(FifoTest, OccupancyStats) {
  Fifo<int> fifo(8);
  for (int i = 0; i < 5; ++i) {
    fifo.Push(i);
  }
  fifo.Pop();
  fifo.Push(9);
  EXPECT_EQ(fifo.total_pushed(), 6u);
  EXPECT_EQ(fifo.max_occupancy(), 5u);
}

TEST(FifoTest, MoveOnlyPayload) {
  Fifo<std::unique_ptr<int>> fifo(1);
  fifo.Push(std::make_unique<int>(42));
  const auto p = fifo.Pop();
  EXPECT_EQ(*p, 42);
}

DramConfig TestConfig() {
  DramConfig config;
  config.clock_hz = 300e6;
  config.bus_bytes = 64;
  config.issue_gap_cycles = 16;
  config.access_latency_cycles = 128;
  config.efficiency = 1.0;  // exact arithmetic in unit tests
  return config;
}

TEST(DramChannelTest, OccupancyShortBurstPaysIssueGap) {
  DramChannel channel(TestConfig());
  EXPECT_EQ(channel.RequestOccupancy(1), 16u);
  EXPECT_EQ(channel.RequestOccupancy(8), 16u);
  EXPECT_EQ(channel.RequestOccupancy(16), 16u);
  EXPECT_EQ(channel.RequestOccupancy(32), 32u);
}

TEST(DramChannelTest, BandwidthMonotonicInBurstLength) {
  DramChannel channel(TestConfig());
  double prev = 0.0;
  for (uint32_t beats = 1; beats <= 64; beats *= 2) {
    const double bw = channel.SteadyStateBandwidth(beats);
    EXPECT_GE(bw, prev);
    prev = bw;
  }
  // Long bursts saturate the bus: 64 B * 300 MHz.
  EXPECT_NEAR(prev, 64.0 * 300e6, 1e-6);
}

TEST(DramChannelTest, PeakBandwidthMatchesPaperWithEfficiency) {
  DramConfig config = TestConfig();
  config.efficiency = 0.915;
  DramChannel channel(config);
  // 0.915 * 64 B * 300 MHz = 17.57 GB/s, the measured peak in Fig. 6.
  EXPECT_NEAR(channel.PeakBandwidth() / 1e9, 17.57, 0.02);
}

TEST(DramChannelTest, AccessReturnsDataAfterLatency) {
  DramChannel channel(TestConfig());
  const Cycle done = channel.Access(/*ready=*/100, /*burst_beats=*/1);
  // issue 100..116, transfer 116..117, +128 latency.
  EXPECT_EQ(done, 100u + 16 + 1 + 128);
}

TEST(DramChannelTest, BackToBackRequestsSerialize) {
  // One bank: the second request's issue waits for the first's issue gap
  // and its transfer waits for the bus.
  DramChannel channel(TestConfig());
  const Cycle first = channel.Access(0, 32);   // issue 0..16, bus 16..48
  const Cycle second = channel.Access(0, 32);  // issue 16..32, bus 48..80
  EXPECT_EQ(first, 48u + 128);
  EXPECT_EQ(second, 80u + 128);
  EXPECT_EQ(channel.busy_until(), 80u);
}

TEST(DramChannelTest, BanksOverlapIssueGaps) {
  DramConfig config = TestConfig();
  config.num_banks = 4;
  DramChannel banked(config);
  DramChannel serial(TestConfig());
  // Four single-beat requests: banked issues them concurrently and is
  // bus-bound; serial pays four full issue gaps.
  Cycle banked_done = 0, serial_done = 0;
  for (int i = 0; i < 4; ++i) {
    banked_done = std::max(banked_done, banked.Access(0, 1));
    serial_done = std::max(serial_done, serial.Access(0, 1));
  }
  EXPECT_LT(banked_done, serial_done);
  EXPECT_EQ(banked_done, 16u + 4 + 128);   // shared bus: 4 beats after gap
  EXPECT_EQ(serial_done, 3u * 16 + 16 + 1 + 128);
}

TEST(DramChannelTest, IdleGapAdvancesStart) {
  DramChannel channel(TestConfig());
  channel.Access(0, 16);  // issue 0..16, bus 16..32
  const Cycle done = channel.Access(1000, 16);
  EXPECT_EQ(done, 1000u + 16 + 16 + 128);
}

TEST(DramChannelTest, StatsAccumulate) {
  DramChannel channel(TestConfig());
  channel.Access(0, 4);
  channel.Access(0, 8);
  channel.ReportUseful(100);
  const DramStats& stats = channel.stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.beats, 12u);
  EXPECT_EQ(stats.bytes, 12u * 64);
  EXPECT_EQ(stats.busy_cycles, 12u);  // bus transfer cycles (4 + 8 beats)
  EXPECT_EQ(stats.useful_bytes, 100u);
  channel.ResetStats();
  EXPECT_EQ(channel.stats().requests, 0u);
}

TEST(DramChannelTest, EfficiencyDeratesOccupancy) {
  DramConfig config = TestConfig();
  config.efficiency = 0.5;
  DramChannel channel(config);
  // 32 beats at 50% efficiency occupy 64 cycles.
  EXPECT_EQ(channel.RequestOccupancy(32), 64u);
}

}  // namespace
}  // namespace lightrw::hwsim
