#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/stats.h"

namespace lightrw::graph {
namespace {

TEST(RmatTest, ProducesRequestedScale) {
  RmatOptions options;
  options.scale = 10;
  options.edge_factor = 8;
  options.seed = 3;
  const CsrGraph g = GenerateRmat(options);
  EXPECT_EQ(g.num_vertices(), 1024u);
  // Dedup and self-loop removal shrink the edge count, but most survive.
  EXPECT_GT(g.num_edges(), 4000u);
  EXPECT_LE(g.num_edges(), 8192u);
}

TEST(RmatTest, DeterministicPerSeed) {
  RmatOptions options;
  options.scale = 8;
  options.seed = 11;
  const CsrGraph a = GenerateRmat(options);
  const CsrGraph b = GenerateRmat(options);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    ASSERT_EQ(a.Degree(v), b.Degree(v)) << "vertex " << v;
  }
  options.seed = 12;
  const CsrGraph c = GenerateRmat(options);
  bool differs = false;
  for (VertexId v = 0; v < a.num_vertices() && !differs; ++v) {
    differs = a.Degree(v) != c.Degree(v);
  }
  EXPECT_TRUE(differs);
}

TEST(RmatTest, SkewedDegreeDistribution) {
  RmatOptions options;
  options.scale = 12;
  options.edge_factor = 8;
  options.seed = 5;
  const CsrGraph rmat = GenerateRmat(options);
  const CsrGraph uniform = GenerateErdosRenyi(1 << 12, rmat.num_edges(),
                                              /*undirected=*/false, 5);
  const DegreeStats rmat_stats = ComputeDegreeStats(rmat);
  const DegreeStats uniform_stats = ComputeDegreeStats(uniform);
  // The R-MAT power law concentrates edges on few vertices.
  EXPECT_GT(rmat_stats.top1pct_edge_share,
            2.0 * uniform_stats.top1pct_edge_share);
  EXPECT_GT(rmat_stats.degree_gini, uniform_stats.degree_gini);
  EXPECT_GT(rmat_stats.max_degree, 4 * uniform_stats.max_degree);
}

TEST(ErdosRenyiTest, SizeAndNoSelfLoops) {
  const CsrGraph g = GenerateErdosRenyi(500, 2000, false, 1);
  EXPECT_EQ(g.num_vertices(), 500u);
  EXPECT_LE(g.num_edges(), 2000u);
  EXPECT_GT(g.num_edges(), 1900u);  // few duplicates at this density
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_FALSE(g.HasEdge(v, v));
  }
}

TEST(DatasetInfoTest, MatchesTable2) {
  const DatasetInfo& lj = GetDatasetInfo(Dataset::kLiveJournal);
  EXPECT_STREQ(lj.name, "LJ");
  EXPECT_EQ(lj.num_vertices, 4800000u);
  EXPECT_EQ(lj.num_edges, 68900000u);
  EXPECT_TRUE(lj.undirected);
  const DatasetInfo& uk = GetDatasetInfo(Dataset::kUk2002);
  EXPECT_FALSE(uk.undirected);
  EXPECT_EQ(uk.num_vertices, 18520000u);
}

TEST(DatasetStandInTest, ScalesShapeDown) {
  const CsrGraph g = MakeDatasetStandIn(Dataset::kYoutube,
                                        /*scale_shift=*/6, /*seed=*/1);
  const DatasetInfo& info = GetDatasetInfo(Dataset::kYoutube);
  // |V| within 2x of the scaled target; |E| below target (dedup) but the
  // average degree close to the original dataset's.
  EXPECT_NEAR(static_cast<double>(g.num_vertices()),
              static_cast<double>(info.num_vertices >> 6), 2.0);
  const double target_avg =
      static_cast<double>(info.num_edges) / info.num_vertices;
  EXPECT_GT(g.AverageDegree(), 0.5 * target_avg);
  EXPECT_LT(g.AverageDegree(), 1.5 * target_avg);
}

TEST(DatasetStandInTest, UndirectedDatasetsAreSymmetric) {
  const CsrGraph g = MakeDatasetStandIn(Dataset::kLiveJournal, 9, 2);
  size_t checked = 0;
  for (VertexId v = 0; v < g.num_vertices() && checked < 2000; ++v) {
    for (const VertexId u : g.Neighbors(v)) {
      EXPECT_TRUE(g.HasEdge(u, v)) << u << "->" << v;
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST(DatasetStandInTest, AllDatasetsGenerate) {
  for (const Dataset d : kAllDatasets) {
    const CsrGraph g = MakeDatasetStandIn(d, 9, 3);
    EXPECT_GT(g.num_vertices(), 0u) << GetDatasetInfo(d).name;
    EXPECT_GT(g.num_edges(), 0u) << GetDatasetInfo(d).name;
  }
}

TEST(DatasetStandInTest, AttributesRandomized) {
  const CsrGraph g = MakeDatasetStandIn(Dataset::kUsPatents, 8, 4);
  bool nontrivial_weight = false;
  for (const Weight w : g.col_weight()) {
    ASSERT_GE(w, 1u);
    ASSERT_LE(w, 16u);
    nontrivial_weight |= w != 1;
  }
  EXPECT_TRUE(nontrivial_weight);
  bool nontrivial_label = false;
  for (const Label l : g.labels()) {
    nontrivial_label |= l != 0;
  }
  EXPECT_TRUE(nontrivial_label);
}

}  // namespace
}  // namespace lightrw::graph
