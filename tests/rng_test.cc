#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "rng/rng.h"
#include "rng/stat_tests.h"

namespace lightrw::rng {
namespace {

TEST(SplitMix64Test, DeterministicAndDistinct) {
  SplitMix64 a(1), b(1), c(2);
  const uint64_t a1 = a.Next();
  EXPECT_EQ(a1, b.Next());
  EXPECT_NE(a1, c.Next());
  EXPECT_NE(a1, a.Next());
}

TEST(XoshiroTest, Deterministic) {
  Xoshiro256StarStar a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(XoshiroTest, NextBoundedStaysInRange) {
  Xoshiro256StarStar gen(9);
  for (uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(gen.NextBounded(bound), bound);
    }
  }
}

TEST(XoshiroTest, NextUnitInHalfOpenInterval) {
  Xoshiro256StarStar gen(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = gen.NextUnit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(XoshiroTest, UniformityChiSquare) {
  Xoshiro256StarStar gen(77);
  std::vector<uint32_t> samples(100000);
  for (auto& s : samples) {
    s = gen.Next32();
  }
  const auto result = ChiSquareUniform32(samples, 64);
  EXPECT_GT(result.p_value, 1e-4) << "statistic=" << result.statistic;
}

TEST(XoshiroTest, NextBoundedUniformity) {
  Xoshiro256StarStar gen(31);
  constexpr uint64_t kBound = 7;
  std::vector<uint64_t> counts(kBound, 0);
  constexpr int kSamples = 70000;
  for (int i = 0; i < kSamples; ++i) {
    ++counts[gen.NextBounded(kBound)];
  }
  std::vector<double> expected(kBound, double{kSamples} / kBound);
  const auto result = ChiSquareTest(counts, expected);
  EXPECT_GT(result.p_value, 1e-4);
}

TEST(ThunderingRngTest, DeterministicPerSeed) {
  ThunderingRng a(4, 99), b(4, 99);
  for (int i = 0; i < 64; ++i) {
    for (size_t s = 0; s < 4; ++s) {
      EXPECT_EQ(a.Next(s), b.Next(s));
    }
  }
  ThunderingRng fresh(4, 99), other_seed(4, 100);
  bool any_diff = false;
  for (int i = 0; i < 64; ++i) {
    any_diff |= fresh.Next(0) != other_seed.Next(0);
  }
  EXPECT_TRUE(any_diff);
}

TEST(ThunderingRngTest, StreamsAdvanceIndependently) {
  ThunderingRng rng(2, 5);
  // Drawing from stream 0 must not perturb stream 1's sequence.
  ThunderingRng reference(2, 5);
  std::vector<uint32_t> expected;
  for (int i = 0; i < 16; ++i) {
    expected.push_back(reference.Next(1));
  }
  for (int i = 0; i < 100; ++i) {
    rng.Next(0);
  }
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(rng.Next(1), expected[i]);
  }
}

TEST(ThunderingRngTest, NextBatchMatchesPerStreamDraws) {
  ThunderingRng a(8, 42), b(8, 42);
  std::vector<uint32_t> batch(8);
  a.NextBatch(batch);
  for (size_t s = 0; s < 8; ++s) {
    EXPECT_EQ(batch[s], b.Next(s));
  }
}

TEST(ThunderingRngTest, EachStreamUniform) {
  constexpr size_t kStreams = 8;
  ThunderingRng rng(kStreams, 2024);
  for (size_t s = 0; s < kStreams; ++s) {
    std::vector<uint32_t> samples(40000);
    for (auto& x : samples) {
      x = rng.Next(s);
    }
    const auto result = ChiSquareUniform32(samples, 32);
    EXPECT_GT(result.p_value, 1e-4) << "stream " << s;
  }
}

TEST(ThunderingRngTest, CrossStreamDecorrelation) {
  // The ThundeRiNG construction shares one LCG sequence; the per-stream
  // decorrelators must remove the cross-stream correlation.
  constexpr size_t kStreams = 8;
  constexpr size_t kSamples = 20000;
  ThunderingRng rng(kStreams, 7);
  std::vector<std::vector<uint32_t>> streams(kStreams,
                                             std::vector<uint32_t>(kSamples));
  for (size_t i = 0; i < kSamples; ++i) {
    for (size_t s = 0; s < kStreams; ++s) {
      streams[s][i] = rng.Next(s);
    }
  }
  for (size_t a = 0; a < kStreams; ++a) {
    for (size_t b = a + 1; b < kStreams; ++b) {
      const double corr = PearsonCorrelation32(streams[a], streams[b]);
      EXPECT_LT(std::abs(corr), 0.03)
          << "streams " << a << " and " << b << " correlate";
    }
  }
}

TEST(ThunderingRngTest, LowSerialCorrelation) {
  ThunderingRng rng(1, 11);
  std::vector<uint32_t> samples(50000);
  for (auto& x : samples) {
    x = rng.Next(0);
  }
  EXPECT_LT(std::abs(SerialCorrelation32(samples)), 0.02);
}

TEST(StatTestsTest, ChiSquareDetectsBias) {
  // Heavily biased counts must produce a tiny p-value.
  std::vector<uint64_t> observed = {900, 100};
  std::vector<double> expected = {500, 500};
  const auto result = ChiSquareTest(observed, expected);
  EXPECT_LT(result.p_value, 1e-6);
}

TEST(StatTestsTest, ChiSquareAcceptsExactMatch) {
  std::vector<uint64_t> observed = {500, 500};
  std::vector<double> expected = {500, 500};
  const auto result = ChiSquareTest(observed, expected);
  EXPECT_GT(result.p_value, 0.5);
}

TEST(StatTestsTest, PearsonOfIdenticalSequencesIsOne) {
  std::vector<uint32_t> a = {1u << 20, 2u << 20, 3u << 20, 4u << 20,
                             5u << 20};
  EXPECT_NEAR(PearsonCorrelation32(a, a), 1.0, 1e-9);
}

TEST(StatTestsTest, StdNormalUpperTail) {
  EXPECT_NEAR(StdNormalUpperTail(0.0), 0.5, 1e-12);
  EXPECT_NEAR(StdNormalUpperTail(1.96), 0.025, 1e-3);
  EXPECT_LT(StdNormalUpperTail(6.0), 1e-8);
}

}  // namespace
}  // namespace lightrw::rng
