#include <gtest/gtest.h>

#include "analytics/corpus_io.h"

namespace lightrw::analytics {
namespace {

using baseline::WalkOutput;

WalkOutput MakeCorpus() {
  WalkOutput corpus;
  corpus.vertices = {0, 1, 2, 5, 5, 7, 9, 0};
  corpus.offsets = {0, 3, 4, 8};
  return corpus;
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/lightrw_corpus_" + name;
}

void ExpectCorporaEqual(const WalkOutput& a, const WalkOutput& b) {
  EXPECT_EQ(a.offsets, b.offsets);
  EXPECT_EQ(a.vertices, b.vertices);
}

TEST(CorpusIoTest, TextRoundTrip) {
  const WalkOutput corpus = MakeCorpus();
  const std::string path = TempPath("roundtrip.txt");
  ASSERT_TRUE(WriteCorpusText(corpus, path).ok());
  auto loaded = ReadCorpusText(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectCorporaEqual(corpus, *loaded);
}

TEST(CorpusIoTest, BinaryRoundTrip) {
  const WalkOutput corpus = MakeCorpus();
  const std::string path = TempPath("roundtrip.bin");
  ASSERT_TRUE(WriteCorpusBinary(corpus, path).ok());
  auto loaded = ReadCorpusBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectCorporaEqual(corpus, *loaded);
}

TEST(CorpusIoTest, SingleVertexWalks) {
  WalkOutput corpus;
  corpus.vertices = {42};
  corpus.offsets = {0, 1};
  const std::string path = TempPath("single.txt");
  ASSERT_TRUE(WriteCorpusText(corpus, path).ok());
  auto loaded = ReadCorpusText(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->num_paths(), 1u);
  EXPECT_EQ(loaded->Path(0)[0], 42u);
}

TEST(CorpusIoTest, MissingFileIsIoError) {
  EXPECT_EQ(ReadCorpusText(TempPath("nope.txt")).status().code(),
            StatusCode::kIoError);
  EXPECT_EQ(ReadCorpusBinary(TempPath("nope.bin")).status().code(),
            StatusCode::kIoError);
}

TEST(CorpusIoTest, TextRejectsGarbage) {
  const std::string path = TempPath("garbage.txt");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("1 2 three\n", f);
  std::fclose(f);
  auto loaded = ReadCorpusText(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(CorpusIoTest, BinaryRejectsWrongMagic) {
  const std::string path = TempPath("bad.bin");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("this is not a corpus file at all", f);
  std::fclose(f);
  auto loaded = ReadCorpusBinary(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(CorpusIoTest, BinaryRejectsTruncation) {
  const std::string path = TempPath("trunc.bin");
  ASSERT_TRUE(WriteCorpusBinary(MakeCorpus(), path).ok());
  std::FILE* f = std::fopen(path.c_str(), "r+");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(ftruncate(fileno(f), 20), 0);
  std::fclose(f);
  EXPECT_FALSE(ReadCorpusBinary(path).ok());
}

TEST(CorpusIoTest, EmptyTextFileRejected) {
  const std::string path = TempPath("empty.txt");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  EXPECT_FALSE(ReadCorpusText(path).ok());
}

}  // namespace
}  // namespace lightrw::analytics
