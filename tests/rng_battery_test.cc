#include <gtest/gtest.h>

#include "rng/battery.h"
#include "rng/rng.h"

namespace lightrw::rng {
namespace {

constexpr size_t kSamples = 200000;

TEST(BatteryTest, XoshiroPassesAllTests) {
  Xoshiro256StarStar gen(123);
  const auto result = RunBattery([&] { return gen.Next32(); }, kSamples);
  for (const auto& test : result.tests) {
    EXPECT_TRUE(test.passed) << test.name << " p=" << test.p_value;
  }
  EXPECT_TRUE(result.AllPassed());
}

TEST(BatteryTest, ThunderingStreamsPassAllTests) {
  // Every decorrelated ThundeRiNG stream must look uniform on its own —
  // the paper's TestU01 claim, checked with the lite battery.
  ThunderingRng rng(4, 2024);
  for (size_t stream = 0; stream < 4; ++stream) {
    const auto result =
        RunBattery([&] { return rng.Next(stream); }, kSamples);
    EXPECT_TRUE(result.AllPassed()) << "stream " << stream;
  }
}

TEST(BatteryTest, RawLcgHighBitsPassButCounterFails) {
  // A pure counter is catastrophically non-random: the battery must
  // reject it decisively.
  uint32_t counter = 0;
  const auto result = RunBattery([&] { return counter++; }, kSamples);
  EXPECT_FALSE(result.AllPassed());
  // Specifically the serial correlation and runs structure break.
  bool serial_failed = false;
  for (const auto& test : result.tests) {
    if (test.name == "serial_correlation" || test.name == "runs") {
      serial_failed |= !test.passed;
    }
  }
  EXPECT_TRUE(serial_failed);
}

TEST(BatteryTest, ConstantSequenceFailsEverything) {
  const auto result = RunBattery([] { return 0x12345678u; }, 4096);
  for (const auto& test : result.tests) {
    EXPECT_FALSE(test.passed) << test.name;
  }
}

TEST(BatteryTest, BiasedBitsFailMonobit) {
  // Clear the top 4 bits of every sample: a 12.5% deficit of ones.
  Xoshiro256StarStar gen(5);
  const auto result =
      RunBattery([&] { return gen.Next32() & 0x0FFFFFFFu; }, 65536);
  bool monobit_failed = false;
  bool balance_failed = false;
  for (const auto& test : result.tests) {
    if (test.name == "monobit") {
      monobit_failed = !test.passed;
    }
    if (test.name == "bit_balance") {
      balance_failed = !test.passed;
    }
  }
  EXPECT_TRUE(monobit_failed);
  EXPECT_TRUE(balance_failed);
}

TEST(BatteryTest, LowEntropyNibblesFailPoker) {
  // Restrict all nibbles to {0, 1}: the poker histogram collapses.
  Xoshiro256StarStar gen(6);
  const auto result =
      RunBattery([&] { return gen.Next32() & 0x11111111u; }, 65536);
  bool poker_failed = false;
  for (const auto& test : result.tests) {
    if (test.name == "poker") {
      poker_failed = !test.passed;
    }
  }
  EXPECT_TRUE(poker_failed);
}

TEST(BatteryTest, ReportsAllSixTests) {
  Xoshiro256StarStar gen(9);
  const auto result = RunBattery([&] { return gen.Next32(); }, 4096);
  ASSERT_EQ(result.tests.size(), 6u);
  EXPECT_EQ(result.tests[0].name, "monobit");
  EXPECT_EQ(result.tests[3].name, "poker");
}

}  // namespace
}  // namespace lightrw::rng
