#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/stats.h"

namespace lightrw::graph {
namespace {

CsrGraph MakeStar(VertexId leaves) {
  GraphBuilder builder(leaves + 1, /*undirected=*/false);
  for (VertexId i = 1; i <= leaves; ++i) {
    builder.AddEdge(0, i);
    builder.AddEdge(i, 0);
  }
  return std::move(builder).Build();
}

TEST(DegreeStatsTest, StarGraph) {
  const CsrGraph g = MakeStar(99);
  const DegreeStats stats = ComputeDegreeStats(g);
  EXPECT_EQ(stats.max_degree, 99u);
  EXPECT_DOUBLE_EQ(stats.average_degree, 198.0 / 100.0);
  EXPECT_DOUBLE_EQ(stats.median_degree, 1.0);
  // The hub (top 1% of 100 vertices) owns half of all edges.
  EXPECT_NEAR(stats.top1pct_edge_share, 0.5, 1e-9);
  EXPECT_GT(stats.degree_gini, 0.4);
}

TEST(DegreeStatsTest, RegularGraphHasZeroGini) {
  // Directed ring: every vertex has degree exactly 1.
  GraphBuilder builder(64, false);
  for (VertexId v = 0; v < 64; ++v) {
    builder.AddEdge(v, (v + 1) % 64);
  }
  const CsrGraph g = std::move(builder).Build();
  const DegreeStats stats = ComputeDegreeStats(g);
  EXPECT_NEAR(stats.degree_gini, 0.0, 1e-9);
  EXPECT_EQ(stats.max_degree, 1u);
}

TEST(DegreeStatsTest, GiniBounded) {
  RmatOptions options;
  options.scale = 11;
  options.seed = 8;
  const CsrGraph g = GenerateRmat(options);
  const DegreeStats stats = ComputeDegreeStats(g);
  EXPECT_GE(stats.degree_gini, 0.0);
  EXPECT_LE(stats.degree_gini, 1.0);
  EXPECT_GE(stats.top10pct_edge_share, stats.top1pct_edge_share);
  EXPECT_LE(stats.top10pct_edge_share, 1.0 + 1e-9);
}

TEST(VertexOrderTest, SortedByDegreeDescending) {
  const CsrGraph g = MakeStar(10);
  const auto order = VerticesByDegreeDescending(g);
  ASSERT_EQ(order.size(), 11u);
  EXPECT_EQ(order[0], 0u);  // the hub
  for (size_t i = 1; i < order.size(); ++i) {
    EXPECT_GE(g.Degree(order[i - 1]), g.Degree(order[i]));
  }
}

TEST(VertexOrderTest, EdgeShareOfTopVertices) {
  const CsrGraph g = MakeStar(10);
  EXPECT_NEAR(EdgeShareOfTopVertices(g, 1), 0.5, 1e-9);
  EXPECT_NEAR(EdgeShareOfTopVertices(g, 11), 1.0, 1e-9);
  EXPECT_NEAR(EdgeShareOfTopVertices(g, 1000), 1.0, 1e-9);  // clamped
}

}  // namespace
}  // namespace lightrw::graph
