// Golden regression pins: exact expected outputs for fixed seeds. These
// lock down the RNG stream discipline and sampler semantics — an
// unintended change to ThunderingRng, WrsSelect, or the engines' RNG
// consumption order shows up here as a changed literal, forcing a
// deliberate review (and an update of EXPERIMENTS.md, since all measured
// numbers depend on these streams).

#include <gtest/gtest.h>

#include "apps/walk_app.h"
#include "graph/builder.h"
#include "lightrw/functional_engine.h"
#include "rng/rng.h"
#include "sampling/parallel_wrs.h"

namespace lightrw {
namespace {

TEST(GoldenTest, SplitMix64FirstOutputs) {
  rng::SplitMix64 mix(0);
  EXPECT_EQ(mix.Next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(mix.Next(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(mix.Next(), 0x06c45d188009454fULL);
}

TEST(GoldenTest, ThunderingRngStream0) {
  rng::ThunderingRng rng(2, 42);
  // Pin the first few outputs of both streams.
  const uint32_t s0[] = {rng.Next(0), rng.Next(0), rng.Next(0)};
  const uint32_t s1[] = {rng.Next(1), rng.Next(1), rng.Next(1)};
  rng::ThunderingRng replay(2, 42);
  for (const uint32_t expected : s0) {
    EXPECT_EQ(replay.Next(0), expected);
  }
  for (const uint32_t expected : s1) {
    EXPECT_EQ(replay.Next(1), expected);
  }
  // The two streams never coincide on this window.
  EXPECT_NE(s0[0], s1[0]);
}

graph::CsrGraph GoldenGraph() {
  graph::GraphBuilder builder(5, /*undirected=*/true);
  builder.AddEdge(0, 1, 3);
  builder.AddEdge(0, 2, 1);
  builder.AddEdge(1, 2, 2);
  builder.AddEdge(2, 3, 4);
  builder.AddEdge(3, 4, 1);
  builder.AddEdge(4, 0, 2);
  return std::move(builder).Build();
}

TEST(GoldenTest, FunctionalEngineWalkIsStable) {
  const graph::CsrGraph g = GoldenGraph();
  apps::StaticWalkApp app;
  core::AcceleratorConfig config;
  config.seed = 7;
  config.sampler_parallelism = 4;
  core::FunctionalEngine engine(&g, &app, config);
  const std::vector<apps::WalkQuery> queries = {{0, 6}, {3, 6}};
  baseline::WalkOutput output;
  engine.Run(queries, &output);

  // Re-running with the same seed must reproduce the identical corpus;
  // the literal below pins the current stream discipline.
  core::FunctionalEngine replay(&g, &app, config);
  baseline::WalkOutput replay_output;
  replay.Run(queries, &replay_output);
  ASSERT_EQ(output.vertices, replay_output.vertices);

  // Structural pins that survive only if semantics are unchanged.
  ASSERT_EQ(output.num_paths(), 2u);
  EXPECT_EQ(output.Path(0)[0], 0u);
  EXPECT_EQ(output.Path(0).size(), 7u);
  EXPECT_EQ(output.Path(1)[0], 3u);
  EXPECT_EQ(output.Path(1).size(), 7u);
}

TEST(GoldenTest, ParallelWrsSelectionIsStable) {
  const std::vector<graph::Weight> weights = {4, 9, 1, 6, 2, 8};
  rng::ThunderingRng rng(4, 123);
  sampling::ParallelWrsSampler sampler(4, &rng);
  // The exact selection sequence for seed 123 — pins WrsSelect and the
  // per-lane stream consumption order.
  std::vector<size_t> selections;
  for (int t = 0; t < 8; ++t) {
    selections.push_back(
        sampler.SampleAll({weights.data(), weights.size()}));
  }
  rng::ThunderingRng rng2(4, 123);
  sampling::ParallelWrsSampler replay(4, &rng2);
  for (const size_t expected : selections) {
    EXPECT_EQ(replay.SampleAll({weights.data(), weights.size()}), expected);
  }
  // All selections must be valid, positive-weight items.
  for (const size_t s : selections) {
    ASSERT_LT(s, weights.size());
    ASSERT_GT(weights[s], 0u);
  }
}

}  // namespace
}  // namespace lightrw
