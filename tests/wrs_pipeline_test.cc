#include <gtest/gtest.h>

#include "lightrw/wrs_pipeline.h"
#include "lightrw/wrs_sampler_sim.h"
#include "rng/rng.h"
#include "sampling/parallel_wrs.h"

namespace lightrw::core {
namespace {

using graph::Weight;

std::vector<Weight> RandomWeights(size_t n, uint64_t seed) {
  rng::Xoshiro256StarStar gen(seed);
  std::vector<Weight> weights(n);
  for (auto& w : weights) {
    w = static_cast<Weight>(1 + gen.NextBounded(255));
  }
  return weights;
}

WrsPipelineConfig TestConfig(uint32_t k, uint64_t seed = 7) {
  WrsPipelineConfig config;
  config.parallelism = k;
  config.seed = seed;
  return config;
}

TEST(WrsPipelineTest, SelectsSameItemAsFunctionalSampler) {
  // The clocked pipeline and the functional ParallelWrsSampler share the
  // RNG stream discipline, so with the same seed they must make the exact
  // same sampling decision.
  for (const uint32_t k : {1u, 2u, 4u, 8u, 16u}) {
    const auto weights = RandomWeights(1000, 11 * k);
    WrsPipelineSim pipeline(TestConfig(k, /*seed=*/42));
    const auto result = pipeline.Run(weights);

    rng::ThunderingRng rng(k, 42);
    sampling::ParallelWrsSampler sampler(k, &rng);
    const size_t expected =
        sampler.SampleAll({weights.data(), weights.size()});
    EXPECT_EQ(result.selected, expected) << "k=" << k;
  }
}

TEST(WrsPipelineTest, ThroughputMatchesAnalyticModel) {
  // Cross-validation of the two models: for long streams the clocked
  // pipeline's cycle count must agree with WrsSamplerSim within a few
  // percent (both are limited by the same feed rate).
  constexpr uint32_t k = 16;
  const auto weights = RandomWeights(1 << 15, 3);
  WrsPipelineSim pipeline(TestConfig(k));
  const auto structural = pipeline.Run(weights);

  WrsSamplerSim analytic(k, hwsim::DramConfig{}, 3);
  const auto predicted = analytic.RunStream(weights.size());
  const double ratio = static_cast<double>(structural.cycles) /
                       static_cast<double>(predicted.cycles);
  EXPECT_GT(ratio, 0.9) << structural.cycles << " vs " << predicted.cycles;
  EXPECT_LT(ratio, 1.1) << structural.cycles << " vs " << predicted.cycles;
}

TEST(WrsPipelineTest, ConsumesKItemsPerCycleWhenFed) {
  // With a feed faster than the lanes, throughput is k items/cycle.
  constexpr uint32_t k = 4;
  WrsPipelineConfig config = TestConfig(k);
  config.feed_items_per_kcycle = 1024 * 2 * k;  // overfeed
  const auto weights = RandomWeights(4096, 5);
  WrsPipelineSim pipeline(config);
  const auto result = pipeline.Run(weights);
  const double items_per_cycle =
      static_cast<double>(result.items) / result.cycles;
  EXPECT_GT(items_per_cycle, 0.9 * k);
  EXPECT_LE(items_per_cycle, k);
}

TEST(WrsPipelineTest, FeedRateLimitsThroughput) {
  // With a feed slower than the lanes, throughput follows the feed.
  constexpr uint32_t k = 16;
  WrsPipelineConfig config = TestConfig(k);
  config.feed_items_per_kcycle = 2048;  // 2 items per cycle
  const auto weights = RandomWeights(8192, 5);
  WrsPipelineSim pipeline(config);
  const auto result = pipeline.Run(weights);
  const double items_per_cycle =
      static_cast<double>(result.items) / result.cycles;
  EXPECT_GT(items_per_cycle, 1.8);
  EXPECT_LT(items_per_cycle, 2.1);
}

TEST(WrsPipelineTest, AllZeroWeightsYieldNoSample) {
  WrsPipelineSim pipeline(TestConfig(8));
  const auto result = pipeline.Run(std::vector<Weight>(100, 0));
  EXPECT_EQ(result.selected, sampling::kNoSample);
}

TEST(WrsPipelineTest, ShortStreamCompletes) {
  WrsPipelineSim pipeline(TestConfig(16));
  const auto result = pipeline.Run({5});
  EXPECT_EQ(result.selected, 0u);
  EXPECT_GT(result.cycles, 0u);
}

TEST(WrsPipelineTest, DeterministicPerSeed) {
  const auto weights = RandomWeights(500, 9);
  const auto a = WrsPipelineSim(TestConfig(8, 1)).Run(weights);
  const auto b = WrsPipelineSim(TestConfig(8, 1)).Run(weights);
  const auto c = WrsPipelineSim(TestConfig(8, 2)).Run(weights);
  EXPECT_EQ(a.selected, b.selected);
  EXPECT_EQ(a.cycles, b.cycles);
  // A different seed usually selects a different item; cycles identical
  // (timing is data-independent).
  EXPECT_EQ(a.cycles, c.cycles);
}

TEST(WrsPipelineTest, FifoOccupancyBounded) {
  WrsPipelineConfig config = TestConfig(8);
  config.fifo_depth = 4;
  WrsPipelineSim pipeline(config);
  const auto result = pipeline.Run(RandomWeights(4096, 2));
  // Bounded by stream depth + the stage's pipeline registers.
  EXPECT_LE(result.accumulator_max_occupancy, 4u + 4u);
  EXPECT_LE(result.selector_max_occupancy, 4u + 6u);
}

}  // namespace
}  // namespace lightrw::core
