#!/usr/bin/env python3
"""Schema and invariant check for walk_tool --spans-out JSON.

Usage: check_span_json.py spans.json [more.json ...]

Validates, per file:

  - top-level sections: config, counters, summaries, spans (attribution
    and burn_alerts are present when written by walk_tool);
  - every span row has the required fields with the right JSON types;
  - parent/child integrity: a span's parent is 0 (trace root) or the id
    of another span in the SAME trace that was opened earlier (parents
    have a lower seq than their children);
  - per-trace seq values are unique and exported in increasing order
    (the canonical (trace, seq) sort the determinism gate relies on);
  - span ids are nonzero and unique across the document;
  - intervals are well-formed: end >= start for every closed span;
  - every summary's trace/outcome fields are present, and every breached
    entry in the attribution report names a dominant component;
  - the membership log (when present) is a legal epoch sequence: epochs
    are 1..N with no gaps, cycles nondecreasing, and every transition an
    edge of the board state machine (alive->dead, spare->rebuilding|dead,
    rebuilding->alive|dead).

Exit status: 0 if all files pass, 1 otherwise (each violation printed).
"""

import json
import sys

SPAN_FIELDS = {
    "trace": int,
    "span": int,
    "parent": int,
    "seq": int,
    "name": str,
    "category": str,
    "board": int,
    "start": int,
    "end": int,
    "open": bool,
}

SUMMARY_FIELDS = {
    "trace": int,
    "start": int,
    "end": int,
    "breached": bool,
    "outcome": str,
}

MEMBERSHIP_FIELDS = {
    "epoch": int,
    "cycle": int,
    "board": int,
    "from": str,
    "to": str,
}

BOARD_STATES = {"alive", "dead", "rebuilding", "spare"}

# Legal edges of the membership state machine (reliability/membership.h).
MEMBERSHIP_EDGES = {
    ("alive", "dead"),
    ("spare", "rebuilding"),
    ("spare", "dead"),
    ("rebuilding", "alive"),
    ("rebuilding", "dead"),
}


def check_file(path):
    errors = []

    def err(msg):
        errors.append(f"{path}: {msg}")

    with open(path) as f:
        doc = json.load(f)

    for section in ("config", "counters", "summaries", "spans"):
        if section not in doc:
            err(f"missing top-level section {section!r}")
    if errors:
        return errors

    spans = doc["spans"]
    seen_ids = set()
    by_trace = {}
    for i, span in enumerate(spans):
        label = f"spans[{i}]"
        for field, kind in SPAN_FIELDS.items():
            if field not in span:
                err(f"{label}: missing field {field!r}")
            elif not isinstance(span[field], kind):
                err(f"{label}: field {field!r} is "
                    f"{type(span[field]).__name__}, want {kind.__name__}")
        if errors:
            continue
        if span["span"] == 0:
            err(f"{label}: span id is 0 (reserved for 'no span')")
        if span["span"] in seen_ids:
            err(f"{label}: duplicate span id {span['span']}")
        seen_ids.add(span["span"])
        if not span["open"] and span["end"] < span["start"]:
            err(f"{label}: closed span ends at {span['end']} before its "
                f"start {span['start']}")
        by_trace.setdefault(span["trace"], []).append(span)

    prev_trace = None
    for i, span in enumerate(spans):
        if prev_trace is not None and span["trace"] < prev_trace:
            err(f"spans[{i}]: trace order regresses "
                f"({prev_trace} -> {span['trace']}); export must be "
                f"sorted by (trace, seq)")
        prev_trace = span["trace"]

    for trace, rows in by_trace.items():
        seqs = [s["seq"] for s in rows]
        if seqs != sorted(seqs) or len(set(seqs)) != len(seqs):
            err(f"trace {trace}: seq values not strictly increasing "
                f"in export order: {seqs}")
        ids_before = {}
        for s in rows:
            if s["parent"] != 0:
                if s["parent"] not in ids_before:
                    err(f"trace {trace} span {s['span']}: parent "
                        f"{s['parent']} is not an earlier span of the "
                        f"same trace")
                elif ids_before[s["parent"]] >= s["seq"]:
                    err(f"trace {trace} span {s['span']}: parent seq "
                        f"{ids_before[s['parent']]} not < child seq "
                        f"{s['seq']}")
            ids_before[s["span"]] = s["seq"]

    for i, summary in enumerate(doc["summaries"]):
        label = f"summaries[{i}]"
        for field, kind in SUMMARY_FIELDS.items():
            if field not in summary:
                err(f"{label}: missing field {field!r}")
            elif not isinstance(summary[field], kind):
                err(f"{label}: field {field!r} is "
                    f"{type(summary[field]).__name__}, want "
                    f"{kind.__name__}")

    attribution = doc.get("attribution")
    if attribution is not None:
        for i, q in enumerate(attribution.get("breached", [])):
            label = f"attribution.breached[{i}]"
            if not q.get("dominant"):
                err(f"{label}: breached query (trace "
                    f"{q.get('trace')}) names no dominant component")
            if not q.get("outcome"):
                err(f"{label}: breached query has no outcome")

    for alert in doc.get("burn_alerts", []):
        if alert.get("state") not in ("fired", "cleared"):
            err(f"burn alert at cycle {alert.get('cycle')}: state "
                f"{alert.get('state')!r} not fired/cleared")

    membership = doc.get("membership")
    if membership is not None:
        prev_cycle = 0
        for i, t in enumerate(membership):
            label = f"membership[{i}]"
            for field, kind in MEMBERSHIP_FIELDS.items():
                if field not in t:
                    err(f"{label}: missing field {field!r}")
                elif not isinstance(t[field], kind):
                    err(f"{label}: field {field!r} is "
                        f"{type(t[field]).__name__}, want {kind.__name__}")
            if errors:
                continue
            if t["epoch"] != i + 1:
                err(f"{label}: epoch {t['epoch']}, want {i + 1} "
                    f"(epochs bump by exactly one per transition)")
            if t["cycle"] < prev_cycle:
                err(f"{label}: cycle regresses "
                    f"({prev_cycle} -> {t['cycle']})")
            prev_cycle = t["cycle"]
            if t["board"] < 0:
                err(f"{label}: negative board id {t['board']}")
            edge = (t["from"], t["to"])
            if t["from"] not in BOARD_STATES or t["to"] not in BOARD_STATES:
                err(f"{label}: unknown board state in edge {edge}")
            elif edge not in MEMBERSHIP_EDGES:
                err(f"{label}: illegal transition {t['from']!r} -> "
                    f"{t['to']!r}")

    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    failures = 0
    for path in argv[1:]:
        errors = check_file(path)
        if errors:
            failures += 1
            for e in errors:
                print(f"SPAN CHECK FAIL: {e}", file=sys.stderr)
        else:
            print(f"ok: {path}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
