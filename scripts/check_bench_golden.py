#!/usr/bin/env python3
"""Perf/behaviour regression gate for BENCH_*.json files.

Usage: check_bench_golden.py BENCH_x.json bench/golden/x.json

The golden file pins the expected shape of one bench's output:

  {
    "bench": "name",            # must equal the record's bench name
    "context": {...},           # every listed key must match exactly
    "num_rows": N,              # exact row count
    "row_ranges": {             # every row must satisfy these
      "field": [min, max]
    },
    "row_checks": [             # targeted expectations
      {"where": {"field": value, ...},     # selects matching rows
       "expect": {"field": [min, max]}}    # must hold for all of them
    ]
  }

Ranges are inclusive and intentionally loose: they catch order-of-
magnitude perf regressions and broken overload behaviour, not benign
modelling refinements. A legitimate change that moves a metric outside
its range should update the golden alongside the code, with the reason
in the commit message.
"""

import json
import sys


def in_range(value, lo_hi):
    lo, hi = lo_hi
    return lo <= value <= hi


def row_label(row):
    keys = ("strategy", "boards", "load_multiple", "deadline_cycles",
            "degrade_enabled")
    parts = [f"{k}={row[k]}" for k in keys if k in row]
    return "{" + ", ".join(parts) + "}"


def main(argv):
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(argv[1]) as f:
        record = json.load(f)
    with open(argv[2]) as f:
        golden = json.load(f)

    errors = []
    if record.get("bench") != golden["bench"]:
        errors.append(
            f"bench name: got {record.get('bench')!r}, "
            f"want {golden['bench']!r}")

    context = record.get("context", {})
    for key, want in golden.get("context", {}).items():
        if context.get(key) != want:
            errors.append(
                f"context.{key}: got {context.get(key)!r}, want {want!r}")

    rows = record.get("rows", [])
    if "num_rows" in golden and len(rows) != golden["num_rows"]:
        errors.append(
            f"row count: got {len(rows)}, want {golden['num_rows']}")

    for field, rng in golden.get("row_ranges", {}).items():
        for row in rows:
            if field in row and not in_range(row[field], rng):
                errors.append(
                    f"{row_label(row)} {field}={row[field]} outside "
                    f"[{rng[0]}, {rng[1]}]")

    for check in golden.get("row_checks", []):
        where = check["where"]
        matched = [
            r for r in rows
            if all(r.get(k) == v for k, v in where.items())
        ]
        if not matched:
            errors.append(f"no row matches where={where}")
            continue
        for row in matched:
            for field, rng in check["expect"].items():
                if field not in row:
                    errors.append(
                        f"{row_label(row)} has no field {field!r}")
                elif not in_range(row[field], rng):
                    errors.append(
                        f"{row_label(row)} {field}={row[field]} outside "
                        f"[{rng[0]}, {rng[1]}]")

    if errors:
        print(f"GOLDEN CHECK FAILED: {argv[1]} vs {argv[2]}",
              file=sys.stderr)
        for e in errors:
            print(f"  {e}", file=sys.stderr)
        return 1
    print(f"OK: {argv[1]} within golden ranges ({argv[2]})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
