#!/usr/bin/env python3
"""Byte-level determinism gate for BENCH_*.json files.

Usage: diff_bench_json.py A.json B.json

Compares two bench JSON records produced by runs that differ only in
host parallelism (e.g. LIGHTRW_SIM_THREADS=1 vs 4). Every simulated
field — the bench name, the reproduction context, and all rows — must
match exactly; the only field allowed to differ is context.sim_threads,
which records the knob under test. Exits non-zero with a field-by-field
report on any drift: a simulated metric that moves with the thread
count is a determinism bug, not noise.
"""

import json
import sys


def canonical(record):
    record = json.loads(json.dumps(record))  # deep copy
    record.get("context", {}).pop("sim_threads", None)
    return record


def describe_diff(a, b, path=""):
    diffs = []
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b)):
            sub = f"{path}.{key}" if path else key
            if key not in a:
                diffs.append(f"{sub}: missing in first file")
            elif key not in b:
                diffs.append(f"{sub}: missing in second file")
            else:
                diffs.extend(describe_diff(a[key], b[key], sub))
    elif isinstance(a, list) and isinstance(b, list):
        if len(a) != len(b):
            diffs.append(f"{path}: {len(a)} vs {len(b)} entries")
        for i, (x, y) in enumerate(zip(a, b)):
            diffs.extend(describe_diff(x, y, f"{path}[{i}]"))
    elif a != b or type(a) is not type(b):
        diffs.append(f"{path}: {a!r} != {b!r}")
    return diffs


def main(argv):
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(argv[1]) as f:
        a = canonical(json.load(f))
    with open(argv[2]) as f:
        b = canonical(json.load(f))
    if json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True):
        print(f"OK: {argv[1]} and {argv[2]} agree on every simulated field")
        return 0
    print(f"DETERMINISM FAILURE: {argv[1]} vs {argv[2]}", file=sys.stderr)
    for line in describe_diff(a, b):
        print(f"  {line}", file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
