// Multi-board distributed LightRW simulation (the paper's §8 future
// work): partitions a graph over several simulated FPGA boards connected
// by 100G links, runs MetaPath walks, and compares partitioning
// strategies against full replication.
//
//   ./examples/distributed_simulation

#include <cstdio>

#include "apps/walk_app.h"
#include "distributed/dist_engine.h"
#include "distributed/partition.h"
#include "graph/generators.h"

int main() {
  using namespace lightrw;

  const graph::CsrGraph graph = graph::MakeDatasetStandIn(
      graph::Dataset::kLiveJournal, /*scale_shift=*/9, /*seed=*/5);
  std::printf("liveJournal stand-in: %s\n", graph.Summary().c_str());

  apps::MetaPathApp app(apps::MakeRandomRelationPath(graph, 5, 5));
  const auto queries = apps::MakeVertexQueries(graph, 5, 5, 8192);

  const struct {
    const char* name;
    distributed::PartitionStrategy strategy;
    bool replicate;
  } kModes[] = {
      {"replicated", distributed::PartitionStrategy::kHash, true},
      {"hash", distributed::PartitionStrategy::kHash, false},
      {"range", distributed::PartitionStrategy::kRange, false},
      {"greedy", distributed::PartitionStrategy::kGreedy, false},
  };

  std::printf("\n%-12s %-7s %-10s %-12s %-12s %-14s\n", "mode", "boards",
              "Msteps/s", "migrations", "edge cut", "MB per board");
  for (const auto& mode : kModes) {
    for (const distributed::BoardId boards : {2, 4, 8}) {
      const distributed::Partition partition =
          distributed::MakePartition(graph, boards, mode.strategy);
      distributed::DistributedConfig config;
      config.board.num_instances = 1;
      config.board.seed = 11;
      config.replicate_graph = mode.replicate;
      distributed::DistributedEngine engine(&graph, &app, &partition,
                                            config);
      const auto stats = engine.Run(queries).value();
      char migrations[32], cut[32];
      std::snprintf(migrations, sizeof(migrations), "%.1f%%",
                    stats.MigrationRatio() * 100.0);
      std::snprintf(cut, sizeof(cut), "%.1f%%",
                    mode.replicate ? 0.0 : partition.CutRatio(graph) * 100.0);
      std::printf("%-12s %-7u %-10.2f %-12s %-12s %-14.1f\n",
                  mode.name, boards, stats.StepsPerSecond() / 1e6,
                  migrations, cut,
                  stats.per_board_graph_bytes / 1e6);
    }
  }
  std::printf(
      "\ntakeaway: replication avoids all migrations but stores the whole\n"
      "graph per board; partitioning trades network hops for capacity, and\n"
      "hub-aware load balance matters more than raw edge cut.\n");
  return 0;
}
