// MetaPath walks on a heterogeneous user/item/tag graph, used for a
// simple recommendation scenario: for each user, walk
//   user -(rates)-> item -(tagged)-> tag -(tagged_by)-> item
// many times and recommend the items that the walks reach most often.
//
//   ./examples/metapath_recommendation

#include <algorithm>
#include <cstdio>
#include <map>

#include "apps/walk_app.h"
#include "graph/builder.h"
#include "lightrw/functional_engine.h"

namespace {

// Vertex labels.
constexpr lightrw::graph::Label kUser = 0;
constexpr lightrw::graph::Label kItem = 1;
constexpr lightrw::graph::Label kTag = 2;
// Edge relations.
constexpr lightrw::graph::Relation kRates = 0;     // user -> item
constexpr lightrw::graph::Relation kTagged = 1;    // item -> tag
constexpr lightrw::graph::Relation kTaggedBy = 2;  // tag -> item

}  // namespace

int main() {
  using namespace lightrw;

  // 4 users (0-3), 6 items (4-9), 3 tags (10-12).
  graph::GraphBuilder builder(13, /*undirected=*/false);
  for (graph::VertexId u = 0; u < 4; ++u) {
    builder.SetVertexLabel(u, kUser);
  }
  for (graph::VertexId i = 4; i < 10; ++i) {
    builder.SetVertexLabel(i, kItem);
  }
  for (graph::VertexId t = 10; t < 13; ++t) {
    builder.SetVertexLabel(t, kTag);
  }

  // Ratings (weight = rating strength).
  const struct { graph::VertexId user, item; graph::Weight w; } ratings[] = {
      {0, 4, 5}, {0, 5, 3}, {1, 5, 4}, {1, 6, 5},
      {2, 7, 5}, {2, 8, 2}, {3, 8, 4}, {3, 9, 5},
  };
  for (const auto& r : ratings) {
    builder.AddEdge(r.user, r.item, r.w, kRates);
  }
  // Item-tag assignments (both directions, distinct relations).
  const struct { graph::VertexId item, tag; } tags[] = {
      {4, 10}, {5, 10}, {6, 10}, {6, 11}, {7, 11}, {8, 11}, {8, 12}, {9, 12},
  };
  for (const auto& t : tags) {
    builder.AddEdge(t.item, t.tag, 1, kTagged);
    builder.AddEdge(t.tag, t.item, 1, kTaggedBy);
  }
  const graph::CsrGraph graph = std::move(builder).Build();
  std::printf("heterogeneous graph: %s\n", graph.Summary().c_str());

  // The MetaPath "user rates item, item has tag, tag covers item".
  apps::MetaPathApp app({kRates, kTagged, kTaggedBy});
  core::AcceleratorConfig config;
  config.seed = 7;
  core::FunctionalEngine engine(&graph, &app, config);

  // 512 walks per user; tally the endpoint items.
  for (graph::VertexId user = 0; user < 4; ++user) {
    std::vector<apps::WalkQuery> queries(512, apps::WalkQuery{user, 3});
    baseline::WalkOutput output;
    engine.Run(queries, &output);
    std::map<graph::VertexId, int> scores;
    for (size_t i = 0; i < output.num_paths(); ++i) {
      const auto path = output.Path(i);
      if (path.size() == 4) {  // completed the full metapath
        ++scores[path.back()];
      }
    }
    std::printf("user %u recommendations:", user);
    // Exclude items the user already rated, print the rest by score.
    std::vector<std::pair<int, graph::VertexId>> ranked;
    for (const auto& [item, score] : scores) {
      if (!graph.HasEdge(user, item)) {
        ranked.emplace_back(score, item);
      }
    }
    std::sort(ranked.rbegin(), ranked.rend());
    for (const auto& [score, item] : ranked) {
      std::printf("  item %u (%d hits)", item, score);
    }
    std::printf("\n");
  }
  return 0;
}
