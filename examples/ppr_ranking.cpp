// Personalized PageRank via Monte Carlo random walks, checked against the
// exact power-iteration solution: demonstrates the PPR walk application on
// the LightRW engines.
//
//   ./examples/ppr_ranking

#include <cstdio>

#include "analytics/ppr.h"
#include "apps/ppr.h"
#include "graph/generators.h"
#include "lightrw/functional_engine.h"

int main() {
  using namespace lightrw;

  const graph::CsrGraph graph = graph::MakeDatasetStandIn(
      graph::Dataset::kYoutube, /*scale_shift=*/10, /*seed=*/11);
  std::printf("youtube stand-in: %s\n", graph.Summary().c_str());

  const double alpha = 0.15;
  apps::PprApp app(alpha);

  // Pick a well-connected source.
  graph::VertexId source = 0;
  for (graph::VertexId v = 0; v < graph.num_vertices(); ++v) {
    if (graph.Degree(v) > graph.Degree(source)) {
      source = v;
    }
  }
  std::printf("source vertex %u (degree %u), alpha %.2f\n", source,
              graph.Degree(source), alpha);

  // 200k walks from the source; each ends geometrically with prob alpha.
  constexpr size_t kWalks = 200000;
  const std::vector<apps::WalkQuery> queries(
      kWalks, apps::WalkQuery{source, /*length=*/128});
  core::AcceleratorConfig config;
  config.seed = 99;
  core::FunctionalEngine engine(&graph, &app, config);
  baseline::WalkOutput walks;
  const auto stats = engine.Run(queries, &walks);
  std::printf("ran %llu walks, %llu total steps (avg %.2f steps/walk)\n",
              static_cast<unsigned long long>(stats.queries),
              static_cast<unsigned long long>(stats.steps),
              static_cast<double>(stats.steps) / stats.queries);

  const auto estimate =
      analytics::EstimatePprFromWalks(walks, graph.num_vertices());
  const auto exact = analytics::ExactPpr(graph, source, alpha);
  std::printf("L1 distance between Monte Carlo and exact PPR: %.4f\n",
              analytics::L1Distance(estimate, exact));

  const auto top = analytics::TopKIndices(exact, 10);
  std::printf("top-10 PPR vertices (exact vs estimated):\n");
  for (const graph::VertexId v : top) {
    std::printf("  vertex %-8u exact %.5f  estimated %.5f\n", v, exact[v],
                estimate[v]);
  }
  return 0;
}
