// End-to-end link prediction (the paper's §6.7 case study): Node2Vec
// walks -> skip-gram embeddings -> cosine-similarity link scores, on a
// scaled liveJournal stand-in.
//
//   ./examples/node2vec_link_prediction

#include <cstdio>

#include "analytics/embedding.h"
#include "analytics/link_prediction.h"
#include "apps/walk_app.h"
#include "common/timer.h"
#include "rng/rng.h"
#include "graph/generators.h"
#include "lightrw/functional_engine.h"

int main() {
  using namespace lightrw;

  const graph::CsrGraph graph = graph::MakeDatasetStandIn(
      graph::Dataset::kLiveJournal, /*scale_shift=*/10, /*seed=*/42);
  std::printf("liveJournal stand-in: %s\n", graph.Summary().c_str());

  // Walk corpus: one 40-step Node2Vec walk per vertex.
  apps::Node2VecApp app(/*p=*/2.0, /*q=*/0.5);
  core::AcceleratorConfig config;
  config.seed = 42;
  core::FunctionalEngine engine(&graph, &app, config);
  const auto queries = apps::MakeVertexQueries(graph, /*length=*/40,
                                               /*seed=*/42);

  WallTimer walk_timer;
  baseline::WalkOutput corpus;
  const auto walk_stats = engine.Run(queries, &corpus);
  std::printf("walks: %llu steps in %.2fs\n",
              static_cast<unsigned long long>(walk_stats.steps),
              walk_timer.ElapsedSeconds());

  WallTimer train_timer;
  analytics::EmbeddingConfig embed_config;
  embed_config.dimensions = 32;
  embed_config.epochs = 1;
  const analytics::Embedding embedding =
      analytics::TrainEmbedding(corpus, graph.num_vertices(), embed_config);
  std::printf("embedding: %u dims trained in %.2fs\n",
              embedding.dimensions(), train_timer.ElapsedSeconds());

  const auto result =
      analytics::EvaluateLinkPrediction(graph, embedding, 1000, 42);
  std::printf("link prediction AUC over %zu+/%zu- pairs: %.3f\n",
              result.positive_pairs, result.negative_pairs, result.auc);

  // Show a few concrete predictions among random candidate pairs.
  rng::Xoshiro256StarStar gen(7);
  std::vector<std::pair<graph::VertexId, graph::VertexId>> candidates;
  for (int i = 0; i < 5000; ++i) {
    candidates.emplace_back(
        static_cast<graph::VertexId>(gen.NextBounded(graph.num_vertices())),
        static_cast<graph::VertexId>(gen.NextBounded(graph.num_vertices())));
  }
  const auto top = analytics::PredictTopLinks(
      graph, embedding, {candidates.data(), candidates.size()}, 5);
  std::printf("top predicted new links:\n");
  for (const auto& [u, v] : top) {
    std::printf("  %u -- %u (similarity %.3f)\n", u, v,
                embedding.CosineSimilarity(u, v));
  }
  return 0;
}
