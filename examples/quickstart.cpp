// Quickstart: build a graph, run Node2Vec dynamic random walks with the
// LightRW functional engine, and print the sampled paths.
//
//   ./examples/quickstart

#include <cstdio>

#include "apps/walk_app.h"
#include "graph/builder.h"
#include "lightrw/functional_engine.h"

int main() {
  using namespace lightrw;

  // A small undirected social graph: two triangles joined by an edge.
  //   0 - 1 - 2 - 0    3 - 4 - 5 - 3    2 - 3
  graph::GraphBuilder builder(/*num_vertices=*/6, /*undirected=*/true);
  builder.AddEdge(0, 1, /*weight=*/3);
  builder.AddEdge(1, 2, /*weight=*/1);
  builder.AddEdge(2, 0, /*weight=*/2);
  builder.AddEdge(3, 4, /*weight=*/1);
  builder.AddEdge(4, 5, /*weight=*/2);
  builder.AddEdge(5, 3, /*weight=*/3);
  builder.AddEdge(2, 3, /*weight=*/1);  // bridge
  const graph::CsrGraph graph = std::move(builder).Build();
  std::printf("graph: %s\n", graph.Summary().c_str());

  // Node2Vec with the paper's hyperparameters (p=2 discourages returning,
  // q=0.5 encourages exploring away from the previous vertex).
  apps::Node2VecApp app(/*p=*/2.0, /*q=*/0.5);

  // One 8-step walk from every vertex.
  std::vector<apps::WalkQuery> queries;
  for (graph::VertexId v = 0; v < graph.num_vertices(); ++v) {
    queries.push_back({v, 8});
  }

  core::AcceleratorConfig config;  // k=16 parallel WRS, seeded RNG
  config.seed = 2023;
  core::FunctionalEngine engine(&graph, &app, config);
  baseline::WalkOutput output;
  const auto stats = engine.Run(queries, &output);

  std::printf("ran %llu queries, %llu steps\n",
              static_cast<unsigned long long>(stats.queries),
              static_cast<unsigned long long>(stats.steps));
  for (size_t i = 0; i < output.num_paths(); ++i) {
    std::printf("walk %zu:", i);
    for (const graph::VertexId v : output.Path(i)) {
      std::printf(" %u", v);
    }
    std::printf("\n");
  }
  return 0;
}
