// Drives the cycle-approximate LightRW accelerator model against the
// ThunderRW-style CPU baseline on a dataset stand-in, and prints the
// performance counters the paper's evaluation is built from (simulated
// cycles, DRAM traffic, cache hit ratio, burst statistics).
//
//   ./examples/accelerator_simulation

#include <cstdio>

#include "apps/walk_app.h"
#include "baseline/engine.h"
#include "graph/generators.h"
#include "lightrw/cycle_engine.h"
#include "lightrw/platform_models.h"

int main() {
  using namespace lightrw;

  const graph::CsrGraph graph = graph::MakeDatasetStandIn(
      graph::Dataset::kOrkut, /*scale_shift=*/9, /*seed=*/1);
  std::printf("orkut stand-in: %s\n", graph.Summary().c_str());

  apps::Node2VecApp app(/*p=*/2.0, /*q=*/0.5);
  const auto queries =
      apps::MakeVertexQueries(graph, /*length=*/20, /*seed=*/1,
                              /*max_queries=*/4096);

  // CPU baseline (wall clock, inverse transform sampling).
  baseline::BaselineEngine cpu(&graph, &app, baseline::BaselineConfig{});
  const auto cpu_stats = cpu.Run(queries);
  std::printf("\nThunderRW-style CPU baseline (measured):\n");
  std::printf("  %.3fs, %.2f Msteps/s\n", cpu_stats.seconds,
              cpu_stats.StepsPerSecond() / 1e6);

  // LightRW accelerator model (simulated at 300 MHz, 4 instances).
  core::AcceleratorConfig config;
  config.num_instances = 4;
  core::CycleEngine accel(&graph, &app, config);
  const auto stats = accel.Run(queries);

  std::printf("\nLightRW accelerator model (simulated):\n");
  std::printf("  kernel: %llu cycles = %.4fs, %.2f Msteps/s (%.2fx CPU)\n",
              static_cast<unsigned long long>(stats.cycles), stats.seconds,
              stats.StepsPerSecond() / 1e6,
              stats.StepsPerSecond() / cpu_stats.StepsPerSecond());
  std::printf("  DRAM: %.1f MB moved, %.1f%% useful, %.2f GB/s effective\n",
              stats.dram.bytes / 1e6,
              100.0 * stats.dram.useful_bytes / stats.dram.bytes,
              stats.EffectiveBandwidth() / 1e9);
  std::printf("  degree-aware cache: %.1f%% hit ratio (%llu probes)\n",
              100.0 * (1.0 - stats.cache.MissRatio()),
              static_cast<unsigned long long>(stats.cache.accesses()));
  std::printf("  burst engine: %llu long + %llu short bursts, "
              "valid-data ratio %.2f\n",
              static_cast<unsigned long long>(stats.burst.long_bursts),
              static_cast<unsigned long long>(stats.burst.short_bursts),
              stats.burst.ValidDataRatio());
  std::printf("  Node2Vec prev-adjacency re-fetches: %llu\n",
              static_cast<unsigned long long>(stats.prev_refetches));

  // Platform models.
  core::PcieModel pcie;
  const double transfer = pcie.TransferSeconds(
      pcie.RunBytes(graph, config.num_instances, queries.size(), 20));
  core::PowerModel power;
  std::printf("\nplatform models:\n");
  std::printf("  PCIe transfer: %.4fs (%.1f%% of end-to-end)\n", transfer,
              100.0 * transfer / (transfer + stats.seconds));
  std::printf("  modeled board power: %.1f W (CPU baseline: %.1f W)\n",
              power.FpgaWatts(config.num_instances, graph.num_edges(), true),
              power.CpuWatts(graph.num_edges(), true));

  core::ResourceModel resources;
  const auto usage = resources.TotalUsage(config, app.needs_prev_neighbors());
  std::printf("  modeled U250 utilization: %.1f%% LUT, %.1f%% BRAM, "
              "%.1f%% DSP\n",
              resources.LutPercent(usage), resources.BramPercent(usage),
              resources.DspPercent(usage));
  return 0;
}
