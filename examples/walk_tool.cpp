// Command-line walk driver: load or generate a graph, run any of the
// supported walk applications on the chosen engine, and optionally save
// the walk corpus.
//
//   ./examples/walk_tool --help
//   ./examples/walk_tool --graph edges.txt --app node2vec --length 40
//       --queries 10000 --engine lightrw --out corpus.txt  (one line)

#include <cstdio>
#include <memory>

#include "analytics/corpus_io.h"
#include "apps/ppr.h"
#include "apps/walk_app.h"
#include "baseline/engine.h"
#include "common/flags.h"
#include "common/timer.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "lightrw/cycle_engine.h"
#include "lightrw/report.h"
#include "lightrw/functional_engine.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace {

using namespace lightrw;

std::unique_ptr<apps::WalkApp> MakeApp(const std::string& name,
                                       const graph::CsrGraph& g,
                                       const FlagParser& flags) {
  if (name == "node2vec") {
    return std::make_unique<apps::Node2VecApp>(flags.GetDouble("p"),
                                               flags.GetDouble("q"));
  }
  if (name == "metapath") {
    return std::make_unique<apps::MetaPathApp>(apps::MakeRandomRelationPath(
        g, static_cast<uint32_t>(flags.GetInt("length")),
        flags.GetInt("seed")));
  }
  if (name == "ppr") {
    return std::make_unique<apps::PprApp>(flags.GetDouble("alpha"));
  }
  if (name == "deepwalk") {
    return std::make_unique<apps::StaticWalkApp>();
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.Define("graph", "edge list file to load (empty: generate rmat)", "");
  flags.Define("undirected", "treat the edge list as undirected", "false");
  flags.Define("rmat_scale", "generated graph scale (2^scale vertices)",
               "14");
  flags.Define("app", "walk app: deepwalk|node2vec|metapath|ppr",
               "node2vec");
  flags.Define("engine", "walk engine: cpu|lightrw|lightrw-sim", "lightrw");
  flags.Define("length", "walk length (steps)", "40");
  flags.Define("queries", "number of queries (0 = one per vertex)", "0");
  flags.Define("p", "node2vec return parameter", "2.0");
  flags.Define("q", "node2vec in-out parameter", "0.5");
  flags.Define("alpha", "ppr stop probability", "0.15");
  flags.Define("seed", "random seed", "42");
  flags.Define("out", "write the walk corpus to this file (text)", "");
  flags.Define("report", "print the full accelerator run report", "false");
  flags.Define("metrics-out",
               "write a metrics snapshot (JSON; .prom suffix selects "
               "Prometheus text) to this file",
               "");
  flags.Define("trace-out",
               "write a Chrome trace_event JSON file (open in Perfetto) "
               "of the simulated pipeline to this file",
               "");
  flags.Define("trace-limit", "max trace events kept (0 = disable)",
               "1048576");
  flags.Define("help", "print usage", "false");

  const Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n%s", parsed.ToString().c_str(),
                 flags.HelpText().c_str());
    return 1;
  }
  if (flags.GetBool("help")) {
    std::printf("lightrw walk tool\n%s", flags.HelpText().c_str());
    return 0;
  }

  // Load or generate the graph.
  graph::CsrGraph g;
  if (!flags.GetString("graph").empty()) {
    auto loaded = graph::ReadEdgeList(flags.GetString("graph"),
                                      flags.GetBool("undirected"));
    if (!loaded.ok()) {
      std::fprintf(stderr, "failed to load graph: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    g = std::move(loaded).value();
  } else {
    graph::RmatOptions options;
    options.scale = static_cast<uint32_t>(flags.GetInt("rmat_scale"));
    options.seed = flags.GetInt("seed");
    g = graph::GenerateRmat(options);
  }
  std::printf("graph: %s\n", g.Summary().c_str());

  const auto app = MakeApp(flags.GetString("app"), g, flags);
  if (app == nullptr) {
    std::fprintf(stderr, "unknown app '%s'\n",
                 flags.GetString("app").c_str());
    return 1;
  }

  const uint32_t length = static_cast<uint32_t>(flags.GetInt("length"));
  const auto queries = apps::MakeVertexQueries(
      g, length, flags.GetInt("seed"),
      static_cast<size_t>(flags.GetInt("queries")));
  std::printf("app %s, %zu queries of length %u, engine %s\n",
              app->name().c_str(), queries.size(), length,
              flags.GetString("engine").c_str());

  // Observability sinks, shared by every engine path. The trace only
  // fills for the cycle-accurate engine (the CPU path has no simulated
  // clock to stamp events with).
  obs::MetricsRegistry metrics;
  obs::TraceConfig trace_config;
  trace_config.max_events =
      static_cast<size_t>(flags.GetInt("trace-limit"));
  obs::TraceRecorder trace(trace_config);
  const std::string metrics_out = flags.GetString("metrics-out");
  const std::string trace_out = flags.GetString("trace-out");

  baseline::WalkOutput corpus;
  WallTimer timer;
  const std::string engine = flags.GetString("engine");
  if (engine == "cpu") {
    baseline::BaselineConfig config;
    config.seed = flags.GetInt("seed");
    config.metrics = metrics_out.empty() ? nullptr : &metrics;
    baseline::BaselineEngine cpu(&g, app.get(), config);
    const auto stats = cpu.Run(queries, &corpus);
    std::printf("cpu engine: %llu steps in %.3fs (%.2f Msteps/s)\n",
                static_cast<unsigned long long>(stats.steps), stats.seconds,
                stats.StepsPerSecond() / 1e6);
  } else if (engine == "lightrw-sim") {
    core::AcceleratorConfig config;
    config.seed = flags.GetInt("seed");
    if (!metrics_out.empty()) {
      config.metrics = &metrics;
    }
    if (!trace_out.empty()) {
      config.trace = &trace;
    }
    core::CycleEngine accel(&g, app.get(), config);
    const auto stats = accel.Run(queries, &corpus);
    std::printf(
        "lightrw cycle model: %llu steps, %llu cycles = %.4fs simulated "
        "(%.2f Msteps/s)\n",
        static_cast<unsigned long long>(stats.steps),
        static_cast<unsigned long long>(stats.cycles), stats.seconds,
        stats.StepsPerSecond() / 1e6);
    if (flags.GetBool("report")) {
      core::RunReportInputs report;
      report.graph = &g;
      report.config = &config;
      report.stats = &stats;
      report.app_name = app->name();
      report.needs_prev_neighbors = app->needs_prev_neighbors();
      report.num_queries = queries.size();
      report.query_length = length;
      std::fputs(core::FormatRunReport(report).c_str(), stdout);
    }
  } else {
    core::AcceleratorConfig config;
    config.seed = flags.GetInt("seed");
    core::FunctionalEngine accel(&g, app.get(), config);
    const auto stats = accel.Run(queries, &corpus);
    std::printf("lightrw functional: %llu steps in %.3fs wall\n",
                static_cast<unsigned long long>(stats.steps),
                timer.ElapsedSeconds());
  }

  if (!metrics_out.empty()) {
    const bool prometheus = metrics_out.size() > 5 &&
                            metrics_out.rfind(".prom") ==
                                metrics_out.size() - 5;
    const Status written = obs::WriteTextFile(
        prometheus ? metrics.ToPrometheusText() : metrics.ToJsonString(),
        metrics_out);
    if (!written.ok()) {
      std::fprintf(stderr, "failed to write metrics: %s\n",
                   written.ToString().c_str());
      return 1;
    }
    std::printf("wrote metrics snapshot to %s\n", metrics_out.c_str());
  }
  if (!trace_out.empty()) {
    const Status written = trace.WriteChromeTrace(trace_out);
    if (!written.ok()) {
      std::fprintf(stderr, "failed to write trace: %s\n",
                   written.ToString().c_str());
      return 1;
    }
    std::printf("wrote %zu trace events to %s (%zu dropped)\n",
                trace.num_events(), trace_out.c_str(),
                trace.dropped_events());
  }

  if (!flags.GetString("out").empty()) {
    const Status written =
        analytics::WriteCorpusText(corpus, flags.GetString("out"));
    if (!written.ok()) {
      std::fprintf(stderr, "failed to write corpus: %s\n",
                   written.ToString().c_str());
      return 1;
    }
    std::printf("wrote %zu walks to %s\n", corpus.num_paths(),
                flags.GetString("out").c_str());
  }
  return 0;
}
