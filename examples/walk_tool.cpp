// Command-line walk driver: load or generate a graph, run any of the
// supported walk applications on the chosen engine, and optionally save
// the walk corpus.
//
//   ./examples/walk_tool --help
//   ./examples/walk_tool --graph edges.txt --app node2vec --length 40
//       --queries 10000 --engine lightrw --out corpus.txt  (one line)
//
// Fault injection (--fault-*) drives the reliability subsystem: DRAM ECC
// errors on any simulated engine, plus link faults and board deaths
// (single or cascading, with hot spares via --spare-boards) on
// --engine distributed|service. --chaos-scenarios N runs the seeded
// chaos campaign instead of a single workload.
//
// Exit codes: 0 success; 1 usage/configuration/IO error (or a failed
// chaos scenario); 2 SLO breach (engine=service); 3 partial data (the
// run completed but lost walks to injected faults).

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "analytics/corpus_io.h"
#include "apps/ppr.h"
#include "apps/walk_app.h"
#include "baseline/engine.h"
#include "common/flags.h"
#include "common/sim_thread_pool.h"
#include "common/timer.h"
#include "distributed/dist_engine.h"
#include "distributed/partition.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "lightrw/config_validation.h"
#include "lightrw/cycle_engine.h"
#include "lightrw/report.h"
#include "lightrw/functional_engine.h"
#include "obs/critical_path.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "reliability/chaos.h"
#include "reliability/fault_injector.h"
#include "reliability/membership.h"
#include "service/walk_service.h"

namespace {

using namespace lightrw;

std::unique_ptr<apps::WalkApp> MakeApp(const std::string& name,
                                       const graph::CsrGraph& g,
                                       const FlagParser& flags) {
  if (name == "node2vec") {
    return std::make_unique<apps::Node2VecApp>(flags.GetDouble("p"),
                                               flags.GetDouble("q"));
  }
  if (name == "metapath") {
    return std::make_unique<apps::MetaPathApp>(apps::MakeRandomRelationPath(
        g, static_cast<uint32_t>(flags.GetInt("length")),
        flags.GetInt("seed")));
  }
  if (name == "ppr") {
    return std::make_unique<apps::PprApp>(flags.GetDouble("alpha"));
  }
  if (name == "deepwalk") {
    return std::make_unique<apps::StaticWalkApp>();
  }
  return nullptr;
}

// Maps a --partition flag value; false (with a one-line stderr reason)
// for an unknown name.
bool ParseStrategy(const std::string& name,
                   distributed::PartitionStrategy* out) {
  if (name == "hash") {
    *out = distributed::PartitionStrategy::kHash;
  } else if (name == "range") {
    *out = distributed::PartitionStrategy::kRange;
  } else if (name == "greedy") {
    *out = distributed::PartitionStrategy::kGreedy;
  } else {
    std::fprintf(stderr,
                 "unknown partition strategy '%s' (expected "
                 "hash|range|greedy)\n",
                 name.c_str());
    return false;
  }
  return true;
}

// Parses a comma-separated list of non-negative integers ("" = empty).
// False (with a one-line stderr reason) on malformed input.
bool ParseUintList(const std::string& flag, const std::string& text,
                   std::vector<uint64_t>* out) {
  out->clear();
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find(',', pos);
    if (end == std::string::npos) {
      end = text.size();
    }
    const std::string item = text.substr(pos, end - pos);
    if (item.empty() || item.find_first_not_of("0123456789") !=
                            std::string::npos) {
      std::fprintf(stderr, "--%s: '%s' is not a non-negative integer\n",
                   flag.c_str(), item.c_str());
      return false;
    }
    out->push_back(std::stoull(item));
    pos = end + 1;
  }
  return true;
}

// Fault schedule from the --fault-* flags. Any non-default fault flag
// enables the subsystem; otherwise it stays fully disabled and the run
// is bit-identical to one without it. False on malformed death lists.
bool FaultsFromFlags(const FlagParser& flags,
                     reliability::FaultConfig* faults) {
  faults->seed = static_cast<uint64_t>(flags.GetInt("fault-seed"));
  faults->dram_correctable_rate = flags.GetDouble("fault-dram-correctable");
  faults->dram_uncorrectable_rate =
      flags.GetDouble("fault-dram-uncorrectable");
  faults->link_drop_rate = flags.GetDouble("fault-link-drop");
  faults->link_corrupt_rate = flags.GetDouble("fault-link-corrupt");
  faults->fail_cycle =
      static_cast<uint64_t>(flags.GetInt("fault-fail-cycle"));
  faults->fail_board =
      static_cast<uint32_t>(flags.GetInt("fault-fail-board"));
  faults->checkpoint_interval_cycles =
      static_cast<uint64_t>(flags.GetInt("fault-checkpoint-interval"));
  faults->allow_walker_loss = flags.GetBool("fault-allow-walker-loss");
  // Cascading deaths: paired comma lists of cycles and board ids.
  std::vector<uint64_t> cycles, boards;
  if (!ParseUintList("fault-fail-cycles",
                     flags.GetString("fault-fail-cycles"), &cycles) ||
      !ParseUintList("fault-fail-boards",
                     flags.GetString("fault-fail-boards"), &boards)) {
    return false;
  }
  if (cycles.size() != boards.size()) {
    std::fprintf(stderr,
                 "--fault-fail-cycles and --fault-fail-boards must have "
                 "the same number of entries (got %zu and %zu)\n",
                 cycles.size(), boards.size());
    return false;
  }
  for (size_t i = 0; i < cycles.size(); ++i) {
    faults->board_deaths.push_back(
        {cycles[i], static_cast<uint32_t>(boards[i])});
  }
  faults->enabled =
      flags.GetBool("faults") || faults->dram_correctable_rate != 0.0 ||
      faults->dram_uncorrectable_rate != 0.0 ||
      faults->link_drop_rate != 0.0 || faults->link_corrupt_rate != 0.0 ||
      faults->fail_cycle > 0 || !faults->board_deaths.empty();
  return true;
}

void PrintReliabilitySummary(const reliability::ReliabilityStats& rel) {
  if (!rel.Any()) {
    return;
  }
  std::printf(
      "reliability: %llu fault(s) injected (%llu ecc, %llu link, %llu "
      "board), %llu retransmission(s), %llu recovered, %llu lost, %llu "
      "walk(s) failed\n",
      static_cast<unsigned long long>(rel.FaultsInjected()),
      static_cast<unsigned long long>(rel.dram_correctable +
                                      rel.dram_uncorrectable),
      static_cast<unsigned long long>(rel.link_dropped + rel.link_corrupted),
      static_cast<unsigned long long>(rel.board_failures),
      static_cast<unsigned long long>(rel.retransmissions),
      static_cast<unsigned long long>(rel.walkers_recovered),
      static_cast<unsigned long long>(rel.walkers_lost),
      static_cast<unsigned long long>(rel.walks_failed));
  if (rel.spares_activated > 0 || rel.spare_exhaustions > 0) {
    std::printf(
        "self-healing: %llu spare(s) activated, %llu rebuild(s) completed "
        "(%llu aborted, %llu cycle(s) total), %llu spare exhaustion(s)\n",
        static_cast<unsigned long long>(rel.spares_activated),
        static_cast<unsigned long long>(rel.rebuilds_completed),
        static_cast<unsigned long long>(rel.rebuilds_aborted),
        static_cast<unsigned long long>(rel.rebuild_cycles),
        static_cast<unsigned long long>(rel.spare_exhaustions));
  }
}

// Exit 3 ("partial data") when the run completed but lost walk data to
// injected faults — distinct from exit 1 (the tool failed to run) so
// callers can keep the partial corpus knowingly.
int ReliabilityExitCode(const reliability::ReliabilityStats& rel) {
  const Status status = reliability::ReliabilityStatus(rel);
  if (!status.ok()) {
    std::fprintf(stderr, "partial data: %s\n", status.ToString().c_str());
    return 3;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.Define("graph", "edge list file to load (empty: generate rmat)", "");
  flags.DefineBool("undirected", "treat the edge list as undirected", false);
  flags.DefineInt("rmat_scale", "generated graph scale (2^scale vertices)",
                  14);
  flags.Define("app", "walk app: deepwalk|node2vec|metapath|ppr",
               "node2vec");
  flags.Define("engine",
               "walk engine: cpu|lightrw|lightrw-sim|distributed|service",
               "lightrw");
  flags.DefineInt("length", "walk length (steps)", 40);
  flags.DefineInt("queries", "number of queries (0 = one per vertex)", 0);
  flags.DefineDouble("p", "node2vec return parameter", 2.0);
  flags.DefineDouble("q", "node2vec in-out parameter", 0.5);
  flags.DefineDouble("alpha", "ppr stop probability", 0.15);
  flags.DefineInt("seed", "random seed", 42);
  flags.Define("out", "write the walk corpus to this file (text)", "");
  flags.DefineBool("report", "print the full accelerator run report", false);
  flags.Define("metrics-out",
               "write a metrics snapshot (JSON; .prom suffix selects "
               "Prometheus text) to this file",
               "");
  flags.Define("trace-out",
               "write a Chrome trace_event JSON file (open in Perfetto) "
               "of the simulated pipeline to this file",
               "");
  flags.DefineInt("trace-limit", "max trace events kept (0 = disable)",
                  1048576);
  flags.Define("metrics-format",
               "metrics snapshot format: json|prometheus (default: by "
               "--metrics-out suffix, .prom = prometheus)",
               "");
  flags.Define("spans-out",
               "write per-query spans, critical-path attribution, and "
               "burn-rate alerts as JSON to this file "
               "(engine=distributed|service)",
               "");
  flags.Define("span-mode",
               "span retention: all|breached (breached = flight recorder: "
               "keep spans only for deadline-missed/shed/failed queries)",
               "all");
  flags.DefineDouble("burn-alert-budget",
                     "SLO error budget: allowed breach fraction for "
                     "burn-rate alerting",
                     0.01);
  flags.DefineDouble("burn-alert-threshold",
                     "fire the SLO alert while breach_rate/budget exceeds "
                     "this in both windows",
                     2.0);
  flags.DefineInt("burn-alert-fast-window",
                  "fast burn-rate window in simulated cycles", 16384);
  flags.DefineInt("burn-alert-slow-window",
                  "slow burn-rate window in simulated cycles", 131072);
  flags.DefineInt("boards", "simulated boards (engine=distributed)", 4);
  flags.DefineInt("threads",
                  "host worker threads for sharded simulation (0 = "
                  "LIGHTRW_SIM_THREADS env, else 1); results are "
                  "bit-identical for every value",
                  0);
  flags.DefineInt("service-shards",
                  "independent admission shards (engine=service; must "
                  "divide --boards evenly; > 1 requires --replicate)",
                  1);
  flags.Define("partition",
               "graph partitioning strategy: hash|range|greedy "
               "(engine=distributed)",
               "greedy");
  flags.DefineBool("replicate",
                   "replicate the full graph on every board "
                   "(engine=distributed)",
                   false);
  flags.DefineDouble("service-rate",
                     "offered arrival rate in queries per 1024 simulated "
                     "cycles (engine=service)",
                     1.0);
  flags.DefineInt("service-deadline",
                  "per-query deadline in simulated cycles after arrival "
                  "(0 = none; engine=service)",
                  0);
  flags.DefineInt("service-queue-cap",
                  "bounded admission queue capacity per board "
                  "(engine=service)",
                  64);
  flags.DefineInt("service-retries",
                  "re-admissions allowed per bounced or failed query "
                  "(engine=service)",
                  2);
  flags.DefineBool("service-degrade",
                   "degrade best-effort queries under congestion "
                   "(engine=service)",
                   true);
  flags.DefineDouble("service-best-effort",
                     "fraction of queries eligible for degradation "
                     "(engine=service)",
                     1.0);
  flags.DefineDouble("service-burst",
                     "arrival rate multiplier during bursts "
                     "(engine=service)",
                     1.0);
  flags.DefineInt("service-burst-on",
                  "burst phase length in cycles (0 = steady arrivals; "
                  "engine=service)",
                  0);
  flags.DefineInt("service-burst-off",
                  "inter-burst gap length in cycles (engine=service)", 0);
  flags.DefineDouble("slo-max-shed",
                     "exit 2 if the shed rate exceeds this fraction "
                     "(engine=service)",
                     1.0);
  flags.DefineDouble("slo-max-violation",
                     "exit 2 if the deadline violation rate exceeds this "
                     "fraction (engine=service)",
                     1.0);
  flags.DefineBool("faults", "enable the fault-injection subsystem", false);
  flags.DefineInt("fault-seed", "fault schedule seed", 1);
  flags.DefineDouble("fault-dram-correctable",
                     "correctable ECC error probability per DRAM access",
                     0.0);
  flags.DefineDouble("fault-dram-uncorrectable",
                     "uncorrectable ECC error probability per DRAM access",
                     0.0);
  flags.DefineDouble("fault-link-drop",
                     "message drop probability per link send", 0.0);
  flags.DefineDouble("fault-link-corrupt",
                     "message corruption probability per link send", 0.0);
  flags.DefineInt("fault-fail-cycle",
                  "kill one board at this simulated cycle (0 = never)", 0);
  flags.DefineInt("fault-fail-board", "which board to kill", 0);
  flags.DefineInt("fault-checkpoint-interval",
                  "walker checkpoint cadence in cycles (0 = no "
                  "checkpoints: recovering walkers lose their walk)",
                  65536);
  flags.Define("fault-fail-cycles",
               "comma-separated board-death cycles (paired with "
               "--fault-fail-boards) for cascading failures",
               "");
  flags.Define("fault-fail-boards",
               "comma-separated boards to kill (paired with "
               "--fault-fail-cycles; ids past --boards name hot spares)",
               "");
  flags.DefineBool("fault-allow-walker-loss",
                   "opt in to walk loss from a scheduled board death "
                   "with --fault-checkpoint-interval 0",
                   false);
  flags.DefineInt("spare-boards",
                  "hot spare boards that rebuild a dead board's "
                  "partition share and take over its identity "
                  "(engine=distributed|service)",
                  0);
  flags.DefineDouble("rebuild-bytes-per-cycle",
                     "partition-rebuild bandwidth in bytes per simulated "
                     "cycle",
                     32.0);
  flags.DefineInt("chaos-scenarios",
                  "run the seeded chaos campaign with this many "
                  "scenarios instead of a single workload (0 = off)",
                  0);
  flags.DefineInt("chaos-seed", "chaos campaign seed", 1);
  flags.DefineInt("chaos-spares",
                  "max hot spares a chaos scenario may configure", 2);
  flags.Define("chaos-out",
               "write the chaos campaign report (JSON) to this file", "");
  flags.Define("chaos-spans-out",
               "write scenario 0's span + membership JSON to this file",
               "");
  flags.DefineBool("help", "print usage", false);

  const Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n%s", parsed.ToString().c_str(),
                 flags.HelpText().c_str());
    return 1;
  }
  if (flags.GetBool("help")) {
    std::printf("lightrw walk tool\n%s", flags.HelpText().c_str());
    return 0;
  }

  const int64_t raw_threads = flags.GetInt("threads");
  if (raw_threads < 0 ||
      raw_threads > static_cast<int64_t>(SimThreadPool::kMaxThreads)) {
    std::fprintf(stderr, "--threads must be in [0, %u], got %lld\n",
                 SimThreadPool::kMaxThreads,
                 static_cast<long long>(raw_threads));
    return 1;
  }
  const uint32_t threads = static_cast<uint32_t>(raw_threads);
  if (threads > 0) {
    SimThreadPool::SetDefaultThreads(threads);
  }

  // Load or generate the graph.
  graph::CsrGraph g;
  if (!flags.GetString("graph").empty()) {
    auto loaded = graph::ReadEdgeList(flags.GetString("graph"),
                                      flags.GetBool("undirected"));
    if (!loaded.ok()) {
      std::fprintf(stderr, "failed to load graph: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    g = std::move(loaded).value();
  } else {
    const int64_t scale = flags.GetInt("rmat_scale");
    if (scale < 1 || scale > 28) {
      std::fprintf(stderr, "--rmat_scale must be in [1, 28], got %lld\n",
                   static_cast<long long>(scale));
      return 1;
    }
    graph::RmatOptions options;
    options.scale = static_cast<uint32_t>(scale);
    options.seed = flags.GetInt("seed");
    g = graph::GenerateRmat(options);
  }
  std::printf("graph: %s\n", g.Summary().c_str());

  const auto app = MakeApp(flags.GetString("app"), g, flags);
  if (app == nullptr) {
    std::fprintf(stderr, "unknown app '%s' (expected "
                 "deepwalk|node2vec|metapath|ppr)\n",
                 flags.GetString("app").c_str());
    return 1;
  }

  const int64_t raw_length = flags.GetInt("length");
  const int64_t raw_queries = flags.GetInt("queries");
  if (raw_length < 1 || raw_queries < 0) {
    std::fprintf(stderr,
                 "--length must be >= 1 and --queries >= 0 (got %lld, "
                 "%lld)\n",
                 static_cast<long long>(raw_length),
                 static_cast<long long>(raw_queries));
    return 1;
  }
  const uint32_t length = static_cast<uint32_t>(raw_length);

  // Chaos campaign: N seeded failure scenarios with machine-checked
  // invariants, replacing the single-workload run entirely.
  const int64_t chaos_scenarios = flags.GetInt("chaos-scenarios");
  if (chaos_scenarios > 0) {
    const int64_t chaos_boards = flags.GetInt("boards");
    if (chaos_boards < 2 || chaos_boards > 1024) {
      std::fprintf(stderr,
                   "--boards must be in [2, 1024] for a chaos campaign, "
                   "got %lld\n",
                   static_cast<long long>(chaos_boards));
      return 1;
    }
    reliability::ChaosConfig chaos;
    chaos.seed = static_cast<uint64_t>(flags.GetInt("chaos-seed"));
    chaos.num_scenarios = static_cast<uint32_t>(chaos_scenarios);
    chaos.num_boards = static_cast<distributed::BoardId>(chaos_boards);
    chaos.max_spare_boards =
        static_cast<uint32_t>(flags.GetInt("chaos-spares"));
    chaos.num_queries =
        raw_queries > 0 ? static_cast<uint32_t>(raw_queries) : 256;
    chaos.walk_length = length;
    const auto campaign =
        reliability::RunChaosCampaign(g, *app, chaos);
    if (!campaign.ok()) {
      std::fprintf(stderr, "chaos campaign failed: %s\n",
                   campaign.status().ToString().c_str());
      return 1;
    }
    for (const auto& scenario : campaign->scenarios) {
      std::printf("chaos %-40s %s\n", scenario.name.c_str(),
                  scenario.passed ? "ok" : "FAIL");
      for (const std::string& violation : scenario.violations) {
        std::printf("  violation: %s\n", violation.c_str());
      }
    }
    std::printf("chaos campaign: %zu/%zu scenario(s) passed\n",
                campaign->scenarios.size() - campaign->failures,
                campaign->scenarios.size());
    const std::string chaos_out = flags.GetString("chaos-out");
    if (!chaos_out.empty()) {
      const Status written =
          obs::WriteTextFile(campaign->ToJson().Dump(2) + "\n", chaos_out);
      if (!written.ok()) {
        std::fprintf(stderr, "failed to write chaos report: %s\n",
                     written.ToString().c_str());
        return 1;
      }
      std::printf("wrote chaos report to %s\n", chaos_out.c_str());
    }
    const std::string chaos_spans_out = flags.GetString("chaos-spans-out");
    if (!chaos_spans_out.empty()) {
      const Status written = obs::WriteTextFile(
          campaign->sampled_span_json + "\n", chaos_spans_out);
      if (!written.ok()) {
        std::fprintf(stderr, "failed to write chaos spans: %s\n",
                     written.ToString().c_str());
        return 1;
      }
      std::printf("wrote chaos spans to %s\n", chaos_spans_out.c_str());
    }
    return campaign->Passed() ? 0 : 1;
  }

  const std::string engine = flags.GetString("engine");
  // The service engine generates its own open-loop arrival stream; every
  // other engine runs the standard closed query set.
  std::vector<apps::WalkQuery> queries;
  if (engine != "service") {
    queries = apps::MakeVertexQueries(g, length, flags.GetInt("seed"),
                                      static_cast<size_t>(raw_queries));
    std::printf("app %s, %zu queries of length %u, engine %s\n",
                app->name().c_str(), queries.size(), length, engine.c_str());
  }

  // Observability sinks, shared by every engine path. The trace only
  // fills for the cycle-accurate engines (the CPU path has no simulated
  // clock to stamp events with).
  obs::MetricsRegistry metrics;
  obs::TraceConfig trace_config;
  trace_config.max_events =
      static_cast<size_t>(flags.GetInt("trace-limit"));
  obs::TraceRecorder trace(trace_config);
  const std::string metrics_out = flags.GetString("metrics-out");
  const std::string trace_out = flags.GetString("trace-out");
  const std::string metrics_format = flags.GetString("metrics-format");
  if (metrics_format != "" && metrics_format != "json" &&
      metrics_format != "prometheus") {
    std::fprintf(stderr,
                 "unknown metrics format '%s' (expected json|prometheus)\n",
                 metrics_format.c_str());
    return 1;
  }

  // Per-query span tracing (engine=distributed|service): spans drive the
  // critical-path analyzer and SLO burn-rate monitor after the run.
  const std::string spans_out = flags.GetString("spans-out");
  obs::SpanConfig span_config;
  const std::string span_mode = flags.GetString("span-mode");
  if (span_mode == "breached") {
    span_config.mode = obs::SpanMode::kBreached;
  } else if (span_mode != "all") {
    std::fprintf(stderr, "unknown span mode '%s' (expected all|breached)\n",
                 span_mode.c_str());
    return 1;
  }
  obs::SpanRecorder spans(span_config);
  obs::BurnRateConfig burn_config;
  burn_config.budget = flags.GetDouble("burn-alert-budget");
  burn_config.threshold = flags.GetDouble("burn-alert-threshold");
  burn_config.fast_window_cycles =
      static_cast<uint64_t>(flags.GetInt("burn-alert-fast-window"));
  burn_config.slow_window_cycles =
      static_cast<uint64_t>(flags.GetInt("burn-alert-slow-window"));
  const Status burn_valid = obs::ValidateBurnRateConfig(burn_config);
  if (!burn_valid.ok()) {
    std::fprintf(stderr, "invalid burn-alert configuration: %s\n",
                 burn_valid.ToString().c_str());
    return 1;
  }
  reliability::FaultConfig faults;
  if (!FaultsFromFlags(flags, &faults)) {
    return 1;
  }
  const int64_t raw_spares = flags.GetInt("spare-boards");
  if (raw_spares < 0 || raw_spares > 256) {
    std::fprintf(stderr, "--spare-boards must be in [0, 256], got %lld\n",
                 static_cast<long long>(raw_spares));
    return 1;
  }

  baseline::WalkOutput corpus;
  // Membership transitions of the run (distributed/service engines);
  // exported in the spans document so dashboards can line epochs up
  // with per-query spans.
  std::vector<reliability::MembershipTransition> membership;
  WallTimer timer;
  int exit_code = 0;
  if (engine == "cpu") {
    baseline::BaselineConfig config;
    config.seed = flags.GetInt("seed");
    config.metrics = metrics_out.empty() ? nullptr : &metrics;
    baseline::BaselineEngine cpu(&g, app.get(), config);
    const auto stats = cpu.Run(queries, &corpus);
    std::printf("cpu engine: %llu steps in %.3fs (%.2f Msteps/s)\n",
                static_cast<unsigned long long>(stats.steps), stats.seconds,
                stats.StepsPerSecond() / 1e6);
  } else if (engine == "lightrw-sim") {
    core::AcceleratorConfig config;
    config.seed = flags.GetInt("seed");
    config.faults = faults;
    config.num_threads = threads;
    if (!metrics_out.empty()) {
      config.metrics = &metrics;
    }
    if (!trace_out.empty()) {
      config.trace = &trace;
    }
    const Status valid =
        core::ValidateConfig(config, app->needs_prev_neighbors());
    if (!valid.ok()) {
      std::fprintf(stderr, "invalid configuration: %s\n",
                   valid.ToString().c_str());
      return 1;
    }
    core::CycleEngine accel(&g, app.get(), config);
    const auto stats = accel.Run(queries, &corpus);
    std::printf(
        "lightrw cycle model: %llu steps, %llu cycles = %.4fs simulated "
        "(%.2f Msteps/s)\n",
        static_cast<unsigned long long>(stats.steps),
        static_cast<unsigned long long>(stats.cycles), stats.seconds,
        stats.StepsPerSecond() / 1e6);
    PrintReliabilitySummary(stats.reliability);
    if (flags.GetBool("report")) {
      core::RunReportInputs report;
      report.graph = &g;
      report.config = &config;
      report.stats = &stats;
      report.app_name = app->name();
      report.needs_prev_neighbors = app->needs_prev_neighbors();
      report.num_queries = queries.size();
      report.query_length = length;
      std::fputs(core::FormatRunReport(report).c_str(), stdout);
    }
    exit_code = ReliabilityExitCode(stats.reliability);
  } else if (engine == "distributed") {
    const int64_t boards = flags.GetInt("boards");
    if (boards < 1 || boards > 1024) {
      std::fprintf(stderr, "--boards must be in [1, 1024], got %lld\n",
                   static_cast<long long>(boards));
      return 1;
    }
    const std::string strategy_name = flags.GetString("partition");
    distributed::PartitionStrategy strategy;
    if (!ParseStrategy(strategy_name, &strategy)) {
      return 1;
    }
    const distributed::Partition partition = distributed::MakePartition(
        g, static_cast<distributed::BoardId>(boards), strategy);
    distributed::DistributedConfig config;
    config.board.num_instances = 1;
    config.board.seed = flags.GetInt("seed");
    config.board.faults = faults;
    config.replicate_graph = flags.GetBool("replicate");
    config.num_spare_boards = static_cast<uint32_t>(raw_spares);
    config.rebuild_bytes_per_cycle =
        flags.GetDouble("rebuild-bytes-per-cycle");
    config.num_threads = threads;
    if (!metrics_out.empty()) {
      config.board.metrics = &metrics;
    }
    if (!trace_out.empty()) {
      config.board.trace = &trace;
    }
    if (!spans_out.empty()) {
      config.board.spans = &spans;
    }
    distributed::DistributedEngine accel(&g, app.get(), &partition, config);
    const auto result = accel.Run(queries, &corpus);
    if (!result.ok()) {
      std::fprintf(stderr, "distributed run failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    const auto& stats = *result;
    std::printf(
        "distributed (%lld board(s), %s): %llu steps, %llu migrations "
        "(%.1f%%), %llu cycles = %.4fs simulated (%.2f Msteps/s)\n",
        static_cast<long long>(boards),
        config.replicate_graph ? "replicated" : strategy_name.c_str(),
        static_cast<unsigned long long>(stats.steps),
        static_cast<unsigned long long>(stats.migrations),
        stats.MigrationRatio() * 100.0,
        static_cast<unsigned long long>(stats.cycles), stats.seconds,
        stats.StepsPerSecond() / 1e6);
    PrintReliabilitySummary(stats.reliability);
    membership = stats.membership;
    exit_code = ReliabilityExitCode(stats.reliability);
  } else if (engine == "service") {
    const int64_t boards = flags.GetInt("boards");
    if (boards < 1 || boards > 1024) {
      std::fprintf(stderr, "--boards must be in [1, 1024], got %lld\n",
                   static_cast<long long>(boards));
      return 1;
    }
    distributed::PartitionStrategy strategy;
    if (!ParseStrategy(flags.GetString("partition"), &strategy)) {
      return 1;
    }
    const distributed::Partition partition = distributed::MakePartition(
        g, static_cast<distributed::BoardId>(boards), strategy);
    service::ServiceConfig config;
    config.cluster.board.num_instances = 1;
    config.cluster.board.seed = flags.GetInt("seed");
    config.cluster.board.faults = faults;
    config.cluster.replicate_graph = flags.GetBool("replicate");
    config.cluster.num_spare_boards = static_cast<uint32_t>(raw_spares);
    config.cluster.rebuild_bytes_per_cycle =
        flags.GetDouble("rebuild-bytes-per-cycle");
    config.cluster.num_threads = threads;
    config.admission_shards =
        static_cast<uint32_t>(flags.GetInt("service-shards"));
    if (!metrics_out.empty()) {
      config.cluster.board.metrics = &metrics;
    }
    if (!trace_out.empty()) {
      config.cluster.board.trace = &trace;
    }
    if (!spans_out.empty()) {
      config.cluster.board.spans = &spans;
    }
    config.arrivals.seed = static_cast<uint64_t>(flags.GetInt("seed"));
    config.arrivals.num_queries =
        raw_queries > 0 ? static_cast<uint64_t>(raw_queries) : 1024;
    config.arrivals.walk_length = length;
    config.arrivals.rate_per_kcycle = flags.GetDouble("service-rate");
    config.arrivals.deadline_cycles =
        static_cast<uint64_t>(flags.GetInt("service-deadline"));
    config.arrivals.best_effort_fraction =
        flags.GetDouble("service-best-effort");
    config.arrivals.burst_factor = flags.GetDouble("service-burst");
    config.arrivals.burst_on_cycles =
        static_cast<uint64_t>(flags.GetInt("service-burst-on"));
    config.arrivals.burst_off_cycles =
        static_cast<uint64_t>(flags.GetInt("service-burst-off"));
    config.queue_capacity =
        static_cast<uint32_t>(flags.GetInt("service-queue-cap"));
    config.retry_budget =
        static_cast<uint32_t>(flags.GetInt("service-retries"));
    config.degrade_enabled = flags.GetBool("service-degrade");
    const Status valid = service::ValidateServiceConfig(config);
    if (!valid.ok()) {
      std::fprintf(stderr, "invalid service configuration: %s\n",
                   valid.ToString().c_str());
      return 1;
    }
    std::printf("app %s, %llu offered queries of length %u at %.3f/kcycle, "
                "engine service (%lld board(s))\n",
                app->name().c_str(),
                static_cast<unsigned long long>(config.arrivals.num_queries),
                length, config.arrivals.rate_per_kcycle,
                static_cast<long long>(boards));
    service::WalkService service(&g, app.get(), &partition, config);
    const auto result = service.Run(&corpus);
    if (!result.ok()) {
      std::fprintf(stderr, "service run failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    const auto& stats = *result;
    std::printf(
        "service: %llu cycles = %.4fs simulated, %llu steps (%.2f "
        "Msteps/s)\n",
        static_cast<unsigned long long>(stats.cycles), stats.seconds,
        static_cast<unsigned long long>(stats.cluster.steps),
        stats.cluster.StepsPerSecond() / 1e6);
    std::fputs(core::FormatSloSection(stats.Slo()).c_str(), stdout);
    PrintReliabilitySummary(stats.cluster.reliability);
    membership = stats.cluster.membership;
    const double max_shed = flags.GetDouble("slo-max-shed");
    const double max_violation = flags.GetDouble("slo-max-violation");
    if (stats.ShedRate() > max_shed ||
        stats.ViolationRate() > max_violation) {
      std::fprintf(stderr,
                   "slo breached: shed rate %.4f (max %.4f), deadline "
                   "violation rate %.4f (max %.4f)\n",
                   stats.ShedRate(), max_shed, stats.ViolationRate(),
                   max_violation);
      exit_code = 2;
    }
  } else if (engine == "lightrw") {
    core::AcceleratorConfig config;
    config.seed = flags.GetInt("seed");
    core::FunctionalEngine accel(&g, app.get(), config);
    const auto stats = accel.Run(queries, &corpus);
    std::printf("lightrw functional: %llu steps in %.3fs wall\n",
                static_cast<unsigned long long>(stats.steps),
                timer.ElapsedSeconds());
  } else {
    std::fprintf(stderr,
                 "unknown engine '%s' (expected "
                 "cpu|lightrw|lightrw-sim|distributed|service)\n",
                 engine.c_str());
    return 1;
  }

  if (!spans_out.empty()) {
    // Post-run span analysis: per-query critical paths, the breach
    // report, and the multi-window SLO burn-rate monitor over the
    // closed-trace summaries (kept for every query in every span mode).
    const obs::AttributionReport attribution =
        obs::AnalyzeCriticalPaths(spans);
    const std::vector<obs::BurnAlert> alerts =
        obs::ComputeBurnAlerts(spans.Summaries(), burn_config);
    std::fputs(
        obs::FormatLatencyAttributionSection(attribution, alerts).c_str(),
        stdout);
    if (!trace_out.empty()) {
      // Fire the alert instants into the Chrome trace so burn-rate
      // transitions line up with the pipeline timeline in Perfetto.
      for (const obs::BurnAlert& alert : alerts) {
        trace.Instant(alert.firing ? "slo_burn_fire" : "slo_burn_clear",
                      "slo", /*pid=*/0, /*tid=*/0, alert.cycle);
      }
    }
    obs::Json doc = spans.ToJson();
    doc.Set("attribution", attribution.ToJson());
    doc.Set("burn_alerts", obs::BurnAlertsToJson(alerts));
    doc.Set("membership", reliability::MembershipToJson(membership));
    const Status written = obs::WriteTextFile(doc.Dump(2) + "\n", spans_out);
    if (!written.ok()) {
      std::fprintf(stderr, "failed to write spans: %s\n",
                   written.ToString().c_str());
      return 1;
    }
    std::printf("wrote %llu closed trace(s) to %s\n",
                static_cast<unsigned long long>(spans.traces_closed()),
                spans_out.c_str());
  }
  if (!metrics_out.empty()) {
    const bool prometheus =
        metrics_format.empty()
            ? metrics_out.size() > 5 &&
                  metrics_out.rfind(".prom") == metrics_out.size() - 5
            : metrics_format == "prometheus";
    const Status written = obs::WriteTextFile(
        prometheus ? metrics.ToPrometheusText() : metrics.ToJsonString(),
        metrics_out);
    if (!written.ok()) {
      std::fprintf(stderr, "failed to write metrics: %s\n",
                   written.ToString().c_str());
      return 1;
    }
    std::printf("wrote metrics snapshot to %s\n", metrics_out.c_str());
  }
  if (!trace_out.empty()) {
    const Status written = trace.WriteChromeTrace(trace_out);
    if (!written.ok()) {
      std::fprintf(stderr, "failed to write trace: %s\n",
                   written.ToString().c_str());
      return 1;
    }
    std::printf("wrote %zu trace events to %s (%zu dropped)\n",
                trace.num_events(), trace_out.c_str(),
                trace.dropped_events());
  }

  if (!flags.GetString("out").empty()) {
    const Status written =
        analytics::WriteCorpusText(corpus, flags.GetString("out"));
    if (!written.ok()) {
      std::fprintf(stderr, "failed to write corpus: %s\n",
                   written.ToString().c_str());
      return 1;
    }
    std::printf("wrote %zu walks to %s\n", corpus.num_paths(),
                flags.GetString("out").c_str());
  }
  return exit_code;
}
