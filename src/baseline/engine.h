// ThunderRW-style CPU graph dynamic random walk engine.
//
// Implements Algorithm 2.1 of the paper: for every step of every query,
// (1) weight_calculation streams the current vertex's neighbors through the
// application weight function into a weight buffer, (2) weighted_sampling
// runs an initialization stage that builds a table (inverse transform or
// alias) and a generation stage that draws the next vertex. The sampler is
// pluggable so the engine also serves as the "ThunderRW w/WRS" and
// "ThunderRW w/PWRS" comparison points of §3.2 and Fig. 14.
//
// Queries are processed step-centrically: each worker interleaves a ring of
// active queries, issuing software prefetches for the next query's
// adjacency while processing the current one, which is ThunderRW's core
// memory-latency-hiding idea.

#ifndef LIGHTRW_BASELINE_ENGINE_H_
#define LIGHTRW_BASELINE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "apps/walk_app.h"
#include "common/histogram.h"
#include "graph/csr.h"
#include "sampling/sampler.h"

namespace lightrw::obs {
class MetricsRegistry;
}  // namespace lightrw::obs

namespace lightrw::baseline {

using apps::WalkApp;
using apps::WalkQuery;
using graph::CsrGraph;
using graph::VertexId;

struct BaselineConfig {
  sampling::SamplerKind sampler = sampling::SamplerKind::kInverseTransform;
  // Worker threads; 0 means std::thread::hardware_concurrency().
  size_t num_threads = 1;
  // Queries interleaved per worker (ThunderRW's step-centric ring).
  size_t ring_size = 16;
  // Lanes for the kParallelWrs sampler.
  size_t pwrs_lanes = 8;
  uint64_t seed = 42;
  // Enables the LLC model and intermediate-traffic counters (Table 1).
  // Adds overhead; leave off for timing runs.
  bool collect_profile = false;
  // Modeled LLC capacity when profiling (Xeon Gold 6246R: 35.75 MB; we use
  // the nearest power of two).
  uint64_t llc_bytes = 32ull << 20;
  // Records per-query latency samples (Fig. 15). Adds a timer per query.
  bool collect_latency = false;
  // Per-query walk initialization overhead is excluded; this flag adds a
  // fixed modeled setup cost per run (thread/memory allocation), visible
  // at small query counts (Fig. 16 discussion).

  // Optional metrics registry (src/obs/); not owned, may be null. Each
  // worker publishes step counts and wall-time under worker= labels —
  // the registry is thread-safe, so concurrent workers may share it.
  obs::MetricsRegistry* metrics = nullptr;
};

// Container for generated walks: paths are concatenated, query i's path is
// vertices [offsets[i], offsets[i+1]).
struct WalkOutput {
  std::vector<uint32_t> offsets = {0};
  std::vector<VertexId> vertices;

  std::span<const VertexId> Path(size_t i) const {
    return {vertices.data() + offsets[i],
            vertices.data() + offsets[i + 1]};
  }
  size_t num_paths() const { return offsets.size() - 1; }
};

// Profiling proxies standing in for the paper's vTune metrics (Table 1).
struct ProfileCounters {
  uint64_t neighbor_bytes = 0;           // adjacency data streamed
  uint64_t intermediate_bytes_written = 0;  // weight buffer + sampler table
  uint64_t intermediate_bytes_read = 0;
  uint64_t row_lookups = 0;
  uint64_t llc_hits = 0;
  uint64_t llc_misses = 0;

  double LlcMissRatio() const {
    const uint64_t total = llc_hits + llc_misses;
    return total == 0 ? 0.0 : static_cast<double>(llc_misses) / total;
  }
  // Modeled fraction of cycles stalled on memory; see engine.cc for the
  // cycle cost model.
  double memory_bound = 0.0;
  double retiring_ratio = 0.0;
};

struct BaselineRunStats {
  double seconds = 0.0;
  uint64_t queries = 0;
  uint64_t steps = 0;            // completed walk steps
  uint64_t edges_examined = 0;   // neighbor weights computed
  double StepsPerSecond() const {
    return seconds > 0.0 ? static_cast<double>(steps) / seconds : 0.0;
  }
  ProfileCounters profile;
  SampleStats query_latency_seconds;  // populated if collect_latency
};

// CPU GDRW engine. Thread-compatible: one engine may run multiple times;
// each Run call is internally parallelized per the config.
class BaselineEngine {
 public:
  // `graph` and `app` must outlive the engine.
  BaselineEngine(const CsrGraph* graph, const WalkApp* app,
                 const BaselineConfig& config);

  const BaselineConfig& config() const { return config_; }

  // Executes all queries. If `output` is non-null the generated paths are
  // appended to it (single-threaded runs preserve query order).
  BaselineRunStats Run(std::span<const WalkQuery> queries,
                       WalkOutput* output = nullptr);

 private:
  const CsrGraph* graph_;
  const WalkApp* app_;
  BaselineConfig config_;
};

}  // namespace lightrw::baseline

#endif  // LIGHTRW_BASELINE_ENGINE_H_
