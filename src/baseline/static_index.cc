#include "baseline/static_index.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "sampling/sampler.h"

namespace lightrw::baseline {

StaticWalkIndex::StaticWalkIndex(const graph::CsrGraph& graph) {
  const graph::VertexId n = graph.num_vertices();
  offsets_.reserve(n + 1);
  offsets_.push_back(0);
  prob_.reserve(graph.num_edges());
  alias_.reserve(graph.num_edges());

  for (graph::VertexId v = 0; v < n; ++v) {
    const auto weights = graph.NeighborWeights(v);
    // Vose construction over this adjacency, flattened into the shared
    // arrays (mirrors sampling::AliasTable without exposing its
    // internals).
    const size_t degree = weights.size();
    uint64_t total = 0;
    for (const auto w : weights) {
      total += w;
    }
    if (total == 0) {
      for (size_t i = 0; i < degree; ++i) {
        prob_.push_back(0);
        alias_.push_back(static_cast<uint32_t>(i));
      }
      offsets_.push_back(prob_.size());
      continue;
    }
    std::vector<double> scaled(degree);
    for (size_t i = 0; i < degree; ++i) {
      scaled[i] = static_cast<double>(weights[i]) * degree /
                  static_cast<double>(total);
    }
    std::vector<uint32_t> small, large;
    for (size_t i = 0; i < degree; ++i) {
      (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
    }
    const size_t base = prob_.size();
    prob_.resize(base + degree, 0);
    alias_.resize(base + degree, 0);
    while (!small.empty() && !large.empty()) {
      const uint32_t s = small.back();
      small.pop_back();
      const uint32_t l = large.back();
      large.pop_back();
      prob_[base + s] = static_cast<uint32_t>(
          std::min(4294967295.0, scaled[s] * 4294967296.0));
      alias_[base + s] = l;
      scaled[l] = (scaled[l] + scaled[s]) - 1.0;
      (scaled[l] < 1.0 ? small : large).push_back(l);
    }
    for (const uint32_t i : large) {
      prob_[base + i] = UINT32_MAX;
      alias_[base + i] = i;
    }
    for (const uint32_t i : small) {
      prob_[base + i] = UINT32_MAX;
      alias_[base + i] = i;
    }
    offsets_.push_back(prob_.size());
  }
}

size_t StaticWalkIndex::Sample(graph::VertexId v, uint64_t random_bucket,
                               uint32_t random_coin) const {
  LIGHTRW_DCHECK(v < num_vertices());
  const uint64_t begin = offsets_[v];
  const uint64_t size = offsets_[v + 1] - begin;
  if (size == 0) {
    return sampling::kNoSample;
  }
  const uint64_t bucket = begin + random_bucket % size;
  if (prob_[bucket] == 0 && alias_[bucket] == bucket - begin) {
    return sampling::kNoSample;  // all-zero weights for this vertex
  }
  // Strict comparison: zero-probability slots (zero-weight edges paired
  // with a heavy alias) always defer to their alias.
  return random_coin < prob_[bucket] ? bucket - begin : alias_[bucket];
}

uint64_t StaticWalkIndex::MemoryBytes() const {
  return offsets_.size() * sizeof(uint64_t) +
         prob_.size() * sizeof(uint32_t) + alias_.size() * sizeof(uint32_t);
}

}  // namespace lightrw::baseline
