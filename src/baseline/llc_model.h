// Last-level-cache model used for the Table 1 profiling proxy.
//
// The paper profiles ThunderRW with vTune and reports LLC miss ratio,
// memory-bound cycles, and retiring ratio. vTune is unavailable here, so
// the baseline engine optionally feeds its memory accesses through this
// direct-mapped cache model and derives the same three metrics from modeled
// hit/miss counts and a simple cycle cost model.

#ifndef LIGHTRW_BASELINE_LLC_MODEL_H_
#define LIGHTRW_BASELINE_LLC_MODEL_H_

#include <cstdint>
#include <vector>

#include "common/bits.h"
#include "common/check.h"

namespace lightrw::baseline {

// Direct-mapped cache over 64-byte lines. Direct mapping slightly
// overestimates conflict misses versus the Xeon's 11-way LLC, but GDRW
// working sets exceed the capacity by orders of magnitude, so capacity
// misses dominate and the approximation is tight.
class LlcModel {
 public:
  // capacity_bytes must be a power of two multiple of line_bytes.
  LlcModel(uint64_t capacity_bytes, uint32_t line_bytes = 64);

  // Accesses one address; returns true on hit.
  bool Probe(uint64_t address);

  // Accesses a [address, address+bytes) range, probing each line once.
  void ProbeRange(uint64_t address, uint64_t bytes);

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t accesses() const { return hits_ + misses_; }
  double MissRatio() const {
    return accesses() == 0 ? 0.0
                           : static_cast<double>(misses_) / accesses();
  }
  void ResetStats() {
    hits_ = 0;
    misses_ = 0;
  }

 private:
  uint32_t line_bytes_;
  uint32_t line_shift_;
  uint64_t num_lines_;
  std::vector<uint64_t> tags_;
  std::vector<bool> valid_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace lightrw::baseline

#endif  // LIGHTRW_BASELINE_LLC_MODEL_H_
