#include "baseline/engine.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "baseline/llc_model.h"
#include "common/check.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "rng/rng.h"
#include "sampling/alias.h"
#include "sampling/inverse_transform.h"
#include "sampling/parallel_wrs.h"
#include "sampling/reservoir.h"

namespace lightrw::baseline {

namespace {

using apps::WalkState;
using graph::Weight;
using sampling::kNoSample;

// Cycle cost model for the Table 1 proxies. The absolute constants are
// calibrated to a ~3 GHz out-of-order core; only the resulting ratios are
// reported.
constexpr double kLlcMissCycles = 240.0;  // DRAM round trip
constexpr double kLlcHitCycles = 40.0;    // LLC hit latency
constexpr double kWeightCycles = 4.0;     // weight function, simple apps
constexpr double kPrevLookupCycles = 12.0;  // Node2Vec edge-existence probe
constexpr double kPerStepOverheadCycles = 30.0;  // loop/bookkeeping/sampling
constexpr double kPerEdgeOverheadCycles = 2.0;

// One worker processes a contiguous chunk of queries with a step-centric
// interleaving ring.
class Worker {
 public:
  Worker(const CsrGraph* graph, const WalkApp* app,
         const BaselineConfig& config, size_t worker_index,
         uint64_t worker_seed)
      : graph_(graph),
        app_(app),
        config_(config),
        worker_index_(worker_index),
        gen_(worker_seed),
        wrs_rng_(std::max<size_t>(config.pwrs_lanes, 1),
                 worker_seed ^ 0xd1ceULL),
        reservoir_(&wrs_rng_, 0),
        pwrs_(std::max<size_t>(config.pwrs_lanes, 1), &wrs_rng_) {
    if (config_.collect_profile) {
      llc_ = std::make_unique<LlcModel>(config_.llc_bytes);
    }
  }

  void Run(std::span<const WalkQuery> queries, WalkOutput* output,
           BaselineRunStats* stats);

  // Converts raw counters into the Table 1 proxies using the cycle cost
  // model above.
  void FinalizeProfile(BaselineRunStats* stats) const;

 private:
  // State of one in-flight query in the interleaving ring.
  struct Slot {
    WalkState state;
    uint32_t remaining = 0;      // steps still to take
    size_t query_index = 0;
    std::vector<VertexId> path;  // includes the start vertex
    WallTimer timer;
    bool active = false;
  };

  // Takes one step of the walk in `slot`. Returns false when the walk
  // terminated (finished, dead end, or all weights zero).
  bool Step(Slot* slot, BaselineRunStats* stats);

  // Draws the next neighbor index from the configured sampler given the
  // populated weights_ buffer. Returns kNoSample if nothing sampleable.
  size_t SampleIndex();

  void PrefetchRow(VertexId v) const {
    __builtin_prefetch(&graph_->row_index()[v]);
  }

  const CsrGraph* graph_;
  const WalkApp* app_;
  const BaselineConfig& config_;
  const size_t worker_index_;
  rng::Xoshiro256StarStar gen_;
  rng::ThunderingRng wrs_rng_;
  sampling::InverseTransformTable its_;
  sampling::AliasTable alias_;
  sampling::ReservoirSampler reservoir_;
  sampling::ParallelWrsSampler pwrs_;
  std::vector<Weight> weights_;
  std::unique_ptr<LlcModel> llc_;
};

size_t Worker::SampleIndex() {
  switch (config_.sampler) {
    case sampling::SamplerKind::kInverseTransform:
      its_.Build(weights_);
      return its_.Sample(gen_.Next());
    case sampling::SamplerKind::kAlias:
      alias_.Build(weights_);
      return alias_.Sample(gen_.Next(), gen_.Next32());
    case sampling::SamplerKind::kReservoir: {
      reservoir_.Reset();
      for (size_t i = 0; i < weights_.size(); ++i) {
        reservoir_.Offer(i, weights_[i]);
      }
      return reservoir_.selected();
    }
    case sampling::SamplerKind::kParallelWrs:
      return pwrs_.SampleAll(weights_);
  }
  return kNoSample;
}

bool Worker::Step(Slot* slot, BaselineRunStats* stats) {
  WalkState& state = slot->state;
  const uint32_t degree = graph_->Degree(state.curr);
  if (degree == 0) {
    return false;
  }
  const auto neighbors = graph_->Neighbors(state.curr);
  const auto static_weights = graph_->NeighborWeights(state.curr);
  const auto relations = graph_->NeighborRelations(state.curr);

  // weight_calculation: stream neighbors through the app weight function.
  weights_.resize(degree);
  for (uint32_t i = 0; i < degree; ++i) {
    weights_[i] = app_->DynamicWeight(*graph_, state, neighbors[i],
                                      static_weights[i], relations[i]);
  }
  stats->edges_examined += degree;

  if (config_.collect_profile) {
    ProfileCounters& prof = stats->profile;
    ++prof.row_lookups;
    const uint64_t row_addr =
        state.curr * graph::kBytesPerRowRecord;
    const uint64_t adj_addr =
        (64ull << 30) +  // disjoint address region for col_index
        graph_->OutOffset(state.curr) * graph::kBytesPerEdgeRecord;
    llc_->Probe(row_addr);
    llc_->ProbeRange(adj_addr, degree * graph::kBytesPerEdgeRecord);
    prof.neighbor_bytes += degree * graph::kBytesPerEdgeRecord;
    // Intermediate traffic of Algorithm 2.1: the weight buffer is written
    // then read by initialization, and the sampler table is written then
    // read by generation — the 2x|N(v)| accesses of Inefficiency 1.
    prof.intermediate_bytes_written +=
        degree * sizeof(Weight) + degree * sizeof(uint64_t);
    prof.intermediate_bytes_read +=
        degree * sizeof(Weight) + degree * sizeof(uint64_t);
  }

  // weighted_sampling: initialization + generation (or streaming WRS).
  const size_t picked = SampleIndex();
  if (picked == kNoSample) {
    return false;
  }
  state.prev = state.curr;
  state.curr = neighbors[picked];
  slot->path.push_back(state.curr);
  ++state.step;
  ++stats->steps;
  const double stop_probability = app_->stop_probability();
  if (stop_probability > 0.0 && gen_.NextUnit() < stop_probability) {
    return false;  // geometric termination (PPR-style apps)
  }
  return slot->state.step < slot->remaining;
}

void Worker::Run(std::span<const WalkQuery> queries, WalkOutput* output,
                 BaselineRunStats* stats) {
  const uint64_t queries_before = stats->queries;
  const uint64_t steps_before = stats->steps;
  const uint64_t edges_before = stats->edges_examined;
  WallTimer worker_timer;
  const size_t ring_size = std::max<size_t>(1, config_.ring_size);
  std::vector<Slot> ring(ring_size);
  size_t next_query = 0;
  size_t active = 0;

  auto load = [&](Slot* slot) {
    while (next_query < queries.size()) {
      const WalkQuery& q = queries[next_query];
      slot->state = WalkState{};
      slot->state.curr = q.start;
      slot->remaining = q.length;
      slot->query_index = next_query;
      slot->path.clear();
      slot->path.push_back(q.start);
      slot->active = true;
      if (config_.collect_latency) {
        slot->timer.Restart();
      }
      ++next_query;
      ++active;
      return;
    }
    slot->active = false;
  };

  // The interleaving ring retires queries out of order; buffer per-query
  // paths and emit them in input order after the loop.
  std::vector<std::vector<VertexId>> finished_paths;
  if (output != nullptr) {
    finished_paths.resize(queries.size());
  }

  auto retire = [&](Slot* slot) {
    if (config_.collect_latency) {
      stats->query_latency_seconds.Add(slot->timer.ElapsedSeconds());
    }
    if (output != nullptr) {
      finished_paths[slot->query_index] = std::move(slot->path);
    }
    ++stats->queries;
    slot->active = false;
    --active;
  };

  for (auto& slot : ring) {
    load(&slot);
    if (!slot.active) {
      break;
    }
  }

  while (active > 0) {
    for (size_t i = 0; i < ring.size(); ++i) {
      Slot& slot = ring[i];
      if (!slot.active) {
        continue;
      }
      if (slot.state.step >= slot.remaining) {  // zero-length queries
        retire(&slot);
        load(&slot);
        continue;
      }
      // ThunderRW-style latency hiding: prefetch the row entry the next
      // ring slot will need before working on this one.
      const Slot& next_slot = ring[(i + 1) % ring.size()];
      if (next_slot.active) {
        PrefetchRow(next_slot.state.curr);
      }
      if (!Step(&slot, stats)) {
        retire(&slot);
        load(&slot);
      }
    }
  }

  if (output != nullptr) {
    for (auto& path : finished_paths) {
      output->vertices.insert(output->vertices.end(), path.begin(),
                              path.end());
      output->offsets.push_back(
          static_cast<uint32_t>(output->vertices.size()));
    }
  }

  if (config_.collect_profile) {
    stats->profile.llc_hits = llc_->hits();
    stats->profile.llc_misses = llc_->misses();
    FinalizeProfile(stats);
  }

  if (config_.metrics != nullptr) {
    const double seconds = worker_timer.ElapsedSeconds();
    const uint64_t steps = stats->steps - steps_before;
    const obs::Labels worker = {{"worker", std::to_string(worker_index_)}};
    config_.metrics->GetCounter("baseline.worker.queries", worker)
        ->Increment(stats->queries - queries_before);
    config_.metrics->GetCounter("baseline.worker.steps", worker)
        ->Increment(steps);
    config_.metrics->GetCounter("baseline.worker.edges_examined", worker)
        ->Increment(stats->edges_examined - edges_before);
    config_.metrics->GetGauge("baseline.worker.seconds", worker)
        ->Set(seconds);
    config_.metrics->GetGauge("baseline.worker.steps_per_second", worker)
        ->Set(seconds > 0.0 ? static_cast<double>(steps) / seconds : 0.0);
    if (config_.collect_latency) {
      obs::Histogram* latency = config_.metrics->GetHistogram(
          "baseline.worker.query_latency_seconds", worker);
      // stats->query_latency_seconds only holds this worker's samples
      // here (per-worker stats structs are merged later by the engine).
      for (const double s : stats->query_latency_seconds.sorted_samples()) {
        latency->Observe(s);
      }
    }
  }
}

void ComputeProfileRatios(ProfileCounters* prof, double edges, double steps,
                          bool needs_prev) {
  const double weight_cost =
      needs_prev ? kWeightCycles + kPrevLookupCycles : kWeightCycles;
  const double compute = edges * weight_cost;
  const double overhead =
      steps * kPerStepOverheadCycles + edges * kPerEdgeOverheadCycles;
  const double mem_hit = static_cast<double>(prof->llc_hits) * kLlcHitCycles;
  const double mem_miss =
      static_cast<double>(prof->llc_misses) * kLlcMissCycles;
  const double total = compute + overhead + mem_hit + mem_miss;
  if (total > 0.0) {
    prof->memory_bound = mem_miss / total;
    prof->retiring_ratio = compute / total;
  }
}

void Worker::FinalizeProfile(BaselineRunStats* stats) const {
  ComputeProfileRatios(&stats->profile,
                       static_cast<double>(stats->edges_examined),
                       static_cast<double>(stats->steps),
                       app_->needs_prev_neighbors());
}

}  // namespace

BaselineEngine::BaselineEngine(const CsrGraph* graph, const WalkApp* app,
                               const BaselineConfig& config)
    : graph_(graph), app_(app), config_(config) {
  LIGHTRW_CHECK(graph != nullptr);
  LIGHTRW_CHECK(app != nullptr);
}

BaselineRunStats BaselineEngine::Run(std::span<const WalkQuery> queries,
                                     WalkOutput* output) {
  size_t num_threads = config_.num_threads;
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  num_threads =
      std::min<size_t>(num_threads, std::max<size_t>(queries.size(), 1));

  BaselineRunStats total;
  WallTimer timer;

  if (num_threads <= 1) {
    Worker worker(graph_, app_, config_, /*worker_index=*/0, config_.seed);
    worker.Run(queries, output, &total);
  } else {
    std::vector<BaselineRunStats> stats(num_threads);
    std::vector<WalkOutput> outputs(num_threads);
    std::vector<std::thread> threads;
    const size_t chunk = (queries.size() + num_threads - 1) / num_threads;
    for (size_t t = 0; t < num_threads; ++t) {
      const size_t begin = t * chunk;
      const size_t end = std::min(queries.size(), begin + chunk);
      if (begin >= end) {
        break;
      }
      threads.emplace_back([&, t, begin, end] {
        Worker worker(graph_, app_, config_, t,
                      config_.seed + 0x9e3779b97f4a7c15ULL * (t + 1));
        worker.Run(queries.subspan(begin, end - begin),
                   output != nullptr ? &outputs[t] : nullptr, &stats[t]);
      });
    }
    for (auto& th : threads) {
      th.join();
    }
    for (size_t t = 0; t < num_threads; ++t) {
      total.query_latency_seconds.Merge(stats[t].query_latency_seconds);
      total.queries += stats[t].queries;
      total.steps += stats[t].steps;
      total.edges_examined += stats[t].edges_examined;
      total.profile.neighbor_bytes += stats[t].profile.neighbor_bytes;
      total.profile.intermediate_bytes_written +=
          stats[t].profile.intermediate_bytes_written;
      total.profile.intermediate_bytes_read +=
          stats[t].profile.intermediate_bytes_read;
      total.profile.row_lookups += stats[t].profile.row_lookups;
      total.profile.llc_hits += stats[t].profile.llc_hits;
      total.profile.llc_misses += stats[t].profile.llc_misses;
      if (output != nullptr) {
        for (size_t p = 0; p < outputs[t].num_paths(); ++p) {
          const auto path = outputs[t].Path(p);
          output->vertices.insert(output->vertices.end(), path.begin(),
                                  path.end());
          output->offsets.push_back(
              static_cast<uint32_t>(output->vertices.size()));
        }
      }
    }
    if (config_.collect_profile) {
      ComputeProfileRatios(&total.profile,
                           static_cast<double>(total.edges_examined),
                           static_cast<double>(total.steps),
                           app_->needs_prev_neighbors());
    }
  }
  total.seconds = timer.ElapsedSeconds();
  return total;
}

}  // namespace lightrw::baseline
