// Rejection sampling for Node2Vec on the CPU (KnightKing's technique).
//
// Instead of computing all |N(curr)| dynamic weights per step (Algorithm
// 2.1), draw a candidate from the *static* weight distribution via the
// precomputed per-vertex alias index, then accept it with probability
// s / s_max, where s is the Node2Vec scale of that candidate (1/p, 1, or
// 1/q) and s_max = max(1/p, 1, 1/q). One edge-existence probe per trial
// replaces the full weight pass — O(1) expected work per step. This is
// the strongest CPU-side algorithmic alternative to the paper's approach
// and serves as an additional baseline.

#ifndef LIGHTRW_BASELINE_REJECTION_H_
#define LIGHTRW_BASELINE_REJECTION_H_

#include <cstdint>

#include "baseline/static_index.h"
#include "graph/csr.h"
#include "rng/rng.h"

namespace lightrw::baseline {

// Second-order (Node2Vec) rejection walker. Thread-compatible.
class Node2VecRejectionWalker {
 public:
  // `graph` must outlive the walker; the static index is built here
  // (O(|E|) preprocessing, shared by all steps).
  Node2VecRejectionWalker(const graph::CsrGraph* graph, double p, double q,
                          uint64_t seed);

  // Samples the next vertex given the current and previous vertices
  // (prev == kInvalidVertex on the first step). Returns kInvalidVertex at
  // dead ends.
  graph::VertexId SampleNext(graph::VertexId curr, graph::VertexId prev);

  uint64_t trials() const { return trials_; }
  uint64_t accepts() const { return accepts_; }
  // Expected trials per accepted sample (1.0 = no rejections).
  double TrialsPerSample() const {
    return accepts_ == 0 ? 0.0
                         : static_cast<double>(trials_) /
                               static_cast<double>(accepts_);
  }

 private:
  const graph::CsrGraph* graph_;
  StaticWalkIndex index_;
  rng::Xoshiro256StarStar gen_;
  double inv_p_;
  double inv_q_;
  double max_scale_;
  uint64_t trials_ = 0;
  uint64_t accepts_ = 0;
};

}  // namespace lightrw::baseline

#endif  // LIGHTRW_BASELINE_REJECTION_H_
