#include "baseline/rejection.h"

#include <algorithm>

#include "common/check.h"
#include "sampling/sampler.h"

namespace lightrw::baseline {

Node2VecRejectionWalker::Node2VecRejectionWalker(
    const graph::CsrGraph* graph, double p, double q, uint64_t seed)
    : graph_(graph), index_(*graph), gen_(seed) {
  LIGHTRW_CHECK(graph != nullptr);
  LIGHTRW_CHECK(p > 0.0);
  LIGHTRW_CHECK(q > 0.0);
  inv_p_ = 1.0 / p;
  inv_q_ = 1.0 / q;
  max_scale_ = std::max({inv_p_, 1.0, inv_q_});
}

graph::VertexId Node2VecRejectionWalker::SampleNext(graph::VertexId curr,
                                                    graph::VertexId prev) {
  if (graph_->Degree(curr) == 0) {
    return graph::kInvalidVertex;
  }
  const auto neighbors = graph_->Neighbors(curr);

  // First step (no second-order context): the static draw is exact.
  if (prev == graph::kInvalidVertex) {
    const size_t slot = index_.Sample(curr, gen_.Next(), gen_.Next32());
    ++trials_;
    ++accepts_;
    return slot == sampling::kNoSample ? graph::kInvalidVertex
                                       : neighbors[slot];
  }

  // Rejection loop: candidate ~ static weights; accept w.p. scale/s_max.
  // The acceptance probability is bounded below by min_scale/max_scale,
  // so the loop terminates quickly in expectation; the iteration cap only
  // guards against adversarial q >> p configurations.
  for (int attempt = 0; attempt < 4096; ++attempt) {
    ++trials_;
    const size_t slot = index_.Sample(curr, gen_.Next(), gen_.Next32());
    if (slot == sampling::kNoSample) {
      return graph::kInvalidVertex;  // all static weights zero
    }
    const graph::VertexId candidate = neighbors[slot];
    double scale;
    if (candidate == prev) {
      scale = inv_p_;  // Eq. (2a)
    } else if (graph_->HasEdge(prev, candidate)) {
      scale = 1.0;  // Eq. (2b)
    } else {
      scale = inv_q_;  // Eq. (2c)
    }
    if (gen_.NextUnit() * max_scale_ < scale) {
      ++accepts_;
      return candidate;
    }
  }
  // Statistically unreachable; treat as a dead end rather than looping.
  return graph::kInvalidVertex;
}

}  // namespace lightrw::baseline
