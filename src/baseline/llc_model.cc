#include "baseline/llc_model.h"

namespace lightrw::baseline {

LlcModel::LlcModel(uint64_t capacity_bytes, uint32_t line_bytes)
    : line_bytes_(line_bytes) {
  LIGHTRW_CHECK(IsPowerOfTwo(line_bytes));
  LIGHTRW_CHECK(capacity_bytes >= line_bytes);
  LIGHTRW_CHECK(capacity_bytes % line_bytes == 0);
  line_shift_ = FloorLog2(line_bytes);
  num_lines_ = capacity_bytes / line_bytes;
  LIGHTRW_CHECK(IsPowerOfTwo(num_lines_));
  tags_.assign(num_lines_, 0);
  valid_.assign(num_lines_, false);
}

bool LlcModel::Probe(uint64_t address) {
  const uint64_t line = address >> line_shift_;
  const uint64_t set = line & (num_lines_ - 1);
  const uint64_t tag = line >> FloorLog2(num_lines_);
  if (valid_[set] && tags_[set] == tag) {
    ++hits_;
    return true;
  }
  valid_[set] = true;
  tags_[set] = tag;
  ++misses_;
  return false;
}

void LlcModel::ProbeRange(uint64_t address, uint64_t bytes) {
  const uint64_t first = address >> line_shift_;
  const uint64_t last = (address + (bytes == 0 ? 0 : bytes - 1)) >> line_shift_;
  for (uint64_t line = first; line <= last; ++line) {
    Probe(line << line_shift_);
  }
}

}  // namespace lightrw::baseline
