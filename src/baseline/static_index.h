// Precomputed sampling index for *static* random walks.
//
// §2.1 of the paper: when edge weights never change, per-edge transition
// probabilities can be computed offline, so each step becomes an O(1)
// alias-table draw with no weight pass at all. GDRWs cannot use this —
// their weights depend on the walker's state — which is precisely why they
// are expensive and why LightRW exists. This index implements the static
// fast path so the repository can quantify the static/dynamic gap.

#ifndef LIGHTRW_BASELINE_STATIC_INDEX_H_
#define LIGHTRW_BASELINE_STATIC_INDEX_H_

#include <cstdint>
#include <vector>

#include "graph/csr.h"
#include "sampling/sampler.h"

namespace lightrw::baseline {

// Per-vertex alias tables over the static edge weights. Immutable after
// construction; thread-safe for concurrent sampling.
class StaticWalkIndex {
 public:
  // O(|E|) construction.
  explicit StaticWalkIndex(const graph::CsrGraph& graph);

  // Draws a neighbor slot of `v` (an index into graph.Neighbors(v)) from
  // two uniform random values. Returns sampling::kNoSample if v has no
  // sampleable neighbor.
  size_t Sample(graph::VertexId v, uint64_t random_bucket,
                uint32_t random_coin) const;

  graph::VertexId num_vertices() const {
    return static_cast<graph::VertexId>(offsets_.size() - 1);
  }

  // Memory footprint of the index (the intermediate-state cost the paper's
  // Inefficiency 2 discusses: proportional to |E|).
  uint64_t MemoryBytes() const;

 private:
  // Flattened per-vertex alias tables: vertex v owns slots
  // [offsets_[v], offsets_[v+1]).
  std::vector<uint64_t> offsets_;
  std::vector<uint32_t> prob_;   // 32-bit fixed-point stay probability
  std::vector<uint32_t> alias_;  // alias slot within the vertex's table
};

}  // namespace lightrw::baseline

#endif  // LIGHTRW_BASELINE_STATIC_INDEX_H_
