// Bounded FIFO channel, the inter-stage communication primitive of the
// modeled accelerator (hardware stages are connected by HLS streams).
// Used by the WRS sampler micro-simulation and module tests.

#ifndef LIGHTRW_HWSIM_FIFO_H_
#define LIGHTRW_HWSIM_FIFO_H_

#include <cstddef>
#include <deque>

#include "common/check.h"

namespace lightrw::hwsim {

// Single-producer single-consumer bounded queue with occupancy tracking.
// Push on a full FIFO and pop on an empty FIFO are programming errors
// (hardware would stall instead; callers model the stall by checking
// CanPush/CanPop first).
template <typename T>
class Fifo {
 public:
  explicit Fifo(size_t capacity) : capacity_(capacity) {
    LIGHTRW_CHECK(capacity >= 1);
  }

  bool CanPush() const { return items_.size() < capacity_; }
  bool CanPop() const { return !items_.empty(); }
  bool empty() const { return items_.empty(); }
  bool full() const { return items_.size() == capacity_; }
  size_t size() const { return items_.size(); }
  size_t capacity() const { return capacity_; }

  void Push(T item) {
    LIGHTRW_CHECK(CanPush());
    items_.push_back(std::move(item));
    ++total_pushed_;
    if (items_.size() > max_occupancy_) {
      max_occupancy_ = items_.size();
    }
  }

  T Pop() {
    LIGHTRW_CHECK(CanPop());
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  const T& Front() const {
    LIGHTRW_CHECK(CanPop());
    return items_.front();
  }

  // Lifetime statistics, useful for sizing buffers in tests.
  size_t total_pushed() const { return total_pushed_; }
  size_t max_occupancy() const { return max_occupancy_; }

 private:
  size_t capacity_;
  std::deque<T> items_;
  size_t total_pushed_ = 0;
  size_t max_occupancy_ = 0;
};

}  // namespace lightrw::hwsim

#endif  // LIGHTRW_HWSIM_FIFO_H_
