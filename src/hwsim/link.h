// Point-to-point network link timing model, used by the distributed
// LightRW simulation (the paper's future-work InfiniBand/100G-Ethernet
// deployment). Same accounting style as DramChannel: a message occupies
// the link's serializer for its wire time and arrives one propagation
// latency later.

#ifndef LIGHTRW_HWSIM_LINK_H_
#define LIGHTRW_HWSIM_LINK_H_

#include <cstdint>

#include "common/bits.h"
#include "common/check.h"
#include "hwsim/dram.h"

namespace lightrw::hwsim {

struct LinkConfig {
  // Wire bandwidth in bytes per kernel cycle. 100 Gb/s at a 300 MHz
  // kernel clock is ~41.7 B/cycle.
  double bytes_per_cycle = 41.7;
  // One-way latency in cycles (NIC + switch + propagation; ~2 us at
  // 300 MHz is 600 cycles).
  uint32_t latency_cycles = 600;
  // Fixed per-message serialization overhead in bytes (headers).
  uint32_t header_bytes = 32;
};

struct LinkStats {
  uint64_t messages = 0;
  uint64_t payload_bytes = 0;
  Cycle busy_cycles = 0;
};

// One directional link (a board's egress port). Deterministic accounting.
class NetworkLink {
 public:
  explicit NetworkLink(const LinkConfig& config) : config_(config) {
    LIGHTRW_CHECK(config.bytes_per_cycle > 0.0);
  }

  // Sends a message of `payload_bytes` at time >= ready; returns the
  // arrival cycle at the destination.
  Cycle Send(Cycle ready, uint32_t payload_bytes) {
    const Cycle start = ready > busy_until_ ? ready : busy_until_;
    const double wire_bytes =
        static_cast<double>(payload_bytes) + config_.header_bytes;
    const Cycle occupancy = static_cast<Cycle>(
        CeilDiv(static_cast<uint64_t>(wire_bytes * 1024.0),
                static_cast<uint64_t>(config_.bytes_per_cycle * 1024.0)));
    busy_until_ = start + (occupancy == 0 ? 1 : occupancy);
    ++stats_.messages;
    stats_.payload_bytes += payload_bytes;
    stats_.busy_cycles += busy_until_ - start;
    return busy_until_ + config_.latency_cycles;
  }

  const LinkStats& stats() const { return stats_; }
  Cycle busy_until() const { return busy_until_; }

 private:
  LinkConfig config_;
  Cycle busy_until_ = 0;
  LinkStats stats_;
};

}  // namespace lightrw::hwsim

#endif  // LIGHTRW_HWSIM_LINK_H_
