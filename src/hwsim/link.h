// Point-to-point network link timing model, used by the distributed
// LightRW simulation (the paper's future-work InfiniBand/100G-Ethernet
// deployment). Same accounting style as DramChannel: a message occupies
// the link's serializer for its wire time and arrives one propagation
// latency later.

#ifndef LIGHTRW_HWSIM_LINK_H_
#define LIGHTRW_HWSIM_LINK_H_

#include <algorithm>
#include <cstdint>

#include "common/bits.h"
#include "common/check.h"
#include "hwsim/dram.h"
#include "reliability/fault_injector.h"

namespace lightrw::hwsim {

struct LinkConfig {
  // Wire bandwidth in bytes per kernel cycle. 100 Gb/s at a 300 MHz
  // kernel clock is ~41.7 B/cycle.
  double bytes_per_cycle = 41.7;
  // One-way latency in cycles (NIC + switch + propagation; ~2 us at
  // 300 MHz is 600 cycles).
  uint32_t latency_cycles = 600;
  // Fixed per-message serialization overhead in bytes (headers).
  uint32_t header_bytes = 32;
};

struct LinkStats {
  uint64_t messages = 0;  // wire transmissions, including retransmissions
  uint64_t payload_bytes = 0;
  Cycle busy_cycles = 0;
};

// Outcome of one reliable send (timeout + retransmission protocol).
struct LinkDelivery {
  Cycle arrival = 0;       // delivery cycle, or give-up cycle if !delivered
  bool delivered = true;
  uint32_t attempts = 1;   // wire transmissions used
};

// One directional link (a board's egress port). Deterministic accounting.
class NetworkLink {
 public:
  explicit NetworkLink(const LinkConfig& config) : config_(config) {
    LIGHTRW_CHECK(config.bytes_per_cycle > 0.0);
  }

  // Sends a message of `payload_bytes` at time >= ready; returns the
  // arrival cycle at the destination.
  Cycle Send(Cycle ready, uint32_t payload_bytes) {
    const Cycle start = ready > busy_until_ ? ready : busy_until_;
    const double wire_bytes =
        static_cast<double>(payload_bytes) + config_.header_bytes;
    const Cycle occupancy = static_cast<Cycle>(
        CeilDiv(static_cast<uint64_t>(wire_bytes * 1024.0),
                static_cast<uint64_t>(config_.bytes_per_cycle * 1024.0)));
    busy_until_ = start + (occupancy == 0 ? 1 : occupancy);
    ++stats_.messages;
    stats_.payload_bytes += payload_bytes;
    stats_.busy_cycles += busy_until_ - start;
    return busy_until_ + config_.latency_cycles;
  }

  // Reliable send: transmits the message and consults the attached fault
  // stream. A dropped frame is detected by ack timeout, a corrupted one
  // by receiver NACK; both trigger a retransmission after a backoff that
  // doubles `retransmit_backoff_shift` bits per attempt, bounded by
  // `max_retransmissions`. With no fault stream attached this is exactly
  // Send. When the budget is exhausted, delivered == false and `arrival`
  // is the cycle the sender gave up (the caller recovers the walker from
  // its checkpoint).
  LinkDelivery SendReliable(Cycle ready, uint32_t payload_bytes) {
    LinkDelivery out;
    if (faults_ == nullptr || !faults_->enabled()) {
      out.arrival = Send(ready, payload_bytes);
      return out;
    }
    const reliability::FaultConfig& fc = faults_->config();
    Cycle t = ready;
    for (uint32_t attempt = 0;; ++attempt) {
      const Cycle arrival = Send(t, payload_bytes);
      const Cycle serialized = busy_until_;  // ack timer starts here
      const reliability::LinkFault fault = faults_->NextLinkFault();
      if (fault == reliability::LinkFault::kNone) {
        out.arrival = arrival;
        out.attempts = attempt + 1;
        return out;
      }
      if (reliability_ != nullptr) {
        if (fault == reliability::LinkFault::kDropped) {
          ++reliability_->link_dropped;
        } else {
          ++reliability_->link_corrupted;
        }
      }
      const uint32_t backoff_bits = std::min<uint32_t>(
          attempt * fc.retransmit_backoff_shift, 20u);
      const Cycle timeout =
          static_cast<Cycle>(fc.retransmit_timeout_cycles) << backoff_bits;
      if (attempt >= fc.max_retransmissions) {
        if (reliability_ != nullptr) {
          ++reliability_->link_failed_sends;
        }
        out.delivered = false;
        out.arrival = serialized + timeout;
        out.attempts = attempt + 1;
        return out;
      }
      if (reliability_ != nullptr) {
        ++reliability_->retransmissions;
      }
      t = serialized + timeout;
    }
  }

  // Fault stream (message loss/corruption schedule) and its event
  // counters; not owned, may be null (detaches), must outlive use.
  void AttachFaults(reliability::FaultStream* faults,
                    reliability::ReliabilityStats* reliability) {
    faults_ = faults;
    reliability_ = reliability;
  }

  const LinkStats& stats() const { return stats_; }
  Cycle busy_until() const { return busy_until_; }

 private:
  LinkConfig config_;
  Cycle busy_until_ = 0;
  LinkStats stats_;
  reliability::FaultStream* faults_ = nullptr;
  reliability::ReliabilityStats* reliability_ = nullptr;
};

}  // namespace lightrw::hwsim

#endif  // LIGHTRW_HWSIM_LINK_H_
