// Structural validation of the hardware-model configurations. The model
// constructors LIGHTRW_CHECK these invariants (programming errors abort);
// these Status-returning validators are the front door for configurations
// built from user input (CLI flags, config files), so a bad clock or a
// zero-byte bus is reported as a diagnostic instead of an abort.

#ifndef LIGHTRW_HWSIM_VALIDATION_H_
#define LIGHTRW_HWSIM_VALIDATION_H_

#include "common/status.h"
#include "hwsim/dram.h"
#include "hwsim/link.h"

namespace lightrw::hwsim {

// Nonzero bus/clock/bank parameters, efficiency in (0, 1].
Status ValidateDramConfig(const DramConfig& config);

// Positive wire bandwidth, sane latency and header size.
Status ValidateLinkConfig(const LinkConfig& config);

}  // namespace lightrw::hwsim

#endif  // LIGHTRW_HWSIM_VALIDATION_H_
