#include "hwsim/validation.h"

namespace lightrw::hwsim {

Status ValidateDramConfig(const DramConfig& config) {
  if (config.clock_hz <= 0.0) {
    return InvalidArgumentError("dram.clock_hz must be positive");
  }
  if (config.bus_bytes == 0) {
    return InvalidArgumentError("dram.bus_bytes must be >= 1");
  }
  if (config.issue_gap_cycles == 0) {
    return InvalidArgumentError("dram.issue_gap_cycles must be >= 1");
  }
  if (config.efficiency <= 0.0 || config.efficiency > 1.0) {
    return InvalidArgumentError("dram.efficiency must be in (0, 1]");
  }
  if (config.num_banks == 0) {
    return InvalidArgumentError("dram.num_banks must be >= 1");
  }
  return Status::Ok();
}

Status ValidateLinkConfig(const LinkConfig& config) {
  if (config.bytes_per_cycle <= 0.0) {
    return InvalidArgumentError("link.bytes_per_cycle must be positive");
  }
  if (config.header_bytes > 1u << 20) {
    return InvalidArgumentError(
        "link.header_bytes above 1 MiB is not a header");
  }
  return Status::Ok();
}

}  // namespace lightrw::hwsim
