#include "hwsim/dram.h"

#include <algorithm>
#include <cmath>

#include "obs/trace.h"

namespace lightrw::hwsim {

DramChannel::DramChannel(const DramConfig& config) : config_(config) {
  LIGHTRW_CHECK(config.bus_bytes >= 1);
  LIGHTRW_CHECK(config.issue_gap_cycles >= 1);
  LIGHTRW_CHECK(config.efficiency > 0.0 && config.efficiency <= 1.0);
  LIGHTRW_CHECK(config.clock_hz > 0.0);
  LIGHTRW_CHECK(config.num_banks >= 1);
  bank_busy_.assign(config.num_banks, 0);
}

Cycle DramChannel::RequestOccupancy(uint32_t burst_beats) const {
  LIGHTRW_CHECK(burst_beats >= 1);
  // A request occupies the channel for its data beats (derated by the
  // steady-state efficiency) but never less than the issue gap.
  const double beat_cycles =
      static_cast<double>(burst_beats) / config_.efficiency;
  const double occupancy =
      std::max<double>(beat_cycles, config_.issue_gap_cycles);
  return static_cast<Cycle>(std::llround(std::ceil(occupancy)));
}

Cycle DramChannel::Access(Cycle ready, uint32_t burst_beats) {
  Cycle done = AccessOnce(ready, burst_beats);
  if (faults_ == nullptr || !faults_->enabled()) {
    return done;
  }
  // ECC outcome of the delivered burst. A correctable error is fixed by
  // the controller but costs one re-issue of the burst (scrub + re-read);
  // an uncorrectable error re-issues up to the retry budget, after which
  // the access is declared failed and the caller sees TakeAccessFailure.
  const uint32_t max_retries = faults_->config().max_dram_retries;
  for (uint32_t attempt = 0;; ++attempt) {
    const reliability::DramFault fault = faults_->NextDramFault();
    if (fault == reliability::DramFault::kNone) {
      return done;
    }
    if (fault == reliability::DramFault::kCorrectable) {
      if (reliability_ != nullptr) {
        ++reliability_->dram_correctable;
        ++reliability_->dram_retries;
      }
      if (trace_ != nullptr && trace_->accepting()) {
        trace_->Instant("ecc_correctable", "fault", trace_pid_, trace_tid_,
                        done);
      }
      return AccessOnce(done, burst_beats);
    }
    // Uncorrectable.
    if (reliability_ != nullptr) {
      ++reliability_->dram_uncorrectable;
    }
    if (trace_ != nullptr && trace_->accepting()) {
      trace_->Instant("ecc_uncorrectable", "fault", trace_pid_, trace_tid_,
                      done);
    }
    if (attempt >= max_retries) {
      access_failure_pending_ = true;
      if (reliability_ != nullptr) {
        ++reliability_->dram_failed_accesses;
      }
      if (trace_ != nullptr && trace_->accepting()) {
        trace_->Instant("dram_access_failed", "fault", trace_pid_,
                        trace_tid_, done);
      }
      return done;
    }
    if (reliability_ != nullptr) {
      ++reliability_->dram_retries;
    }
    done = AccessOnce(done, burst_beats);
  }
}

Cycle DramChannel::AccessOnce(Cycle ready, uint32_t burst_beats) {
  LIGHTRW_CHECK(burst_beats >= 1);
  // Command issue occupies the least-loaded bank for one issue gap; the
  // data transfer then occupies the shared bus for the burst's beats.
  auto bank = std::min_element(bank_busy_.begin(), bank_busy_.end());
  const Cycle issue_start = std::max(ready, *bank);
  const Cycle issue_done = issue_start + config_.issue_gap_cycles;
  *bank = issue_done;

  const Cycle transfer_cycles = static_cast<Cycle>(std::llround(
      std::ceil(static_cast<double>(burst_beats) / config_.efficiency)));
  const Cycle transfer_start = std::max(issue_done, bus_busy_);
  bus_busy_ = transfer_start + transfer_cycles;

  ++stats_.requests;
  stats_.beats += burst_beats;
  stats_.bytes += static_cast<uint64_t>(burst_beats) * config_.bus_bytes;
  stats_.busy_cycles += transfer_cycles;
  if (trace_ != nullptr && trace_->accepting()) {
    trace_->Complete("dram_request", "dram", trace_pid_, trace_tid_,
                     transfer_start, bus_busy_);
  }
  // Data is fully delivered one pipelined latency after the transfer.
  return bus_busy_ + config_.access_latency_cycles;
}

double DramChannel::SteadyStateBandwidth(uint32_t burst_beats) const {
  const Cycle occupancy = RequestOccupancy(burst_beats);
  const double bytes =
      static_cast<double>(burst_beats) * config_.bus_bytes;
  return bytes / static_cast<double>(occupancy) * config_.clock_hz;
}

}  // namespace lightrw::hwsim
