// DRAM channel timing model.
//
// Models one FPGA DRAM channel as seen by the accelerator kernel clock:
// a 512-bit (64 B) data bus that delivers one beat per kernel cycle at
// steady state, a per-request issue gap that limits how many independent
// requests can be serviced per unit time, and a pipelined access latency.
//
// These three parameters reproduce the measured curve of the paper's
// Fig. 6: bandwidth grows with burst length (amortizing the issue gap)
// until it saturates at the bus limit (~17.57 GB/s at 300 MHz with the
// default efficiency), while single-beat bursts reach only a fraction
// of it.

#ifndef LIGHTRW_HWSIM_DRAM_H_
#define LIGHTRW_HWSIM_DRAM_H_

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "reliability/fault_injector.h"

namespace lightrw::obs {
class TraceRecorder;
}  // namespace lightrw::obs

namespace lightrw::hwsim {

// Cycle timestamp in kernel clock cycles.
using Cycle = uint64_t;

struct DramConfig {
  // Kernel clock the channel timing is expressed in (paper: 300 MHz).
  double clock_hz = 300e6;
  // Bytes delivered per beat (512-bit AXI bus).
  uint32_t bus_bytes = 64;
  // Minimum channel occupancy of one request, in cycles. Requests shorter
  // than this cannot be issued back-to-back any faster; this is what makes
  // short bursts bandwidth-inefficient. 32 reproduces the paper's Fig. 6,
  // where bandwidth saturates at burst length 32.
  uint32_t issue_gap_cycles = 32;
  // Latency from request issue to first beat of data (pipelined; does not
  // consume channel occupancy).
  uint32_t access_latency_cycles = 128;
  // Fraction of theoretical bus bandwidth achievable at steady state
  // (refresh, bank conflicts). 0.915 * 64 B * 300 MHz = 17.57 GB/s, the
  // peak the paper measures.
  double efficiency = 0.915;
  // Independent banks that can each hold one request's command window at a
  // time. 1 models a strictly serial interface (the Fig. 6 random-access
  // microbenchmark); the accelerator model uses 8 (DDR4 bank groups with
  // multiple outstanding AXI reads), which lets the issue gaps of short
  // bursts from one adjacency fetch overlap.
  uint32_t num_banks = 1;
};

// Accumulated channel statistics.
struct DramStats {
  uint64_t requests = 0;
  uint64_t beats = 0;           // bus beats transferred
  uint64_t bytes = 0;           // beats * bus_bytes
  Cycle busy_cycles = 0;        // cycles the channel was occupied
  uint64_t useful_bytes = 0;    // reported by the caller via ReportUseful
};

// One DRAM channel with banked command issue and a shared data bus.
// Access() is an accounting operation: given the requester's ready time
// and a burst length in beats, it returns when the last beat of data
// arrives. A request occupies the least-loaded bank for the issue gap and
// then the data bus for its beats; with one bank this degenerates to a
// strictly serial channel. Deterministic and O(num_banks) per request.
class DramChannel {
 public:
  explicit DramChannel(const DramConfig& config);

  const DramConfig& config() const { return config_; }

  // Channel occupancy of one request of `burst_beats` beats.
  Cycle RequestOccupancy(uint32_t burst_beats) const;

  // Issues a request at time >= `ready`: returns the cycle at which all
  // data has been delivered. With a fault stream attached, a correctable
  // ECC error re-issues the burst once (costing channel occupancy and a
  // counted retry); an uncorrectable error re-issues up to
  // `max_dram_retries` times and then marks the access failed (visible
  // through TakeAccessFailure), still returning the modeled completion
  // cycle of the final attempt.
  Cycle Access(Cycle ready, uint32_t burst_beats);

  // Attributes `bytes` of the most recent traffic as useful (consumed by
  // the compute pipeline rather than fetched-and-dropped).
  void ReportUseful(uint64_t bytes) { stats_.useful_bytes += bytes; }

  // Steady-state bandwidth of back-to-back requests with this burst
  // length, in bytes/second. Pure function of the config.
  double SteadyStateBandwidth(uint32_t burst_beats) const;

  // Peak achievable bandwidth (large bursts), bytes/second.
  double PeakBandwidth() const {
    return config_.bus_bytes * config_.clock_hz * config_.efficiency;
  }

  // Time the data bus is occupied through (the channel's busy horizon).
  Cycle busy_until() const { return bus_busy_; }
  const DramStats& stats() const { return stats_; }
  void ResetStats() { stats_ = DramStats{}; }

  // Mirrors every request's data-bus service window [transfer start,
  // last beat] into `trace` as a complete event on track (pid, tid).
  // `trace` is not owned, may be null (detaches), and must outlive the
  // channel's use.
  void AttachTrace(obs::TraceRecorder* trace, uint32_t pid, uint32_t tid) {
    trace_ = trace;
    trace_pid_ = pid;
    trace_tid_ = tid;
  }

  // Attaches a deterministic fault stream (ECC error schedule) and the
  // stats block that counts its events. Both are not owned, may be null
  // (detaches — the default, zero-overhead path), and must outlive the
  // channel's use.
  void AttachFaults(reliability::FaultStream* faults,
                    reliability::ReliabilityStats* reliability) {
    faults_ = faults;
    reliability_ = reliability;
  }

  // True if any Access since the last call exhausted its ECC retry
  // budget (uncorrectable data loss). Clears the flag. Callers issuing a
  // group of accesses for one logical operation (e.g. a burst-engine
  // fetch) check once after the group.
  bool TakeAccessFailure() {
    const bool failed = access_failure_pending_;
    access_failure_pending_ = false;
    return failed;
  }

 private:
  // One physical request issue: timing, stats, and trace, no faults.
  Cycle AccessOnce(Cycle ready, uint32_t burst_beats);

  DramConfig config_;
  std::vector<Cycle> bank_busy_;
  Cycle bus_busy_ = 0;
  DramStats stats_;
  obs::TraceRecorder* trace_ = nullptr;
  uint32_t trace_pid_ = 0;
  uint32_t trace_tid_ = 0;
  reliability::FaultStream* faults_ = nullptr;
  reliability::ReliabilityStats* reliability_ = nullptr;
  bool access_failure_pending_ = false;
};

}  // namespace lightrw::hwsim

#endif  // LIGHTRW_HWSIM_DRAM_H_
