#include "sampling/alias.h"

#include <cmath>

#include "common/check.h"

namespace lightrw::sampling {

void AliasTable::Build(std::span<const Weight> weights) {
  const size_t n = weights.size();
  prob_.assign(n, 0);
  alias_.assign(n, 0);
  total_weight_ = 0;
  for (const Weight w : weights) {
    total_weight_ += w;
  }
  if (total_weight_ == 0 || n == 0) {
    return;
  }

  // Vose's algorithm on scaled probabilities p_i = n * w_i / W.
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = static_cast<double>(weights[i]) * n /
                static_cast<double>(total_weight_);
  }
  std::vector<uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    small.pop_back();
    const uint32_t l = large.back();
    large.pop_back();
    prob_[s] = static_cast<uint32_t>(
        std::min(4294967295.0, scaled[s] * 4294967296.0));
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (const uint32_t i : large) {
    prob_[i] = UINT32_MAX;  // always stay
    alias_[i] = i;
  }
  for (const uint32_t i : small) {
    // Only reachable through floating-point round-off; treat as full.
    prob_[i] = UINT32_MAX;
    alias_[i] = i;
  }
}

size_t AliasTable::Sample(uint64_t random_bucket, uint32_t random_coin) const {
  if (total_weight_ == 0 || prob_.empty()) {
    return kNoSample;
  }
  const size_t bucket = static_cast<size_t>(random_bucket % prob_.size());
  // Strict comparison so zero-probability buckets (zero-weight items)
  // always defer to their alias.
  return random_coin < prob_[bucket] ? bucket : alias_[bucket];
}

}  // namespace lightrw::sampling
