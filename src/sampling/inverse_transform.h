// Inverse transform sampling: the table-based method ThunderRW is
// configured with (paper §2.2). Initialization builds an inclusive
// prefix-sum table of the weights (O(n) time and space — the intermediate
// data structure whose DRAM traffic motivates LightRW); generation binary
// searches the table with one uniform random number.

#ifndef LIGHTRW_SAMPLING_INVERSE_TRANSFORM_H_
#define LIGHTRW_SAMPLING_INVERSE_TRANSFORM_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "sampling/sampler.h"

namespace lightrw::sampling {

// Reusable inverse-transform sampler. Build() may be called repeatedly;
// the table vector is reused across steps to avoid reallocation.
class InverseTransformTable {
 public:
  // Initialization stage: builds the inclusive prefix-sum table.
  void Build(std::span<const Weight> weights);

  // Generation stage: draws item index from a 64-bit uniform random value.
  // Returns kNoSample if the total weight is zero.
  size_t Sample(uint64_t random64) const;

  uint64_t total_weight() const {
    return table_.empty() ? 0 : table_.back();
  }
  size_t size() const { return table_.size(); }

  // Bytes written during Build / read during Sample, for the Table 1
  // intermediate-traffic accounting.
  uint64_t table_bytes() const { return table_.size() * sizeof(uint64_t); }

 private:
  std::vector<uint64_t> table_;  // inclusive prefix sums
};

}  // namespace lightrw::sampling

#endif  // LIGHTRW_SAMPLING_INVERSE_TRANSFORM_H_
