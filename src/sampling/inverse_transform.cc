#include "sampling/inverse_transform.h"

#include <algorithm>

#include "common/check.h"

namespace lightrw::sampling {

void InverseTransformTable::Build(std::span<const Weight> weights) {
  table_.clear();
  table_.reserve(weights.size());
  uint64_t running = 0;
  for (const Weight w : weights) {
    running += w;
    table_.push_back(running);
  }
}

size_t InverseTransformTable::Sample(uint64_t random64) const {
  const uint64_t total = total_weight();
  if (total == 0) {
    return kNoSample;
  }
  // Map the 64-bit uniform draw onto [0, total) without bias worth noting
  // at these magnitudes, then find the first prefix strictly greater.
  const uint64_t target = random64 % total;
  const auto it = std::upper_bound(table_.begin(), table_.end(), target);
  LIGHTRW_DCHECK(it != table_.end());
  return static_cast<size_t>(it - table_.begin());
}

}  // namespace lightrw::sampling
