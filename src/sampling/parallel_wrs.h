// Parallel weighted reservoir sampling — the paper's Algorithm 4.1.
//
// Consumes the weight stream in batches of k. For each batch it computes
// the inclusive prefix sum W_ps (Eq. 5 decomposition), tests every lane j
// independently with the Eq. (8) integer comparison against lane j's own
// random stream, takes the maximum selected lane index (the tree comparator
// of Fig. 4, step d), and accumulates the batch total into w_sum.
//
// The result is distributed identically to the sequential sampler: item i
// is finally selected with probability w_i / sum(w).

#ifndef LIGHTRW_SAMPLING_PARALLEL_WRS_H_
#define LIGHTRW_SAMPLING_PARALLEL_WRS_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "rng/rng.h"
#include "sampling/sampler.h"

namespace lightrw::sampling {

// k-lane parallel WRS with a one-slot reservoir.
// Lane j draws from rng stream (stream_base + j).
class ParallelWrsSampler {
 public:
  // `rng` must provide at least stream_base + k streams and outlive this
  // object.
  ParallelWrsSampler(size_t k, rng::ThunderingRng* rng,
                     size_t stream_base = 0);

  size_t parallelism() const { return k_; }

  void Reset() {
    weight_sum_ = 0;
    selected_ = kNoSample;
    batches_consumed_ = 0;
  }

  // Offers the next batch of the stream. weights.size() must be in [1, k];
  // the final batch of a stream may be short, matching the hardware which
  // masks off inactive lanes. `base_index` is the stream index of
  // weights[0].
  void OfferBatch(std::span<const Weight> weights, size_t base_index);

  // Convenience: streams an entire weight sequence through OfferBatch.
  // Returns selected().
  size_t SampleAll(std::span<const Weight> weights);

  size_t selected() const { return selected_; }
  uint64_t weight_sum() const { return weight_sum_; }
  uint64_t batches_consumed() const { return batches_consumed_; }

 private:
  size_t k_;
  rng::ThunderingRng* rng_;
  size_t stream_base_;
  std::vector<uint64_t> prefix_;  // scratch: inclusive prefix sums
  uint64_t weight_sum_ = 0;
  size_t selected_ = kNoSample;
  uint64_t batches_consumed_ = 0;
};

}  // namespace lightrw::sampling

#endif  // LIGHTRW_SAMPLING_PARALLEL_WRS_H_
