// Shared declarations for the weighted samplers.
//
// All samplers draw an index i with probability w_i / sum(w) from a set of
// unnormalized integer weights. Items with zero weight are never selected
// (MetaPath uses zero weights to exclude relation-mismatched edges). If
// every weight is zero the samplers report kNoSample and a dynamic walk
// terminates early.

#ifndef LIGHTRW_SAMPLING_SAMPLER_H_
#define LIGHTRW_SAMPLING_SAMPLER_H_

#include <cstddef>
#include <cstdint>
#include <limits>

#include "graph/types.h"

namespace lightrw::sampling {

using graph::Weight;

// Sentinel index meaning "no item had positive weight".
inline constexpr size_t kNoSample = std::numeric_limits<size_t>::max();

// The paper's Eq. (8) selection test, shared by the sequential and parallel
// WRS implementations and by the hardware Selector model:
//
//   select item j  <=>  2^32 * w_j  >  r * S_j + w_j
//
// where S_j is the inclusive running weight sum up to and including item j
// and r is a uniform 32-bit random number. This is the division-free integer
// rewrite of  w_j / S_j > r / (2^32 - 1).
inline bool WrsSelect(Weight w, uint64_t inclusive_sum, uint32_t r) {
  // S_j can exceed 2^32, so the right-hand product needs 128-bit range.
  const unsigned __int128 lhs = static_cast<unsigned __int128>(w) << 32;
  const unsigned __int128 rhs =
      static_cast<unsigned __int128>(r) * inclusive_sum + w;
  return lhs > rhs;
}

// Enumerates the sampling methods available to the CPU baseline engine.
enum class SamplerKind {
  kInverseTransform,  // ThunderRW's recommended configuration
  kAlias,
  kReservoir,         // sequential WRS (one random number per item)
  kParallelWrs,       // the paper's Algorithm 4.1 executed on CPU
};

inline const char* SamplerKindName(SamplerKind kind) {
  switch (kind) {
    case SamplerKind::kInverseTransform:
      return "its";
    case SamplerKind::kAlias:
      return "alias";
    case SamplerKind::kReservoir:
      return "wrs";
    case SamplerKind::kParallelWrs:
      return "pwrs";
  }
  return "unknown";
}

}  // namespace lightrw::sampling

#endif  // LIGHTRW_SAMPLING_SAMPLER_H_
