// Alias-method sampler (Walker/Vose). O(n) initialization, O(1) generation.
// Included as the second table-based baseline discussed in the paper
// (§2.2, "alias sampling").

#ifndef LIGHTRW_SAMPLING_ALIAS_H_
#define LIGHTRW_SAMPLING_ALIAS_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "sampling/sampler.h"

namespace lightrw::sampling {

// Reusable alias table over integer weights.
class AliasTable {
 public:
  // Initialization stage: builds probability/alias arrays with Vose's
  // stack-based construction.
  void Build(std::span<const Weight> weights);

  // Generation stage: draws an index from two uniform random values
  // (bucket choice and coin). Returns kNoSample if total weight is zero.
  size_t Sample(uint64_t random_bucket, uint32_t random_coin) const;

  size_t size() const { return prob_.size(); }
  uint64_t total_weight() const { return total_weight_; }

  // Bytes of the alias table (Table 1 intermediate-traffic accounting).
  uint64_t table_bytes() const {
    return prob_.size() * (sizeof(uint32_t) + sizeof(uint32_t));
  }

 private:
  // prob_[i] is the 32-bit fixed-point probability of staying in bucket i
  // (vs. deferring to alias_[i]).
  std::vector<uint32_t> prob_;
  std::vector<uint32_t> alias_;
  uint64_t total_weight_ = 0;
};

}  // namespace lightrw::sampling

#endif  // LIGHTRW_SAMPLING_ALIAS_H_
