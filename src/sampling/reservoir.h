// Sequential weighted reservoir sampling (reservoir size 1).
//
// Streaming single-pass sampler: item i with weight w_i replaces the
// reservoir with probability w_i / W_i where W_i is the inclusive running
// sum, which yields final selection probability w_i / W_n (Efraimidis &
// Spirakis; paper §3.2). Needs one random number per item — the cost that
// makes WRS unattractive on CPUs but free on FPGAs.

#ifndef LIGHTRW_SAMPLING_RESERVOIR_H_
#define LIGHTRW_SAMPLING_RESERVOIR_H_

#include <cstddef>
#include <cstdint>

#include "rng/rng.h"
#include "sampling/sampler.h"

namespace lightrw::sampling {

// Single-slot streaming reservoir sampler over an item stream.
// Not thread-safe; reuse across steps via Reset().
class ReservoirSampler {
 public:
  // Draws random numbers from `rng` stream `stream`. `rng` must outlive
  // this object.
  ReservoirSampler(rng::ThunderingRng* rng, size_t stream)
      : rng_(rng), stream_(stream) {}

  void Reset() {
    weight_sum_ = 0;
    selected_ = kNoSample;
  }

  // Offers the next item of the stream.
  void Offer(size_t index, Weight weight) {
    if (weight == 0) {
      return;  // zero-weight items are not sampleable and do not change W
    }
    weight_sum_ += weight;
    const uint32_t r = rng_->Next(stream_);
    if (WrsSelect(weight, weight_sum_, r)) {
      selected_ = index;
    }
  }

  // Index of the sampled item so far, or kNoSample.
  size_t selected() const { return selected_; }
  uint64_t weight_sum() const { return weight_sum_; }

 private:
  rng::ThunderingRng* rng_;
  size_t stream_;
  uint64_t weight_sum_ = 0;
  size_t selected_ = kNoSample;
};

}  // namespace lightrw::sampling

#endif  // LIGHTRW_SAMPLING_RESERVOIR_H_
