#include "sampling/parallel_wrs.h"

#include "common/check.h"

namespace lightrw::sampling {

ParallelWrsSampler::ParallelWrsSampler(size_t k, rng::ThunderingRng* rng,
                                       size_t stream_base)
    : k_(k), rng_(rng), stream_base_(stream_base), prefix_(k) {
  LIGHTRW_CHECK(k >= 1);
  LIGHTRW_CHECK(rng != nullptr);
  LIGHTRW_CHECK(stream_base + k <= rng->num_streams());
}

void ParallelWrsSampler::OfferBatch(std::span<const Weight> weights,
                                    size_t base_index) {
  LIGHTRW_DCHECK(!weights.empty());
  LIGHTRW_DCHECK(weights.size() <= k_);
  const size_t n = weights.size();

  // Step (a): inclusive prefix sum of the batch (log-depth in hardware,
  // sequential here — the functional result is identical).
  uint64_t running = 0;
  for (size_t j = 0; j < n; ++j) {
    running += weights[j];
    prefix_[j] = running;
  }

  // Steps (b)-(c): every lane tests independently against its own random
  // stream; step (d): the highest selected lane index wins, implementing
  // "the latest candidate replaces the reservoir".
  size_t selected_lane = kNoSample;
  for (size_t j = 0; j < n; ++j) {
    if (weights[j] == 0) {
      continue;
    }
    const uint32_t r = rng_->Next(stream_base_ + j);
    if (WrsSelect(weights[j], weight_sum_ + prefix_[j], r)) {
      selected_lane = j;  // later lanes overwrite earlier ones
    }
  }
  if (selected_lane != kNoSample) {
    selected_ = base_index + selected_lane;
  }

  weight_sum_ += running;
  ++batches_consumed_;
}

size_t ParallelWrsSampler::SampleAll(std::span<const Weight> weights) {
  Reset();
  for (size_t offset = 0; offset < weights.size(); offset += k_) {
    const size_t n = std::min(k_, weights.size() - offset);
    OfferBatch(weights.subspan(offset, n), offset);
  }
  return selected_;
}

}  // namespace lightrw::sampling
