// Modeled open-loop arrival streams for the walk service.
//
// The service front end is driven by queries arriving on the simulated
// clock, not by a closed batch: a seeded Poisson process (exponential
// inter-arrival gaps) optionally modulated by an on/off burst phase
// yields a deterministic, reproducible trace of (arrival cycle, start
// vertex, deadline, best-effort flag) tuples. Same config ⇒ byte-equal
// stream, which is what makes the service's admit/shed/degrade decisions
// golden-testable.

#ifndef LIGHTRW_SERVICE_ARRIVAL_H_
#define LIGHTRW_SERVICE_ARRIVAL_H_

#include <cstdint>
#include <vector>

#include "apps/walk_app.h"
#include "common/status.h"
#include "graph/csr.h"
#include "hwsim/dram.h"

namespace lightrw::service {

struct ArrivalConfig {
  uint64_t seed = 7;
  uint64_t num_queries = 1024;
  uint32_t walk_length = 80;
  // Mean arrival rate in queries per 1024 cycles (the open-loop offered
  // load; the service does not wait for completions before admitting).
  double rate_per_kcycle = 1.0;
  // On/off burst modulation: during the first `burst_on_cycles` of every
  // (on + off) period the rate is multiplied by `burst_factor`. Both
  // cycle counts 0 disables modulation.
  double burst_factor = 1.0;
  uint64_t burst_on_cycles = 0;
  uint64_t burst_off_cycles = 0;
  // Relative completion deadline attached to every query (0 = none).
  uint64_t deadline_cycles = 0;
  // Fraction of queries marked best-effort, i.e. eligible for graceful
  // degradation (shortened / uniform stepping) under overload.
  double best_effort_fraction = 1.0;
};

// One query of the arrival trace.
struct ServiceQuery {
  apps::WalkQuery query;
  hwsim::Cycle arrival = 0;
  hwsim::Cycle deadline = 0;  // absolute cycle; 0 = no deadline
  bool best_effort = false;
};

// Non-OK for out-of-range fields (each named in the message).
Status ValidateArrivalConfig(const ArrivalConfig& config);

// Generates the deterministic arrival trace (sorted by arrival cycle by
// construction). Start vertices are drawn uniformly over the graph's
// non-isolated vertices; fails if the graph has none.
StatusOr<std::vector<ServiceQuery>> GenerateArrivals(
    const ArrivalConfig& config, const graph::CsrGraph& graph);

}  // namespace lightrw::service

#endif  // LIGHTRW_SERVICE_ARRIVAL_H_
