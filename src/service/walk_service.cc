#include "service/walk_service.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/sim_thread_pool.h"
#include "distributed/config_validation.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace lightrw::service {

namespace {

using distributed::BoardId;
using distributed::ClusterSim;
using distributed::WalkerEnd;
using distributed::WalkerOptions;
using graph::VertexId;
using hwsim::Cycle;

// Wake-tag encoding: kind in the top byte, payload below. Tag order is
// the deterministic tie-break among wakes at the same cycle (arrivals,
// then retries, then breaker cooldowns).
constexpr uint64_t kTagKindShift = 56;
constexpr uint64_t kArrivalKind = 0;
constexpr uint64_t kRetryKind = 1;
constexpr uint64_t kBreakerKind = 2;
constexpr uint64_t kTagPayloadMask = (1ULL << kTagKindShift) - 1;

uint64_t MakeTag(uint64_t kind, uint64_t payload) {
  return (kind << kTagKindShift) | payload;
}

// Trace track for service events, below each board's dram (0) and
// network (1) tracks named by ClusterSim.
constexpr uint32_t kServiceTrack = 2;

// Why a query could not be served right now — maps to the shed reason
// once the retry budget is exhausted.
enum class Reject { kQueueFull, kBreakerOpen, kWalkFailure };

enum class BreakerState : uint8_t { kClosed, kOpen, kHalfOpen };

}  // namespace

Status ValidateServiceConfig(const ServiceConfig& config) {
  LIGHTRW_RETURN_IF_ERROR(
      distributed::ValidateDistributedConfig(config.cluster));
  LIGHTRW_RETURN_IF_ERROR(ValidateArrivalConfig(config.arrivals));
  if (config.queue_capacity == 0) {
    return InvalidArgumentError("service.queue_capacity must be > 0");
  }
  if (config.retry_budget > 0 && config.retry_backoff_cycles == 0) {
    return InvalidArgumentError(
        "service.retry_backoff_cycles must be > 0 when retries are "
        "enabled");
  }
  if (config.breaker_failure_threshold == 0) {
    return InvalidArgumentError(
        "service.breaker_failure_threshold must be > 0");
  }
  if (config.breaker_cooldown_cycles == 0) {
    return InvalidArgumentError(
        "service.breaker_cooldown_cycles must be > 0");
  }
  if (!(config.degrade_shorten_occupancy > 0.0) ||
      config.degrade_shorten_occupancy > 1.0) {
    return InvalidArgumentError(
        "service.degrade_shorten_occupancy must be within (0, 1]");
  }
  if (!(config.degrade_uniform_occupancy > 0.0) ||
      config.degrade_uniform_occupancy > 1.0) {
    return InvalidArgumentError(
        "service.degrade_uniform_occupancy must be within (0, 1]");
  }
  if (config.degrade_uniform_occupancy < config.degrade_shorten_occupancy) {
    return InvalidArgumentError(
        "service.degrade_uniform_occupancy must be >= "
        "degrade_shorten_occupancy (uniform is the stronger tier)");
  }
  if (!(config.degrade_shorten_factor > 0.0) ||
      config.degrade_shorten_factor > 1.0) {
    return InvalidArgumentError(
        "service.degrade_shorten_factor must be within (0, 1]");
  }
  if (config.admission_shards == 0) {
    return InvalidArgumentError("service.admission_shards must be >= 1");
  }
  if (config.admission_shards > 1) {
    if (!config.cluster.replicate_graph) {
      return InvalidArgumentError(
          "service.admission_shards > 1 requires cluster.replicate_graph "
          "(a shard must be able to serve any vertex on its own boards)");
    }
    if (config.cluster.board.faults.enabled) {
      return InvalidArgumentError(
          "service.admission_shards > 1 is incompatible with fault "
          "injection (failover recovery couples boards across shards)");
    }
  }
  return Status::Ok();
}

core::SloSummary ServiceRunStats::Slo() const {
  core::SloSummary s;
  s.offered = offered;
  s.completed = completed;
  s.shed = Shed();
  s.failed = failed;
  s.deadline_violations = deadline_violations;
  s.degraded = degraded;
  s.breaker_trips = breaker_trips;
  s.retries = retries;
  s.goodput_per_s = GoodputPerSecond();
  s.shed_rate = ShedRate();
  s.violation_rate = ViolationRate();
  if (queue_delay_cycles.count() > 0) {
    s.queue_delay_p50 = queue_delay_cycles.Quantile(0.5);
    s.queue_delay_p99 = queue_delay_cycles.Quantile(0.99);
  }
  if (latency_cycles.count() > 0) {
    s.latency_p50 = latency_cycles.Quantile(0.5);
    s.latency_p99 = latency_cycles.Quantile(0.99);
  }
  return s;
}

WalkService::WalkService(const graph::CsrGraph* graph,
                         const apps::WalkApp* app,
                         const distributed::Partition* partition,
                         const ServiceConfig& config)
    : graph_(graph), app_(app), partition_(partition), config_(config) {
  LIGHTRW_CHECK(graph != nullptr);
  LIGHTRW_CHECK(app != nullptr);
  LIGHTRW_CHECK(partition != nullptr);
}

StatusOr<ServiceRunStats> WalkService::Run(baseline::WalkOutput* output) {
  LIGHTRW_RETURN_IF_ERROR(ValidateServiceConfig(config_));
  const BoardId num_boards = partition_->num_boards();
  LIGHTRW_RETURN_IF_ERROR(
      distributed::CheckFailoverSatisfiable(config_.cluster, num_boards));
  const uint32_t num_shards = config_.admission_shards;
  if (num_shards > num_boards || num_boards % num_shards != 0) {
    return InvalidArgumentError(
        "service.admission_shards (" + std::to_string(num_shards) +
        ") must evenly divide the board count (" +
        std::to_string(num_boards) + ")");
  }
  const BoardId boards_per_shard =
      static_cast<BoardId>(num_boards / num_shards);
  auto arrivals_or = GenerateArrivals(config_.arrivals, *graph_);
  if (!arrivals_or.ok()) {
    return arrivals_or.status();
  }
  std::vector<ServiceQuery> arrivals = std::move(*arrivals_or);

  ServiceRunStats stats;
  stats.offered = arrivals.size();

  // Per-query serving state. Shard s owns exactly the entries with
  // qi mod num_shards == s, so shards write disjoint slots.
  struct Rec {
    QueryOutcome outcome = QueryOutcome::kPending;
    uint32_t attempts = 0;      // admissions tried (dispatched or bounced)
    Cycle admitted_at = 0;      // last enqueue cycle
    bool shortened = false;     // degradation applied to the last dispatch
    bool uniform = false;
    uint64_t root_span = 0;     // "query" span: first admission -> terminal
    uint64_t queue_span = 0;    // open "queue" span of the current attempt
    std::vector<VertexId> path;
  };
  std::vector<Rec> recs(arrivals.size());

  // Shard-private totals, merged in shard order after the barrier so the
  // merged result is independent of how shards interleave in time.
  struct ShardStats {
    uint64_t retries = 0;
    uint64_t breaker_trips = 0;
    uint64_t deadline_violations = 0;
    SampleStats queue_delay_cycles;
    SampleStats latency_cycles;
    distributed::DistributedRunStats cluster;
  };
  std::vector<ShardStats> shard_stats(num_shards);

  obs::MetricsRegistry* metrics = config_.cluster.board.metrics;
  obs::TraceRecorder* shared_trace = config_.cluster.board.trace;
  std::vector<std::unique_ptr<obs::TraceRecorder>> trace_shards(num_shards);
  obs::SpanRecorder* shared_spans = config_.cluster.board.spans;
  std::vector<std::unique_ptr<obs::SpanRecorder>> span_shards(num_shards);

  // Sharding requires replicate_graph, where vertex ownership is never
  // resolved: the partition only sizes each shard's sim.
  std::optional<distributed::Partition> shard_partition;
  if (num_shards > 1) {
    shard_partition.emplace(
        std::vector<BoardId>(graph_->num_vertices(), 0), boards_per_shard);
  }

  // One shard = one full service stack (queues, breakers, retry timers,
  // ClusterSim) over its board group and arrival subset. With one shard
  // this is exactly the original single-loop service.
  auto run_shard = [&](size_t shard) {
    ShardStats& ss = shard_stats[shard];
    const BoardId first =
        static_cast<BoardId>(shard * boards_per_shard);
    // Global identity of the shard's local board b, for operator-facing
    // labels (metrics, trace): a sharded run reports like an unsharded
    // one.
    auto global = [&](BoardId b) {
      return static_cast<BoardId>(first + b);
    };

    distributed::DistributedConfig cluster_config = config_.cluster;
    cluster_config.first_board = first;
    if (shared_trace != nullptr && num_shards > 1) {
      trace_shards[shard] =
          std::make_unique<obs::TraceRecorder>(shared_trace->config());
      cluster_config.board.trace = trace_shards[shard].get();
    }
    obs::TraceRecorder* trace = cluster_config.board.trace;
    // Spans follow the trace-shard pattern: a private recorder per shard
    // (traces are disjoint — shard s owns qi mod num_shards == s), merged
    // in shard order after the barrier.
    if (shared_spans != nullptr && num_shards > 1) {
      span_shards[shard] =
          std::make_unique<obs::SpanRecorder>(shared_spans->config());
      cluster_config.board.spans = span_shards[shard].get();
    }
    obs::SpanRecorder* spans = cluster_config.board.spans;

    const distributed::Partition* partition =
        num_shards == 1 ? partition_ : &*shard_partition;
    const uint32_t max_walkers =
        boards_per_shard * config_.cluster.inflight_walkers_per_board;
    ClusterSim sim(graph_, app_, partition, cluster_config, max_walkers);
    sim.set_surface_failures(true);

    // Per-board admission queue + circuit breaker.
    struct SBoard {
      std::vector<uint64_t> queue;  // query indices, EDF-popped
      BreakerState breaker = BreakerState::kClosed;
      uint32_t consecutive_failures = 0;
      Cycle open_until = 0;
      bool probe_inflight = false;  // half-open: one query probes the board
    };
    std::vector<SBoard> sboards(boards_per_shard);

    if (trace != nullptr) {
      for (BoardId b = 0; b < boards_per_shard; ++b) {
        trace->NameTrack(global(b), kServiceTrack, "service");
      }
    }
    auto trace_instant = [&](const char* name, BoardId b, Cycle at) {
      if (trace != nullptr && trace->accepting()) {
        trace->Instant(name, "service", global(b), kServiceTrack, at);
      }
    };

    // Settles a query's trace: closes any still-open queue span and the
    // root span, then retains-or-discards the spans per the flight
    // recorder mode. `outcome` must be a string literal.
    auto close_trace = [&](uint64_t qi, Cycle at, bool breached,
                           const char* outcome) {
      if (spans == nullptr) {
        return;
      }
      Rec& r = recs[qi];
      if (r.queue_span != 0) {
        spans->End(qi, r.queue_span, at);
        r.queue_span = 0;
      }
      spans->Attr(qi, r.root_span, "attempts", r.attempts);
      spans->End(qi, r.root_span, at);
      spans->CloseTrace(qi, arrivals[qi].arrival, at, breached, outcome);
    };

    auto shed = [&](uint64_t qi, BoardId b, Cycle at, QueryOutcome outcome) {
      Rec& r = recs[qi];
      LIGHTRW_CHECK(r.outcome == QueryOutcome::kPending);
      r.outcome = outcome;
      const char* reason = outcome == QueryOutcome::kShedQueueFull
                               ? "queue_full"
                           : outcome == QueryOutcome::kShedBreaker
                               ? "breaker_open"
                               : "deadline";
      if (metrics != nullptr) {
        metrics->GetCounter("service.shed", {{"reason", reason}})
            ->Increment();
      }
      trace_instant("shed", b, at);
      close_trace(qi, at, /*breached=*/true, reason);
    };

    // A query that cannot be served right now: re-admit after backoff if
    // budget remains, otherwise settle its terminal outcome.
    auto bounce = [&](uint64_t qi, BoardId b, Cycle at, Reject why) {
      Rec& r = recs[qi];
      // A stranded queue entry (breaker trip drains the queue) bounces
      // with its queue span still open; close it at the bounce cycle.
      if (spans != nullptr && r.queue_span != 0) {
        spans->End(qi, r.queue_span, at);
        r.queue_span = 0;
      }
      if (r.attempts <= config_.retry_budget) {
        ++ss.retries;
        if (metrics != nullptr) {
          metrics->GetCounter("service.retries")->Increment();
        }
        const Cycle backoff = config_.retry_backoff_cycles
                              << (r.attempts - 1);
        if (spans != nullptr) {
          const uint64_t bs = spans->Begin(qi, r.root_span, "backoff",
                                           "service", global(b), at);
          spans->End(qi, bs, at + backoff);
        }
        sim.ScheduleWake(MakeTag(kRetryKind, qi), at + backoff);
        return;
      }
      switch (why) {
        case Reject::kQueueFull:
          shed(qi, b, at, QueryOutcome::kShedQueueFull);
          break;
        case Reject::kBreakerOpen:
          shed(qi, b, at, QueryOutcome::kShedBreaker);
          break;
        case Reject::kWalkFailure:
          LIGHTRW_CHECK(recs[qi].outcome == QueryOutcome::kPending);
          recs[qi].outcome = QueryOutcome::kFailed;
          trace_instant("query_failed", b, at);
          close_trace(qi, at, /*breached=*/true, "failed");
          break;
      }
    };

    // Moves queued queries into free walker slots on board `b`,
    // earliest-deadline-first, applying degradation by queue congestion.
    auto dispatch = [&](BoardId b, Cycle at) {
      SBoard& sb = sboards[b];
      if (sb.breaker == BreakerState::kOpen) {
        return;
      }
      while (!sb.queue.empty() &&
             sim.InflightOn(b) < config_.cluster.inflight_walkers_per_board &&
             sim.free_slots() > 0) {
        if (sb.breaker == BreakerState::kHalfOpen && sb.probe_inflight) {
          return;  // one probe at a time until the breaker closes
        }
        // EDF: earliest absolute deadline wins; deadline-less queries go
        // last; arrival order breaks ties.
        const double fill = static_cast<double>(sb.queue.size()) /
                            static_cast<double>(config_.queue_capacity);
        size_t best = 0;
        Cycle best_deadline = std::numeric_limits<Cycle>::max();
        uint64_t best_qi = std::numeric_limits<uint64_t>::max();
        for (size_t i = 0; i < sb.queue.size(); ++i) {
          const uint64_t qi = sb.queue[i];
          const Cycle d = arrivals[qi].deadline > 0
                              ? arrivals[qi].deadline
                              : std::numeric_limits<Cycle>::max();
          if (d < best_deadline || (d == best_deadline && qi < best_qi)) {
            best = i;
            best_deadline = d;
            best_qi = qi;
          }
        }
        const uint64_t qi = sb.queue[best];
        sb.queue.erase(sb.queue.begin() + static_cast<ptrdiff_t>(best));
        const ServiceQuery& sq = arrivals[qi];
        Rec& r = recs[qi];
        // The attempt leaves the queue here, whether it dispatches or is
        // shed for a passed deadline.
        if (spans != nullptr && r.queue_span != 0) {
          spans->End(qi, r.queue_span, at);
          r.queue_span = 0;
        }
        // A query whose deadline already passed would only waste the slot.
        if (sq.deadline > 0 && at >= sq.deadline) {
          shed(qi, b, at, QueryOutcome::kShedDeadline);
          continue;
        }
        WalkerOptions opts;
        opts.parent_span = r.root_span;
        r.shortened = false;
        r.uniform = false;
        if (config_.degrade_enabled && sq.best_effort) {
          if (fill >= config_.degrade_shorten_occupancy) {
            opts.max_steps = std::max(
                1u, static_cast<uint32_t>(
                        static_cast<double>(sq.query.length) *
                        config_.degrade_shorten_factor));
            r.shortened = true;
          }
          if (fill >= config_.degrade_uniform_occupancy) {
            opts.uniform_step = true;
            r.uniform = true;
          }
          if (r.shortened || r.uniform) {
            if (metrics != nullptr) {
              metrics
                  ->GetCounter("service.degraded",
                               {{"tier", r.uniform ? "uniform" : "shorten"}})
                  ->Increment();
            }
            trace_instant("degrade", b, at);
            if (spans != nullptr) {
              spans->Event(qi, r.root_span,
                           r.uniform ? "degrade_uniform" : "degrade_shorten",
                           at);
            }
          }
        }
        // Shared-registry histograms are fed from the merged per-shard
        // samples after the barrier (fixed order); only the shard-local
        // accumulator is touched on the hot path.
        const Cycle delay = at - r.admitted_at;
        ss.queue_delay_cycles.Add(static_cast<double>(delay));
        if (sb.breaker == BreakerState::kHalfOpen) {
          sb.probe_inflight = true;
        }
        sim.Launch(qi, sq.query, b, at, opts);
      }
    };

    // Admission: pick a board, apply breaker + queue backpressure, enqueue.
    auto admit = [&](uint64_t qi, Cycle at) {
      Rec& r = recs[qi];
      ++r.attempts;
      const ServiceQuery& sq = arrivals[qi];
      // The query's root span opens on first admission (at = arrival) and
      // stays open across retries until the terminal event closes the
      // trace.
      if (spans != nullptr && r.attempts == 1) {
        r.root_span = spans->Begin(qi, 0, "query", "service", -1, at);
      }
      // Routing sees no failure oracle: a dead board is discovered the
      // same way a sick one is — through failures tripping its breaker.
      BoardId b;
      if (config_.cluster.replicate_graph) {
        // Any board can serve any vertex: join the shortest line among
        // boards whose breaker admits traffic; ties break low.
        bool found = false;
        uint64_t best_load = 0;
        b = 0;
        for (BoardId cand = 0; cand < boards_per_shard; ++cand) {
          if (sboards[cand].breaker == BreakerState::kOpen) {
            continue;
          }
          const uint64_t load =
              sboards[cand].queue.size() + sim.InflightOn(cand);
          if (!found || load < best_load) {
            found = true;
            best_load = load;
            b = cand;
          }
        }
        if (!found) {
          bounce(qi, 0, at, Reject::kBreakerOpen);
          return;
        }
      } else {
        // Prefer the partition owner; while its breaker is open, fail
        // over to a deterministic alternate board (the walker migrates
        // back to owned territory on its first steps). Partitioned mode
        // implies a single shard, so the shard sees every board.
        b = partition_->OwnerOf(sq.query.start);
        if (sboards[b].breaker == BreakerState::kOpen &&
            boards_per_shard > 1) {
          const BoardId shift = static_cast<BoardId>(
              1 + sq.query.start % (boards_per_shard - 1));
          b = static_cast<BoardId>((b + shift) % boards_per_shard);
        }
      }
      SBoard& sb = sboards[b];
      // Cooldown may have elapsed without the wake having fired yet.
      if (sb.breaker == BreakerState::kOpen && at >= sb.open_until) {
        sb.breaker = BreakerState::kHalfOpen;
        sb.probe_inflight = false;
      }
      if (sb.breaker == BreakerState::kOpen) {
        bounce(qi, b, at, Reject::kBreakerOpen);
        return;
      }
      if (sb.queue.size() >= config_.queue_capacity) {
        bounce(qi, b, at, Reject::kQueueFull);
        return;
      }
      sb.queue.push_back(qi);
      r.admitted_at = at;
      if (spans != nullptr) {
        r.queue_span =
            spans->Begin(qi, r.root_span, "queue", "service", global(b), at);
      }
      if (metrics != nullptr) {
        metrics
            ->GetHistogram("service.queue_depth",
                           {{"board", std::to_string(global(b))}})
            ->Observe(static_cast<double>(sb.queue.size()));
      }
      dispatch(b, at);
    };

    sim.set_on_retire([&](const WalkerEnd& end,
                          std::vector<VertexId>&& path) {
      const uint64_t qi = end.ticket;
      const BoardId b = end.board;
      SBoard& sb = sboards[b];
      Rec& r = recs[qi];
      const ServiceQuery& sq = arrivals[qi];
      if (sb.breaker == BreakerState::kHalfOpen && sb.probe_inflight) {
        sb.probe_inflight = false;  // this retire is the probe's verdict
      }
      if (end.Failed()) {
        ++sb.consecutive_failures;
        const bool trip =
            sb.breaker == BreakerState::kHalfOpen ||
            (sb.breaker == BreakerState::kClosed &&
             sb.consecutive_failures >= config_.breaker_failure_threshold);
        if (trip) {
          sb.breaker = BreakerState::kOpen;
          sb.open_until = end.at + config_.breaker_cooldown_cycles;
          ++ss.breaker_trips;
          if (metrics != nullptr) {
            metrics->GetCounter("service.breaker_trips",
                                {{"board", std::to_string(global(b))}})
                ->Increment();
          }
          trace_instant("breaker_trip", b, end.at);
          sim.ScheduleWake(MakeTag(kBreakerKind, b), sb.open_until);
          // Everything still queued behind the tripped board re-routes
          // (or retries into the cooldown) instead of waiting it out.
          std::vector<uint64_t> stranded = std::move(sb.queue);
          sb.queue.clear();
          for (const uint64_t qj : stranded) {
            bounce(qj, b, end.at, Reject::kBreakerOpen);
          }
        }
        bounce(qi, b, end.at, Reject::kWalkFailure);
      } else {
        sb.consecutive_failures = 0;
        if (sb.breaker == BreakerState::kHalfOpen) {
          sb.breaker = BreakerState::kClosed;  // probe succeeded
        }
        LIGHTRW_CHECK(r.outcome == QueryOutcome::kPending);
        r.outcome = QueryOutcome::kCompleted;
        r.path = std::move(path);
        const Cycle latency = end.at - sq.arrival;
        ss.latency_cycles.Add(static_cast<double>(latency));
        const bool late = sq.deadline > 0 && end.at > sq.deadline;
        if (late) {
          ++ss.deadline_violations;
        }
        close_trace(qi, end.at, /*breached=*/late,
                    late ? "deadline_missed" : "completed");
      }
      dispatch(b, end.at);
    });

    sim.set_on_wake([&](uint64_t tag, Cycle at) {
      const uint64_t kind = tag >> kTagKindShift;
      const uint64_t payload = tag & kTagPayloadMask;
      switch (kind) {
        case kArrivalKind:
        case kRetryKind:
          admit(payload, at);
          break;
        case kBreakerKind: {
          SBoard& sb = sboards[payload];
          if (sb.breaker == BreakerState::kOpen && at >= sb.open_until) {
            sb.breaker = BreakerState::kHalfOpen;
            sb.probe_inflight = false;
            dispatch(static_cast<BoardId>(payload), at);
          }
          break;
        }
        default:
          LIGHTRW_CHECK(false);
      }
    });

    for (uint64_t i = shard; i < arrivals.size(); i += num_shards) {
      sim.ScheduleWake(MakeTag(kArrivalKind, i), arrivals[i].arrival);
    }
    sim.Drain();
    sim.Finalize(&ss.cluster);
  };  // run_shard

  const uint32_t threads =
      SimThreadPool::ResolveThreads(config_.cluster.num_threads);
  SimThreadPool::ParallelFor(threads, num_shards, run_shard);

  // Merge in shard order: sums, sample appends, and trace interleaving
  // are all fixed by the shard decomposition, never by thread timing.
  for (uint32_t s = 0; s < num_shards; ++s) {
    ShardStats& ss = shard_stats[s];
    stats.retries += ss.retries;
    stats.breaker_trips += ss.breaker_trips;
    stats.deadline_violations += ss.deadline_violations;
    stats.queue_delay_cycles.Merge(ss.queue_delay_cycles);
    stats.latency_cycles.Merge(ss.latency_cycles);
    stats.cluster.Accumulate(ss.cluster);
    if (trace_shards[s] != nullptr) {
      shared_trace->MergeFrom(trace_shards[s].get());
    }
    if (span_shards[s] != nullptr) {
      shared_spans->MergeFrom(span_shards[s].get());
    }
  }
  stats.cluster.seconds = static_cast<double>(stats.cluster.cycles) /
                          config_.cluster.board.dram.clock_hz;
  // Deferred shared-registry histograms: replay the merged samples so
  // the exposition (including its order-sensitive float sum) matches a
  // single-shard, single-thread run byte for byte.
  if (metrics != nullptr) {
    if (stats.queue_delay_cycles.count() > 0) {
      obs::Histogram* h =
          metrics->GetHistogram("service.queue_delay_cycles");
      for (const double v : stats.queue_delay_cycles.raw_samples()) {
        h->Observe(v);
      }
    }
    if (stats.latency_cycles.count() > 0) {
      obs::Histogram* h = metrics->GetHistogram("service.latency_cycles");
      for (const double v : stats.latency_cycles.raw_samples()) {
        h->Observe(v);
      }
    }
  }

  // Settle the books: every query has exactly one terminal outcome.
  outcomes_.clear();
  outcomes_.reserve(recs.size());
  for (const Rec& r : recs) {
    LIGHTRW_CHECK(r.outcome != QueryOutcome::kPending);
    outcomes_.push_back(r.outcome);
    switch (r.outcome) {
      case QueryOutcome::kCompleted:
        ++stats.completed;
        if (r.shortened || r.uniform) {
          ++stats.degraded;
        }
        if (r.shortened) {
          ++stats.degraded_shortened;
        }
        if (r.uniform) {
          ++stats.degraded_uniform;
        }
        break;
      case QueryOutcome::kShedQueueFull:
        ++stats.shed_queue_full;
        break;
      case QueryOutcome::kShedBreaker:
        ++stats.shed_breaker;
        break;
      case QueryOutcome::kShedDeadline:
        ++stats.shed_deadline;
        break;
      case QueryOutcome::kFailed:
        ++stats.failed;
        break;
      case QueryOutcome::kPending:
        break;
    }
  }
  LIGHTRW_CHECK_EQ(stats.completed + stats.Shed() + stats.failed,
                   stats.offered);
  stats.cluster.queries = stats.completed;
  stats.cycles = stats.cluster.cycles;
  stats.seconds = stats.cluster.seconds;

  if (output != nullptr) {
    for (Rec& r : recs) {
      output->vertices.insert(output->vertices.end(), r.path.begin(),
                              r.path.end());
      output->offsets.push_back(
          static_cast<uint32_t>(output->vertices.size()));
    }
  }
  return stats;
}

}  // namespace lightrw::service
