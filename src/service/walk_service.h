// WalkService: deterministic simulated-time serving front end over the
// distributed cluster simulation.
//
// An open-loop arrival stream (service::GenerateArrivals) is admitted
// into bounded per-board queues and dispatched earliest-deadline-first
// onto ClusterSim walker slots. Overload is handled in four layers, in
// escalation order:
//
//   1. backpressure  bounded admission queues; a full queue bounces the
//                    query instead of growing without bound
//   2. retries       a bounced or failed query is re-admitted after an
//                    exponential backoff, up to `retry_budget` times —
//                    board failovers (reliability::FaultConfig) surface
//                    here as retryable failures, so the two compose
//   3. breaker       a per-board circuit breaker trips after
//                    `breaker_failure_threshold` consecutive failures,
//                    rejects admissions while open, and half-opens after
//                    a cooldown to probe with a single query
//   4. degradation   best-effort queries dispatched from a congested
//                    queue are shortened and/or degraded from weighted
//                    (PWRS) to uniform stepping, trading result quality
//                    for per-step cost; every degraded query is recorded
//
// Everything runs on the simulated clock and every decision draws from
// seeded generators: the same config yields byte-identical admit, shed,
// and degrade counts. At low load with no faults the service produces
// exactly the walks DistributedEngine::Run produces for the same query
// list (walk sampling is keyed on the query index — see cluster_sim.h).

#ifndef LIGHTRW_SERVICE_WALK_SERVICE_H_
#define LIGHTRW_SERVICE_WALK_SERVICE_H_

#include <cstdint>
#include <vector>

#include "baseline/engine.h"
#include "common/histogram.h"
#include "common/status.h"
#include "distributed/cluster_sim.h"
#include "distributed/partition.h"
#include "lightrw/report.h"
#include "service/arrival.h"

namespace lightrw::service {

struct ServiceConfig {
  distributed::DistributedConfig cluster;
  ArrivalConfig arrivals;
  // Bounded per-board admission queue (layer 1).
  uint32_t queue_capacity = 64;
  // Re-admissions allowed per query after a bounce or a failure
  // (layer 2); 0 disables retries. Attempt n backs off
  // retry_backoff_cycles << (n - 1).
  uint32_t retry_budget = 2;
  uint64_t retry_backoff_cycles = 512;
  // Circuit breaker (layer 3): consecutive failures on one board that
  // trip it, and how long it stays open before half-opening.
  uint32_t breaker_failure_threshold = 4;
  uint64_t breaker_cooldown_cycles = 1 << 14;
  // Graceful degradation (layer 4): queue-fill thresholds (fraction of
  // queue_capacity at dispatch) above which a best-effort query is
  // shortened to degrade_shorten_factor of its requested length, and
  // additionally stepped uniformly instead of by PWRS.
  bool degrade_enabled = true;
  double degrade_shorten_occupancy = 0.5;
  double degrade_uniform_occupancy = 0.75;
  double degrade_shorten_factor = 0.5;
  // Independent admission shards, each owning an equal board group plus
  // the arrival subset {i : i mod shards == shard} and its own queues,
  // breakers, and retry timers. Shards share nothing while running and
  // merge in shard order, so results are fixed by this value alone (the
  // thread count only schedules shards; see common/sim_thread_pool.h).
  // Values > 1 require replicate_graph (any shard can serve any vertex)
  // and no fault injection (failover couples boards), and must divide
  // the board count evenly. 1 = the single global event loop.
  uint32_t admission_shards = 1;
};

// Non-OK for out-of-range fields (each named in the message). Also
// validates the nested cluster and arrival configurations.
Status ValidateServiceConfig(const ServiceConfig& config);

// Terminal disposition of one query. Exactly one applies: a query is
// never both shed and completed.
enum class QueryOutcome : uint8_t {
  kPending = 0,       // not yet decided (never visible after Run)
  kCompleted,         // walk delivered (possibly degraded or late)
  kShedQueueFull,     // bounced by full queues until the budget ran out
  kShedBreaker,       // bounced by open breakers until the budget ran out
  kShedDeadline,      // deadline already passed at dispatch time
  kFailed,            // walk attempts kept failing (faults) past budget
};

struct ServiceRunStats {
  uint64_t offered = 0;    // arrivals generated
  uint64_t completed = 0;  // walks delivered
  uint64_t failed = 0;
  uint64_t shed_queue_full = 0;
  uint64_t shed_breaker = 0;
  uint64_t shed_deadline = 0;
  // Completed walks that finished after their deadline.
  uint64_t deadline_violations = 0;
  uint64_t retries = 0;  // re-admissions scheduled
  // Queries whose delivered walk was degraded (uniform ⊆ shortened ⊆
  // degraded; degraded counts each query once).
  uint64_t degraded = 0;
  uint64_t degraded_shortened = 0;
  uint64_t degraded_uniform = 0;
  uint64_t breaker_trips = 0;
  uint64_t cycles = 0;  // simulated makespan
  double seconds = 0.0;
  // Admission-to-dispatch delay and arrival-to-completion latency of
  // dispatched / completed queries, in cycles.
  SampleStats queue_delay_cycles;
  SampleStats latency_cycles;
  // Underlying cluster datapath stats (dram, network, reliability).
  distributed::DistributedRunStats cluster;

  uint64_t Shed() const {
    return shed_queue_full + shed_breaker + shed_deadline;
  }
  double ShedRate() const {
    return offered == 0 ? 0.0
                        : static_cast<double>(Shed()) /
                              static_cast<double>(offered);
  }
  // Fraction of delivered walks that missed their deadline. Defined over
  // completions, not offers: shed queries are already accounted by
  // ShedRate, and a delivered-but-late result is the distinct failure
  // mode this measures.
  double ViolationRate() const {
    return completed == 0 ? 0.0
                          : static_cast<double>(deadline_violations) /
                                static_cast<double>(completed);
  }
  // Completions that met their deadline, per simulated second.
  double GoodputPerSecond() const {
    return seconds > 0.0
               ? static_cast<double>(completed - deadline_violations) /
                     seconds
               : 0.0;
  }
  core::SloSummary Slo() const;
};

class WalkService {
 public:
  // All referenced objects must outlive the service.
  WalkService(const graph::CsrGraph* graph, const apps::WalkApp* app,
              const distributed::Partition* partition,
              const ServiceConfig& config);

  // Generates the arrival stream and serves it to completion. Optional
  // `output` receives one path per offered query in arrival order (shed
  // and failed queries contribute empty paths).
  StatusOr<ServiceRunStats> Run(baseline::WalkOutput* output = nullptr);

  // Per-query dispositions of the last Run, indexed by arrival order.
  const std::vector<QueryOutcome>& outcomes() const { return outcomes_; }

 private:
  const graph::CsrGraph* graph_;
  const apps::WalkApp* app_;
  const distributed::Partition* partition_;
  ServiceConfig config_;
  std::vector<QueryOutcome> outcomes_;
};

}  // namespace lightrw::service

#endif  // LIGHTRW_SERVICE_WALK_SERVICE_H_
