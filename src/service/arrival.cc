#include "service/arrival.h"

#include <cmath>

#include "rng/rng.h"

namespace lightrw::service {

Status ValidateArrivalConfig(const ArrivalConfig& config) {
  if (config.num_queries == 0) {
    return InvalidArgumentError("arrivals.num_queries must be > 0");
  }
  if (config.walk_length == 0) {
    return InvalidArgumentError("arrivals.walk_length must be > 0");
  }
  if (!(config.rate_per_kcycle > 0.0)) {
    return InvalidArgumentError("arrivals.rate_per_kcycle must be > 0");
  }
  if (!(config.burst_factor > 0.0)) {
    return InvalidArgumentError("arrivals.burst_factor must be > 0");
  }
  if (config.burst_on_cycles == 0 && config.burst_off_cycles > 0) {
    return InvalidArgumentError(
        "arrivals.burst_off_cycles without burst_on_cycles never bursts");
  }
  if (config.best_effort_fraction < 0.0 ||
      config.best_effort_fraction > 1.0) {
    return InvalidArgumentError(
        "arrivals.best_effort_fraction must be within [0, 1]");
  }
  return Status::Ok();
}

StatusOr<std::vector<ServiceQuery>> GenerateArrivals(
    const ArrivalConfig& config, const graph::CsrGraph& graph) {
  LIGHTRW_RETURN_IF_ERROR(ValidateArrivalConfig(config));
  std::vector<graph::VertexId> starts;
  starts.reserve(graph.num_vertices());
  for (graph::VertexId v = 0; v < graph.num_vertices(); ++v) {
    if (graph.Degree(v) > 0) {
      starts.push_back(v);
    }
  }
  if (starts.empty()) {
    return FailedPreconditionError(
        "graph has no non-isolated vertex to start walks from");
  }

  rng::Xoshiro256StarStar gen(config.seed ^ 0xa77e5a15ULL);
  const uint64_t period = config.burst_on_cycles + config.burst_off_cycles;
  std::vector<ServiceQuery> out;
  out.reserve(config.num_queries);
  double t = 0.0;  // continuous arrival clock, floored per query
  for (uint64_t i = 0; i < config.num_queries; ++i) {
    double rate = config.rate_per_kcycle;
    if (period > 0) {
      const uint64_t phase = static_cast<uint64_t>(t) % period;
      if (phase < config.burst_on_cycles) {
        rate *= config.burst_factor;
      }
    }
    // Exponential inter-arrival gap with mean 1024 / rate cycles.
    t += -std::log1p(-gen.NextUnit()) * 1024.0 / rate;
    ServiceQuery q;
    q.arrival = static_cast<hwsim::Cycle>(t);
    q.query.start =
        starts[static_cast<size_t>(gen.NextBounded(starts.size()))];
    q.query.length = config.walk_length;
    if (config.deadline_cycles > 0) {
      q.deadline = q.arrival + config.deadline_cycles;
    }
    q.best_effort = gen.NextUnit() < config.best_effort_fraction;
    out.push_back(q);
  }
  return out;
}

}  // namespace lightrw::service
