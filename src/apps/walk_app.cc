#include "apps/walk_app.h"
#include "apps/ppr.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "rng/rng.h"

namespace lightrw::apps {

MetaPathApp::MetaPathApp(std::vector<Relation> relation_path)
    : path_(std::move(relation_path)) {
  LIGHTRW_CHECK(!path_.empty());
}

Weight MetaPathApp::DynamicWeight(const CsrGraph& /*graph*/,
                                  const WalkState& state, VertexId /*dst*/,
                                  Weight static_weight,
                                  Relation relation) const {
  if (state.step >= path_.size()) {
    return 0;  // beyond the relation path nothing is sampleable
  }
  return relation == path_[state.step] ? static_weight : 0;
}

Node2VecApp::Node2VecApp(double p, double q) : p_(p), q_(q) {
  LIGHTRW_CHECK(p > 0.0);
  LIGHTRW_CHECK(q > 0.0);
  return_scale_ = static_cast<Weight>(std::lround(kWeightScale / p));
  distant_scale_ = static_cast<Weight>(std::lround(kWeightScale / q));
  LIGHTRW_CHECK(return_scale_ > 0);
  LIGHTRW_CHECK(distant_scale_ > 0);
}

Weight Node2VecApp::DynamicWeight(const CsrGraph& graph,
                                  const WalkState& state, VertexId dst,
                                  Weight static_weight,
                                  Relation /*relation*/) const {
  if (state.prev == graph::kInvalidVertex) {
    // First step: no second-order context yet; behave like a static walk.
    return static_weight * kWeightScale;
  }
  if (dst == state.prev) {
    return static_weight * return_scale_;  // Eq. (2a): w*/p
  }
  if (graph.HasEdge(state.prev, dst)) {
    return static_weight * kWeightScale;  // Eq. (2b): w*
  }
  return static_weight * distant_scale_;  // Eq. (2c): w*/q
}

PprApp::PprApp(double alpha) : alpha_(alpha) {
  LIGHTRW_CHECK(alpha > 0.0 && alpha < 1.0);
}

Weight PprApp::DynamicWeight(const CsrGraph& /*graph*/,
                             const WalkState& /*state*/, VertexId /*dst*/,
                             Weight static_weight,
                             Relation /*relation*/) const {
  return static_weight;
}

Weight StaticWalkApp::DynamicWeight(const CsrGraph& /*graph*/,
                                    const WalkState& /*state*/,
                                    VertexId /*dst*/, Weight static_weight,
                                    Relation /*relation*/) const {
  return static_weight;
}

std::vector<Relation> MakeRandomRelationPath(const CsrGraph& graph,
                                             uint32_t length, uint64_t seed) {
  LIGHTRW_CHECK(length >= 1);
  // Collect the relations that actually occur so every path entry is
  // realizable somewhere in the graph.
  bool seen[256] = {};
  for (const Relation r : graph.col_relation()) {
    seen[r] = true;
  }
  std::vector<Relation> present;
  for (int r = 0; r < 256; ++r) {
    if (seen[r]) {
      present.push_back(static_cast<Relation>(r));
    }
  }
  LIGHTRW_CHECK(!present.empty());
  rng::Xoshiro256StarStar gen(seed);
  std::vector<Relation> path(length);
  for (auto& r : path) {
    r = present[gen.NextBounded(present.size())];
  }
  return path;
}

std::vector<WalkQuery> MakeVertexQueries(const CsrGraph& graph,
                                         uint32_t length, uint64_t seed,
                                         size_t max_queries) {
  std::vector<WalkQuery> queries;
  queries.reserve(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    if (graph.Degree(v) > 0) {
      queries.push_back(WalkQuery{v, length});
    }
  }
  // Fisher-Yates shuffle, as ThunderRW shuffles its query set.
  rng::Xoshiro256StarStar gen(seed);
  for (size_t i = queries.size(); i > 1; --i) {
    const size_t j = gen.NextBounded(i);
    std::swap(queries[i - 1], queries[j]);
  }
  if (max_queries != 0 && queries.size() > max_queries) {
    queries.resize(max_queries);
  }
  return queries;
}

}  // namespace lightrw::apps
