// Walk application interface: the application-specific weight update
// function F of the paper (w^t_{a,b} = F(w*_{a,b}, state)), plus query and
// per-walk state types shared by the CPU baseline and the LightRW engines.

#ifndef LIGHTRW_APPS_WALK_APP_H_
#define LIGHTRW_APPS_WALK_APP_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/csr.h"
#include "graph/types.h"

namespace lightrw::apps {

using graph::CsrGraph;
using graph::Relation;
using graph::VertexId;
using graph::Weight;

// One random walk query: a starting vertex and a requested path length
// (number of steps to take).
struct WalkQuery {
  VertexId start = 0;
  uint32_t length = 0;
};

// Mutable per-walk context available to the weight function.
struct WalkState {
  uint32_t step = 0;                        // 0-based index of current step
  VertexId curr = graph::kInvalidVertex;    // vertex being expanded
  VertexId prev = graph::kInvalidVertex;    // vertex of the previous step
};

// Application-specific weight update function. Implementations must be
// stateless with respect to the walk (all per-walk context arrives in
// WalkState) so one instance can serve many concurrent queries.
class WalkApp {
 public:
  virtual ~WalkApp() = default;

  virtual std::string name() const = 0;

  // Dynamic sampling weight of the candidate edge (state.curr -> dst) with
  // static weight `static_weight` and relation `relation`. Returning 0
  // excludes the edge from sampling at this step.
  virtual Weight DynamicWeight(const CsrGraph& graph, const WalkState& state,
                               VertexId dst, Weight static_weight,
                               Relation relation) const = 0;

  // True if the weight function reads the previous vertex's adjacency list
  // (Node2Vec does). The memory models charge the extra traffic and the
  // engines provide the membership structure.
  virtual bool needs_prev_neighbors() const { return false; }

  // Probability that the walk terminates after each completed step
  // (geometric stopping, used by PPR-style apps). Engines draw one coin
  // per step; 0 disables early stopping.
  virtual double stop_probability() const { return 0.0; }
};

// MetaPath (Eq. 1): at step t only edges whose relation equals the t-th
// entry of the relation path are sampleable, with their static weight;
// all other edges get weight zero. Queries are truncated to the relation
// path length.
class MetaPathApp : public WalkApp {
 public:
  explicit MetaPathApp(std::vector<Relation> relation_path);

  std::string name() const override { return "MetaPath"; }

  Weight DynamicWeight(const CsrGraph& graph, const WalkState& state,
                       VertexId dst, Weight static_weight,
                       Relation relation) const override;

  const std::vector<Relation>& relation_path() const { return path_; }

 private:
  std::vector<Relation> path_;
};

// Node2Vec (Eq. 2): second-order walk. The return edge (dst == prev) is
// scaled by 1/p; edges to vertices adjacent to prev keep their weight;
// other edges are scaled by 1/q. Weights are returned in fixed point
// (scaled by kWeightScale) so fractional 1/p, 1/q survive integer
// arithmetic; the common factor cancels in the sampling probabilities.
class Node2VecApp : public WalkApp {
 public:
  // Fixed-point scale applied to all Node2Vec weights.
  static constexpr Weight kWeightScale = 256;

  Node2VecApp(double p, double q);

  std::string name() const override { return "Node2Vec"; }

  Weight DynamicWeight(const CsrGraph& graph, const WalkState& state,
                       VertexId dst, Weight static_weight,
                       Relation relation) const override;

  bool needs_prev_neighbors() const override { return true; }

  double p() const { return p_; }
  double q() const { return q_; }

 private:
  double p_;
  double q_;
  Weight return_scale_;   // round(kWeightScale / p)
  Weight distant_scale_;  // round(kWeightScale / q)
};

// DeepWalk-style first-order walk: the dynamic weight is simply the static
// edge weight (or uniform if the graph is unweighted). Included as the
// static-walk contrast case.
class StaticWalkApp : public WalkApp {
 public:
  std::string name() const override { return "StaticWalk"; }

  Weight DynamicWeight(const CsrGraph& graph, const WalkState& state,
                       VertexId dst, Weight static_weight,
                       Relation relation) const override;
};

// Builds a relation path of the given length that is guaranteed to be
// realizable in `graph` (each entry is drawn from relations that actually
// occur), mirroring the paper's random MetaPath query setup.
std::vector<Relation> MakeRandomRelationPath(const CsrGraph& graph,
                                             uint32_t length, uint64_t seed);

// Builds the paper's standard query set: one query per vertex with nonzero
// degree, shuffled, each with the given length. If max_queries is nonzero
// the set is truncated after shuffling.
std::vector<WalkQuery> MakeVertexQueries(const CsrGraph& graph,
                                         uint32_t length, uint64_t seed,
                                         size_t max_queries = 0);

}  // namespace lightrw::apps

#endif  // LIGHTRW_APPS_WALK_APP_H_
