#include "apps/weighted_metapath.h"

#include "common/check.h"

namespace lightrw::apps {

WeightedMetaPathApp::WeightedMetaPathApp(
    std::vector<RelationTable> step_tables)
    : tables_(std::move(step_tables)) {
  LIGHTRW_CHECK(!tables_.empty());
}

WeightedMetaPathApp WeightedMetaPathApp::FromRelationPath(
    const std::vector<Relation>& path) {
  LIGHTRW_CHECK(!path.empty());
  std::vector<RelationTable> tables(path.size());
  for (size_t t = 0; t < path.size(); ++t) {
    tables[t].fill(0);
    tables[t][path[t]] = 1;
  }
  return WeightedMetaPathApp(std::move(tables));
}

Weight WeightedMetaPathApp::DynamicWeight(const CsrGraph& /*graph*/,
                                          const WalkState& state,
                                          VertexId /*dst*/,
                                          Weight static_weight,
                                          Relation relation) const {
  if (state.step >= tables_.size()) {
    return 0;
  }
  return static_weight * tables_[state.step][relation];
}

}  // namespace lightrw::apps
