// Personalized PageRank (PPR) random walks.
//
// ThunderRW's application suite includes PPR alongside DeepWalk, Node2Vec
// and MetaPath; LightRW's walk engines support it through the per-step
// stop probability: a walker terminates after each step with probability
// alpha, so the distribution of walk end points from a source s estimates
// the personalized PageRank vector of s (the standard Monte Carlo
// estimator).

#ifndef LIGHTRW_APPS_PPR_H_
#define LIGHTRW_APPS_PPR_H_

#include "apps/walk_app.h"

namespace lightrw::apps {

// First-order weighted walk with geometric termination.
class PprApp : public WalkApp {
 public:
  // alpha in (0, 1): per-step stop probability (PageRank damping is
  // 1 - alpha; the common choice alpha = 0.15).
  explicit PprApp(double alpha);

  std::string name() const override { return "PPR"; }

  Weight DynamicWeight(const CsrGraph& graph, const WalkState& state,
                       VertexId dst, Weight static_weight,
                       Relation relation) const override;

  double stop_probability() const override { return alpha_; }

  double alpha() const { return alpha_; }

 private:
  double alpha_;
};

}  // namespace lightrw::apps

#endif  // LIGHTRW_APPS_PPR_H_
