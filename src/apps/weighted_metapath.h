// Weighted MetaPath walks (Vahedian et al., RecSys'16/'17): a
// generalization of Eq. (1) where each step carries a full per-relation
// weight table instead of a binary match. The plain MetaPath of the paper
// is the special case where the table is 1 for the step's relation and 0
// elsewhere. Useful for multi-relational recommendation, and exercises
// the engines with weight functions whose support is not 0/1.

#ifndef LIGHTRW_APPS_WEIGHTED_METAPATH_H_
#define LIGHTRW_APPS_WEIGHTED_METAPATH_H_

#include <array>
#include <vector>

#include "apps/walk_app.h"

namespace lightrw::apps {

class WeightedMetaPathApp : public WalkApp {
 public:
  // Per-step multiplier of each relation: at step t the dynamic weight of
  // an edge with relation r is static_weight * step_tables[t][r]. Walks
  // terminate past the last step table.
  using RelationTable = std::array<Weight, 256>;

  explicit WeightedMetaPathApp(std::vector<RelationTable> step_tables);

  // Convenience: builds the binary tables equivalent to MetaPathApp.
  static WeightedMetaPathApp FromRelationPath(
      const std::vector<Relation>& path);

  std::string name() const override { return "WeightedMetaPath"; }

  Weight DynamicWeight(const CsrGraph& graph, const WalkState& state,
                       VertexId dst, Weight static_weight,
                       Relation relation) const override;

  size_t path_length() const { return tables_.size(); }

 private:
  std::vector<RelationTable> tables_;
};

}  // namespace lightrw::apps

#endif  // LIGHTRW_APPS_WEIGHTED_METAPATH_H_
