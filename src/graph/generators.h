// Synthetic graph generators.
//
// The paper evaluates on five public graphs (youtube, us-patents,
// liveJournal, orkut, uk2002) plus RMAT synthetics. The public datasets are
// not available offline, so MakeDatasetStandIn produces RMAT-based graphs
// matching each dataset's |V|, |E|, directedness, and degree skew, optionally
// scaled down by a power of two so the full benchmark suite runs quickly.

#ifndef LIGHTRW_GRAPH_GENERATORS_H_
#define LIGHTRW_GRAPH_GENERATORS_H_

#include <cstdint>
#include <string>

#include "graph/csr.h"
#include "graph/types.h"

namespace lightrw::graph {

// Options for the recursive-matrix (R-MAT) generator of Chakrabarti et al.
struct RmatOptions {
  // Number of vertices is 2^scale.
  uint32_t scale = 12;
  // Number of generated edges is edge_factor * 2^scale (before dedup).
  uint32_t edge_factor = 8;
  // Quadrant probabilities; must sum to 1. Defaults are the Graph500
  // parameters, which give a power-law degree distribution.
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  double d = 0.05;
  bool undirected = false;
  uint64_t seed = 1;
  // Attribute randomization (applied via GraphBuilder::RandomizeAttributes).
  uint8_t num_labels = 4;
  uint8_t num_relations = 4;
  Weight max_weight = 16;
};

// Generates an R-MAT graph. Duplicate edges are removed, so the final edge
// count is slightly below edge_factor * 2^scale.
CsrGraph GenerateRmat(const RmatOptions& options);

// Generates a uniform random (Erdős–Rényi G(n, m)) graph: m edges with
// independently uniform endpoints. Used as the non-skewed contrast case in
// cache experiments.
CsrGraph GenerateErdosRenyi(VertexId num_vertices, uint64_t num_edges,
                            bool undirected, uint64_t seed);

// The five real-world datasets of the paper's Table 2.
enum class Dataset {
  kYoutube,      // YT: 1.14M / 2.99M, undirected, web
  kUsPatents,    // UP: 3.78M / 16.52M, directed, citation
  kLiveJournal,  // LJ: 4.8M / 68.9M, undirected, social
  kOrkut,        // OR: 3.1M / 117.2M, undirected, social
  kUk2002,       // UK: 18.52M / 298.11M, directed, web crawl
};

inline constexpr Dataset kAllDatasets[] = {
    Dataset::kYoutube, Dataset::kUsPatents, Dataset::kLiveJournal,
    Dataset::kOrkut, Dataset::kUk2002};

// Shape parameters of a dataset stand-in.
struct DatasetInfo {
  const char* name;        // paper's short name, e.g. "LJ"
  const char* full_name;   // e.g. "liveJournal"
  uint64_t num_vertices;   // paper's |V|
  uint64_t num_edges;      // paper's |E|
  bool undirected;
  double rmat_a;           // degree-skew knob for the stand-in
};

const DatasetInfo& GetDatasetInfo(Dataset dataset);

// Builds a stand-in for `dataset` with |V| and |E| divided by
// 2^scale_shift. scale_shift 0 reproduces the paper's sizes (slow on one
// core); benchmarks default to 6-8.
CsrGraph MakeDatasetStandIn(Dataset dataset, uint32_t scale_shift,
                            uint64_t seed);

}  // namespace lightrw::graph

#endif  // LIGHTRW_GRAPH_GENERATORS_H_
