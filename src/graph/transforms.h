// Graph transformations: reversal, degree-sorted relabeling, and subgraph
// extraction.
//
// Degree-sorted relabeling is the preprocessing alternative to the
// degree-aware cache that the paper contrasts in §5.1 (Balaji & Lucia):
// renumber vertices in descending degree order so hot vertices occupy a
// dense id range that a plain cache maps well — at the cost of an offline
// pass over the whole graph, which LightRW's runtime DAC avoids.

#ifndef LIGHTRW_GRAPH_TRANSFORMS_H_
#define LIGHTRW_GRAPH_TRANSFORMS_H_

#include <vector>

#include "graph/csr.h"

namespace lightrw::graph {

// Returns the reverse graph (every edge (u, v, w, r) becomes (v, u, w, r)).
CsrGraph ReverseGraph(const CsrGraph& graph);

// The result of a relabeling transform.
struct RelabeledGraph {
  CsrGraph graph;
  // new_id[v] is v's id in the relabeled graph.
  std::vector<VertexId> new_id;
  // old_id[v'] is the original id of relabeled vertex v'.
  std::vector<VertexId> old_id;
};

// Renumbers vertices in descending degree order (ties by original id) and
// rebuilds the CSR with translated endpoints and preserved attributes.
RelabeledGraph SortByDegree(const CsrGraph& graph);

// Extracts the subgraph induced by vertices whose label is in `labels`,
// densely renumbered. Edges with either endpoint outside the set are
// dropped.
RelabeledGraph InducedSubgraphByLabels(const CsrGraph& graph,
                                       std::span<const Label> labels);

}  // namespace lightrw::graph

#endif  // LIGHTRW_GRAPH_TRANSFORMS_H_
