#include "graph/csr.h"

#include <algorithm>
#include <cstdio>

namespace lightrw::graph {

bool CsrGraph::HasEdge(VertexId u, VertexId v) const {
  const auto neighbors = Neighbors(u);
  return std::binary_search(neighbors.begin(), neighbors.end(), v);
}

VertexId CsrGraph::CountNonIsolatedVertices() const {
  VertexId count = 0;
  for (VertexId v = 0; v < num_vertices(); ++v) {
    if (Degree(v) > 0) {
      ++count;
    }
  }
  return count;
}

std::string CsrGraph::Summary() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "|V|=%u |E|=%llu davg=%.1f dmax=%u",
                num_vertices(),
                static_cast<unsigned long long>(num_edges()),
                AverageDegree(), max_degree_);
  return buf;
}

}  // namespace lightrw::graph
