// Weakly-connected components via union-find. Used to reason about walk
// reachability: a walk corpus can only ever cover the component(s) its
// start vertices live in, so coverage checks and partition diagnostics
// need component structure.

#ifndef LIGHTRW_GRAPH_COMPONENTS_H_
#define LIGHTRW_GRAPH_COMPONENTS_H_

#include <cstdint>
#include <vector>

#include "graph/csr.h"

namespace lightrw::graph {

// The weakly-connected components of a graph (edge direction ignored).
class ConnectedComponents {
 public:
  // O(|V| + |E| alpha) union-find pass.
  explicit ConnectedComponents(const CsrGraph& graph);

  uint32_t num_components() const { return num_components_; }

  // Dense component id of v, in [0, num_components).
  uint32_t ComponentOf(VertexId v) const { return component_[v]; }

  // Vertices per component.
  const std::vector<uint32_t>& sizes() const { return sizes_; }

  // Id of the largest component.
  uint32_t LargestComponent() const;

  // Fraction of vertices in the largest component.
  double LargestComponentShare() const;

  bool SameComponent(VertexId u, VertexId v) const {
    return component_[u] == component_[v];
  }

 private:
  std::vector<uint32_t> component_;
  std::vector<uint32_t> sizes_;
  uint32_t num_components_ = 0;
};

}  // namespace lightrw::graph

#endif  // LIGHTRW_GRAPH_COMPONENTS_H_
