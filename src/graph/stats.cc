#include "graph/stats.h"

#include <algorithm>
#include <numeric>

namespace lightrw::graph {

std::vector<VertexId> VerticesByDegreeDescending(const CsrGraph& graph) {
  std::vector<VertexId> order(graph.num_vertices());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    const uint32_t da = graph.Degree(a);
    const uint32_t db = graph.Degree(b);
    return da != db ? da > db : a < b;
  });
  return order;
}

double EdgeShareOfTopVertices(const CsrGraph& graph, size_t top_k) {
  if (graph.num_edges() == 0) {
    return 0.0;
  }
  const auto order = VerticesByDegreeDescending(graph);
  const size_t k = std::min(top_k, order.size());
  uint64_t covered = 0;
  for (size_t i = 0; i < k; ++i) {
    covered += graph.Degree(order[i]);
  }
  return static_cast<double>(covered) / static_cast<double>(graph.num_edges());
}

DegreeStats ComputeDegreeStats(const CsrGraph& graph) {
  DegreeStats stats;
  const VertexId n = graph.num_vertices();
  if (n == 0) {
    return stats;
  }
  std::vector<uint32_t> degrees(n);
  for (VertexId v = 0; v < n; ++v) {
    degrees[v] = graph.Degree(v);
  }
  std::sort(degrees.begin(), degrees.end());
  stats.max_degree = degrees.back();
  stats.average_degree = graph.AverageDegree();
  stats.median_degree = n % 2 == 1
                            ? degrees[n / 2]
                            : 0.5 * (degrees[n / 2 - 1] + degrees[n / 2]);

  const uint64_t total_edges = graph.num_edges();
  if (total_edges > 0) {
    auto top_share = [&](double fraction) {
      const size_t k = std::max<size_t>(1, static_cast<size_t>(fraction * n));
      uint64_t covered = 0;
      for (size_t i = 0; i < k; ++i) {
        covered += degrees[n - 1 - i];
      }
      return static_cast<double>(covered) / static_cast<double>(total_edges);
    };
    stats.top1pct_edge_share = top_share(0.01);
    stats.top10pct_edge_share = top_share(0.10);

    // Gini over the ascending-sorted degree sequence.
    double weighted = 0.0;
    for (VertexId i = 0; i < n; ++i) {
      weighted += static_cast<double>(i + 1) * degrees[i];
    }
    const double mean = static_cast<double>(total_edges) / n;
    stats.degree_gini =
        (2.0 * weighted) / (n * n * mean) - (static_cast<double>(n) + 1) / n;
  }
  return stats;
}

}  // namespace lightrw::graph
