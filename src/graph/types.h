// Core graph value types shared across the library.

#ifndef LIGHTRW_GRAPH_TYPES_H_
#define LIGHTRW_GRAPH_TYPES_H_

#include <cstdint>
#include <limits>

namespace lightrw::graph {

// Vertex identifier. 32 bits covers every graph in the paper (largest is
// uk-2002 with 18.5M vertices) and matches the FPGA word width.
using VertexId = uint32_t;

// Index into the CSR col_index array.
using EdgeIndex = uint64_t;

// Integer sampling weight. The paper's samplers operate on unnormalized
// integer weights (the Eq. (8) comparison multiplies a weight by 2^32), so
// weights are 32-bit unsigned integers throughout.
using Weight = uint32_t;

// Vertex label, used by MetaPath to type vertices (author/paper/venue...).
using Label = uint8_t;

// Edge relation, used by MetaPath to type edges.
using Relation = uint8_t;

inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();

// An edge as supplied to GraphBuilder.
struct EdgeInput {
  VertexId src = 0;
  VertexId dst = 0;
  Weight weight = 1;
  Relation relation = 0;
};

// Bytes occupied by one col_index entry in the modeled FPGA memory layout:
// destination vertex (4 B) packed with weight/relation (4 B). All DRAM
// traffic accounting in the simulator uses this figure.
inline constexpr uint64_t kBytesPerEdgeRecord = 8;

// Bytes occupied by one row_index entry ({neighbor address, degree} pair).
inline constexpr uint64_t kBytesPerRowRecord = 8;

}  // namespace lightrw::graph

#endif  // LIGHTRW_GRAPH_TYPES_H_
