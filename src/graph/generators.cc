#include "graph/generators.h"

#include <cmath>

#include "common/bits.h"
#include "common/check.h"
#include "graph/builder.h"
#include "rng/rng.h"

namespace lightrw::graph {

namespace {

// Draws one R-MAT edge by descending `scale` levels of the recursive
// 2x2 partition.
EdgeInput DrawRmatEdge(const RmatOptions& options,
                       rng::Xoshiro256StarStar& gen) {
  VertexId src = 0;
  VertexId dst = 0;
  for (uint32_t level = 0; level < options.scale; ++level) {
    const double r = gen.NextUnit();
    src <<= 1;
    dst <<= 1;
    if (r < options.a) {
      // top-left: no bits set
    } else if (r < options.a + options.b) {
      dst |= 1;
    } else if (r < options.a + options.b + options.c) {
      src |= 1;
    } else {
      src |= 1;
      dst |= 1;
    }
  }
  return EdgeInput{src, dst, 1, 0};
}

}  // namespace

CsrGraph GenerateRmat(const RmatOptions& options) {
  LIGHTRW_CHECK(options.scale >= 1 && options.scale <= 30);
  const double total = options.a + options.b + options.c + options.d;
  LIGHTRW_CHECK(std::abs(total - 1.0) < 1e-9);

  const VertexId n = VertexId{1} << options.scale;
  const uint64_t m = static_cast<uint64_t>(options.edge_factor) * n;
  rng::Xoshiro256StarStar gen(options.seed);
  GraphBuilder builder(n, options.undirected);
  builder.Reserve(m);
  for (uint64_t i = 0; i < m; ++i) {
    EdgeInput e = DrawRmatEdge(options, gen);
    if (e.src == e.dst) {
      continue;  // drop self loops
    }
    builder.AddEdge(e.src, e.dst);
  }
  builder.RandomizeAttributes(options.num_labels, options.num_relations,
                              options.max_weight, options.seed ^ 0xa5a5a5a5ULL);
  return std::move(builder).Build();
}

CsrGraph GenerateErdosRenyi(VertexId num_vertices, uint64_t num_edges,
                            bool undirected, uint64_t seed) {
  LIGHTRW_CHECK(num_vertices >= 2);
  rng::Xoshiro256StarStar gen(seed);
  GraphBuilder builder(num_vertices, undirected);
  builder.Reserve(num_edges);
  for (uint64_t i = 0; i < num_edges; ++i) {
    const VertexId src = static_cast<VertexId>(gen.NextBounded(num_vertices));
    VertexId dst = static_cast<VertexId>(gen.NextBounded(num_vertices));
    if (src == dst) {
      dst = (dst + 1) % num_vertices;
    }
    builder.AddEdge(src, dst);
  }
  builder.RandomizeAttributes(/*num_labels=*/4, /*num_relations=*/4,
                              /*max_weight=*/16, seed ^ 0x5a5a5a5aULL);
  return std::move(builder).Build();
}

const DatasetInfo& GetDatasetInfo(Dataset dataset) {
  // |V|, |E| from the paper's Table 2. rmat_a encodes how skewed the degree
  // distribution is: web crawls (UK) are the most skewed, citation graphs
  // the least.
  static const DatasetInfo kInfos[] = {
      {"YT", "youtube", 1140000, 2990000, true, 0.57},
      {"UP", "us-patents", 3780000, 16520000, false, 0.48},
      {"LJ", "liveJournal", 4800000, 68900000, true, 0.57},
      {"OR", "orkut", 3100000, 117200000, true, 0.55},
      {"UK", "uk2002", 18520000, 298110000, false, 0.63},
  };
  return kInfos[static_cast<int>(dataset)];
}

CsrGraph MakeDatasetStandIn(Dataset dataset, uint32_t scale_shift,
                            uint64_t seed) {
  const DatasetInfo& info = GetDatasetInfo(dataset);
  const uint64_t target_vertices =
      std::max<uint64_t>(info.num_vertices >> scale_shift, 64);
  const uint64_t target_edges =
      std::max<uint64_t>(info.num_edges >> scale_shift, 256);

  // R-MAT generates on a power-of-two vertex set; we fold ids into the
  // target range, which preserves the skew of the distribution.
  const uint32_t scale = CeilLog2(target_vertices);
  const VertexId n = static_cast<VertexId>(target_vertices);
  // Undirected builds materialize each input edge twice, so halve the draw
  // count to hit the paper's |E| (which counts directed edge slots).
  uint64_t draws = target_edges;
  if (info.undirected) {
    draws = CeilDiv(draws, 2);
  }

  RmatOptions options;
  options.scale = scale;
  options.edge_factor = 1;  // unused below; we draw explicitly
  options.a = info.rmat_a;
  options.b = (1.0 - info.rmat_a) * 0.42;
  options.c = (1.0 - info.rmat_a) * 0.42;
  options.d = 1.0 - options.a - options.b - options.c;
  options.seed = seed;

  rng::Xoshiro256StarStar gen(seed);
  GraphBuilder builder(n, info.undirected);
  builder.Reserve(draws);
  for (uint64_t i = 0; i < draws; ++i) {
    EdgeInput e = DrawRmatEdge(options, gen);
    const VertexId src = e.src % n;
    const VertexId dst = e.dst % n;
    if (src == dst) {
      continue;
    }
    builder.AddEdge(src, dst);
  }
  builder.RandomizeAttributes(/*num_labels=*/4, /*num_relations=*/4,
                              /*max_weight=*/16, seed ^ 0x3c3c3c3cULL);
  return std::move(builder).Build();
}

}  // namespace lightrw::graph
