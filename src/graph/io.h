// Graph serialization: whitespace-separated edge-list text files and a
// compact binary CSR format for fast reload.

#ifndef LIGHTRW_GRAPH_IO_H_
#define LIGHTRW_GRAPH_IO_H_

#include <string>

#include "common/status.h"
#include "graph/csr.h"

namespace lightrw::graph {

// Reads an edge list. Each non-comment line is
//   src dst [weight [relation]]
// Lines starting with '#' or '%' are skipped. Vertex ids are dense
// non-negative integers; the vertex count is max id + 1.
StatusOr<CsrGraph> ReadEdgeList(const std::string& path, bool undirected);

// Writes "src dst weight relation" lines for every directed edge.
Status WriteEdgeList(const CsrGraph& graph, const std::string& path);

// Binary CSR round-trip. The format is versioned and checked on load.
Status WriteBinary(const CsrGraph& graph, const std::string& path);
StatusOr<CsrGraph> ReadBinary(const std::string& path);

// Reads a MatrixMarket coordinate file (the SuiteSparse / snap.stanford
// distribution format). Supports the `general` and `symmetric` pattern /
// integer / real qualifiers; `symmetric` entries are mirrored. Vertex ids
// are converted from MatrixMarket's 1-based convention.
StatusOr<CsrGraph> ReadMatrixMarket(const std::string& path);

}  // namespace lightrw::graph

#endif  // LIGHTRW_GRAPH_IO_H_
