#include "graph/transforms.h"

#include <algorithm>

#include "common/check.h"
#include "graph/builder.h"
#include "graph/stats.h"

namespace lightrw::graph {

CsrGraph ReverseGraph(const CsrGraph& graph) {
  GraphBuilder builder(graph.num_vertices(), /*undirected=*/false);
  builder.Reserve(graph.num_edges());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    builder.SetVertexLabel(v, graph.VertexLabel(v));
    const auto neighbors = graph.Neighbors(v);
    const auto weights = graph.NeighborWeights(v);
    const auto relations = graph.NeighborRelations(v);
    for (size_t i = 0; i < neighbors.size(); ++i) {
      builder.AddEdge(neighbors[i], v, weights[i], relations[i]);
    }
  }
  return std::move(builder).Build();
}

RelabeledGraph SortByDegree(const CsrGraph& graph) {
  RelabeledGraph result;
  result.old_id = VerticesByDegreeDescending(graph);
  result.new_id.resize(graph.num_vertices());
  for (VertexId rank = 0; rank < graph.num_vertices(); ++rank) {
    result.new_id[result.old_id[rank]] = rank;
  }

  GraphBuilder builder(graph.num_vertices(), /*undirected=*/false);
  builder.Reserve(graph.num_edges());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    builder.SetVertexLabel(result.new_id[v], graph.VertexLabel(v));
    const auto neighbors = graph.Neighbors(v);
    const auto weights = graph.NeighborWeights(v);
    const auto relations = graph.NeighborRelations(v);
    for (size_t i = 0; i < neighbors.size(); ++i) {
      builder.AddEdge(result.new_id[v], result.new_id[neighbors[i]],
                      weights[i], relations[i]);
    }
  }
  result.graph = std::move(builder).Build();
  return result;
}

RelabeledGraph InducedSubgraphByLabels(const CsrGraph& graph,
                                       std::span<const Label> labels) {
  bool keep_label[256] = {};
  for (const Label l : labels) {
    keep_label[l] = true;
  }

  RelabeledGraph result;
  result.new_id.assign(graph.num_vertices(), kInvalidVertex);
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    if (keep_label[graph.VertexLabel(v)]) {
      result.new_id[v] = static_cast<VertexId>(result.old_id.size());
      result.old_id.push_back(v);
    }
  }

  GraphBuilder builder(static_cast<VertexId>(result.old_id.size()),
                       /*undirected=*/false);
  for (const VertexId v : result.old_id) {
    builder.SetVertexLabel(result.new_id[v], graph.VertexLabel(v));
    const auto neighbors = graph.Neighbors(v);
    const auto weights = graph.NeighborWeights(v);
    const auto relations = graph.NeighborRelations(v);
    for (size_t i = 0; i < neighbors.size(); ++i) {
      if (result.new_id[neighbors[i]] != kInvalidVertex) {
        builder.AddEdge(result.new_id[v], result.new_id[neighbors[i]],
                        weights[i], relations[i]);
      }
    }
  }
  result.graph = std::move(builder).Build();
  return result;
}

}  // namespace lightrw::graph
