// Builds CsrGraph instances from edge lists.

#ifndef LIGHTRW_GRAPH_BUILDER_H_
#define LIGHTRW_GRAPH_BUILDER_H_

#include <cstdint>
#include <vector>

#include "graph/csr.h"
#include "graph/types.h"

namespace lightrw::graph {

// Accumulates edges and produces a CsrGraph. Usage:
//
//   GraphBuilder builder(/*num_vertices=*/n, /*undirected=*/true);
//   builder.AddEdge(u, v, weight, relation);
//   CsrGraph g = std::move(builder).Build();
//
// In undirected mode every added edge is materialized in both directions
// (the paper represents undirected graphs as two directed edges). Build()
// sorts each adjacency list by destination and removes duplicate (u, v)
// pairs, keeping the first occurrence.
class GraphBuilder {
 public:
  GraphBuilder(VertexId num_vertices, bool undirected);

  void Reserve(size_t num_edges) { edges_.reserve(num_edges); }

  void AddEdge(VertexId src, VertexId dst, Weight weight = 1,
               Relation relation = 0);

  // Sets the label of one vertex (defaults to 0).
  void SetVertexLabel(VertexId v, Label label);

  // Assigns every vertex a uniform random label in [0, num_labels) and
  // every edge a uniform random relation in [0, num_relations); weights are
  // drawn uniformly from [1, max_weight]. Mirrors the paper's setup of
  // initializing datasets with random edge weights and vertex labels.
  void RandomizeAttributes(uint8_t num_labels, uint8_t num_relations,
                           Weight max_weight, uint64_t seed);

  size_t num_pending_edges() const { return edges_.size(); }

  // Consumes the builder and produces the CSR graph.
  CsrGraph Build() &&;

 private:
  VertexId num_vertices_;
  bool undirected_;
  std::vector<EdgeInput> edges_;
  std::vector<Label> labels_;
};

}  // namespace lightrw::graph

#endif  // LIGHTRW_GRAPH_BUILDER_H_
