#include "graph/builder.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "common/check.h"
#include "rng/rng.h"

namespace lightrw::graph {

GraphBuilder::GraphBuilder(VertexId num_vertices, bool undirected)
    : num_vertices_(num_vertices),
      undirected_(undirected),
      labels_(num_vertices, 0) {
  LIGHTRW_CHECK(num_vertices < kInvalidVertex);
}

void GraphBuilder::AddEdge(VertexId src, VertexId dst, Weight weight,
                           Relation relation) {
  LIGHTRW_DCHECK(src < num_vertices_);
  LIGHTRW_DCHECK(dst < num_vertices_);
  edges_.push_back(EdgeInput{src, dst, weight, relation});
}

void GraphBuilder::SetVertexLabel(VertexId v, Label label) {
  LIGHTRW_CHECK(v < num_vertices_);
  labels_[v] = label;
}

void GraphBuilder::RandomizeAttributes(uint8_t num_labels,
                                       uint8_t num_relations,
                                       Weight max_weight, uint64_t seed) {
  LIGHTRW_CHECK(num_labels >= 1);
  LIGHTRW_CHECK(num_relations >= 1);
  LIGHTRW_CHECK(max_weight >= 1);
  rng::Xoshiro256StarStar gen(seed);
  for (auto& label : labels_) {
    label = static_cast<Label>(gen.NextBounded(num_labels));
  }
  for (auto& e : edges_) {
    e.relation = static_cast<Relation>(gen.NextBounded(num_relations));
    e.weight = static_cast<Weight>(1 + gen.NextBounded(max_weight));
  }
}

CsrGraph GraphBuilder::Build() && {
  // Materialize reverse edges for undirected graphs so both directions
  // carry identical weight/relation attributes.
  if (undirected_) {
    const size_t n = edges_.size();
    edges_.reserve(2 * n);
    for (size_t i = 0; i < n; ++i) {
      const EdgeInput& e = edges_[i];
      if (e.src != e.dst) {
        edges_.push_back(EdgeInput{e.dst, e.src, e.weight, e.relation});
      }
    }
  }

  CsrGraph graph;
  graph.labels_ = std::move(labels_);

  // Counting sort by source vertex.
  std::vector<EdgeIndex> counts(num_vertices_ + 1, 0);
  for (const EdgeInput& e : edges_) {
    ++counts[e.src + 1];
  }
  std::partial_sum(counts.begin(), counts.end(), counts.begin());

  std::vector<EdgeInput> sorted(edges_.size());
  {
    std::vector<EdgeIndex> cursor(counts.begin(), counts.end() - 1);
    for (const EdgeInput& e : edges_) {
      sorted[cursor[e.src]++] = e;
    }
  }
  edges_.clear();
  edges_.shrink_to_fit();

  // Sort each adjacency list by destination and drop duplicate (u, v)
  // pairs, keeping the first-added edge.
  graph.row_index_.assign(1, 0);
  graph.row_index_.reserve(num_vertices_ + 1);
  graph.col_dst_.reserve(sorted.size());
  graph.col_weight_.reserve(sorted.size());
  graph.col_relation_.reserve(sorted.size());
  uint32_t max_degree = 0;
  for (VertexId v = 0; v < num_vertices_; ++v) {
    const EdgeIndex begin = counts[v];
    const EdgeIndex end = counts[v + 1];
    std::stable_sort(sorted.begin() + begin, sorted.begin() + end,
                     [](const EdgeInput& a, const EdgeInput& b) {
                       return a.dst < b.dst;
                     });
    VertexId last_dst = kInvalidVertex;
    for (EdgeIndex i = begin; i < end; ++i) {
      if (sorted[i].dst == last_dst) {
        continue;
      }
      last_dst = sorted[i].dst;
      graph.col_dst_.push_back(sorted[i].dst);
      graph.col_weight_.push_back(sorted[i].weight);
      graph.col_relation_.push_back(sorted[i].relation);
    }
    graph.row_index_.push_back(graph.col_dst_.size());
    const uint32_t degree = static_cast<uint32_t>(
        graph.row_index_[v + 1] - graph.row_index_[v]);
    max_degree = std::max(max_degree, degree);
  }
  graph.max_degree_ = max_degree;
  return graph;
}

}  // namespace lightrw::graph
