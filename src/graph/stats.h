// Degree-distribution statistics used by the cache and burst analyses.

#ifndef LIGHTRW_GRAPH_STATS_H_
#define LIGHTRW_GRAPH_STATS_H_

#include <cstdint>
#include <vector>

#include "graph/csr.h"

namespace lightrw::graph {

struct DegreeStats {
  uint32_t max_degree = 0;
  double average_degree = 0.0;
  double median_degree = 0.0;
  // Fraction of all edges owned by the top `hot_fraction` of vertices by
  // degree — the power-law concentration that motivates the degree-aware
  // cache (paper §5.1).
  double top1pct_edge_share = 0.0;
  double top10pct_edge_share = 0.0;
  // Gini coefficient of the degree distribution (0 = uniform).
  double degree_gini = 0.0;
};

DegreeStats ComputeDegreeStats(const CsrGraph& graph);

// Vertices sorted by descending degree (ties by ascending id).
std::vector<VertexId> VerticesByDegreeDescending(const CsrGraph& graph);

// Share of edges whose source is among the `top_k` highest-degree vertices.
double EdgeShareOfTopVertices(const CsrGraph& graph, size_t top_k);

}  // namespace lightrw::graph

#endif  // LIGHTRW_GRAPH_STATS_H_
