// Compressed sparse row graph representation, matching the layout LightRW
// stores in FPGA DRAM: a row_index array giving each vertex's adjacency
// offset/degree and a col_index array of edge records sorted by destination.

#ifndef LIGHTRW_GRAPH_CSR_H_
#define LIGHTRW_GRAPH_CSR_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/check.h"
#include "graph/types.h"

namespace lightrw::graph {

// Immutable CSR graph. Construct with GraphBuilder (builder.h).
//
// Adjacency lists are sorted by destination vertex id, which both matches
// the paper's layout and enables O(log d) edge-existence queries (needed by
// Node2Vec's second-order weight function).
class CsrGraph {
 public:
  CsrGraph() = default;

  // Movable but not copyable: graphs can be hundreds of MB.
  CsrGraph(CsrGraph&&) = default;
  CsrGraph& operator=(CsrGraph&&) = default;
  CsrGraph(const CsrGraph&) = delete;
  CsrGraph& operator=(const CsrGraph&) = delete;

  VertexId num_vertices() const {
    return static_cast<VertexId>(row_index_.size() - 1);
  }
  EdgeIndex num_edges() const { return row_index_.back(); }

  // Offset of v's adjacency list in the col arrays.
  EdgeIndex OutOffset(VertexId v) const {
    LIGHTRW_DCHECK(v < num_vertices());
    return row_index_[v];
  }

  uint32_t Degree(VertexId v) const {
    LIGHTRW_DCHECK(v < num_vertices());
    return static_cast<uint32_t>(row_index_[v + 1] - row_index_[v]);
  }

  // Neighbor ids of v, sorted ascending.
  std::span<const VertexId> Neighbors(VertexId v) const {
    return {col_dst_.data() + OutOffset(v), Degree(v)};
  }

  // Static edge weights of v's adjacency, parallel to Neighbors(v).
  std::span<const Weight> NeighborWeights(VertexId v) const {
    return {col_weight_.data() + OutOffset(v), Degree(v)};
  }

  // Edge relations of v's adjacency, parallel to Neighbors(v).
  std::span<const Relation> NeighborRelations(VertexId v) const {
    return {col_relation_.data() + OutOffset(v), Degree(v)};
  }

  Label VertexLabel(VertexId v) const {
    LIGHTRW_DCHECK(v < num_vertices());
    return labels_[v];
  }

  // True iff the directed edge (u, v) exists. O(log Degree(u)).
  bool HasEdge(VertexId u, VertexId v) const;

  // Raw arrays, used by the simulator's memory layout model.
  std::span<const EdgeIndex> row_index() const { return row_index_; }
  std::span<const VertexId> col_dst() const { return col_dst_; }
  std::span<const Weight> col_weight() const { return col_weight_; }
  std::span<const Relation> col_relation() const { return col_relation_; }
  std::span<const Label> labels() const { return labels_; }

  uint32_t max_degree() const { return max_degree_; }
  double AverageDegree() const {
    return num_vertices() == 0
               ? 0.0
               : static_cast<double>(num_edges()) / num_vertices();
  }

  // Number of vertices with degree > 0 (the paper issues one query per
  // such vertex).
  VertexId CountNonIsolatedVertices() const;

  // Total bytes of the modeled DRAM image (row_index + col_index + labels).
  uint64_t ModeledByteSize() const {
    return (num_vertices() + 1) * kBytesPerRowRecord +
           num_edges() * kBytesPerEdgeRecord + num_vertices();
  }

  // Short human-readable summary, e.g. "|V|=4800 |E|=68900 davg=14.4".
  std::string Summary() const;

 private:
  friend class GraphBuilder;

  std::vector<EdgeIndex> row_index_ = {0};  // size |V|+1
  std::vector<VertexId> col_dst_;           // size |E|
  std::vector<Weight> col_weight_;          // size |E|
  std::vector<Relation> col_relation_;      // size |E|
  std::vector<Label> labels_;               // size |V|
  uint32_t max_degree_ = 0;
};

}  // namespace lightrw::graph

#endif  // LIGHTRW_GRAPH_CSR_H_
