#include "graph/components.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace lightrw::graph {

namespace {

// Path-halving union-find.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  uint32_t Find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Union(uint32_t a, uint32_t b) {
    const uint32_t ra = Find(a);
    const uint32_t rb = Find(b);
    if (ra != rb) {
      // Union by index keeps the structure deterministic.
      parent_[std::max(ra, rb)] = std::min(ra, rb);
    }
  }

 private:
  std::vector<uint32_t> parent_;
};

}  // namespace

ConnectedComponents::ConnectedComponents(const CsrGraph& graph) {
  const VertexId n = graph.num_vertices();
  UnionFind uf(n);
  for (VertexId v = 0; v < n; ++v) {
    for (const VertexId u : graph.Neighbors(v)) {
      uf.Union(v, u);
    }
  }
  // Densify root ids to [0, num_components).
  component_.assign(n, 0);
  std::vector<uint32_t> dense(n, UINT32_MAX);
  for (VertexId v = 0; v < n; ++v) {
    const uint32_t root = uf.Find(v);
    if (dense[root] == UINT32_MAX) {
      dense[root] = num_components_++;
      sizes_.push_back(0);
    }
    component_[v] = dense[root];
    ++sizes_[dense[root]];
  }
}

uint32_t ConnectedComponents::LargestComponent() const {
  LIGHTRW_CHECK(!sizes_.empty());
  return static_cast<uint32_t>(
      std::max_element(sizes_.begin(), sizes_.end()) - sizes_.begin());
}

double ConnectedComponents::LargestComponentShare() const {
  if (component_.empty()) {
    return 0.0;
  }
  return static_cast<double>(sizes_[LargestComponent()]) /
         static_cast<double>(component_.size());
}

}  // namespace lightrw::graph
