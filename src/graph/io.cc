#include "graph/io.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "graph/builder.h"

namespace lightrw::graph {

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) {
      std::fclose(f);
    }
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

constexpr char kBinaryMagic[8] = {'L', 'R', 'W', 'G', 'R', 'P', 'H', '1'};

template <typename T>
bool WriteVector(std::FILE* f, const std::vector<T>& v) {
  const uint64_t n = v.size();
  if (std::fwrite(&n, sizeof(n), 1, f) != 1) return false;
  if (n == 0) return true;
  return std::fwrite(v.data(), sizeof(T), n, f) == n;
}

template <typename T>
bool ReadVector(std::FILE* f, std::vector<T>* v) {
  uint64_t n = 0;
  if (std::fread(&n, sizeof(n), 1, f) != 1) return false;
  v->clear();
  if (n == 0) return true;
  // A crafted length prefix can declare an absurd element count; cap it
  // against the bytes actually left in the file before allocating.
  const long pos = std::ftell(f);
  if (pos < 0 || std::fseek(f, 0, SEEK_END) != 0) return false;
  const long end = std::ftell(f);
  if (end < 0 || std::fseek(f, pos, SEEK_SET) != 0) return false;
  if (n > static_cast<uint64_t>(end - pos) / sizeof(T)) return false;
  v->resize(n);
  return std::fread(v->data(), sizeof(T), n, f) == n;
}

}  // namespace

StatusOr<CsrGraph> ReadEdgeList(const std::string& path, bool undirected) {
  FilePtr f(std::fopen(path.c_str(), "r"));
  if (f == nullptr) {
    return IoError("cannot open " + path);
  }
  std::vector<EdgeInput> edges;
  VertexId max_vertex = 0;
  char line[512];
  int line_number = 0;
  while (std::fgets(line, sizeof(line), f.get()) != nullptr) {
    ++line_number;
    if (line[0] == '#' || line[0] == '%' || line[0] == '\n') {
      continue;
    }
    unsigned long long src = 0, dst = 0, weight = 1, relation = 0;
    const int fields = std::sscanf(line, "%llu %llu %llu %llu", &src, &dst,
                                   &weight, &relation);
    if (fields < 2) {
      return InvalidArgumentError(path + ":" + std::to_string(line_number) +
                                  ": expected 'src dst [weight [relation]]'");
    }
    if (src >= kInvalidVertex || dst >= kInvalidVertex) {
      return OutOfRangeError(path + ":" + std::to_string(line_number) +
                             ": vertex id too large");
    }
    if (fields < 3) weight = 1;
    if (fields < 4) relation = 0;
    if (weight == 0 || weight > UINT32_MAX) {
      return OutOfRangeError(path + ":" + std::to_string(line_number) +
                             ": weight must be in [1, 2^32)");
    }
    if (relation > UINT8_MAX) {
      return OutOfRangeError(path + ":" + std::to_string(line_number) +
                             ": relation must be in [0, 256)");
    }
    edges.push_back(EdgeInput{static_cast<VertexId>(src),
                              static_cast<VertexId>(dst),
                              static_cast<Weight>(weight),
                              static_cast<Relation>(relation)});
    max_vertex = std::max({max_vertex, static_cast<VertexId>(src),
                           static_cast<VertexId>(dst)});
  }
  if (edges.empty()) {
    return InvalidArgumentError(path + ": no edges");
  }
  GraphBuilder builder(max_vertex + 1, undirected);
  builder.Reserve(edges.size());
  for (const EdgeInput& e : edges) {
    builder.AddEdge(e.src, e.dst, e.weight, e.relation);
  }
  return std::move(builder).Build();
}

Status WriteEdgeList(const CsrGraph& graph, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (f == nullptr) {
    return IoError("cannot open " + path + " for writing");
  }
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const auto neighbors = graph.Neighbors(v);
    const auto weights = graph.NeighborWeights(v);
    const auto relations = graph.NeighborRelations(v);
    for (size_t i = 0; i < neighbors.size(); ++i) {
      if (std::fprintf(f.get(), "%u %u %u %u\n", v, neighbors[i], weights[i],
                       static_cast<unsigned>(relations[i])) < 0) {
        return IoError("write failed for " + path);
      }
    }
  }
  return Status::Ok();
}

Status WriteBinary(const CsrGraph& graph, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) {
    return IoError("cannot open " + path + " for writing");
  }
  bool ok = std::fwrite(kBinaryMagic, sizeof(kBinaryMagic), 1, f.get()) == 1;
  std::vector<EdgeIndex> row(graph.row_index().begin(),
                             graph.row_index().end());
  std::vector<VertexId> dst(graph.col_dst().begin(), graph.col_dst().end());
  std::vector<Weight> weight(graph.col_weight().begin(),
                             graph.col_weight().end());
  std::vector<Relation> relation(graph.col_relation().begin(),
                                 graph.col_relation().end());
  std::vector<Label> labels(graph.labels().begin(), graph.labels().end());
  ok = ok && WriteVector(f.get(), row) && WriteVector(f.get(), dst) &&
       WriteVector(f.get(), weight) && WriteVector(f.get(), relation) &&
       WriteVector(f.get(), labels);
  if (!ok) {
    return IoError("write failed for " + path);
  }
  return Status::Ok();
}

StatusOr<CsrGraph> ReadBinary(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return IoError("cannot open " + path);
  }
  char magic[sizeof(kBinaryMagic)];
  if (std::fread(magic, sizeof(magic), 1, f.get()) != 1 ||
      std::memcmp(magic, kBinaryMagic, sizeof(magic)) != 0) {
    return InvalidArgumentError(path + ": not a LightRW binary graph");
  }
  std::vector<EdgeIndex> row;
  std::vector<VertexId> dst;
  std::vector<Weight> weight;
  std::vector<Relation> relation;
  std::vector<Label> labels;
  if (!ReadVector(f.get(), &row) || !ReadVector(f.get(), &dst) ||
      !ReadVector(f.get(), &weight) || !ReadVector(f.get(), &relation) ||
      !ReadVector(f.get(), &labels)) {
    return IoError(path + ": truncated binary graph");
  }
  if (row.empty() || row.front() != 0 || row.back() != dst.size() ||
      weight.size() != dst.size() || relation.size() != dst.size() ||
      labels.size() != row.size() - 1) {
    return InvalidArgumentError(path + ": inconsistent binary graph");
  }
  const VertexId n = static_cast<VertexId>(row.size() - 1);
  GraphBuilder builder(n, /*undirected=*/false);
  builder.Reserve(dst.size());
  for (VertexId v = 0; v < n; ++v) {
    builder.SetVertexLabel(v, labels[v]);
    for (EdgeIndex i = row[v]; i < row[v + 1]; ++i) {
      if (dst[i] >= n) {
        return OutOfRangeError(path + ": edge destination out of range");
      }
      builder.AddEdge(v, dst[i], weight[i], relation[i]);
    }
  }
  return std::move(builder).Build();
}

}  // namespace lightrw::graph

namespace lightrw::graph {

StatusOr<CsrGraph> ReadMatrixMarket(const std::string& path) {
  std::FILE* raw = std::fopen(path.c_str(), "r");
  if (raw == nullptr) {
    return IoError("cannot open " + path);
  }
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(raw, &std::fclose);

  char line[512];
  if (std::fgets(line, sizeof(line), f.get()) == nullptr) {
    return InvalidArgumentError(path + ": empty file");
  }
  // Header: %%MatrixMarket matrix coordinate <field> <symmetry>
  char object[64] = {0}, format[64] = {0}, field[64] = {0},
       symmetry[64] = {0};
  if (std::sscanf(line, "%%%%MatrixMarket %63s %63s %63s %63s", object,
                  format, field, symmetry) != 4) {
    return InvalidArgumentError(path + ": not a MatrixMarket header");
  }
  if (std::string(object) != "matrix" ||
      std::string(format) != "coordinate") {
    return UnimplementedError(path + ": only coordinate matrices supported");
  }
  const std::string field_s(field);
  if (field_s != "pattern" && field_s != "integer" && field_s != "real") {
    return UnimplementedError(path + ": unsupported field " + field_s);
  }
  const std::string symmetry_s(symmetry);
  if (symmetry_s != "general" && symmetry_s != "symmetric") {
    return UnimplementedError(path + ": unsupported symmetry " + symmetry_s);
  }
  const bool has_value = field_s != "pattern";
  const bool symmetric = symmetry_s == "symmetric";

  // Skip comments, read the size line.
  unsigned long long rows = 0, cols = 0, entries = 0;
  while (std::fgets(line, sizeof(line), f.get()) != nullptr) {
    if (line[0] == '%') {
      continue;
    }
    if (std::sscanf(line, "%llu %llu %llu", &rows, &cols, &entries) != 3) {
      return InvalidArgumentError(path + ": malformed size line");
    }
    break;
  }
  if (rows == 0 || cols == 0) {
    return InvalidArgumentError(path + ": empty matrix");
  }
  const unsigned long long n = std::max(rows, cols);
  if (n >= kInvalidVertex) {
    return OutOfRangeError(path + ": too many vertices");
  }

  GraphBuilder builder(static_cast<VertexId>(n), /*undirected=*/false);
  builder.Reserve(symmetric ? 2 * entries : entries);
  for (unsigned long long i = 0; i < entries; ++i) {
    if (std::fgets(line, sizeof(line), f.get()) == nullptr) {
      return IoError(path + ": truncated entry list");
    }
    unsigned long long r = 0, c = 0;
    double value = 1.0;
    const int fields =
        std::sscanf(line, "%llu %llu %lf", &r, &c, &value);
    if (fields < 2 || (has_value && fields < 3)) {
      return InvalidArgumentError(path + ": malformed entry " +
                                  std::to_string(i + 1));
    }
    if (r == 0 || c == 0 || r > n || c > n) {
      return OutOfRangeError(path + ": entry index out of range");
    }
    // Weights: clamp positive reals/integers into [1, 2^32); pattern = 1.
    Weight weight = 1;
    if (has_value) {
      const double magnitude = value < 0 ? -value : value;
      weight = static_cast<Weight>(
          std::min(4294967295.0, std::max(1.0, magnitude)));
    }
    const VertexId src = static_cast<VertexId>(r - 1);
    const VertexId dst = static_cast<VertexId>(c - 1);
    builder.AddEdge(src, dst, weight);
    if (symmetric && src != dst) {
      builder.AddEdge(dst, src, weight);
    }
  }
  return std::move(builder).Build();
}

}  // namespace lightrw::graph
