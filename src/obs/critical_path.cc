#include "obs/critical_path.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <deque>
#include <map>
#include <utility>

namespace lightrw::obs {

namespace {

constexpr const char* kComponentNames[kNumComponents] = {
    "queue_wait", "backoff",  "dram_info", "dram_fetch", "sampler",
    "pipeline",   "network",  "recovery",  "other",
};

// Attribute keys a "walk" span carries, in component order (the walk
// span's own interval is decomposed through these; see cluster_sim.cc).
struct WalkAttr {
  const char* key;
  Component component;
};
constexpr WalkAttr kWalkAttrs[] = {
    {"dram_info", kCompDramInfo}, {"dram_fetch", kCompDramFetch},
    {"sampler", kCompSampler},    {"pipeline", kCompPipeline},
    {"network", kCompNetwork},    {"recovery", kCompRecovery},
};

void Appendf(std::string* out, const char* format, ...)
    __attribute__((format(printf, 2, 3)));

void Appendf(std::string* out, const char* format, ...) {
  char buf[256];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  *out += buf;
}

}  // namespace

const char* ComponentName(size_t component) {
  return component < kNumComponents ? kComponentNames[component]
                                    : "unknown";
}

AttributionReport AnalyzeCriticalPaths(const SpanRecorder& spans) {
  AttributionReport report;
  const std::vector<Span> all = spans.Spans();
  std::map<uint64_t, const TraceSummary*> summary_of;
  const std::vector<TraceSummary> summaries = spans.Summaries();
  for (const TraceSummary& s : summaries) {
    summary_of[s.trace] = &s;
  }

  // Spans() is sorted by (trace, seq): walk each trace's contiguous run.
  for (size_t i = 0; i < all.size();) {
    const uint64_t trace = all[i].trace;
    QueryAttribution qa;
    qa.trace = trace;
    // The root interval: the parentless span when present (service root
    // "query" span), else the envelope of the trace's spans (batch
    // drivers record bare walk spans).
    uint64_t root_start = all[i].start;
    uint64_t root_end = all[i].end;
    bool have_root = false;
    size_t end = i;
    while (end < all.size() && all[end].trace == trace) {
      const Span& span = all[end];
      if (span.parent == 0 && !have_root) {
        root_start = span.start;
        root_end = span.end;
        have_root = true;
      } else if (!have_root) {
        root_start = std::min(root_start, span.start);
        root_end = std::max(root_end, span.end);
      }
      ++end;
    }
    for (size_t j = i; j < end; ++j) {
      const Span& span = all[j];
      const uint64_t dur = span.end > span.start ? span.end - span.start : 0;
      if (std::strcmp(span.name, "queue") == 0) {
        qa.cycles[kCompQueue] += dur;
      } else if (std::strcmp(span.name, "backoff") == 0) {
        qa.cycles[kCompBackoff] += dur;
      } else if (std::strcmp(span.name, "walk") == 0) {
        for (const auto& [key, value] : span.attrs) {
          for (const WalkAttr& attr : kWalkAttrs) {
            if (std::strcmp(key, attr.key) == 0) {
              qa.cycles[attr.component] += value;
              break;
            }
          }
        }
      }
    }
    i = end;

    qa.total_cycles = root_end > root_start ? root_end - root_start : 0;
    uint64_t attributed = 0;
    for (size_t c = 0; c + 1 < kNumComponents; ++c) {
      attributed += qa.cycles[c];
    }
    qa.cycles[kCompOther] =
        qa.total_cycles > attributed ? qa.total_cycles - attributed : 0;
    size_t dominant = 0;
    for (size_t c = 1; c < kNumComponents; ++c) {
      if (qa.cycles[c] > qa.cycles[dominant]) {
        dominant = c;
      }
    }
    qa.dominant = dominant;
    if (const auto it = summary_of.find(trace); it != summary_of.end()) {
      qa.breached = it->second->breached;
      qa.outcome = it->second->outcome;
    }

    ++report.queries_analyzed;
    for (size_t c = 0; c < kNumComponents; ++c) {
      report.component_cycles[c].Add(static_cast<double>(qa.cycles[c]));
    }
    if (qa.breached) {
      ++report.breached_count;
      ++report.dominant_counts[qa.dominant];
      report.breached.push_back(std::move(qa));
    }
  }
  return report;
}

Json AttributionReport::ToJson() const {
  Json doc = Json::MakeObject();
  doc.Set("queries_analyzed", queries_analyzed);
  doc.Set("breached_count", breached_count);
  Json dominants = Json::MakeObject();
  for (size_t c = 0; c < kNumComponents; ++c) {
    dominants.Set(ComponentName(c), dominant_counts[c]);
  }
  doc.Set("dominant_counts", std::move(dominants));
  Json p99 = Json::MakeObject();
  for (size_t c = 0; c < kNumComponents; ++c) {
    p99.Set(ComponentName(c), component_cycles[c].count() > 0
                                  ? component_cycles[c].Quantile(0.99)
                                  : 0.0);
  }
  doc.Set("component_p99_cycles", std::move(p99));
  Json rows = Json::MakeArray();
  for (const QueryAttribution& qa : breached) {
    Json row = Json::MakeObject();
    row.Set("trace", qa.trace);
    row.Set("outcome", qa.outcome);
    row.Set("total_cycles", qa.total_cycles);
    row.Set("dominant", qa.DominantName());
    Json components = Json::MakeObject();
    for (size_t c = 0; c < kNumComponents; ++c) {
      components.Set(ComponentName(c), qa.cycles[c]);
    }
    row.Set("components", std::move(components));
    rows.Append(std::move(row));
  }
  doc.Set("breached", std::move(rows));
  return doc;
}

Status ValidateBurnRateConfig(const BurnRateConfig& config) {
  if (!(config.budget > 0.0) || config.budget > 1.0) {
    return InvalidArgumentError("burn.budget must be within (0, 1]");
  }
  if (!(config.threshold > 0.0)) {
    return InvalidArgumentError("burn.threshold must be > 0");
  }
  if (config.fast_window_cycles == 0 || config.slow_window_cycles == 0) {
    return InvalidArgumentError("burn windows must be > 0 cycles");
  }
  if (config.fast_window_cycles > config.slow_window_cycles) {
    return InvalidArgumentError(
        "burn.fast_window_cycles must be <= slow_window_cycles");
  }
  return Status::Ok();
}

std::vector<BurnAlert> ComputeBurnAlerts(
    const std::vector<TraceSummary>& summaries,
    const BurnRateConfig& config) {
  std::vector<TraceSummary> events = summaries;
  std::sort(events.begin(), events.end(),
            [](const TraceSummary& a, const TraceSummary& b) {
              return a.end != b.end ? a.end < b.end : a.trace < b.trace;
            });

  // One sliding window: counts terminal events in (now - window, now].
  struct Window {
    uint64_t width;
    std::deque<std::pair<uint64_t, bool>> events;  // (cycle, breached)
    uint64_t bad = 0;
    double Burn(uint64_t now, double budget) {
      while (!events.empty() && events.front().first + width <= now) {
        bad -= events.front().second ? 1 : 0;
        events.pop_front();
      }
      if (events.empty()) {
        return 0.0;
      }
      const double rate = static_cast<double>(bad) /
                          static_cast<double>(events.size());
      return rate / budget;
    }
    void Add(uint64_t now, bool breached) {
      events.emplace_back(now, breached);
      bad += breached ? 1 : 0;
    }
  };
  Window fast{config.fast_window_cycles, {}, 0};
  Window slow{config.slow_window_cycles, {}, 0};

  std::vector<BurnAlert> alerts;
  bool firing = false;
  for (const TraceSummary& event : events) {
    fast.Add(event.end, event.breached);
    slow.Add(event.end, event.breached);
    const double fast_burn = fast.Burn(event.end, config.budget);
    const double slow_burn = slow.Burn(event.end, config.budget);
    const bool now_firing =
        fast_burn > config.threshold && slow_burn > config.threshold;
    if (now_firing != firing) {
      firing = now_firing;
      alerts.push_back(BurnAlert{event.end, firing, fast_burn, slow_burn});
    }
  }
  return alerts;
}

Json BurnAlertsToJson(const std::vector<BurnAlert>& alerts) {
  Json rows = Json::MakeArray();
  for (const BurnAlert& alert : alerts) {
    Json row = Json::MakeObject();
    row.Set("cycle", alert.cycle);
    row.Set("state", alert.firing ? "fired" : "cleared");
    row.Set("fast_burn", alert.fast_burn);
    row.Set("slow_burn", alert.slow_burn);
    rows.Append(std::move(row));
  }
  return rows;
}

std::string FormatLatencyAttributionSection(
    const AttributionReport& report, const std::vector<BurnAlert>& alerts) {
  if (report.queries_analyzed == 0 && alerts.empty()) {
    return "";
  }
  std::string out;
  Appendf(&out,
          "latency attribution: %llu quer(ies) analyzed, %llu breached\n",
          static_cast<unsigned long long>(report.queries_analyzed),
          static_cast<unsigned long long>(report.breached_count));
  if (report.breached_count > 0) {
    out += "  dominant components of breached queries:";
    for (size_t c = 0; c < kNumComponents; ++c) {
      if (report.dominant_counts[c] > 0) {
        Appendf(&out, " %s %llu", ComponentName(c),
                static_cast<unsigned long long>(report.dominant_counts[c]));
      }
    }
    out += "\n";
  }
  if (report.queries_analyzed > 0) {
    out += "  component p99 over analyzed queries (cycles):";
    for (size_t c = 0; c < kNumComponents; ++c) {
      Appendf(&out, " %s %.0f", ComponentName(c),
              report.component_cycles[c].count() > 0
                  ? report.component_cycles[c].Quantile(0.99)
                  : 0.0);
    }
    out += "\n";
  }
  uint64_t fired = 0;
  for (const BurnAlert& alert : alerts) {
    fired += alert.firing ? 1 : 0;
  }
  Appendf(&out, "  slo burn-rate alerts: %llu fired",
          static_cast<unsigned long long>(fired));
  for (const BurnAlert& alert : alerts) {
    if (alert.firing) {
      Appendf(&out, "; first at cycle %llu (fast %.1fx, slow %.1fx)",
              static_cast<unsigned long long>(alert.cycle),
              alert.fast_burn, alert.slow_burn);
      break;
    }
  }
  out += "\n";
  return out;
}

}  // namespace lightrw::obs
