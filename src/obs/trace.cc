#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

namespace lightrw::obs {

TraceRecorder::TraceRecorder(const TraceConfig& config) : config_(config) {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.reserve(std::min<size_t>(config_.max_events, 1u << 16));
}

void TraceRecorder::Record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (events_.size() >= config_.max_events) {
    dropped_events_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  events_.push_back(event);
  num_events_.store(events_.size(), std::memory_order_relaxed);
}

void TraceRecorder::Complete(const char* name, const char* category,
                             uint32_t pid, uint32_t tid,
                             uint64_t start_cycle, uint64_t end_cycle) {
  TraceEvent event;
  event.phase = 'X';
  event.name = name;
  event.category = category;
  event.pid = pid;
  event.tid = tid;
  event.ts = start_cycle;
  event.dur = end_cycle >= start_cycle ? end_cycle - start_cycle : 0;
  Record(event);
}

void TraceRecorder::Instant(const char* name, const char* category,
                            uint32_t pid, uint32_t tid, uint64_t cycle) {
  TraceEvent event;
  event.phase = 'i';
  event.name = name;
  event.category = category;
  event.pid = pid;
  event.tid = tid;
  event.ts = cycle;
  Record(event);
}

void TraceRecorder::Value(const char* name, uint32_t pid, uint64_t cycle,
                          double value) {
  TraceEvent event;
  event.phase = 'C';
  event.name = name;
  event.category = "counter";
  event.pid = pid;
  event.ts = cycle;
  event.value = value;
  Record(event);
}

void TraceRecorder::NameProcess(uint32_t pid, const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  process_names_.emplace_back(pid, name);
}

void TraceRecorder::NameTrack(uint32_t pid, uint32_t tid,
                              const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  track_names_.emplace_back(pid, tid, name);
}

void TraceRecorder::MergeFrom(TraceRecorder* shard) {
  if (shard == nullptr || shard == this) {
    return;
  }
  std::scoped_lock lock(mutex_, shard->mutex_);
  for (const TraceEvent& event : shard->events_) {
    if (events_.size() >= config_.max_events) {
      dropped_events_.fetch_add(1, std::memory_order_relaxed);
    } else {
      events_.push_back(event);
    }
  }
  dropped_events_.fetch_add(
      shard->dropped_events_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  num_events_.store(events_.size(), std::memory_order_relaxed);
  for (auto& entry : shard->process_names_) {
    process_names_.push_back(std::move(entry));
  }
  for (auto& entry : shard->track_names_) {
    track_names_.push_back(std::move(entry));
  }
  shard->events_.clear();
  shard->process_names_.clear();
  shard->track_names_.clear();
  shard->num_events_.store(0, std::memory_order_relaxed);
  shard->dropped_events_.store(0, std::memory_order_relaxed);
}

Json TraceRecorder::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Json trace_events = Json::MakeArray();

  // Metadata first: process and thread labels ("M" phase).
  for (const auto& [pid, name] : process_names_) {
    Json args = Json::MakeObject();
    args.Set("name", name);
    Json event = Json::MakeObject();
    event.Set("name", "process_name");
    event.Set("ph", "M");
    event.Set("pid", static_cast<uint64_t>(pid));
    event.Set("tid", static_cast<uint64_t>(0));
    event.Set("args", std::move(args));
    trace_events.Append(std::move(event));
  }
  for (const auto& [pid, tid, name] : track_names_) {
    Json args = Json::MakeObject();
    args.Set("name", name);
    Json event = Json::MakeObject();
    event.Set("name", "thread_name");
    event.Set("ph", "M");
    event.Set("pid", static_cast<uint64_t>(pid));
    event.Set("tid", static_cast<uint64_t>(tid));
    event.Set("args", std::move(args));
    trace_events.Append(std::move(event));
  }

  // Events in timestamp order: stable sort keeps the recording order of
  // simultaneous events, so the export is deterministic.
  std::vector<const TraceEvent*> ordered;
  ordered.reserve(events_.size());
  for (const TraceEvent& event : events_) {
    ordered.push_back(&event);
  }
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const TraceEvent* a, const TraceEvent* b) {
                     return a->ts < b->ts;
                   });

  for (const TraceEvent* event : ordered) {
    Json out = Json::MakeObject();
    out.Set("name", event->name);
    if (event->category[0] != '\0') {
      out.Set("cat", event->category);
    }
    out.Set("ph", std::string(1, event->phase));
    out.Set("pid", static_cast<uint64_t>(event->pid));
    out.Set("tid", static_cast<uint64_t>(event->tid));
    // The default 1:1 cycle scale emits exact integers.
    const double ticks = config_.ticks_per_cycle;
    if (ticks == 1.0) {
      out.Set("ts", event->ts);
    } else {
      out.Set("ts", static_cast<double>(event->ts) * ticks);
    }
    switch (event->phase) {
      case 'X':
        if (ticks == 1.0) {
          out.Set("dur", event->dur);
        } else {
          out.Set("dur", static_cast<double>(event->dur) * ticks);
        }
        break;
      case 'i':
        out.Set("s", "t");  // instant scope: thread
        break;
      case 'C': {
        Json args = Json::MakeObject();
        args.Set("value", event->value);
        out.Set("args", std::move(args));
        break;
      }
      default:
        break;
    }
    trace_events.Append(std::move(out));
  }

  Json doc = Json::MakeObject();
  doc.Set("traceEvents", std::move(trace_events));
  doc.Set("displayTimeUnit", "ns");
  Json metadata = Json::MakeObject();
  metadata.Set("clock", "simulated-cycles");
  metadata.Set("dropped_events", dropped_events_.load());
  doc.Set("metadata", std::move(metadata));
  return doc;
}

std::string TraceRecorder::ToJsonString() const {
  std::string out = ToJson().Dump();
  out += '\n';
  return out;
}

Status TraceRecorder::WriteChromeTrace(const std::string& path) const {
  return WriteTextFile(ToJsonString(), path);
}

Status WriteTextFile(const std::string& text, const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return IoError("cannot open output file: " + path);
  }
  const size_t written = std::fwrite(text.data(), 1, text.size(), file);
  const int close_result = std::fclose(file);
  if (written != text.size() || close_result != 0) {
    return IoError("short write to output file: " + path);
  }
  return Status::Ok();
}

}  // namespace lightrw::obs
