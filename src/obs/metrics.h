// Process-wide metrics registry.
//
// Every counted quantity in the simulators — cache probes, burst
// commands, DRAM bytes, per-stage stall cycles, per-worker step counts —
// can be published here under a stable dotted name plus a label set,
// e.g. "lightrw.cache.hits"{instance="2"}. Engines accept an optional
// registry pointer in their configs; a null registry costs one branch.
//
// Naming scheme (documented in README "Observability"):
//   <component>.<object>.<quantity>   all lowercase, dot-separated
//   labels identify the replica: instance=, worker=, board=, stage=
//
// Instruments:
//   Counter   monotonically increasing uint64 (atomic)
//   Gauge     last-written double (atomic)
//   Histogram SampleStats-backed distribution (mutex-protected)
//
// The registry itself is thread-safe: handles may be created and updated
// concurrently from the multithreaded baseline engine. Handles returned
// by the registry are owned by it and stay valid for its lifetime.
//
// Exposition: ToJson() (deterministic — metrics sorted by name+labels,
// counters emitted as exact integers) and ToPrometheusText() (the
// text/plain 0.0.4 format understood by Prometheus-compatible scrapers).

#ifndef LIGHTRW_OBS_METRICS_H_
#define LIGHTRW_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.h"
#include "obs/json.h"

namespace lightrw::obs {

// Label set attached to one metric instance, e.g. {{"instance", "0"}}.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) {
    // fetch_add on atomic<double> is C++20; keep a CAS loop for breadth
    // of toolchain support.
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

class Histogram {
 public:
  void Observe(double value) {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.Add(value);
  }
  // Copy of the accumulated distribution.
  SampleStats Snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }

 private:
  mutable std::mutex mutex_;
  SampleStats stats_;
};

// Thread-safe registry of named instruments. Get* returns the existing
// instrument when (name, labels) was seen before, so independent call
// sites accumulate into the same counter.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name, const Labels& labels = {});
  Gauge* GetGauge(const std::string& name, const Labels& labels = {});
  Histogram* GetHistogram(const std::string& name, const Labels& labels = {});

  // Deterministic snapshot: an array of {name, labels, type, value...}
  // objects sorted by (name, labels). Histograms expose count/sum/min/
  // max/p50/p95/p99.
  Json ToJson() const;
  std::string ToJsonString(int indent = 2) const;

  // Prometheus text exposition; dots in names become underscores.
  std::string ToPrometheusText() const;

  size_t NumMetrics() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Instrument {
    Kind kind;
    std::string name;
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  // Key: name + '\0' + serialized labels — unique and sort-stable.
  static std::string MakeKey(const std::string& name, const Labels& labels);
  Instrument* GetOrCreate(Kind kind, const std::string& name,
                          const Labels& labels);

  mutable std::mutex mutex_;
  std::map<std::string, Instrument> instruments_;
};

}  // namespace lightrw::obs

#endif  // LIGHTRW_OBS_METRICS_H_
