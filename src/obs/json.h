// Minimal JSON document type shared by the observability exporters.
//
// Every machine-readable artifact this repository emits — metrics
// snapshots, Chrome trace_event files, BENCH_*.json records — goes
// through this one value type so the encoding rules live in one place:
// objects preserve insertion order (byte-stable output for a given build
// sequence), integers are emitted exactly, and doubles use the shortest
// round-trip representation. A small parser is included so tests can
// validate emitted documents without external dependencies.

#ifndef LIGHTRW_OBS_JSON_H_
#define LIGHTRW_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace lightrw::obs {

// A JSON document: null, bool, integer, double, string, array, or object.
// Integers are kept separate from doubles so counters round-trip exactly.
class Json {
 public:
  enum class Kind {
    kNull,
    kBool,
    kInt,     // signed 64-bit
    kUint,    // unsigned 64-bit (counters)
    kDouble,
    kString,
    kArray,
    kObject,
  };

  using Array = std::vector<Json>;
  // Insertion-ordered key/value list. Lookups are linear, which is fine
  // for the document sizes involved (metric snapshots, bench records).
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() : kind_(Kind::kNull) {}
  Json(bool value) : kind_(Kind::kBool), bool_(value) {}          // NOLINT
  Json(int value) : kind_(Kind::kInt), int_(value) {}             // NOLINT
  Json(int64_t value) : kind_(Kind::kInt), int_(value) {}         // NOLINT
  Json(uint64_t value) : kind_(Kind::kUint), uint_(value) {}      // NOLINT
  Json(double value) : kind_(Kind::kDouble), double_(value) {}    // NOLINT
  Json(std::string value)                                         // NOLINT
      : kind_(Kind::kString), string_(std::move(value)) {}
  Json(const char* value) : kind_(Kind::kString), string_(value) {}  // NOLINT

  static Json MakeArray() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }
  static Json MakeObject() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kUint ||
           kind_ == Kind::kDouble;
  }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  // Typed accessors; the value must hold the matching kind (numbers
  // convert between the three numeric kinds).
  bool bool_value() const;
  int64_t int_value() const;
  uint64_t uint_value() const;
  double double_value() const;
  const std::string& string_value() const;
  const Array& array() const;
  const Object& object() const;

  // Object editing: appends, or replaces an existing key in place.
  // Returns *this so builders can chain.
  Json& Set(std::string key, Json value);
  // Null if the key is absent (object-kind values only).
  const Json* Find(std::string_view key) const;

  // Array editing.
  Json& Append(Json value);

  // Elements / members count; 0 for scalars.
  size_t size() const;

  // Serializes the document. indent < 0 emits the compact single-line
  // form; indent >= 0 pretty-prints with that many spaces per level.
  std::string Dump(int indent = -1) const;

  // Parses a complete JSON document (trailing garbage is an error).
  static StatusOr<Json> Parse(std::string_view text);

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  int64_t int_ = 0;
  uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

// Appends the JSON escaping of `text` (without surrounding quotes).
void AppendJsonEscaped(std::string* out, std::string_view text);

}  // namespace lightrw::obs

#endif  // LIGHTRW_OBS_JSON_H_
