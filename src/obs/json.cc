#include "obs/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace lightrw::obs {

bool Json::bool_value() const {
  LIGHTRW_CHECK(kind_ == Kind::kBool);
  return bool_;
}

int64_t Json::int_value() const {
  switch (kind_) {
    case Kind::kInt:
      return int_;
    case Kind::kUint:
      return static_cast<int64_t>(uint_);
    case Kind::kDouble:
      return static_cast<int64_t>(double_);
    default:
      LIGHTRW_CHECK(false && "Json::int_value on non-number");
      return 0;
  }
}

uint64_t Json::uint_value() const {
  switch (kind_) {
    case Kind::kInt:
      return static_cast<uint64_t>(int_);
    case Kind::kUint:
      return uint_;
    case Kind::kDouble:
      return static_cast<uint64_t>(double_);
    default:
      LIGHTRW_CHECK(false && "Json::uint_value on non-number");
      return 0;
  }
}

double Json::double_value() const {
  switch (kind_) {
    case Kind::kInt:
      return static_cast<double>(int_);
    case Kind::kUint:
      return static_cast<double>(uint_);
    case Kind::kDouble:
      return double_;
    default:
      LIGHTRW_CHECK(false && "Json::double_value on non-number");
      return 0.0;
  }
}

const std::string& Json::string_value() const {
  LIGHTRW_CHECK(kind_ == Kind::kString);
  return string_;
}

const Json::Array& Json::array() const {
  LIGHTRW_CHECK(kind_ == Kind::kArray);
  return array_;
}

const Json::Object& Json::object() const {
  LIGHTRW_CHECK(kind_ == Kind::kObject);
  return object_;
}

Json& Json::Set(std::string key, Json value) {
  LIGHTRW_CHECK(kind_ == Kind::kObject);
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
  return *this;
}

const Json* Json::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) {
    return nullptr;
  }
  for (const auto& [k, v] : object_) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

Json& Json::Append(Json value) {
  LIGHTRW_CHECK(kind_ == Kind::kArray);
  array_.push_back(std::move(value));
  return *this;
}

size_t Json::size() const {
  if (kind_ == Kind::kArray) {
    return array_.size();
  }
  if (kind_ == Kind::kObject) {
    return object_.size();
  }
  return 0;
}

void AppendJsonEscaped(std::string* out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

namespace {

void AppendDouble(std::string* out, double value) {
  if (!std::isfinite(value)) {
    // JSON has no Inf/NaN; emit null like most tolerant encoders.
    *out += "null";
    return;
  }
  char buf[32];
  const auto result =
      std::to_chars(buf, buf + sizeof(buf), value);  // shortest round-trip
  out->append(buf, result.ptr);
}

void AppendNewlineIndent(std::string* out, int indent, int depth) {
  if (indent >= 0) {
    *out += '\n';
    out->append(static_cast<size_t>(indent) * depth, ' ');
  }
}

}  // namespace

void Json::DumpTo(std::string* out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      return;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Kind::kInt: {
      char buf[24];
      const auto result = std::to_chars(buf, buf + sizeof(buf), int_);
      out->append(buf, result.ptr);
      return;
    }
    case Kind::kUint: {
      char buf[24];
      const auto result = std::to_chars(buf, buf + sizeof(buf), uint_);
      out->append(buf, result.ptr);
      return;
    }
    case Kind::kDouble:
      AppendDouble(out, double_);
      return;
    case Kind::kString:
      *out += '"';
      AppendJsonEscaped(out, string_);
      *out += '"';
      return;
    case Kind::kArray: {
      if (array_.empty()) {
        *out += "[]";
        return;
      }
      *out += '[';
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) {
          *out += ',';
        }
        AppendNewlineIndent(out, indent, depth + 1);
        array_[i].DumpTo(out, indent, depth + 1);
      }
      AppendNewlineIndent(out, indent, depth);
      *out += ']';
      return;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        *out += "{}";
        return;
      }
      *out += '{';
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) {
          *out += ',';
        }
        first = false;
        AppendNewlineIndent(out, indent, depth + 1);
        *out += '"';
        AppendJsonEscaped(out, key);
        *out += indent >= 0 ? "\": " : "\":";
        value.DumpTo(out, indent, depth + 1);
      }
      AppendNewlineIndent(out, indent, depth);
      *out += '}';
      return;
    }
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

// ---------------------------------------------------------------------------
// Parser: recursive descent with a depth limit.

namespace {

constexpr int kMaxParseDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<Json> ParseDocument() {
    auto value = ParseValue(0);
    if (!value.ok()) {
      return value;
    }
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after document");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return InvalidArgumentError("json parse error at offset " +
                                std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  StatusOr<Json> ParseValue(int depth) {
    if (depth > kMaxParseDepth) {
      return Error("nesting too deep");
    }
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Error("unexpected end of input");
    }
    const char c = text_[pos_];
    if (c == '{') {
      return ParseObject(depth);
    }
    if (c == '[') {
      return ParseArray(depth);
    }
    if (c == '"') {
      auto str = ParseString();
      if (!str.ok()) {
        return str.status();
      }
      return Json(std::move(str).value());
    }
    if (ConsumeLiteral("null")) {
      return Json();
    }
    if (ConsumeLiteral("true")) {
      return Json(true);
    }
    if (ConsumeLiteral("false")) {
      return Json(false);
    }
    return ParseNumber();
  }

  StatusOr<Json> ParseObject(int depth) {
    LIGHTRW_CHECK(Consume('{'));
    Json out = Json::MakeObject();
    SkipWhitespace();
    if (Consume('}')) {
      return out;
    }
    while (true) {
      SkipWhitespace();
      auto key = ParseString();
      if (!key.ok()) {
        return key.status();
      }
      SkipWhitespace();
      if (!Consume(':')) {
        return Error("expected ':' in object");
      }
      auto value = ParseValue(depth + 1);
      if (!value.ok()) {
        return value;
      }
      out.Set(std::move(key).value(), std::move(value).value());
      SkipWhitespace();
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        return out;
      }
      return Error("expected ',' or '}' in object");
    }
  }

  StatusOr<Json> ParseArray(int depth) {
    LIGHTRW_CHECK(Consume('['));
    Json out = Json::MakeArray();
    SkipWhitespace();
    if (Consume(']')) {
      return out;
    }
    while (true) {
      auto value = ParseValue(depth + 1);
      if (!value.ok()) {
        return value;
      }
      out.Append(std::move(value).value());
      SkipWhitespace();
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        return out;
      }
      return Error("expected ',' or ']' in array");
    }
  }

  StatusOr<std::string> ParseString() {
    if (!Consume('"')) {
      return Error("expected string");
    }
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Error("truncated \\u escape");
          }
          unsigned code = 0;
          const auto result = std::from_chars(
              text_.data() + pos_, text_.data() + pos_ + 4, code, 16);
          if (result.ptr != text_.data() + pos_ + 4) {
            return Error("bad \\u escape");
          }
          pos_ += 4;
          // Only BMP code points below 0x80 are emitted by our encoder;
          // decode the rest as UTF-8 for completeness.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Error("bad escape character");
      }
    }
    return Error("unterminated string");
  }

  StatusOr<Json> ParseNumber() {
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool is_double = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty()) {
      return Error("expected value");
    }
    if (!is_double) {
      if (token[0] != '-') {
        uint64_t value = 0;
        const auto result = std::from_chars(
            token.data(), token.data() + token.size(), value);
        if (result.ec == std::errc() &&
            result.ptr == token.data() + token.size()) {
          return Json(value);
        }
      } else {
        int64_t value = 0;
        const auto result = std::from_chars(
            token.data(), token.data() + token.size(), value);
        if (result.ec == std::errc() &&
            result.ptr == token.data() + token.size()) {
          return Json(value);
        }
      }
    }
    double value = 0.0;
    const auto result =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (result.ec != std::errc() ||
        result.ptr != token.data() + token.size()) {
      return Error("malformed number");
    }
    return Json(value);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<Json> Json::Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

}  // namespace lightrw::obs
