#include "obs/metrics.h"

#include <algorithm>

#include "common/check.h"

namespace lightrw::obs {

namespace {

// Label values are embedded in keys and exposition lines; keep them
// readable by escaping the two characters with structural meaning.
void AppendPrometheusEscaped(std::string* out, const std::string& text) {
  for (const char c : text) {
    if (c == '\\' || c == '"') {
      *out += '\\';
    }
    *out += c;
  }
}

std::string PrometheusName(const std::string& name) {
  std::string out = name;
  std::replace(out.begin(), out.end(), '.', '_');
  return out;
}

std::string PrometheusLabels(const Labels& labels) {
  if (labels.empty()) {
    return "";
  }
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += labels[i].first;
    out += "=\"";
    AppendPrometheusEscaped(&out, labels[i].second);
    out += '"';
  }
  out += '}';
  return out;
}

// Labels with one extra pair appended (for histogram quantile series).
std::string PrometheusLabelsPlus(const Labels& labels,
                                 const std::string& key,
                                 const std::string& value) {
  Labels extended = labels;
  extended.emplace_back(key, value);
  return PrometheusLabels(extended);
}

void AppendNumber(std::string* out, double value) {
  // Prometheus accepts Go-style floats; reuse the JSON encoder.
  *out += Json(value).Dump();
}

}  // namespace

std::string MetricsRegistry::MakeKey(const std::string& name,
                                     const Labels& labels) {
  std::string key = name;
  for (const auto& [k, v] : labels) {
    key += '\0';
    key += k;
    key += '\1';
    key += v;
  }
  return key;
}

MetricsRegistry::Instrument* MetricsRegistry::GetOrCreate(
    Kind kind, const std::string& name, const Labels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string key = MakeKey(name, labels);
  auto it = instruments_.find(key);
  if (it == instruments_.end()) {
    Instrument instrument;
    instrument.kind = kind;
    instrument.name = name;
    instrument.labels = labels;
    switch (kind) {
      case Kind::kCounter:
        instrument.counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        instrument.gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        instrument.histogram = std::make_unique<Histogram>();
        break;
    }
    it = instruments_.emplace(key, std::move(instrument)).first;
  }
  // Re-registering a name with a different instrument kind is a
  // programming error.
  LIGHTRW_CHECK(it->second.kind == kind);
  return &it->second;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const Labels& labels) {
  return GetOrCreate(Kind::kCounter, name, labels)->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const Labels& labels) {
  return GetOrCreate(Kind::kGauge, name, labels)->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const Labels& labels) {
  return GetOrCreate(Kind::kHistogram, name, labels)->histogram.get();
}

size_t MetricsRegistry::NumMetrics() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return instruments_.size();
}

Json MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Json metrics = Json::MakeArray();
  // instruments_ is a std::map keyed by (name, labels): iteration order,
  // and therefore the emitted document, is deterministic.
  for (const auto& [key, instrument] : instruments_) {
    Json entry = Json::MakeObject();
    entry.Set("name", instrument.name);
    if (!instrument.labels.empty()) {
      Json labels = Json::MakeObject();
      for (const auto& [k, v] : instrument.labels) {
        labels.Set(k, v);
      }
      entry.Set("labels", std::move(labels));
    }
    switch (instrument.kind) {
      case Kind::kCounter:
        entry.Set("type", "counter");
        entry.Set("value", instrument.counter->value());
        break;
      case Kind::kGauge:
        entry.Set("type", "gauge");
        entry.Set("value", instrument.gauge->value());
        break;
      case Kind::kHistogram: {
        entry.Set("type", "histogram");
        const SampleStats stats = instrument.histogram->Snapshot();
        entry.Set("count", static_cast<uint64_t>(stats.count()));
        entry.Set("sum", stats.sum());
        entry.Set("min", stats.Min());
        entry.Set("max", stats.Max());
        entry.Set("p50", stats.Quantile(0.5));
        entry.Set("p95", stats.Quantile(0.95));
        entry.Set("p99", stats.Quantile(0.99));
        break;
      }
    }
    metrics.Append(std::move(entry));
  }
  Json doc = Json::MakeObject();
  doc.Set("metrics", std::move(metrics));
  return doc;
}

std::string MetricsRegistry::ToJsonString(int indent) const {
  std::string out = ToJson().Dump(indent);
  out += '\n';
  return out;
}

std::string MetricsRegistry::ToPrometheusText() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  std::string previous_name;
  for (const auto& [key, instrument] : instruments_) {
    const std::string name = PrometheusName(instrument.name);
    if (name != previous_name) {
      out += "# TYPE " + name + ' ';
      switch (instrument.kind) {
        case Kind::kCounter:
          out += "counter";
          break;
        case Kind::kGauge:
          out += "gauge";
          break;
        case Kind::kHistogram:
          out += "summary";
          break;
      }
      out += '\n';
      previous_name = name;
    }
    switch (instrument.kind) {
      case Kind::kCounter:
        out += name + PrometheusLabels(instrument.labels) + ' ' +
               std::to_string(instrument.counter->value()) + '\n';
        break;
      case Kind::kGauge:
        out += name + PrometheusLabels(instrument.labels) + ' ';
        AppendNumber(&out, instrument.gauge->value());
        out += '\n';
        break;
      case Kind::kHistogram: {
        const SampleStats stats = instrument.histogram->Snapshot();
        for (const double q : {0.5, 0.95, 0.99}) {
          out += name +
                 PrometheusLabelsPlus(instrument.labels, "quantile",
                                      Json(q).Dump()) +
                 ' ';
          AppendNumber(&out, stats.Quantile(q));
          out += '\n';
        }
        out += name + "_sum" + PrometheusLabels(instrument.labels) + ' ';
        AppendNumber(&out, stats.sum());
        out += '\n';
        out += name + "_count" + PrometheusLabels(instrument.labels) + ' ' +
               std::to_string(stats.count()) + '\n';
        break;
      }
    }
  }
  return out;
}

}  // namespace lightrw::obs
