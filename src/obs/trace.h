// Simulated-time trace recorder.
//
// Records events stamped in *simulated kernel cycles* (hwsim::Cycle) and
// exports them as Chrome trace_event JSON, loadable in Perfetto or
// chrome://tracing. One trace tick equals one simulated cycle (the file
// sets displayTimeUnit "ns"; absolute wall durations are meaningless for
// a simulation, only the cycle axis matters).
//
// Track model: pid = engine replica (accelerator instance / board),
// tid = pipeline stage lane within it. NameTrack() emits the standard
// process_name / thread_name metadata so viewers show readable labels.
//
// Event classes:
//   Complete  a busy interval on a track ("X" phase): DRAM request
//             service window, burst stream, WRS consume window
//   Instant   a point event ("i"): cache hit/miss, query retire
//   Value     a counter series ("C"): e.g. in-flight queries
//
// Recording is bounded: at most `max_events` events are kept (default
// 1M); later events are dropped and counted so big runs stay bounded in
// memory while the drop is visible. The recorder is thread-safe, and the
// export is deterministic: events are stably sorted by timestamp.

#ifndef LIGHTRW_OBS_TRACE_H_
#define LIGHTRW_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/json.h"

namespace lightrw::obs {

struct TraceConfig {
  // Hard cap on recorded events; 0 disables recording entirely.
  size_t max_events = 1u << 20;
  // Scale from simulated cycles to trace "ts" ticks. 1.0 keeps the axis
  // in cycles, which is what every viewer label in this repo assumes.
  double ticks_per_cycle = 1.0;
};

// One recorded trace event (pre-serialization form).
struct TraceEvent {
  char phase = 'X';       // 'X' complete, 'i' instant, 'C' counter
  const char* name = "";  // static string: event/series name
  const char* category = "";
  uint32_t pid = 0;
  uint32_t tid = 0;
  uint64_t ts = 0;   // start, in simulated cycles
  uint64_t dur = 0;  // complete events only
  double value = 0.0;  // counter events only
};

class TraceRecorder {
 public:
  explicit TraceRecorder(const TraceConfig& config = {});
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  const TraceConfig& config() const { return config_; }

  // True while the recorder still accepts events; a cheap pre-check so
  // hot loops can skip argument setup once the cap is hit.
  bool accepting() const {
    return num_events_.load(std::memory_order_relaxed) < config_.max_events;
  }

  // `name` and `category` must be string literals (or otherwise outlive
  // the recorder): events store the pointers, not copies.
  void Complete(const char* name, const char* category, uint32_t pid,
                uint32_t tid, uint64_t start_cycle, uint64_t end_cycle);
  void Instant(const char* name, const char* category, uint32_t pid,
               uint32_t tid, uint64_t cycle);
  void Value(const char* name, uint32_t pid, uint64_t cycle, double value);

  // Human-readable labels for the pid / (pid, tid) tracks.
  void NameProcess(uint32_t pid, const std::string& name);
  void NameTrack(uint32_t pid, uint32_t tid, const std::string& name);

  // Absorbs a shard recorder: appends its events (up to this recorder's
  // cap; the excess is counted as dropped, as if recorded here), process
  // and track labels. The parallel engines give each shard a private
  // recorder and merge the shards in fixed shard order, which reproduces
  // the exact event sequence a serial run records — without any shared
  // lock on the simulation hot path. `shard` is left empty.
  void MergeFrom(TraceRecorder* shard);

  size_t num_events() const {
    return num_events_.load(std::memory_order_relaxed);
  }
  uint64_t dropped_events() const {
    return dropped_events_.load(std::memory_order_relaxed);
  }

  // Chrome trace_event "JSON Object Format": {"traceEvents": [...],
  // "displayTimeUnit": "ns"}. Events are stably sorted by (ts) so every
  // per-track sequence is monotone.
  Json ToJson() const;
  std::string ToJsonString() const;

  // Writes ToJsonString() to `path`.
  Status WriteChromeTrace(const std::string& path) const;

 private:
  void Record(TraceEvent event);

  TraceConfig config_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::vector<std::pair<uint32_t, std::string>> process_names_;
  // (pid, tid, name) triples.
  std::vector<std::tuple<uint32_t, uint32_t, std::string>> track_names_;
  std::atomic<size_t> num_events_{0};
  std::atomic<uint64_t> dropped_events_{0};
};

// Writes `text` to `path` in one shot. Shared by the metrics and trace
// exporters (and any tool that wants to persist an exposition string).
Status WriteTextFile(const std::string& text, const std::string& path);

}  // namespace lightrw::obs

#endif  // LIGHTRW_OBS_TRACE_H_
