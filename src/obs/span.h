// Per-query span tracing.
//
// Where the metrics registry answers "how much, in aggregate" and the
// Chrome-trace recorder answers "what was each hardware track doing",
// spans answer the per-query question: *where did this query's cycles
// go*. Every query owns one trace (trace id = the walker ticket the
// driver launched it with), holding a tree of spans:
//
//   query                      service root: arrival -> terminal event
//   ├── queue                  admission enqueue -> dispatch (per attempt)
//   ├── walk                   ClusterSim execution (per attempt), with
//   │                          cycle-stage attribution attrs (dram_info,
//   │                          dram_fetch, sampler, pipeline, network,
//   │                          recovery) and fault events (hwsim retries,
//   │                          uncorrectable ECC, link loss, board death)
//   └── backoff                bounce -> scheduled re-admission
//
// Determinism: span ids are a pure function of (walker ticket, per-trace
// ordinal) — never of wall time, pointers, or thread interleaving — and
// the export sorts spans by (trace, ordinal). Since every query is owned
// by exactly one deterministic event loop (an admission shard or the
// batch loop), the exported document is byte-identical for every host
// thread count; the determinism-gate CI job enforces this.
//
// Flight recorder: in kBreached mode only traces explicitly closed as
// breached keep their spans (bounded to `max_traces`, oldest evicted),
// so full-fleet runs stay memory-bounded while every deadline miss is
// still fully explainable. A compact per-trace summary (terminal cycle,
// outcome) is kept for *every* closed trace regardless of mode — that is
// what the SLO burn-rate monitor consumes.
//
// Threading model: like TraceRecorder, a SpanRecorder is either owned by
// one single-threaded event loop or instantiated per shard and merged in
// fixed shard order via MergeFrom (the export's canonical sort makes the
// merge order invisible). All methods take an internal lock, so sharing
// a recorder across engine shards is safe, merely unnecessary.

#ifndef LIGHTRW_OBS_SPAN_H_
#define LIGHTRW_OBS_SPAN_H_

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/json.h"

namespace lightrw::obs {

enum class SpanMode : uint8_t {
  kAll,       // keep every closed trace's spans
  kBreached,  // flight recorder: keep spans only for breached traces
};

struct SpanConfig {
  SpanMode mode = SpanMode::kAll;
  // Bound on retained closed traces (ring: oldest evicted and counted).
  // Traces still open (their query is in flight) are additionally
  // bounded by the driver's own admission limits.
  size_t max_traces = 1u << 16;
  // Bound on spans buffered per trace; excess spans are dropped and
  // counted (a query's span count is proportional to its retry budget,
  // so this only trips on pathological configurations).
  size_t max_spans_per_trace = 256;
};

// A point event within a span (e.g. a fault annotation).
struct SpanEvent {
  const char* name = "";
  uint64_t at = 0;  // simulated cycle
};

// One recorded span. `name`, `category`, attr keys, and event names must
// be string literals (pointers are stored, not copies).
struct Span {
  uint64_t trace = 0;   // owning trace (walker ticket / query index)
  uint64_t id = 0;      // deterministic, nonzero
  uint64_t parent = 0;  // parent span id; 0 = trace root
  uint64_t seq = 0;     // per-trace ordinal (export sort key)
  const char* name = "";
  const char* category = "";
  int64_t board = -1;  // global board id, -1 = not board-bound
  uint64_t start = 0;  // simulated cycles
  uint64_t end = 0;
  bool open = true;
  std::vector<std::pair<const char*, uint64_t>> attrs;
  std::vector<SpanEvent> events;
};

// Terminal record of one closed trace; kept for every trace in every
// mode. The burn-rate monitor and shed/breach accounting read these.
struct TraceSummary {
  uint64_t trace = 0;
  uint64_t start = 0;     // root span start (admission of the query)
  uint64_t end = 0;       // terminal cycle
  bool breached = false;  // deadline missed, shed, or failed
  const char* outcome = "";
};

// Deterministic span id for (trace, per-trace ordinal): a SplitMix64
// finalizer over the pair, never zero. Exposed so tests can pin it.
uint64_t DeriveSpanId(uint64_t trace, uint64_t seq);

class SpanRecorder {
 public:
  explicit SpanRecorder(const SpanConfig& config = {});
  SpanRecorder(const SpanRecorder&) = delete;
  SpanRecorder& operator=(const SpanRecorder&) = delete;

  const SpanConfig& config() const { return config_; }

  // Opens a span on `trace` and returns its id (0 iff the per-trace span
  // cap dropped it; all other calls ignore id 0, so callers may pass the
  // result straight back without checking).
  uint64_t Begin(uint64_t trace, uint64_t parent, const char* name,
                 const char* category, int64_t board, uint64_t start_cycle);
  // Closes span `id` of `trace` at `end_cycle`. Unknown ids are ignored.
  void End(uint64_t trace, uint64_t id, uint64_t end_cycle);
  // Attaches a numeric attribute / point event to an open-or-closed span
  // of a still-live trace.
  void Attr(uint64_t trace, uint64_t id, const char* key, uint64_t value);
  void Event(uint64_t trace, uint64_t id, const char* name, uint64_t cycle);

  // Settles a trace: records its summary and either retains or discards
  // its spans per the mode. Every driver that opens a root span must
  // close the trace exactly once; spans never closed (batch drivers that
  // only record walk spans) are exported from the open set as-is.
  void CloseTrace(uint64_t trace, uint64_t start_cycle, uint64_t end_cycle,
                  bool breached, const char* outcome);

  // Absorbs a shard recorder (disjoint trace sets; merged in fixed shard
  // order by the parallel drivers). `shard` is left empty.
  void MergeFrom(SpanRecorder* shard);

  // Snapshot of retained + still-open spans, sorted by (trace, seq) —
  // canonical regardless of shard merge order.
  std::vector<Span> Spans() const;
  // Closed-trace summaries sorted by (trace).
  std::vector<TraceSummary> Summaries() const;

  size_t num_open_traces() const;
  size_t num_retained_traces() const;
  uint64_t traces_closed() const;
  uint64_t traces_evicted() const;  // flight-recorder ring overflow
  uint64_t spans_dropped() const;   // per-trace span-cap overflow

  // {"config": {...}, "counters": {...}, "summaries": [...],
  //  "spans": [...]} — deterministic (sorted as above).
  Json ToJson() const;
  std::string ToJsonString(int indent = 2) const;

 private:
  struct TraceBuf {
    std::vector<Span> spans;
    uint64_t next_seq = 0;
  };

  Span* FindLocked(uint64_t trace, uint64_t id);

  SpanConfig config_;
  mutable std::mutex mutex_;
  std::map<uint64_t, TraceBuf> open_;  // keyed by trace id
  // Closed traces whose spans were retained, in close order (the
  // flight-recorder ring; evicts from the front).
  std::deque<TraceBuf> retained_;
  std::vector<TraceSummary> summaries_;
  uint64_t traces_closed_ = 0;
  uint64_t traces_evicted_ = 0;
  uint64_t spans_dropped_ = 0;
};

}  // namespace lightrw::obs

#endif  // LIGHTRW_OBS_SPAN_H_
