// Post-run span analysis: per-query critical-path attribution and
// multi-window SLO burn-rate alerting.
//
// The analyzer folds a query's span tree into a fixed set of latency
// components — where did the cycles between arrival and the terminal
// event go — and names the dominant one. For a breached query (deadline
// missed, shed, or failed) that dominant component is the answer an
// operator needs: "this query was late because it sat in the admission
// queue", not "the run's aggregate p99 moved".
//
// Components (fixed order; ties in the argmax break toward the earlier
// entry, i.e. toward the earlier lifecycle stage):
//   queue_wait   admission enqueue -> dispatch, summed over attempts
//   backoff      retry backoff waits after bounces/failures
//   dram_info    row-index lookups (cache miss -> DRAM) inside walks
//   dram_fetch   adjacency streaming through the burst engine
//   sampler      WRS consume tail after the last data beat
//   pipeline     fixed module-pipeline traversal latency
//   network      walker migrations between boards (incl. retransmits)
//   recovery     fault detection / failover delay charged to the walk
//   other        unattributed remainder of the root interval (e.g.
//                scheduling gaps between a retire and the next event)
//
// The burn-rate monitor implements the standard multi-window SLO alert:
// over a fast and a slow sliding window of simulated time, compute the
// breach rate divided by the error budget; fire while BOTH windows burn
// above the threshold (fast window for responsiveness, slow window so a
// momentary blip cannot page). Alert fire/clear instants are evaluated
// at terminal events, in simulated time, and are therefore exactly as
// deterministic as the run itself.

#ifndef LIGHTRW_OBS_CRITICAL_PATH_H_
#define LIGHTRW_OBS_CRITICAL_PATH_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "obs/json.h"
#include "obs/span.h"

namespace lightrw::obs {

enum Component : size_t {
  kCompQueue = 0,
  kCompBackoff,
  kCompDramInfo,
  kCompDramFetch,
  kCompSampler,
  kCompPipeline,
  kCompNetwork,
  kCompRecovery,
  kCompOther,
  kNumComponents,
};

// Stable short name of a component ("queue_wait", "dram_fetch", ...).
const char* ComponentName(size_t component);

// One analyzed query (trace).
struct QueryAttribution {
  uint64_t trace = 0;
  uint64_t total_cycles = 0;  // root interval: arrival -> terminal event
  bool breached = false;
  std::string outcome;
  std::array<uint64_t, kNumComponents> cycles{};
  size_t dominant = kCompOther;  // argmax over `cycles`

  const char* DominantName() const { return ComponentName(dominant); }
};

// Full-run attribution: every breached query individually (the breach
// report), plus per-component distributions over all analyzed queries.
struct AttributionReport {
  uint64_t queries_analyzed = 0;
  uint64_t breached_count = 0;
  // Every breached query, sorted by trace id; each names its dominant
  // component.
  std::vector<QueryAttribution> breached;
  // Component cycle distributions over all analyzed queries (for
  // per-component p99 reporting).
  std::array<SampleStats, kNumComponents> component_cycles;
  // How often each component dominated a breached query.
  std::array<uint64_t, kNumComponents> dominant_counts{};

  Json ToJson() const;
};

// Folds the recorder's retained spans into per-query attributions. Only
// traces whose spans were retained are analyzed (in kBreached mode that
// is exactly the breach set); traces with a summary but no spans count
// toward queries_analyzed via the summaries passed to the burn monitor,
// not here.
AttributionReport AnalyzeCriticalPaths(const SpanRecorder& spans);

// ---------------------------------------------------------------------------
// Multi-window SLO burn-rate alerting.

struct BurnRateConfig {
  // Error budget: the SLO's allowed breach fraction (e.g. 0.01 = 99%).
  double budget = 0.01;
  // Fire while breach_rate / budget exceeds this in BOTH windows.
  double threshold = 2.0;
  // Sliding windows in simulated cycles.
  uint64_t fast_window_cycles = 1u << 14;
  uint64_t slow_window_cycles = 1u << 17;
};

// Non-OK for out-of-range fields (each named in the message).
Status ValidateBurnRateConfig(const BurnRateConfig& config);

// One alert transition (fire or clear), evaluated at a terminal event.
struct BurnAlert {
  uint64_t cycle = 0;
  bool firing = false;  // true = alert fired here, false = cleared
  double fast_burn = 0.0;
  double slow_burn = 0.0;
};

// Evaluates the monitor over the closed-trace summaries (any order;
// sorted internally by terminal cycle, trace id as the tie-break) and
// returns every fire/clear transition in simulated-time order.
std::vector<BurnAlert> ComputeBurnAlerts(
    const std::vector<TraceSummary>& summaries,
    const BurnRateConfig& config);

Json BurnAlertsToJson(const std::vector<BurnAlert>& alerts);

// Renders the operator-facing "latency attribution" report section:
// breach counts, dominant-component tally, per-component p99, and the
// burn-rate alert log. Empty string when nothing was analyzed and no
// alert fired (so gated reports stay byte-identical without spans).
std::string FormatLatencyAttributionSection(
    const AttributionReport& report, const std::vector<BurnAlert>& alerts);

}  // namespace lightrw::obs

#endif  // LIGHTRW_OBS_CRITICAL_PATH_H_
