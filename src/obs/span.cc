#include "obs/span.h"

#include <algorithm>
#include <utility>

namespace lightrw::obs {

uint64_t DeriveSpanId(uint64_t trace, uint64_t seq) {
  // SplitMix64 finalizer over a golden-ratio combination of the pair.
  uint64_t x = trace * 0x9e3779b97f4a7c15ULL + seq + 1;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x == 0 ? 1 : x;
}

SpanRecorder::SpanRecorder(const SpanConfig& config) : config_(config) {}

uint64_t SpanRecorder::Begin(uint64_t trace, uint64_t parent,
                             const char* name, const char* category,
                             int64_t board, uint64_t start_cycle) {
  std::lock_guard<std::mutex> lock(mutex_);
  TraceBuf& buf = open_[trace];
  if (buf.spans.size() >= config_.max_spans_per_trace) {
    ++spans_dropped_;
    return 0;
  }
  Span span;
  span.trace = trace;
  span.seq = buf.next_seq++;
  span.id = DeriveSpanId(trace, span.seq);
  span.parent = parent;
  span.name = name;
  span.category = category;
  span.board = board;
  span.start = start_cycle;
  span.end = start_cycle;
  buf.spans.push_back(std::move(span));
  return buf.spans.back().id;
}

Span* SpanRecorder::FindLocked(uint64_t trace, uint64_t id) {
  if (id == 0) {
    return nullptr;
  }
  auto it = open_.find(trace);
  if (it == open_.end()) {
    return nullptr;
  }
  for (Span& span : it->second.spans) {
    if (span.id == id) {
      return &span;
    }
  }
  return nullptr;
}

void SpanRecorder::End(uint64_t trace, uint64_t id, uint64_t end_cycle) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (Span* span = FindLocked(trace, id)) {
    span->end = end_cycle;
    span->open = false;
  }
}

void SpanRecorder::Attr(uint64_t trace, uint64_t id, const char* key,
                        uint64_t value) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (Span* span = FindLocked(trace, id)) {
    span->attrs.emplace_back(key, value);
  }
}

void SpanRecorder::Event(uint64_t trace, uint64_t id, const char* name,
                         uint64_t cycle) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (Span* span = FindLocked(trace, id)) {
    span->events.push_back(SpanEvent{name, cycle});
  }
}

void SpanRecorder::CloseTrace(uint64_t trace, uint64_t start_cycle,
                              uint64_t end_cycle, bool breached,
                              const char* outcome) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++traces_closed_;
  TraceSummary summary;
  summary.trace = trace;
  summary.start = start_cycle;
  summary.end = end_cycle;
  summary.breached = breached;
  summary.outcome = outcome;
  summaries_.push_back(summary);

  auto it = open_.find(trace);
  if (it == open_.end()) {
    return;
  }
  const bool keep = config_.mode == SpanMode::kAll || breached;
  if (keep) {
    retained_.push_back(std::move(it->second));
    if (retained_.size() > config_.max_traces) {
      retained_.pop_front();
      ++traces_evicted_;
    }
  }
  open_.erase(it);
}

void SpanRecorder::MergeFrom(SpanRecorder* shard) {
  if (shard == nullptr || shard == this) {
    return;
  }
  std::scoped_lock lock(mutex_, shard->mutex_);
  for (auto& [trace, buf] : shard->open_) {
    open_[trace] = std::move(buf);
  }
  shard->open_.clear();
  for (TraceBuf& buf : shard->retained_) {
    retained_.push_back(std::move(buf));
    if (retained_.size() > config_.max_traces) {
      retained_.pop_front();
      ++traces_evicted_;
    }
  }
  shard->retained_.clear();
  summaries_.insert(summaries_.end(), shard->summaries_.begin(),
                    shard->summaries_.end());
  shard->summaries_.clear();
  traces_closed_ += shard->traces_closed_;
  traces_evicted_ += shard->traces_evicted_;
  spans_dropped_ += shard->spans_dropped_;
  shard->traces_closed_ = 0;
  shard->traces_evicted_ = 0;
  shard->spans_dropped_ = 0;
}

std::vector<Span> SpanRecorder::Spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Span> out;
  for (const TraceBuf& buf : retained_) {
    out.insert(out.end(), buf.spans.begin(), buf.spans.end());
  }
  for (const auto& [trace, buf] : open_) {
    out.insert(out.end(), buf.spans.begin(), buf.spans.end());
  }
  std::sort(out.begin(), out.end(), [](const Span& a, const Span& b) {
    return a.trace != b.trace ? a.trace < b.trace : a.seq < b.seq;
  });
  return out;
}

std::vector<TraceSummary> SpanRecorder::Summaries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceSummary> out = summaries_;
  std::sort(out.begin(), out.end(),
            [](const TraceSummary& a, const TraceSummary& b) {
              return a.trace < b.trace;
            });
  return out;
}

size_t SpanRecorder::num_open_traces() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return open_.size();
}

size_t SpanRecorder::num_retained_traces() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return retained_.size();
}

uint64_t SpanRecorder::traces_closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return traces_closed_;
}

uint64_t SpanRecorder::traces_evicted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return traces_evicted_;
}

uint64_t SpanRecorder::spans_dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_dropped_;
}

Json SpanRecorder::ToJson() const {
  Json doc = Json::MakeObject();
  Json config = Json::MakeObject();
  config.Set("mode", config_.mode == SpanMode::kAll ? "all" : "breached");
  config.Set("max_traces", static_cast<uint64_t>(config_.max_traces));
  config.Set("max_spans_per_trace",
             static_cast<uint64_t>(config_.max_spans_per_trace));
  doc.Set("config", std::move(config));

  Json counters = Json::MakeObject();
  counters.Set("traces_closed", traces_closed());
  counters.Set("traces_retained",
               static_cast<uint64_t>(num_retained_traces()));
  counters.Set("traces_open", static_cast<uint64_t>(num_open_traces()));
  counters.Set("traces_evicted", traces_evicted());
  counters.Set("spans_dropped", spans_dropped());
  doc.Set("counters", std::move(counters));

  Json summaries = Json::MakeArray();
  for (const TraceSummary& s : Summaries()) {
    Json j = Json::MakeObject();
    j.Set("trace", s.trace);
    j.Set("start", s.start);
    j.Set("end", s.end);
    j.Set("breached", s.breached);
    j.Set("outcome", s.outcome);
    summaries.Append(std::move(j));
  }
  doc.Set("summaries", std::move(summaries));

  Json spans = Json::MakeArray();
  for (const Span& span : Spans()) {
    Json j = Json::MakeObject();
    j.Set("trace", span.trace);
    j.Set("span", span.id);
    j.Set("parent", span.parent);
    j.Set("seq", span.seq);
    j.Set("name", span.name);
    j.Set("category", span.category);
    j.Set("board", span.board);
    j.Set("start", span.start);
    j.Set("end", span.end);
    j.Set("open", span.open);
    if (!span.attrs.empty()) {
      Json attrs = Json::MakeObject();
      for (const auto& [key, value] : span.attrs) {
        attrs.Set(key, value);
      }
      j.Set("attrs", std::move(attrs));
    }
    if (!span.events.empty()) {
      Json events = Json::MakeArray();
      for (const SpanEvent& event : span.events) {
        Json e = Json::MakeObject();
        e.Set("name", event.name);
        e.Set("at", event.at);
        events.Append(std::move(e));
      }
      j.Set("events", std::move(events));
    }
    spans.Append(std::move(j));
  }
  doc.Set("spans", std::move(spans));
  return doc;
}

std::string SpanRecorder::ToJsonString(int indent) const {
  return ToJson().Dump(indent);
}

}  // namespace lightrw::obs
