#include "reliability/chaos.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "baseline/engine.h"
#include "distributed/dist_engine.h"
#include "distributed/partition.h"
#include "obs/span.h"
#include "reliability/membership.h"
#include "rng/rng.h"

namespace lightrw::reliability {

namespace {

// Scenario archetypes, cycled over the campaign by index. Each exercises
// a distinct corner of the membership state machine.
enum Archetype : uint32_t {
  kSingleDeath = 0,
  kCascade = 1,
  kDeathDuringRebuild = 2,
  kSpareExhaustion = 3,
  kEccStorm = 4,
  kLinkLoss = 5,
  kNumArchetypes = 6,
};

const char* ArchetypeName(uint32_t kind) {
  switch (kind) {
    case kSingleDeath:
      return "single-death";
    case kCascade:
      return "cascade";
    case kDeathDuringRebuild:
      return "death-during-rebuild";
    case kSpareExhaustion:
      return "spare-exhaustion";
    case kEccStorm:
      return "ecc-storm";
    case kLinkLoss:
      return "link-loss";
  }
  return "unknown";
}

std::string TwoDigit(uint32_t n) {
  std::string out = std::to_string(n);
  if (n < 10) out.insert(out.begin(), '0');
  return out;
}

// Stats fields the determinism invariant compares across thread counts.
// Membership is appended as JSON so epoch/cycle/board/state all count.
std::string StatsFingerprint(const distributed::DistributedRunStats& s) {
  const ReliabilityStats& r = s.reliability;
  std::string f;
  for (const uint64_t v :
       {s.cycles, s.queries, s.steps, s.migrations, r.board_failures,
        r.checkpoints, r.walkers_recovered, r.walkers_lost,
        r.replayed_steps, r.walks_failed, r.spares_activated,
        r.rebuilds_completed, r.rebuilds_aborted, r.spare_exhaustions,
        r.rebuild_cycles, r.dram_correctable, r.retransmissions}) {
    f += std::to_string(v);
    f += '/';
  }
  f += MembershipToJson(s.membership).Dump();
  return f;
}

}  // namespace

Status ValidateChaosConfig(const ChaosConfig& config) {
  if (config.num_scenarios == 0 || config.num_scenarios > 4096) {
    return InvalidArgumentError("num_scenarios must be in [1, 4096]");
  }
  if (config.num_boards < 2) {
    return InvalidArgumentError(
        "chaos campaigns need at least 2 boards (every scenario kills "
        "one)");
  }
  if (config.max_spare_boards > 256) {
    return InvalidArgumentError("max_spare_boards must be <= 256");
  }
  if (config.num_queries == 0 || config.walk_length == 0) {
    return InvalidArgumentError(
        "num_queries and walk_length must be >= 1");
  }
  if (config.thread_counts.empty()) {
    return InvalidArgumentError("thread_counts must not be empty");
  }
  return Status::Ok();
}

distributed::DistributedConfig MakeChaosScenario(const ChaosConfig& config,
                                                 uint32_t index,
                                                 std::string* name) {
  rng::SplitMix64 mix(config.seed ^
                      (0x9e3779b97f4a7c15ULL * (index + 1)));
  const distributed::BoardId boards = config.num_boards;
  distributed::DistributedConfig dc;
  dc.board.num_instances = 1;
  dc.board.seed = mix.Next() | 1;
  dc.replicate_graph = (mix.Next() & 1) != 0;
  dc.num_spare_boards =
      config.max_spare_boards == 0
          ? 0
          : static_cast<uint32_t>(mix.Next() %
                                  (config.max_spare_boards + 1));
  dc.rebuild_bytes_per_cycle =
      16.0 * static_cast<double>(1 + mix.Next() % 4);  // 16..64 B/cycle

  FaultConfig& faults = dc.board.faults;
  faults.enabled = true;
  faults.seed = mix.Next() | 1;
  // Checkpointing always on: the campaign asserts zero lost walkers.
  faults.checkpoint_interval_cycles = 1ull << (11 + mix.Next() % 3);
  faults.detection_latency_cycles = 1024;

  const uint64_t base = 20000 + mix.Next() % 60000;
  const uint64_t burst_gap = 2048 + mix.Next() % 4096;
  const uint32_t first_victim = static_cast<uint32_t>(mix.Next() % boards);
  const uint32_t kind = index % kNumArchetypes;
  switch (kind) {
    case kSingleDeath:
      faults.board_deaths.push_back({base, first_victim});
      break;
    case kCascade: {
      // A timed burst of 2..min(3, boards-1) distinct owner deaths.
      const uint32_t max_kills = std::min<uint32_t>(3, boards - 1);
      const uint32_t kills =
          max_kills <= 2 ? max_kills
                         : 2 + static_cast<uint32_t>(mix.Next() %
                                                     (max_kills - 1));
      for (uint32_t j = 0; j < kills; ++j) {
        faults.board_deaths.push_back(
            {base + j * burst_gap, (first_victim + j) % boards});
      }
      break;
    }
    case kDeathDuringRebuild:
      if (config.max_spare_boards > 0) {
        // Kill an owner, then kill the spare that activates for it
        // (spares activate lowest-id first, so the victim is board
        // `boards`) while the rebuild is still in flight.
        dc.num_spare_boards = std::max<uint32_t>(dc.num_spare_boards, 1);
        faults.board_deaths.push_back({base, first_victim});
        faults.board_deaths.push_back(
            {base + faults.detection_latency_cycles + burst_gap, boards});
      } else {
        faults.board_deaths.push_back({base, first_victim});
      }
      break;
    case kSpareExhaustion: {
      // One more owner death than there are spares; the last death
      // finds the pool empty and the cluster degrades to survivors.
      dc.num_spare_boards =
          std::min<uint32_t>(dc.num_spare_boards, boards - 2);
      const uint32_t kills =
          std::min<uint32_t>(dc.num_spare_boards + 1, boards - 1);
      for (uint32_t j = 0; j < kills; ++j) {
        faults.board_deaths.push_back(
            {base + j * burst_gap, (first_victim + j) % boards});
      }
      break;
    }
    case kEccStorm:
      faults.dram_correctable_rate =
          0.01 + 0.002 * static_cast<double>(mix.Next() % 10);
      faults.board_deaths.push_back({base, first_victim});
      break;
    case kLinkLoss:
      faults.link_drop_rate = 0.005;
      faults.link_corrupt_rate = 0.002;
      faults.board_deaths.push_back({base, first_victim});
      break;
    default:
      break;
  }

  if (name != nullptr) {
    // Built with append() rather than chained operator+: GCC 12's
    // -Werror=restrict misfires on the temporary chain.
    name->clear();
    name->append("s");
    name->append(TwoDigit(index));
    name->append("-");
    name->append(ArchetypeName(kind));
    name->append(dc.replicate_graph ? "-repl" : "-part");
    name->append("-spares");
    name->append(std::to_string(dc.num_spare_boards));
  }
  return dc;
}

StatusOr<ChaosCampaignResult> RunChaosCampaign(const graph::CsrGraph& graph,
                                               const apps::WalkApp& app,
                                               const ChaosConfig& config) {
  LIGHTRW_RETURN_IF_ERROR(ValidateChaosConfig(config));
  const distributed::Partition partition = distributed::MakePartition(
      graph, config.num_boards, distributed::PartitionStrategy::kHash);

  ChaosCampaignResult result;
  result.scenarios.reserve(config.num_scenarios);
  for (uint32_t i = 0; i < config.num_scenarios; ++i) {
    ChaosScenarioResult sr;
    sr.index = i;
    const distributed::DistributedConfig scenario =
        MakeChaosScenario(config, i, &sr.name);
    const auto queries = apps::MakeVertexQueries(
        graph, config.walk_length, config.seed + i, config.num_queries);
    const size_t offered = queries.size();

    struct Capture {
      bool ok = false;
      std::string error;
      distributed::DistributedRunStats stats;
      baseline::WalkOutput output;
      std::string span_json;
    };
    std::vector<Capture> runs;
    runs.reserve(config.thread_counts.size());
    for (const uint32_t threads : config.thread_counts) {
      distributed::DistributedConfig run_config = scenario;
      run_config.num_threads = threads;
      obs::SpanRecorder spans;
      run_config.board.spans = &spans;
      Capture cap;
      distributed::DistributedEngine engine(&graph, &app, &partition,
                                            run_config);
      const auto run = engine.Run(queries, &cap.output);
      if (run.ok()) {
        cap.ok = true;
        cap.stats = *run;
        obs::Json doc = spans.ToJson();
        doc.Set("membership", MembershipToJson(cap.stats.membership));
        cap.span_json = doc.Dump(2);
      } else {
        cap.error = run.status().message();
      }
      runs.push_back(std::move(cap));
    }

    const Capture& first = runs.front();
    auto violate = [&sr](std::string what) {
      sr.violations.push_back(std::move(what));
    };
    if (!first.ok) {
      violate("engine: " + first.error);
    } else {
      sr.stats = first.stats;
      // Conservation: every offered query retires with a path.
      if (first.stats.queries != offered ||
          first.output.num_paths() != offered) {
        violate("conservation: offered " + std::to_string(offered) +
                ", retired " + std::to_string(first.stats.queries) +
                ", paths " + std::to_string(first.output.num_paths()));
      }
      // Checkpointing on + a guaranteed survivor: nothing may be lost.
      if (first.stats.reliability.walkers_lost != 0 ||
          first.stats.reliability.walks_failed != 0) {
        violate("loss: " +
                std::to_string(first.stats.reliability.walkers_lost) +
                " walker(s) lost, " +
                std::to_string(first.stats.reliability.walks_failed) +
                " walk(s) failed with checkpointing on");
      }
      // Membership log: monotone epochs, legal transitions only.
      const Status membership = CheckMembershipLog(first.stats.membership);
      if (!membership.ok()) {
        violate(membership.message());
      }
      // Accounting: exactly the scheduled distinct deaths fired.
      const size_t scheduled =
          EffectiveBoardDeaths(scenario.board.faults).size();
      if (first.stats.reliability.board_failures != scheduled) {
        violate("accounting: " + std::to_string(scheduled) +
                " death(s) scheduled, " +
                std::to_string(first.stats.reliability.board_failures) +
                " board_failures counted");
      }
    }
    // Determinism: every thread count must reproduce the first run
    // byte-for-byte (walk corpus, stats fingerprint, span JSON).
    for (size_t r = 1; r < runs.size(); ++r) {
      const Capture& other = runs[r];
      const std::string where =
          "threads=" + std::to_string(config.thread_counts[r]);
      if (other.ok != first.ok) {
        violate("determinism: " + where + " run status diverged");
        continue;
      }
      if (!first.ok) {
        continue;
      }
      if (other.output.vertices != first.output.vertices ||
          other.output.offsets != first.output.offsets) {
        violate("determinism: " + where + " walk corpus diverged");
      }
      if (StatsFingerprint(other.stats) != StatsFingerprint(first.stats)) {
        violate("determinism: " + where + " stats fingerprint diverged");
      }
      if (other.span_json != first.span_json) {
        violate("determinism: " + where + " span JSON diverged");
      }
    }

    sr.passed = sr.violations.empty();
    if (!sr.passed) {
      ++result.failures;
    }
    if (i == 0 && first.ok) {
      result.sampled_span_json = first.span_json;
    }
    result.scenarios.push_back(std::move(sr));
  }
  return result;
}

obs::Json ChaosCampaignResult::ToJson() const {
  obs::Json doc = obs::Json::MakeObject();
  doc.Set("num_scenarios", static_cast<uint64_t>(scenarios.size()));
  doc.Set("failures", static_cast<uint64_t>(failures));
  doc.Set("passed", Passed());
  obs::Json rows = obs::Json::MakeArray();
  for (const ChaosScenarioResult& sr : scenarios) {
    obs::Json row = obs::Json::MakeObject();
    row.Set("index", static_cast<uint64_t>(sr.index));
    row.Set("name", sr.name);
    row.Set("passed", sr.passed);
    obs::Json violations = obs::Json::MakeArray();
    for (const std::string& v : sr.violations) {
      violations.Append(v);
    }
    row.Set("violations", std::move(violations));
    const ReliabilityStats& r = sr.stats.reliability;
    row.Set("cycles", sr.stats.cycles);
    row.Set("queries", sr.stats.queries);
    row.Set("board_failures", r.board_failures);
    row.Set("spares_activated", r.spares_activated);
    row.Set("rebuilds_completed", r.rebuilds_completed);
    row.Set("rebuilds_aborted", r.rebuilds_aborted);
    row.Set("spare_exhaustions", r.spare_exhaustions);
    row.Set("walkers_recovered", r.walkers_recovered);
    row.Set("walkers_lost", r.walkers_lost);
    row.Set("membership_epochs",
            static_cast<uint64_t>(sr.stats.membership.size()));
    rows.Append(std::move(row));
  }
  doc.Set("scenarios", std::move(rows));
  return doc;
}

}  // namespace lightrw::reliability
