#include "reliability/fault_injector.h"

#include <algorithm>
#include <string>

#include "obs/metrics.h"

namespace lightrw::reliability {

Status ValidateFaultConfig(const FaultConfig& config) {
  const auto rate_ok = [](double rate) { return rate >= 0.0 && rate <= 1.0; };
  if (!rate_ok(config.dram_correctable_rate) ||
      !rate_ok(config.dram_uncorrectable_rate) ||
      !rate_ok(config.link_drop_rate) || !rate_ok(config.link_corrupt_rate)) {
    return InvalidArgumentError(
        "fault rates must be probabilities in [0, 1]");
  }
  if (config.dram_correctable_rate + config.dram_uncorrectable_rate > 1.0) {
    return InvalidArgumentError(
        "dram_correctable_rate + dram_uncorrectable_rate must not exceed 1");
  }
  if (config.link_drop_rate + config.link_corrupt_rate > 1.0) {
    return InvalidArgumentError(
        "link_drop_rate + link_corrupt_rate must not exceed 1");
  }
  if (!config.enabled) {
    return Status::Ok();
  }
  if ((config.link_drop_rate > 0.0 || config.link_corrupt_rate > 0.0) &&
      config.retransmit_timeout_cycles == 0) {
    return InvalidArgumentError(
        "retransmit_timeout_cycles must be >= 1 when link faults are "
        "enabled");
  }
  if (config.retransmit_backoff_shift > 16) {
    return InvalidArgumentError(
        "retransmit_backoff_shift above 16 overflows the modeled timeout");
  }
  if (config.max_dram_retries > 64) {
    return InvalidArgumentError("max_dram_retries must be <= 64");
  }
  if (config.max_retransmissions > 64) {
    return InvalidArgumentError("max_retransmissions must be <= 64");
  }
  if (config.board_deaths.size() > 4096) {
    return InvalidArgumentError(
        "board_deaths schedules more than 4096 deaths");
  }
  for (size_t i = 0; i < config.board_deaths.size(); ++i) {
    if (config.board_deaths[i].cycle == 0) {
      return InvalidArgumentError(
          "board_deaths[" + std::to_string(i) +
          "].cycle must be >= 1 (cycle 0 means 'never')");
    }
  }
  return Status::Ok();
}

std::vector<BoardDeath> EffectiveBoardDeaths(const FaultConfig& config) {
  std::vector<BoardDeath> deaths;
  if (!config.enabled) {
    return deaths;
  }
  if (config.fail_cycle > 0) {
    deaths.push_back({config.fail_cycle, config.fail_board});
  }
  for (const BoardDeath& d : config.board_deaths) {
    if (d.cycle > 0) {
      deaths.push_back(d);
    }
  }
  std::sort(deaths.begin(), deaths.end(),
            [](const BoardDeath& a, const BoardDeath& b) {
              return a.cycle != b.cycle ? a.cycle < b.cycle
                                        : a.board < b.board;
            });
  // Only the first death of a board fires; later entries are no-ops.
  std::vector<BoardDeath> unique;
  unique.reserve(deaths.size());
  for (const BoardDeath& d : deaths) {
    bool seen = false;
    for (const BoardDeath& u : unique) {
      if (u.board == d.board) {
        seen = true;
        break;
      }
    }
    if (!seen) {
      unique.push_back(d);
    }
  }
  return unique;
}

void ReliabilityStats::Accumulate(const ReliabilityStats& other) {
  dram_correctable += other.dram_correctable;
  dram_uncorrectable += other.dram_uncorrectable;
  dram_retries += other.dram_retries;
  dram_failed_accesses += other.dram_failed_accesses;
  link_dropped += other.link_dropped;
  link_corrupted += other.link_corrupted;
  retransmissions += other.retransmissions;
  link_failed_sends += other.link_failed_sends;
  board_failures += other.board_failures;
  checkpoints += other.checkpoints;
  walkers_recovered += other.walkers_recovered;
  walkers_lost += other.walkers_lost;
  replayed_steps += other.replayed_steps;
  recovery_cycles += other.recovery_cycles;
  walks_failed += other.walks_failed;
  spares_activated += other.spares_activated;
  rebuilds_completed += other.rebuilds_completed;
  rebuilds_aborted += other.rebuilds_aborted;
  spare_exhaustions += other.spare_exhaustions;
  rebuild_cycles += other.rebuild_cycles;
}

Status ReliabilityStatus(const ReliabilityStats& stats) {
  if (stats.walkers_lost > 0 || stats.walks_failed > 0) {
    std::string message =
        "run lost data: " + std::to_string(stats.walks_failed) +
        " walk(s) failed on uncorrectable faults, " +
        std::to_string(stats.walkers_lost) +
        " walker(s) unrecoverable (no checkpoint)";
    if (stats.spare_exhaustions > 0) {
      message += "; spare pool exhausted " +
                 std::to_string(stats.spare_exhaustions) +
                 " time(s) (survivor-only degraded mode)";
    }
    return InternalError(message);
  }
  return Status::Ok();
}

void PublishReliabilityMetrics(
    obs::MetricsRegistry* metrics, const ReliabilityStats& stats,
    const std::vector<std::pair<std::string, std::string>>& labels) {
  if (metrics == nullptr) {
    return;
  }
  const struct {
    const char* name;
    uint64_t value;
  } counters[] = {
      {"reliability.dram.correctable", stats.dram_correctable},
      {"reliability.dram.uncorrectable", stats.dram_uncorrectable},
      {"reliability.dram.retries", stats.dram_retries},
      {"reliability.dram.failed_accesses", stats.dram_failed_accesses},
      {"reliability.link.dropped", stats.link_dropped},
      {"reliability.link.corrupted", stats.link_corrupted},
      {"reliability.link.retransmissions", stats.retransmissions},
      {"reliability.link.failed_sends", stats.link_failed_sends},
      {"reliability.board.failures", stats.board_failures},
      {"reliability.checkpoint.taken", stats.checkpoints},
      {"reliability.walkers.recovered", stats.walkers_recovered},
      {"reliability.walkers.lost", stats.walkers_lost},
      {"reliability.walkers.replayed_steps", stats.replayed_steps},
      {"reliability.recovery.cycles", stats.recovery_cycles},
      {"reliability.walks.failed", stats.walks_failed},
      {"reliability.spares.activated", stats.spares_activated},
      {"reliability.rebuilds.completed", stats.rebuilds_completed},
      {"reliability.rebuilds.aborted", stats.rebuilds_aborted},
      {"reliability.spares.exhausted", stats.spare_exhaustions},
      {"reliability.rebuild.cycles", stats.rebuild_cycles},
  };
  for (const auto& [name, value] : counters) {
    if (value != 0) {
      metrics->GetCounter(name, labels)->Increment(value);
    }
  }
}

FaultStream::FaultStream(const FaultConfig& config, uint64_t component_id)
    : config_(config),
      enabled_(config.enabled),
      gen_(rng::SplitMix64(config.seed ^
                           (0x9e3779b97f4a7c15ULL * (component_id + 1)))
               .Next()) {}

DramFault FaultStream::NextDramFault() {
  if (!enabled_) {
    return DramFault::kNone;
  }
  const double total =
      config_.dram_correctable_rate + config_.dram_uncorrectable_rate;
  if (total <= 0.0) {
    return DramFault::kNone;
  }
  ++draws_;
  const double u = gen_.NextUnit();
  if (u < config_.dram_uncorrectable_rate) {
    return DramFault::kUncorrectable;
  }
  if (u < total) {
    return DramFault::kCorrectable;
  }
  return DramFault::kNone;
}

LinkFault FaultStream::NextLinkFault() {
  if (!enabled_) {
    return LinkFault::kNone;
  }
  const double total = config_.link_drop_rate + config_.link_corrupt_rate;
  if (total <= 0.0) {
    return LinkFault::kNone;
  }
  ++draws_;
  const double u = gen_.NextUnit();
  if (u < config_.link_drop_rate) {
    return LinkFault::kDropped;
  }
  if (u < total) {
    return LinkFault::kCorrupted;
  }
  return LinkFault::kNone;
}

}  // namespace lightrw::reliability
