// Deterministic chaos-campaign harness for the self-healing cluster.
//
// A campaign generates N seeded failure scenarios — single board deaths,
// cascades, death-during-rebuild, spare exhaustion, ECC storms, link
// loss — runs each through the distributed engine, and machine-checks
// the invariants the reliability stack promises:
//
//   conservation   every offered query retires with a path
//   no lost walks  checkpointing on + a survivor => walkers_lost == 0
//   membership     the epoch log is monotone and every transition legal
//                  (reliability::CheckMembershipLog)
//   accounting     board_failures equals the scheduled distinct deaths
//   determinism    every configured thread count produces byte-identical
//                  walk corpora, stats fingerprints, and span JSON
//
// Scenario configurations are a pure function of (campaign seed, index),
// so a failing scenario reproduces exactly from its index alone — the
// harness is a property test with named counterexamples, not a fuzzer.

#ifndef LIGHTRW_RELIABILITY_CHAOS_H_
#define LIGHTRW_RELIABILITY_CHAOS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "apps/walk_app.h"
#include "common/status.h"
#include "distributed/cluster_sim.h"
#include "graph/csr.h"
#include "obs/json.h"

namespace lightrw::reliability {

struct ChaosConfig {
  uint64_t seed = 1;
  uint32_t num_scenarios = 16;
  // Cluster shape every scenario runs on. Scenarios draw their spare
  // count from [0, max_spare_boards] (archetypes that need a spare
  // force at least one).
  distributed::BoardId num_boards = 4;
  uint32_t max_spare_boards = 2;
  // Workload per scenario.
  uint32_t num_queries = 256;
  uint32_t walk_length = 16;
  // Host thread counts the determinism invariant compares across.
  std::vector<uint32_t> thread_counts = {1, 4};
};

Status ValidateChaosConfig(const ChaosConfig& config);

// Scenario `index`'s distributed configuration, derived deterministically
// from (config.seed, index). `name` (optional) receives a short
// human-readable label, e.g. "s03-spare-exhaustion".
distributed::DistributedConfig MakeChaosScenario(const ChaosConfig& config,
                                                 uint32_t index,
                                                 std::string* name);

struct ChaosScenarioResult {
  uint32_t index = 0;
  std::string name;
  bool passed = false;
  // One line per violated invariant; empty iff passed.
  std::vector<std::string> violations;
  // Stats of the scenario's first-thread-count run.
  distributed::DistributedRunStats stats;
};

struct ChaosCampaignResult {
  std::vector<ChaosScenarioResult> scenarios;
  uint32_t failures = 0;
  bool Passed() const { return failures == 0; }
  // Scenario 0's span-JSON document (spans + membership section) at the
  // first thread count — what CI feeds to check_span_json.py.
  std::string sampled_span_json;
  // Campaign report: per-scenario verdicts, violations, and counters.
  obs::Json ToJson() const;
};

// Runs the whole campaign. Non-OK only on configuration errors; invariant
// violations are reported per scenario in the result (a violation is a
// finding, not a harness failure).
StatusOr<ChaosCampaignResult> RunChaosCampaign(const graph::CsrGraph& graph,
                                               const apps::WalkApp& app,
                                               const ChaosConfig& config);

}  // namespace lightrw::reliability

#endif  // LIGHTRW_RELIABILITY_CHAOS_H_
