// Cluster membership view for the self-healing distributed simulation.
//
// Every physical board (partition owners and hot spares alike) is in
// exactly one membership state, and every state change bumps a cluster
// epoch by exactly one. The transition log is the authoritative record
// of what the cluster looked like at any simulated cycle: ClusterSim
// appends to it deterministically from the event loop, threads it into
// trace instants and ReliabilityStats, and exports it through
// DistributedRunStats so tools (walk_tool --spans-out, the chaos
// harness, scripts/check_span_json.py) can machine-check it.
//
// State machine:
//
//     kAlive ────death────> kDead            (originals start kAlive)
//     kSpare ──activation──> kRebuilding     (spares start kSpare)
//     kSpare ────death────> kDead            (idle spare lost)
//     kRebuilding ──done──> kAlive           (ownership transfers)
//     kRebuilding ──death─> kDead            (death during rebuild)
//
// kDead is terminal: a dead board never returns; its partition share is
// re-served by a rebuilt spare or, with the spare pool exhausted, by the
// surviving boards in degraded mode.

#ifndef LIGHTRW_RELIABILITY_MEMBERSHIP_H_
#define LIGHTRW_RELIABILITY_MEMBERSHIP_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "obs/json.h"

namespace lightrw::reliability {

// Lifecycle state of one physical board in the membership view.
enum class BoardState : uint8_t {
  kAlive = 0,       // serving its partition share
  kDead = 1,        // permanently failed (terminal)
  kRebuilding = 2,  // activated spare copying a dead board's share
  kSpare = 3,       // idle hot spare, not yet activated
};

// Stable lowercase name ("alive" / "dead" / "rebuilding" / "spare"),
// used in the JSON export and trace labels.
const char* BoardStateName(BoardState state);

// One membership transition. Epochs start at 1 and increase by exactly
// one per transition, so the log doubles as a monotonic cluster clock:
// any two runs that agree on the log agree on the failure history.
struct MembershipTransition {
  uint64_t epoch = 0;
  uint64_t cycle = 0;  // simulated cycle of the transition
  uint32_t board = 0;  // global board id (see DistributedConfig::first_board)
  BoardState from = BoardState::kAlive;
  BoardState to = BoardState::kAlive;

  bool operator==(const MembershipTransition& other) const {
    return epoch == other.epoch && cycle == other.cycle &&
           board == other.board && from == other.from && to == other.to;
  }
};

// Machine-checked invariants of a membership log: epochs start at 1 and
// increase by exactly 1, cycles never regress, states actually change,
// and every edge is legal in the state machine above. Non-OK names the
// first violating entry.
Status CheckMembershipLog(const std::vector<MembershipTransition>& log);

// JSON export: an array of {epoch, cycle, board, from, to} objects in
// log order (the "membership" section of walk_tool --spans-out, checked
// by scripts/check_span_json.py).
obs::Json MembershipToJson(const std::vector<MembershipTransition>& log);

}  // namespace lightrw::reliability

#endif  // LIGHTRW_RELIABILITY_MEMBERSHIP_H_
