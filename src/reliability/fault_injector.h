// Deterministic fault injection for the simulated accelerator stack.
//
// Production random-walk deployments treat failure as routine: DRAM
// develops transient ECC errors, network links drop and corrupt frames,
// and whole boards go dark mid-run. The cycle simulators are the ideal
// place to model that, because every fault, retry, and recovery becomes a
// *counted* event that tests can assert on exactly.
//
// A FaultInjector schedule is purely a function of (seed, component id,
// draw index): two runs with the same configuration produce bit-identical
// fault sequences regardless of wall-clock timing, and the fault streams
// are independent of the walk-sampling RNG streams, so enabling
// fault injection with all rates at zero changes no simulated outcome.
//
// Fault taxonomy (see DESIGN.md "Reliability model"):
//   DRAM  correctable ECC error    burst re-issued once (modeled retry)
//         uncorrectable ECC error  bounded re-issues, then the access fails
//   Link  dropped message          ack timeout -> retransmission
//         corrupted message        receiver NACK/CRC -> retransmission
//   Board whole-board failure      scheduled (fail_cycle); in-flight
//         walkers recover from their last checkpoint on surviving boards

#ifndef LIGHTRW_RELIABILITY_FAULT_INJECTOR_H_
#define LIGHTRW_RELIABILITY_FAULT_INJECTOR_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "rng/rng.h"

namespace lightrw::obs {
class MetricsRegistry;
}  // namespace lightrw::obs

namespace lightrw::reliability {

// Outcome of one DRAM access draw.
enum class DramFault {
  kNone,
  kCorrectable,    // single-bit flip: ECC corrects, burst re-issued once
  kUncorrectable,  // multi-bit flip: the access must be retried or fails
};

// Outcome of one link-message draw.
enum class LinkFault {
  kNone,
  kDropped,    // frame lost on the wire: sender times out waiting for ack
  kCorrupted,  // CRC failure at the receiver: explicit NACK, same retry path
};

// One scheduled permanent board death: local board `board` stops
// serving at simulated cycle `cycle` (cycle 0 is rejected by
// validation — it would mean "never", matching fail_cycle).
struct BoardDeath {
  uint64_t cycle = 0;
  uint32_t board = 0;
};

// Fault schedule and recovery-protocol parameters. The default
// configuration is fully disabled: engines behave bit-identically to a
// build without the reliability subsystem.
struct FaultConfig {
  // Master switch. When false, no fault stream is consulted and no timing
  // or output changes anywhere in the stack.
  bool enabled = false;

  // Seed of the fault schedule; independent of the walk-sampling seed.
  uint64_t seed = 1;

  // Per-DRAM-request fault probabilities (drawn once per Access).
  double dram_correctable_rate = 0.0;
  double dram_uncorrectable_rate = 0.0;
  // Re-issues of a burst after an uncorrectable error before the access
  // is declared failed (the Status-level failure path).
  uint32_t max_dram_retries = 3;

  // Per-message fault probabilities on a network link.
  double link_drop_rate = 0.0;
  double link_corrupt_rate = 0.0;
  // Retransmission protocol: a lost/corrupted message is resent after an
  // ack timeout that doubles `retransmit_backoff_shift` bits per attempt,
  // at most `max_retransmissions` times before the send is declared
  // failed and the walker recovers from its checkpoint.
  uint32_t max_retransmissions = 8;
  uint32_t retransmit_timeout_cycles = 2048;
  uint32_t retransmit_backoff_shift = 1;

  // Whole-board failure schedule: board `fail_board` stops serving at
  // simulated cycle `fail_cycle` (0 disables). Walkers resident on (or
  // migrating to) the dead board are recovered on surviving boards.
  // Kept as the legacy single-death schedule; it folds into
  // `board_deaths` (see EffectiveBoardDeaths).
  uint64_t fail_cycle = 0;
  uint32_t fail_board = 0;

  // Generalized death schedule: each entry permanently kills one board
  // at the given cycle. Boards are local ids covering partition owners
  // and hot spares (ids >= the partition board count name spares), so a
  // schedule can express cascades, death-during-rebuild, and spare
  // exhaustion. Only the first death per board takes effect.
  std::vector<BoardDeath> board_deaths;

  // Opt-in for configurations that knowingly lose walks: a scheduled
  // board death with checkpoint_interval_cycles == 0 drops every
  // in-flight walk on the dead board, so ValidateDistributedConfig
  // rejects that combination unless this is set.
  bool allow_walker_loss = false;

  // Walker-state checkpoint cadence in simulated cycles. Smaller
  // intervals replay fewer steps on recovery but take more checkpoints;
  // 0 disables checkpointing, so a recovering walker's walk is lost
  // (retired truncated and counted).
  uint64_t checkpoint_interval_cycles = 1u << 16;

  // Cycles between a board failure and its detection (heartbeat loss).
  uint32_t detection_latency_cycles = 4096;
  // Modeled per-walker cost of reading checkpointed state and
  // re-dispatching it to a surviving board.
  uint32_t recovery_cycles_per_walker = 512;

  // True when any fault source is actually active.
  bool AnyFaultsPossible() const {
    return enabled &&
           (dram_correctable_rate > 0.0 || dram_uncorrectable_rate > 0.0 ||
            link_drop_rate > 0.0 || link_corrupt_rate > 0.0 ||
            fail_cycle > 0 || !board_deaths.empty());
  }
};

// Structural validation of a fault configuration (rates are
// probabilities, protocol parameters are nonzero where required).
Status ValidateFaultConfig(const FaultConfig& config);

// The effective death schedule: the legacy fail_cycle/fail_board pair
// (when set) merged with `board_deaths`, sorted by (cycle, board), with
// duplicate boards dropped (only the first death of a board fires).
// Empty when fault injection is disabled.
std::vector<BoardDeath> EffectiveBoardDeaths(const FaultConfig& config);

// Every fault, retry, and recovery event, counted. Summed over
// components (DRAM channels, links, boards) into the run stats, the
// metrics registry, and the run report.
struct ReliabilityStats {
  // DRAM ECC.
  uint64_t dram_correctable = 0;
  uint64_t dram_uncorrectable = 0;
  uint64_t dram_retries = 0;          // burst re-issues (both kinds)
  uint64_t dram_failed_accesses = 0;  // retry budget exhausted
  // Network link.
  uint64_t link_dropped = 0;
  uint64_t link_corrupted = 0;
  uint64_t retransmissions = 0;
  uint64_t link_failed_sends = 0;  // retransmission budget exhausted
  // Checkpoint / failover.
  uint64_t board_failures = 0;
  uint64_t checkpoints = 0;
  uint64_t walkers_recovered = 0;  // re-dispatched from a checkpoint
  uint64_t walkers_lost = 0;       // no checkpoint to recover from
  uint64_t replayed_steps = 0;     // steps re-executed after a rollback
  uint64_t recovery_cycles = 0;    // detection + re-dispatch cost, summed
  // Walks that could not run to completion (uncorrectable data loss).
  uint64_t walks_failed = 0;
  // Self-healing (hot spares + partition rebuild).
  uint64_t spares_activated = 0;    // spare -> rebuilding transitions
  uint64_t rebuilds_completed = 0;  // rebuilding -> alive (owner transfer)
  uint64_t rebuilds_aborted = 0;    // spare died mid-rebuild
  uint64_t spare_exhaustions = 0;   // death with no spare left (degraded)
  uint64_t rebuild_cycles = 0;      // activation -> ownership transfer

  uint64_t FaultsInjected() const {
    return dram_correctable + dram_uncorrectable + link_dropped +
           link_corrupted + board_failures;
  }
  bool Any() const {
    return FaultsInjected() + checkpoints + walkers_recovered +
               walkers_lost + walks_failed + spares_activated +
               spare_exhaustions !=
           0;
  }
  void Accumulate(const ReliabilityStats& other);
};

// Non-OK when the run lost data (failed walks or unrecovered walkers);
// the CLI surfaces this as a non-zero exit with a one-line diagnostic.
Status ReliabilityStatus(const ReliabilityStats& stats);

// Publishes `stats` into `metrics` under "reliability.*" names with the
// given label set (e.g. {{"board", "2"}}). No-op when metrics is null.
void PublishReliabilityMetrics(obs::MetricsRegistry* metrics,
                               const ReliabilityStats& stats,
                               const std::vector<std::pair<
                                   std::string, std::string>>& labels);

// One component's deterministic fault stream: a private PRNG sequence
// keyed on (config.seed, component_id). Components draw in their own
// deterministic order (one draw per DRAM access / link message), so the
// schedule is reproducible and independent across components.
class FaultStream {
 public:
  // Disabled stream: every draw returns kNone without consuming state.
  FaultStream() = default;
  FaultStream(const FaultConfig& config, uint64_t component_id);

  bool enabled() const { return enabled_; }
  const FaultConfig& config() const { return config_; }

  // Draws the fault outcome of the next DRAM request.
  DramFault NextDramFault();
  // Draws the fault outcome of the next link message.
  LinkFault NextLinkFault();

  uint64_t draws() const { return draws_; }

 private:
  FaultConfig config_;
  bool enabled_ = false;
  rng::Xoshiro256StarStar gen_{0};
  uint64_t draws_ = 0;
};

}  // namespace lightrw::reliability

#endif  // LIGHTRW_RELIABILITY_FAULT_INJECTOR_H_
