#include "reliability/membership.h"

#include <string>

namespace lightrw::reliability {

const char* BoardStateName(BoardState state) {
  switch (state) {
    case BoardState::kAlive:
      return "alive";
    case BoardState::kDead:
      return "dead";
    case BoardState::kRebuilding:
      return "rebuilding";
    case BoardState::kSpare:
      return "spare";
  }
  return "unknown";
}

namespace {

bool LegalEdge(BoardState from, BoardState to) {
  switch (from) {
    case BoardState::kAlive:
      return to == BoardState::kDead;
    case BoardState::kSpare:
      return to == BoardState::kRebuilding || to == BoardState::kDead;
    case BoardState::kRebuilding:
      return to == BoardState::kAlive || to == BoardState::kDead;
    case BoardState::kDead:
      return false;  // terminal
  }
  return false;
}

}  // namespace

Status CheckMembershipLog(const std::vector<MembershipTransition>& log) {
  uint64_t prev_cycle = 0;
  for (size_t i = 0; i < log.size(); ++i) {
    const MembershipTransition& t = log[i];
    const std::string where = "membership[" + std::to_string(i) + "]";
    if (t.epoch != i + 1) {
      return InternalError(where + ": epoch " + std::to_string(t.epoch) +
                           " breaks monotonicity (want " +
                           std::to_string(i + 1) + ")");
    }
    if (t.cycle < prev_cycle) {
      return InternalError(where + ": cycle " + std::to_string(t.cycle) +
                           " regresses below " +
                           std::to_string(prev_cycle));
    }
    prev_cycle = t.cycle;
    if (t.from == t.to) {
      return InternalError(where + ": no-op transition (" +
                           BoardStateName(t.from) + " -> " +
                           BoardStateName(t.to) + ")");
    }
    if (!LegalEdge(t.from, t.to)) {
      return InternalError(where + ": illegal transition " +
                           BoardStateName(t.from) + " -> " +
                           BoardStateName(t.to) + " for board " +
                           std::to_string(t.board));
    }
  }
  return Status::Ok();
}

obs::Json MembershipToJson(const std::vector<MembershipTransition>& log) {
  obs::Json rows = obs::Json::MakeArray();
  for (const MembershipTransition& t : log) {
    obs::Json row = obs::Json::MakeObject();
    row.Set("epoch", t.epoch);
    row.Set("cycle", t.cycle);
    row.Set("board", static_cast<uint64_t>(t.board));
    row.Set("from", BoardStateName(t.from));
    row.Set("to", BoardStateName(t.to));
    rows.Append(std::move(row));
  }
  return rows;
}

}  // namespace lightrw::reliability
