// Personalized PageRank utilities: an exact power-iteration solver and a
// Monte Carlo estimator over walk outputs. Used by the PPR example and as
// a whole-stack correctness check (walk end-point frequencies must
// converge to the exact PPR vector).

#ifndef LIGHTRW_ANALYTICS_PPR_H_
#define LIGHTRW_ANALYTICS_PPR_H_

#include <vector>

#include "baseline/engine.h"
#include "graph/csr.h"

namespace lightrw::analytics {

// Exact personalized PageRank of source `source` with stop probability
// `alpha` (damping 1 - alpha) by power iteration on the weighted
// transition matrix. Dangling mass is returned to the source. Iterates
// until the L1 change falls below `tolerance`.
std::vector<double> ExactPpr(const graph::CsrGraph& graph,
                             graph::VertexId source, double alpha,
                             double tolerance = 1e-10,
                             int max_iterations = 200);

// Monte Carlo PPR estimate: the normalized frequency of walk end points
// in `walks` (all assumed to start at the same source and to have been
// generated with PprApp(alpha)).
std::vector<double> EstimatePprFromWalks(const baseline::WalkOutput& walks,
                                         graph::VertexId num_vertices);

// L1 distance between two distributions of equal length.
double L1Distance(const std::vector<double>& a, const std::vector<double>& b);

// Indices of the top-k entries of `scores`, descending.
std::vector<graph::VertexId> TopKIndices(const std::vector<double>& scores,
                                         size_t k);

}  // namespace lightrw::analytics

#endif  // LIGHTRW_ANALYTICS_PPR_H_
