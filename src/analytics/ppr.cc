#include "analytics/ppr.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace lightrw::analytics {

std::vector<double> ExactPpr(const graph::CsrGraph& graph,
                             graph::VertexId source, double alpha,
                             double tolerance, int max_iterations) {
  LIGHTRW_CHECK(source < graph.num_vertices());
  LIGHTRW_CHECK(alpha > 0.0 && alpha < 1.0);
  const graph::VertexId n = graph.num_vertices();

  // Computes the terminal distribution of the engine's PPR walk process
  // exactly: from `cur` (mass still walking), one step moves mass along
  // weighted edges; mass on dangling vertices ends there; after each step
  // a fraction alpha stops. This equals the standard PPR vector up to the
  // (pi - alpha*e_s) / (1 - alpha) transform on dangling-free graphs.
  std::vector<double> cur(n, 0.0);
  std::vector<double> next(n, 0.0);
  std::vector<double> terminal(n, 0.0);
  cur[source] = 1.0;

  for (int iteration = 0; iteration < max_iterations; ++iteration) {
    std::fill(next.begin(), next.end(), 0.0);
    double moved = 0.0;
    for (graph::VertexId v = 0; v < n; ++v) {
      if (cur[v] == 0.0) {
        continue;
      }
      const auto neighbors = graph.Neighbors(v);
      if (neighbors.empty()) {
        terminal[v] += cur[v];  // dead end: the walk ends here
        continue;
      }
      const auto weights = graph.NeighborWeights(v);
      double total = 0.0;
      for (const auto w : weights) {
        total += w;
      }
      for (size_t i = 0; i < neighbors.size(); ++i) {
        next[neighbors[i]] += cur[v] * weights[i] / total;
      }
      moved += cur[v];
    }
    // A fraction alpha of the walkers stops after this step.
    for (graph::VertexId v = 0; v < n; ++v) {
      terminal[v] += alpha * next[v];
      cur[v] = (1.0 - alpha) * next[v];
    }
    if (moved * (1.0 - alpha) < tolerance) {
      break;
    }
  }
  // Whatever mass is still walking at the iteration cap ends in place.
  for (graph::VertexId v = 0; v < n; ++v) {
    terminal[v] += cur[v];
  }
  return terminal;
}

std::vector<double> EstimatePprFromWalks(const baseline::WalkOutput& walks,
                                         graph::VertexId num_vertices) {
  std::vector<double> estimate(num_vertices, 0.0);
  if (walks.num_paths() == 0) {
    return estimate;
  }
  for (size_t i = 0; i < walks.num_paths(); ++i) {
    const auto path = walks.Path(i);
    LIGHTRW_CHECK(!path.empty());
    estimate[path.back()] += 1.0;
  }
  const double scale = 1.0 / static_cast<double>(walks.num_paths());
  for (auto& x : estimate) {
    x *= scale;
  }
  return estimate;
}

double L1Distance(const std::vector<double>& a,
                  const std::vector<double>& b) {
  LIGHTRW_CHECK_EQ(a.size(), b.size());
  double distance = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    distance += std::abs(a[i] - b[i]);
  }
  return distance;
}

std::vector<graph::VertexId> TopKIndices(const std::vector<double>& scores,
                                         size_t k) {
  std::vector<graph::VertexId> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  k = std::min(k, order.size());
  std::partial_sort(order.begin(), order.begin() + k, order.end(),
                    [&](graph::VertexId a, graph::VertexId b) {
                      return scores[a] != scores[b] ? scores[a] > scores[b]
                                                    : a < b;
                    });
  order.resize(k);
  return order;
}

}  // namespace lightrw::analytics
