#include "analytics/walk_stats.h"

#include <algorithm>

#include "common/check.h"

namespace lightrw::analytics {

std::vector<uint64_t> VisitCounts(const baseline::WalkOutput& corpus,
                                  graph::VertexId num_vertices) {
  std::vector<uint64_t> counts(num_vertices, 0);
  for (const graph::VertexId v : corpus.vertices) {
    LIGHTRW_CHECK(v < num_vertices);
    ++counts[v];
  }
  return counts;
}

CorpusStats ComputeCorpusStats(const baseline::WalkOutput& corpus,
                               graph::VertexId num_vertices) {
  CorpusStats stats;
  stats.num_walks = corpus.num_paths();
  stats.total_vertices = corpus.vertices.size();
  if (stats.num_walks == 0) {
    return stats;
  }

  uint32_t min_length = UINT32_MAX;
  uint32_t max_length = 0;
  for (size_t i = 0; i < corpus.num_paths(); ++i) {
    const uint32_t hops =
        static_cast<uint32_t>(corpus.Path(i).size()) - 1;
    min_length = std::min(min_length, hops);
    max_length = std::max(max_length, hops);
  }
  stats.min_length = min_length;
  stats.max_length = max_length;
  stats.mean_length =
      static_cast<double>(stats.total_vertices - stats.num_walks) /
      static_cast<double>(stats.num_walks);

  const auto counts = VisitCounts(corpus, num_vertices);
  uint64_t covered = 0;
  for (const uint64_t c : counts) {
    covered += c > 0 ? 1 : 0;
  }
  stats.coverage =
      num_vertices == 0
          ? 0.0
          : static_cast<double>(covered) / static_cast<double>(num_vertices);

  std::vector<uint64_t> sorted = counts;
  std::sort(sorted.rbegin(), sorted.rend());
  const size_t top = std::max<size_t>(1, sorted.size() / 100);
  uint64_t top_visits = 0;
  for (size_t i = 0; i < top; ++i) {
    top_visits += sorted[i];
  }
  stats.top1pct_visit_share =
      stats.total_vertices == 0
          ? 0.0
          : static_cast<double>(top_visits) /
                static_cast<double>(stats.total_vertices);
  return stats;
}

std::vector<uint64_t> LengthHistogram(const baseline::WalkOutput& corpus,
                                      uint32_t max_buckets) {
  LIGHTRW_CHECK(max_buckets >= 1);
  std::vector<uint64_t> histogram(max_buckets + 1, 0);
  for (size_t i = 0; i < corpus.num_paths(); ++i) {
    const size_t hops = corpus.Path(i).size() - 1;
    ++histogram[std::min<size_t>(hops, max_buckets)];
  }
  return histogram;
}

}  // namespace lightrw::analytics
