#include "analytics/corpus_io.h"

#include <cstdio>
#include <cstring>
#include <memory>

namespace lightrw::analytics {

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) {
      std::fclose(f);
    }
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

constexpr char kCorpusMagic[8] = {'L', 'R', 'W', 'W', 'A', 'L', 'K', '1'};

}  // namespace

Status WriteCorpusText(const baseline::WalkOutput& corpus,
                       const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (f == nullptr) {
    return IoError("cannot open " + path + " for writing");
  }
  for (size_t i = 0; i < corpus.num_paths(); ++i) {
    const auto path_span = corpus.Path(i);
    for (size_t j = 0; j < path_span.size(); ++j) {
      if (std::fprintf(f.get(), j == 0 ? "%u" : " %u", path_span[j]) < 0) {
        return IoError("write failed for " + path);
      }
    }
    if (std::fputc('\n', f.get()) == EOF) {
      return IoError("write failed for " + path);
    }
  }
  return Status::Ok();
}

StatusOr<baseline::WalkOutput> ReadCorpusText(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "r"));
  if (f == nullptr) {
    return IoError("cannot open " + path);
  }
  baseline::WalkOutput corpus;
  std::string line;
  int c;
  int line_number = 1;
  bool any = false;
  while (true) {
    line.clear();
    while ((c = std::fgetc(f.get())) != EOF && c != '\n') {
      line.push_back(static_cast<char>(c));
    }
    if (!line.empty()) {
      const char* p = line.c_str();
      char* end = nullptr;
      while (*p != '\0') {
        const unsigned long long v = std::strtoull(p, &end, 10);
        if (end == p) {
          return InvalidArgumentError(path + ":" +
                                      std::to_string(line_number) +
                                      ": expected vertex ids");
        }
        if (v >= graph::kInvalidVertex) {
          return OutOfRangeError(path + ":" + std::to_string(line_number) +
                                 ": vertex id too large");
        }
        corpus.vertices.push_back(static_cast<graph::VertexId>(v));
        p = end;
        while (*p == ' ' || *p == '\t' || *p == '\r') {
          ++p;
        }
      }
      corpus.offsets.push_back(
          static_cast<uint32_t>(corpus.vertices.size()));
      any = true;
    }
    if (c == EOF) {
      break;
    }
    ++line_number;
  }
  if (!any) {
    return InvalidArgumentError(path + ": no walks");
  }
  return corpus;
}

Status WriteCorpusBinary(const baseline::WalkOutput& corpus,
                         const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) {
    return IoError("cannot open " + path + " for writing");
  }
  bool ok = std::fwrite(kCorpusMagic, sizeof(kCorpusMagic), 1, f.get()) == 1;
  const uint64_t num_offsets = corpus.offsets.size();
  const uint64_t num_vertices = corpus.vertices.size();
  ok = ok && std::fwrite(&num_offsets, sizeof(num_offsets), 1, f.get()) == 1;
  ok = ok &&
       std::fwrite(&num_vertices, sizeof(num_vertices), 1, f.get()) == 1;
  ok = ok && (num_offsets == 0 ||
              std::fwrite(corpus.offsets.data(), sizeof(uint32_t),
                          num_offsets, f.get()) == num_offsets);
  ok = ok && (num_vertices == 0 ||
              std::fwrite(corpus.vertices.data(), sizeof(graph::VertexId),
                          num_vertices, f.get()) == num_vertices);
  if (!ok) {
    return IoError("write failed for " + path);
  }
  return Status::Ok();
}

StatusOr<baseline::WalkOutput> ReadCorpusBinary(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return IoError("cannot open " + path);
  }
  char magic[sizeof(kCorpusMagic)];
  if (std::fread(magic, sizeof(magic), 1, f.get()) != 1 ||
      std::memcmp(magic, kCorpusMagic, sizeof(magic)) != 0) {
    return InvalidArgumentError(path + ": not a LightRW walk corpus");
  }
  uint64_t num_offsets = 0, num_vertices = 0;
  if (std::fread(&num_offsets, sizeof(num_offsets), 1, f.get()) != 1 ||
      std::fread(&num_vertices, sizeof(num_vertices), 1, f.get()) != 1) {
    return IoError(path + ": truncated corpus header");
  }
  // A crafted header can declare absurd counts; cap them against the
  // bytes actually left in the file before allocating.
  const long pos = std::ftell(f.get());
  if (pos < 0 || std::fseek(f.get(), 0, SEEK_END) != 0) {
    return IoError(path + ": seek failed");
  }
  const long file_end = std::ftell(f.get());
  if (file_end < 0 || std::fseek(f.get(), pos, SEEK_SET) != 0) {
    return IoError(path + ": seek failed");
  }
  const uint64_t remaining = static_cast<uint64_t>(file_end - pos);
  if (num_offsets > remaining / sizeof(uint32_t) ||
      num_vertices > remaining / sizeof(graph::VertexId) ||
      num_offsets * sizeof(uint32_t) + num_vertices * sizeof(graph::VertexId) >
          remaining) {
    return InvalidArgumentError(path +
                                ": corpus header declares more data than "
                                "the file holds");
  }
  baseline::WalkOutput corpus;
  corpus.offsets.resize(num_offsets);
  corpus.vertices.resize(num_vertices);
  if (num_offsets > 0 &&
      std::fread(corpus.offsets.data(), sizeof(uint32_t), num_offsets,
                 f.get()) != num_offsets) {
    return IoError(path + ": truncated corpus offsets");
  }
  if (num_vertices > 0 &&
      std::fread(corpus.vertices.data(), sizeof(graph::VertexId),
                 num_vertices, f.get()) != num_vertices) {
    return IoError(path + ": truncated corpus vertices");
  }
  // Validate structure: offsets monotone, first 0, last == vertex count.
  if (corpus.offsets.empty() || corpus.offsets.front() != 0 ||
      corpus.offsets.back() != corpus.vertices.size()) {
    return InvalidArgumentError(path + ": inconsistent corpus offsets");
  }
  for (size_t i = 1; i < corpus.offsets.size(); ++i) {
    if (corpus.offsets[i] < corpus.offsets[i - 1]) {
      return InvalidArgumentError(path + ": non-monotone corpus offsets");
    }
  }
  return corpus;
}

}  // namespace lightrw::analytics
