#include "analytics/embedding.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>

#include "common/check.h"
#include "rng/rng.h"

namespace lightrw::analytics {

Embedding::Embedding(VertexId num_vertices, uint32_t dimensions)
    : num_vertices_(num_vertices),
      dimensions_(dimensions),
      data_(static_cast<size_t>(num_vertices) * dimensions, 0.0f) {
  LIGHTRW_CHECK(dimensions >= 1);
}

double Embedding::CosineSimilarity(VertexId u, VertexId v) const {
  const auto a = Vector(u);
  const auto b = Vector(v);
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (uint32_t i = 0; i < dimensions_; ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  if (na == 0.0 || nb == 0.0) {
    return 0.0;
  }
  return dot / std::sqrt(na * nb);
}

namespace {

float FastSigmoid(float x) {
  if (x > 6.0f) return 1.0f;
  if (x < -6.0f) return 0.0f;
  return 1.0f / (1.0f + std::exp(-x));
}

// Unigram^0.75 negative-sampling table (word2vec convention).
std::vector<VertexId> BuildNegativeTable(const WalkOutput& corpus,
                                         VertexId num_vertices,
                                         size_t table_size) {
  std::vector<double> freq(num_vertices, 0.0);
  for (const VertexId v : corpus.vertices) {
    freq[v] += 1.0;
  }
  double total = 0.0;
  for (auto& f : freq) {
    f = std::pow(f, 0.75);
    total += f;
  }
  std::vector<VertexId> table;
  table.reserve(table_size);
  if (total == 0.0) {
    table.assign(table_size, 0);
    return table;
  }
  double cumulative = 0.0;
  VertexId v = 0;
  for (size_t i = 0; i < table_size; ++i) {
    const double target = (static_cast<double>(i) + 0.5) / table_size;
    while (v + 1 < num_vertices && cumulative + freq[v] < target * total) {
      cumulative += freq[v];
      ++v;
    }
    table.push_back(v);
  }
  return table;
}

}  // namespace

Embedding TrainEmbedding(const WalkOutput& corpus, VertexId num_vertices,
                         const EmbeddingConfig& config) {
  LIGHTRW_CHECK(num_vertices >= 1);
  Embedding in(num_vertices, config.dimensions);
  Embedding out(num_vertices, config.dimensions);

  rng::Xoshiro256StarStar gen(config.seed);
  // Initialize the input vectors with small random values, as word2vec does.
  for (VertexId v = 0; v < num_vertices; ++v) {
    auto vec = in.MutableVector(v);
    for (auto& x : vec) {
      x = (static_cast<float>(gen.NextUnit()) - 0.5f) / config.dimensions;
    }
  }

  const auto negative_table =
      BuildNegativeTable(corpus, num_vertices, 1 << 16);
  std::vector<float> grad(config.dimensions);

  const uint64_t total_tokens =
      static_cast<uint64_t>(corpus.vertices.size()) * config.epochs;
  uint64_t processed = 0;

  for (uint32_t epoch = 0; epoch < config.epochs; ++epoch) {
    for (size_t p = 0; p < corpus.num_paths(); ++p) {
      const auto path = corpus.Path(p);
      for (size_t center = 0; center < path.size(); ++center, ++processed) {
        const float lr =
            config.learning_rate *
            std::max(0.05f, 1.0f - static_cast<float>(processed) /
                                       (total_tokens + 1));
        const size_t lo = center >= config.window ? center - config.window : 0;
        const size_t hi = std::min(path.size(), center + config.window + 1);
        const VertexId target = path[center];
        for (size_t ctx = lo; ctx < hi; ++ctx) {
          if (ctx == center) {
            continue;
          }
          const VertexId input = path[ctx];
          auto v_in = in.MutableVector(input);
          std::fill(grad.begin(), grad.end(), 0.0f);
          // One positive pair plus `negative_samples` negatives.
          for (uint32_t s = 0; s <= config.negative_samples; ++s) {
            VertexId sample;
            float label;
            if (s == 0) {
              sample = target;
              label = 1.0f;
            } else {
              sample = negative_table[gen.NextBounded(negative_table.size())];
              if (sample == target) {
                continue;
              }
              label = 0.0f;
            }
            auto v_out = out.MutableVector(sample);
            float dot = 0.0f;
            for (uint32_t d = 0; d < config.dimensions; ++d) {
              dot += v_in[d] * v_out[d];
            }
            const float g = (label - FastSigmoid(dot)) * lr;
            for (uint32_t d = 0; d < config.dimensions; ++d) {
              grad[d] += g * v_out[d];
              v_out[d] += g * v_in[d];
            }
          }
          for (uint32_t d = 0; d < config.dimensions; ++d) {
            v_in[d] += grad[d];
          }
        }
      }
    }
  }
  return in;
}

namespace {

constexpr char kEmbeddingMagic[8] = {'L', 'R', 'W', 'E', 'M', 'B', 'D',
                                     '1'};

}  // namespace

Status WriteEmbedding(const Embedding& embedding, const std::string& path) {
  std::FILE* raw = std::fopen(path.c_str(), "wb");
  if (raw == nullptr) {
    return IoError("cannot open " + path + " for writing");
  }
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(raw, &std::fclose);
  const uint32_t n = embedding.num_vertices();
  const uint32_t dims = embedding.dimensions();
  bool ok =
      std::fwrite(kEmbeddingMagic, sizeof(kEmbeddingMagic), 1, f.get()) == 1;
  ok = ok && std::fwrite(&n, sizeof(n), 1, f.get()) == 1;
  ok = ok && std::fwrite(&dims, sizeof(dims), 1, f.get()) == 1;
  for (VertexId v = 0; ok && v < n; ++v) {
    const auto vec = embedding.Vector(v);
    ok = std::fwrite(vec.data(), sizeof(float), dims, f.get()) == dims;
  }
  return ok ? Status::Ok() : IoError("write failed for " + path);
}

StatusOr<Embedding> ReadEmbedding(const std::string& path) {
  std::FILE* raw = std::fopen(path.c_str(), "rb");
  if (raw == nullptr) {
    return IoError("cannot open " + path);
  }
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(raw, &std::fclose);
  char magic[sizeof(kEmbeddingMagic)];
  if (std::fread(magic, sizeof(magic), 1, f.get()) != 1 ||
      std::memcmp(magic, kEmbeddingMagic, sizeof(magic)) != 0) {
    return InvalidArgumentError(path + ": not a LightRW embedding file");
  }
  uint32_t n = 0, dims = 0;
  if (std::fread(&n, sizeof(n), 1, f.get()) != 1 ||
      std::fread(&dims, sizeof(dims), 1, f.get()) != 1 || dims == 0) {
    return InvalidArgumentError(path + ": bad embedding header");
  }
  Embedding embedding(n, dims);
  for (VertexId v = 0; v < n; ++v) {
    auto vec = embedding.MutableVector(v);
    if (std::fread(vec.data(), sizeof(float), dims, f.get()) != dims) {
      return IoError(path + ": truncated embedding data");
    }
  }
  return embedding;
}

}  // namespace lightrw::analytics
