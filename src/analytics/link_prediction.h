// Link prediction over vertex embeddings (paper §6.7).
//
// Scores a candidate pair by the cosine similarity of its embeddings and
// evaluates how well that score separates held-out true edges from random
// non-edges (AUC), which is the standard node2vec link-prediction setup.

#ifndef LIGHTRW_ANALYTICS_LINK_PREDICTION_H_
#define LIGHTRW_ANALYTICS_LINK_PREDICTION_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "analytics/embedding.h"
#include "graph/csr.h"

namespace lightrw::analytics {

struct LinkPredictionResult {
  // Probability that a random true edge scores above a random non-edge.
  double auc = 0.0;
  size_t positive_pairs = 0;
  size_t negative_pairs = 0;
};

// Samples `num_pairs` existing edges and `num_pairs` uniform non-edges,
// scores both with cosine similarity, and computes the AUC.
LinkPredictionResult EvaluateLinkPrediction(const graph::CsrGraph& graph,
                                            const Embedding& embedding,
                                            size_t num_pairs, uint64_t seed);

// Ranks the `top_k` most likely new edges among `candidates` (pairs that
// are not currently connected), highest similarity first.
std::vector<std::pair<graph::VertexId, graph::VertexId>> PredictTopLinks(
    const graph::CsrGraph& graph, const Embedding& embedding,
    std::span<const std::pair<graph::VertexId, graph::VertexId>> candidates,
    size_t top_k);

}  // namespace lightrw::analytics

#endif  // LIGHTRW_ANALYTICS_LINK_PREDICTION_H_
