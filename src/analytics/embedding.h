// Skip-gram-with-negative-sampling (word2vec-style) embedding trainer over
// random walk corpora — the learning half of the paper's §6.7 link
// prediction case study (SNAP's node2vec pipeline: walks -> word2vec ->
// cosine similarity).

#ifndef LIGHTRW_ANALYTICS_EMBEDDING_H_
#define LIGHTRW_ANALYTICS_EMBEDDING_H_

#include <cstdint>
#include <string>
#include <span>
#include <vector>

#include "baseline/engine.h"
#include "common/status.h"
#include "graph/types.h"

namespace lightrw::analytics {

using baseline::WalkOutput;
using graph::VertexId;

struct EmbeddingConfig {
  uint32_t dimensions = 32;
  uint32_t window = 5;
  uint32_t negative_samples = 5;
  uint32_t epochs = 2;
  float learning_rate = 0.025f;
  uint64_t seed = 7;
};

// Dense vertex embeddings produced by Train().
class Embedding {
 public:
  Embedding(VertexId num_vertices, uint32_t dimensions);

  uint32_t dimensions() const { return dimensions_; }
  VertexId num_vertices() const { return num_vertices_; }

  std::span<const float> Vector(VertexId v) const {
    return {data_.data() + static_cast<size_t>(v) * dimensions_,
            dimensions_};
  }
  std::span<float> MutableVector(VertexId v) {
    return {data_.data() + static_cast<size_t>(v) * dimensions_,
            dimensions_};
  }

  // Cosine similarity between the embeddings of u and v, in [-1, 1].
  double CosineSimilarity(VertexId u, VertexId v) const;

 private:
  VertexId num_vertices_;
  uint32_t dimensions_;
  std::vector<float> data_;
};

// Trains SGNS embeddings from a walk corpus. `num_vertices` bounds the
// vertex ids appearing in the corpus.
Embedding TrainEmbedding(const WalkOutput& corpus, VertexId num_vertices,
                         const EmbeddingConfig& config);

// Binary embedding round trip (versioned, checked on load).
Status WriteEmbedding(const Embedding& embedding, const std::string& path);
StatusOr<Embedding> ReadEmbedding(const std::string& path);

}  // namespace lightrw::analytics

#endif  // LIGHTRW_ANALYTICS_EMBEDDING_H_
