// Walk corpus serialization: text (one walk per line) and binary formats.
// Lets the walk generation and embedding-training stages run as separate
// processes (as SNAP's node2vec pipeline does).

#ifndef LIGHTRW_ANALYTICS_CORPUS_IO_H_
#define LIGHTRW_ANALYTICS_CORPUS_IO_H_

#include <string>

#include "baseline/engine.h"
#include "common/status.h"

namespace lightrw::analytics {

// Writes one whitespace-separated walk per line.
Status WriteCorpusText(const baseline::WalkOutput& corpus,
                       const std::string& path);

// Reads a text corpus written by WriteCorpusText (or any file of
// whitespace-separated vertex-id lines).
StatusOr<baseline::WalkOutput> ReadCorpusText(const std::string& path);

// Compact binary round-trip (versioned, checked on load).
Status WriteCorpusBinary(const baseline::WalkOutput& corpus,
                         const std::string& path);
StatusOr<baseline::WalkOutput> ReadCorpusBinary(const std::string& path);

}  // namespace lightrw::analytics

#endif  // LIGHTRW_ANALYTICS_CORPUS_IO_H_
