#include "analytics/link_prediction.h"

#include <algorithm>

#include "common/check.h"
#include "rng/rng.h"

namespace lightrw::analytics {

LinkPredictionResult EvaluateLinkPrediction(const graph::CsrGraph& graph,
                                            const Embedding& embedding,
                                            size_t num_pairs, uint64_t seed) {
  LIGHTRW_CHECK(num_pairs >= 1);
  LIGHTRW_CHECK(graph.num_edges() > 0);
  rng::Xoshiro256StarStar gen(seed);

  std::vector<double> positive_scores;
  std::vector<double> negative_scores;
  positive_scores.reserve(num_pairs);
  negative_scores.reserve(num_pairs);

  // Positive pairs: uniform existing edges (sample a col_index slot).
  const auto col = graph.col_dst();
  for (size_t i = 0; i < num_pairs; ++i) {
    const uint64_t slot = gen.NextBounded(graph.num_edges());
    // Find the source vertex owning this slot by binary search on
    // row_index.
    const auto row = graph.row_index();
    const auto it = std::upper_bound(row.begin(), row.end(), slot);
    const graph::VertexId src =
        static_cast<graph::VertexId>(it - row.begin() - 1);
    positive_scores.push_back(embedding.CosineSimilarity(src, col[slot]));
  }

  // Negative pairs: uniform vertex pairs that are not edges.
  for (size_t i = 0; i < num_pairs; ++i) {
    graph::VertexId u, v;
    int attempts = 0;
    do {
      u = static_cast<graph::VertexId>(gen.NextBounded(graph.num_vertices()));
      v = static_cast<graph::VertexId>(gen.NextBounded(graph.num_vertices()));
      ++attempts;
    } while ((u == v || graph.HasEdge(u, v)) && attempts < 64);
    negative_scores.push_back(embedding.CosineSimilarity(u, v));
  }

  // AUC by pairwise comparison on the sampled sets.
  uint64_t wins = 0, ties = 0;
  for (const double p : positive_scores) {
    for (const double n : negative_scores) {
      if (p > n) {
        ++wins;
      } else if (p == n) {
        ++ties;
      }
    }
  }
  LinkPredictionResult result;
  const double comparisons =
      static_cast<double>(positive_scores.size()) * negative_scores.size();
  result.auc = (static_cast<double>(wins) + 0.5 * ties) / comparisons;
  result.positive_pairs = positive_scores.size();
  result.negative_pairs = negative_scores.size();
  return result;
}

std::vector<std::pair<graph::VertexId, graph::VertexId>> PredictTopLinks(
    const graph::CsrGraph& graph, const Embedding& embedding,
    std::span<const std::pair<graph::VertexId, graph::VertexId>> candidates,
    size_t top_k) {
  std::vector<std::pair<double, size_t>> scored;
  scored.reserve(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    const auto [u, v] = candidates[i];
    if (graph.HasEdge(u, v)) {
      continue;  // already connected
    }
    scored.emplace_back(embedding.CosineSimilarity(u, v), i);
  }
  const size_t k = std::min(top_k, scored.size());
  std::partial_sort(
      scored.begin(), scored.begin() + k, scored.end(),
      [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<std::pair<graph::VertexId, graph::VertexId>> result;
  result.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    result.push_back(candidates[scored[i].second]);
  }
  return result;
}

}  // namespace lightrw::analytics
