// Walk corpus statistics: visit distributions, coverage, and length
// histograms. Used to sanity-check walk quality (e.g. that the corpus
// covers the graph before embedding training) and by the examples.

#ifndef LIGHTRW_ANALYTICS_WALK_STATS_H_
#define LIGHTRW_ANALYTICS_WALK_STATS_H_

#include <cstdint>
#include <vector>

#include "baseline/engine.h"
#include "graph/types.h"

namespace lightrw::analytics {

struct CorpusStats {
  size_t num_walks = 0;
  uint64_t total_vertices = 0;     // tokens in the corpus
  double mean_length = 0.0;        // hops per walk (tokens - 1)
  uint32_t max_length = 0;
  uint32_t min_length = 0;
  // Vertices visited at least once / total vertices.
  double coverage = 0.0;
  // Fraction of all visits landing on the top 1% most-visited vertices.
  double top1pct_visit_share = 0.0;
};

CorpusStats ComputeCorpusStats(const baseline::WalkOutput& corpus,
                               graph::VertexId num_vertices);

// Visit counts per vertex across the whole corpus.
std::vector<uint64_t> VisitCounts(const baseline::WalkOutput& corpus,
                                  graph::VertexId num_vertices);

// Histogram of walk hop counts (bucket i = walks with exactly i hops, up
// to `max_buckets`; longer walks land in the overflow bucket).
std::vector<uint64_t> LengthHistogram(const baseline::WalkOutput& corpus,
                                      uint32_t max_buckets);

}  // namespace lightrw::analytics

#endif  // LIGHTRW_ANALYTICS_WALK_STATS_H_
