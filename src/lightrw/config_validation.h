// Validation of an AcceleratorConfig against device limits: catches
// configurations whose on-chip structures (row cache, Node2Vec buffer,
// FIFOs) or total resource estimate cannot fit the target FPGA before a
// simulation is run with them.

#ifndef LIGHTRW_LIGHTRW_CONFIG_VALIDATION_H_
#define LIGHTRW_LIGHTRW_CONFIG_VALIDATION_H_

#include "common/status.h"
#include "lightrw/config.h"
#include "lightrw/platform_models.h"

namespace lightrw::core {

// Checks structural invariants (power-of-two cache, nonzero lanes and
// burst lengths) and that the modeled resource usage of the configuration
// fits `device`. `needs_prev_neighbors` selects the Node2Vec-style build.
Status ValidateConfig(const AcceleratorConfig& config,
                      bool needs_prev_neighbors,
                      const DeviceResources& device = DeviceResources{});

}  // namespace lightrw::core

#endif  // LIGHTRW_LIGHTRW_CONFIG_VALIDATION_H_
