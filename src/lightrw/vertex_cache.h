// Row-index caches for the Neighbor Info Loader (paper §5.1).
//
// The cache maps a vertex id to its {neighbor address, degree} tuple. The
// degree-aware policy exploits the stationary-distribution analysis of the
// paper (Pr[v] = Omega(|N(v)|)): on a miss, the fetched vertex replaces the
// resident line only if its degree is strictly higher, so hot high-degree
// vertices accumulate in the cache at runtime with zero preprocessing.

#ifndef LIGHTRW_LIGHTRW_VERTEX_CACHE_H_
#define LIGHTRW_LIGHTRW_VERTEX_CACHE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/types.h"
#include "lightrw/config.h"

namespace lightrw::core {

using graph::VertexId;

struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t accesses() const { return hits + misses; }
  double MissRatio() const {
    return accesses() == 0 ? 0.0
                           : static_cast<double>(misses) / accesses();
  }
};

// Common interface of the row caches. Probe() then, on a miss, Install()
// with the data returned from DRAM — mirroring the hardware flow of
// Fig. 5 (steps a-e).
class VertexCache {
 public:
  virtual ~VertexCache() = default;

  // True if `v` is resident (steps b/c of Fig. 5).
  virtual bool Probe(VertexId v) = 0;

  // Offers the miss-filled line to the replacement policy (step e).
  virtual void Install(VertexId v, uint32_t degree) = 0;

  virtual uint32_t capacity() const = 0;

  const CacheStats& stats() const { return stats_; }
  void ResetStats() { stats_ = CacheStats{}; }

 protected:
  CacheStats stats_;
};

// Direct-mapped cache with unconditional replacement (Fig. 11's DMC).
class DirectMappedCache : public VertexCache {
 public:
  explicit DirectMappedCache(uint32_t entries);

  bool Probe(VertexId v) override;
  void Install(VertexId v, uint32_t degree) override;
  uint32_t capacity() const override { return entries_; }

 private:
  uint32_t entries_;  // power of two
  std::vector<VertexId> tag_;
  std::vector<bool> valid_;
};

// Degree-aware cache (DAC): direct-mapped lookup, replace-if-higher-degree
// policy.
class DegreeAwareCache : public VertexCache {
 public:
  explicit DegreeAwareCache(uint32_t entries);

  bool Probe(VertexId v) override;
  void Install(VertexId v, uint32_t degree) override;
  uint32_t capacity() const override { return entries_; }

 private:
  uint32_t entries_;
  std::vector<VertexId> tag_;
  std::vector<uint32_t> degree_;
  std::vector<bool> valid_;
};

// Set-associative cache with recency-based replacement — the conventional
// policies (LRU, FIFO) the paper argues are ineffective for GDRW's large
// reuse distances (§5.1). Included for the Fig. 11 comparison.
class SetAssociativeCache : public VertexCache {
 public:
  enum class Replacement { kLru, kFifo };

  // `entries` total lines, split into `ways`-wide sets; entries and ways
  // must be powers of two with ways <= entries.
  SetAssociativeCache(uint32_t entries, uint32_t ways,
                      Replacement replacement);

  bool Probe(VertexId v) override;
  void Install(VertexId v, uint32_t degree) override;
  uint32_t capacity() const override { return entries_; }
  uint32_t ways() const { return ways_; }

 private:
  struct Line {
    VertexId tag = 0;
    uint64_t order = 0;  // recency (LRU) or insertion (FIFO) stamp
    bool valid = false;
  };

  uint32_t entries_;
  uint32_t ways_;
  uint32_t num_sets_;
  Replacement replacement_;
  uint64_t clock_ = 0;
  std::vector<Line> lines_;  // num_sets_ * ways_, set-major
};

// Factory for the configured cache kind; returns nullptr for kNone.
// kLru/kFifo build 4-way set-associative caches.
std::unique_ptr<VertexCache> MakeVertexCache(CacheKind kind,
                                             uint32_t entries);

}  // namespace lightrw::core

#endif  // LIGHTRW_LIGHTRW_VERTEX_CACHE_H_
