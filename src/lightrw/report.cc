#include "lightrw/report.h"

#include <cstdarg>
#include <cstdio>

#include "common/check.h"

namespace lightrw::core {

namespace {

void Appendf(std::string* out, const char* format, ...)
    __attribute__((format(printf, 2, 3)));

void Appendf(std::string* out, const char* format, ...) {
  char buf[256];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  *out += buf;
}

}  // namespace

std::string FormatSloSection(const SloSummary& slo) {
  std::string out;
  Appendf(&out,
          "slo: %llu offered, %llu completed, %llu shed, %llu failed\n",
          static_cast<unsigned long long>(slo.offered),
          static_cast<unsigned long long>(slo.completed),
          static_cast<unsigned long long>(slo.shed),
          static_cast<unsigned long long>(slo.failed));
  Appendf(&out,
          "  goodput %.1f queries/s, shed rate %.2f%%, deadline "
          "violation rate %.2f%% (%llu late)\n",
          slo.goodput_per_s, 100.0 * slo.shed_rate,
          100.0 * slo.violation_rate,
          static_cast<unsigned long long>(slo.deadline_violations));
  Appendf(&out,
          "  queue delay p50/p99: %.0f / %.0f cycles, latency p50/p99: "
          "%.0f / %.0f cycles\n",
          slo.queue_delay_p50, slo.queue_delay_p99, slo.latency_p50,
          slo.latency_p99);
  Appendf(&out,
          "  overload response: %llu degraded, %llu breaker trip(s), "
          "%llu retry(ies)\n",
          static_cast<unsigned long long>(slo.degraded),
          static_cast<unsigned long long>(slo.breaker_trips),
          static_cast<unsigned long long>(slo.retries));
  return out;
}

std::string FormatRunReport(const RunReportInputs& inputs) {
  LIGHTRW_CHECK(inputs.graph != nullptr);
  LIGHTRW_CHECK(inputs.config != nullptr);
  LIGHTRW_CHECK(inputs.stats != nullptr);
  const AccelRunStats& stats = *inputs.stats;
  const AcceleratorConfig& config = *inputs.config;

  std::string out;
  Appendf(&out, "=== LightRW run report (%s) ===\n",
          inputs.app_name.c_str());
  Appendf(&out, "graph: %s\n", inputs.graph->Summary().c_str());
  Appendf(&out,
          "config: %u instance(s), k=%u lanes, burst b%u+b%u, cache %u "
          "entries\n",
          config.num_instances, config.sampler_parallelism,
          config.burst.short_beats, config.burst.long_beats,
          config.cache_kind == CacheKind::kNone ? 0 : config.cache_entries);

  Appendf(&out, "kernel: %llu queries, %llu steps, %llu cycles = %.4fs "
                "simulated (%.2f Msteps/s)\n",
          static_cast<unsigned long long>(stats.queries),
          static_cast<unsigned long long>(stats.steps),
          static_cast<unsigned long long>(stats.cycles), stats.seconds,
          stats.StepsPerSecond() / 1e6);
  if (stats.dram.bytes > 0) {
    Appendf(&out,
            "memory: %.1f MB moved (%.1f%% useful), %.2f GB/s effective, "
            "%llu requests\n",
            stats.dram.bytes / 1e6,
            100.0 * static_cast<double>(stats.dram.useful_bytes) /
                static_cast<double>(stats.dram.bytes),
            stats.EffectiveBandwidth() / 1e9,
            static_cast<unsigned long long>(stats.dram.requests));
  }
  if (stats.cache.accesses() > 0) {
    Appendf(&out, "row cache: %.1f%% hit ratio over %llu probes\n",
            100.0 * (1.0 - stats.cache.MissRatio()),
            static_cast<unsigned long long>(stats.cache.accesses()));
  }
  if (stats.burst.requests > 0) {
    Appendf(&out,
            "burst engine: %llu long + %llu short bursts, valid-data "
            "ratio %.2f\n",
            static_cast<unsigned long long>(stats.burst.long_bursts),
            static_cast<unsigned long long>(stats.burst.short_bursts),
            stats.burst.ValidDataRatio());
  }
  if (stats.prev_refetches > 0) {
    Appendf(&out, "prev-adjacency re-fetches: %llu\n",
            static_cast<unsigned long long>(stats.prev_refetches));
  }

  // Where the makespan went: per-stage slot-cycles over all in-flight
  // steps. Shares reveal the bottleneck stage (DRAM wait vs cache vs
  // sampler) even though concurrent walks overlap these intervals.
  if (stats.stage.Total() > 0) {
    const StageCycleStats& stage = stats.stage;
    Appendf(&out, "stage attribution (slot-cycles, all in-flight steps):\n");
    Appendf(&out, "  row lookup (cache+DRAM): %12llu cycles (%5.1f%%)\n",
            static_cast<unsigned long long>(stage.info_cycles),
            100.0 * stage.Share(stage.info_cycles));
    Appendf(&out, "  adjacency fetch (DRAM) : %12llu cycles (%5.1f%%)\n",
            static_cast<unsigned long long>(stage.fetch_cycles),
            100.0 * stage.Share(stage.fetch_cycles));
    Appendf(&out, "  sampler tail (WRS)     : %12llu cycles (%5.1f%%)\n",
            static_cast<unsigned long long>(stage.sampler_cycles),
            100.0 * stage.Share(stage.sampler_cycles));
    Appendf(&out, "  pipeline latency       : %12llu cycles (%5.1f%%)\n",
            static_cast<unsigned long long>(stage.pipeline_cycles),
            100.0 * stage.Share(stage.pipeline_cycles));
  }

  // Reliability: only printed when something actually happened — a
  // fault-free run's report is byte-identical to one without the
  // subsystem.
  if (stats.reliability.Any()) {
    const reliability::ReliabilityStats& rel = stats.reliability;
    Appendf(&out,
            "reliability: %llu fault(s) injected, %llu walk(s) failed\n",
            static_cast<unsigned long long>(rel.FaultsInjected()),
            static_cast<unsigned long long>(rel.walks_failed));
    if (rel.dram_correctable + rel.dram_uncorrectable > 0) {
      Appendf(&out,
              "  dram ecc: %llu correctable, %llu uncorrectable, %llu "
              "retries, %llu failed access(es)\n",
              static_cast<unsigned long long>(rel.dram_correctable),
              static_cast<unsigned long long>(rel.dram_uncorrectable),
              static_cast<unsigned long long>(rel.dram_retries),
              static_cast<unsigned long long>(rel.dram_failed_accesses));
    }
    if (rel.link_dropped + rel.link_corrupted > 0) {
      Appendf(&out,
              "  network: %llu dropped, %llu corrupted, %llu "
              "retransmission(s), %llu failed send(s)\n",
              static_cast<unsigned long long>(rel.link_dropped),
              static_cast<unsigned long long>(rel.link_corrupted),
              static_cast<unsigned long long>(rel.retransmissions),
              static_cast<unsigned long long>(rel.link_failed_sends));
    }
    if (rel.board_failures + rel.checkpoints > 0) {
      Appendf(&out,
              "  failover: %llu board failure(s), %llu checkpoint(s), "
              "%llu recovered, %llu lost, %llu step(s) replayed\n",
              static_cast<unsigned long long>(rel.board_failures),
              static_cast<unsigned long long>(rel.checkpoints),
              static_cast<unsigned long long>(rel.walkers_recovered),
              static_cast<unsigned long long>(rel.walkers_lost),
              static_cast<unsigned long long>(rel.replayed_steps));
    }
    if (rel.spares_activated + rel.spare_exhaustions > 0) {
      Appendf(&out,
              "  self-healing: %llu spare(s) activated, %llu rebuild(s) "
              "completed, %llu aborted, %llu exhaustion(s), %llu rebuild "
              "cycle(s)\n",
              static_cast<unsigned long long>(rel.spares_activated),
              static_cast<unsigned long long>(rel.rebuilds_completed),
              static_cast<unsigned long long>(rel.rebuilds_aborted),
              static_cast<unsigned long long>(rel.spare_exhaustions),
              static_cast<unsigned long long>(rel.rebuild_cycles));
    }
  }

  // Service-level objectives: only for service runs — a batch run's
  // report is byte-identical to one without the service layer.
  if (inputs.slo != nullptr && inputs.slo->Any()) {
    out += FormatSloSection(*inputs.slo);
  }

  // Latency attribution: only for runs that recorded spans — see
  // RunReportInputs::latency_attribution.
  if (inputs.latency_attribution != nullptr &&
      !inputs.latency_attribution->empty()) {
    out += *inputs.latency_attribution;
  }

  // Platform models.
  PcieModel pcie;
  const double transfer_s = pcie.TransferSeconds(
      pcie.RunBytes(*inputs.graph, config.num_instances, inputs.num_queries,
                    inputs.query_length));
  Appendf(&out, "pcie: %.4fs transfer (%.1f%% of end-to-end)\n", transfer_s,
          100.0 * transfer_s / (transfer_s + stats.seconds));

  PowerModel power;
  Appendf(&out, "power: %.1f W modeled board power\n",
          power.FpgaWatts(config.num_instances, inputs.graph->num_edges(),
                          inputs.needs_prev_neighbors));

  ResourceModel resources;
  const ResourceUsage usage =
      resources.TotalUsage(config, inputs.needs_prev_neighbors);
  Appendf(&out,
          "resources: %.1f%% LUT, %.1f%% REG, %.1f%% BRAM, %.1f%% DSP of "
          "U250\n",
          resources.LutPercent(usage), resources.RegPercent(usage),
          resources.BramPercent(usage), resources.DspPercent(usage));
  return out;
}

}  // namespace lightrw::core
