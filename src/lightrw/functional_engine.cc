#include "lightrw/functional_engine.h"

#include "common/check.h"
#include "lightrw/step_sampler.h"
#include "rng/rng.h"

namespace lightrw::core {

FunctionalEngine::FunctionalEngine(const graph::CsrGraph* graph,
                                   const apps::WalkApp* app,
                                   const AcceleratorConfig& config)
    : graph_(graph), app_(app), config_(config) {
  LIGHTRW_CHECK(graph != nullptr);
  LIGHTRW_CHECK(app != nullptr);
  LIGHTRW_CHECK(config.sampler_parallelism >= 1);
}

FunctionalRunStats FunctionalEngine::Run(std::span<const WalkQuery> queries,
                                         WalkOutput* output) {
  FunctionalRunStats stats;
  rng::ThunderingRng rng(config_.sampler_parallelism, config_.seed);
  StepSampler sampler(config_.sampler_parallelism, &rng);
  rng::Xoshiro256StarStar stop_gen(config_.seed ^ 0x5709ULL);
  const double stop_probability = app_->stop_probability();

  for (const WalkQuery& query : queries) {
    apps::WalkState state;
    state.curr = query.start;
    if (output != nullptr) {
      output->vertices.push_back(query.start);
    }
    for (uint32_t step = 0; step < query.length; ++step) {
      state.step = step;
      stats.edges_examined += graph_->Degree(state.curr);
      const graph::VertexId next = sampler.SampleNext(*graph_, *app_, state);
      if (next == graph::kInvalidVertex) {
        break;
      }
      state.prev = state.curr;
      state.curr = next;
      ++stats.steps;
      if (output != nullptr) {
        output->vertices.push_back(next);
      }
      if (stop_probability > 0.0 &&
          stop_gen.NextUnit() < stop_probability) {
        break;  // geometric termination (PPR-style apps)
      }
    }
    if (output != nullptr) {
      output->offsets.push_back(
          static_cast<uint32_t>(output->vertices.size()));
    }
    ++stats.queries;
  }
  return stats;
}

}  // namespace lightrw::core
