// Functional (untimed) LightRW engine.
//
// Executes Algorithm 3.1 exactly — per step, stream all neighbors through
// the weight updater and the k-lane parallel WRS sampler — but without the
// timing model, so it runs fast and deterministically. Used for sampling-
// correctness tests, the examples, and the link-prediction case study; the
// CycleEngine (cycle_engine.h) adds the performance model on top of the
// same sampling semantics.

#ifndef LIGHTRW_LIGHTRW_FUNCTIONAL_ENGINE_H_
#define LIGHTRW_LIGHTRW_FUNCTIONAL_ENGINE_H_

#include <cstdint>
#include <span>

#include "apps/walk_app.h"
#include "baseline/engine.h"
#include "graph/csr.h"
#include "lightrw/config.h"

namespace lightrw::core {

using apps::WalkQuery;
using baseline::WalkOutput;

struct FunctionalRunStats {
  uint64_t queries = 0;
  uint64_t steps = 0;
  uint64_t edges_examined = 0;
};

// Deterministic walk generator with LightRW's sampling semantics.
class FunctionalEngine {
 public:
  // `graph` and `app` must outlive the engine. Only sampler_parallelism
  // and seed of the config are used.
  FunctionalEngine(const graph::CsrGraph* graph, const apps::WalkApp* app,
                   const AcceleratorConfig& config);

  // Runs all queries in order, appending paths to `output` if non-null.
  FunctionalRunStats Run(std::span<const WalkQuery> queries,
                         WalkOutput* output = nullptr);

 private:
  const graph::CsrGraph* graph_;
  const apps::WalkApp* app_;
  AcceleratorConfig config_;
};

}  // namespace lightrw::core

#endif  // LIGHTRW_LIGHTRW_FUNCTIONAL_ENGINE_H_
