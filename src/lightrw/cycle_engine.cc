#include "lightrw/cycle_engine.h"

#include <algorithm>
#include <queue>
#include <utility>
#include <vector>

#include "common/bits.h"
#include "common/check.h"
#include "common/sim_thread_pool.h"
#include "lightrw/step_sampler.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rng/rng.h"
#include "sampling/sampler.h"

namespace lightrw::core {

namespace {

using apps::WalkState;
using graph::VertexId;
using hwsim::Cycle;

// Trace track (tid) layout within one instance's pid: one lane per
// pipeline stage, mirroring the module chain of paper Fig. 3.
enum TraceTrack : uint32_t {
  kInfoTrack = 0,    // Neighbor Info Loader (row-index lookups)
  kFetchTrack = 1,   // Dynamic Burst Engine (adjacency streams)
  kWrsTrack = 2,     // Weight Updater + WRS Sampler lanes
  kRetireTrack = 3,  // query retirement
  kDramTrack = 4,    // DRAM channel data-bus service windows
};

void NameInstanceTracks(obs::TraceRecorder* trace, uint32_t pid,
                        const std::string& process_name) {
  trace->NameProcess(pid, process_name);
  trace->NameTrack(pid, kInfoTrack, "info loader");
  trace->NameTrack(pid, kFetchTrack, "burst engine");
  trace->NameTrack(pid, kWrsTrack, "wrs sampler");
  trace->NameTrack(pid, kRetireTrack, "retire");
  trace->NameTrack(pid, kDramTrack, "dram channel");
}

// One LightRW instance bound to one DRAM channel (paper Fig. 9).
class Instance {
 public:
  // `trace` overrides config.trace so a parallel run can hand each
  // instance a private shard recorder (merged in instance order after
  // the barrier) instead of contending on one shared recorder.
  Instance(const graph::CsrGraph* graph, const apps::WalkApp* app,
           const AcceleratorConfig& config, uint32_t instance_id,
           uint64_t seed, obs::TraceRecorder* trace)
      : graph_(graph),
        app_(app),
        config_(config),
        instance_id_(instance_id),
        trace_(trace),
        channel_(config.dram),
        burst_(&channel_, config.burst),
        cache_(MakeVertexCache(config.cache_kind, config.cache_entries)),
        rng_(config.sampler_parallelism, seed),
        sampler_(config.sampler_parallelism, &rng_),
        stop_gen_(seed ^ 0x5709ULL) {
    if (config.faults.enabled) {
      faults_ = reliability::FaultStream(config.faults, instance_id_);
      channel_.AttachFaults(&faults_, &rel_);
    }
    if (trace_ != nullptr) {
      NameInstanceTracks(trace_, instance_id_,
                         "accel instance " + std::to_string(instance_id_));
      channel_.AttachTrace(trace_, instance_id_, kDramTrack);
    }
  }

  // Simulates this instance's query share; accumulates into `stats` (all
  // fields except the makespan fields, which the caller derives).
  // `global_indices[i]` is the position of queries[i] in the caller's
  // query list; finished paths are stored there in `finished` (if
  // non-null) so the merged output is input-ordered.
  Cycle Run(std::span<const WalkQuery> queries,
            std::span<const size_t> global_indices,
            std::vector<std::vector<VertexId>>* finished,
            AccelRunStats* stats);

 private:
  // Each walk step flows through two scheduled phases so that the two
  // DRAM request groups of a step (row_index lookups, then the adjacency
  // fetch once the address is known) are issued at their proper simulated
  // times and interleave fairly with other in-flight walks.
  enum class Phase {
    kInfo,   // row_index lookup(s) through the cache
    kFetch,  // adjacency burst fetch + weight update + sampling
  };

  struct Slot {
    WalkState state;
    size_t query_seq = 0;  // index into this instance's query share
    uint32_t remaining = 0;
    Cycle start = 0;  // for latency accounting
    Phase phase = Phase::kInfo;
    std::vector<VertexId> path;
    bool active = false;
  };

  // Timing of the row_index lookup through the configured cache.
  Cycle LookupNeighborInfo(Cycle t, VertexId v);

  // The two step phases; see Phase.
  Cycle InfoPhase(Slot* slot, Cycle t);
  Cycle FetchPhase(Slot* slot, Cycle t, VertexId* next,
                   AccelRunStats* stats);

  bool tracing() const { return trace_ != nullptr && trace_->accepting(); }

  // Publishes this instance's module statistics into the configured
  // metrics registry under instance-labeled names.
  void PublishMetrics(Cycle makespan, uint64_t queries, uint64_t steps);

  const graph::CsrGraph* graph_;
  const apps::WalkApp* app_;
  const AcceleratorConfig& config_;
  const uint32_t instance_id_;
  obs::TraceRecorder* trace_;
  StageCycleStats stage_;
  hwsim::DramChannel channel_;
  DynamicBurstEngine burst_;
  std::unique_ptr<VertexCache> cache_;
  rng::ThunderingRng rng_;
  StepSampler sampler_;
  rng::Xoshiro256StarStar stop_gen_;
  // Deterministic DRAM ECC fault schedule (disabled unless
  // config.faults.enabled) and the counters its events land in.
  reliability::FaultStream faults_;
  reliability::ReliabilityStats rel_;
  // The weight-updater/WRS pipeline is a single k-wide unit per instance:
  // concurrent steps serialize through it.
  Cycle sampler_busy_ = 0;
};

Cycle Instance::LookupNeighborInfo(Cycle t, VertexId v) {
  if (cache_ != nullptr) {
    if (cache_->Probe(v)) {
      if (tracing()) {
        trace_->Instant("cache_hit", "cache", instance_id_, kInfoTrack, t);
      }
      return t + 1;  // on-chip hit: single-cycle response (Fig. 5 step c)
    }
    if (tracing()) {
      trace_->Instant("cache_miss", "cache", instance_id_, kInfoTrack, t);
    }
    const Cycle done = channel_.Access(t, /*burst_beats=*/1);
    channel_.ReportUseful(graph::kBytesPerRowRecord);
    cache_->Install(v, graph_->Degree(v));
    return done;
  }
  const Cycle done = channel_.Access(t, /*burst_beats=*/1);
  channel_.ReportUseful(graph::kBytesPerRowRecord);
  return done;
}

// Phase kInfo: issues the row_index lookup(s) at time `t`; returns when
// the {address, degree} data is available.
Cycle Instance::InfoPhase(Slot* slot, Cycle t) {
  const WalkState& state = slot->state;
  // Neighbor Info Loader: row_index lookup (possibly cached). Node2Vec-
  // style apps also look up the previous vertex's row entry for the
  // membership structure (the paper's "Node2Vec has more memory accesses
  // on the row_index array"); the two loaders issue concurrently.
  Cycle t_info = LookupNeighborInfo(t, state.curr);
  if (app_->needs_prev_neighbors() &&
      state.prev != graph::kInvalidVertex) {
    t_info = std::max(t_info, LookupNeighborInfo(t, state.prev));
  }
  stage_.info_cycles += t_info - t;
  if (tracing()) {
    trace_->Complete("row_lookup", "info", instance_id_, kInfoTrack, t,
                     t_info);
  }
  return t_info;
}

// Phase kFetch: streams the adjacency through the burst engine, weight
// updater, and sampler starting at `t`; returns the step-complete cycle
// and the sampled vertex in *next.
Cycle Instance::FetchPhase(Slot* slot, Cycle t, VertexId* next,
                           AccelRunStats* stats) {
  const WalkState& state = slot->state;
  const uint32_t degree = graph_->Degree(state.curr);
  const uint32_t k = config_.sampler_parallelism;

  // Re-fetch N(prev) when it exceeded the on-chip membership buffer.
  Cycle t_fetch = t;
  if (app_->needs_prev_neighbors() &&
      state.prev != graph::kInvalidVertex) {
    const uint32_t prev_degree = graph_->Degree(state.prev);
    if (prev_degree > config_.prev_neighbor_buffer_edges) {
      t_fetch = burst_.Fetch(
          t_fetch, static_cast<uint64_t>(prev_degree) *
                       graph::kBytesPerEdgeRecord);
      ++stats->prev_refetches;
    }
  }

  // Dynamic burst engine streams the adjacency list.
  const uint64_t bytes =
      static_cast<uint64_t>(degree) * graph::kBytesPerEdgeRecord;
  const Cycle last_data = burst_.Fetch(t_fetch, bytes);
  stats->edges_examined += degree;

  // Weight Updater + WRS Sampler.
  Cycle step_end;
  if (config_.enable_wrs_pipeline) {
    // Fine-grained pipeline: the sampler consumes k edges per cycle as
    // data streams in. It is one shared k-wide unit, so concurrent steps
    // queue for it; the step completes when the slower of memory and
    // sampler is done.
    const Cycle first_data = t_fetch + config_.dram.access_latency_cycles;
    const Cycle consume_start = std::max(first_data, sampler_busy_);
    sampler_busy_ = consume_start + CeilDiv(degree, k);
    step_end = std::max(last_data, sampler_busy_);
    if (tracing()) {
      trace_->Complete("wrs_consume", "sampler", instance_id_, kWrsTrack,
                       consume_start, sampler_busy_);
    }
  } else {
    // Staged ThunderRW-style flow on chip (the WRS-disabled ablation):
    // each stage runs to completion and the intermediate weight buffer
    // and sampling table round-trip through DRAM (Inefficiency 1).
    //
    // The stage chain is serial *within* the step, but other in-flight
    // walks still overlap with it, so the extra channel occupancy is
    // booked at the step's start (for contention) while the stages'
    // serial latency accumulates analytically.
    const uint32_t bus = config_.dram.bus_bytes;
    const uint64_t weight_bytes = static_cast<uint64_t>(degree) * 4;
    const uint64_t table_bytes = static_cast<uint64_t>(degree) * 8;
    const uint32_t weight_beats =
        static_cast<uint32_t>(CeilDiv(weight_bytes, bus));
    const uint32_t table_beats =
        static_cast<uint32_t>(CeilDiv(table_bytes, bus));
    const uint32_t probes = CeilLog2(static_cast<uint64_t>(degree) + 1);

    Cycle booked = t_fetch;
    booked = std::max(booked, channel_.Access(t_fetch, weight_beats));
    booked = std::max(booked, channel_.Access(t_fetch, weight_beats));
    booked = std::max(booked, channel_.Access(t_fetch, table_beats));
    for (uint32_t i = 0; i < probes; ++i) {
      booked = std::max(booked, channel_.Access(t_fetch, 1));
    }

    const auto transfer_latency = [&](uint32_t beats) {
      return channel_.RequestOccupancy(beats) +
             config_.dram.access_latency_cycles;
    };
    // weight compute + buffer write/read + table build + table write +
    // binary-search probes, end to end.
    const Cycle serial = last_data + degree +
                         transfer_latency(weight_beats) +
                         transfer_latency(weight_beats) + degree +
                         transfer_latency(table_beats) +
                         static_cast<Cycle>(probes) * transfer_latency(1);
    step_end = std::max(serial, booked);
  }

  // Attribution: memory wait up to the last adjacency beat counts as
  // fetch; whatever extends past it (WRS queueing or the staged
  // weight/table round-trips) counts as sampler time.
  stage_.fetch_cycles += last_data > t ? last_data - t : 0;
  stage_.sampler_cycles += step_end > last_data ? step_end - last_data : 0;
  stage_.pipeline_cycles += config_.pipeline_depth_cycles;
  if (tracing()) {
    trace_->Complete("adjacency_fetch", "burst", instance_id_, kFetchTrack,
                     t_fetch, last_data);
  }
  step_end += config_.pipeline_depth_cycles;

  // Functional sampling (identical distribution to the hardware).
  *next = sampler_.SampleNext(*graph_, *app_, state);
  return step_end;
}

Cycle Instance::Run(std::span<const WalkQuery> queries,
                    std::span<const size_t> global_indices,
                    std::vector<std::vector<VertexId>>* finished,
                    AccelRunStats* stats) {
  if (queries.empty()) {
    return 0;
  }
  const uint64_t queries_before = stats->queries;
  const uint64_t steps_before = stats->steps;
  const size_t num_slots =
      std::min<size_t>(std::max<uint32_t>(config_.inflight_queries, 1),
                       queries.size());
  std::vector<Slot> slots(num_slots);
  size_t next_query = 0;
  Cycle makespan = 0;

  // Min-heap of (ready cycle, slot index): FCFS channel arbitration.
  using HeapItem = std::pair<Cycle, size_t>;
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;

  auto load = [&](size_t slot_index, Cycle at) {
    if (next_query >= queries.size()) {
      return;
    }
    Slot& slot = slots[slot_index];
    const WalkQuery& q = queries[next_query];
    slot.query_seq = next_query++;
    slot.state = WalkState{};
    slot.state.curr = q.start;
    slot.remaining = q.length;
    slot.start = at;
    slot.phase = Phase::kInfo;
    slot.path.clear();
    slot.path.push_back(q.start);
    slot.active = true;
    heap.emplace(at, slot_index);
  };

  auto retire = [&](size_t slot_index, Cycle at) {
    Slot& slot = slots[slot_index];
    if (config_.collect_latency) {
      stats->query_latency_cycles.Add(static_cast<double>(at - slot.start));
    }
    if (tracing()) {
      trace_->Instant("query_retire", "query", instance_id_, kRetireTrack,
                      at);
    }
    if (finished != nullptr) {
      (*finished)[global_indices[slot.query_seq]] = std::move(slot.path);
    }
    ++stats->queries;
    slot.active = false;
    makespan = std::max(makespan, at);
    load(slot_index, at);
  };

  for (size_t i = 0; i < num_slots; ++i) {
    load(i, 0);
  }

  while (!heap.empty()) {
    const auto [now, slot_index] = heap.top();
    heap.pop();
    Slot& slot = slots[slot_index];
    LIGHTRW_DCHECK(slot.active);

    if (slot.phase == Phase::kInfo) {
      if (slot.state.step >= slot.remaining) {  // zero-length query
        retire(slot_index, now);
        continue;
      }
      const Cycle t_info = InfoPhase(&slot, now);
      if (channel_.TakeAccessFailure()) {
        // Uncorrectable ECC error past the retry budget on the row
        // lookup: the walk cannot continue from corrupt state.
        ++rel_.walks_failed;
        retire(slot_index, t_info);
        continue;
      }
      if (graph_->Degree(slot.state.curr) == 0) {  // dead end
        retire(slot_index, t_info + config_.pipeline_depth_cycles);
        continue;
      }
      slot.phase = Phase::kFetch;
      heap.emplace(t_info, slot_index);
      continue;
    }

    // Phase::kFetch.
    VertexId next = graph::kInvalidVertex;
    const Cycle done = FetchPhase(&slot, now, &next, stats);
    slot.phase = Phase::kInfo;
    if (channel_.TakeAccessFailure()) {
      // Uncorrectable ECC error in the adjacency stream: the sampled
      // step is based on corrupt data, so the walk fails here.
      ++rel_.walks_failed;
      retire(slot_index, done);
      continue;
    }
    if (next == graph::kInvalidVertex) {  // all weights zero
      retire(slot_index, done);
      continue;
    }
    slot.state.prev = slot.state.curr;
    slot.state.curr = next;
    ++slot.state.step;
    ++stats->steps;
    slot.path.push_back(next);
    const double stop_probability = app_->stop_probability();
    const bool stopped =
        stop_probability > 0.0 && stop_gen_.NextUnit() < stop_probability;
    if (stopped || slot.state.step >= slot.remaining) {
      retire(slot_index, done);
    } else {
      heap.emplace(done, slot_index);
    }
  }

  // Fold in this instance's module statistics.
  stats->dram.requests += channel_.stats().requests;
  stats->dram.beats += channel_.stats().beats;
  stats->dram.bytes += channel_.stats().bytes;
  stats->dram.busy_cycles += channel_.stats().busy_cycles;
  stats->dram.useful_bytes += channel_.stats().useful_bytes;
  if (cache_ != nullptr) {
    stats->cache.hits += cache_->stats().hits;
    stats->cache.misses += cache_->stats().misses;
  }
  stats->burst.requests += burst_.stats().requests;
  stats->burst.long_bursts += burst_.stats().long_bursts;
  stats->burst.short_bursts += burst_.stats().short_bursts;
  stats->burst.requested_bytes += burst_.stats().requested_bytes;
  stats->burst.loaded_bytes += burst_.stats().loaded_bytes;
  stats->stage.info_cycles += stage_.info_cycles;
  stats->stage.fetch_cycles += stage_.fetch_cycles;
  stats->stage.sampler_cycles += stage_.sampler_cycles;
  stats->stage.pipeline_cycles += stage_.pipeline_cycles;
  stats->reliability.Accumulate(rel_);
  PublishMetrics(makespan, stats->queries - queries_before,
                 stats->steps - steps_before);
  return makespan;
}

void Instance::PublishMetrics(Cycle makespan, uint64_t queries,
                              uint64_t steps) {
  obs::MetricsRegistry* metrics = config_.metrics;
  if (metrics == nullptr) {
    return;
  }
  const obs::Labels instance = {{"instance", std::to_string(instance_id_)}};
  metrics->GetCounter("accel.instance.queries", instance)->Increment(queries);
  metrics->GetCounter("accel.instance.steps", instance)->Increment(steps);
  metrics->GetGauge("accel.instance.cycles", instance)
      ->Set(static_cast<double>(makespan));
  if (cache_ != nullptr) {
    metrics->GetCounter("accel.cache.hits", instance)
        ->Increment(cache_->stats().hits);
    metrics->GetCounter("accel.cache.misses", instance)
        ->Increment(cache_->stats().misses);
  }
  metrics->GetCounter("accel.burst.requests", instance)
      ->Increment(burst_.stats().requests);
  metrics->GetCounter("accel.burst.long_bursts", instance)
      ->Increment(burst_.stats().long_bursts);
  metrics->GetCounter("accel.burst.short_bursts", instance)
      ->Increment(burst_.stats().short_bursts);
  metrics->GetCounter("accel.burst.loaded_bytes", instance)
      ->Increment(burst_.stats().loaded_bytes);
  metrics->GetCounter("accel.dram.requests", instance)
      ->Increment(channel_.stats().requests);
  metrics->GetCounter("accel.dram.bytes", instance)
      ->Increment(channel_.stats().bytes);
  metrics->GetCounter("accel.dram.busy_cycles", instance)
      ->Increment(channel_.stats().busy_cycles);
  const struct {
    const char* stage;
    uint64_t cycles;
  } stages[] = {{"info", stage_.info_cycles},
                {"fetch", stage_.fetch_cycles},
                {"sampler", stage_.sampler_cycles},
                {"pipeline", stage_.pipeline_cycles}};
  for (const auto& [stage, cycles] : stages) {
    metrics
        ->GetCounter("accel.stage.cycles",
                     {{"instance", std::to_string(instance_id_)},
                      {"stage", stage}})
        ->Increment(cycles);
  }
  if (rel_.Any()) {
    reliability::PublishReliabilityMetrics(metrics, rel_, instance);
  }
}

}  // namespace

CycleEngine::CycleEngine(const graph::CsrGraph* graph,
                         const apps::WalkApp* app,
                         const AcceleratorConfig& config)
    : graph_(graph), app_(app), config_(config) {
  LIGHTRW_CHECK(graph != nullptr);
  LIGHTRW_CHECK(app != nullptr);
  LIGHTRW_CHECK(config.sampler_parallelism >= 1);
  LIGHTRW_CHECK(config.num_instances >= 1);
}

namespace {

// Folds one instance's counters into the run total. Called in instance
// order after the parallel barrier so the merged result (including the
// floating-point latency samples) is independent of thread count.
void AccumulateStats(const AccelRunStats& part, AccelRunStats* total) {
  total->queries += part.queries;
  total->steps += part.steps;
  total->edges_examined += part.edges_examined;
  total->dram.requests += part.dram.requests;
  total->dram.beats += part.dram.beats;
  total->dram.bytes += part.dram.bytes;
  total->dram.busy_cycles += part.dram.busy_cycles;
  total->dram.useful_bytes += part.dram.useful_bytes;
  total->cache.hits += part.cache.hits;
  total->cache.misses += part.cache.misses;
  total->burst.requests += part.burst.requests;
  total->burst.long_bursts += part.burst.long_bursts;
  total->burst.short_bursts += part.burst.short_bursts;
  total->burst.requested_bytes += part.burst.requested_bytes;
  total->burst.loaded_bytes += part.burst.loaded_bytes;
  total->stage.info_cycles += part.stage.info_cycles;
  total->stage.fetch_cycles += part.stage.fetch_cycles;
  total->stage.sampler_cycles += part.stage.sampler_cycles;
  total->stage.pipeline_cycles += part.stage.pipeline_cycles;
  total->prev_refetches += part.prev_refetches;
  total->reliability.Accumulate(part.reliability);
  total->query_latency_cycles.Merge(part.query_latency_cycles);
}

}  // namespace

AccelRunStats CycleEngine::Run(std::span<const WalkQuery> queries,
                               WalkOutput* output) {
  AccelRunStats stats;
  const uint32_t n = config_.num_instances;

  // Round-robin query distribution across instances (paper §6.1.5:
  // "we evenly distribute random walk queries to all instances").
  std::vector<std::vector<WalkQuery>> shares(n);
  std::vector<std::vector<size_t>> share_indices(n);
  for (size_t i = 0; i < queries.size(); ++i) {
    shares[i % n].push_back(queries[i]);
    share_indices[i % n].push_back(i);
  }

  std::vector<std::vector<VertexId>> finished;
  if (output != nullptr) {
    finished.resize(queries.size());
  }

  // Each instance is an independent shard: private datapath models,
  // private RNG streams, a private stats slot, and (when tracing) a
  // private trace shard. Workers write only their own slots, so the run
  // is bit-identical for every thread count; the metrics registry is
  // shared but its counters commute and its exposition is key-sorted.
  const uint32_t threads = SimThreadPool::ResolveThreads(config_.num_threads);
  std::vector<AccelRunStats> instance_stats(n);
  std::vector<Cycle> instance_makespan(n, 0);
  std::vector<std::unique_ptr<obs::TraceRecorder>> trace_shards(n);
  SimThreadPool::ParallelFor(threads, n, [&](size_t i) {
    obs::TraceRecorder* trace = config_.trace;
    if (trace != nullptr && n > 1) {
      trace_shards[i] =
          std::make_unique<obs::TraceRecorder>(trace->config());
      trace = trace_shards[i].get();
    }
    Instance instance(graph_, app_, config_, static_cast<uint32_t>(i),
                      config_.seed + 0x1000003ULL * i, trace);
    instance_makespan[i] =
        instance.Run(shares[i], share_indices[i],
                     output != nullptr ? &finished : nullptr,
                     &instance_stats[i]);
  });

  Cycle makespan = 0;
  for (uint32_t i = 0; i < n; ++i) {
    AccumulateStats(instance_stats[i], &stats);
    makespan = std::max(makespan, instance_makespan[i]);
    if (trace_shards[i] != nullptr) {
      config_.trace->MergeFrom(trace_shards[i].get());
    }
  }
  if (output != nullptr) {
    for (auto& path : finished) {
      output->vertices.insert(output->vertices.end(), path.begin(),
                              path.end());
      output->offsets.push_back(
          static_cast<uint32_t>(output->vertices.size()));
    }
  }
  stats.cycles = makespan;
  stats.seconds = static_cast<double>(makespan) / config_.dram.clock_hz;
  return stats;
}

}  // namespace lightrw::core
