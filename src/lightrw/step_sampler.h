// One-step sampling shared by the LightRW engines: streams the current
// vertex's neighbors through the application weight updater into the
// k-lane parallel WRS sampler, exactly as the hardware pipeline does
// (Weight Updater -> WRS Sampler, k items per cycle).

#ifndef LIGHTRW_LIGHTRW_STEP_SAMPLER_H_
#define LIGHTRW_LIGHTRW_STEP_SAMPLER_H_

#include <cstddef>
#include <vector>

#include "apps/walk_app.h"
#include "graph/csr.h"
#include "rng/rng.h"
#include "sampling/parallel_wrs.h"

namespace lightrw::core {

using apps::WalkApp;
using apps::WalkState;
using graph::CsrGraph;
using graph::VertexId;
using graph::Weight;

// Reusable per-engine sampling unit. Not thread-safe.
class StepSampler {
 public:
  // Lane j of the PWRS draws from rng stream j; `rng` must expose at least
  // `parallelism` streams and outlive this object.
  StepSampler(size_t parallelism, rng::ThunderingRng* rng);

  // Samples the next vertex of the walk in `state`. Returns
  // graph::kInvalidVertex if the current vertex has no sampleable neighbor
  // (zero degree or all dynamic weights zero).
  VertexId SampleNext(const CsrGraph& graph, const WalkApp& app,
                      const WalkState& state);

  size_t parallelism() const { return pwrs_.parallelism(); }

 private:
  sampling::ParallelWrsSampler pwrs_;
  std::vector<Weight> batch_;
};

}  // namespace lightrw::core

#endif  // LIGHTRW_LIGHTRW_STEP_SAMPLER_H_
