// Model of a uniform-sampling static-walk accelerator in the style of
// Su et al. (FPL'21), the FPGA random-walk design the paper compares
// against in §7. Uniform sampling needs no weight pass: a step draws a
// uniform index in [0, degree) and fetches exactly one neighbor record,
// so each step costs a row lookup plus a single short DRAM access. The
// price is generality — it supports only unweighted (uniform) walks,
// whereas LightRW streams the whole adjacency to support arbitrary
// dynamic weight functions.
//
// Used by the ext_uniform_baseline bench to reproduce the paper's
// qualitative comparison quantitatively.

#ifndef LIGHTRW_LIGHTRW_UNIFORM_ENGINE_H_
#define LIGHTRW_LIGHTRW_UNIFORM_ENGINE_H_

#include <span>

#include "apps/walk_app.h"
#include "baseline/engine.h"
#include "graph/csr.h"
#include "lightrw/config.h"
#include "lightrw/cycle_engine.h"

namespace lightrw::core {

// Cycle model + functional sampling for uniform static walks. Reuses the
// AcceleratorConfig (cache, DRAM, instances); burst strategy and sampler
// lanes are irrelevant (one 8-byte fetch per step).
class UniformCycleEngine {
 public:
  // `graph` must outlive the engine. Edge weights are ignored: every
  // neighbor is equally likely (the Su et al. restriction).
  UniformCycleEngine(const graph::CsrGraph* graph,
                     const AcceleratorConfig& config);

  AccelRunStats Run(std::span<const apps::WalkQuery> queries,
                    baseline::WalkOutput* output = nullptr);

 private:
  const graph::CsrGraph* graph_;
  AcceleratorConfig config_;
};

}  // namespace lightrw::core

#endif  // LIGHTRW_LIGHTRW_UNIFORM_ENGINE_H_
