#include "lightrw/vertex_cache.h"

#include "common/bits.h"
#include "common/check.h"

namespace lightrw::core {

namespace {

uint32_t ValidateEntries(uint32_t entries) {
  LIGHTRW_CHECK(entries >= 1);
  LIGHTRW_CHECK(IsPowerOfTwo(entries));
  return entries;
}

}  // namespace

DirectMappedCache::DirectMappedCache(uint32_t entries)
    : entries_(ValidateEntries(entries)),
      tag_(entries, 0),
      valid_(entries, false) {}

bool DirectMappedCache::Probe(VertexId v) {
  const uint32_t set = v & (entries_ - 1);
  if (valid_[set] && tag_[set] == v) {
    ++stats_.hits;
    return true;
  }
  ++stats_.misses;
  return false;
}

void DirectMappedCache::Install(VertexId v, uint32_t /*degree*/) {
  const uint32_t set = v & (entries_ - 1);
  valid_[set] = true;
  tag_[set] = v;
}

DegreeAwareCache::DegreeAwareCache(uint32_t entries)
    : entries_(ValidateEntries(entries)),
      tag_(entries, 0),
      degree_(entries, 0),
      valid_(entries, false) {}

bool DegreeAwareCache::Probe(VertexId v) {
  const uint32_t set = v & (entries_ - 1);
  if (valid_[set] && tag_[set] == v) {
    ++stats_.hits;
    return true;
  }
  ++stats_.misses;
  return false;
}

void DegreeAwareCache::Install(VertexId v, uint32_t degree) {
  const uint32_t set = v & (entries_ - 1);
  // Replace only if the incoming vertex is hotter (higher degree) than the
  // resident one — Fig. 5 step (e).
  if (valid_[set] && degree_[set] >= degree && tag_[set] != v) {
    return;
  }
  valid_[set] = true;
  tag_[set] = v;
  degree_[set] = degree;
}

SetAssociativeCache::SetAssociativeCache(uint32_t entries, uint32_t ways,
                                         Replacement replacement)
    : entries_(ValidateEntries(entries)),
      ways_(ways),
      replacement_(replacement) {
  LIGHTRW_CHECK(IsPowerOfTwo(ways));
  LIGHTRW_CHECK(ways >= 1 && ways <= entries);
  num_sets_ = entries / ways;
  lines_.assign(entries_, Line{});
}

bool SetAssociativeCache::Probe(VertexId v) {
  const uint32_t set = v & (num_sets_ - 1);
  Line* base = &lines_[static_cast<size_t>(set) * ways_];
  for (uint32_t w = 0; w < ways_; ++w) {
    if (base[w].valid && base[w].tag == v) {
      if (replacement_ == Replacement::kLru) {
        base[w].order = ++clock_;  // refresh recency on hit
      }
      ++stats_.hits;
      return true;
    }
  }
  ++stats_.misses;
  return false;
}

void SetAssociativeCache::Install(VertexId v, uint32_t /*degree*/) {
  const uint32_t set = v & (num_sets_ - 1);
  Line* base = &lines_[static_cast<size_t>(set) * ways_];
  Line* victim = base;
  for (uint32_t w = 0; w < ways_; ++w) {
    if (!base[w].valid) {
      victim = &base[w];
      break;
    }
    if (base[w].order < victim->order) {
      victim = &base[w];  // oldest stamp: LRU or FIFO victim
    }
  }
  victim->valid = true;
  victim->tag = v;
  victim->order = ++clock_;
}

std::unique_ptr<VertexCache> MakeVertexCache(CacheKind kind,
                                             uint32_t entries) {
  switch (kind) {
    case CacheKind::kNone:
      return nullptr;
    case CacheKind::kDirectMapped:
      return std::make_unique<DirectMappedCache>(entries);
    case CacheKind::kDegreeAware:
      return std::make_unique<DegreeAwareCache>(entries);
    case CacheKind::kLru:
      return std::make_unique<SetAssociativeCache>(
          entries, /*ways=*/4, SetAssociativeCache::Replacement::kLru);
    case CacheKind::kFifo:
      return std::make_unique<SetAssociativeCache>(
          entries, /*ways=*/4, SetAssociativeCache::Replacement::kFifo);
  }
  return nullptr;
}

}  // namespace lightrw::core
