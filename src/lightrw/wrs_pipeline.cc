#include "lightrw/wrs_pipeline.h"

#include <algorithm>
#include <utility>

#include "common/bits.h"
#include "common/check.h"
#include "sampling/sampler.h"

namespace lightrw::core {

namespace {

// A batch annotated with the cycle at which it leaves a pipelined stage
// (stages have log-depth latency but initiate one batch per cycle).
template <typename T>
struct Timed {
  T payload;
  hwsim::Cycle available = 0;
};

}  // namespace

WrsPipelineSim::WrsPipelineSim(const WrsPipelineConfig& config)
    : config_(config) {
  LIGHTRW_CHECK(config.parallelism >= 1);
  LIGHTRW_CHECK(config.feed_items_per_kcycle >= 1);
  LIGHTRW_CHECK(config.fifo_depth >= 1);
}

WrsPipelineResult WrsPipelineSim::Run(std::vector<graph::Weight> weights) {
  const uint32_t k = config_.parallelism;
  const uint32_t prefix_latency = CeilLog2(static_cast<uint64_t>(k) + 1);
  const uint32_t select_latency = prefix_latency + 2;  // compare + max tree

  rng::ThunderingRng rng(k, config_.seed);

  // Inter-stage FIFOs (Fig. 4): feed -> accumulator -> selector -> output.
  hwsim::Fifo<graph::Weight> feed_fifo(
      std::max<uint32_t>(2 * k, config_.fifo_depth * k));
  // FIFO capacity covers the downstream stage's pipeline registers (items
  // "in flight" inside the stage) plus the configured stream depth, so the
  // modeled latency never throttles a fully pipelined stream.
  hwsim::Fifo<Timed<Batch>> accum_fifo(config_.fifo_depth + prefix_latency);
  hwsim::Fifo<Timed<std::pair<size_t, bool>>> select_fifo(
      config_.fifo_depth + select_latency);

  WrsPipelineResult result;
  result.items = weights.size();
  result.selected = sampling::kNoSample;

  size_t fed = 0;               // items delivered by the memory feed
  size_t consumed = 0;          // items taken by the accumulator
  size_t retired_batches = 0;
  const size_t total_batches = CeilDiv(weights.size(), k);
  uint64_t weight_sum = 0;      // accumulator's running w_sum^i
  uint64_t feed_credit = 0;     // fractional feed accumulator (1/1024ths)

  hwsim::Cycle cycle = 0;
  // Hard bound: every batch needs at most a few cycles end to end.
  const hwsim::Cycle cycle_limit =
      (static_cast<hwsim::Cycle>(weights.size()) + 64) * (k + 64);

  while (retired_batches < total_batches) {
    LIGHTRW_CHECK(cycle < cycle_limit);

    // Output stage: retire at most one selection per cycle.
    if (select_fifo.CanPop() &&
        select_fifo.Front().available <= cycle) {
      const auto timed = select_fifo.Pop();
      if (timed.payload.second) {
        result.selected = timed.payload.first;
      }
      ++retired_batches;
    }

    // Selector: one batch per cycle; k comparators draw from their own
    // PRNG streams; the max-index tree keeps the latest candidate.
    if (accum_fifo.CanPop() && select_fifo.CanPush() &&
        accum_fifo.Front().available <= cycle) {
      const auto timed = accum_fifo.Pop();
      const Batch& batch = timed.payload;
      size_t selected_lane = sampling::kNoSample;
      for (size_t j = 0; j < batch.weights.size(); ++j) {
        if (batch.weights[j] == 0) {
          continue;
        }
        const uint32_t r = rng.Next(j);
        if (sampling::WrsSelect(batch.weights[j], batch.inclusive_sum[j],
                                r)) {
          selected_lane = j;
        }
      }
      Timed<std::pair<size_t, bool>> out;
      out.available = cycle + select_latency;
      const bool has_candidate = selected_lane != sampling::kNoSample;
      out.payload = {has_candidate ? batch.base_index + selected_lane : 0,
                     has_candidate};
      select_fifo.Push(out);
    }

    // Weight Accumulator: consume up to k items per cycle once a full
    // batch (or the stream tail) is buffered; compute the prefix sums.
    const size_t available = feed_fifo.size();
    const size_t remaining = weights.size() - consumed;
    const size_t want = std::min<size_t>(k, remaining);
    if (want > 0 && available >= want && accum_fifo.CanPush()) {
      Batch batch;
      batch.base_index = consumed;
      batch.weights.reserve(want);
      batch.inclusive_sum.reserve(want);
      uint64_t running = weight_sum;
      for (size_t j = 0; j < want; ++j) {
        const graph::Weight w = feed_fifo.Pop();
        running += w;
        batch.weights.push_back(w);
        batch.inclusive_sum.push_back(running);
      }
      weight_sum = running;
      consumed += want;
      Timed<Batch> timed;
      timed.available = cycle + prefix_latency;
      timed.payload = std::move(batch);
      accum_fifo.Push(timed);
    }

    // Memory feed: deliver items at the configured fractional rate.
    feed_credit += config_.feed_items_per_kcycle;
    while (feed_credit >= 1024 && fed < weights.size() &&
           feed_fifo.CanPush()) {
      feed_fifo.Push(weights[fed++]);
      feed_credit -= 1024;
    }
    if (feed_credit >= 1024 && fed < weights.size()) {
      feed_credit = 1024;  // backpressure: the feed stalls, credit caps
    }

    result.accumulator_max_occupancy =
        std::max(result.accumulator_max_occupancy, accum_fifo.size());
    result.selector_max_occupancy =
        std::max(result.selector_max_occupancy, select_fifo.size());
    ++cycle;
  }

  result.cycles = cycle;
  return result;
}

}  // namespace lightrw::core
