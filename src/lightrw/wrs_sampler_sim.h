// Standalone micro-simulation of the WRS Sampler module (paper §6.2).
//
// Models the Fig. 4 pipeline fed by pre-generated weights resident in one
// DRAM channel, as in the paper's evaluation: weights stream in at memory
// line rate (4 bytes per item), the k-lane sampler consumes k items per
// cycle, and the pipeline has a fixed fill latency. Used by the Fig. 10
// benchmarks (throughput vs. parallelism / stream length) and by tests.

#ifndef LIGHTRW_LIGHTRW_WRS_SAMPLER_SIM_H_
#define LIGHTRW_LIGHTRW_WRS_SAMPLER_SIM_H_

#include <cstdint>

#include "hwsim/dram.h"
#include "lightrw/config.h"

namespace lightrw::core {

struct WrsSamplerSimResult {
  uint64_t items = 0;
  uint64_t cycles = 0;
  double seconds = 0.0;
  double items_per_second = 0.0;
  // Bandwidth consumed by the weight stream (4 B per item).
  double bytes_per_second = 0.0;
  // Index sampled by the functional k-lane WRS (for correctness checks).
  size_t selected = 0;
};

class WrsSamplerSim {
 public:
  WrsSamplerSim(uint32_t parallelism, const hwsim::DramConfig& dram,
                uint64_t seed);

  // Streams `items` uniformly random weights through the sampler.
  WrsSamplerSimResult RunStream(uint64_t items);

  // Ideal throughput of a k-lane sampler at the kernel clock (the gray
  // dashed line of Fig. 10a).
  double TheoreticalItemsPerSecond() const;

  // Items the memory system can supply per cycle (the saturation level).
  double MemoryItemsPerCycle() const;

 private:
  uint32_t k_;
  hwsim::DramConfig dram_;
  uint64_t seed_;
};

}  // namespace lightrw::core

#endif  // LIGHTRW_LIGHTRW_WRS_SAMPLER_SIM_H_
