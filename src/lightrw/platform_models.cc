#include "lightrw/platform_models.h"

#include <algorithm>
#include <cmath>

#include "common/bits.h"

namespace lightrw::core {

namespace {

// Normalizes a graph's edge count onto [0, 1] across the paper's dataset
// range (youtube, 2.99M edges, to uk2002, 298M edges).
double GraphSizeFactor(uint64_t num_edges) {
  const double lo = std::log2(2.99e6);
  const double hi = std::log2(298.11e6);
  const double x = std::log2(std::max<uint64_t>(num_edges, 2));
  return std::clamp((x - lo) / (hi - lo), 0.0, 1.0);
}

// Bytes per BRAM36 block usable as a 8-byte-wide table (36 Kb = 4608 B).
constexpr uint64_t kBramBytes = 4608;

}  // namespace

double PowerModel::FpgaWatts(uint32_t num_instances, uint64_t num_edges,
                             bool memory_heavy) const {
  const double t = GraphSizeFactor(num_edges);
  double watts = fpga_static_watts +
                 fpga_dynamic_watts_per_instance * num_instances + 4.5 * t;
  if (memory_heavy) {
    // Node2Vec keeps the burst pipelines less busy (extra row-index and
    // membership traffic), lowering dynamic power slightly — the paper
    // measures 39-42 W vs. MetaPath's 41-45 W.
    watts -= 1.5;
  }
  return watts;
}

double PowerModel::CpuWatts(uint64_t num_edges, bool memory_heavy) const {
  const double t = GraphSizeFactor(num_edges);
  // Calibrated to the paper's CPU Energy Meter ranges: MetaPath 103-124 W,
  // Node2Vec 110-126 W (Node2Vec retires more work per edge).
  const double base = cpu_idle_watts + (memory_heavy ? 15.0 : 8.0);
  const double span = memory_heavy ? 16.0 : cpu_dynamic_span_watts - 10.0;
  return base + span * t;
}

uint64_t PcieModel::RunBytes(const graph::CsrGraph& graph,
                             uint32_t num_instances, uint64_t num_queries,
                             uint32_t query_length) const {
  const uint64_t graph_bytes = graph.ModeledByteSize() * num_instances;
  const uint64_t query_bytes = num_queries * 8;  // start vertex + metadata
  const uint64_t result_bytes =
      num_queries * (static_cast<uint64_t>(query_length) + 1) * 4;
  return graph_bytes + query_bytes + result_bytes;
}

ResourceUsage& ResourceUsage::operator+=(const ResourceUsage& other) {
  luts += other.luts;
  regs += other.regs;
  brams += other.brams;
  dsps += other.dsps;
  return *this;
}

ResourceUsage ResourceUsage::operator*(uint64_t n) const {
  return ResourceUsage{luts * n, regs * n, brams * n, dsps * n};
}

ResourceUsage ResourceModel::Shell() const {
  // XDMA platform shell + four DDR controllers.
  return ResourceUsage{100000, 150000, 145, 10};
}

ResourceUsage ResourceModel::InstanceUsage(const AcceleratorConfig& config,
                                           bool needs_prev_neighbors) const {
  const uint64_t k = config.sampler_parallelism;
  ResourceUsage usage;

  // Query controller, neighbor info loader, dynamic burst engine, output
  // stage and the inter-stage stream FIFOs.
  usage += ResourceUsage{20000, 31000, 38, 2};

  // Row-index cache.
  if (config.cache_kind != CacheKind::kNone) {
    usage += ResourceUsage{
        2500, 3000,
        CeilDiv(static_cast<uint64_t>(config.cache_entries) *
                    graph::kBytesPerRowRecord,
                kBramBytes),
        0};
  }

  // ThundeRiNG instances: one decorrelator per lane over a shared state.
  usage += ResourceUsage{800 * k, 1200 * k, 0, 0};

  // WRS sampler: per-lane prefix adder, comparator, and the Eq. (8)
  // multiply-accumulate on DSPs.
  usage += ResourceUsage{1500 * k, 2500 * k, 0, 8 * k};

  // Weight updater.
  if (needs_prev_neighbors) {
    // Node2Vec: light per-lane scaling plus the previous-adjacency buffer
    // and membership filter.
    usage += ResourceUsage{
        1000 * k + 6000, 2000 * k + 6000,
        CeilDiv(static_cast<uint64_t>(config.prev_neighbor_buffer_edges) *
                    graph::kBytesPerEdgeRecord,
                kBramBytes),
        1 * k};
  } else {
    // MetaPath/static: per-lane relation matcher and weight mux.
    usage += ResourceUsage{1800 * k, 3500 * k, 0, 1 * k};
  }
  return usage;
}

ResourceUsage ResourceModel::TotalUsage(const AcceleratorConfig& config,
                                        bool needs_prev_neighbors) const {
  ResourceUsage total = Shell();
  total += InstanceUsage(config, needs_prev_neighbors) *
           config.num_instances;
  return total;
}

}  // namespace lightrw::core
