// Dynamic burst engine (paper §5.2).
//
// Adjacency lists have wildly varying byte lengths; a fixed burst size
// either wastes bandwidth (short bursts pay the per-request issue gap) or
// fetches unused data (long bursts overshoot short lists). The dynamic
// burst engine splits a c-byte request into floor(c/S1) long bursts plus
// ceil((c - floor(c/S1)*S1) / S2) short bursts, so at most S2 bytes of the
// fetch are wasted while the bulk moves at long-burst bandwidth.

#ifndef LIGHTRW_LIGHTRW_BURST_ENGINE_H_
#define LIGHTRW_LIGHTRW_BURST_ENGINE_H_

#include <cstdint>

#include "hwsim/dram.h"
#include "lightrw/config.h"

namespace lightrw::core {

// The command split for one request (output of the Burst cmd Generator).
struct BurstPlan {
  uint32_t long_bursts = 0;
  uint32_t short_bursts = 0;
  uint64_t loaded_bytes = 0;  // >= requested bytes; excess <= one short burst
};

// Computes the command split for a request of `bytes` bytes under
// `strategy` with the given bus width. Burst lengths in the strategy are
// in beats (bus words); strategy.long_beats == 0 routes everything through
// the short pipeline.
BurstPlan PlanBursts(uint64_t bytes, const BurstStrategy& strategy,
                     uint32_t bus_bytes);

// Cumulative burst engine statistics.
struct BurstStats {
  uint64_t requests = 0;       // adjacency fetch requests
  uint64_t long_bursts = 0;
  uint64_t short_bursts = 0;
  uint64_t requested_bytes = 0;
  uint64_t loaded_bytes = 0;

  // Paper's "ratio of valid data": requested / loaded.
  double ValidDataRatio() const {
    return loaded_bytes == 0
               ? 1.0
               : static_cast<double>(requested_bytes) / loaded_bytes;
  }
};

// Stateful engine bound to one DRAM channel: plans each request and issues
// the resulting bursts, returning the data-complete cycle.
class DynamicBurstEngine {
 public:
  // `channel` must outlive the engine.
  DynamicBurstEngine(hwsim::DramChannel* channel,
                     const BurstStrategy& strategy);

  // Fetches `bytes` starting at `ready`; returns the cycle when the last
  // beat has arrived. A zero-byte fetch completes immediately.
  hwsim::Cycle Fetch(hwsim::Cycle ready, uint64_t bytes);

  const BurstStats& stats() const { return stats_; }
  void ResetStats() { stats_ = BurstStats{}; }
  const BurstStrategy& strategy() const { return strategy_; }

 private:
  hwsim::DramChannel* channel_;
  BurstStrategy strategy_;
  BurstStats stats_;
};

}  // namespace lightrw::core

#endif  // LIGHTRW_LIGHTRW_BURST_ENGINE_H_
