// Human-readable run reports: formats AccelRunStats together with the
// platform models into the summary an operator would want after a run
// (throughput, memory behaviour, modeled power/PCIe/resources). Used by
// the walk_tool --report flag.

#ifndef LIGHTRW_LIGHTRW_REPORT_H_
#define LIGHTRW_LIGHTRW_REPORT_H_

#include <string>

#include "graph/csr.h"
#include "lightrw/config.h"
#include "lightrw/cycle_engine.h"
#include "lightrw/platform_models.h"

namespace lightrw::core {

// Everything needed to render a report for one simulated run.
struct RunReportInputs {
  const graph::CsrGraph* graph = nullptr;
  const AcceleratorConfig* config = nullptr;
  const AccelRunStats* stats = nullptr;
  // Application properties.
  std::string app_name;
  bool needs_prev_neighbors = false;
  // Workload shape (for the PCIe model).
  uint64_t num_queries = 0;
  uint32_t query_length = 0;
};

// Renders a multi-line report. All inputs must be non-null.
std::string FormatRunReport(const RunReportInputs& inputs);

}  // namespace lightrw::core

#endif  // LIGHTRW_LIGHTRW_REPORT_H_
