// Human-readable run reports: formats AccelRunStats together with the
// platform models into the summary an operator would want after a run
// (throughput, memory behaviour, modeled power/PCIe/resources). Used by
// the walk_tool --report flag.

#ifndef LIGHTRW_LIGHTRW_REPORT_H_
#define LIGHTRW_LIGHTRW_REPORT_H_

#include <string>

#include "graph/csr.h"
#include "lightrw/config.h"
#include "lightrw/cycle_engine.h"
#include "lightrw/platform_models.h"

namespace lightrw::core {

// Service-level objective summary of a walk-service run, kept as plain
// data so the report stays independent of the service layer (the service
// fills it from ServiceRunStats::Slo()).
struct SloSummary {
  uint64_t offered = 0;
  uint64_t completed = 0;
  uint64_t shed = 0;
  uint64_t failed = 0;
  uint64_t deadline_violations = 0;
  uint64_t degraded = 0;
  uint64_t breaker_trips = 0;
  uint64_t retries = 0;
  double goodput_per_s = 0.0;   // deadline-met completions per second
  double shed_rate = 0.0;       // shed / offered
  double violation_rate = 0.0;  // late completions / offered
  double queue_delay_p50 = 0.0;  // cycles
  double queue_delay_p99 = 0.0;
  double latency_p50 = 0.0;  // cycles
  double latency_p99 = 0.0;
  bool Any() const { return offered > 0; }
};

// Renders the SLO section on its own (used by walk_tool's service mode).
std::string FormatSloSection(const SloSummary& slo);

// Everything needed to render a report for one simulated run.
struct RunReportInputs {
  const graph::CsrGraph* graph = nullptr;
  const AcceleratorConfig* config = nullptr;
  const AccelRunStats* stats = nullptr;
  // Application properties.
  std::string app_name;
  bool needs_prev_neighbors = false;
  // Workload shape (for the PCIe model).
  uint64_t num_queries = 0;
  uint32_t query_length = 0;
  // Service-level objectives: appended as a gated section when non-null
  // and non-empty (batch runs keep a byte-identical report).
  const SloSummary* slo = nullptr;
  // Latency attribution: pre-rendered by
  // obs::FormatLatencyAttributionSection and appended when non-null and
  // non-empty, keeping the report independent of the span subsystem
  // (runs without span recording keep a byte-identical report).
  const std::string* latency_attribution = nullptr;
};

// Renders a multi-line report. All inputs must be non-null.
std::string FormatRunReport(const RunReportInputs& inputs);

}  // namespace lightrw::core

#endif  // LIGHTRW_LIGHTRW_REPORT_H_
