// Configuration of the modeled LightRW accelerator.

#ifndef LIGHTRW_LIGHTRW_CONFIG_H_
#define LIGHTRW_LIGHTRW_CONFIG_H_

#include <cstdint>

#include "hwsim/dram.h"
#include "reliability/fault_injector.h"

namespace lightrw::obs {
class MetricsRegistry;
class SpanRecorder;
class TraceRecorder;
}  // namespace lightrw::obs

namespace lightrw::core {

// Which row_index cache the Neighbor Info Loader uses (paper §5.1).
enum class CacheKind {
  kNone,         // every lookup goes to DRAM (the DAC-disabled ablation)
  kDirectMapped, // classic direct-mapped replacement (Fig. 11's DMC)
  kDegreeAware,  // replace only if the incoming vertex has higher degree
  kLru,          // 4-way set-associative, least-recently-used eviction
  kFifo,         // 4-way set-associative, first-in-first-out eviction
};

// Burst scheduling strategy of the dynamic burst engine (paper §5.2),
// written b{short}+b{long} in the evaluation. long_beats == 0 disables the
// long pipeline (the b1+b0 baseline: everything moves in short bursts).
struct BurstStrategy {
  uint32_t short_beats = 1;
  uint32_t long_beats = 32;  // b1+b32, the best strategy found in Fig. 12
};

// DRAM configuration used by the accelerator instances: bank-level
// parallelism lets the short bursts of one adjacency fetch overlap their
// issue gaps, as multiple outstanding AXI reads do on the real board.
inline hwsim::DramConfig DefaultAcceleratorDram() {
  hwsim::DramConfig dram;
  dram.num_banks = 8;
  return dram;
}

// DRAM configuration modeling one HBM2 pseudo-channel (the deployment of
// Su et al. and the U280 path the paper's future work points at): many
// narrow channels instead of four wide DDR4 ones. Per pseudo-channel:
// 32-byte bus, ~14.4 GB/s, deeper relative access latency.
inline hwsim::DramConfig HbmPseudoChannelDram() {
  hwsim::DramConfig dram;
  dram.bus_bytes = 32;
  dram.issue_gap_cycles = 16;
  dram.access_latency_cycles = 160;
  dram.num_banks = 8;
  return dram;
}

struct AcceleratorConfig {
  // Lanes of the parallel WRS sampler (vertices consumed per cycle).
  uint32_t sampler_parallelism = 16;

  // Enables the fine-grained WRS pipeline. When false the instance models
  // the staged ThunderRW-style flow on FPGA: weight buffer and sampling
  // table round-trip through DRAM and the stages execute back-to-back
  // (the WRS-disabled ablation of Fig. 13).
  bool enable_wrs_pipeline = true;

  BurstStrategy burst;
  CacheKind cache_kind = CacheKind::kDegreeAware;
  // Row cache capacity in vertices (paper evaluates 2^12).
  uint32_t cache_entries = 4096;

  // Capacity (in edges) of the on-chip buffer holding the previous step's
  // adjacency for Node2Vec's membership tests. Walks whose previous vertex
  // exceeds this re-fetch N(prev) from DRAM.
  uint32_t prev_neighbor_buffer_edges = 4096;

  // Queries resident in one instance's pipeline at a time. LightRW keeps
  // many walks in flight so DRAM latency of one walk overlaps with
  // compute of others.
  uint32_t inflight_queries = 64;

  // LightRW instances; each owns one DRAM channel and a private graph copy
  // (paper Fig. 9; the U250 has 4 channels).
  uint32_t num_instances = 4;

  // Host worker threads simulating the instances concurrently (each
  // instance is an independent shard, so results are bit-identical for
  // every thread count). 0 = SimThreadPool::DefaultThreads(), i.e. the
  // LIGHTRW_SIM_THREADS environment or the tools' --threads flag.
  uint32_t num_threads = 0;

  // Latency (cycles) for a step's data to traverse the module pipeline
  // (query controller -> loader -> burst engine -> updater -> sampler).
  uint32_t pipeline_depth_cycles = 24;

  hwsim::DramConfig dram = DefaultAcceleratorDram();

  uint64_t seed = 42;

  // Fault-injection schedule and recovery parameters (src/reliability/).
  // Disabled by default: the engines then consume no fault streams and
  // behave bit-identically to a build without the subsystem. The same
  // block configures link faults and board failures when this config is
  // used as the per-board configuration of a DistributedEngine.
  reliability::FaultConfig faults;

  // Records per-query latency in cycles (Fig. 15).
  bool collect_latency = false;

  // Optional observability sinks (src/obs/); not owned, may be null, and
  // must outlive the engine run. The metrics registry receives
  // per-instance counters (cache, burst, DRAM, per-stage cycles); the
  // trace recorder receives simulated-cycle pipeline events.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceRecorder* trace = nullptr;
  // Per-query span recorder: engines open a "walk" span per walker
  // attempt (trace id = ticket) carrying cycle-stage attribution attrs
  // and fault events; the service layer wraps those in query-lifecycle
  // spans. Same ownership rules as the other sinks.
  obs::SpanRecorder* spans = nullptr;
};

}  // namespace lightrw::core

#endif  // LIGHTRW_LIGHTRW_CONFIG_H_
