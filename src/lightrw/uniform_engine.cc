#include "lightrw/uniform_engine.h"

#include <algorithm>
#include <queue>
#include <utility>
#include <vector>

#include "common/check.h"
#include "hwsim/dram.h"
#include "lightrw/vertex_cache.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rng/rng.h"

namespace lightrw::core {

namespace {

using graph::VertexId;
using hwsim::Cycle;

// Trace track layout (tids within one instance's pid); the uniform
// engine has no sampler stage, so its lanes are a subset of the
// CycleEngine layout with the same meanings.
enum UniformTrack : uint32_t {
  kInfoTrack = 0,
  kFetchTrack = 1,
  kRetireTrack = 3,
  kDramTrack = 4,
};

// One uniform-walk instance on one DRAM channel.
class UniformInstance {
 public:
  UniformInstance(const graph::CsrGraph* graph,
                  const AcceleratorConfig& config, uint32_t instance_id,
                  uint64_t seed)
      : graph_(graph),
        config_(config),
        instance_id_(instance_id),
        trace_(config.trace),
        channel_(config.dram),
        cache_(MakeVertexCache(config.cache_kind, config.cache_entries)),
        gen_(seed) {
    if (trace_ != nullptr) {
      trace_->NameProcess(instance_id_,
                          "uniform instance " + std::to_string(instance_id_));
      trace_->NameTrack(instance_id_, kInfoTrack, "info loader");
      trace_->NameTrack(instance_id_, kFetchTrack, "neighbor fetch");
      trace_->NameTrack(instance_id_, kRetireTrack, "retire");
      trace_->NameTrack(instance_id_, kDramTrack, "dram channel");
      channel_.AttachTrace(trace_, instance_id_, kDramTrack);
    }
  }

  Cycle Run(std::span<const apps::WalkQuery> queries,
            std::span<const size_t> global_indices,
            std::vector<std::vector<VertexId>>* finished,
            AccelRunStats* stats);

 private:
  enum class Phase { kInfo, kFetch };

  struct Slot {
    VertexId curr = 0;
    uint32_t step = 0;
    uint32_t remaining = 0;
    size_t query_seq = 0;
    Phase phase = Phase::kInfo;
    std::vector<VertexId> path;
  };

  bool tracing() const { return trace_ != nullptr && trace_->accepting(); }

  Cycle LookupInfo(Cycle t, VertexId v) {
    if (cache_ != nullptr && cache_->Probe(v)) {
      if (tracing()) {
        trace_->Instant("cache_hit", "cache", instance_id_, kInfoTrack, t);
      }
      return t + 1;
    }
    if (cache_ != nullptr && tracing()) {
      trace_->Instant("cache_miss", "cache", instance_id_, kInfoTrack, t);
    }
    const Cycle done = channel_.Access(t, 1);
    channel_.ReportUseful(graph::kBytesPerRowRecord);
    if (cache_ != nullptr) {
      cache_->Install(v, graph_->Degree(v));
    }
    return done;
  }

  void PublishMetrics(Cycle makespan, uint64_t queries, uint64_t steps);

  const graph::CsrGraph* graph_;
  const AcceleratorConfig& config_;
  const uint32_t instance_id_;
  obs::TraceRecorder* trace_;
  StageCycleStats stage_;
  hwsim::DramChannel channel_;
  std::unique_ptr<VertexCache> cache_;
  rng::Xoshiro256StarStar gen_;
};

Cycle UniformInstance::Run(std::span<const apps::WalkQuery> queries,
                           std::span<const size_t> global_indices,
                           std::vector<std::vector<VertexId>>* finished,
                           AccelRunStats* stats) {
  if (queries.empty()) {
    return 0;
  }
  const uint64_t queries_before = stats->queries;
  const uint64_t steps_before = stats->steps;
  const size_t num_slots =
      std::min<size_t>(std::max<uint32_t>(config_.inflight_queries, 1),
                       queries.size());
  std::vector<Slot> slots(num_slots);
  size_t next_query = 0;
  Cycle makespan = 0;

  using HeapItem = std::pair<Cycle, size_t>;
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;

  auto load = [&](size_t slot_index, Cycle at) {
    if (next_query >= queries.size()) {
      return;
    }
    Slot& slot = slots[slot_index];
    const apps::WalkQuery& q = queries[next_query];
    slot.query_seq = next_query++;
    slot.curr = q.start;
    slot.step = 0;
    slot.remaining = q.length;
    slot.phase = Phase::kInfo;
    slot.path.clear();
    slot.path.push_back(q.start);
    heap.emplace(at, slot_index);
  };

  auto retire = [&](size_t slot_index, Cycle at) {
    Slot& slot = slots[slot_index];
    if (finished != nullptr) {
      (*finished)[global_indices[slot.query_seq]] = std::move(slot.path);
    }
    if (tracing()) {
      trace_->Instant("query_retire", "query", instance_id_, kRetireTrack,
                      at);
    }
    ++stats->queries;
    makespan = std::max(makespan, at);
    load(slot_index, at);
  };

  for (size_t i = 0; i < num_slots; ++i) {
    load(i, 0);
  }

  while (!heap.empty()) {
    const auto [now, slot_index] = heap.top();
    heap.pop();
    Slot& slot = slots[slot_index];

    if (slot.phase == Phase::kInfo) {
      if (slot.step >= slot.remaining) {
        retire(slot_index, now);
        continue;
      }
      const Cycle t_info = LookupInfo(now, slot.curr);
      stage_.info_cycles += t_info - now;
      if (graph_->Degree(slot.curr) == 0) {
        retire(slot_index, t_info + config_.pipeline_depth_cycles);
        continue;
      }
      slot.phase = Phase::kFetch;
      heap.emplace(t_info, slot_index);
      continue;
    }

    // Phase::kFetch. Uniform draw: one random index, one 8-byte fetch.
    const uint32_t degree = graph_->Degree(slot.curr);
    const size_t pick = static_cast<size_t>(gen_.NextBounded(degree));
    const Cycle done = channel_.Access(now, 1);
    channel_.ReportUseful(graph::kBytesPerEdgeRecord);
    ++stats->edges_examined;  // only the sampled record is touched
    stage_.fetch_cycles += done - now;
    stage_.pipeline_cycles += config_.pipeline_depth_cycles;
    if (tracing()) {
      trace_->Complete("neighbor_fetch", "fetch", instance_id_, kFetchTrack,
                       now, done);
    }

    slot.curr = graph_->Neighbors(slot.curr)[pick];
    ++slot.step;
    ++stats->steps;
    slot.path.push_back(slot.curr);
    slot.phase = Phase::kInfo;
    const Cycle step_end = done + config_.pipeline_depth_cycles;
    if (slot.step >= slot.remaining) {
      retire(slot_index, step_end);
    } else {
      heap.emplace(step_end, slot_index);
    }
  }

  stats->dram.requests += channel_.stats().requests;
  stats->dram.beats += channel_.stats().beats;
  stats->dram.bytes += channel_.stats().bytes;
  stats->dram.busy_cycles += channel_.stats().busy_cycles;
  stats->dram.useful_bytes += channel_.stats().useful_bytes;
  if (cache_ != nullptr) {
    stats->cache.hits += cache_->stats().hits;
    stats->cache.misses += cache_->stats().misses;
  }
  stats->stage.info_cycles += stage_.info_cycles;
  stats->stage.fetch_cycles += stage_.fetch_cycles;
  stats->stage.pipeline_cycles += stage_.pipeline_cycles;
  PublishMetrics(makespan, stats->queries - queries_before,
                 stats->steps - steps_before);
  return makespan;
}

void UniformInstance::PublishMetrics(Cycle makespan, uint64_t queries,
                                     uint64_t steps) {
  obs::MetricsRegistry* metrics = config_.metrics;
  if (metrics == nullptr) {
    return;
  }
  const obs::Labels instance = {{"instance", std::to_string(instance_id_)}};
  metrics->GetCounter("accel.instance.queries", instance)->Increment(queries);
  metrics->GetCounter("accel.instance.steps", instance)->Increment(steps);
  metrics->GetGauge("accel.instance.cycles", instance)
      ->Set(static_cast<double>(makespan));
  if (cache_ != nullptr) {
    metrics->GetCounter("accel.cache.hits", instance)
        ->Increment(cache_->stats().hits);
    metrics->GetCounter("accel.cache.misses", instance)
        ->Increment(cache_->stats().misses);
  }
  metrics->GetCounter("accel.dram.requests", instance)
      ->Increment(channel_.stats().requests);
  metrics->GetCounter("accel.dram.bytes", instance)
      ->Increment(channel_.stats().bytes);
  metrics->GetCounter("accel.dram.busy_cycles", instance)
      ->Increment(channel_.stats().busy_cycles);
  const struct {
    const char* stage;
    uint64_t cycles;
  } stages[] = {{"info", stage_.info_cycles},
                {"fetch", stage_.fetch_cycles},
                {"pipeline", stage_.pipeline_cycles}};
  for (const auto& [stage, cycles] : stages) {
    metrics
        ->GetCounter("accel.stage.cycles",
                     {{"instance", std::to_string(instance_id_)},
                      {"stage", stage}})
        ->Increment(cycles);
  }
}

}  // namespace

UniformCycleEngine::UniformCycleEngine(const graph::CsrGraph* graph,
                                       const AcceleratorConfig& config)
    : graph_(graph), config_(config) {
  LIGHTRW_CHECK(graph != nullptr);
  LIGHTRW_CHECK(config.num_instances >= 1);
}

AccelRunStats UniformCycleEngine::Run(
    std::span<const apps::WalkQuery> queries,
    baseline::WalkOutput* output) {
  AccelRunStats stats;
  const uint32_t n = config_.num_instances;
  std::vector<std::vector<apps::WalkQuery>> shares(n);
  std::vector<std::vector<size_t>> share_indices(n);
  for (size_t i = 0; i < queries.size(); ++i) {
    shares[i % n].push_back(queries[i]);
    share_indices[i % n].push_back(i);
  }
  std::vector<std::vector<VertexId>> finished;
  if (output != nullptr) {
    finished.resize(queries.size());
  }
  Cycle makespan = 0;
  for (uint32_t i = 0; i < n; ++i) {
    UniformInstance instance(graph_, config_, i,
                             config_.seed + 0x7001ULL * (i + 1));
    makespan = std::max(
        makespan, instance.Run(shares[i], share_indices[i],
                               output != nullptr ? &finished : nullptr,
                               &stats));
  }
  stats.cycles = makespan;
  stats.seconds = static_cast<double>(makespan) / config_.dram.clock_hz;
  if (output != nullptr) {
    for (auto& path : finished) {
      output->vertices.insert(output->vertices.end(), path.begin(),
                              path.end());
      output->offsets.push_back(
          static_cast<uint32_t>(output->vertices.size()));
    }
  }
  return stats;
}

}  // namespace lightrw::core
