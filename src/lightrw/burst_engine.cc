#include "lightrw/burst_engine.h"

#include <algorithm>

#include "common/bits.h"
#include "common/check.h"

namespace lightrw::core {

BurstPlan PlanBursts(uint64_t bytes, const BurstStrategy& strategy,
                     uint32_t bus_bytes) {
  LIGHTRW_CHECK(strategy.short_beats >= 1);
  BurstPlan plan;
  if (bytes == 0) {
    return plan;
  }
  const uint64_t s2 = static_cast<uint64_t>(strategy.short_beats) * bus_bytes;
  if (strategy.long_beats == 0) {
    plan.short_bursts = static_cast<uint32_t>(CeilDiv(bytes, s2));
    plan.loaded_bytes = static_cast<uint64_t>(plan.short_bursts) * s2;
    return plan;
  }
  const uint64_t s1 = static_cast<uint64_t>(strategy.long_beats) * bus_bytes;
  plan.long_bursts = static_cast<uint32_t>(bytes / s1);
  const uint64_t remainder = bytes - plan.long_bursts * s1;
  plan.short_bursts = static_cast<uint32_t>(CeilDiv(remainder, s2));
  plan.loaded_bytes = plan.long_bursts * s1 +
                      static_cast<uint64_t>(plan.short_bursts) * s2;
  return plan;
}

DynamicBurstEngine::DynamicBurstEngine(hwsim::DramChannel* channel,
                                       const BurstStrategy& strategy)
    : channel_(channel), strategy_(strategy) {
  LIGHTRW_CHECK(channel != nullptr);
}

hwsim::Cycle DynamicBurstEngine::Fetch(hwsim::Cycle ready, uint64_t bytes) {
  if (bytes == 0) {
    return ready;
  }
  const uint32_t bus = channel_->config().bus_bytes;
  const BurstPlan plan = PlanBursts(bytes, strategy_, bus);

  ++stats_.requests;
  stats_.long_bursts += plan.long_bursts;
  stats_.short_bursts += plan.short_bursts;
  stats_.requested_bytes += bytes;
  stats_.loaded_bytes += plan.loaded_bytes;

  // The long and short pipelines issue independently through the memory
  // crossbar; the channel model serializes their occupancy. The step
  // completes when the slowest burst has delivered (Intra Burst Merge).
  hwsim::Cycle done = ready;
  for (uint32_t i = 0; i < plan.long_bursts; ++i) {
    done = std::max(done, channel_->Access(ready, strategy_.long_beats));
  }
  for (uint32_t i = 0; i < plan.short_bursts; ++i) {
    done = std::max(done, channel_->Access(ready, strategy_.short_beats));
  }
  channel_->ReportUseful(bytes);
  return done;
}

}  // namespace lightrw::core
