#include "lightrw/step_sampler.h"

#include <algorithm>

#include "sampling/sampler.h"

namespace lightrw::core {

StepSampler::StepSampler(size_t parallelism, rng::ThunderingRng* rng)
    : pwrs_(parallelism, rng), batch_(parallelism) {}

VertexId StepSampler::SampleNext(const CsrGraph& graph, const WalkApp& app,
                                 const WalkState& state) {
  const uint32_t degree = graph.Degree(state.curr);
  if (degree == 0) {
    return graph::kInvalidVertex;
  }
  const auto neighbors = graph.Neighbors(state.curr);
  const auto static_weights = graph.NeighborWeights(state.curr);
  const auto relations = graph.NeighborRelations(state.curr);
  const size_t k = batch_.size();

  pwrs_.Reset();
  for (uint32_t offset = 0; offset < degree; offset += k) {
    const uint32_t n =
        std::min<uint32_t>(static_cast<uint32_t>(k), degree - offset);
    for (uint32_t j = 0; j < n; ++j) {
      batch_[j] = app.DynamicWeight(graph, state, neighbors[offset + j],
                                    static_weights[offset + j],
                                    relations[offset + j]);
    }
    pwrs_.OfferBatch({batch_.data(), n}, offset);
  }
  const size_t picked = pwrs_.selected();
  return picked == sampling::kNoSample ? graph::kInvalidVertex
                                       : neighbors[picked];
}

}  // namespace lightrw::core
