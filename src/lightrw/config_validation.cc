#include "lightrw/config_validation.h"

#include <string>

#include "common/bits.h"
#include "common/sim_thread_pool.h"
#include "hwsim/validation.h"
#include "reliability/fault_injector.h"

namespace lightrw::core {

Status ValidateConfig(const AcceleratorConfig& config,
                      bool needs_prev_neighbors,
                      const DeviceResources& device) {
  if (config.sampler_parallelism == 0 ||
      !IsPowerOfTwo(config.sampler_parallelism)) {
    return InvalidArgumentError(
        "sampler_parallelism must be a nonzero power of two (prefix-sum "
        "and comparator trees are binary)");
  }
  if (config.sampler_parallelism > 64) {
    return InvalidArgumentError(
        "sampler_parallelism above 64 exceeds ThundeRiNG's validated "
        "stream count");
  }
  if (config.cache_kind != CacheKind::kNone &&
      (config.cache_entries == 0 || !IsPowerOfTwo(config.cache_entries))) {
    return InvalidArgumentError(
        "cache_entries must be a nonzero power of two for direct set "
        "indexing");
  }
  if (config.burst.short_beats == 0) {
    return InvalidArgumentError("burst.short_beats must be >= 1");
  }
  if (config.burst.long_beats != 0 &&
      config.burst.long_beats <= config.burst.short_beats) {
    return InvalidArgumentError(
        "burst.long_beats must exceed short_beats (or be 0 to disable the "
        "long pipeline)");
  }
  if (config.num_instances == 0) {
    return InvalidArgumentError("num_instances must be >= 1");
  }
  if (config.num_instances > 4) {
    return InvalidArgumentError(
        "the modeled U250 platform has 4 DRAM channels; num_instances "
        "must be <= 4");
  }
  if (config.inflight_queries == 0) {
    return InvalidArgumentError("inflight_queries must be >= 1");
  }
  if (config.num_threads > SimThreadPool::kMaxThreads) {
    return InvalidArgumentError(
        "num_threads must be <= " +
        std::to_string(SimThreadPool::kMaxThreads) + " (0 = default)");
  }
  LIGHTRW_RETURN_IF_ERROR(hwsim::ValidateDramConfig(config.dram));
  LIGHTRW_RETURN_IF_ERROR(reliability::ValidateFaultConfig(config.faults));

  // Resource fit on the modeled device.
  ResourceModel model(device);
  const ResourceUsage usage =
      model.TotalUsage(config, needs_prev_neighbors);
  const auto check = [](uint64_t used, uint64_t avail, const char* what) {
    return used <= avail
               ? Status::Ok()
               : InternalError(std::string("modeled design does not fit: ") +
                               what + " " + std::to_string(used) + " > " +
                               std::to_string(avail));
  };
  LIGHTRW_RETURN_IF_ERROR(check(usage.luts, device.luts, "LUTs"));
  LIGHTRW_RETURN_IF_ERROR(check(usage.regs, device.regs, "REGs"));
  LIGHTRW_RETURN_IF_ERROR(check(usage.brams, device.brams, "BRAMs"));
  LIGHTRW_RETURN_IF_ERROR(check(usage.dsps, device.dsps, "DSPs"));
  return Status::Ok();
}

}  // namespace lightrw::core
