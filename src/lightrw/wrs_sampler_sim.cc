#include "lightrw/wrs_sampler_sim.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/bits.h"
#include "common/check.h"
#include "rng/rng.h"
#include "sampling/parallel_wrs.h"

namespace lightrw::core {

namespace {

// Bytes per weight-stream item (32-bit weights).
constexpr uint32_t kBytesPerItem = 4;

}  // namespace

WrsSamplerSim::WrsSamplerSim(uint32_t parallelism,
                             const hwsim::DramConfig& dram, uint64_t seed)
    : k_(parallelism), dram_(dram), seed_(seed) {
  LIGHTRW_CHECK(parallelism >= 1);
}

double WrsSamplerSim::MemoryItemsPerCycle() const {
  return static_cast<double>(dram_.bus_bytes) * dram_.efficiency /
         kBytesPerItem;
}

double WrsSamplerSim::TheoreticalItemsPerSecond() const {
  return static_cast<double>(k_) * dram_.clock_hz;
}

WrsSamplerSimResult WrsSamplerSim::RunStream(uint64_t items) {
  LIGHTRW_CHECK(items >= 1);
  WrsSamplerSimResult result;
  result.items = items;

  // Functional sampling over the generated weight stream.
  rng::ThunderingRng rng(k_, seed_);
  rng::Xoshiro256StarStar weight_gen(seed_ ^ 0xbeefULL);
  sampling::ParallelWrsSampler sampler(k_, &rng);
  std::vector<graph::Weight> batch(k_);
  sampler.Reset();
  for (uint64_t offset = 0; offset < items; offset += k_) {
    const uint32_t n =
        static_cast<uint32_t>(std::min<uint64_t>(k_, items - offset));
    for (uint32_t j = 0; j < n; ++j) {
      batch[j] = static_cast<graph::Weight>(1 + weight_gen.NextBounded(256));
    }
    sampler.OfferBatch({batch.data(), n}, offset);
  }
  result.selected = sampler.selected();

  // Timing: the stream is sequential, so the memory system delivers at
  // near-peak bandwidth; the sampler consumes k per cycle. Pipeline fill is
  // the DRAM access latency plus the log-depth prefix/compare/select tree.
  const double consume_cycles =
      static_cast<double>(CeilDiv(items, k_));
  const double supply_cycles =
      static_cast<double>(items) / MemoryItemsPerCycle();
  const double fill_cycles =
      dram_.access_latency_cycles + CeilLog2(k_ + 1) + 8;
  const double cycles =
      fill_cycles + std::max(consume_cycles, supply_cycles);
  result.cycles = static_cast<uint64_t>(std::llround(cycles));
  result.seconds = cycles / dram_.clock_hz;
  result.items_per_second = static_cast<double>(items) / result.seconds;
  result.bytes_per_second = result.items_per_second * kBytesPerItem;
  return result;
}

}  // namespace lightrw::core
