// Cycle-approximate LightRW performance model.
//
// This is the stand-in for the Alveo U250 hardware: a deterministic
// event-driven simulation of the accelerator of paper Fig. 3. Each
// instance owns one DRAM channel (hwsim::DramChannel), a row-index cache
// (vertex_cache.h), a dynamic burst engine (burst_engine.h), and a k-lane
// WRS sampling pipeline. Queries are kept in flight `inflight_queries` at
// a time so DRAM latency of one walk overlaps with the compute of others,
// and every DRAM byte, cache probe, and burst command is counted.
//
// The engine simultaneously produces real walks (same sampling semantics
// as FunctionalEngine) and the simulated kernel time in cycles; simulated
// seconds = cycles / clock (300 MHz by default).

#ifndef LIGHTRW_LIGHTRW_CYCLE_ENGINE_H_
#define LIGHTRW_LIGHTRW_CYCLE_ENGINE_H_

#include <cstdint>
#include <span>

#include "apps/walk_app.h"
#include "baseline/engine.h"
#include "common/histogram.h"
#include "graph/csr.h"
#include "hwsim/dram.h"
#include "lightrw/burst_engine.h"
#include "lightrw/config.h"
#include "lightrw/vertex_cache.h"

namespace lightrw::core {

using apps::WalkQuery;
using baseline::WalkOutput;

// Cycle attribution for one engine run: where each in-flight step's
// simulated time went, summed over all slots and instances. These are
// slot-cycles (many walks are in flight at once), so the total can far
// exceed the makespan; the *shares* say which stage dominates.
struct StageCycleStats {
  uint64_t info_cycles = 0;      // row-index lookup: cache probe + DRAM
  uint64_t fetch_cycles = 0;     // adjacency stream through the burst engine
  uint64_t sampler_cycles = 0;   // sampling tail after the last data beat
  uint64_t pipeline_cycles = 0;  // fixed module-pipeline traversal latency

  uint64_t Total() const {
    return info_cycles + fetch_cycles + sampler_cycles + pipeline_cycles;
  }
  double Share(uint64_t part) const {
    const uint64_t total = Total();
    return total == 0 ? 0.0
                      : static_cast<double>(part) / static_cast<double>(total);
  }
};

struct AccelRunStats {
  // Simulated kernel makespan: max over instances, in kernel cycles and
  // seconds. Excludes PCIe transfer (modeled separately, Table 4).
  uint64_t cycles = 0;
  double seconds = 0.0;

  uint64_t queries = 0;
  uint64_t steps = 0;
  uint64_t edges_examined = 0;

  hwsim::DramStats dram;   // summed over instances
  CacheStats cache;        // summed over instances
  BurstStats burst;        // summed over instances
  StageCycleStats stage;   // summed over instances
  uint64_t prev_refetches = 0;  // Node2Vec buffer-overflow re-fetches

  // Injected-fault and recovery accounting (src/reliability/), summed
  // over instances. All zero when config.faults is disabled. A walk hit
  // by an uncorrectable DRAM error past its retry budget retires
  // truncated and is counted in reliability.walks_failed.
  reliability::ReliabilityStats reliability;

  // Per-query latency in cycles (populated if config.collect_latency).
  SampleStats query_latency_cycles;

  double StepsPerSecond() const {
    return seconds > 0.0 ? static_cast<double>(steps) / seconds : 0.0;
  }
  double EffectiveBandwidth() const {
    return seconds > 0.0 ? static_cast<double>(dram.bytes) / seconds : 0.0;
  }
};

// The simulated accelerator. Queries are distributed round-robin over the
// configured instances; each instance is simulated independently (private
// channel, cache, graph copy) and the makespan is the slowest instance.
class CycleEngine {
 public:
  // `graph` and `app` must outlive the engine.
  CycleEngine(const graph::CsrGraph* graph, const apps::WalkApp* app,
              const AcceleratorConfig& config);

  const AcceleratorConfig& config() const { return config_; }

  // Simulates all queries. If `output` is non-null, paths are appended in
  // per-instance retirement order (not input order).
  AccelRunStats Run(std::span<const WalkQuery> queries,
                    WalkOutput* output = nullptr);

 private:
  const graph::CsrGraph* graph_;
  const apps::WalkApp* app_;
  AcceleratorConfig config_;
};

}  // namespace lightrw::core

#endif  // LIGHTRW_LIGHTRW_CYCLE_ENGINE_H_
