// Cycle-accurate simulation of the WRS Sampler microarchitecture
// (paper Fig. 4), with the hardware modules — Weight Accumulator,
// Selector (PRNG + Eq. 8 comparators + max-index tree), and Output —
// modeled as clocked units connected by bounded FIFOs with backpressure.
//
// This is the detailed counterpart of the analytic WrsSamplerSim
// (wrs_sampler_sim.h): it produces the exact same sampling decisions as
// sampling::ParallelWrsSampler (same RNG stream discipline) while
// advancing a cycle-by-cycle clock, so tests can cross-validate the
// analytic throughput model against a structural simulation.

#ifndef LIGHTRW_LIGHTRW_WRS_PIPELINE_H_
#define LIGHTRW_LIGHTRW_WRS_PIPELINE_H_

#include <cstdint>
#include <vector>

#include "graph/types.h"
#include "hwsim/dram.h"
#include "hwsim/fifo.h"
#include "rng/rng.h"

namespace lightrw::core {

struct WrsPipelineConfig {
  // Lanes (items consumed per cycle when data is available).
  uint32_t parallelism = 16;
  // Items the memory feed can deliver per cycle, in 1/1024ths (the weight
  // stream arrives from DRAM at line rate; 64 B/cycle of 4 B items at
  // 91.5% efficiency = 14.64 items/cycle = 14993/1024).
  uint32_t feed_items_per_kcycle = 14993;
  // Depth of the inter-stage FIFOs (HLS stream depth).
  uint32_t fifo_depth = 4;
  uint64_t seed = 1;
};

struct WrsPipelineResult {
  uint64_t items = 0;
  uint64_t cycles = 0;
  // Index of the sampled item (kNoSample if all weights were zero).
  size_t selected = 0;
  // Pipeline occupancy statistics.
  size_t accumulator_max_occupancy = 0;
  size_t selector_max_occupancy = 0;
};

// Runs the full weight stream through the clocked pipeline and reports the
// selected index plus the cycle count.
class WrsPipelineSim {
 public:
  explicit WrsPipelineSim(const WrsPipelineConfig& config);

  WrsPipelineResult Run(std::vector<graph::Weight> weights);

 private:
  // One batch travelling between stages.
  struct Batch {
    std::vector<graph::Weight> weights;   // lane weights (may be short)
    std::vector<uint64_t> inclusive_sum;  // w_sum^i + W_ps[j] per lane
    size_t base_index = 0;
  };

  WrsPipelineConfig config_;
};

}  // namespace lightrw::core

#endif  // LIGHTRW_LIGHTRW_WRS_PIPELINE_H_
