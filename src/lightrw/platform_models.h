// Platform-level models: power (Table 3), PCIe transfer (Table 4), and
// FPGA resource utilization (Table 5).
//
// None of these can be measured without the physical U250 board, so they
// are analytic models calibrated to the figures the paper reports; the
// benchmarks combine them with measured/simulated runtimes. Every constant
// here is a documented substitution (see DESIGN.md).

#ifndef LIGHTRW_LIGHTRW_PLATFORM_MODELS_H_
#define LIGHTRW_LIGHTRW_PLATFORM_MODELS_H_

#include <cstdint>

#include "graph/csr.h"
#include "lightrw/config.h"

namespace lightrw::core {

// ---------------------------------------------------------------------------
// Power (paper Table 3).
// The paper measures FPGA board power with xbutil (39-45 W) and CPU package
// power with CPU Energy Meter (103-126 W). The model reproduces those
// ranges: a static floor plus a dynamic term that grows with the graph's
// memory footprint (larger graphs toggle more DRAM and interface logic).
struct PowerModel {
  double fpga_static_watts = 36.0;
  double fpga_dynamic_watts_per_instance = 1.1;
  double cpu_idle_watts = 95.0;
  double cpu_dynamic_span_watts = 31.0;  // added across the graph-size range

  // Board power while running a GDRW with `num_instances` instances on a
  // graph with `num_edges` edges. `memory_heavy` marks apps that keep the
  // row-index channel busier (Node2Vec), which lowers toggling in the
  // burst pipelines slightly, matching the paper's lower Node2Vec power.
  double FpgaWatts(uint32_t num_instances, uint64_t num_edges,
                   bool memory_heavy) const;

  // CPU package power under a GDRW load on a graph with `num_edges` edges.
  double CpuWatts(uint64_t num_edges, bool memory_heavy) const;
};

// ---------------------------------------------------------------------------
// PCIe (paper Table 4 and §6.1.5).
// Host -> FPGA DMA of the CSR image (one private copy per instance) and the
// query list, plus FPGA -> host DMA of the result paths.
struct PcieModel {
  // Effective Gen3 x16 DMA bandwidth (theoretical 15.75 GB/s; sustained
  // large-transfer rates on XDMA platforms are ~12 GB/s).
  double bandwidth_bytes_per_sec = 12e9;
  double per_transfer_latency_sec = 50e-6;

  double TransferSeconds(uint64_t bytes) const {
    return per_transfer_latency_sec +
           static_cast<double>(bytes) / bandwidth_bytes_per_sec;
  }

  // Bytes moved for a full run: graph image per instance + queries in,
  // result paths out.
  uint64_t RunBytes(const graph::CsrGraph& graph, uint32_t num_instances,
                    uint64_t num_queries, uint32_t query_length) const;
};

// ---------------------------------------------------------------------------
// FPGA resources (paper Table 5).
struct ResourceUsage {
  uint64_t luts = 0;
  uint64_t regs = 0;
  uint64_t brams = 0;  // 36 Kb blocks (URAMs converted at 8 BRAM each)
  uint64_t dsps = 0;

  ResourceUsage& operator+=(const ResourceUsage& other);
  ResourceUsage operator*(uint64_t n) const;
};

// Device totals of the Alveo U250 (paper §6.1.1).
struct DeviceResources {
  uint64_t luts = 1341000;
  uint64_t regs = 2682000;
  uint64_t brams = 2000;
  uint64_t dsps = 11508;
};

// Per-module LUT/REG/BRAM/DSP estimates, scaled by the accelerator
// configuration (sampler lanes, cache depth, buffer sizes). Calibrated so
// the default MetaPath and Node2Vec configurations land near the paper's
// utilization; documented as modeled values.
class ResourceModel {
 public:
  explicit ResourceModel(const DeviceResources& device = DeviceResources{})
      : device_(device) {}

  // Static platform shell (DMA, memory controllers, clocking).
  ResourceUsage Shell() const;

  // One LightRW instance for an app; `needs_prev_neighbors` marks
  // Node2Vec-style apps with the on-chip previous-adjacency buffer.
  ResourceUsage InstanceUsage(const AcceleratorConfig& config,
                              bool needs_prev_neighbors) const;

  // Full design: shell + configured number of instances.
  ResourceUsage TotalUsage(const AcceleratorConfig& config,
                           bool needs_prev_neighbors) const;

  double LutPercent(const ResourceUsage& u) const {
    return 100.0 * static_cast<double>(u.luts) / device_.luts;
  }
  double RegPercent(const ResourceUsage& u) const {
    return 100.0 * static_cast<double>(u.regs) / device_.regs;
  }
  double BramPercent(const ResourceUsage& u) const {
    return 100.0 * static_cast<double>(u.brams) / device_.brams;
  }
  double DspPercent(const ResourceUsage& u) const {
    return 100.0 * static_cast<double>(u.dsps) / device_.dsps;
  }

  const DeviceResources& device() const { return device_; }

 private:
  DeviceResources device_;
};

}  // namespace lightrw::core

#endif  // LIGHTRW_LIGHTRW_PLATFORM_MODELS_H_
