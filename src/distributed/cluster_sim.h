// Event-driven execution core of the distributed LightRW simulation.
//
// ClusterSim owns the per-board datapaths (DRAM channel, degree-aware
// cache, dynamic burst engine, k-lane WRS timing, egress link, fault
// streams) and the global discrete-event loop that interleaves walkers
// across boards in simulated-cycle order. Two drivers sit on top of it:
//
//   DistributedEngine::Run  the closed batch workload (load a query set,
//                           keep every walker slot busy until done)
//   service::WalkService    the open-loop front end (admission queues,
//                           deadlines, retries, degradation)
//
// The driver injects walkers with Launch() and receives them back through
// the retire callback; ScheduleWake() lets it interleave its own control
// events (arrivals, retry timers) with walker events on the same
// simulated clock. Drain() is resumable: callbacks may launch further
// work, and more may be injected between drains.
//
// Determinism: walk sampling and geometric stopping draw from per-walker
// RNG streams seeded by (config seed, ticket), so a walker's path is a
// pure function of its ticket — independent of dispatch order, board
// placement, and the timing interleaving. That is what lets the service
// layer retry a bounced query on another board (or replay it after a
// board death) and obtain the same walk, and what makes a low-load
// service run produce bit-identical walks to a batch run.

#ifndef LIGHTRW_DISTRIBUTED_CLUSTER_SIM_H_
#define LIGHTRW_DISTRIBUTED_CLUSTER_SIM_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <tuple>
#include <vector>

#include "apps/walk_app.h"
#include "common/status.h"
#include "distributed/partition.h"
#include "graph/csr.h"
#include "hwsim/link.h"
#include "lightrw/burst_engine.h"
#include "lightrw/config.h"
#include "lightrw/step_sampler.h"
#include "lightrw/vertex_cache.h"
#include "reliability/fault_injector.h"
#include "reliability/membership.h"
#include "rng/rng.h"

namespace lightrw::distributed {

struct DistributedConfig {
  // Per-board accelerator configuration. num_instances applies per board.
  core::AcceleratorConfig board;
  hwsim::LinkConfig link;
  // Bytes of one walker-migration message (query id, current/previous
  // vertex, step counter, residual length).
  uint32_t walker_message_bytes = 32;
  // Walkers resident per board before queueing.
  uint32_t inflight_walkers_per_board = 64;
  // Replicate the whole graph on every board (the single-board LightRW
  // multi-instance design): walkers never migrate, but each board must
  // hold the full CSR image. Partitioned mode (false) scales to graphs
  // larger than one board's DRAM at the cost of network migrations.
  bool replicate_graph = false;

  // Hot spares: idle boards that activate on a permanent board death,
  // rebuild the dead board's partition share, and take over its
  // identity (migrations and launches aimed at the dead board route to
  // the rebuilt spare). Spares are only instantiated when the fault
  // schedule contains a board death, so fault-free runs are unchanged.
  uint32_t num_spare_boards = 0;
  // Partition-rebuild bandwidth in bytes per simulated cycle: the rate
  // at which an activated spare re-materializes the dead board's share
  // (host-PCIe staging ~32 B/cycle at 300 MHz ~ 9.6 GB/s; set to the
  // peer-link bandwidth to model peer-to-peer rebuild instead). The
  // rebuild takes ceil(share_bytes / rebuild_bytes_per_cycle) cycles on
  // top of the failure-detection latency.
  double rebuild_bytes_per_cycle = 32.0;

  // Host worker threads for drivers that decompose the cluster into
  // independent board shards (DistributedEngine in replicated mode
  // without faults, WalkService admission shards). The decomposition is
  // fixed by the configuration, never by the thread count, so results
  // are bit-identical for every value. 0 = SimThreadPool default.
  uint32_t num_threads = 0;

  // Global id of this sim's board 0. Sharded drivers simulate a slice of
  // a larger cluster per ClusterSim; the offset keeps fault-stream
  // seeds, trace pids, and metric labels aligned with the board's global
  // identity so a sharded run reports exactly like an unsharded one.
  BoardId first_board = 0;

  // Fault injection (DRAM ECC, link loss, board failure) and the
  // checkpoint/failover protocol are configured through `board.faults`
  // (reliability::FaultConfig), shared with the per-board accelerator
  // datapath so one schedule covers the whole stack.
};

struct DistributedRunStats {
  uint64_t cycles = 0;   // makespan over all boards
  double seconds = 0.0;
  // Modeled DRAM bytes each board must hold (full image when replicated,
  // the largest partition share otherwise).
  uint64_t per_board_graph_bytes = 0;
  uint64_t queries = 0;
  uint64_t steps = 0;
  uint64_t migrations = 0;  // walker hops between boards
  double MigrationRatio() const {
    return steps == 0 ? 0.0
                      : static_cast<double>(migrations) /
                            static_cast<double>(steps);
  }
  double StepsPerSecond() const {
    return seconds > 0.0 ? static_cast<double>(steps) / seconds : 0.0;
  }
  // Summed over boards.
  hwsim::DramStats dram;
  hwsim::LinkStats network;
  // Faults injected, retries, retransmissions, checkpoints, and
  // recovered/lost walkers, summed over boards plus the failover logic.
  reliability::ReliabilityStats reliability;
  // Cluster membership log: every board state transition (death, spare
  // activation, rebuild completion) in epoch order. Empty when no board
  // death is scheduled. See reliability/membership.h for the invariants
  // (CheckMembershipLog) tests assert on.
  std::vector<reliability::MembershipTransition> membership;

  // Folds a board shard's run into this total: counters sum, the
  // makespan and per-board image size max. Callers recompute `seconds`
  // from the merged cycle count. Shards must be folded in a fixed order
  // so merged results are independent of execution interleaving.
  void Accumulate(const DistributedRunStats& part);
};

// Per-attempt execution options — the service layer's degradation knobs.
// The defaults execute the query exactly as requested.
struct WalkerOptions {
  // Caps the walk at this many steps (0 = the query's requested length).
  uint32_t max_steps = 0;
  // Degrades weighted (PWRS) stepping to a uniform neighbor choice: the
  // sampler consumes one cycle instead of ceil(degree / k), and Node2Vec
  // walks skip the previous-vertex adjacency fetch. Best-effort quality
  // under overload at a fraction of the per-step cost.
  bool uniform_step = false;
  // Parent span id for the attempt's "walk" span (0 = trace root). Set
  // by the service layer so per-attempt execution spans nest under the
  // query's root span; ignored unless config.board.spans is set.
  uint64_t parent_span = 0;
};

// Terminal state of one walker attempt, handed to the retire callback.
struct WalkerEnd {
  uint64_t ticket = 0;      // caller's id from Launch()
  hwsim::Cycle at = 0;      // retire cycle
  uint32_t steps = 0;       // steps actually taken
  BoardId board = 0;        // board charged for the walker (Launch board)
  // Surfaced failures (surface_failures mode only; the batch driver
  // recovers internally from checkpoints instead).
  bool board_lost = false;  // board died / migration undeliverable
  bool data_fault = false;  // uncorrectable ECC truncated the walk
  bool Failed() const { return board_lost || data_fault; }
};

// Non-OK when the configured fault schedule cannot be satisfied on a
// cluster of `num_boards` boards (a death targets a board outside the
// partition-owner + spare id range, or the schedule kills every
// partition owner, leaving no survivor to recover onto — spares do not
// relax that bound because a death can land before any rebuild
// finishes).
Status CheckFailoverSatisfiable(const DistributedConfig& config,
                                BoardId num_boards);

class ClusterSim {
 public:
  using RetireFn = std::function<void(const WalkerEnd& end,
                                      std::vector<graph::VertexId>&& path)>;
  using WakeFn = std::function<void(uint64_t tag, hwsim::Cycle at)>;

  // All referenced objects must outlive the sim. `max_walkers` bounds the
  // number of concurrently in-flight walkers (Launch checks it); the
  // configuration must already have passed ValidateDistributedConfig and
  // CheckFailoverSatisfiable.
  ClusterSim(const graph::CsrGraph* graph, const apps::WalkApp* app,
             const Partition* partition, const DistributedConfig& config,
             uint32_t max_walkers);
  ~ClusterSim();
  ClusterSim(const ClusterSim&) = delete;
  ClusterSim& operator=(const ClusterSim&) = delete;

  void set_on_retire(RetireFn fn) { on_retire_ = std::move(fn); }
  void set_on_wake(WakeFn fn) { on_wake_ = std::move(fn); }
  // Service mode: a walker caught by a board death, an undeliverable
  // migration, or an uncorrectable data fault retires immediately with
  // the failure surfaced in WalkerEnd (the caller owns the retry/shed
  // decision) instead of being recovered internally from its checkpoint.
  void set_surface_failures(bool v) { surface_failures_ = v; }

  BoardId num_boards() const;
  // Physical boards instantiated: the partition owners plus hot spares
  // (spares exist only when the fault schedule contains a board death).
  BoardId total_boards() const;
  // Global identity of local board `b` (see DistributedConfig::
  // first_board): what fault seeds, trace pids, and metric labels use.
  BoardId GlobalBoard(BoardId b) const {
    return static_cast<BoardId>(config_.first_board + b);
  }
  // Membership state of board `b` as of the last processed event.
  // Original boards start alive, spares start spare; the only exit from
  // alive is a scheduled death (see reliability/membership.h).
  reliability::BoardState StateOf(BoardId b) const { return state_[b]; }
  bool IsAlive(BoardId b) const {
    return state_[b] == reliability::BoardState::kAlive;
  }
  // Board currently serving partition share `v`'s owner: the owner
  // itself while alive, the rebuilt spare after an ownership transfer,
  // or a deterministic survivor while the share has no serving board
  // (mid-rebuild or spare pool exhausted).
  BoardId LiveOwnerOf(graph::VertexId v) const;
  // Deterministic choice among alive serving boards for re-routing
  // dead-board load. At least one always exists (CheckFailoverSatisfiable
  // bounds the death schedule).
  BoardId SurvivorOf(uint64_t salt) const;
  // Monotone cluster membership epoch: bumps by exactly one on every
  // board state transition. 0 until the first transition.
  uint64_t membership_epoch() const { return epoch_; }
  const std::vector<reliability::MembershipTransition>& membership() const {
    return transitions_;
  }

  // Walkers currently charged against board `b` (counted on the Launch
  // board for the walker's whole life, even as it migrates): the queue
  // occupancy signal the service's admission control keys on.
  uint32_t InflightOn(BoardId b) const;
  uint32_t free_slots() const;

  // Injects a walker executing `query` starting on `board` at cycle
  // `at`. Requires a free slot. The ticket seeds the walker's private
  // RNG streams and is echoed in WalkerEnd.
  void Launch(uint64_t ticket, const apps::WalkQuery& query, BoardId board,
              hwsim::Cycle at, const WalkerOptions& options = {});
  // Schedules an on_wake(tag, at) callback at cycle `at`.
  void ScheduleWake(uint64_t tag, hwsim::Cycle at);

  // Processes events in simulated-cycle order until none remain.
  // Callbacks may Launch new walkers and schedule further wakes;
  // resumable (more work may be injected afterwards and Drain() rerun).
  void Drain();

  hwsim::Cycle makespan() const { return makespan_; }
  uint64_t total_steps() const { return total_steps_; }

  // Sums per-board datapath stats (plus cluster-level recovery events)
  // into `stats`, fills cycles/seconds/per_board_graph_bytes, and
  // publishes per-board metrics. Call once, after the final Drain().
  void Finalize(DistributedRunStats* stats);

 private:
  struct Board;
  struct Walker;

  // Heap events: (cycle, kind, id) — kind 0 walker slot, kind 1 wake
  // tag, kind 2 membership (board death / rebuild completion). The
  // tuple order is the deterministic tie-break: membership events
  // process after same-cycle walker and wake events, so a board serves
  // every walker event already scheduled for its death cycle.
  using Event = std::tuple<hwsim::Cycle, int, uint64_t>;
  // Kind-2 event ids below the base are indices into deaths_; ids at or
  // above it encode `kRebuildEventBase + board` rebuild completions.
  static constexpr uint64_t kRebuildEventBase = 1ULL << 32;
  // Sentinel for "share has no serving board" / "board serves no share".
  static constexpr BoardId kNoBoard = static_cast<BoardId>(~0u);

  void Step(size_t slot, hwsim::Cycle now);
  void EndWalkSpan(Walker& w, hwsim::Cycle at);
  void Retire(size_t slot, hwsim::Cycle at);
  void FailWalker(size_t slot, hwsim::Cycle at, bool board_lost);
  void Recover(size_t slot, hwsim::Cycle at);
  void TakeCheckpoint(Walker& w, Board& board, hwsim::Cycle at);
  hwsim::Cycle LookupInfo(Board& board, hwsim::Cycle t, graph::VertexId v);
  // Membership machinery (see DESIGN.md "Membership, spares & partition
  // rebuild"). Transition() bumps the epoch and logs/traces the change;
  // the others drive the state machine off kind-2 events.
  void Transition(BoardId b, reliability::BoardState to, hwsim::Cycle at);
  void RebuildSurvivors();
  void ProcessDeath(size_t death_index, hwsim::Cycle now);
  void TryActivateSpare(BoardId share, hwsim::Cycle at);
  void CompleteRebuild(BoardId spare, hwsim::Cycle now);

  const graph::CsrGraph* graph_;
  const apps::WalkApp* app_;
  const Partition* partition_;
  DistributedConfig config_;
  bool surface_failures_ = false;

  std::vector<Board> boards_;
  std::vector<Walker> walkers_;
  std::vector<uint32_t> inflight_;  // per Launch board
  // Free walker slots, allocated lowest-index first for determinism.
  std::priority_queue<size_t, std::vector<size_t>, std::greater<>>
      free_slots_;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;

  RetireFn on_retire_;
  WakeFn on_wake_;

  // Effective death schedule (legacy fail_cycle folded in, sorted,
  // deduplicated per board); empty means fault-free membership.
  std::vector<reliability::BoardDeath> deaths_;
  bool checkpointing_ = false;
  uint64_t ckpt_interval_ = 0;
  // Membership: per-board state, share->serving-board and
  // board->share maps (shares are named by their original owner's local
  // id), the sorted alive serving boards SurvivorOf() draws from, and
  // the epoch-ordered transition log.
  std::vector<reliability::BoardState> state_;
  std::vector<BoardId> serving_;   // share -> board (kNoBoard = orphaned)
  std::vector<BoardId> share_of_;  // board -> share (kNoBoard = none)
  std::vector<BoardId> survivors_;
  uint64_t epoch_ = 0;
  std::vector<reliability::MembershipTransition> transitions_;
  // Rebuild cost model inputs: modeled bytes of each partition share
  // and, per board, the cycle its rebuild started (spares only).
  std::vector<uint64_t> share_bytes_;
  std::vector<hwsim::Cycle> rebuild_start_;
  // Recovery-side events (board failure, lost walkers) that belong to
  // the failover logic rather than any one board's datapath.
  reliability::ReliabilityStats recovery_rel_;

  hwsim::Cycle makespan_ = 0;
  uint64_t total_steps_ = 0;
  uint64_t total_migrations_ = 0;
};

}  // namespace lightrw::distributed

#endif  // LIGHTRW_DISTRIBUTED_CLUSTER_SIM_H_
