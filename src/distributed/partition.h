// Graph partitioning for the distributed LightRW simulation.
//
// Each board owns a subset of the vertices (and their adjacency lists);
// a walker stepping onto a remote vertex migrates over the network. The
// partitioner therefore controls the migration ratio, the dominant
// distributed cost (KnightKing's observation, echoed by the paper's
// future-work section).

#ifndef LIGHTRW_DISTRIBUTED_PARTITION_H_
#define LIGHTRW_DISTRIBUTED_PARTITION_H_

#include <cstdint>
#include <vector>

#include "graph/csr.h"

namespace lightrw::distributed {

using BoardId = uint16_t;

enum class PartitionStrategy {
  kHash,    // owner(v) = v mod boards: balanced, oblivious to structure
  kRange,   // contiguous vertex ranges with balanced edge counts
  kGreedy,  // descending-degree greedy: each vertex joins the board where
            // most of its already-placed neighbors live, subject to an
            // edge-balance cap
};

// Vertex -> board assignment.
class Partition {
 public:
  Partition(std::vector<BoardId> owner, BoardId num_boards);

  BoardId num_boards() const { return num_boards_; }
  BoardId OwnerOf(graph::VertexId v) const { return owner_[v]; }
  const std::vector<BoardId>& owners() const { return owner_; }

  // Edges per board (by source vertex ownership).
  std::vector<uint64_t> EdgeCounts(const graph::CsrGraph& graph) const;

  // Modeled DRAM bytes of each board's partition share: its adjacency
  // records plus an equal slice of the row-index array. This is what a
  // hot spare must re-materialize to take over a dead board's share,
  // and the max over boards is the per-board DRAM footprint.
  std::vector<uint64_t> ShareByteSizes(const graph::CsrGraph& graph) const;

  // Fraction of edges whose endpoints live on different boards — the
  // expected migration ratio of an unbiased walk.
  double CutRatio(const graph::CsrGraph& graph) const;

  // max(edges per board) / mean(edges per board); 1.0 is perfect balance.
  double EdgeImbalance(const graph::CsrGraph& graph) const;

 private:
  std::vector<BoardId> owner_;
  BoardId num_boards_;
};

// Builds a partition of `graph` over `num_boards` boards.
Partition MakePartition(const graph::CsrGraph& graph, BoardId num_boards,
                        PartitionStrategy strategy);

}  // namespace lightrw::distributed

#endif  // LIGHTRW_DISTRIBUTED_PARTITION_H_
