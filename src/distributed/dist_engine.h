// Distributed LightRW simulation — the paper's future-work deployment:
// multiple FPGA boards connected by a high-speed network, each running a
// LightRW accelerator over its graph partition. A walker executes each
// step on the board owning its current vertex; stepping onto a remote
// vertex ships the walker state over the owner's egress link.
//
// The per-board datapath reuses the single-board models (DRAM channel,
// degree-aware cache, dynamic burst engine, k-lane WRS timing); the
// network uses hwsim::NetworkLink. Walks are sampled functionally with
// the same semantics as the single-board engines.

#ifndef LIGHTRW_DISTRIBUTED_DIST_ENGINE_H_
#define LIGHTRW_DISTRIBUTED_DIST_ENGINE_H_

#include <cstdint>
#include <span>

#include "apps/walk_app.h"
#include "baseline/engine.h"
#include "common/status.h"
#include "distributed/partition.h"
#include "hwsim/link.h"
#include "lightrw/config.h"
#include "lightrw/cycle_engine.h"
#include "reliability/fault_injector.h"

namespace lightrw::distributed {

struct DistributedConfig {
  // Per-board accelerator configuration. num_instances applies per board.
  core::AcceleratorConfig board;
  hwsim::LinkConfig link;
  // Bytes of one walker-migration message (query id, current/previous
  // vertex, step counter, residual length).
  uint32_t walker_message_bytes = 32;
  // Walkers resident per board before queueing.
  uint32_t inflight_walkers_per_board = 64;
  // Replicate the whole graph on every board (the single-board LightRW
  // multi-instance design): walkers never migrate, but each board must
  // hold the full CSR image. Partitioned mode (false) scales to graphs
  // larger than one board's DRAM at the cost of network migrations.
  bool replicate_graph = false;

  // Fault injection (DRAM ECC, link loss, board failure) and the
  // checkpoint/failover protocol are configured through `board.faults`
  // (reliability::FaultConfig), shared with the per-board accelerator
  // datapath so one schedule covers the whole stack.
};

struct DistributedRunStats {
  uint64_t cycles = 0;   // makespan over all boards
  double seconds = 0.0;
  // Modeled DRAM bytes each board must hold (full image when replicated,
  // the largest partition share otherwise).
  uint64_t per_board_graph_bytes = 0;
  uint64_t queries = 0;
  uint64_t steps = 0;
  uint64_t migrations = 0;  // walker hops between boards
  double MigrationRatio() const {
    return steps == 0 ? 0.0
                      : static_cast<double>(migrations) /
                            static_cast<double>(steps);
  }
  double StepsPerSecond() const {
    return seconds > 0.0 ? static_cast<double>(steps) / seconds : 0.0;
  }
  // Summed over boards.
  hwsim::DramStats dram;
  hwsim::LinkStats network;
  // Faults injected, retries, retransmissions, checkpoints, and
  // recovered/lost walkers, summed over boards plus the failover logic.
  reliability::ReliabilityStats reliability;
};

// Simulates `partition.num_boards()` boards executing the query set.
class DistributedEngine {
 public:
  // All referenced objects must outlive the engine.
  DistributedEngine(const graph::CsrGraph* graph, const apps::WalkApp* app,
                    const Partition* partition,
                    const DistributedConfig& config);

  // Simulates the query set. Returns a Status (instead of aborting) for
  // invalid configurations — ValidateDistributedConfig runs first — or an
  // unsatisfiable fault schedule (e.g. killing a board of a single-board
  // cluster). A scheduled board failure does not fail the run: walkers
  // recover onto surviving boards from their checkpoints and the cost is
  // reported in stats.reliability.
  StatusOr<DistributedRunStats> Run(std::span<const apps::WalkQuery> queries,
                                    baseline::WalkOutput* output = nullptr);

 private:
  const graph::CsrGraph* graph_;
  const apps::WalkApp* app_;
  const Partition* partition_;
  DistributedConfig config_;
};

}  // namespace lightrw::distributed

#endif  // LIGHTRW_DISTRIBUTED_DIST_ENGINE_H_
