// Distributed LightRW simulation — the paper's future-work deployment:
// multiple FPGA boards connected by a high-speed network, each running a
// LightRW accelerator over its graph partition. A walker executes each
// step on the board owning its current vertex; stepping onto a remote
// vertex ships the walker state over the owner's egress link.
//
// DistributedEngine is the closed batch driver over ClusterSim (see
// cluster_sim.h for the event-driven core): it keeps every walker slot
// busy until the query set is exhausted. The open-loop, deadline-aware
// front end lives in service::WalkService.

#ifndef LIGHTRW_DISTRIBUTED_DIST_ENGINE_H_
#define LIGHTRW_DISTRIBUTED_DIST_ENGINE_H_

#include <span>

#include "apps/walk_app.h"
#include "baseline/engine.h"
#include "common/status.h"
#include "distributed/cluster_sim.h"
#include "distributed/partition.h"

namespace lightrw::distributed {

// Simulates `partition.num_boards()` boards executing the query set.
class DistributedEngine {
 public:
  // All referenced objects must outlive the engine.
  DistributedEngine(const graph::CsrGraph* graph, const apps::WalkApp* app,
                    const Partition* partition,
                    const DistributedConfig& config);

  // Simulates the query set. Returns a Status (instead of aborting) for
  // invalid configurations — ValidateDistributedConfig runs first — or an
  // unsatisfiable fault schedule (e.g. killing a board of a single-board
  // cluster). A scheduled board failure does not fail the run: walkers
  // recover onto surviving boards from their checkpoints and the cost is
  // reported in stats.reliability.
  StatusOr<DistributedRunStats> Run(std::span<const apps::WalkQuery> queries,
                                    baseline::WalkOutput* output = nullptr);

 private:
  const graph::CsrGraph* graph_;
  const apps::WalkApp* app_;
  const Partition* partition_;
  DistributedConfig config_;
};

}  // namespace lightrw::distributed

#endif  // LIGHTRW_DISTRIBUTED_DIST_ENGINE_H_
