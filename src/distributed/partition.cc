#include "distributed/partition.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "graph/stats.h"

namespace lightrw::distributed {

Partition::Partition(std::vector<BoardId> owner, BoardId num_boards)
    : owner_(std::move(owner)), num_boards_(num_boards) {
  LIGHTRW_CHECK(num_boards >= 1);
  for (const BoardId b : owner_) {
    LIGHTRW_CHECK(b < num_boards);
  }
}

std::vector<uint64_t> Partition::EdgeCounts(
    const graph::CsrGraph& graph) const {
  std::vector<uint64_t> counts(num_boards_, 0);
  for (graph::VertexId v = 0; v < graph.num_vertices(); ++v) {
    counts[owner_[v]] += graph.Degree(v);
  }
  return counts;
}

std::vector<uint64_t> Partition::ShareByteSizes(
    const graph::CsrGraph& graph) const {
  std::vector<uint64_t> bytes = EdgeCounts(graph);
  const uint64_t row_share =
      (graph.num_vertices() + 1) * graph::kBytesPerRowRecord / num_boards_;
  for (uint64_t& b : bytes) {
    b = b * graph::kBytesPerEdgeRecord + row_share;
  }
  return bytes;
}

double Partition::CutRatio(const graph::CsrGraph& graph) const {
  if (graph.num_edges() == 0) {
    return 0.0;
  }
  uint64_t cut = 0;
  for (graph::VertexId v = 0; v < graph.num_vertices(); ++v) {
    const BoardId owner = owner_[v];
    for (const graph::VertexId u : graph.Neighbors(v)) {
      if (owner_[u] != owner) {
        ++cut;
      }
    }
  }
  return static_cast<double>(cut) / static_cast<double>(graph.num_edges());
}

double Partition::EdgeImbalance(const graph::CsrGraph& graph) const {
  const auto counts = EdgeCounts(graph);
  const uint64_t max_count = *std::max_element(counts.begin(), counts.end());
  const double mean = static_cast<double>(graph.num_edges()) / num_boards_;
  return mean == 0.0 ? 1.0 : static_cast<double>(max_count) / mean;
}

namespace {

std::vector<BoardId> HashOwners(const graph::CsrGraph& graph,
                                BoardId num_boards) {
  std::vector<BoardId> owner(graph.num_vertices());
  for (graph::VertexId v = 0; v < graph.num_vertices(); ++v) {
    // Multiplicative hash so contiguous communities do not all collide
    // onto the same board.
    owner[v] = static_cast<BoardId>(
        (static_cast<uint64_t>(v) * 0x9e3779b97f4a7c15ULL >> 32) %
        num_boards);
  }
  return owner;
}

std::vector<BoardId> RangeOwners(const graph::CsrGraph& graph,
                                 BoardId num_boards) {
  // Contiguous ranges with (approximately) equal edge counts.
  std::vector<BoardId> owner(graph.num_vertices(), 0);
  const uint64_t target =
      graph.num_edges() / num_boards + 1;
  BoardId board = 0;
  uint64_t in_board = 0;
  for (graph::VertexId v = 0; v < graph.num_vertices(); ++v) {
    owner[v] = board;
    in_board += graph.Degree(v);
    if (in_board >= target && board + 1 < num_boards) {
      ++board;
      in_board = 0;
    }
  }
  return owner;
}

std::vector<BoardId> GreedyOwners(const graph::CsrGraph& graph,
                                  BoardId num_boards) {
  constexpr BoardId kUnassigned = 0xffff;
  std::vector<BoardId> owner(graph.num_vertices(), kUnassigned);
  std::vector<uint64_t> load(num_boards, 0);
  const uint64_t cap =
      (graph.num_edges() / num_boards) * 5 / 4 + 16;  // 1.25x balance cap

  // Place vertices in descending degree order: hubs first, then their
  // neighborhoods cluster around them.
  const auto order = graph::VerticesByDegreeDescending(graph);
  std::vector<uint64_t> affinity(num_boards);
  for (const graph::VertexId v : order) {
    std::fill(affinity.begin(), affinity.end(), 0);
    for (const graph::VertexId u : graph.Neighbors(v)) {
      if (owner[u] != kUnassigned) {
        ++affinity[owner[u]];
      }
    }
    BoardId best = 0;
    int64_t best_score = INT64_MIN;
    for (BoardId b = 0; b < num_boards; ++b) {
      if (load[b] + graph.Degree(v) > cap) {
        continue;
      }
      // Prefer boards holding neighbors, break ties toward light load.
      const int64_t score = static_cast<int64_t>(affinity[b]) * 1024 -
                            static_cast<int64_t>(load[b] * 1024 /
                                                 (cap + 1));
      if (score > best_score) {
        best_score = score;
        best = b;
      }
    }
    if (best_score == INT64_MIN) {
      // All boards at cap (rounding): take the lightest.
      best = static_cast<BoardId>(
          std::min_element(load.begin(), load.end()) - load.begin());
    }
    owner[v] = best;
    load[best] += graph.Degree(v);
  }
  return owner;
}

}  // namespace

Partition MakePartition(const graph::CsrGraph& graph, BoardId num_boards,
                        PartitionStrategy strategy) {
  LIGHTRW_CHECK(num_boards >= 1);
  switch (strategy) {
    case PartitionStrategy::kHash:
      return Partition(HashOwners(graph, num_boards), num_boards);
    case PartitionStrategy::kRange:
      return Partition(RangeOwners(graph, num_boards), num_boards);
    case PartitionStrategy::kGreedy:
      return Partition(GreedyOwners(graph, num_boards), num_boards);
  }
  return Partition(HashOwners(graph, num_boards), num_boards);
}

}  // namespace lightrw::distributed
