#include "distributed/cluster_sim.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "common/bits.h"
#include "common/check.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace lightrw::distributed {

namespace {

using apps::WalkState;
using graph::VertexId;
using hwsim::Cycle;

// Trace track (tid) layout within one board's pid.
enum BoardTrack : uint32_t {
  kBoardDramTrack = 0,
  kBoardNetTrack = 1,
};

enum class Phase { kInfo, kFetch };

}  // namespace

// Per-board datapath: one LightRW accelerator channel plus an egress link.
struct ClusterSim::Board {
  Board(const core::AcceleratorConfig& config,
        const hwsim::LinkConfig& link_config)
      : channel(config.dram),
        burst(&channel, config.burst),
        cache(core::MakeVertexCache(config.cache_kind, config.cache_entries)),
        link(link_config) {}

  hwsim::DramChannel channel;
  core::DynamicBurstEngine burst;
  std::unique_ptr<core::VertexCache> cache;
  hwsim::NetworkLink link;
  hwsim::Cycle sampler_busy = 0;  // the k-wide sampler unit is shared
  uint64_t steps_served = 0;      // steps executed on this board
  uint64_t migrations_out = 0;    // walkers shipped off this board
  hwsim::Cycle last_activity = 0; // latest step completion on this board
  // Deterministic fault schedules (one stream per fault domain) and the
  // counters their events land in.
  reliability::FaultStream dram_faults;
  reliability::FaultStream link_faults;
  reliability::ReliabilityStats rel;
};

// Periodic walker-state snapshot: everything failover needs to resume the
// walk from the checkpointed step — including the private RNG streams, so
// replayed steps reproduce the original path exactly.
struct WalkerCheckpoint {
  WalkState state;
  uint32_t path_len = 1;
  uint64_t epoch = 0;  // checkpoint interval index of the snapshot
  rng::ThunderingRng rng{1, 0};
  rng::Xoshiro256StarStar aux{0};
};

struct ClusterSim::Walker {
  WalkState state;
  uint32_t remaining = 0;
  uint64_t ticket = 0;
  BoardId board = 0;         // board currently executing the walker
  BoardId launch_board = 0;  // board charged for the slot
  Phase phase = Phase::kInfo;
  WalkerOptions opts;
  std::vector<VertexId> path;
  // Private sampling streams: the WRS lanes draw from `rng`, geometric
  // stop coins and degraded uniform picks from `aux`. Seeded per Launch
  // from (config seed, ticket) so the walk is interleaving-independent.
  rng::ThunderingRng rng{1, 0};
  rng::Xoshiro256StarStar aux{0};
  // Constructed lazily (it holds a pointer to `rng`, whose address is
  // only stable once the walker vector stops relocating).
  std::unique_ptr<core::StepSampler> sampler;
  WalkerCheckpoint ckpt;
  // Per-attempt "walk" span and its cycle-stage attribution. The
  // accumulators partition the attempt's elapsed cycles by pipeline
  // stage (attached as span attrs at retire); see
  // obs/critical_path.h for the component definitions.
  uint64_t span = 0;
  uint64_t info_cycles = 0;      // row-index lookups (cache miss -> DRAM)
  uint64_t fetch_cycles = 0;     // adjacency streaming via the burst engine
  uint64_t sampler_cycles = 0;   // WRS consume tail past the last data beat
  uint64_t pipeline_cycles = 0;  // fixed module-pipeline traversal
  uint64_t network_cycles = 0;   // migration transfer + retransmissions
  uint64_t recovery_cycles = 0;  // fault detection / failover delay
};

void DistributedRunStats::Accumulate(const DistributedRunStats& part) {
  queries += part.queries;
  steps += part.steps;
  migrations += part.migrations;
  dram.requests += part.dram.requests;
  dram.beats += part.dram.beats;
  dram.bytes += part.dram.bytes;
  dram.busy_cycles += part.dram.busy_cycles;
  dram.useful_bytes += part.dram.useful_bytes;
  network.messages += part.network.messages;
  network.payload_bytes += part.network.payload_bytes;
  network.busy_cycles += part.network.busy_cycles;
  reliability.Accumulate(part.reliability);
  membership.insert(membership.end(), part.membership.begin(),
                    part.membership.end());
  cycles = std::max(cycles, part.cycles);
  per_board_graph_bytes =
      std::max(per_board_graph_bytes, part.per_board_graph_bytes);
}

Status CheckFailoverSatisfiable(const DistributedConfig& config,
                                BoardId num_boards) {
  const std::vector<reliability::BoardDeath> deaths =
      reliability::EffectiveBoardDeaths(config.board.faults);
  if (deaths.empty()) {
    return Status::Ok();
  }
  const uint32_t total = num_boards + config.num_spare_boards;
  uint32_t owner_deaths = 0;
  for (const reliability::BoardDeath& d : deaths) {
    if (d.board >= total) {
      return InvalidArgumentError(
          "scheduled death of board " + std::to_string(d.board) +
          " out of range for " + std::to_string(num_boards) +
          " board(s) + " + std::to_string(config.num_spare_boards) +
          " spare(s)");
    }
    if (d.board < num_boards) {
      ++owner_deaths;
    }
  }
  if (num_boards < 2) {
    return FailedPreconditionError(
        "board failover needs at least 2 boards (no survivor to recover "
        "onto)");
  }
  // A death can land before any rebuild completes, so spares do not
  // relax the survivor bound: some original board must outlive the
  // whole schedule.
  if (owner_deaths >= num_boards) {
    return FailedPreconditionError(
        "death schedule kills all " + std::to_string(num_boards) +
        " partition owner(s): no survivor to recover onto");
  }
  return Status::Ok();
}

ClusterSim::ClusterSim(const graph::CsrGraph* graph, const apps::WalkApp* app,
                       const Partition* partition,
                       const DistributedConfig& config, uint32_t max_walkers)
    : graph_(graph), app_(app), partition_(partition), config_(config) {
  LIGHTRW_CHECK(graph != nullptr);
  LIGHTRW_CHECK(app != nullptr);
  LIGHTRW_CHECK(partition != nullptr);
  LIGHTRW_CHECK_EQ(partition->owners().size(), graph->num_vertices());

  const BoardId num_boards = partition->num_boards();
  const reliability::FaultConfig& faults = config_.board.faults;
  deaths_ = reliability::EffectiveBoardDeaths(faults);
  // Checkpoints are taken whenever a fault source could force a recovery
  // (the service layer retries whole queries instead, so surfaced-failure
  // mode never replays from checkpoints — but taking them is harmless and
  // keeps the checkpoint accounting comparable across modes).
  const bool recovery_possible =
      !deaths_.empty() ||
      (faults.enabled &&
       (faults.link_drop_rate > 0.0 || faults.link_corrupt_rate > 0.0));
  checkpointing_ =
      recovery_possible && faults.checkpoint_interval_cycles > 0;
  ckpt_interval_ = checkpointing_ ? faults.checkpoint_interval_cycles : 0;

  // Spares are only instantiated when a death is scheduled: a fault-free
  // run builds exactly the boards it always did (bit-identical results),
  // and the spares' global ids start past the partition owners so their
  // fault streams never perturb the owners' schedules.
  const BoardId num_spares =
      deaths_.empty() ? 0 : static_cast<BoardId>(config_.num_spare_boards);
  const BoardId total = static_cast<BoardId>(num_boards + num_spares);

  obs::TraceRecorder* trace = config_.board.trace;
  boards_.reserve(total);
  for (BoardId b = 0; b < total; ++b) {
    boards_.emplace_back(config_.board, config_.link);
  }
  for (BoardId b = 0; b < total; ++b) {
    Board& board = boards_[b];
    const BoardId global = GlobalBoard(b);
    if (faults.enabled) {
      board.dram_faults = reliability::FaultStream(faults, global);
      board.link_faults =
          reliability::FaultStream(faults, 0x10000ULL + global);
      board.channel.AttachFaults(&board.dram_faults, &board.rel);
      board.link.AttachFaults(&board.link_faults, &board.rel);
    }
    if (trace != nullptr) {
      trace->NameProcess(global, b < num_boards
                                     ? "board " + std::to_string(global)
                                     : "board " + std::to_string(global) +
                                           " (spare)");
      trace->NameTrack(global, kBoardDramTrack, "dram channel");
      trace->NameTrack(global, kBoardNetTrack, "network / faults");
      board.channel.AttachTrace(trace, global, kBoardDramTrack);
    }
  }

  // Membership: owners start alive serving their own share, spares idle.
  state_.assign(total, reliability::BoardState::kAlive);
  serving_.resize(num_boards);
  share_of_.assign(total, kNoBoard);
  for (BoardId b = 0; b < num_boards; ++b) {
    serving_[b] = b;
    share_of_[b] = b;
  }
  for (BoardId b = num_boards; b < total; ++b) {
    state_[b] = reliability::BoardState::kSpare;
  }
  RebuildSurvivors();
  rebuild_start_.assign(total, 0);
  if (!deaths_.empty() && num_spares > 0) {
    // Rebuild cost model input: what a spare must re-materialize to
    // take over a share (the full image when replicated).
    if (config_.replicate_graph) {
      share_bytes_.assign(num_boards, graph_->ModeledByteSize());
    } else {
      share_bytes_ = partition_->ShareByteSizes(*graph_);
    }
  }
  for (size_t i = 0; i < deaths_.size(); ++i) {
    events_.emplace(deaths_[i].cycle, 2, i);
  }

  walkers_ = std::vector<Walker>(max_walkers);
  inflight_.assign(total, 0);
  for (size_t i = 0; i < walkers_.size(); ++i) {
    free_slots_.push(i);
  }
}

ClusterSim::~ClusterSim() = default;

BoardId ClusterSim::num_boards() const { return partition_->num_boards(); }

BoardId ClusterSim::total_boards() const {
  return static_cast<BoardId>(boards_.size());
}

BoardId ClusterSim::SurvivorOf(uint64_t salt) const {
  LIGHTRW_CHECK(!survivors_.empty());
  return survivors_[salt % survivors_.size()];
}

BoardId ClusterSim::LiveOwnerOf(VertexId v) const {
  const BoardId share = partition_->OwnerOf(v);
  const BoardId serving = serving_[share];
  if (serving != kNoBoard && IsAlive(serving)) {
    return serving;
  }
  // Orphaned share (mid-rebuild or spare pool exhausted): surviving
  // boards serve it, chosen deterministically per vertex.
  return SurvivorOf(v);
}

// Rebuilds the sorted alive-serving-board list SurvivorOf() indexes.
// Called on every serving-set change; the list is the routing ground
// truth for orphaned shares, so it must never be empty (guaranteed by
// CheckFailoverSatisfiable's survivor bound).
void ClusterSim::RebuildSurvivors() {
  survivors_.clear();
  for (BoardId share = 0; share < num_boards(); ++share) {
    const BoardId b = serving_[share];
    if (b != kNoBoard && IsAlive(b)) {
      survivors_.push_back(b);
    }
  }
}

// Bumps the membership epoch and records/traces one board state change.
void ClusterSim::Transition(BoardId b, reliability::BoardState to,
                            Cycle at) {
  const reliability::BoardState from = state_[b];
  state_[b] = to;
  ++epoch_;
  transitions_.push_back({epoch_, at, GlobalBoard(b), from, to});
  obs::TraceRecorder* trace = config_.board.trace;
  if (trace != nullptr && trace->accepting()) {
    const char* name = to == reliability::BoardState::kDead
                           ? "board_failure"
                           : to == reliability::BoardState::kRebuilding
                                 ? "spare_activated"
                                 : "partition_rebuilt";
    trace->Instant(name, "fault", GlobalBoard(b), kBoardNetTrack, at);
  }
}

// Kind-2 death event: the board's resident walker state is gone (their
// next event finds the board dead and recovers), its share is orphaned,
// and a spare — if one remains — starts rebuilding the share.
void ClusterSim::ProcessDeath(size_t death_index, Cycle now) {
  const reliability::BoardDeath& death = deaths_[death_index];
  const BoardId b = static_cast<BoardId>(death.board);
  if (state_[b] == reliability::BoardState::kDead) {
    return;  // defensive: EffectiveBoardDeaths dedups per board
  }
  const bool was_rebuilding =
      state_[b] == reliability::BoardState::kRebuilding;
  Transition(b, reliability::BoardState::kDead, now);
  ++recovery_rel_.board_failures;
  if (was_rebuilding) {
    ++recovery_rel_.rebuilds_aborted;
  }
  const BoardId share = share_of_[b];
  share_of_[b] = kNoBoard;
  if (share == kNoBoard) {
    return;  // an idle spare died: no share to hand off
  }
  if (serving_[share] == b) {
    serving_[share] = kNoBoard;
    RebuildSurvivors();
  }
  TryActivateSpare(share, now);
}

// Activates the lowest-id idle spare for an orphaned share and schedules
// its rebuild completion: detection latency plus the share's bytes over
// the rebuild bandwidth. With no spare left the cluster stays in
// survivor-only degraded mode (counted, traced).
void ClusterSim::TryActivateSpare(BoardId share, Cycle at) {
  for (BoardId s = num_boards(); s < total_boards(); ++s) {
    if (state_[s] != reliability::BoardState::kSpare) {
      continue;
    }
    Transition(s, reliability::BoardState::kRebuilding, at);
    share_of_[s] = share;
    rebuild_start_[s] = at;
    ++recovery_rel_.spares_activated;
    const uint64_t bytes = share_bytes_.empty() ? 0 : share_bytes_[share];
    const Cycle copy_cycles = static_cast<Cycle>(
        std::ceil(static_cast<double>(bytes) /
                  config_.rebuild_bytes_per_cycle));
    const Cycle done =
        at + config_.board.faults.detection_latency_cycles + copy_cycles;
    events_.emplace(done, 2, kRebuildEventBase + s);
    return;
  }
  ++recovery_rel_.spare_exhaustions;
  obs::TraceRecorder* trace = config_.board.trace;
  if (trace != nullptr && trace->accepting()) {
    trace->Instant("spare_exhausted", "fault", GlobalBoard(share),
                   kBoardNetTrack, at);
  }
}

// Kind-2 rebuild-completion event: ownership of the share transfers to
// the spare — launches and migrations aimed at the share route to it
// from this cycle on. A spare that died mid-rebuild never gets here.
void ClusterSim::CompleteRebuild(BoardId spare, Cycle now) {
  if (state_[spare] != reliability::BoardState::kRebuilding) {
    return;  // died mid-rebuild (rebuilds_aborted already counted)
  }
  Transition(spare, reliability::BoardState::kAlive, now);
  serving_[share_of_[spare]] = spare;
  RebuildSurvivors();
  ++recovery_rel_.rebuilds_completed;
  recovery_rel_.rebuild_cycles += now - rebuild_start_[spare];
}

uint32_t ClusterSim::InflightOn(BoardId b) const { return inflight_[b]; }

uint32_t ClusterSim::free_slots() const {
  return static_cast<uint32_t>(free_slots_.size());
}

void ClusterSim::Launch(uint64_t ticket, const apps::WalkQuery& query,
                        BoardId board, Cycle at,
                        const WalkerOptions& options) {
  LIGHTRW_CHECK(!free_slots_.empty());
  LIGHTRW_CHECK(board < total_boards());
  const size_t slot = free_slots_.top();
  free_slots_.pop();
  Walker& w = walkers_[slot];
  // Identity transfer: a launch aimed at a board whose share is now
  // served by a rebuilt spare executes there (the caller's board keeps
  // the slot accounting, so service-side breakers and admission signals
  // see the original board identity recover).
  BoardId exec_board = board;
  if (!IsAlive(board) && board < num_boards()) {
    const BoardId serving = serving_[board];
    if (serving != kNoBoard && IsAlive(serving)) {
      exec_board = serving;
    }
  }
  w.state = WalkState{};
  w.state.curr = query.start;
  w.remaining = options.max_steps > 0
                    ? std::min(query.length, options.max_steps)
                    : query.length;
  w.ticket = ticket;
  w.board = exec_board;
  w.launch_board = board;
  w.phase = Phase::kInfo;
  w.opts = options;
  w.path.clear();
  w.path.push_back(query.start);
  // Private streams keyed on (seed, ticket): the walk's outcome is a pure
  // function of the ticket, independent of timing and placement.
  rng::SplitMix64 mix(config_.board.seed +
                      0x9e3779b97f4a7c15ULL * (ticket + 1));
  w.rng = rng::ThunderingRng(config_.board.sampler_parallelism, mix.Next());
  w.aux = rng::Xoshiro256StarStar(mix.Next());
  if (w.sampler == nullptr) {
    w.sampler = std::make_unique<core::StepSampler>(
        config_.board.sampler_parallelism, &w.rng);
  }
  // Dispatch checkpoint: a walker can always be recovered to its start.
  w.ckpt.state = w.state;
  w.ckpt.path_len = 1;
  w.ckpt.epoch = checkpointing_ ? at / ckpt_interval_ : 0;
  w.ckpt.rng = w.rng;
  w.ckpt.aux = w.aux;
  w.span = 0;
  w.info_cycles = 0;
  w.fetch_cycles = 0;
  w.sampler_cycles = 0;
  w.pipeline_cycles = 0;
  w.network_cycles = 0;
  w.recovery_cycles = 0;
  if (obs::SpanRecorder* spans = config_.board.spans) {
    w.span = spans->Begin(ticket, options.parent_span, "walk", "exec",
                          GlobalBoard(exec_board), at);
  }
  ++inflight_[board];
  events_.emplace(at, 0, slot);
}

void ClusterSim::ScheduleWake(uint64_t tag, Cycle at) {
  events_.emplace(at, 1, tag);
}

void ClusterSim::TakeCheckpoint(Walker& w, Board& board, Cycle at) {
  if (!checkpointing_) {
    return;
  }
  const uint64_t epoch = at / ckpt_interval_;
  if (epoch > w.ckpt.epoch) {
    w.ckpt.state = w.state;
    w.ckpt.path_len = static_cast<uint32_t>(w.path.size());
    w.ckpt.epoch = epoch;
    w.ckpt.rng = w.rng;
    w.ckpt.aux = w.aux;
    ++board.rel.checkpoints;
  }
}

Cycle ClusterSim::LookupInfo(Board& board, Cycle t, VertexId v) {
  // Row lookup through the board's cache (same policy as the
  // single-board engine's LookupNeighborInfo).
  if (board.cache != nullptr && board.cache->Probe(v)) {
    return t + 1;
  }
  const Cycle done = board.channel.Access(t, 1);
  board.channel.ReportUseful(graph::kBytesPerRowRecord);
  if (board.cache != nullptr) {
    board.cache->Install(v, graph_->Degree(v));
  }
  return done;
}

// Attaches the attempt's cycle-stage attribution to its "walk" span and
// closes it. Attr keys and order are fixed (critical_path.cc keys on
// them, and a fixed order keeps the export byte-stable).
void ClusterSim::EndWalkSpan(Walker& w, Cycle at) {
  obs::SpanRecorder* spans = config_.board.spans;
  if (spans == nullptr || w.span == 0) {
    return;
  }
  spans->Attr(w.ticket, w.span, "dram_info", w.info_cycles);
  spans->Attr(w.ticket, w.span, "dram_fetch", w.fetch_cycles);
  spans->Attr(w.ticket, w.span, "sampler", w.sampler_cycles);
  spans->Attr(w.ticket, w.span, "pipeline", w.pipeline_cycles);
  spans->Attr(w.ticket, w.span, "network", w.network_cycles);
  spans->Attr(w.ticket, w.span, "recovery", w.recovery_cycles);
  spans->Attr(w.ticket, w.span, "steps", w.state.step);
  spans->End(w.ticket, w.span, at);
  w.span = 0;
}

void ClusterSim::Retire(size_t slot, Cycle at) {
  Walker& w = walkers_[slot];
  EndWalkSpan(w, at);
  WalkerEnd end;
  end.ticket = w.ticket;
  end.at = at;
  end.steps = w.state.step;
  end.board = w.launch_board;
  makespan_ = std::max(makespan_, at);
  --inflight_[w.launch_board];
  free_slots_.push(slot);
  std::vector<VertexId> path = std::move(w.path);
  w.path.clear();
  if (on_retire_) {
    on_retire_(end, std::move(path));
  }
}

void ClusterSim::FailWalker(size_t slot, Cycle at, bool board_lost) {
  Walker& w = walkers_[slot];
  EndWalkSpan(w, at);
  WalkerEnd end;
  end.ticket = w.ticket;
  end.at = at;
  end.steps = w.state.step;
  end.board = w.launch_board;
  end.board_lost = board_lost;
  end.data_fault = !board_lost;
  makespan_ = std::max(makespan_, at);
  --inflight_[w.launch_board];
  free_slots_.push(slot);
  std::vector<VertexId> path = std::move(w.path);
  w.path.clear();
  if (on_retire_) {
    on_retire_(end, std::move(path));
  }
}

// Rolls a walker back to its checkpoint and re-dispatches it on a
// surviving board (its state on the old board — resident or in a lost
// migration message — is gone). Without a checkpoint the walk is lost:
// it retires truncated and is counted. Batch mode only; the service
// layer gets the failure surfaced instead and owns the retry.
void ClusterSim::Recover(size_t slot, Cycle at) {
  Walker& w = walkers_[slot];
  obs::TraceRecorder* trace = config_.board.trace;
  obs::SpanRecorder* spans = config_.board.spans;
  const reliability::FaultConfig& faults = config_.board.faults;
  if (!checkpointing_) {
    ++recovery_rel_.walkers_lost;
    ++recovery_rel_.walks_failed;
    if (trace != nullptr && trace->accepting()) {
      trace->Instant("walker_lost", "fault", GlobalBoard(w.board),
                     kBoardNetTrack, at);
    }
    if (spans != nullptr) {
      spans->Event(w.ticket, w.span, "walker_lost", at);
    }
    Retire(slot, at);
    return;
  }
  recovery_rel_.replayed_steps += w.state.step - w.ckpt.state.step;
  w.state = w.ckpt.state;
  w.path.resize(w.ckpt.path_len);
  w.rng = w.ckpt.rng;
  w.aux = w.ckpt.aux;
  w.phase = Phase::kInfo;
  w.board = config_.replicate_graph ? SurvivorOf(w.ticket)
                                    : LiveOwnerOf(w.state.curr);
  const Cycle resume = at + faults.detection_latency_cycles +
                       faults.recovery_cycles_per_walker;
  recovery_rel_.recovery_cycles += resume - at;
  w.recovery_cycles += resume - at;
  ++recovery_rel_.walkers_recovered;
  if (trace != nullptr && trace->accepting()) {
    trace->Instant("walker_recovered", "fault", GlobalBoard(w.board),
                   kBoardNetTrack, resume);
  }
  if (spans != nullptr) {
    spans->Event(w.ticket, w.span, "walker_recovered", resume);
  }
  events_.emplace(resume, 0, slot);
}

void ClusterSim::Step(size_t slot, Cycle now) {
  Walker& w = walkers_[slot];
  obs::SpanRecorder* spans = config_.board.spans;
  const reliability::FaultConfig& faults = config_.board.faults;

  // Board failure: any event landing on a dead board after its death
  // cycle finds the walker's resident state gone.
  if (state_[w.board] == reliability::BoardState::kDead) {
    if (spans != nullptr) {
      spans->Event(w.ticket, w.span, "board_failure", now);
    }
    if (surface_failures_) {
      w.recovery_cycles += faults.detection_latency_cycles;
      FailWalker(slot, now + faults.detection_latency_cycles,
                 /*board_lost=*/true);
    } else {
      Recover(slot, now);
    }
    return;
  }
  Board& board = boards_[w.board];
  const bool wants_prev = app_->needs_prev_neighbors() &&
                          !w.opts.uniform_step &&
                          w.state.prev != graph::kInvalidVertex;

  if (w.phase == Phase::kInfo) {
    if (w.state.step >= w.remaining) {
      Retire(slot, now);
      return;
    }
    const uint64_t corrected_before = board.rel.dram_correctable;
    Cycle t_info = LookupInfo(board, now, w.state.curr);
    if (wants_prev) {
      t_info = std::max(t_info, LookupInfo(board, now, w.state.prev));
    }
    w.info_cycles += t_info - now;
    if (spans != nullptr &&
        board.rel.dram_correctable > corrected_before) {
      spans->Event(w.ticket, w.span, "dram_retry", t_info);
    }
    if (board.channel.TakeAccessFailure()) {
      // Uncorrectable ECC error on the row lookup: the walk cannot
      // continue from corrupt state.
      if (spans != nullptr) {
        spans->Event(w.ticket, w.span, "dram_uncorrectable", t_info);
      }
      if (surface_failures_) {
        FailWalker(slot, t_info, /*board_lost=*/false);
      } else {
        ++board.rel.walks_failed;
        Retire(slot, t_info);
      }
      return;
    }
    if (graph_->Degree(w.state.curr) == 0) {
      w.pipeline_cycles += config_.board.pipeline_depth_cycles;
      Retire(slot, t_info + config_.board.pipeline_depth_cycles);
      return;
    }
    w.phase = Phase::kFetch;
    events_.emplace(t_info, 0, slot);
    return;
  }

  // Phase::kFetch: adjacency stream + sampling on the owner board.
  const uint32_t degree = graph_->Degree(w.state.curr);
  const uint64_t corrected_before = board.rel.dram_correctable;
  Cycle t_fetch = now;
  if (wants_prev) {
    const uint32_t prev_degree = graph_->Degree(w.state.prev);
    if (prev_degree > config_.board.prev_neighbor_buffer_edges) {
      t_fetch = board.burst.Fetch(
          t_fetch, static_cast<uint64_t>(prev_degree) *
                       graph::kBytesPerEdgeRecord);
    }
  }
  const Cycle last_data = board.burst.Fetch(
      t_fetch, static_cast<uint64_t>(degree) * graph::kBytesPerEdgeRecord);
  const Cycle first_data =
      t_fetch + config_.board.dram.access_latency_cycles;
  const Cycle consume_start = std::max(first_data, board.sampler_busy);
  // A degraded uniform pick consumes one sampler cycle; the weighted
  // PWRS path streams the whole adjacency through the k lanes.
  board.sampler_busy =
      consume_start +
      (w.opts.uniform_step
           ? 1
           : CeilDiv(degree, config_.board.sampler_parallelism));
  const Cycle step_end = std::max(last_data, board.sampler_busy) +
                         config_.board.pipeline_depth_cycles;
  w.fetch_cycles += last_data - now;
  w.sampler_cycles +=
      board.sampler_busy > last_data ? board.sampler_busy - last_data : 0;
  w.pipeline_cycles += config_.board.pipeline_depth_cycles;
  if (spans != nullptr && board.rel.dram_correctable > corrected_before) {
    spans->Event(w.ticket, w.span, "dram_retry", last_data);
  }

  VertexId next;
  if (w.opts.uniform_step) {
    next = graph_->Neighbors(w.state.curr)[w.aux.NextBounded(degree)];
  } else {
    next = w.sampler->SampleNext(*graph_, *app_, w.state);
  }
  w.phase = Phase::kInfo;
  if (board.channel.TakeAccessFailure()) {
    // Uncorrectable ECC error in the adjacency stream: the sampled step
    // is based on corrupt data, so the walk fails here.
    if (spans != nullptr) {
      spans->Event(w.ticket, w.span, "dram_uncorrectable", step_end);
    }
    if (surface_failures_) {
      FailWalker(slot, step_end, /*board_lost=*/false);
    } else {
      ++board.rel.walks_failed;
      Retire(slot, step_end);
    }
    return;
  }
  if (next == graph::kInvalidVertex) {
    Retire(slot, step_end);
    return;
  }
  w.state.prev = w.state.curr;
  w.state.curr = next;
  ++w.state.step;
  ++total_steps_;
  ++board.steps_served;
  board.last_activity = std::max(board.last_activity, step_end);
  w.path.push_back(next);
  TakeCheckpoint(w, board, step_end);

  const double stop_probability = app_->stop_probability();
  const bool stopped =
      stop_probability > 0.0 && w.aux.NextUnit() < stop_probability;
  if (stopped || w.state.step >= w.remaining) {
    Retire(slot, step_end);
    return;
  }

  const BoardId next_board =
      config_.replicate_graph ? w.board : LiveOwnerOf(next);
  if (next_board != w.board) {
    // Ship the walker state to the owner of the next vertex; a lost
    // message (retransmission budget exhausted) recovers the walker
    // from its checkpoint (batch) or surfaces the loss (service).
    const hwsim::LinkDelivery delivery =
        board.link.SendReliable(step_end, config_.walker_message_bytes);
    ++total_migrations_;
    ++board.migrations_out;
    w.network_cycles += delivery.arrival - step_end;
    if (spans != nullptr && delivery.attempts > 1) {
      spans->Event(w.ticket, w.span, "link_retransmit", step_end);
    }
    if (!delivery.delivered) {
      if (spans != nullptr) {
        spans->Event(w.ticket, w.span, "link_loss", delivery.arrival);
      }
      if (surface_failures_) {
        FailWalker(slot, delivery.arrival, /*board_lost=*/true);
      } else {
        Recover(slot, delivery.arrival);
      }
      return;
    }
    w.board = next_board;
    events_.emplace(delivery.arrival, 0, slot);
  } else {
    events_.emplace(step_end, 0, slot);
  }
}

void ClusterSim::Drain() {
  while (!events_.empty()) {
    const auto [now, kind, id] = events_.top();
    events_.pop();
    if (kind == 0) {
      Step(static_cast<size_t>(id), now);
    } else if (kind == 1) {
      if (on_wake_) {
        on_wake_(id, now);
      }
    } else if (id >= kRebuildEventBase) {
      CompleteRebuild(static_cast<BoardId>(id - kRebuildEventBase), now);
    } else {
      ProcessDeath(static_cast<size_t>(id), now);
    }
  }
}

void ClusterSim::Finalize(DistributedRunStats* stats) {
  LIGHTRW_CHECK(stats != nullptr);
  obs::MetricsRegistry* metrics = config_.board.metrics;
  stats->steps = total_steps_;
  stats->migrations = total_migrations_;
  stats->reliability.Accumulate(recovery_rel_);
  stats->membership.insert(stats->membership.end(), transitions_.begin(),
                           transitions_.end());
  for (BoardId b = 0; b < total_boards(); ++b) {
    const Board& board = boards_[b];
    stats->dram.requests += board.channel.stats().requests;
    stats->dram.beats += board.channel.stats().beats;
    stats->dram.bytes += board.channel.stats().bytes;
    stats->dram.busy_cycles += board.channel.stats().busy_cycles;
    stats->dram.useful_bytes += board.channel.stats().useful_bytes;
    stats->network.messages += board.link.stats().messages;
    stats->network.payload_bytes += board.link.stats().payload_bytes;
    stats->network.busy_cycles += board.link.stats().busy_cycles;
    stats->reliability.Accumulate(board.rel);
    if (metrics != nullptr) {
      // Per-partition load balance: one label set per board.
      const obs::Labels labels = {{"board", std::to_string(GlobalBoard(b))}};
      metrics->GetCounter("dist.board.steps", labels)
          ->Increment(board.steps_served);
      metrics->GetCounter("dist.board.migrations_out", labels)
          ->Increment(board.migrations_out);
      metrics->GetCounter("dist.board.dram_bytes", labels)
          ->Increment(board.channel.stats().bytes);
      metrics->GetCounter("dist.board.link_messages", labels)
          ->Increment(board.link.stats().messages);
      metrics->GetCounter("dist.board.link_bytes", labels)
          ->Increment(board.link.stats().payload_bytes);
      metrics->GetGauge("dist.board.busy_until_cycles", labels)
          ->Set(static_cast<double>(board.last_activity));
      reliability::PublishReliabilityMetrics(metrics, board.rel, labels);
    }
  }
  if (metrics != nullptr) {
    // Failover-logic events are cluster-level, not per-board.
    reliability::PublishReliabilityMetrics(metrics, recovery_rel_,
                                           {{"board", "cluster"}});
    if (!transitions_.empty()) {
      metrics->GetGauge("membership.epoch", {{"board", "cluster"}})
          ->Set(static_cast<double>(epoch_));
    }
  }
  stats->cycles = makespan_;
  stats->seconds =
      static_cast<double>(makespan_) / config_.board.dram.clock_hz;
  if (config_.replicate_graph) {
    stats->per_board_graph_bytes = graph_->ModeledByteSize();
  } else {
    // Largest partition share (also the rebuild cost model's input).
    for (const uint64_t share : partition_->ShareByteSizes(*graph_)) {
      stats->per_board_graph_bytes =
          std::max(stats->per_board_graph_bytes, share);
    }
  }
}

}  // namespace lightrw::distributed
