// Validation of a DistributedConfig against structural invariants,
// mirroring core::ValidateConfig for the single-board accelerator: the
// front door for configurations built from user input. DistributedEngine
// runs it at the top of Run(), so a bad configuration surfaces as a
// Status instead of a LIGHTRW_CHECK abort.

#ifndef LIGHTRW_DISTRIBUTED_CONFIG_VALIDATION_H_
#define LIGHTRW_DISTRIBUTED_CONFIG_VALIDATION_H_

#include "common/status.h"
#include "distributed/dist_engine.h"

namespace lightrw::distributed {

// Checks message sizes, walker in-flight limits, the per-board DRAM and
// link timing parameters, and the fault-injection schedule.
Status ValidateDistributedConfig(const DistributedConfig& config);

}  // namespace lightrw::distributed

#endif  // LIGHTRW_DISTRIBUTED_CONFIG_VALIDATION_H_
