#include "distributed/config_validation.h"

#include <string>

#include "common/sim_thread_pool.h"
#include "hwsim/validation.h"
#include "reliability/fault_injector.h"

namespace lightrw::distributed {

Status ValidateDistributedConfig(const DistributedConfig& config) {
  if (config.walker_message_bytes == 0) {
    return InvalidArgumentError(
        "walker_message_bytes must be >= 1 (a migration ships the walker "
        "state)");
  }
  if (config.num_threads > SimThreadPool::kMaxThreads) {
    return InvalidArgumentError(
        "num_threads must be <= " +
        std::to_string(SimThreadPool::kMaxThreads) + " (0 = default)");
  }
  if (config.inflight_walkers_per_board == 0) {
    return InvalidArgumentError("inflight_walkers_per_board must be >= 1");
  }
  if (config.board.sampler_parallelism == 0) {
    return InvalidArgumentError("board.sampler_parallelism must be >= 1");
  }
  if (config.board.num_instances == 0) {
    return InvalidArgumentError("board.num_instances must be >= 1");
  }
  if (config.num_spare_boards > 256) {
    return InvalidArgumentError("num_spare_boards must be <= 256");
  }
  if (config.num_spare_boards > 0 && config.rebuild_bytes_per_cycle <= 0.0) {
    return InvalidArgumentError(
        "rebuild_bytes_per_cycle must be > 0 when spare boards are "
        "configured (a rebuild copies the dead board's share)");
  }
  LIGHTRW_RETURN_IF_ERROR(hwsim::ValidateDramConfig(config.board.dram));
  LIGHTRW_RETURN_IF_ERROR(hwsim::ValidateLinkConfig(config.link));
  LIGHTRW_RETURN_IF_ERROR(
      reliability::ValidateFaultConfig(config.board.faults));
  // A scheduled board death with checkpointing disabled drops every
  // in-flight walk on the dead board. That is sometimes exactly what a
  // degradation experiment wants, but it must be asked for explicitly.
  if (config.board.faults.checkpoint_interval_cycles == 0 &&
      !config.board.faults.allow_walker_loss &&
      !reliability::EffectiveBoardDeaths(config.board.faults).empty()) {
    return InvalidArgumentError(
        "a scheduled board death with checkpoint_interval_cycles == 0 "
        "loses every in-flight walk on the dead board; set "
        "faults.allow_walker_loss to opt in");
  }
  return Status::Ok();
}

}  // namespace lightrw::distributed
