#include "distributed/config_validation.h"

#include <string>

#include "common/sim_thread_pool.h"
#include "hwsim/validation.h"
#include "reliability/fault_injector.h"

namespace lightrw::distributed {

Status ValidateDistributedConfig(const DistributedConfig& config) {
  if (config.walker_message_bytes == 0) {
    return InvalidArgumentError(
        "walker_message_bytes must be >= 1 (a migration ships the walker "
        "state)");
  }
  if (config.num_threads > SimThreadPool::kMaxThreads) {
    return InvalidArgumentError(
        "num_threads must be <= " +
        std::to_string(SimThreadPool::kMaxThreads) + " (0 = default)");
  }
  if (config.inflight_walkers_per_board == 0) {
    return InvalidArgumentError("inflight_walkers_per_board must be >= 1");
  }
  if (config.board.sampler_parallelism == 0) {
    return InvalidArgumentError("board.sampler_parallelism must be >= 1");
  }
  if (config.board.num_instances == 0) {
    return InvalidArgumentError("board.num_instances must be >= 1");
  }
  LIGHTRW_RETURN_IF_ERROR(hwsim::ValidateDramConfig(config.board.dram));
  LIGHTRW_RETURN_IF_ERROR(hwsim::ValidateLinkConfig(config.link));
  LIGHTRW_RETURN_IF_ERROR(
      reliability::ValidateFaultConfig(config.board.faults));
  return Status::Ok();
}

}  // namespace lightrw::distributed
