#include "distributed/dist_engine.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "common/bits.h"
#include "common/check.h"
#include "lightrw/burst_engine.h"
#include "lightrw/step_sampler.h"
#include "lightrw/vertex_cache.h"
#include "obs/metrics.h"
#include "rng/rng.h"

namespace lightrw::distributed {

namespace {

using apps::WalkState;
using graph::VertexId;
using hwsim::Cycle;

// Per-board datapath: one LightRW accelerator channel plus an egress link.
struct Board {
  Board(const core::AcceleratorConfig& config,
        const hwsim::LinkConfig& link_config, uint64_t seed)
      : channel(config.dram),
        burst(&channel, config.burst),
        cache(core::MakeVertexCache(config.cache_kind, config.cache_entries)),
        rng(config.sampler_parallelism, seed),
        sampler(config.sampler_parallelism, &rng),
        link(link_config) {}

  hwsim::DramChannel channel;
  core::DynamicBurstEngine burst;
  std::unique_ptr<core::VertexCache> cache;
  rng::ThunderingRng rng;
  core::StepSampler sampler;
  hwsim::NetworkLink link;
  hwsim::Cycle sampler_busy = 0;  // the k-wide sampler unit is shared
  uint64_t steps_served = 0;      // steps executed on this board
  uint64_t migrations_out = 0;    // walkers shipped off this board
  hwsim::Cycle last_activity = 0; // latest step completion on this board
};

enum class Phase { kInfo, kFetch };

struct Walker {
  WalkState state;
  uint32_t remaining = 0;
  size_t query_index = 0;
  BoardId board = 0;
  Phase phase = Phase::kInfo;
  std::vector<VertexId> path;
};

}  // namespace

DistributedEngine::DistributedEngine(const graph::CsrGraph* graph,
                                     const apps::WalkApp* app,
                                     const Partition* partition,
                                     const DistributedConfig& config)
    : graph_(graph), app_(app), partition_(partition), config_(config) {
  LIGHTRW_CHECK(graph != nullptr);
  LIGHTRW_CHECK(app != nullptr);
  LIGHTRW_CHECK(partition != nullptr);
  LIGHTRW_CHECK_EQ(partition->owners().size(), graph->num_vertices());
}

DistributedRunStats DistributedEngine::Run(
    std::span<const apps::WalkQuery> queries,
    baseline::WalkOutput* output) {
  DistributedRunStats stats;
  const BoardId num_boards = partition_->num_boards();

  std::vector<Board> boards;
  boards.reserve(num_boards);
  for (BoardId b = 0; b < num_boards; ++b) {
    boards.emplace_back(config_.board, config_.link,
                        config_.board.seed + 0x51aab5ULL * (b + 1));
  }
  rng::Xoshiro256StarStar stop_gen(config_.board.seed ^ 0x5709ULL);
  const double stop_probability = app_->stop_probability();

  // Row lookup through a board's cache (same policy as the single-board
  // engine's LookupNeighborInfo).
  auto lookup_info = [&](Board& board, Cycle t, VertexId v) {
    if (board.cache != nullptr && board.cache->Probe(v)) {
      return t + 1;
    }
    const Cycle done = board.channel.Access(t, 1);
    board.channel.ReportUseful(graph::kBytesPerRowRecord);
    if (board.cache != nullptr) {
      board.cache->Install(v, graph_->Degree(v));
    }
    return done;
  };

  const size_t max_inflight =
      static_cast<size_t>(num_boards) * config_.inflight_walkers_per_board;
  std::vector<Walker> walkers(std::min(max_inflight, queries.size()));
  std::vector<std::vector<VertexId>> finished;
  if (output != nullptr) {
    finished.resize(queries.size());
  }

  using HeapItem = std::pair<Cycle, size_t>;  // (time, walker slot)
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
  size_t next_query = 0;
  Cycle makespan = 0;

  auto load = [&](size_t slot, Cycle at) {
    if (next_query >= queries.size()) {
      return;
    }
    Walker& w = walkers[slot];
    const apps::WalkQuery& q = queries[next_query];
    w.state = WalkState{};
    w.state.curr = q.start;
    w.remaining = q.length;
    w.query_index = next_query++;
    // Replicated mode keeps a walker on its initial board for its whole
    // life (any board can serve any vertex).
    w.board = config_.replicate_graph
                  ? static_cast<BoardId>(w.query_index % num_boards)
                  : partition_->OwnerOf(q.start);
    w.phase = Phase::kInfo;
    w.path.clear();
    w.path.push_back(q.start);
    heap.emplace(at, slot);
  };

  auto retire = [&](size_t slot, Cycle at) {
    Walker& w = walkers[slot];
    if (output != nullptr) {
      finished[w.query_index] = std::move(w.path);
    }
    ++stats.queries;
    makespan = std::max(makespan, at);
    load(slot, at);
  };

  for (size_t i = 0; i < walkers.size(); ++i) {
    load(i, 0);
  }

  while (!heap.empty()) {
    const auto [now, slot] = heap.top();
    heap.pop();
    Walker& w = walkers[slot];
    Board& board = boards[w.board];

    if (w.phase == Phase::kInfo) {
      if (w.state.step >= w.remaining) {
        retire(slot, now);
        continue;
      }
      Cycle t_info = lookup_info(board, now, w.state.curr);
      if (app_->needs_prev_neighbors() &&
          w.state.prev != graph::kInvalidVertex) {
        t_info = std::max(t_info, lookup_info(board, now, w.state.prev));
      }
      if (graph_->Degree(w.state.curr) == 0) {
        retire(slot, t_info + config_.board.pipeline_depth_cycles);
        continue;
      }
      w.phase = Phase::kFetch;
      heap.emplace(t_info, slot);
      continue;
    }

    // Phase::kFetch: adjacency stream + sampling on the owner board.
    const uint32_t degree = graph_->Degree(w.state.curr);
    Cycle t_fetch = now;
    if (app_->needs_prev_neighbors() &&
        w.state.prev != graph::kInvalidVertex) {
      const uint32_t prev_degree = graph_->Degree(w.state.prev);
      if (prev_degree > config_.board.prev_neighbor_buffer_edges) {
        t_fetch = board.burst.Fetch(
            t_fetch, static_cast<uint64_t>(prev_degree) *
                         graph::kBytesPerEdgeRecord);
      }
    }
    const Cycle last_data = board.burst.Fetch(
        t_fetch, static_cast<uint64_t>(degree) * graph::kBytesPerEdgeRecord);
    const Cycle first_data =
        t_fetch + config_.board.dram.access_latency_cycles;
    const Cycle consume_start = std::max(first_data, board.sampler_busy);
    board.sampler_busy =
        consume_start + CeilDiv(degree, config_.board.sampler_parallelism);
    const Cycle step_end = std::max(last_data, board.sampler_busy) +
                           config_.board.pipeline_depth_cycles;

    const VertexId next = board.sampler.SampleNext(*graph_, *app_, w.state);
    w.phase = Phase::kInfo;
    if (next == graph::kInvalidVertex) {
      retire(slot, step_end);
      continue;
    }
    w.state.prev = w.state.curr;
    w.state.curr = next;
    ++w.state.step;
    ++stats.steps;
    ++board.steps_served;
    board.last_activity = std::max(board.last_activity, step_end);
    w.path.push_back(next);

    const bool stopped =
        stop_probability > 0.0 && stop_gen.NextUnit() < stop_probability;
    if (stopped || w.state.step >= w.remaining) {
      retire(slot, step_end);
      continue;
    }

    const BoardId next_board = config_.replicate_graph
                                   ? w.board
                                   : partition_->OwnerOf(next);
    if (next_board != w.board) {
      // Ship the walker state to the owner of the next vertex.
      const Cycle arrival =
          board.link.Send(step_end, config_.walker_message_bytes);
      w.board = next_board;
      ++stats.migrations;
      ++board.migrations_out;
      heap.emplace(arrival, slot);
    } else {
      heap.emplace(step_end, slot);
    }
  }

  obs::MetricsRegistry* metrics = config_.board.metrics;
  for (BoardId b = 0; b < num_boards; ++b) {
    const Board& board = boards[b];
    stats.dram.requests += board.channel.stats().requests;
    stats.dram.beats += board.channel.stats().beats;
    stats.dram.bytes += board.channel.stats().bytes;
    stats.dram.busy_cycles += board.channel.stats().busy_cycles;
    stats.dram.useful_bytes += board.channel.stats().useful_bytes;
    stats.network.messages += board.link.stats().messages;
    stats.network.payload_bytes += board.link.stats().payload_bytes;
    stats.network.busy_cycles += board.link.stats().busy_cycles;
    if (metrics != nullptr) {
      // Per-partition load balance: one label set per board.
      const obs::Labels labels = {{"board", std::to_string(b)}};
      metrics->GetCounter("dist.board.steps", labels)
          ->Increment(board.steps_served);
      metrics->GetCounter("dist.board.migrations_out", labels)
          ->Increment(board.migrations_out);
      metrics->GetCounter("dist.board.dram_bytes", labels)
          ->Increment(board.channel.stats().bytes);
      metrics->GetCounter("dist.board.link_messages", labels)
          ->Increment(board.link.stats().messages);
      metrics->GetCounter("dist.board.link_bytes", labels)
          ->Increment(board.link.stats().payload_bytes);
      metrics->GetGauge("dist.board.busy_until_cycles", labels)
          ->Set(static_cast<double>(board.last_activity));
    }
  }
  stats.cycles = makespan;
  stats.seconds =
      static_cast<double>(makespan) / config_.board.dram.clock_hz;
  if (config_.replicate_graph) {
    stats.per_board_graph_bytes = graph_->ModeledByteSize();
  } else {
    const auto counts = partition_->EdgeCounts(*graph_);
    uint64_t max_edges = 0;
    for (const uint64_t c : counts) {
      max_edges = std::max(max_edges, c);
    }
    stats.per_board_graph_bytes =
        max_edges * graph::kBytesPerEdgeRecord +
        (graph_->num_vertices() + 1) * graph::kBytesPerRowRecord /
            partition_->num_boards();
  }

  if (output != nullptr) {
    for (auto& path : finished) {
      output->vertices.insert(output->vertices.end(), path.begin(),
                              path.end());
      output->offsets.push_back(
          static_cast<uint32_t>(output->vertices.size()));
    }
  }
  return stats;
}

}  // namespace lightrw::distributed
