#include "distributed/dist_engine.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "common/bits.h"
#include "common/check.h"
#include "distributed/config_validation.h"
#include "lightrw/burst_engine.h"
#include "lightrw/step_sampler.h"
#include "lightrw/vertex_cache.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rng/rng.h"

namespace lightrw::distributed {

namespace {

using apps::WalkState;
using graph::VertexId;
using hwsim::Cycle;

// Trace track (tid) layout within one board's pid.
enum BoardTrack : uint32_t {
  kBoardDramTrack = 0,
  kBoardNetTrack = 1,
};

// Per-board datapath: one LightRW accelerator channel plus an egress link.
struct Board {
  Board(const core::AcceleratorConfig& config,
        const hwsim::LinkConfig& link_config, uint64_t seed)
      : channel(config.dram),
        burst(&channel, config.burst),
        cache(core::MakeVertexCache(config.cache_kind, config.cache_entries)),
        rng(config.sampler_parallelism, seed),
        sampler(config.sampler_parallelism, &rng),
        link(link_config) {}

  hwsim::DramChannel channel;
  core::DynamicBurstEngine burst;
  std::unique_ptr<core::VertexCache> cache;
  rng::ThunderingRng rng;
  core::StepSampler sampler;
  hwsim::NetworkLink link;
  hwsim::Cycle sampler_busy = 0;  // the k-wide sampler unit is shared
  uint64_t steps_served = 0;      // steps executed on this board
  uint64_t migrations_out = 0;    // walkers shipped off this board
  hwsim::Cycle last_activity = 0; // latest step completion on this board
  // Deterministic fault schedules (one stream per fault domain) and the
  // counters their events land in.
  reliability::FaultStream dram_faults;
  reliability::FaultStream link_faults;
  reliability::ReliabilityStats rel;
};

enum class Phase { kInfo, kFetch };

// Periodic walker-state snapshot: everything failover needs to resume the
// walk from the checkpointed step on another board.
struct Checkpoint {
  WalkState state;
  uint32_t path_len = 1;
  uint64_t epoch = 0;  // checkpoint interval index of the snapshot
};

struct Walker {
  WalkState state;
  uint32_t remaining = 0;
  size_t query_index = 0;
  BoardId board = 0;
  Phase phase = Phase::kInfo;
  std::vector<VertexId> path;
  Checkpoint ckpt;
};

}  // namespace

DistributedEngine::DistributedEngine(const graph::CsrGraph* graph,
                                     const apps::WalkApp* app,
                                     const Partition* partition,
                                     const DistributedConfig& config)
    : graph_(graph), app_(app), partition_(partition), config_(config) {
  LIGHTRW_CHECK(graph != nullptr);
  LIGHTRW_CHECK(app != nullptr);
  LIGHTRW_CHECK(partition != nullptr);
  LIGHTRW_CHECK_EQ(partition->owners().size(), graph->num_vertices());
}

StatusOr<DistributedRunStats> DistributedEngine::Run(
    std::span<const apps::WalkQuery> queries,
    baseline::WalkOutput* output) {
  LIGHTRW_RETURN_IF_ERROR(ValidateDistributedConfig(config_));
  DistributedRunStats stats;
  const BoardId num_boards = partition_->num_boards();
  const reliability::FaultConfig& faults = config_.board.faults;
  const bool failure_scheduled = faults.enabled && faults.fail_cycle > 0;
  if (failure_scheduled) {
    if (faults.fail_board >= num_boards) {
      return InvalidArgumentError(
          "faults.fail_board " + std::to_string(faults.fail_board) +
          " out of range for " + std::to_string(num_boards) + " board(s)");
    }
    if (num_boards < 2) {
      return FailedPreconditionError(
          "board failover needs at least 2 boards (no survivor to recover "
          "onto)");
    }
  }
  // Checkpoints are taken whenever a fault source could force a recovery.
  const bool recovery_possible =
      failure_scheduled ||
      (faults.enabled &&
       (faults.link_drop_rate > 0.0 || faults.link_corrupt_rate > 0.0));
  const bool checkpointing =
      recovery_possible && faults.checkpoint_interval_cycles > 0;
  const uint64_t ckpt_interval =
      checkpointing ? faults.checkpoint_interval_cycles : 0;
  // Recovery-side events (board failure, lost walkers) that belong to the
  // failover logic rather than any one board's datapath.
  reliability::ReliabilityStats recovery_rel;

  obs::TraceRecorder* trace = config_.board.trace;
  std::vector<Board> boards;
  boards.reserve(num_boards);
  for (BoardId b = 0; b < num_boards; ++b) {
    boards.emplace_back(config_.board, config_.link,
                        config_.board.seed + 0x51aab5ULL * (b + 1));
  }
  for (BoardId b = 0; b < num_boards; ++b) {
    Board& board = boards[b];
    if (faults.enabled) {
      board.dram_faults = reliability::FaultStream(faults, b);
      board.link_faults =
          reliability::FaultStream(faults, 0x10000ULL + b);
      board.channel.AttachFaults(&board.dram_faults, &board.rel);
      board.link.AttachFaults(&board.link_faults, &board.rel);
    }
    if (trace != nullptr) {
      trace->NameProcess(b, "board " + std::to_string(b));
      trace->NameTrack(b, kBoardDramTrack, "dram channel");
      trace->NameTrack(b, kBoardNetTrack, "network / faults");
      board.channel.AttachTrace(trace, b, kBoardDramTrack);
    }
  }
  rng::Xoshiro256StarStar stop_gen(config_.board.seed ^ 0x5709ULL);
  const double stop_probability = app_->stop_probability();

  // A board is dead once the scheduled failure cycle has passed.
  auto is_dead = [&](BoardId b, Cycle t) {
    return failure_scheduled && b == faults.fail_board &&
           t >= faults.fail_cycle;
  };
  // Deterministic re-assignment of the dead board's load to a survivor,
  // keyed on a stable salt (vertex id or query index).
  auto survivor_of = [&](uint64_t salt) -> BoardId {
    const BoardId survivors = static_cast<BoardId>(num_boards - 1);
    const BoardId idx = static_cast<BoardId>(salt % survivors);
    return idx >= faults.fail_board ? static_cast<BoardId>(idx + 1) : idx;
  };
  // Owner of vertex `v` at time `t`: the partition owner, except that the
  // dead board's share is served by surviving boards after the failure
  // (replicas in replicate_graph mode, partition re-assignment otherwise).
  auto live_owner = [&](VertexId v, Cycle t) -> BoardId {
    const BoardId owner = partition_->OwnerOf(v);
    return is_dead(owner, t) ? survivor_of(v) : owner;
  };

  // Row lookup through a board's cache (same policy as the single-board
  // engine's LookupNeighborInfo).
  auto lookup_info = [&](Board& board, Cycle t, VertexId v) {
    if (board.cache != nullptr && board.cache->Probe(v)) {
      return t + 1;
    }
    const Cycle done = board.channel.Access(t, 1);
    board.channel.ReportUseful(graph::kBytesPerRowRecord);
    if (board.cache != nullptr) {
      board.cache->Install(v, graph_->Degree(v));
    }
    return done;
  };

  const size_t max_inflight =
      static_cast<size_t>(num_boards) * config_.inflight_walkers_per_board;
  std::vector<Walker> walkers(std::min(max_inflight, queries.size()));
  std::vector<std::vector<VertexId>> finished;
  if (output != nullptr) {
    finished.resize(queries.size());
  }

  using HeapItem = std::pair<Cycle, size_t>;  // (time, walker slot)
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
  size_t next_query = 0;
  Cycle makespan = 0;
  bool failure_observed = false;

  auto take_checkpoint = [&](Walker& w, Board& board, Cycle at) {
    if (!checkpointing) {
      return;
    }
    const uint64_t epoch = at / ckpt_interval;
    if (epoch > w.ckpt.epoch) {
      w.ckpt.state = w.state;
      w.ckpt.path_len = static_cast<uint32_t>(w.path.size());
      w.ckpt.epoch = epoch;
      ++board.rel.checkpoints;
    }
  };

  auto load = [&](size_t slot, Cycle at) {
    if (next_query >= queries.size()) {
      return;
    }
    Walker& w = walkers[slot];
    const apps::WalkQuery& q = queries[next_query];
    w.state = WalkState{};
    w.state.curr = q.start;
    w.remaining = q.length;
    w.query_index = next_query++;
    // Replicated mode keeps a walker on its initial board for its whole
    // life (any board can serve any vertex).
    w.board = config_.replicate_graph
                  ? static_cast<BoardId>(w.query_index % num_boards)
                  : partition_->OwnerOf(q.start);
    if (is_dead(w.board, at)) {
      w.board = survivor_of(config_.replicate_graph ? w.query_index
                                                    : q.start);
    }
    w.phase = Phase::kInfo;
    w.path.clear();
    w.path.push_back(q.start);
    // Dispatch checkpoint: a walker can always be recovered to its start.
    w.ckpt.state = w.state;
    w.ckpt.path_len = 1;
    w.ckpt.epoch = checkpointing ? at / ckpt_interval : 0;
    heap.emplace(at, slot);
  };

  auto retire = [&](size_t slot, Cycle at) {
    Walker& w = walkers[slot];
    if (output != nullptr) {
      finished[w.query_index] = std::move(w.path);
    }
    ++stats.queries;
    makespan = std::max(makespan, at);
    load(slot, at);
  };

  // Rolls a walker back to its checkpoint and re-dispatches it on a
  // surviving board (its state on the old board — resident or in a lost
  // migration message — is gone). Without a checkpoint the walk is lost:
  // it retires truncated and is counted.
  auto recover = [&](size_t slot, Cycle at) {
    Walker& w = walkers[slot];
    if (!checkpointing) {
      ++recovery_rel.walkers_lost;
      ++recovery_rel.walks_failed;
      if (trace != nullptr && trace->accepting()) {
        trace->Instant("walker_lost", "fault", w.board, kBoardNetTrack, at);
      }
      retire(slot, at);
      return;
    }
    recovery_rel.replayed_steps += w.state.step - w.ckpt.state.step;
    w.state = w.ckpt.state;
    w.path.resize(w.ckpt.path_len);
    w.phase = Phase::kInfo;
    w.board = config_.replicate_graph ? survivor_of(w.query_index)
                                      : live_owner(w.state.curr, at);
    const Cycle resume = at + faults.detection_latency_cycles +
                         faults.recovery_cycles_per_walker;
    recovery_rel.recovery_cycles += resume - at;
    ++recovery_rel.walkers_recovered;
    if (trace != nullptr && trace->accepting()) {
      trace->Instant("walker_recovered", "fault", w.board, kBoardNetTrack,
                     resume);
    }
    heap.emplace(resume, slot);
  };

  for (size_t i = 0; i < walkers.size(); ++i) {
    load(i, 0);
  }

  while (!heap.empty()) {
    const auto [now, slot] = heap.top();
    heap.pop();
    Walker& w = walkers[slot];

    // Board failure: any event landing on the dead board after the
    // failure cycle finds the walker's resident state gone and triggers
    // checkpoint recovery.
    if (is_dead(w.board, now)) {
      if (!failure_observed) {
        failure_observed = true;
        ++recovery_rel.board_failures;
        if (trace != nullptr && trace->accepting()) {
          trace->Instant("board_failure", "fault", faults.fail_board,
                         kBoardNetTrack, faults.fail_cycle);
        }
      }
      recover(slot, now);
      continue;
    }
    Board& board = boards[w.board];

    if (w.phase == Phase::kInfo) {
      if (w.state.step >= w.remaining) {
        retire(slot, now);
        continue;
      }
      Cycle t_info = lookup_info(board, now, w.state.curr);
      if (app_->needs_prev_neighbors() &&
          w.state.prev != graph::kInvalidVertex) {
        t_info = std::max(t_info, lookup_info(board, now, w.state.prev));
      }
      if (board.channel.TakeAccessFailure()) {
        // Uncorrectable ECC error on the row lookup: the walk cannot
        // continue from corrupt state.
        ++board.rel.walks_failed;
        retire(slot, t_info);
        continue;
      }
      if (graph_->Degree(w.state.curr) == 0) {
        retire(slot, t_info + config_.board.pipeline_depth_cycles);
        continue;
      }
      w.phase = Phase::kFetch;
      heap.emplace(t_info, slot);
      continue;
    }

    // Phase::kFetch: adjacency stream + sampling on the owner board.
    const uint32_t degree = graph_->Degree(w.state.curr);
    Cycle t_fetch = now;
    if (app_->needs_prev_neighbors() &&
        w.state.prev != graph::kInvalidVertex) {
      const uint32_t prev_degree = graph_->Degree(w.state.prev);
      if (prev_degree > config_.board.prev_neighbor_buffer_edges) {
        t_fetch = board.burst.Fetch(
            t_fetch, static_cast<uint64_t>(prev_degree) *
                         graph::kBytesPerEdgeRecord);
      }
    }
    const Cycle last_data = board.burst.Fetch(
        t_fetch, static_cast<uint64_t>(degree) * graph::kBytesPerEdgeRecord);
    const Cycle first_data =
        t_fetch + config_.board.dram.access_latency_cycles;
    const Cycle consume_start = std::max(first_data, board.sampler_busy);
    board.sampler_busy =
        consume_start + CeilDiv(degree, config_.board.sampler_parallelism);
    const Cycle step_end = std::max(last_data, board.sampler_busy) +
                           config_.board.pipeline_depth_cycles;

    const VertexId next = board.sampler.SampleNext(*graph_, *app_, w.state);
    w.phase = Phase::kInfo;
    if (board.channel.TakeAccessFailure()) {
      // Uncorrectable ECC error in the adjacency stream: the sampled step
      // is based on corrupt data, so the walk fails here.
      ++board.rel.walks_failed;
      retire(slot, step_end);
      continue;
    }
    if (next == graph::kInvalidVertex) {
      retire(slot, step_end);
      continue;
    }
    w.state.prev = w.state.curr;
    w.state.curr = next;
    ++w.state.step;
    ++stats.steps;
    ++board.steps_served;
    board.last_activity = std::max(board.last_activity, step_end);
    w.path.push_back(next);
    take_checkpoint(w, board, step_end);

    const bool stopped =
        stop_probability > 0.0 && stop_gen.NextUnit() < stop_probability;
    if (stopped || w.state.step >= w.remaining) {
      retire(slot, step_end);
      continue;
    }

    BoardId next_board = config_.replicate_graph
                             ? w.board
                             : partition_->OwnerOf(next);
    if (is_dead(next_board, step_end)) {
      next_board = survivor_of(next);
    }
    if (next_board != w.board) {
      // Ship the walker state to the owner of the next vertex; a lost
      // message (retransmission budget exhausted) recovers the walker
      // from its checkpoint.
      const hwsim::LinkDelivery delivery =
          board.link.SendReliable(step_end, config_.walker_message_bytes);
      ++stats.migrations;
      ++board.migrations_out;
      if (!delivery.delivered) {
        recover(slot, delivery.arrival);
        continue;
      }
      w.board = next_board;
      heap.emplace(delivery.arrival, slot);
    } else {
      heap.emplace(step_end, slot);
    }
  }

  obs::MetricsRegistry* metrics = config_.board.metrics;
  stats.reliability.Accumulate(recovery_rel);
  for (BoardId b = 0; b < num_boards; ++b) {
    const Board& board = boards[b];
    stats.dram.requests += board.channel.stats().requests;
    stats.dram.beats += board.channel.stats().beats;
    stats.dram.bytes += board.channel.stats().bytes;
    stats.dram.busy_cycles += board.channel.stats().busy_cycles;
    stats.dram.useful_bytes += board.channel.stats().useful_bytes;
    stats.network.messages += board.link.stats().messages;
    stats.network.payload_bytes += board.link.stats().payload_bytes;
    stats.network.busy_cycles += board.link.stats().busy_cycles;
    stats.reliability.Accumulate(board.rel);
    if (metrics != nullptr) {
      // Per-partition load balance: one label set per board.
      const obs::Labels labels = {{"board", std::to_string(b)}};
      metrics->GetCounter("dist.board.steps", labels)
          ->Increment(board.steps_served);
      metrics->GetCounter("dist.board.migrations_out", labels)
          ->Increment(board.migrations_out);
      metrics->GetCounter("dist.board.dram_bytes", labels)
          ->Increment(board.channel.stats().bytes);
      metrics->GetCounter("dist.board.link_messages", labels)
          ->Increment(board.link.stats().messages);
      metrics->GetCounter("dist.board.link_bytes", labels)
          ->Increment(board.link.stats().payload_bytes);
      metrics->GetGauge("dist.board.busy_until_cycles", labels)
          ->Set(static_cast<double>(board.last_activity));
      reliability::PublishReliabilityMetrics(metrics, board.rel, labels);
    }
  }
  if (metrics != nullptr) {
    // Failover-logic events are cluster-level, not per-board.
    reliability::PublishReliabilityMetrics(metrics, recovery_rel,
                                           {{"board", "cluster"}});
  }
  stats.cycles = makespan;
  stats.seconds =
      static_cast<double>(makespan) / config_.board.dram.clock_hz;
  if (config_.replicate_graph) {
    stats.per_board_graph_bytes = graph_->ModeledByteSize();
  } else {
    const auto counts = partition_->EdgeCounts(*graph_);
    uint64_t max_edges = 0;
    for (const uint64_t c : counts) {
      max_edges = std::max(max_edges, c);
    }
    stats.per_board_graph_bytes =
        max_edges * graph::kBytesPerEdgeRecord +
        (graph_->num_vertices() + 1) * graph::kBytesPerRowRecord /
            partition_->num_boards();
  }

  if (output != nullptr) {
    for (auto& path : finished) {
      output->vertices.insert(output->vertices.end(), path.begin(),
                              path.end());
      output->offsets.push_back(
          static_cast<uint32_t>(output->vertices.size()));
    }
  }
  return stats;
}

}  // namespace lightrw::distributed
