#include "distributed/dist_engine.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/check.h"
#include "distributed/config_validation.h"

namespace lightrw::distributed {

DistributedEngine::DistributedEngine(const graph::CsrGraph* graph,
                                     const apps::WalkApp* app,
                                     const Partition* partition,
                                     const DistributedConfig& config)
    : graph_(graph), app_(app), partition_(partition), config_(config) {
  LIGHTRW_CHECK(graph != nullptr);
  LIGHTRW_CHECK(app != nullptr);
  LIGHTRW_CHECK(partition != nullptr);
  LIGHTRW_CHECK_EQ(partition->owners().size(), graph->num_vertices());
}

StatusOr<DistributedRunStats> DistributedEngine::Run(
    std::span<const apps::WalkQuery> queries,
    baseline::WalkOutput* output) {
  LIGHTRW_RETURN_IF_ERROR(ValidateDistributedConfig(config_));
  const BoardId num_boards = partition_->num_boards();
  LIGHTRW_RETURN_IF_ERROR(CheckFailoverSatisfiable(config_, num_boards));

  DistributedRunStats stats;
  const size_t max_inflight =
      static_cast<size_t>(num_boards) * config_.inflight_walkers_per_board;
  const size_t num_walkers = std::min(max_inflight, queries.size());
  ClusterSim sim(graph_, app_, partition_, config_,
                 static_cast<uint32_t>(num_walkers));

  std::vector<std::vector<graph::VertexId>> finished;
  if (output != nullptr) {
    finished.resize(queries.size());
  }

  size_t next_query = 0;
  auto load = [&](hwsim::Cycle at) {
    if (next_query >= queries.size()) {
      return;
    }
    const size_t qi = next_query++;
    const apps::WalkQuery& q = queries[qi];
    // Replicated mode keeps a walker on its initial board for its whole
    // life (any board can serve any vertex).
    BoardId board = config_.replicate_graph
                        ? static_cast<BoardId>(qi % num_boards)
                        : partition_->OwnerOf(q.start);
    if (sim.IsDead(board, at)) {
      board = sim.SurvivorOf(config_.replicate_graph ? qi : q.start);
    }
    sim.Launch(qi, q, board, at);
  };

  sim.set_on_retire([&](const WalkerEnd& end,
                        std::vector<graph::VertexId>&& path) {
    if (output != nullptr) {
      finished[end.ticket] = std::move(path);
    }
    ++stats.queries;
    // Keep the freed slot busy: the batch workload is closed-loop.
    load(end.at);
  });

  for (size_t i = 0; i < num_walkers; ++i) {
    load(0);
  }
  sim.Drain();
  sim.Finalize(&stats);

  if (output != nullptr) {
    for (auto& path : finished) {
      output->vertices.insert(output->vertices.end(), path.begin(),
                              path.end());
      output->offsets.push_back(
          static_cast<uint32_t>(output->vertices.size()));
    }
  }
  return stats;
}

}  // namespace lightrw::distributed
