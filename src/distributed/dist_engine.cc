#include "distributed/dist_engine.h"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/sim_thread_pool.h"
#include "distributed/config_validation.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace lightrw::distributed {

DistributedEngine::DistributedEngine(const graph::CsrGraph* graph,
                                     const apps::WalkApp* app,
                                     const Partition* partition,
                                     const DistributedConfig& config)
    : graph_(graph), app_(app), partition_(partition), config_(config) {
  LIGHTRW_CHECK(graph != nullptr);
  LIGHTRW_CHECK(app != nullptr);
  LIGHTRW_CHECK(partition != nullptr);
  LIGHTRW_CHECK_EQ(partition->owners().size(), graph->num_vertices());
}

StatusOr<DistributedRunStats> DistributedEngine::Run(
    std::span<const apps::WalkQuery> queries,
    baseline::WalkOutput* output) {
  LIGHTRW_RETURN_IF_ERROR(ValidateDistributedConfig(config_));
  const BoardId num_boards = partition_->num_boards();
  LIGHTRW_RETURN_IF_ERROR(CheckFailoverSatisfiable(config_, num_boards));

  std::vector<std::vector<graph::VertexId>> finished;
  if (output != nullptr) {
    finished.resize(queries.size());
  }

  DistributedRunStats stats;
  // Replicated boards never exchange walkers, so each board is an
  // independent shard: its own ClusterSim, driven closed-loop from its
  // own round-robin slice of the query set, refilled by its own retires.
  // Fault injection couples boards (failover recovers walkers onto
  // survivors), so any enabled fault schedule falls back to the single
  // coupled event loop below.
  const bool sharded = config_.replicate_graph &&
                       !config_.board.faults.enabled && num_boards > 1;
  if (sharded) {
    // All vertices on local board 0 of every shard (replication makes
    // ownership irrelevant; the partition only sizes the sim).
    const Partition single(
        std::vector<BoardId>(graph_->num_vertices(), 0), 1);
    std::vector<std::vector<apps::WalkQuery>> shard_queries(num_boards);
    std::vector<std::vector<size_t>> shard_tickets(num_boards);
    for (size_t i = 0; i < queries.size(); ++i) {
      shard_queries[i % num_boards].push_back(queries[i]);
      shard_tickets[i % num_boards].push_back(i);
    }

    obs::TraceRecorder* shared_trace = config_.board.trace;
    obs::SpanRecorder* shared_spans = config_.board.spans;
    std::vector<DistributedRunStats> shard_stats(num_boards);
    std::vector<std::unique_ptr<obs::TraceRecorder>> trace_shards(
        num_boards);
    std::vector<std::unique_ptr<obs::SpanRecorder>> span_shards(
        num_boards);
    const uint32_t threads =
        SimThreadPool::ResolveThreads(config_.num_threads);
    SimThreadPool::ParallelFor(threads, num_boards, [&](size_t b) {
      DistributedConfig shard_config = config_;
      shard_config.first_board = static_cast<BoardId>(b);
      if (shared_trace != nullptr) {
        trace_shards[b] =
            std::make_unique<obs::TraceRecorder>(shared_trace->config());
        shard_config.board.trace = trace_shards[b].get();
      }
      if (shared_spans != nullptr) {
        // Tickets (= trace ids) are disjoint across shards, so each shard
        // records privately and merges in shard order below.
        span_shards[b] =
            std::make_unique<obs::SpanRecorder>(shared_spans->config());
        shard_config.board.spans = span_shards[b].get();
      }
      const std::vector<apps::WalkQuery>& share = shard_queries[b];
      const std::vector<size_t>& tickets = shard_tickets[b];
      const size_t num_walkers = std::min<size_t>(
          config_.inflight_walkers_per_board, share.size());
      ClusterSim sim(graph_, app_, &single, shard_config,
                     static_cast<uint32_t>(std::max<size_t>(num_walkers,
                                                            1)));
      size_t next_query = 0;
      auto load = [&](hwsim::Cycle at) {
        if (next_query >= share.size()) {
          return;
        }
        const size_t qi = next_query++;
        sim.Launch(tickets[qi], share[qi], /*board=*/0, at);
      };
      sim.set_on_retire([&](const WalkerEnd& end,
                            std::vector<graph::VertexId>&& path) {
        if (output != nullptr) {
          finished[end.ticket] = std::move(path);
        }
        ++shard_stats[b].queries;
        load(end.at);
      });
      for (size_t i = 0; i < num_walkers; ++i) {
        load(0);
      }
      sim.Drain();
      sim.Finalize(&shard_stats[b]);
    });
    for (BoardId b = 0; b < num_boards; ++b) {
      stats.Accumulate(shard_stats[b]);
      if (trace_shards[b] != nullptr) {
        shared_trace->MergeFrom(trace_shards[b].get());
      }
      if (span_shards[b] != nullptr) {
        shared_spans->MergeFrom(span_shards[b].get());
      }
    }
    stats.seconds = static_cast<double>(stats.cycles) /
                    config_.board.dram.clock_hz;
  } else {
    const size_t max_inflight = static_cast<size_t>(num_boards) *
                                config_.inflight_walkers_per_board;
    const size_t num_walkers = std::min(max_inflight, queries.size());
    ClusterSim sim(graph_, app_, partition_, config_,
                   static_cast<uint32_t>(num_walkers));

    size_t next_query = 0;
    auto load = [&](hwsim::Cycle at) {
      if (next_query >= queries.size()) {
        return;
      }
      const size_t qi = next_query++;
      const apps::WalkQuery& q = queries[qi];
      // Replicated mode keeps a walker on its initial board for its
      // whole life (any board can serve any vertex); partitioned mode
      // dispatches to whichever board serves the start vertex's share
      // (the owner, its rebuilt spare, or a survivor).
      BoardId board;
      if (config_.replicate_graph) {
        board = static_cast<BoardId>(qi % num_boards);
        if (!sim.IsAlive(board)) {
          board = sim.SurvivorOf(qi);
        }
      } else {
        board = sim.LiveOwnerOf(q.start);
      }
      sim.Launch(qi, q, board, at);
    };

    sim.set_on_retire([&](const WalkerEnd& end,
                          std::vector<graph::VertexId>&& path) {
      if (output != nullptr) {
        finished[end.ticket] = std::move(path);
      }
      ++stats.queries;
      // Keep the freed slot busy: the batch workload is closed-loop.
      load(end.at);
    });

    for (size_t i = 0; i < num_walkers; ++i) {
      load(0);
    }
    sim.Drain();
    sim.Finalize(&stats);
  }

  if (output != nullptr) {
    for (auto& path : finished) {
      output->vertices.insert(output->vertices.end(), path.begin(),
                              path.end());
      output->offsets.push_back(
          static_cast<uint32_t>(output->vertices.size()));
    }
  }
  return stats;
}

}  // namespace lightrw::distributed
