// Pseudo-random number generation substrate.
//
// The paper's WRS sampler needs k independent uniform random numbers per
// cycle. On the FPGA this is provided by ThundeRiNG (Tan et al., ICS'21),
// which shares one expensive state sequence among many output instances and
// attaches a cheap per-instance decorrelator. ThunderingRng reproduces that
// structure in software: a single 64-bit LCG advances once per batch element,
// and each stream applies its own xor/multiply scrambler so the k outputs of
// a batch are mutually decorrelated and each stream is itself uniform.
//
// SplitMix64 and Xoshiro256StarStar are self-contained reference generators
// used for seeding, the CPU baseline, and tests.

#ifndef LIGHTRW_RNG_RNG_H_
#define LIGHTRW_RNG_RNG_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/check.h"

namespace lightrw::rng {

// SplitMix64 (Steele et al.): a tiny generator whose main job here is
// turning arbitrary seeds into well-mixed 64-bit values.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

// xoshiro256** (Blackman & Vigna): fast, high-quality general-purpose PRNG.
// Used as the CPU baseline's generator and as a reference in tests.
class Xoshiro256StarStar {
 public:
  explicit Xoshiro256StarStar(uint64_t seed);

  uint64_t Next();
  // Uniform 32-bit draw.
  uint32_t Next32() { return static_cast<uint32_t>(Next() >> 32); }
  // Uniform double in [0, 1).
  double NextUnit() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }
  // Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

 private:
  uint64_t s_[4];
};

// Multi-stream generator with ThundeRiNG's shared-state structure.
//
// One LCG state sequence is shared by all streams; stream i applies a
// per-stream decorrelator (xor with a stream-specific offset, an xorshift
// scramble, and a stream-specific odd multiplier). Hardware cost of an
// extra stream is one decorrelator — which is why the paper can afford 64
// streams in 1.2% of the chip — and the software model mirrors that: one
// LCG step plus one scramble per output.
class ThunderingRng {
 public:
  // Creates `num_streams` decorrelated streams. All randomness is
  // reproducible from `seed`.
  ThunderingRng(size_t num_streams, uint64_t seed);

  size_t num_streams() const { return offsets_.size(); }

  // Draws the next 32-bit output of stream `stream`. Streams advance
  // independently (each keeps its own position in the shared sequence, as
  // the hardware instances consume one shared state per cycle).
  uint32_t Next(size_t stream);

  // Uniform double in [0, 1) from stream `stream`.
  double NextUnit(size_t stream) {
    return static_cast<double>(Next(stream)) * 0x1.0p-32;
  }

  // Draws one output from every stream, as the hardware does per cycle.
  // out.size() must equal num_streams().
  void NextBatch(std::span<uint32_t> out);

 private:
  static uint64_t LcgAdvance(uint64_t s) {
    // Knuth's MMIX multiplier; full-period mod 2^64 LCG.
    return s * 6364136223846793005ULL + 1442695040888963407ULL;
  }

  uint32_t Decorrelate(uint64_t shared, size_t stream) const;

  uint64_t seed_state_;
  std::vector<uint64_t> states_;       // per-stream position in shared seq
  std::vector<uint64_t> offsets_;      // per-stream xor offset
  std::vector<uint64_t> multipliers_;  // per-stream odd multiplier
};

}  // namespace lightrw::rng

#endif  // LIGHTRW_RNG_RNG_H_
