// Statistical test helpers used to validate RNG quality and sampler
// correctness. The paper validates ThundeRiNG with TestU01; here we use
// chi-square goodness-of-fit and correlation statistics, which are
// sufficient to catch broken decorrelation or biased samplers in tests.

#ifndef LIGHTRW_RNG_STAT_TESTS_H_
#define LIGHTRW_RNG_STAT_TESTS_H_

#include <cstdint>
#include <span>
#include <vector>

namespace lightrw::rng {

// Result of a chi-square goodness-of-fit test.
struct ChiSquareResult {
  double statistic = 0.0;
  double degrees_of_freedom = 0.0;
  // Upper-tail p-value via the Wilson-Hilferty normal approximation;
  // accurate enough for pass/fail thresholds at df >= 5.
  double p_value = 0.0;
};

// Tests observed bucket counts against expected counts.
// observed.size() == expected.size() >= 2.
ChiSquareResult ChiSquareTest(std::span<const uint64_t> observed,
                              std::span<const double> expected);

// Tests uniformity of 32-bit samples over `num_bins` equal bins.
ChiSquareResult ChiSquareUniform32(std::span<const uint32_t> samples,
                                   size_t num_bins);

// Pearson correlation between two equal-length sequences, mapped to [0,1)
// from 32-bit samples. Near zero for independent streams.
double PearsonCorrelation32(std::span<const uint32_t> a,
                            std::span<const uint32_t> b);

// Lag-1 serial correlation of one sequence.
double SerialCorrelation32(std::span<const uint32_t> samples);

// Standard normal upper-tail probability.
double StdNormalUpperTail(double z);

}  // namespace lightrw::rng

#endif  // LIGHTRW_RNG_STAT_TESTS_H_
