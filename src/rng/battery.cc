#include "rng/battery.h"

#include <bit>
#include <cmath>

#include "common/check.h"

namespace lightrw::rng {

namespace {

BatteryTestResult FromZScore(std::string name, double z) {
  BatteryTestResult result;
  result.name = std::move(name);
  result.statistic = z;
  // Two-sided: both excesses and deficits are failures.
  result.p_value = 2.0 * StdNormalUpperTail(std::abs(z));
  return result;
}

BatteryTestResult FromChiSquare(std::string name,
                                const ChiSquareResult& chi) {
  BatteryTestResult result;
  result.name = std::move(name);
  result.statistic = chi.statistic;
  result.p_value = chi.p_value;
  return result;
}

}  // namespace

BatteryTestResult MonobitTest(std::span<const uint32_t> samples) {
  LIGHTRW_CHECK(!samples.empty());
  uint64_t ones = 0;
  for (const uint32_t s : samples) {
    ones += std::popcount(s);
  }
  const double n_bits = 32.0 * static_cast<double>(samples.size());
  const double z = (static_cast<double>(ones) - n_bits / 2.0) /
                   std::sqrt(n_bits / 4.0);
  return FromZScore("monobit", z);
}

BatteryTestResult BitBalanceTest(std::span<const uint32_t> samples) {
  LIGHTRW_CHECK(!samples.empty());
  std::vector<uint64_t> ones(32, 0);
  for (const uint32_t s : samples) {
    for (int b = 0; b < 32; ++b) {
      ones[b] += (s >> b) & 1u;
    }
  }
  // Chi-square of each bit's one-count against n/2; sum over bits has
  // 32 degrees of freedom (approximated via ChiSquareTest on 2x32 cells).
  std::vector<uint64_t> observed;
  std::vector<double> expected;
  for (int b = 0; b < 32; ++b) {
    observed.push_back(ones[b]);
    observed.push_back(samples.size() - ones[b]);
    expected.push_back(samples.size() / 2.0);
    expected.push_back(samples.size() / 2.0);
  }
  return FromChiSquare("bit_balance", ChiSquareTest(observed, expected));
}

BatteryTestResult RunsTest(std::span<const uint32_t> samples) {
  LIGHTRW_CHECK(samples.size() >= 16);
  // Runs above/below the theoretical median 2^31.
  size_t n_above = 0;
  for (const uint32_t s : samples) {
    n_above += s >= 0x80000000u ? 1 : 0;
  }
  const size_t n_below = samples.size() - n_above;
  uint64_t runs = 1;
  for (size_t i = 1; i < samples.size(); ++i) {
    const bool prev = samples[i - 1] >= 0x80000000u;
    const bool curr = samples[i] >= 0x80000000u;
    runs += prev != curr ? 1 : 0;
  }
  const double n1 = static_cast<double>(n_above);
  const double n2 = static_cast<double>(n_below);
  const double n = n1 + n2;
  if (n1 == 0 || n2 == 0) {
    BatteryTestResult result;
    result.name = "runs";
    result.p_value = 0.0;  // constant sequence: certain failure
    return result;
  }
  const double mean = 2.0 * n1 * n2 / n + 1.0;
  const double variance =
      2.0 * n1 * n2 * (2.0 * n1 * n2 - n) / (n * n * (n - 1.0));
  const double z = (static_cast<double>(runs) - mean) / std::sqrt(variance);
  return FromZScore("runs", z);
}

BatteryTestResult PokerTest(std::span<const uint32_t> samples) {
  LIGHTRW_CHECK(!samples.empty());
  std::vector<uint64_t> hands(16, 0);
  for (const uint32_t s : samples) {
    for (int shift = 0; shift < 32; shift += 4) {
      ++hands[(s >> shift) & 0xF];
    }
  }
  const double total = 8.0 * static_cast<double>(samples.size());
  std::vector<double> expected(16, total / 16.0);
  return FromChiSquare("poker", ChiSquareTest(hands, expected));
}

BatteryTestResult GapTest(std::span<const uint32_t> samples) {
  LIGHTRW_CHECK(samples.size() >= 256);
  // Mark samples in the lowest eighth of the range; gap lengths between
  // marks are geometric with p = 1/8. Bucket gaps 0..15 plus overflow.
  constexpr uint32_t kBound = 0x20000000u;  // 2^32 / 8
  constexpr double kP = 1.0 / 8.0;
  std::vector<uint64_t> gaps(17, 0);
  uint64_t gap = 0;
  uint64_t marks = 0;
  for (const uint32_t s : samples) {
    if (s < kBound) {
      ++gaps[gap < 16 ? gap : 16];
      ++marks;
      gap = 0;
    } else {
      ++gap;
    }
  }
  if (marks < 32) {
    BatteryTestResult result;
    result.name = "gap";
    result.p_value = 0.0;
    return result;
  }
  std::vector<double> expected(17);
  for (int g = 0; g < 16; ++g) {
    // P(gap == g) = (1-p)^g * p for a geometric gap distribution.
    expected[g] = static_cast<double>(marks) * std::pow(1.0 - kP, g) * kP;
  }
  expected[16] = static_cast<double>(marks) * std::pow(1.0 - kP, 16);
  // Guard tiny expected counts.
  for (auto& e : expected) {
    e = std::max(e, 1e-6);
  }
  return FromChiSquare("gap", ChiSquareTest(gaps, expected));
}

BatteryTestResult SerialCorrelationTest(std::span<const uint32_t> samples) {
  LIGHTRW_CHECK(samples.size() >= 16);
  // A degenerate (constant) sequence has undefined correlation; it is
  // certainly not random.
  bool constant = true;
  for (size_t i = 1; i < samples.size() && constant; ++i) {
    constant = samples[i] == samples[0];
  }
  if (constant) {
    BatteryTestResult result;
    result.name = "serial_correlation";
    result.p_value = 0.0;
    return result;
  }
  const double corr = SerialCorrelation32(samples);
  // Under independence, corr ~ N(0, 1/n).
  const double z = corr * std::sqrt(static_cast<double>(samples.size()));
  return FromZScore("serial_correlation", z);
}

BatteryResult RunBattery(const std::function<uint32_t()>& next, size_t n,
                         double threshold) {
  LIGHTRW_CHECK(n >= 1024);
  std::vector<uint32_t> samples(n);
  for (auto& s : samples) {
    s = next();
  }
  BatteryResult result;
  result.tests.push_back(MonobitTest(samples));
  result.tests.push_back(BitBalanceTest(samples));
  result.tests.push_back(RunsTest(samples));
  result.tests.push_back(PokerTest(samples));
  result.tests.push_back(GapTest(samples));
  result.tests.push_back(SerialCorrelationTest(samples));
  for (auto& test : result.tests) {
    test.passed = test.p_value > threshold;
  }
  return result;
}

}  // namespace lightrw::rng
