#include "rng/stat_tests.h"

#include <cmath>

#include "common/check.h"

namespace lightrw::rng {

double StdNormalUpperTail(double z) {
  return 0.5 * std::erfc(z / std::sqrt(2.0));
}

ChiSquareResult ChiSquareTest(std::span<const uint64_t> observed,
                              std::span<const double> expected) {
  LIGHTRW_CHECK_EQ(observed.size(), expected.size());
  LIGHTRW_CHECK_GE(observed.size(), 2u);
  double stat = 0.0;
  for (size_t i = 0; i < observed.size(); ++i) {
    LIGHTRW_CHECK_GT(expected[i], 0.0);
    const double diff = static_cast<double>(observed[i]) - expected[i];
    stat += diff * diff / expected[i];
  }
  ChiSquareResult result;
  result.statistic = stat;
  result.degrees_of_freedom = static_cast<double>(observed.size() - 1);
  // Wilson-Hilferty: (X/df)^(1/3) is approximately normal with
  // mean 1 - 2/(9 df) and variance 2/(9 df).
  const double df = result.degrees_of_freedom;
  const double t = std::cbrt(stat / df);
  const double mu = 1.0 - 2.0 / (9.0 * df);
  const double sigma = std::sqrt(2.0 / (9.0 * df));
  result.p_value = StdNormalUpperTail((t - mu) / sigma);
  return result;
}

ChiSquareResult ChiSquareUniform32(std::span<const uint32_t> samples,
                                   size_t num_bins) {
  LIGHTRW_CHECK_GE(num_bins, 2u);
  std::vector<uint64_t> observed(num_bins, 0);
  for (uint32_t s : samples) {
    // Map the full 32-bit range onto num_bins equal bins.
    const size_t bin = static_cast<size_t>(
        (static_cast<uint64_t>(s) * num_bins) >> 32);
    ++observed[bin];
  }
  std::vector<double> expected(
      num_bins, static_cast<double>(samples.size()) / num_bins);
  return ChiSquareTest(observed, expected);
}

namespace {

double ToUnit(uint32_t x) { return static_cast<double>(x) * 0x1.0p-32; }

}  // namespace

double PearsonCorrelation32(std::span<const uint32_t> a,
                            std::span<const uint32_t> b) {
  LIGHTRW_CHECK_EQ(a.size(), b.size());
  LIGHTRW_CHECK_GE(a.size(), 2u);
  const size_t n = a.size();
  double mean_a = 0.0, mean_b = 0.0;
  for (size_t i = 0; i < n; ++i) {
    mean_a += ToUnit(a[i]);
    mean_b += ToUnit(b[i]);
  }
  mean_a /= static_cast<double>(n);
  mean_b /= static_cast<double>(n);
  double cov = 0.0, var_a = 0.0, var_b = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double da = ToUnit(a[i]) - mean_a;
    const double db = ToUnit(b[i]) - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a == 0.0 || var_b == 0.0) {
    return 0.0;
  }
  return cov / std::sqrt(var_a * var_b);
}

double SerialCorrelation32(std::span<const uint32_t> samples) {
  LIGHTRW_CHECK_GE(samples.size(), 3u);
  return PearsonCorrelation32(samples.subspan(0, samples.size() - 1),
                              samples.subspan(1));
}

}  // namespace lightrw::rng
