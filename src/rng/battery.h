// A TestU01-lite statistical battery for 32-bit generators.
//
// The paper validates ThundeRiNG with TestU01's stringent batteries;
// TestU01 is not available offline, so this module implements the
// classical small battery (frequency, runs, poker, gap, serial
// correlation, and per-bit balance) with chi-square / normal-approximation
// p-values. Used by tests and the RNG quality report.

#ifndef LIGHTRW_RNG_BATTERY_H_
#define LIGHTRW_RNG_BATTERY_H_

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "rng/stat_tests.h"

namespace lightrw::rng {

struct BatteryTestResult {
  std::string name;
  double statistic = 0.0;
  double p_value = 0.0;
  bool passed = false;  // p_value above the configured threshold
};

struct BatteryResult {
  std::vector<BatteryTestResult> tests;
  bool AllPassed() const {
    for (const auto& t : tests) {
      if (!t.passed) {
        return false;
      }
    }
    return !tests.empty();
  }
};

// Individual tests over a sample of 32-bit outputs. All return an
// upper-tail p-value (small = suspicious).

// Monobit/frequency: the total number of one bits is ~ N(16n, 8n).
BatteryTestResult MonobitTest(std::span<const uint32_t> samples);

// Per-bit balance: chi-square over the 32 bit positions' one-counts.
BatteryTestResult BitBalanceTest(std::span<const uint32_t> samples);

// Runs test on the sequence above/below the median.
BatteryTestResult RunsTest(std::span<const uint32_t> samples);

// Poker test: partition each word into 4-bit hands; chi-square on the
// 16-bin histogram of all hands.
BatteryTestResult PokerTest(std::span<const uint32_t> samples);

// Gap test: lengths of gaps between samples falling in [0, 2^32/8).
BatteryTestResult GapTest(std::span<const uint32_t> samples);

// Lag-1 serial correlation, normal-approximated.
BatteryTestResult SerialCorrelationTest(std::span<const uint32_t> samples);

// Runs the whole battery on `n` draws from `next`. Tests pass when their
// p-value exceeds `threshold` (default 1e-4, the conventional TestU01
// "clear failure" cutoff).
BatteryResult RunBattery(const std::function<uint32_t()>& next, size_t n,
                         double threshold = 1e-4);

}  // namespace lightrw::rng

#endif  // LIGHTRW_RNG_BATTERY_H_
