#include "rng/rng.h"

namespace lightrw::rng {

namespace {

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Xoshiro256StarStar::Xoshiro256StarStar(uint64_t seed) {
  SplitMix64 mix(seed);
  for (auto& s : s_) {
    s = mix.Next();
  }
}

uint64_t Xoshiro256StarStar::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Xoshiro256StarStar::NextBounded(uint64_t bound) {
  LIGHTRW_DCHECK(bound > 0);
  // Lemire's multiply-shift rejection method.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    const uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

ThunderingRng::ThunderingRng(size_t num_streams, uint64_t seed) {
  LIGHTRW_CHECK(num_streams >= 1);
  SplitMix64 mix(seed);
  seed_state_ = mix.Next();
  states_.assign(num_streams, seed_state_);
  offsets_.reserve(num_streams);
  multipliers_.reserve(num_streams);
  for (size_t i = 0; i < num_streams; ++i) {
    offsets_.push_back(mix.Next());
    multipliers_.push_back(mix.Next() | 1ULL);  // odd => bijective mod 2^64
  }
}

uint32_t ThunderingRng::Decorrelate(uint64_t shared, size_t stream) const {
  // Per-stream scrambler: xor offset, xorshift mix, odd multiply. Each step
  // is a bijection on 64-bit words, so each stream remains uniform; the
  // stream-specific constants break cross-stream correlation of the shared
  // sequence.
  uint64_t z = shared ^ offsets_[stream];
  z ^= z >> 29;
  z *= multipliers_[stream];
  z ^= z >> 32;
  return static_cast<uint32_t>(z);
}

uint32_t ThunderingRng::Next(size_t stream) {
  LIGHTRW_DCHECK(stream < states_.size());
  states_[stream] = LcgAdvance(states_[stream]);
  return Decorrelate(states_[stream], stream);
}

void ThunderingRng::NextBatch(std::span<uint32_t> out) {
  LIGHTRW_CHECK_EQ(out.size(), states_.size());
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = Next(i);
  }
}

}  // namespace lightrw::rng
