#include "common/flags.h"

#include <cstdlib>

#include "common/check.h"

namespace lightrw {

void FlagParser::Define(const std::string& name, const std::string& help,
                        const std::string& default_value) {
  LIGHTRW_CHECK(!name.empty());
  flags_[name] = Flag{help, default_value};
}

Status FlagParser::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    std::string name, value;
    bool has_value = false;
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      has_value = true;
    } else {
      name = arg;
    }
    const auto it = flags_.find(name);
    if (it == flags_.end()) {
      return InvalidArgumentError("unknown flag --" + name);
    }
    if (!has_value) {
      // --name value form, or a bare boolean.
      if (i + 1 < argc && argv[i + 1][0] != '-' &&
          !(it->second.value == "true" || it->second.value == "false")) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    it->second.value = value;
  }
  return Status::Ok();
}

const std::string& FlagParser::GetString(const std::string& name) const {
  const auto it = flags_.find(name);
  LIGHTRW_CHECK(it != flags_.end());
  return it->second.value;
}

int64_t FlagParser::GetInt(const std::string& name) const {
  const std::string& value = GetString(name);
  char* end = nullptr;
  const long long parsed = std::strtoll(value.c_str(), &end, 10);
  LIGHTRW_CHECK(end != value.c_str() && *end == '\0');
  return parsed;
}

double FlagParser::GetDouble(const std::string& name) const {
  const std::string& value = GetString(name);
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  LIGHTRW_CHECK(end != value.c_str() && *end == '\0');
  return parsed;
}

bool FlagParser::GetBool(const std::string& name) const {
  const std::string& value = GetString(name);
  if (value == "true" || value == "1" || value == "yes") {
    return true;
  }
  if (value == "false" || value == "0" || value == "no") {
    return false;
  }
  LIGHTRW_CHECK(false && "boolean flag must be true/false/1/0/yes/no");
  return false;
}

std::string FlagParser::HelpText() const {
  std::string out;
  for (const auto& [name, flag] : flags_) {
    out += "  --" + name + " (default: " + flag.value + ")\n      " +
           flag.help + "\n";
  }
  return out;
}

}  // namespace lightrw
