#include "common/flags.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "common/check.h"

namespace lightrw {

namespace {

bool ParseIntValue(const std::string& value, int64_t* out) {
  if (value.empty()) {
    return false;
  }
  char* end = nullptr;
  errno = 0;
  const long long parsed = std::strtoll(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0' || errno == ERANGE) {
    return false;
  }
  *out = parsed;
  return true;
}

bool ParseDoubleValue(const std::string& value, double* out) {
  if (value.empty()) {
    return false;
  }
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') {
    return false;
  }
  *out = parsed;
  return true;
}

bool ParseBoolValue(const std::string& value, bool* out) {
  if (value == "true" || value == "1" || value == "yes") {
    *out = true;
    return true;
  }
  if (value == "false" || value == "0" || value == "no") {
    *out = false;
    return true;
  }
  return false;
}

}  // namespace

void FlagParser::Define(const std::string& name, const std::string& help,
                        const std::string& default_value) {
  LIGHTRW_CHECK(!name.empty());
  flags_[name] = Flag{help, default_value, FlagType::kString};
}

void FlagParser::DefineInt(const std::string& name, const std::string& help,
                           int64_t default_value) {
  LIGHTRW_CHECK(!name.empty());
  flags_[name] = Flag{help, std::to_string(default_value), FlagType::kInt};
}

void FlagParser::DefineDouble(const std::string& name,
                              const std::string& help,
                              double default_value) {
  LIGHTRW_CHECK(!name.empty());
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", default_value);
  flags_[name] = Flag{help, buf, FlagType::kDouble};
}

void FlagParser::DefineBool(const std::string& name, const std::string& help,
                            bool default_value) {
  LIGHTRW_CHECK(!name.empty());
  flags_[name] =
      Flag{help, default_value ? "true" : "false", FlagType::kBool};
}

Status FlagParser::CheckValue(const std::string& name,
                              const std::string& value, FlagType type) {
  bool ok = true;
  const char* expected = "";
  switch (type) {
    case FlagType::kString:
      break;
    case FlagType::kInt: {
      int64_t unused;
      ok = ParseIntValue(value, &unused);
      expected = "a decimal integer";
      break;
    }
    case FlagType::kDouble: {
      double unused;
      ok = ParseDoubleValue(value, &unused);
      expected = "a number";
      break;
    }
    case FlagType::kBool: {
      bool unused;
      ok = ParseBoolValue(value, &unused);
      expected = "true/false/1/0/yes/no";
      break;
    }
  }
  return ok ? Status::Ok()
            : InvalidArgumentError("invalid value '" + value + "' for --" +
                                   name + ": expected " + expected);
}

Status FlagParser::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    std::string name, value;
    bool has_value = false;
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      has_value = true;
    } else {
      name = arg;
    }
    const auto it = flags_.find(name);
    if (it == flags_.end()) {
      return InvalidArgumentError("unknown flag --" + name);
    }
    if (!has_value) {
      // --name value form, or a bare boolean. String-typed flags whose
      // current value spells a boolean keep the legacy bare-flag
      // behavior.
      const bool boolean_like =
          it->second.type == FlagType::kBool ||
          (it->second.type == FlagType::kString &&
           (it->second.value == "true" || it->second.value == "false"));
      if (i + 1 < argc && argv[i + 1][0] != '-' && !boolean_like) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    LIGHTRW_RETURN_IF_ERROR(CheckValue(name, value, it->second.type));
    it->second.value = value;
  }
  return Status::Ok();
}

const std::string& FlagParser::GetString(const std::string& name) const {
  const auto it = flags_.find(name);
  LIGHTRW_CHECK(it != flags_.end());
  return it->second.value;
}

int64_t FlagParser::GetInt(const std::string& name) const {
  int64_t parsed = 0;
  LIGHTRW_CHECK(ParseIntValue(GetString(name), &parsed));
  return parsed;
}

double FlagParser::GetDouble(const std::string& name) const {
  double parsed = 0.0;
  LIGHTRW_CHECK(ParseDoubleValue(GetString(name), &parsed));
  return parsed;
}

bool FlagParser::GetBool(const std::string& name) const {
  bool parsed = false;
  LIGHTRW_CHECK(ParseBoolValue(GetString(name), &parsed) &&
                "boolean flag must be true/false/1/0/yes/no");
  return parsed;
}

std::string FlagParser::HelpText() const {
  std::string out;
  for (const auto& [name, flag] : flags_) {
    out += "  --" + name + " (default: " + flag.value + ")\n      " +
           flag.help + "\n";
  }
  return out;
}

}  // namespace lightrw
