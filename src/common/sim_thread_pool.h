// Deterministic parallel execution of independent simulation shards.
//
// Every parallel path in this repo follows the same discipline: the work
// is decomposed into shards that are fixed by the *configuration*
// (accelerator instances, cluster boards, service admission shards,
// bench sweep points) — never by the thread count — each shard owns its
// state (RNG streams, datapath models, metrics/trace buffers, stats
// accumulators) and writes results only into its own slot, and the
// caller merges the slots in shard-index order after the barrier. Under
// that discipline the merged result is a pure function of the shard
// decomposition: running with 1 thread or N threads is bit-identical,
// and the thread count only changes wall-clock time.
//
// SimThreadPool is the small engine behind it: ParallelFor(threads, n,
// fn) claims shard indices from an atomic counter and runs fn(shard) on
// up to `threads` workers (the calling thread participates, so threads
// == 1 degenerates to a plain serial loop with no thread spawned).
//
// The process-wide default thread count is 1 unless overridden by the
// LIGHTRW_SIM_THREADS environment variable or SetDefaultThreads() (the
// --threads flag of walk_tool and the benches). Engine configs carry a
// num_threads field where 0 means "use the default"; passing the
// resolved value through ResolveThreads() clamps it to [1, kMaxThreads].

#ifndef LIGHTRW_COMMON_SIM_THREAD_POOL_H_
#define LIGHTRW_COMMON_SIM_THREAD_POOL_H_

#include <cstddef>
#include <cstdint>
#include <functional>

namespace lightrw {

class SimThreadPool {
 public:
  // Hard cap on worker threads; requests beyond it are clamped.
  static constexpr uint32_t kMaxThreads = 256;

  // The process-wide default: SetDefaultThreads() if called, else
  // LIGHTRW_SIM_THREADS (read once), else 1.
  static uint32_t DefaultThreads();

  // Overrides the default for the rest of the process (0 restores the
  // environment/1 fallback). Not meant to be raced with running
  // ParallelFor calls; tools set it once at startup.
  static void SetDefaultThreads(uint32_t n);

  // Maps a config-level request to an executable thread count:
  // 0 -> DefaultThreads(), otherwise the request, clamped to
  // [1, kMaxThreads].
  static uint32_t ResolveThreads(uint32_t requested);

  // Runs fn(shard) for every shard in [0, num_shards) on up to `threads`
  // concurrent workers (clamped to num_shards; the calling thread is one
  // of them). Shard indices are claimed atomically, so which worker runs
  // which shard is unspecified — fn must write only shard-owned state.
  // Returns after all shards complete (a full barrier).
  static void ParallelFor(uint32_t threads, size_t num_shards,
                          const std::function<void(size_t)>& fn);
};

}  // namespace lightrw

#endif  // LIGHTRW_COMMON_SIM_THREAD_POOL_H_
