#include "common/sim_thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

namespace lightrw {

namespace {

uint32_t Clamp(uint32_t n) {
  return std::clamp<uint32_t>(n, 1, SimThreadPool::kMaxThreads);
}

uint32_t EnvDefault() {
  const char* value = std::getenv("LIGHTRW_SIM_THREADS");
  if (value == nullptr || *value == '\0') {
    return 1;
  }
  const unsigned long parsed = std::strtoul(value, nullptr, 10);
  if (parsed == 0) {
    return 1;
  }
  return Clamp(static_cast<uint32_t>(
      std::min<unsigned long>(parsed, SimThreadPool::kMaxThreads)));
}

// 0 = "not overridden": fall back to the environment.
std::atomic<uint32_t> g_default_threads{0};

}  // namespace

uint32_t SimThreadPool::DefaultThreads() {
  const uint32_t overridden =
      g_default_threads.load(std::memory_order_relaxed);
  if (overridden != 0) {
    return overridden;
  }
  static const uint32_t from_env = EnvDefault();
  return from_env;
}

void SimThreadPool::SetDefaultThreads(uint32_t n) {
  g_default_threads.store(n == 0 ? 0 : Clamp(n),
                          std::memory_order_relaxed);
}

uint32_t SimThreadPool::ResolveThreads(uint32_t requested) {
  return requested == 0 ? DefaultThreads() : Clamp(requested);
}

void SimThreadPool::ParallelFor(uint32_t threads, size_t num_shards,
                                const std::function<void(size_t)>& fn) {
  if (num_shards == 0) {
    return;
  }
  const uint32_t workers = static_cast<uint32_t>(std::min<size_t>(
      Clamp(threads), num_shards));
  if (workers <= 1) {
    for (size_t shard = 0; shard < num_shards; ++shard) {
      fn(shard);
    }
    return;
  }
  std::atomic<size_t> next{0};
  auto run = [&next, num_shards, &fn] {
    for (;;) {
      const size_t shard = next.fetch_add(1, std::memory_order_relaxed);
      if (shard >= num_shards) {
        return;
      }
      fn(shard);
    }
  };
  std::vector<std::thread> helpers;
  helpers.reserve(workers - 1);
  for (uint32_t t = 0; t + 1 < workers; ++t) {
    helpers.emplace_back(run);
  }
  run();
  for (std::thread& helper : helpers) {
    helper.join();
  }
}

}  // namespace lightrw
