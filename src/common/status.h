// Minimal Status / StatusOr error-reporting types.
//
// LightRW is exception-free: fallible operations (parsing a graph file,
// validating a configuration) return Status or StatusOr<T>.

#ifndef LIGHTRW_COMMON_STATUS_H_
#define LIGHTRW_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "common/check.h"

namespace lightrw {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  kIoError,
};

// Returns a stable human-readable name, e.g. "INVALID_ARGUMENT".
std::string_view StatusCodeName(StatusCode code);

// Value-type result of a fallible operation: a code plus a message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "INVALID_ARGUMENT: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
inline Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
inline Status OutOfRangeError(std::string message) {
  return Status(StatusCode::kOutOfRange, std::move(message));
}
inline Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
inline Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
inline Status UnimplementedError(std::string message) {
  return Status(StatusCode::kUnimplemented, std::move(message));
}
inline Status IoError(std::string message) {
  return Status(StatusCode::kIoError, std::move(message));
}

// Holds either a T or a non-OK Status. Accessing the value of a non-OK
// StatusOr aborts, so call ok() first on fallible paths.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    LIGHTRW_CHECK(!status_.ok());
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    LIGHTRW_CHECK(ok());
    return *value_;
  }
  T& value() & {
    LIGHTRW_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    LIGHTRW_CHECK(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagates a non-OK status to the caller.
#define LIGHTRW_RETURN_IF_ERROR(expr)          \
  do {                                         \
    ::lightrw::Status status_macro_ = (expr);  \
    if (!status_macro_.ok()) {                 \
      return status_macro_;                    \
    }                                          \
  } while (0)

}  // namespace lightrw

#endif  // LIGHTRW_COMMON_STATUS_H_
