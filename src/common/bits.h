// Small integer and bit-manipulation helpers shared by the samplers,
// cache models, and burst scheduling logic.

#ifndef LIGHTRW_COMMON_BITS_H_
#define LIGHTRW_COMMON_BITS_H_

#include <bit>
#include <cstdint>

#include "common/check.h"

namespace lightrw {

// ceil(a / b) for positive integers.
constexpr uint64_t CeilDiv(uint64_t a, uint64_t b) {
  LIGHTRW_DCHECK(b != 0);
  return (a + b - 1) / b;
}

// Rounds `a` up to the next multiple of `b`.
constexpr uint64_t RoundUp(uint64_t a, uint64_t b) { return CeilDiv(a, b) * b; }

constexpr bool IsPowerOfTwo(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

// Smallest power of two >= x (x must be >= 1).
constexpr uint64_t NextPowerOfTwo(uint64_t x) {
  LIGHTRW_DCHECK(x >= 1);
  return std::bit_ceil(x);
}

// floor(log2(x)) for x >= 1.
constexpr uint32_t FloorLog2(uint64_t x) {
  LIGHTRW_DCHECK(x >= 1);
  return 63 - static_cast<uint32_t>(std::countl_zero(x));
}

// ceil(log2(x)) for x >= 1.
constexpr uint32_t CeilLog2(uint64_t x) {
  LIGHTRW_DCHECK(x >= 1);
  return x == 1 ? 0 : FloorLog2(x - 1) + 1;
}

}  // namespace lightrw

#endif  // LIGHTRW_COMMON_BITS_H_
