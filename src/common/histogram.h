// Sample accumulator with exact quantiles, used for the latency
// distribution study (paper Fig. 15) and test assertions.

#ifndef LIGHTRW_COMMON_HISTOGRAM_H_
#define LIGHTRW_COMMON_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lightrw {

// Collects double-valued samples and reports order statistics. Quantiles
// are exact (computed over the stored samples), which is fine at the scales
// used here (tens of thousands of per-query latencies).
//
// Edge cases are defined, not UB: every statistic of an empty accumulator
// is 0.0 (callers that must distinguish "no data" check count() first),
// and a single-sample accumulator reports Min == Max == Mean ==
// Quantile(q) == the sample, with StdDev 0.0.
class SampleStats {
 public:
  void Add(double value);
  void Reserve(size_t n) { samples_.reserve(n); }

  // Appends all of `other`'s samples (used to combine per-worker stats).
  void Merge(const SampleStats& other);

  size_t count() const { return samples_.size(); }
  double sum() const { return sum_; }
  double Mean() const;
  double Min() const;
  double Max() const;
  // q in [0, 1] (checked). Hyndman & Fan type 7 (the R/NumPy default):
  // with n sorted samples x[0..n-1], the quantile sits at fractional
  // rank h = q*(n-1); the result is x[floor(h)] linearly interpolated
  // toward x[floor(h)+1] by h - floor(h). Exact-quantile boundaries are
  // pinned: when h lands within 1e-9 (relative) of an integer — e.g.
  // q = 0.99 over 101 samples, where floating-point can produce
  // h = 98.999...97 instead of 99 — the exact order statistic x[round(h)]
  // is returned rather than an interpolation against a neighbor. So
  // Quantile(0)/Quantile(1) are exactly Min/Max, and any q that maps to
  // an integral rank returns that stored sample bit-for-bit.
  double Quantile(double q) const;
  double Median() const { return Quantile(0.5); }
  // Population standard deviation.
  double StdDev() const;

  // The stored samples, sorted ascending (sorts lazily on first call).
  const std::vector<double>& sorted_samples() const;

  // The stored samples in insertion order. Only meaningful before the
  // first order-statistic query, which may reorder them in place; used
  // to replay per-shard samples into shared sinks in a fixed order.
  const std::vector<double>& raw_samples() const { return samples_; }

 private:
  // Sorts samples_ if new samples arrived since the last query.
  void EnsureSorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  double sum_ = 0.0;
};

// Fixed-bucket counting histogram for integer-valued observations
// (e.g. degrees, burst lengths). Bucket i counts values == i; values at or
// above the bucket count land in the overflow bucket.
class CountHistogram {
 public:
  explicit CountHistogram(size_t num_buckets)
      : buckets_(num_buckets + 1, 0) {}

  void Add(uint64_t value);

  uint64_t total() const { return total_; }
  uint64_t bucket(size_t i) const { return buckets_[i]; }
  uint64_t overflow() const { return buckets_.back(); }
  size_t num_buckets() const { return buckets_.size() - 1; }

 private:
  std::vector<uint64_t> buckets_;
  uint64_t total_ = 0;
};

}  // namespace lightrw

#endif  // LIGHTRW_COMMON_HISTOGRAM_H_
