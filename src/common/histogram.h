// Sample accumulator with exact quantiles, used for the latency
// distribution study (paper Fig. 15) and test assertions.

#ifndef LIGHTRW_COMMON_HISTOGRAM_H_
#define LIGHTRW_COMMON_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lightrw {

// Collects double-valued samples and reports order statistics. Quantiles
// are exact (computed over the stored samples), which is fine at the scales
// used here (tens of thousands of per-query latencies).
//
// Edge cases are defined, not UB: every statistic of an empty accumulator
// is 0.0 (callers that must distinguish "no data" check count() first),
// and a single-sample accumulator reports Min == Max == Mean ==
// Quantile(q) == the sample, with StdDev 0.0.
class SampleStats {
 public:
  void Add(double value);
  void Reserve(size_t n) { samples_.reserve(n); }

  // Appends all of `other`'s samples (used to combine per-worker stats).
  void Merge(const SampleStats& other);

  size_t count() const { return samples_.size(); }
  double sum() const { return sum_; }
  double Mean() const;
  double Min() const;
  double Max() const;
  // q in [0, 1] (checked); linear interpolation between closest ranks.
  double Quantile(double q) const;
  double Median() const { return Quantile(0.5); }
  // Population standard deviation.
  double StdDev() const;

  // The stored samples, sorted ascending (sorts lazily on first call).
  const std::vector<double>& sorted_samples() const;

  // The stored samples in insertion order. Only meaningful before the
  // first order-statistic query, which may reorder them in place; used
  // to replay per-shard samples into shared sinks in a fixed order.
  const std::vector<double>& raw_samples() const { return samples_; }

 private:
  // Sorts samples_ if new samples arrived since the last query.
  void EnsureSorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  double sum_ = 0.0;
};

// Fixed-bucket counting histogram for integer-valued observations
// (e.g. degrees, burst lengths). Bucket i counts values == i; values at or
// above the bucket count land in the overflow bucket.
class CountHistogram {
 public:
  explicit CountHistogram(size_t num_buckets)
      : buckets_(num_buckets + 1, 0) {}

  void Add(uint64_t value);

  uint64_t total() const { return total_; }
  uint64_t bucket(size_t i) const { return buckets_[i]; }
  uint64_t overflow() const { return buckets_.back(); }
  size_t num_buckets() const { return buckets_.size() - 1; }

 private:
  std::vector<uint64_t> buckets_;
  uint64_t total_ = 0;
};

}  // namespace lightrw

#endif  // LIGHTRW_COMMON_HISTOGRAM_H_
