// Minimal command-line flag parsing for the example tools.
//
// Supports --name=value and --name value forms plus boolean --name.
// Unrecognized flags are reported as errors; positional arguments are
// collected in order.

#ifndef LIGHTRW_COMMON_FLAGS_H_
#define LIGHTRW_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace lightrw {

// Parsed command line. Typical use:
//
//   FlagParser flags;
//   flags.DefineInt("length", "walk length", 80);
//   flags.DefineBool("verbose", "chatty output", false);
//   LIGHTRW_CHECK(flags.Parse(argc, argv).ok());
//   const uint64_t length = flags.GetInt("length");
//
// Typed definitions validate user-supplied values during Parse, so a
// malformed `--length=abc` surfaces as a Status (tools print it and exit
// nonzero) instead of aborting later inside an accessor.
class FlagParser {
 public:
  // Registers a flag with a default value (all flags are optional). The
  // untyped form accepts any value.
  void Define(const std::string& name, const std::string& help,
              const std::string& default_value);
  // Typed forms: Parse rejects values the matching accessor could not
  // return.
  void DefineInt(const std::string& name, const std::string& help,
                 int64_t default_value);
  void DefineDouble(const std::string& name, const std::string& help,
                    double default_value);
  void DefineBool(const std::string& name, const std::string& help,
                  bool default_value);

  // Parses argv; returns an error for unknown or malformed flags.
  Status Parse(int argc, const char* const* argv);

  // Accessors; the flag must have been Defined.
  const std::string& GetString(const std::string& name) const;
  // Accepts decimal integers; aborts on non-numeric values (use
  // DefineInt to reject them at Parse time instead).
  int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  // "true"/"1"/"yes" => true; "false"/"0"/"no" => false.
  bool GetBool(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }

  // Formatted help text listing all defined flags.
  std::string HelpText() const;

 private:
  enum class FlagType { kString, kInt, kDouble, kBool };

  struct Flag {
    std::string help;
    std::string value;
    FlagType type = FlagType::kString;
  };

  // Non-OK when `value` does not parse as `type`.
  static Status CheckValue(const std::string& name, const std::string& value,
                           FlagType type);

  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace lightrw

#endif  // LIGHTRW_COMMON_FLAGS_H_
