// Minimal command-line flag parsing for the example tools.
//
// Supports --name=value and --name value forms plus boolean --name.
// Unrecognized flags are reported as errors; positional arguments are
// collected in order.

#ifndef LIGHTRW_COMMON_FLAGS_H_
#define LIGHTRW_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace lightrw {

// Parsed command line. Typical use:
//
//   FlagParser flags;
//   flags.Define("length", "walk length", "80");
//   flags.Define("verbose", "chatty output", "false");
//   LIGHTRW_CHECK(flags.Parse(argc, argv).ok());
//   const uint64_t length = flags.GetInt("length");
class FlagParser {
 public:
  // Registers a flag with a default value (all flags are optional).
  void Define(const std::string& name, const std::string& help,
              const std::string& default_value);

  // Parses argv; returns an error for unknown or malformed flags.
  Status Parse(int argc, const char* const* argv);

  // Accessors; the flag must have been Defined.
  const std::string& GetString(const std::string& name) const;
  // Accepts decimal integers; aborts on non-numeric values.
  int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  // "true"/"1"/"yes" => true; "false"/"0"/"no" => false.
  bool GetBool(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }

  // Formatted help text listing all defined flags.
  std::string HelpText() const;

 private:
  struct Flag {
    std::string help;
    std::string value;
  };
  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace lightrw

#endif  // LIGHTRW_COMMON_FLAGS_H_
