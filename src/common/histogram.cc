#include "common/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace lightrw {

void SampleStats::Add(double value) {
  samples_.push_back(value);
  sum_ += value;
  sorted_ = false;
}

void SampleStats::Merge(const SampleStats& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sum_ += other.sum_;
  sorted_ = false;
}

void SampleStats::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleStats::Mean() const {
  if (samples_.empty()) {
    return 0.0;
  }
  return sum_ / static_cast<double>(samples_.size());
}

double SampleStats::Min() const {
  if (samples_.empty()) {
    return 0.0;
  }
  EnsureSorted();
  return samples_.front();
}

double SampleStats::Max() const {
  if (samples_.empty()) {
    return 0.0;
  }
  EnsureSorted();
  return samples_.back();
}

double SampleStats::Quantile(double q) const {
  LIGHTRW_CHECK(q >= 0.0 && q <= 1.0);
  if (samples_.empty()) {
    return 0.0;
  }
  EnsureSorted();
  if (samples_.size() == 1) {
    return samples_.front();
  }
  // Hyndman & Fan type 7; see the header for the exact definition.
  const double rank = q * static_cast<double>(samples_.size() - 1);
  const double nearest = std::round(rank);
  // Pin exact-quantile boundaries: an integral rank (up to floating-point
  // noise in q*(n-1)) returns the stored order statistic itself.
  if (std::abs(rank - nearest) <= 1e-9 * std::max(1.0, nearest)) {
    return samples_[static_cast<size_t>(nearest)];
  }
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double SampleStats::StdDev() const {
  if (samples_.empty()) {
    return 0.0;
  }
  const double mean = Mean();
  double acc = 0.0;
  for (double s : samples_) {
    const double d = s - mean;
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(samples_.size()));
}

const std::vector<double>& SampleStats::sorted_samples() const {
  EnsureSorted();
  return samples_;
}

void CountHistogram::Add(uint64_t value) {
  const size_t idx =
      value < num_buckets() ? static_cast<size_t>(value) : buckets_.size() - 1;
  ++buckets_[idx];
  ++total_;
}

}  // namespace lightrw
