// Assertion macros used across LightRW.
//
// The library does not use exceptions. Programming errors (precondition
// violations, impossible states) abort the process with a message;
// recoverable errors are reported through lightrw::Status.

#ifndef LIGHTRW_COMMON_CHECK_H_
#define LIGHTRW_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace lightrw::internal_check {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace lightrw::internal_check

// Always-on invariant check.
#define LIGHTRW_CHECK(expr)                                            \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::lightrw::internal_check::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                                  \
  } while (0)

#define LIGHTRW_CHECK_OP(a, op, b) LIGHTRW_CHECK((a)op(b))
#define LIGHTRW_CHECK_EQ(a, b) LIGHTRW_CHECK_OP(a, ==, b)
#define LIGHTRW_CHECK_NE(a, b) LIGHTRW_CHECK_OP(a, !=, b)
#define LIGHTRW_CHECK_LT(a, b) LIGHTRW_CHECK_OP(a, <, b)
#define LIGHTRW_CHECK_LE(a, b) LIGHTRW_CHECK_OP(a, <=, b)
#define LIGHTRW_CHECK_GT(a, b) LIGHTRW_CHECK_OP(a, >, b)
#define LIGHTRW_CHECK_GE(a, b) LIGHTRW_CHECK_OP(a, >=, b)

// Debug-only check; compiled out in release builds.
#ifdef NDEBUG
#define LIGHTRW_DCHECK(expr) \
  do {                       \
  } while (0)
#else
#define LIGHTRW_DCHECK(expr) LIGHTRW_CHECK(expr)
#endif

#endif  // LIGHTRW_COMMON_CHECK_H_
