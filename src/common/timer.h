// Wall-clock timer used by the CPU baseline measurements and benchmarks.

#ifndef LIGHTRW_COMMON_TIMER_H_
#define LIGHTRW_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace lightrw {

// Monotonic stopwatch. Starts running on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace lightrw

#endif  // LIGHTRW_COMMON_TIMER_H_
