// Extension experiment: KnightKing-style rejection sampling as a stronger
// CPU Node2Vec baseline. A candidate is drawn from the precomputed static
// distribution and accepted with probability scale/s_max, replacing the
// full per-step weight pass with O(1) expected work. Compares steps/s
// against the ThunderRW-style ITS engine and the simulated LightRW.

#include <benchmark/benchmark.h>

#include "baseline/engine.h"
#include "baseline/rejection.h"
#include "bench_util.h"
#include "common/timer.h"
#include "lightrw/cycle_engine.h"

namespace lightrw::bench {
namespace {

struct Row {
  std::string dataset;
  double its_msteps = 0.0;
  double rejection_msteps = 0.0;
  double lightrw_msteps = 0.0;
  double trials_per_sample = 0.0;
};

std::vector<Row>& Rows() {
  static auto* rows = new std::vector<Row>();
  return *rows;
}

void RejectionBench(benchmark::State& state, graph::Dataset dataset) {
  const graph::CsrGraph& g = StandIn(dataset);
  const auto app = MakeNode2Vec();
  const auto queries = StandardQueries(g, kNode2VecLength);

  Row row;
  row.dataset = graph::GetDatasetInfo(dataset).name;
  for (auto _ : state) {
    baseline::BaselineEngine its(&g, app.get(), baseline::BaselineConfig{});
    row.its_msteps = its.Run(queries).StepsPerSecond() / 1e6;

    baseline::Node2VecRejectionWalker walker(&g, kNode2VecP, kNode2VecQ,
                                             kBenchSeed);
    WallTimer timer;
    uint64_t steps = 0;
    for (const auto& q : queries) {
      graph::VertexId curr = q.start;
      graph::VertexId prev = graph::kInvalidVertex;
      for (uint32_t s = 0; s < q.length; ++s) {
        const graph::VertexId next = walker.SampleNext(curr, prev);
        if (next == graph::kInvalidVertex) {
          break;
        }
        prev = curr;
        curr = next;
        ++steps;
      }
    }
    row.rejection_msteps =
        static_cast<double>(steps) / timer.ElapsedSeconds() / 1e6;
    row.trials_per_sample = walker.TrialsPerSample();

    core::CycleEngine accel(&g, app.get(), DefaultAccelConfig());
    row.lightrw_msteps = accel.Run(queries).StepsPerSecond() / 1e6;
  }
  state.counters["its_Msteps"] = row.its_msteps;
  state.counters["rejection_Msteps"] = row.rejection_msteps;
  state.counters["lightrw_Msteps"] = row.lightrw_msteps;
  Rows().push_back(row);
}

void RegisterAll() {
  for (const graph::Dataset d : graph::kAllDatasets) {
    benchmark::RegisterBenchmark(
        (std::string("ExtRejection/") + graph::GetDatasetInfo(d).name)
            .c_str(),
        [d](benchmark::State& s) { RejectionBench(s, d); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

void PrintSummary() {
  PrintReportHeader(
      "Extension: Node2Vec via rejection sampling (KnightKing-style) vs "
      "per-step ITS vs simulated LightRW");
  const std::vector<int> widths = {10, 14, 18, 16, 14};
  PrintRow({"dataset", "ITS Mst/s", "rejection Mst/s", "LightRW Mst/s",
            "trials/spl"},
           widths);
  for (const Row& row : Rows()) {
    PrintRow({row.dataset, FormatDouble(row.its_msteps),
              FormatDouble(row.rejection_msteps),
              FormatDouble(row.lightrw_msteps),
              FormatDouble(row.trials_per_sample)},
             widths);
  }
}

}  // namespace
}  // namespace lightrw::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  lightrw::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  lightrw::bench::PrintSummary();
  benchmark::Shutdown();
  return 0;
}
