// Extension experiment (paper §8 future work): distributed LightRW over
// multiple FPGA boards connected by 100G links. Sweeps the board count and
// partitioning strategy on the liveJournal stand-in, reporting throughput
// scaling and walker migration ratios for MetaPath.
//
// Expected shape: near-linear scaling while the network is not the
// bottleneck; greedy (structure-aware) partitioning migrates fewer
// walkers than oblivious hashing and scales further.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "distributed/dist_engine.h"
#include "distributed/partition.h"

namespace lightrw::bench {
namespace {

using distributed::DistributedConfig;
using distributed::DistributedEngine;
using distributed::MakePartition;
using distributed::Partition;
using distributed::PartitionStrategy;

struct Row {
  std::string strategy;
  uint32_t boards = 0;
  double msteps_per_s = 0.0;
  double migration_ratio = 0.0;
  double cut_ratio = 0.0;
  uint64_t steps = 0;
  uint64_t cycles = 0;
  uint64_t migrations = 0;
};

std::vector<Row>& Rows() {
  static auto* rows = new std::vector<Row>();
  return *rows;
}

void DistributedBench(benchmark::State& state, PartitionStrategy strategy,
                      const char* strategy_name) {
  const auto boards = static_cast<distributed::BoardId>(state.range(0));
  const graph::CsrGraph& g = StandIn(graph::Dataset::kLiveJournal);
  const auto app = MakeMetaPath(g);
  const auto queries = StandardQueries(g, kMetaPathLength);

  const Partition partition = MakePartition(g, boards, strategy);
  DistributedConfig config;
  config.board = DefaultAccelConfig();
  config.board.num_instances = 1;  // one accelerator channel per board

  Row row;
  row.strategy = strategy_name;
  row.boards = boards;
  row.cut_ratio = partition.CutRatio(g);
  for (auto _ : state) {
    DistributedEngine engine(&g, app.get(), &partition, config);
    const auto stats = engine.Run(queries).value();
    row.msteps_per_s = stats.StepsPerSecond() / 1e6;
    row.migration_ratio = stats.MigrationRatio();
    row.steps = stats.steps;
    row.cycles = stats.cycles;
    row.migrations = stats.migrations;
  }
  state.counters["Msteps"] = row.msteps_per_s;
  state.counters["migration_pct"] = row.migration_ratio * 100.0;
  Rows().push_back(row);
}

void ReplicatedBench(benchmark::State& state) {
  const auto boards = static_cast<distributed::BoardId>(state.range(0));
  const graph::CsrGraph& g = StandIn(graph::Dataset::kLiveJournal);
  const auto app = MakeMetaPath(g);
  const auto queries = StandardQueries(g, kMetaPathLength);
  const Partition partition =
      MakePartition(g, boards, PartitionStrategy::kHash);
  DistributedConfig config;
  config.board = DefaultAccelConfig();
  config.board.num_instances = 1;
  config.replicate_graph = true;
  Row row;
  row.strategy = "replicated";
  row.boards = boards;
  row.cut_ratio = 0.0;
  for (auto _ : state) {
    DistributedEngine engine(&g, app.get(), &partition, config);
    const auto stats = engine.Run(queries).value();
    row.msteps_per_s = stats.StepsPerSecond() / 1e6;
    row.migration_ratio = stats.MigrationRatio();
    row.steps = stats.steps;
    row.cycles = stats.cycles;
    row.migrations = stats.migrations;
  }
  state.counters["Msteps"] = row.msteps_per_s;
  Rows().push_back(row);
}

void RegisterAll() {
  auto* repl = benchmark::RegisterBenchmark("ExtDistributed/replicated",
                                            ReplicatedBench);
  repl->ArgName("boards");
  for (int64_t boards : {1, 2, 4, 8}) {
    repl->Arg(boards);
  }
  repl->Iterations(1)->Unit(benchmark::kMillisecond);

  const struct {
    PartitionStrategy strategy;
    const char* name;
  } kStrategies[] = {
      {PartitionStrategy::kHash, "hash"},
      {PartitionStrategy::kGreedy, "greedy"},
  };
  for (const auto& s : kStrategies) {
    auto* bench = benchmark::RegisterBenchmark(
        (std::string("ExtDistributed/") + s.name).c_str(),
        [strategy = s.strategy, name = s.name](benchmark::State& st) {
          DistributedBench(st, strategy, name);
        });
    bench->ArgName("boards");
    for (int64_t boards : {1, 2, 4, 8}) {
      bench->Arg(boards);
    }
    bench->Iterations(1)->Unit(benchmark::kMillisecond);
  }
}

void PrintSummary() {
  PrintReportHeader(
      "Extension: distributed LightRW scaling (paper future work; "
      "expect near-linear scaling, greedy < hash migrations)");
  const std::vector<int> widths = {10, 8, 14, 14, 12};
  PrintRow({"strategy", "boards", "Msteps/s", "migrations", "edge cut"},
           widths);
  for (const Row& row : Rows()) {
    PrintRow({row.strategy, std::to_string(row.boards),
              FormatDouble(row.msteps_per_s),
              FormatDouble(row.migration_ratio * 100, 1) + "%",
              FormatDouble(row.cut_ratio * 100, 1) + "%"},
             widths);
  }

  obs::Json rows = obs::Json::MakeArray();
  for (const Row& row : Rows()) {
    obs::Json r = obs::Json::MakeObject();
    r.Set("strategy", row.strategy);
    r.Set("boards", static_cast<uint64_t>(row.boards));
    r.Set("msteps_per_s", row.msteps_per_s);
    r.Set("migration_ratio", row.migration_ratio);
    r.Set("cut_ratio", row.cut_ratio);
    r.Set("steps", row.steps);
    r.Set("cycles", row.cycles);
    r.Set("migrations", row.migrations);
    rows.Append(std::move(r));
  }
  WriteBenchJson("ext_distributed", std::move(rows));
}

}  // namespace
}  // namespace lightrw::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  lightrw::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  lightrw::bench::PrintSummary();
  benchmark::Shutdown();
  return 0;
}
