// Reproduces paper Table 3: power consumption and power efficiency
// improvement of LightRW over the CPU baseline.
//
// Power cannot be measured without the board, so the watt figures come
// from the calibrated PowerModel (ranges taken from the paper's xbutil /
// CPU Energy Meter measurements); run times are measured (CPU) and
// simulated (LightRW). Efficiency improvement = (cpu_time * cpu_watts) /
// (lightrw_time * lightrw_watts).
//
// Paper result: FPGA 39-45 W vs CPU 103-126 W; efficiency improvement
// 15.05x-26.42x (MetaPath) and 16.28x-24.10x (Node2Vec).

#include <algorithm>

#include <benchmark/benchmark.h>

#include "baseline/engine.h"
#include "bench_util.h"
#include "lightrw/cycle_engine.h"
#include "lightrw/platform_models.h"

namespace lightrw::bench {
namespace {

struct Row {
  std::string dataset;
  std::string app;
  double fpga_watts = 0.0;
  double cpu_watts = 0.0;
  double improvement = 0.0;
};

std::vector<Row>& Rows() {
  static auto* rows = new std::vector<Row>();
  return *rows;
}

void PowerBench(benchmark::State& state, graph::Dataset dataset,
                bool node2vec) {
  const graph::CsrGraph& g = StandIn(dataset);
  const auto app = node2vec ? MakeNode2Vec() : MakeMetaPath(g);
  const auto queries =
      StandardQueries(g, node2vec ? kNode2VecLength : kMetaPathLength);
  const core::AcceleratorConfig accel_config = DefaultAccelConfig();

  Row row;
  row.dataset = graph::GetDatasetInfo(dataset).name;
  row.app = app->name();
  for (auto _ : state) {
    baseline::BaselineEngine cpu(&g, app.get(), baseline::BaselineConfig{});
    const double cpu_seconds = cpu.Run(queries).seconds;
    core::CycleEngine accel(&g, app.get(), accel_config);
    const double accel_seconds = accel.Run(queries).seconds;

    // Watts are modeled at the paper's full dataset sizes.
    const uint64_t paper_edges = graph::GetDatasetInfo(dataset).num_edges;
    core::PowerModel power;
    row.fpga_watts = power.FpgaWatts(accel_config.num_instances,
                                     paper_edges, node2vec);
    row.cpu_watts = power.CpuWatts(paper_edges, node2vec);
    row.improvement =
        (cpu_seconds * row.cpu_watts) / (accel_seconds * row.fpga_watts);
  }
  state.counters["fpga_watts"] = row.fpga_watts;
  state.counters["cpu_watts"] = row.cpu_watts;
  state.counters["efficiency_x"] = row.improvement;
  Rows().push_back(row);
}

void RegisterAll() {
  for (const graph::Dataset d : graph::kAllDatasets) {
    const char* name = graph::GetDatasetInfo(d).name;
    for (const bool node2vec : {false, true}) {
      benchmark::RegisterBenchmark(
          (std::string("Table3/") + (node2vec ? "Node2Vec/" : "MetaPath/") +
              name).c_str(),
          [d, node2vec](benchmark::State& s) { PowerBench(s, d, node2vec); })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

void PrintSummary() {
  PrintReportHeader(
      "Table 3: power efficiency improvement "
      "(paper: MetaPath 15.05-26.42x, Node2Vec 16.28-24.10x)");
  const std::vector<int> widths = {10, 10, 14, 14, 16};
  PrintRow({"dataset", "app", "LightRW W", "CPU W", "efficiency"}, widths);
  double lo[2] = {1e30, 1e30}, hi[2] = {0.0, 0.0};
  for (const Row& row : Rows()) {
    PrintRow({row.dataset, row.app, FormatDouble(row.fpga_watts, 1),
              FormatDouble(row.cpu_watts, 1),
              FormatDouble(row.improvement) + "x"},
             widths);
    const int idx = row.app == "Node2Vec" ? 1 : 0;
    lo[idx] = std::min(lo[idx], row.improvement);
    hi[idx] = std::max(hi[idx], row.improvement);
  }
  std::printf("MetaPath efficiency range: %.2fx ~ %.2fx\n", lo[0], hi[0]);
  std::printf("Node2Vec efficiency range: %.2fx ~ %.2fx\n", lo[1], hi[1]);
}

}  // namespace
}  // namespace lightrw::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  lightrw::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  lightrw::bench::PrintSummary();
  benchmark::Shutdown();
  return 0;
}
