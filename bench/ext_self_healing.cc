// Extension experiment (robustness): self-healing throughput recovery.
// Sweeps hot-spare count x rebuild bandwidth x scheduled board deaths on
// a replicated 4-board cluster and reports how fast and how completely
// throughput returns after the spare rebuilds the dead board's share.
//
// Expected shape: with no spares a death permanently degrades the
// cluster to the survivors (~3/4 throughput); with a spare the cluster
// returns to >= 95% of fault-free throughput once the rebuild completes,
// and the recovery time scales inversely with the rebuild bandwidth.
// The p99 dip quantifies the latency cost of the outage window
// (detection + checkpoint replay for the walkers caught on the dead
// board).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "distributed/dist_engine.h"
#include "distributed/partition.h"
#include "obs/span.h"
#include "reliability/membership.h"

namespace lightrw::bench {
namespace {

using distributed::DistributedConfig;
using distributed::DistributedEngine;
using distributed::MakePartition;
using distributed::Partition;
using distributed::PartitionStrategy;

constexpr uint32_t kBoards = 4;
constexpr uint64_t kWindowCycles = 1 << 14;
// Node2vec with mid-length walks keeps the cluster busy for ~2M cycles,
// so a mid-run death plus a full rebuild still leaves dozens of
// steady-state windows on both sides of the outage.
constexpr uint32_t kWalkLength = 24;

struct Row {
  uint32_t spares = 0;
  uint32_t deaths = 0;
  double rebuild_bw = 0.0;
  double msteps_per_s = 0.0;
  double overhead_pct = 0.0;          // cycles vs the fault-free baseline
  uint64_t recovery_time_cycles = 0;  // first death -> last rebuild done
  double post_throughput_ratio = 1.0; // steady state after recovery
  double p99_dip_ratio = 1.0;         // outage-window p99 / baseline p99
  uint64_t spares_activated = 0;
  uint64_t rebuilds_completed = 0;
  uint64_t spare_exhaustions = 0;
  uint64_t walkers_lost = 0;
};

std::vector<Row>& Rows() {
  static auto* rows = new std::vector<Row>();
  return *rows;
}

DistributedConfig BaseConfig() {
  DistributedConfig config;
  config.board = DefaultAccelConfig();
  config.board.num_instances = 1;
  // Replicated mode isolates the self-healing machinery: launches to the
  // dead board redirect to its serving board, so throughput tracks the
  // alive board count directly with no migration noise.
  config.replicate_graph = true;
  return config;
}

struct RunMetrics {
  uint64_t cycles = 0;
  double msteps_per_s = 0.0;
  // (completion cycle, duration) per query, sorted by completion cycle.
  std::vector<std::pair<uint64_t, uint64_t>> completions;
  distributed::DistributedRunStats stats;
};

uint64_t Percentile99(std::vector<uint64_t> values) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const size_t idx = (values.size() * 99 + 99) / 100 - 1;
  return values[std::min(idx, values.size() - 1)];
}

// Completions per kilocycle over (after, makespan]. Batch completions
// arrive in bursty cohorts (walkers launch together and walk lengths
// cluster), so rates over an interval are the stable estimator — window
// medians are not.
double RateAfter(const RunMetrics& m, uint64_t after) {
  if (m.cycles <= after) return 0.0;
  uint64_t count = 0;
  for (const auto& [end, duration] : m.completions) count += end > after;
  return 1000.0 * static_cast<double>(count) /
         static_cast<double>(m.cycles - after);
}

// p99 of the durations of queries completing in [lo, hi].
uint64_t P99In(const RunMetrics& m, uint64_t lo, uint64_t hi) {
  std::vector<uint64_t> durations;
  for (const auto& [end, duration] : m.completions) {
    if (end >= lo && end <= hi) durations.push_back(duration);
  }
  return Percentile99(std::move(durations));
}

RunMetrics RunOnce(const DistributedConfig& base) {
  const graph::CsrGraph& g = StandIn(graph::Dataset::kLiveJournal);
  const auto app = MakeNode2Vec();
  const auto queries = StandardQueries(g, kWalkLength);
  const Partition partition =
      MakePartition(g, kBoards, PartitionStrategy::kHash);
  obs::SpanRecorder spans;
  DistributedConfig config = base;
  config.board.spans = &spans;
  DistributedEngine engine(&g, app.get(), &partition, config);
  RunMetrics m;
  m.stats = engine.Run(queries).value();
  m.cycles = m.stats.cycles;
  m.msteps_per_s = m.stats.StepsPerSecond() / 1e6;
  for (const obs::Span& span : spans.Spans()) {
    if (span.parent != 0 || span.open) continue;  // one root per query
    m.completions.emplace_back(span.end, span.end - span.start);
  }
  std::sort(m.completions.begin(), m.completions.end());
  return m;
}

// Fault-free reference, computed once: cycles place the deaths mid-run,
// steady throughput and p99 anchor the recovery ratios.
const RunMetrics& Baseline() {
  static const RunMetrics* baseline = new RunMetrics(RunOnce(BaseConfig()));
  return *baseline;
}

void SelfHealingBench(benchmark::State& state, uint32_t spares,
                      uint32_t deaths, double rebuild_bw) {
  const uint64_t first_death = Baseline().cycles / 4;
  const uint64_t second_death = first_death + (1 << 16);

  DistributedConfig config = BaseConfig();
  config.num_spare_boards = spares;
  config.rebuild_bytes_per_cycle = rebuild_bw;
  if (deaths > 0) {
    config.board.faults.enabled = true;
    config.board.faults.seed = kBenchSeed;
    config.board.faults.checkpoint_interval_cycles = 1 << 12;
    config.board.faults.board_deaths.push_back(
        {first_death, 1});
    if (deaths > 1) {
      config.board.faults.board_deaths.push_back(
          {second_death, 2});
    }
  }

  Row row;
  row.spares = spares;
  row.deaths = deaths;
  row.rebuild_bw = rebuild_bw;
  for (auto _ : state) {
    const RunMetrics m = RunOnce(config);
    row.msteps_per_s = m.msteps_per_s;
    row.overhead_pct =
        100.0 * (static_cast<double>(m.cycles) /
                     static_cast<double>(Baseline().cycles) -
                 1.0);
    row.spares_activated = m.stats.reliability.spares_activated;
    row.rebuilds_completed = m.stats.reliability.rebuilds_completed;
    row.spare_exhaustions = m.stats.reliability.spare_exhaustions;
    row.walkers_lost = m.stats.reliability.walkers_lost;

    // Recovery time: first scheduled death to the last completed
    // ownership transfer (the final rebuilding -> alive transition).
    uint64_t recovered_at = 0;
    for (const auto& t : m.stats.membership) {
      if (t.to == reliability::BoardState::kAlive) {
        recovered_at = std::max(recovered_at, t.cycle);
      }
    }
    row.recovery_time_cycles =
        recovered_at > 0 ? recovered_at - first_death : 0;

    // Throughput after the cluster settled: after the last rebuild when
    // one completed, otherwise after the last death (degraded mode).
    // Compare the remaining-work completion rate against the baseline
    // measured from the SAME cycle, so both runs see the same mix of
    // steady-state and drain-tail phases.
    const uint64_t last_death = deaths > 1 ? second_death : first_death;
    const uint64_t settled = std::max(recovered_at, last_death);
    const double base_rate = RateAfter(Baseline(), settled);
    row.post_throughput_ratio =
        base_rate > 0 ? RateAfter(m, settled) / base_rate : 0.0;

    // Latency dip: p99 of queries completing during the outage window
    // vs the baseline's p99 over the same cycles. Without a rebuild the
    // outage never ends, so the window runs to the end of the run.
    if (deaths > 0) {
      const uint64_t outage_end = recovered_at > 0 ? recovered_at : m.cycles;
      const uint64_t dip = P99In(m, first_death, outage_end);
      const uint64_t base_p99 = P99In(Baseline(), first_death, outage_end);
      row.p99_dip_ratio =
          base_p99 > 0 && dip > 0
              ? static_cast<double>(dip) / static_cast<double>(base_p99)
              : 1.0;
    }
  }
  state.counters["Msteps"] = row.msteps_per_s;
  state.counters["post_ratio"] = row.post_throughput_ratio;
  state.counters["recovery"] = static_cast<double>(row.recovery_time_cycles);
  Rows().push_back(row);
}

void RegisterAll() {
  struct Point {
    uint32_t spares;
    uint32_t deaths;
    double bw;
  };
  const Point kPoints[] = {
      {0, 0, 64.0},  // fault-free reference row
      {0, 1, 64.0},  // death with no spare: permanent degradation
      {1, 1, 64.0},  // the headline self-healing configuration
      {2, 1, 64.0},
      {0, 2, 64.0},
      {1, 2, 64.0},  // second death exhausts the pool
      {2, 2, 64.0},
      {1, 1, 4.0},   // slow rebuild: longer outage, same endpoint
  };
  for (const Point& p : kPoints) {
    const std::string name =
        "ExtSelfHealing/spares:" + std::to_string(p.spares) +
        "/deaths:" + std::to_string(p.deaths) +
        "/bw:" + FormatDouble(p.bw, 0);
    benchmark::RegisterBenchmark(
        name.c_str(),
        [p](benchmark::State& st) {
          SelfHealingBench(st, p.spares, p.deaths, p.bw);
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

void PrintSummary() {
  PrintReportHeader(
      "Extension: self-healing recovery (spares x rebuild bandwidth x "
      "board deaths; ratios vs the fault-free baseline)");
  const std::vector<int> widths = {7, 7, 6, 10, 10, 10, 11, 9, 7, 7};
  PrintRow({"spares", "deaths", "bw", "Msteps/s", "overhead", "recovery",
            "post ratio", "p99 dip", "rebuilt", "lost"},
           widths);
  for (const Row& row : Rows()) {
    PrintRow({std::to_string(row.spares), std::to_string(row.deaths),
              FormatDouble(row.rebuild_bw, 0),
              FormatDouble(row.msteps_per_s),
              FormatDouble(row.overhead_pct, 1) + "%",
              std::to_string(row.recovery_time_cycles),
              FormatDouble(row.post_throughput_ratio),
              FormatDouble(row.p99_dip_ratio),
              std::to_string(row.rebuilds_completed),
              std::to_string(row.walkers_lost)},
             widths);
  }

  obs::Json rows = obs::Json::MakeArray();
  for (const Row& row : Rows()) {
    obs::Json r = obs::Json::MakeObject();
    r.Set("spares", static_cast<uint64_t>(row.spares));
    r.Set("deaths", static_cast<uint64_t>(row.deaths));
    r.Set("rebuild_bytes_per_cycle", row.rebuild_bw);
    r.Set("msteps_per_s", row.msteps_per_s);
    r.Set("overhead_pct", row.overhead_pct);
    r.Set("recovery_time_cycles", row.recovery_time_cycles);
    r.Set("post_throughput_ratio", row.post_throughput_ratio);
    r.Set("p99_dip_ratio", row.p99_dip_ratio);
    r.Set("spares_activated", row.spares_activated);
    r.Set("rebuilds_completed", row.rebuilds_completed);
    r.Set("spare_exhaustions", row.spare_exhaustions);
    r.Set("walkers_lost", row.walkers_lost);
    rows.Append(std::move(r));
  }
  WriteBenchJson("ext_self_healing", std::move(rows));
}

}  // namespace
}  // namespace lightrw::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  lightrw::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  lightrw::bench::PrintSummary();
  benchmark::Shutdown();
  return 0;
}
