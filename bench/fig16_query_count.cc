// Reproduces paper Fig. 16: throughput of LightRW and the CPU baseline on
// liveJournal as the number of queries grows (paper: 2^10..2^22).
//
// Paper result: LightRW's throughput is essentially flat (up to 4.8e7
// steps/s MetaPath, 3.5e7 Node2Vec at full scale); the CPU baseline
// needs many queries to amortize its setup, so the speedup is largest at
// small query counts (up to 75x at 2^10).

#include <benchmark/benchmark.h>

#include "baseline/engine.h"
#include "bench_util.h"
#include "lightrw/cycle_engine.h"

namespace lightrw::bench {
namespace {

struct Row {
  std::string app;
  size_t queries = 0;
  double cpu_steps_s = 0.0;
  double accel_steps_s = 0.0;
};

std::vector<Row>& Rows() {
  static auto* rows = new std::vector<Row>();
  return *rows;
}

void QueryCountBench(benchmark::State& state, bool node2vec) {
  const size_t count = static_cast<size_t>(state.range(0));
  const graph::CsrGraph& g = StandIn(graph::Dataset::kLiveJournal);
  const auto app = node2vec ? MakeNode2Vec() : MakeMetaPath(g);
  const uint32_t length = node2vec ? kNode2VecLength : kMetaPathLength;
  const auto queries = RepeatedQueries(g, length, count);

  Row row;
  row.app = app->name();
  row.queries = count;
  for (auto _ : state) {
    baseline::BaselineEngine cpu(&g, app.get(), baseline::BaselineConfig{});
    row.cpu_steps_s = cpu.Run(queries).StepsPerSecond();
    core::CycleEngine accel(&g, app.get(), DefaultAccelConfig());
    row.accel_steps_s = accel.Run(queries).StepsPerSecond();
  }
  state.counters["cpu_Msteps"] = row.cpu_steps_s / 1e6;
  state.counters["lightrw_Msteps"] = row.accel_steps_s / 1e6;
  state.counters["speedup"] = row.accel_steps_s / row.cpu_steps_s;
  Rows().push_back(row);
}

void RegisterAll() {
  for (const bool node2vec : {false, true}) {
    auto* bench = benchmark::RegisterBenchmark(
        (std::string("Fig16/") + (node2vec ? "Node2Vec" : "MetaPath")).c_str(),
        [node2vec](benchmark::State& s) { QueryCountBench(s, node2vec); });
    bench->ArgName("queries");
    for (size_t q = 1 << 10; q <= (1 << 16); q <<= 2) {
      bench->Arg(static_cast<int64_t>(q));
    }
    bench->Iterations(1)->Unit(benchmark::kMillisecond);
  }
}

void PrintSummary() {
  PrintReportHeader(
      "Fig. 16: throughput vs number of queries on LJ "
      "(paper: LightRW flat; speedup largest at small query counts)");
  const std::vector<int> widths = {10, 12, 16, 18, 10};
  PrintRow({"app", "queries", "cpu Mstep/s", "LightRW Mstep/s", "speedup"},
           widths);
  for (const Row& row : Rows()) {
    PrintRow({row.app, std::to_string(row.queries),
              FormatDouble(row.cpu_steps_s / 1e6),
              FormatDouble(row.accel_steps_s / 1e6),
              FormatDouble(row.accel_steps_s / row.cpu_steps_s) + "x"},
             widths);
  }
}

}  // namespace
}  // namespace lightrw::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  lightrw::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  lightrw::bench::PrintSummary();
  benchmark::Shutdown();
  return 0;
}
