// Extension experiment (service): overload behaviour of the walk-serving
// front end. Calibrates the cluster's batch capacity, then sweeps the
// offered arrival rate across it (0.25x .. 4x) for tight and loose
// deadlines, with graceful degradation on and off.
//
// Expected shape: goodput saturates near capacity while the shed rate
// and the deadline-violation rate (late fraction of delivered walks)
// rise monotonically with offered load; enabling degradation strictly
// lowers the violation rate at every overloaded point by trading walk
// length/quality for queue drain speed.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "distributed/dist_engine.h"
#include "distributed/partition.h"
#include "service/walk_service.h"

namespace lightrw::bench {
namespace {

using distributed::DistributedEngine;
using distributed::MakePartition;
using distributed::Partition;
using distributed::PartitionStrategy;
using service::ServiceConfig;
using service::ServiceRunStats;
using service::WalkService;

constexpr uint32_t kBoards = 2;
constexpr uint32_t kInflightPerBoard = 8;
constexpr uint32_t kWalkLength = 32;
constexpr uint64_t kNumQueries = 1024;

struct Row {
  double load_multiple = 0.0;
  double rate_per_kcycle = 0.0;
  uint64_t deadline_cycles = 0;
  bool degrade = false;
  uint64_t offered = 0;
  uint64_t completed = 0;
  uint64_t shed = 0;
  uint64_t violations = 0;
  uint64_t degraded = 0;
  uint64_t retries = 0;
  double shed_rate = 0.0;
  double violation_rate = 0.0;
  double goodput_per_s = 0.0;
  double throughput_per_s = 0.0;
  double queue_delay_p50 = 0.0;
  double queue_delay_p99 = 0.0;
};

std::vector<Row>& Rows() {
  static auto* rows = new std::vector<Row>();
  return *rows;
}

ServiceConfig ServiceBase() {
  ServiceConfig config;
  config.cluster.board = DefaultAccelConfig();
  config.cluster.board.num_instances = 1;
  config.cluster.inflight_walkers_per_board = kInflightPerBoard;
  config.queue_capacity = 8;
  config.retry_budget = 1;
  config.retry_backoff_cycles = 256;
  config.arrivals.seed = kBenchSeed;
  config.arrivals.num_queries = kNumQueries;
  config.arrivals.walk_length = kWalkLength;
  return config;
}

// Closed-loop batch throughput of the same cluster on the same query
// shape: the capacity the open-loop sweep is expressed against.
// Queries served per 1024 cycles; computed once.
double CapacityPerKcycle() {
  static double capacity = [] {
    const graph::CsrGraph& g = StandIn(graph::Dataset::kLiveJournal);
    const apps::StaticWalkApp app;
    const Partition partition =
        MakePartition(g, kBoards, PartitionStrategy::kHash);
    const ServiceConfig base = ServiceBase();
    DistributedEngine engine(&g, &app, &partition, base.cluster);
    const auto queries = StandardQueries(g, kWalkLength, kNumQueries);
    const auto stats = engine.Run(queries).value();
    return static_cast<double>(stats.queries) * 1024.0 /
           static_cast<double>(stats.cycles);
  }();
  return capacity;
}

// Deadlines only mean something relative to the unloaded walk latency,
// which moves with the scale shift. Calibrate them from an uncontended
// run: tight sits just above the unloaded p99 (any queueing makes walks
// late), loose leaves ~2.5x headroom.
struct Deadlines {
  uint64_t tight;
  uint64_t loose;
};

const Deadlines& CalibratedDeadlines() {
  static Deadlines deadlines = [] {
    const graph::CsrGraph& g = StandIn(graph::Dataset::kLiveJournal);
    const apps::StaticWalkApp app;
    const Partition partition =
        MakePartition(g, kBoards, PartitionStrategy::kHash);
    ServiceConfig config = ServiceBase();
    config.arrivals.rate_per_kcycle = 0.25 * CapacityPerKcycle();
    config.degrade_enabled = false;
    WalkService walk_service(&g, &app, &partition, config);
    ServiceRunStats stats = walk_service.Run().value();
    const double p99 = stats.latency_cycles.Quantile(0.99);
    return Deadlines{static_cast<uint64_t>(1.3 * p99),
                     static_cast<uint64_t>(1.6 * p99)};
  }();
  return deadlines;
}

void ServiceOverloadBench(benchmark::State& state, double load_multiple,
                          uint64_t deadline, bool degrade) {
  const graph::CsrGraph& g = StandIn(graph::Dataset::kLiveJournal);
  const apps::StaticWalkApp app;
  const Partition partition =
      MakePartition(g, kBoards, PartitionStrategy::kHash);

  ServiceConfig config = ServiceBase();
  config.arrivals.rate_per_kcycle = load_multiple * CapacityPerKcycle();
  config.arrivals.deadline_cycles = deadline;
  config.degrade_enabled = degrade;

  Row row;
  row.load_multiple = load_multiple;
  row.rate_per_kcycle = config.arrivals.rate_per_kcycle;
  row.deadline_cycles = deadline;
  row.degrade = degrade;
  for (auto _ : state) {
    WalkService walk_service(&g, &app, &partition, config);
    const auto result = walk_service.Run();
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    const ServiceRunStats& stats = *result;
    row.offered = stats.offered;
    row.completed = stats.completed;
    row.shed = stats.Shed();
    row.violations = stats.deadline_violations;
    row.degraded = stats.degraded;
    row.retries = stats.retries;
    row.shed_rate = stats.ShedRate();
    row.violation_rate = stats.ViolationRate();
    row.goodput_per_s = stats.GoodputPerSecond();
    row.throughput_per_s =
        stats.seconds > 0.0
            ? static_cast<double>(stats.completed) / stats.seconds
            : 0.0;
    if (stats.queue_delay_cycles.count() > 0) {
      row.queue_delay_p50 = stats.queue_delay_cycles.Quantile(0.5);
      row.queue_delay_p99 = stats.queue_delay_cycles.Quantile(0.99);
    }
  }
  state.counters["goodput_per_s"] = row.goodput_per_s;
  state.counters["shed_rate"] = row.shed_rate;
  state.counters["violation_rate"] = row.violation_rate;
  Rows().push_back(row);
}

void RegisterAll() {
  const double kMultiples[] = {0.25, 0.5, 1.0, 2.0, 4.0};
  const Deadlines& deadlines = CalibratedDeadlines();
  const std::pair<const char*, uint64_t> kDeadlines[] = {
      {"tight", deadlines.tight}, {"loose", deadlines.loose}};
  for (const auto& [deadline_name, deadline] : kDeadlines) {
    for (const double multiple : kMultiples) {
      for (const bool degrade : {false, true}) {
        const std::string name =
            "ExtServiceOverload/load:" + FormatDouble(multiple, 2) +
            "/deadline:" + deadline_name +
            (degrade ? "/degrade:on" : "/degrade:off");
        benchmark::RegisterBenchmark(
            name.c_str(),
            [multiple, deadline, degrade](benchmark::State& st) {
              ServiceOverloadBench(st, multiple, deadline, degrade);
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

void PrintSummary() {
  PrintReportHeader(
      "Extension: service overload (offered load x deadline x degradation; "
      "load as a multiple of calibrated batch capacity)");
  const std::vector<int> widths = {6, 10, 9, 8, 8, 6, 6, 6, 10, 10, 10};
  PrintRow({"load", "deadline", "degrade", "done", "shed", "late", "degr",
            "retry", "shed rate", "late rate", "goodput/s"},
           widths);
  for (const Row& row : Rows()) {
    PrintRow({FormatDouble(row.load_multiple, 2),
              std::to_string(row.deadline_cycles),
              row.degrade ? "on" : "off", std::to_string(row.completed),
              std::to_string(row.shed), std::to_string(row.violations),
              std::to_string(row.degraded), std::to_string(row.retries),
              FormatDouble(100.0 * row.shed_rate, 1) + "%",
              FormatDouble(100.0 * row.violation_rate, 1) + "%",
              FormatDouble(row.goodput_per_s, 0)},
             widths);
  }

  obs::Json rows = obs::Json::MakeArray();
  for (const Row& row : Rows()) {
    obs::Json r = obs::Json::MakeObject();
    r.Set("load_multiple", row.load_multiple);
    r.Set("rate_per_kcycle", row.rate_per_kcycle);
    r.Set("deadline_cycles", row.deadline_cycles);
    r.Set("degrade_enabled", row.degrade);
    r.Set("offered", row.offered);
    r.Set("completed", row.completed);
    r.Set("shed", row.shed);
    r.Set("deadline_violations", row.violations);
    r.Set("degraded", row.degraded);
    r.Set("retries", row.retries);
    r.Set("shed_rate", row.shed_rate);
    r.Set("violation_rate", row.violation_rate);
    r.Set("goodput_per_s", row.goodput_per_s);
    r.Set("throughput_per_s", row.throughput_per_s);
    r.Set("queue_delay_p50_cycles", row.queue_delay_p50);
    r.Set("queue_delay_p99_cycles", row.queue_delay_p99);
    rows.Append(std::move(r));
  }
  WriteBenchJson("ext_service_overload", std::move(rows));
}

}  // namespace
}  // namespace lightrw::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  lightrw::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  lightrw::bench::PrintSummary();
  benchmark::Shutdown();
  return 0;
}
