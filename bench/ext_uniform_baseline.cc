// Extension experiment (paper §7 related work): a Su et al. (FPL'21)-style
// uniform-sampling accelerator vs LightRW. Uniform static walks need only
// one neighbor fetch per step, so the specialized engine wins on that
// special case — but it cannot express weighted or dynamic walks at all,
// which is the generality LightRW trades some uniform-walk speed for.

#include <benchmark/benchmark.h>

#include "apps/walk_app.h"
#include "bench_util.h"
#include "lightrw/cycle_engine.h"
#include "lightrw/uniform_engine.h"

namespace lightrw::bench {
namespace {

struct Row {
  std::string dataset;
  double uniform_msteps = 0.0;
  double lightrw_msteps = 0.0;
  double uniform_bytes_per_step = 0.0;
  double lightrw_bytes_per_step = 0.0;
};

std::vector<Row>& Rows() {
  static auto* rows = new std::vector<Row>();
  return *rows;
}

void UniformBench(benchmark::State& state, graph::Dataset dataset) {
  const graph::CsrGraph& g = StandIn(dataset);
  apps::StaticWalkApp app;  // first-order walk; weights all >= 1
  const auto queries = StandardQueries(g, /*length=*/20);
  const core::AcceleratorConfig config = DefaultAccelConfig();

  Row row;
  row.dataset = graph::GetDatasetInfo(dataset).name;
  for (auto _ : state) {
    core::UniformCycleEngine uniform(&g, config);
    const auto uniform_stats = uniform.Run(queries);
    row.uniform_msteps = uniform_stats.StepsPerSecond() / 1e6;
    row.uniform_bytes_per_step =
        static_cast<double>(uniform_stats.dram.bytes) / uniform_stats.steps;

    core::CycleEngine lightrw(&g, &app, config);
    const auto lightrw_stats = lightrw.Run(queries);
    row.lightrw_msteps = lightrw_stats.StepsPerSecond() / 1e6;
    row.lightrw_bytes_per_step =
        static_cast<double>(lightrw_stats.dram.bytes) / lightrw_stats.steps;
  }
  state.counters["uniform_Msteps"] = row.uniform_msteps;
  state.counters["lightrw_Msteps"] = row.lightrw_msteps;
  Rows().push_back(row);
}

void RegisterAll() {
  for (const graph::Dataset d : graph::kAllDatasets) {
    benchmark::RegisterBenchmark(
        (std::string("ExtUniform/") + graph::GetDatasetInfo(d).name).c_str(),
        [d](benchmark::State& s) { UniformBench(s, d); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

void PrintSummary() {
  PrintReportHeader(
      "Extension: specialized uniform-walk accelerator (Su et al. style) "
      "vs LightRW on uniform static walks — the generality/speed tradeoff "
      "of paper §7");
  const std::vector<int> widths = {10, 16, 16, 14, 14};
  PrintRow({"dataset", "uniform Mst/s", "LightRW Mst/s", "uni B/step",
            "lrw B/step"},
           widths);
  for (const Row& row : Rows()) {
    PrintRow({row.dataset, FormatDouble(row.uniform_msteps),
              FormatDouble(row.lightrw_msteps),
              FormatDouble(row.uniform_bytes_per_step, 0),
              FormatDouble(row.lightrw_bytes_per_step, 0)},
             widths);
  }
}

}  // namespace
}  // namespace lightrw::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  lightrw::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  lightrw::bench::PrintSummary();
  benchmark::Shutdown();
  return 0;
}
