// Reproduces paper Fig. 11: cache miss ratio of the degree-aware cache
// (DAC) vs a direct-mapped cache (DMC) for MetaPath on RMAT graphs of
// growing vertex count, with both caches holding 2^12 vertices.
//
// Paper result: below 2^12 vertices both miss ratios are ~0; beyond that
// DMC degrades toward 100% while DAC stays much lower (e.g. ~49% at 2^18).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "graph/generators.h"
#include "lightrw/cycle_engine.h"

namespace lightrw::bench {
namespace {

constexpr uint32_t kCacheEntries = 1 << 12;

struct Row {
  uint32_t scale = 0;
  double dac_miss = 0.0;
  double dmc_miss = 0.0;
  double lru_miss = 0.0;
  double fifo_miss = 0.0;
};

std::vector<Row>& Rows() {
  static auto* rows = new std::vector<Row>();
  return *rows;
}

double MissRatio(const graph::CsrGraph& g, core::CacheKind kind) {
  const auto app = MakeMetaPath(g);
  core::AcceleratorConfig config = DefaultAccelConfig();
  config.num_instances = 1;  // one cache observes the whole access stream
  config.cache_kind = kind;
  config.cache_entries = kCacheEntries;
  core::CycleEngine engine(&g, app.get(), config);
  // A fixed query count (repeating start vertices on small graphs) so the
  // compulsory cold misses are amortized the same way at every scale.
  const auto queries = RepeatedQueries(g, kMetaPathLength, MaxQueries());
  const auto stats = engine.Run(queries);
  return stats.cache.MissRatio();
}

void CacheBench(benchmark::State& state) {
  const uint32_t scale = static_cast<uint32_t>(state.range(0));
  graph::RmatOptions options;
  options.scale = scale;
  options.edge_factor = 8;  // the paper's RMAT average degree
  // The paper's rmat graphs come from the Kronecker generator of Leskovec
  // et al., which is skewier than the Graph500 defaults; match that.
  options.a = 0.65;
  options.b = 0.18;
  options.c = 0.12;
  options.d = 0.05;
  // Undirected with two relation labels: walks survive the full metapath
  // far more often, so the access stream is dominated by walk-sampled
  // (degree-biased) lookups rather than uniform query starts — the regime
  // the degree-aware policy targets.
  options.undirected = true;
  options.num_relations = 2;
  options.seed = kBenchSeed;
  const graph::CsrGraph g = GenerateRmat(options);

  Row row;
  row.scale = scale;
  for (auto _ : state) {
    row.dac_miss = MissRatio(g, core::CacheKind::kDegreeAware);
    row.dmc_miss = MissRatio(g, core::CacheKind::kDirectMapped);
    row.lru_miss = MissRatio(g, core::CacheKind::kLru);
    row.fifo_miss = MissRatio(g, core::CacheKind::kFifo);
  }
  state.counters["dac_miss_pct"] = row.dac_miss * 100.0;
  state.counters["dmc_miss_pct"] = row.dmc_miss * 100.0;
  state.counters["lru_miss_pct"] = row.lru_miss * 100.0;
  state.counters["fifo_miss_pct"] = row.fifo_miss * 100.0;
  Rows().push_back(row);
}

void PrintSummary() {
  PrintReportHeader(
      "Fig. 11: DAC vs DMC miss ratio, cache = 2^12 vertices "
      "(paper: DAC ~49% at 2^18 while DMC approaches 100%)");
  const std::vector<int> widths = {16, 14, 14, 14, 14};
  PrintRow({"rmat |V|", "DAC miss", "DMC miss", "LRU miss", "FIFO miss"},
           widths);
  for (const Row& row : Rows()) {
    PrintRow({"2^" + std::to_string(row.scale),
              FormatDouble(row.dac_miss * 100, 1) + "%",
              FormatDouble(row.dmc_miss * 100, 1) + "%",
              FormatDouble(row.lru_miss * 100, 1) + "%",
              FormatDouble(row.fifo_miss * 100, 1) + "%"},
             widths);
  }

  obs::Json rows = obs::Json::MakeArray();
  for (const Row& row : Rows()) {
    obs::Json r = obs::Json::MakeObject();
    r.Set("rmat_scale", static_cast<uint64_t>(row.scale));
    r.Set("dac_miss", row.dac_miss);
    r.Set("dmc_miss", row.dmc_miss);
    r.Set("lru_miss", row.lru_miss);
    r.Set("fifo_miss", row.fifo_miss);
    rows.Append(std::move(r));
  }
  WriteBenchJson("fig11_degree_cache", std::move(rows));
}

BENCHMARK(CacheBench)
    ->ArgName("scale")
    ->DenseRange(6, 20, 2)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lightrw::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  lightrw::bench::PrintSummary();
  benchmark::Shutdown();
  return 0;
}
